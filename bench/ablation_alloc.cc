// Ablation: memory-allocator design (paper §6.2.10, deficiency 2).
//
// "Profiling of the benchmark kernels revealed that a significant amount of
// time is spent in memory allocation ... the OSKit's default memory manager
// library is designed for flexibility and space efficiency rather than
// common-case performance.  For fast allocation of small data structures
// ... a more conventional high-level allocator would be more appropriate,
// possibly layered on top of the OSKit's existing low-level allocator."
//
// Benchmarked here (google-benchmark):
//   * raw LMM alloc/free               — the flexible, list-walking default;
//   * malloc layered on the LMM        — what OSKit kernels actually call;
//   * QuickAlloc (src/libc/quickalloc.h) layered on the LMM — the
//     "conventional high-level allocator" the paper proposed as future
//     work, which this reproduction ships as a real component.

#include <benchmark/benchmark.h>

#include <vector>

#include "src/libc/malloc.h"
#include "src/libc/quickalloc.h"
#include "src/lmm/lmm.h"

namespace oskit {
namespace {

constexpr size_t kArenaBytes = 8 << 20;

struct LmmFixture {
  std::vector<uint8_t> arena;
  Lmm lmm;
  LmmRegion region;

  LmmFixture() : arena(kArenaBytes) {
    lmm.AddRegion(&region, arena.data(), arena.size(), 0, 0);
    lmm.AddFree(arena.data(), arena.size());
  }
};

// A mixed small-object workload: the mbuf/pcb/cblock sizes kernels churn.
constexpr size_t kSizes[] = {16, 48, 96, 128, 256, 512, 2048};
constexpr int kBatch = 64;

void BM_LmmDirect(benchmark::State& state) {
  LmmFixture fx;
  void* live[kBatch];
  size_t sizes[kBatch];
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      sizes[i] = kSizes[i % 7];
      live[i] = fx.lmm.Alloc(sizes[i], 0);
      benchmark::DoNotOptimize(live[i]);
    }
    for (int i = kBatch - 1; i >= 0; --i) {
      fx.lmm.Free(live[i], sizes[i]);
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_LmmDirect);

void BM_MallocOnLmm(benchmark::State& state) {
  LmmFixture fx;
  libc::MemEnv env;
  env.alloc = +[](void* ctx, size_t size) -> void* {
    return static_cast<Lmm*>(ctx)->Alloc(size, 0);
  };
  env.free = +[](void* ctx, void* ptr, size_t size) {
    static_cast<Lmm*>(ctx)->Free(ptr, size);
  };
  env.ctx = &fx.lmm;
  libc::MallocArena arena(env);
  void* live[kBatch];
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      live[i] = arena.Malloc(kSizes[i % 7]);
      benchmark::DoNotOptimize(live[i]);
    }
    for (int i = kBatch - 1; i >= 0; --i) {
      arena.Free(live[i]);
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_MallocOnLmm);

void BM_QuickAllocOnLmm(benchmark::State& state) {
  // The shipped future-work allocator (src/libc/quickalloc.h) layered on
  // the LMM, exactly as §6.2.10 proposes.
  LmmFixture fx;
  libc::MemEnv lmm_env;
  lmm_env.alloc = +[](void* ctx, size_t size) -> void* {
    return static_cast<Lmm*>(ctx)->Alloc(size, 0);
  };
  lmm_env.free = +[](void* ctx, void* ptr, size_t size) {
    static_cast<Lmm*>(ctx)->Free(ptr, size);
  };
  lmm_env.ctx = &fx.lmm;
  libc::QuickAlloc cache(lmm_env);
  void* live[kBatch];
  size_t sizes[kBatch];
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      sizes[i] = kSizes[i % 7];
      live[i] = cache.Alloc(sizes[i]);
      benchmark::DoNotOptimize(live[i]);
    }
    for (int i = kBatch - 1; i >= 0; --i) {
      cache.Free(live[i], sizes[i]);
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_QuickAllocOnLmm);

// Fragmented-arena stress: after heavy churn the LMM free list is long, so
// its first-fit walk shows the flexibility-vs-speed trade directly.
void BM_LmmFragmented(benchmark::State& state) {
  LmmFixture fx;
  // Fragment: allocate a lot, free every other one.
  std::vector<std::pair<void*, size_t>> held;
  for (int i = 0; i < 4000; ++i) {
    size_t size = kSizes[i % 7];
    void* p = fx.lmm.Alloc(size, 0);
    if (p != nullptr) {
      held.push_back({p, size});
    }
  }
  for (size_t i = 0; i < held.size(); i += 2) {
    fx.lmm.Free(held[i].first, held[i].second);
    held[i].first = nullptr;
  }
  for (auto _ : state) {
    void* p = fx.lmm.Alloc(2048, 0);
    benchmark::DoNotOptimize(p);
    if (p != nullptr) {
      fx.lmm.Free(p, 2048);
    }
  }
  for (auto& [p, size] : held) {
    if (p != nullptr) {
      fx.lmm.Free(p, size);
    }
  }
}
BENCHMARK(BM_LmmFragmented);

}  // namespace
}  // namespace oskit

BENCHMARK_MAIN();
