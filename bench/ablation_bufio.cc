// Ablation: the bufio map-vs-copy crossover (paper §4.4.2 / §4.7.3).
//
// The bufio extension exists because "direct pointer-based access to the
// data" beats read-style copying whenever the data happens to be
// contiguous.  This microbenchmark quantifies that across payload sizes
// for both buffer families:
//   * a contiguous buffer accessed via Map (pointer) vs via Read (copy);
//   * an mbuf chain, where Map fails and import must copy — the cost the
//     OSKit send path pays per packet in Table 1.

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "src/com/memblkio.h"
#include "src/net/mbuf_bufio.h"

namespace oskit {
namespace {

void BM_ContiguousMap(benchmark::State& state) {
  size_t size = static_cast<size_t>(state.range(0));
  auto io = MemBlkIo::Create(size);
  uint64_t sink = 0;
  for (auto _ : state) {
    void* addr = nullptr;
    io->Map(&addr, 0, size);
    // Touch the data the way a protocol stack would (checksum-ish sweep).
    const auto* p = static_cast<const uint8_t*>(addr);
    uint64_t sum = 0;
    for (size_t i = 0; i < size; i += 64) {
      sum += p[i];
    }
    sink += sum;
    io->Unmap(addr, 0, size);
  }
  benchmark::DoNotOptimize(sink);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * size);
}
BENCHMARK(BM_ContiguousMap)->Arg(64)->Arg(256)->Arg(1500)->Arg(4096)->Arg(16384);

void BM_ContiguousRead(benchmark::State& state) {
  size_t size = static_cast<size_t>(state.range(0));
  auto io = MemBlkIo::Create(size);
  std::vector<uint8_t> bounce(size);
  uint64_t sink = 0;
  for (auto _ : state) {
    size_t actual = 0;
    io->Read(bounce.data(), 0, size, &actual);
    uint64_t sum = 0;
    for (size_t i = 0; i < size; i += 64) {
      sum += bounce[i];
    }
    sink += sum;
  }
  benchmark::DoNotOptimize(sink);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * size);
}
BENCHMARK(BM_ContiguousRead)->Arg(64)->Arg(256)->Arg(1500)->Arg(4096)->Arg(16384);

// The receive-path import: contiguous foreign buffer -> mbuf.  Zero copy.
void BM_ImportContiguous(benchmark::State& state) {
  size_t size = static_cast<size_t>(state.range(0));
  net::MbufPool pool;
  auto io = MemBlkIo::Create(size);
  for (auto _ : state) {
    net::MBuf* m = net::MbufFromBufIo(&pool, io.get(), size);
    benchmark::DoNotOptimize(m);
    pool.FreeChain(m);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * size);
}
BENCHMARK(BM_ImportContiguous)->Arg(64)->Arg(1500)->Arg(16384);

// The send-path conversion: mbuf chain -> contiguous buffer.  Always a copy
// once the chain exceeds one mbuf (the Table 1 send penalty).
void BM_ExportChainToContiguous(benchmark::State& state) {
  size_t size = static_cast<size_t>(state.range(0));
  net::MbufPool pool;
  std::vector<uint8_t> payload(size, 0x2a);
  net::MBuf* chain = pool.FromData(payload.data(), payload.size());
  auto io = net::MbufBufIo::Wrap(&pool, chain);
  std::vector<uint8_t> skbuff_like(size);
  for (auto _ : state) {
    void* addr = nullptr;
    if (Ok(io->Map(&addr, 0, size))) {
      // Single-mbuf packet: the glue's fake-skbuff path, no copy.
      benchmark::DoNotOptimize(addr);
      io->Unmap(addr, 0, size);
    } else {
      size_t actual = 0;
      io->Read(skbuff_like.data(), 0, size, &actual);
      benchmark::DoNotOptimize(skbuff_like.data());
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * size);
}
BENCHMARK(BM_ExportChainToContiguous)->Arg(64)->Arg(1500)->Arg(4096)->Arg(16384);

}  // namespace
}  // namespace oskit

BENCHMARK_MAIN();
