// Ablation: where does the OSKit's per-packet overhead come from?
//
// Table 2's text attributes the OSKit's extra latency to "the additional
// glue code within the OSKit components: the price we pay for modularity
// and separability".  This harness decomposes that price by toggling the
// layers one at a time on the rtcp and ttcp workloads:
//
//   A  native FreeBSD        — no COM boundary, driver eats mbuf chains
//   B  OSKit                 — COM NetIo/BufIo + conversions (zero-copy rx)
//   C  OSKit + forced rx copy — ablates the §4.7.3 zero-copy import, so
//                               BOTH directions pay a buffer copy
//
// B - A  = cost of the COM boundary + bufio conversion machinery
// C - B  = what the zero-copy receive import saves (the mechanism that
//          keeps OSKit receive bandwidth at FreeBSD levels in Table 1)

#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "src/testbed/ttcp.h"
#include "src/trace/trace.h"

using namespace oskit;
using namespace oskit::testbed;

namespace {

struct Variant {
  const char* name;
  NetConfig config;
  bool force_rx_copy;
};

}  // namespace

int main(int argc, char** argv) {
  // Usage: ablation_glue [round_trips] [--json <path>]
  uint64_t round_trips = 20000;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "usage: ablation_glue [round_trips] [--json <path>]\n");
        return 2;
      }
      json_path = argv[++i];
    } else {
      round_trips = std::strtoull(argv[i], nullptr, 0);
    }
  }
  size_t blocks = 8192;

  const Variant kVariants[] = {
      {"A: native FreeBSD (no COM)", NetConfig::kNativeBsd, false},
      {"B: OSKit (COM + conversions)", NetConfig::kOskit, false},
      {"C: OSKit, zero-copy rx ablated", NetConfig::kOskit, true},
  };

  double rtt_us[3];
  double mbps[3];
  uint64_t rx_copied[3] = {};
  uint64_t tx_copied[3] = {};
  trace::CounterSnapshot sender_snapshot;
  std::printf("Glue-overhead ablation (%llu round trips, %zu x 4096-byte "
              "blocks, infinite wire)\n\n",
              static_cast<unsigned long long>(round_trips), blocks);
  std::printf("%-34s | %14s | %16s\n", "variant", "rtcp us/rt", "ttcp Mbit/s");
  std::printf("-----------------------------------+----------------+--------------"
              "----\n");
  for (int i = 0; i < 3; ++i) {
    {
      World world;
      world.AddHost("s", kVariants[i].config);
      world.AddHost("c", kVariants[i].config);
      if (kVariants[i].force_rx_copy) {
        world.host(0).stack->SetForceRxCopy(true);
        world.host(1).stack->SetForceRxCopy(true);
      }
      RtcpResult r = RunRtcp(world, round_trips);
      rtt_us[i] = r.UsecPerRoundTripWall();
    }
    {
      World world;
      world.AddHost("rx", kVariants[i].config);
      world.AddHost("tx", kVariants[i].config);
      if (kVariants[i].force_rx_copy) {
        world.host(0).stack->SetForceRxCopy(true);
        world.host(1).stack->SetForceRxCopy(true);
      }
      TtcpResult t = RunTtcp(world, 4096, blocks);
      mbps[i] = t.MbitPerSecWall();
      // Both sides of the copy ledger come from the per-host counter
      // registries, not from bench-local bookkeeping.
      rx_copied[i] =
          world.host(0).trace.registry.Value("net.rx.glue_copied_bytes");
      tx_copied[i] = t.sender_glue_copied_bytes;
      if (kVariants[i].config == NetConfig::kOskit && !kVariants[i].force_rx_copy) {
        sender_snapshot = world.host(1).trace.registry.Snapshot();
      }
    }
    std::printf("%-34s | %14.2f | %16.0f\n", kVariants[i].name, rtt_us[i], mbps[i]);
  }

  std::printf("\nDecomposition (per 1-byte round trip):\n");
  std::printf("  COM boundary + bufio conversion + glue : %+.2f us (B - A)\n",
              rtt_us[1] - rtt_us[0]);
  std::printf("  (C - B is below measurement noise for 1-byte packets: the\n"
              "   forced copy moves ~60 bytes; its real cost shows in the\n"
              "   bulk counters below.)\n");
  std::printf("\nBulk-transfer mechanism counters (deterministic, %zu x "
              "4096-byte transfer):\n", blocks);
  for (int i = 0; i < 3; ++i) {
    std::printf("  %-34s tx glue copies %10llu bytes | rx glue copies %10llu "
                "bytes\n", kVariants[i].name,
                static_cast<unsigned long long>(tx_copied[i]),
                static_cast<unsigned long long>(rx_copied[i]));
  }
  // P6-scaled receive-side cost of losing the zero-copy import (the extra
  // bytes really copied, at 70 MB/s 1997 memory bandwidth).
  double total_bytes = blocks * 4096.0;
  double extra_s = static_cast<double>(rx_copied[2]) / 70e6;
  double base_s = total_bytes / 1448.0 * 100e-6 + total_bytes / 70e6 +
                  total_bytes / 50e6;
  std::printf("\n  P6-scaled: the ablated receive copy adds %.0f ms to a "
              "%.0f MB transfer (%.0f%% slower receiver) —\n  the mechanism "
              "that keeps Table 1's OSKit receive row at FreeBSD levels.\n",
              extra_s * 1e3, total_bytes / 1048576.0, 100.0 * extra_s / base_s);

  // Registry snapshot of the variant-B sender: the same numbers kmon's
  // `counters` command would show on that machine.
  std::printf("\nVariant B sender counter snapshot (trace registry):\n");
  for (const auto& [name, value] : sender_snapshot) {
    if (value != 0 && (name.rfind("glue.", 0) == 0 || name.rfind("net.tcp.", 0) == 0 ||
                       name.rfind("machine.", 0) == 0)) {
      std::printf("  %-32s %12llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"ablation_glue\",\n");
    std::fprintf(f, "  \"round_trips\": %llu,\n  \"blocks\": %zu,\n",
                 static_cast<unsigned long long>(round_trips), blocks);
    std::fprintf(f, "  \"variants\": [\n");
    for (int i = 0; i < 3; ++i) {
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"rtcp_us_per_rt\": %.3f, "
                   "\"ttcp_mbps\": %.1f, \"tx_glue_copied_bytes\": %llu, "
                   "\"rx_glue_copied_bytes\": %llu}%s\n",
                   kVariants[i].name, rtt_us[i], mbps[i],
                   static_cast<unsigned long long>(tx_copied[i]),
                   static_cast<unsigned long long>(rx_copied[i]),
                   i < 2 ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"sender_counters\": {\n");
    size_t remaining = sender_snapshot.size();
    for (const auto& [name, value] : sender_snapshot) {
      --remaining;
      std::fprintf(f, "    \"%s\": %llu%s\n", name.c_str(),
                   static_cast<unsigned long long>(value),
                   remaining != 0 ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);
  }
  return 0;
}
