// Ablation: where does the OSKit's per-packet overhead come from?
//
// Table 2's text attributes the OSKit's extra latency to "the additional
// glue code within the OSKit components: the price we pay for modularity
// and separability".  This harness decomposes that price by toggling the
// layers one at a time on the rtcp and ttcp workloads:
//
//   A  native FreeBSD        — no COM boundary, driver eats mbuf chains
//   B  OSKit                 — COM NetIo/BufIo + conversions (zero-copy rx)
//   C  OSKit + forced rx copy — ablates the §4.7.3 zero-copy import, so
//                               BOTH directions pay a buffer copy
//
// B - A  = cost of the COM boundary + bufio conversion machinery
// C - B  = what the zero-copy receive import saves (the mechanism that
//          keeps OSKit receive bandwidth at FreeBSD levels in Table 1)

#include <cstdio>
#include <cstdlib>

#include "src/testbed/ttcp.h"

using namespace oskit;
using namespace oskit::testbed;

namespace {

struct Variant {
  const char* name;
  NetConfig config;
  bool force_rx_copy;
};

}  // namespace

int main(int argc, char** argv) {
  uint64_t round_trips = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 20000;
  size_t blocks = 8192;

  const Variant kVariants[] = {
      {"A: native FreeBSD (no COM)", NetConfig::kNativeBsd, false},
      {"B: OSKit (COM + conversions)", NetConfig::kOskit, false},
      {"C: OSKit, zero-copy rx ablated", NetConfig::kOskit, true},
  };

  double rtt_us[3];
  double mbps[3];
  uint64_t rx_copied[3] = {};
  uint64_t tx_copied[3] = {};
  std::printf("Glue-overhead ablation (%llu round trips, %zu x 4096-byte "
              "blocks, infinite wire)\n\n",
              static_cast<unsigned long long>(round_trips), blocks);
  std::printf("%-34s | %14s | %16s\n", "variant", "rtcp us/rt", "ttcp Mbit/s");
  std::printf("-----------------------------------+----------------+--------------"
              "----\n");
  for (int i = 0; i < 3; ++i) {
    {
      World world;
      world.AddHost("s", kVariants[i].config);
      world.AddHost("c", kVariants[i].config);
      if (kVariants[i].force_rx_copy) {
        world.host(0).stack->SetForceRxCopy(true);
        world.host(1).stack->SetForceRxCopy(true);
      }
      RtcpResult r = RunRtcp(world, round_trips);
      rtt_us[i] = r.UsecPerRoundTripWall();
    }
    {
      World world;
      world.AddHost("rx", kVariants[i].config);
      world.AddHost("tx", kVariants[i].config);
      if (kVariants[i].force_rx_copy) {
        world.host(0).stack->SetForceRxCopy(true);
        world.host(1).stack->SetForceRxCopy(true);
      }
      TtcpResult t = RunTtcp(world, 4096, blocks);
      mbps[i] = t.MbitPerSecWall();
      rx_copied[i] = world.host(0).stack->stats().rx_glue_copied_bytes;
      tx_copied[i] = t.sender_glue_copied_bytes;
    }
    std::printf("%-34s | %14.2f | %16.0f\n", kVariants[i].name, rtt_us[i], mbps[i]);
  }

  std::printf("\nDecomposition (per 1-byte round trip):\n");
  std::printf("  COM boundary + bufio conversion + glue : %+.2f us (B - A)\n",
              rtt_us[1] - rtt_us[0]);
  std::printf("  (C - B is below measurement noise for 1-byte packets: the\n"
              "   forced copy moves ~60 bytes; its real cost shows in the\n"
              "   bulk counters below.)\n");
  std::printf("\nBulk-transfer mechanism counters (deterministic, %zu x "
              "4096-byte transfer):\n", blocks);
  for (int i = 0; i < 3; ++i) {
    std::printf("  %-34s tx glue copies %10llu bytes | rx glue copies %10llu "
                "bytes\n", kVariants[i].name,
                static_cast<unsigned long long>(tx_copied[i]),
                static_cast<unsigned long long>(rx_copied[i]));
  }
  // P6-scaled receive-side cost of losing the zero-copy import (the extra
  // bytes really copied, at 70 MB/s 1997 memory bandwidth).
  double total_bytes = blocks * 4096.0;
  double extra_s = static_cast<double>(rx_copied[2]) / 70e6;
  double base_s = total_bytes / 1448.0 * 100e-6 + total_bytes / 70e6 +
                  total_bytes / 50e6;
  std::printf("\n  P6-scaled: the ablated receive copy adds %.0f ms to a "
              "%.0f MB transfer (%.0f%% slower receiver) —\n  the mechanism "
              "that keeps Table 1's OSKit receive row at FreeBSD levels.\n",
              extra_s * 1e3, total_bytes / 1048576.0, 100.0 * extra_s / base_s);
  return 0;
}
