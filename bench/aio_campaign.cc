// AIO campaign: the async completion-ring and stackable-storage benchmark.
//
// Four legs, each with in-campaign acceptance checks (any miss is a FAIL
// and a nonzero exit) plus a BENCH_aio.json report for the regression gate:
//
//   queue depth   256 adjacent sector writes pushed through the IDE glue's
//                 native BlkIoRing at submission depths 1..32.  The
//                 LBA-sorting scheduler merges each batch into one
//                 controller round-trip, so requests-per-block must fall
//                 from 1.0 at depth 1 toward 1/depth, and the fixed
//                 per-request overhead (DiskHw charges a 100 us "seek" per
//                 request) makes deep submission measurably faster.
//
//   journal ring  a journaled FFS mounted directly on the IDE device runs a
//                 metadata workload.  JournalWriter finds the device's ring
//                 the §4.4.2 way (Query for BlkIoRing), so commit-image
//                 batches must show up in glue.ide.ring.sqes — the proof
//                 that transactions ride the async path end to end.
//
//   stack matrix  every composition of the stripe / checksum / cache blkio
//                 layers (and the plain mount) gets two trials: mkfs +
//                 metadata workload + fsck must stay consistent, and a
//                 scribble pass (one flipped byte in every raw 4 KiB block
//                 under the stack) must be DETECTED (read returns an error)
//                 whenever a checksum layer is present and must corrupt
//                 silently on the plain device — the ablation that proves
//                 the detector has teeth.
//
//   sendfile      the HTTP server serves a 64 KiB static file 16 times over
//                 one keep-alive connection, once with sendfile on and once
//                 with the copied read+send ablation.  Header bytes are
//                 identical in both runs, so copied-bytes-per-body-byte is
//                 computed exactly: it must be 0.000 with sendfile on
//                 (every body byte reached the wire through BufIoVec
//                 segments, counter-verified) and 1.000 in the ablation.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/aio/stack.h"
#include "src/com/aio.h"
#include "src/com/memblkio.h"
#include "src/dev/linux/linux_glue.h"
#include "src/dev/linux/linux_ide.h"
#include "src/diskpart/diskpart.h"
#include "src/fs/cache.h"
#include "src/fs/ffs.h"
#include "src/fs/fsck.h"
#include "src/http/http.h"
#include "src/http/server.h"
#include "src/testbed/testbed.h"

using namespace oskit;
using namespace oskit::testbed;

namespace {

int g_failures = 0;
uint64_t g_seed_base = 0;  // shifts deterministic patterns onto another stream

void Fail(const char* leg, const char* what) {
  std::printf("FAIL: %s: %s\n", leg, what);
  ++g_failures;
}

uint8_t PatternByte(uint64_t salt, size_t i) {
  return static_cast<uint8_t>((salt + g_seed_base) * 131 + i * 29 + (i >> 9));
}

uint64_t Ambient(const char* name) {
  return trace::ResolveTraceEnv(nullptr)->registry.Value(name);
}

// ---------------------------------------------------------------------------
// Leg 1: queue-depth sweep on the IDE glue's native ring.
// ---------------------------------------------------------------------------

constexpr size_t kSweepBlocks = 256;  // 512-byte sectors written per depth

struct DepthPoint {
  size_t depth = 0;
  double requests_per_block = 0;
  double ns_per_block = 0;
};

DepthPoint RunDepth(size_t depth) {
  DepthPoint point;
  point.depth = depth;

  Simulation sim;
  auto machine = std::make_unique<Machine>(&sim, Machine::Config{});
  auto kernel = std::make_unique<KernelEnv>(machine.get(), MultiBootInfo{});
  machine->cpu().EnableInterrupts();
  FdevEnv fdev = DefaultFdevEnv(kernel.get());
  machine->AddDisk(kSweepBlocks + 64);
  DeviceRegistry registry;
  if (!Ok(linuxdev::InitLinuxIde(fdev, machine.get(), &registry))) {
    Fail("queue_depth", "IDE probe failed");
    return point;
  }
  auto device = registry.LookupByName("hda");
  ComPtr<BlkIoRing> ring = ComPtr<BlkIoRing>::FromQuery(device.get());
  if (!ring) {
    Fail("queue_depth", "IDE device does not grant BlkIoRing");
    return point;
  }
  auto* ide = static_cast<linuxdev::LinuxIdeDev*>(device.get());

  std::vector<uint8_t> data(kSweepBlocks * 512);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = PatternByte(depth, i);
  }

  uint64_t issued_before = 0;
  bool done = false;
  sim.Spawn("sweep", [&] {
    issued_before = ide->drive().requests_issued;
    size_t next = 0;
    while (next < kSweepBlocks) {
      size_t batch = std::min(depth, kSweepBlocks - next);
      std::vector<AioSqe> sqes(batch);
      for (size_t i = 0; i < batch; ++i) {
        size_t blk = next + i;
        sqes[i] = {AioOp::kWrite, data.data() + blk * 512,
                   static_cast<off_t64>(blk) * 512, 512, blk};
      }
      size_t submitted = 0;
      while (submitted < batch) {
        size_t accepted = 0;
        if (!Ok(ring->Submit(sqes.data() + submitted, batch - submitted,
                             &accepted))) {
          Fail("queue_depth", "Submit failed");
          return;
        }
        AioCqe cqes[64];
        size_t got = 0;
        if (!Ok(ring->Reap(cqes, 64, &got))) {
          Fail("queue_depth", "Reap failed");
          return;
        }
        for (size_t i = 0; i < got; ++i) {
          if (!Ok(cqes[i].status) || cqes[i].actual != 512) {
            Fail("queue_depth", "a CQE completed with an error");
            return;
          }
        }
        if (accepted == 0 && got == 0) {
          Fail("queue_depth", "ring made no progress");
          return;
        }
        submitted += accepted;
      }
      while (ring->Occupancy() > 0) {
        AioCqe cqes[64];
        size_t got = 0;
        if (!Ok(ring->Reap(cqes, 64, &got)) || got == 0) {
          Fail("queue_depth", "drain Reap failed");
          return;
        }
      }
      next += batch;
    }
    done = true;
  });
  if (sim.Run(600 * kNsPerSec) != Simulation::RunResult::kAllDone || !done) {
    Fail("queue_depth", "sweep fiber did not finish");
    return point;
  }

  uint64_t requests = ide->drive().requests_issued - issued_before;
  point.requests_per_block =
      static_cast<double>(requests) / static_cast<double>(kSweepBlocks);
  point.ns_per_block = static_cast<double>(sim.clock().Now()) /
                       static_cast<double>(kSweepBlocks);
  return point;
}

// ---------------------------------------------------------------------------
// Leg 2: journal commits ride the native ring.
// ---------------------------------------------------------------------------

struct JournalRing {
  uint64_t ring_sqes = 0;    // SQEs the IDE ring executed for the workload
  uint64_t ring_merges = 0;  // adjacent-run merges among them
  uint64_t commits = 0;      // journal transactions committed
};

JournalRing RunJournalRing() {
  JournalRing result;
  Simulation sim;
  auto machine = std::make_unique<Machine>(&sim, Machine::Config{});
  auto kernel = std::make_unique<KernelEnv>(machine.get(), MultiBootInfo{});
  machine->cpu().EnableInterrupts();
  FdevEnv fdev = DefaultFdevEnv(kernel.get());
  machine->AddDisk(16 * 1024);  // 8 MiB
  DeviceRegistry registry;
  if (!Ok(linuxdev::InitLinuxIde(fdev, machine.get(), &registry))) {
    Fail("journal_ring", "IDE probe failed");
    return result;
  }
  auto device = registry.LookupByName("hda");
  ComPtr<BlkIo> blkio = ComPtr<BlkIo>::FromQuery(device.get());

  trace::TraceEnv tenv;
  uint64_t sqes_before = Ambient("glue.ide.ring.sqes");
  uint64_t merges_before = Ambient("glue.ide.ring.merges");
  bool done = false;
  sim.Spawn("journal", [&] {
    if (!Ok(fs::Mkfs(blkio.get()))) {
      Fail("journal_ring", "mkfs failed");
      return;
    }
    fs::MountOptions mo;
    mo.trace = &tenv;
    ComPtr<FileSystem> fs;
    if (!Ok(fs::Offs::Mount(blkio.get(), mo, fs.Receive()))) {
      Fail("journal_ring", "mount failed");
      return;
    }
    ComPtr<Dir> root;
    fs->GetRoot(root.Receive());
    for (int i = 0; i < 24; ++i) {
      char name[16];
      std::snprintf(name, sizeof(name), "f%02d", i);
      ComPtr<File> f;
      if (!Ok(root->Create(name, 0644, f.Receive()))) {
        Fail("journal_ring", "create failed");
        return;
      }
      std::string content(2048, '\0');
      for (size_t j = 0; j < content.size(); ++j) {
        content[j] = static_cast<char>(PatternByte(i, j));
      }
      size_t n = 0;
      if (!Ok(f->Write(content.data(), 0, content.size(), &n)) ||
          n != content.size()) {
        Fail("journal_ring", "write failed");
        return;
      }
      if (i % 4 == 3 && !Ok(fs->Sync())) {
        Fail("journal_ring", "sync failed");
        return;
      }
    }
    root.Reset();
    // Snapshot while the mount (and its fs.journal.* bindings) is alive.
    result.commits = tenv.registry.Value("fs.journal.commits");
    if (!Ok(fs->Unmount())) {
      Fail("journal_ring", "unmount failed");
      return;
    }
    done = true;
  });
  if (sim.Run(600 * kNsPerSec) != Simulation::RunResult::kAllDone || !done) {
    Fail("journal_ring", "workload did not finish");
    return result;
  }

  result.ring_sqes = Ambient("glue.ide.ring.sqes") - sqes_before;
  result.ring_merges = Ambient("glue.ide.ring.merges") - merges_before;
  if (result.commits == 0) {
    Fail("journal_ring", "workload committed no journal transactions");
  }
  if (result.ring_sqes == 0) {
    Fail("journal_ring",
         "journal commits issued no ring SQEs (writer fell back to sync)");
  }
  return result;
}

// ---------------------------------------------------------------------------
// Leg 3: the stack-composition matrix.
// ---------------------------------------------------------------------------

// Bottom-up layer spec, as in crash_campaign --stack.
ComPtr<BlkIo> ApplyStack(ComPtr<BlkIo> base, const std::string& spec,
                         trace::TraceEnv* tenv) {
  ComPtr<BlkIo> top = std::move(base);
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    size_t end = comma == std::string::npos ? spec.size() : comma;
    std::string layer = spec.substr(pos, end - pos);
    pos = end + 1;
    if (layer == "stripe") {
      off_t64 size = 0;
      top->GetSize(&size);
      uint64_t half = (size / 512) / 2;
      Partition lo{.start_sector = 0, .sector_count = half};
      Partition hi{.start_sector = half, .sector_count = half};
      std::vector<ComPtr<BlkIo>> members;
      members.push_back(MakePartitionView(top.get(), lo));
      members.push_back(MakePartitionView(top.get(), hi));
      uint32_t bs = members[0]->GetBlockSize();
      uint32_t unit = (2048 + bs - 1) / bs * bs;
      top = ComPtr<BlkIo>::FromQuery(
          aio::StripeBlkIo::Create(std::move(members), unit, tenv).get());
    } else if (layer == "checksum") {
      top = ComPtr<BlkIo>::FromQuery(
          aio::ChecksumBlkIo::Create(top.get(), tenv).get());
    } else if (layer == "cache") {
      top = ComPtr<BlkIo>::FromQuery(
          fs::CacheBlkIo::Create(top.get(), 4096, 64, tenv).get());
    } else {
      std::fprintf(stderr, "unknown stack layer: %s\n", layer.c_str());
      std::exit(2);
    }
  }
  return top;
}

struct MatrixTotals {
  uint64_t compositions = 0;
  uint64_t fsck_consistent = 0;
  uint64_t detecting_stacks = 0;  // checksum stacks that caught the scribble
  uint64_t silent_stacks = 0;     // stacks that let it through undetected
  uint64_t flush_propagated = 0;  // stripe stacks whose Flush reached members
};

void RunMatrixComposition(const std::string& spec, MatrixTotals* totals) {
  const char* label = spec.empty() ? "plain" : spec.c_str();
  ++totals->compositions;

  // Trial A: the filesystem over the stack stays consistent.
  {
    trace::TraceEnv tenv;
    auto base = MemBlkIo::Create(4 * 1024 * 1024, 512);
    ComPtr<BlkIo> top =
        ApplyStack(ComPtr<BlkIo>::FromQuery(base.get()), spec, &tenv);
    bool ok = Ok(fs::Mkfs(top.get()));
    if (ok) {
      fs::MountOptions mo;
      mo.trace = &tenv;
      ComPtr<FileSystem> fs;
      ok = Ok(fs::Offs::Mount(top.get(), mo, fs.Receive()));
      if (ok) {
        ComPtr<Dir> root;
        fs->GetRoot(root.Receive());
        ok = Ok(root->Mkdir("d", 0755));
        for (int i = 0; ok && i < 24; ++i) {
          char name[16];
          std::snprintf(name, sizeof(name), "f%02d", i);
          ComPtr<File> f;
          ok = Ok(root->Create(name, 0644, f.Receive()));
          if (!ok) {
            break;
          }
          std::string content(1024 + i * 97, '\0');
          for (size_t j = 0; j < content.size(); ++j) {
            content[j] = static_cast<char>(PatternByte(i, j));
          }
          size_t n = 0;
          ok = Ok(f->Write(content.data(), 0, content.size(), &n)) &&
               n == content.size();
          if (ok) {
            std::string readback(content.size(), '\0');
            ok = Ok(f->Read(readback.data(), 0, readback.size(), &n)) &&
                 n == readback.size() && readback == content;
          }
        }
        ok = ok && Ok(fs->Sync());
        root.Reset();
        ok = ok && Ok(fs->Unmount());
      }
    }
    if (ok) {
      fs::FsckReport report = fs::Fsck(top.get());
      ok = report.superblock_valid && report.problems.empty();
      if (!ok) {
        std::printf("  [%s] fsck: %zu problems\n", label,
                    report.problems.size());
      }
    }
    if (ok) {
      ++totals->fsck_consistent;
    } else {
      Fail("stack_matrix", label);
    }
  }

  // Trial B: a scribble under the stack.  Write half a MiB through the top,
  // flush it down, flip one byte in every raw 4 KiB block, read it back.
  {
    trace::TraceEnv tenv;
    auto base = MemBlkIo::Create(2 * 1024 * 1024, 512);
    ComPtr<BlkIo> top =
        ApplyStack(ComPtr<BlkIo>::FromQuery(base.get()), spec, &tenv);
    constexpr size_t kChunk = 4096;
    constexpr size_t kSpan = 512 * 1024;
    std::vector<uint8_t> chunk(kChunk);
    bool ok = true;
    for (size_t off = 0; ok && off < kSpan; off += kChunk) {
      for (size_t j = 0; j < kChunk; ++j) {
        chunk[j] = PatternByte(7, off + j);
      }
      size_t n = 0;
      ok = Ok(top->Write(chunk.data(), off, kChunk, &n)) && n == kChunk;
    }
    ComPtr<BlkIoBarrier> barrier = ComPtr<BlkIoBarrier>::FromQuery(top.get());
    ok = ok && barrier && Ok(barrier->Flush());
    if (!ok) {
      Fail("stack_matrix", "scribble trial could not write+flush the span");
      return;
    }
    if (spec.find("stripe") != std::string::npos) {
      if (tenv.registry.Value("aio.stripe.flushes") > 0) {
        ++totals->flush_propagated;
      } else {
        Fail("stack_matrix", "Flush never reached the stripe layer");
      }
    }
    for (size_t raw = 0; raw + kChunk <= base->size(); raw += kChunk) {
      base->data()[raw + 123] ^= 0xa5;
    }
    size_t detected = 0;
    size_t silent = 0;
    for (size_t off = 0; off < kSpan; off += kChunk) {
      size_t n = 0;
      Error err = top->Read(chunk.data(), off, kChunk, &n);
      if (!Ok(err)) {
        ++detected;
        continue;
      }
      for (size_t j = 0; j < kChunk; ++j) {
        if (chunk[j] != PatternByte(7, off + j)) {
          ++silent;
          break;
        }
      }
    }
    bool has_checksum = spec.find("checksum") != std::string::npos;
    if (has_checksum) {
      if (detected > 0 && silent == 0) {
        ++totals->detecting_stacks;
      } else {
        Fail("stack_matrix",
             "a checksummed stack let a scribble through unverified");
      }
    } else {
      if (silent > 0 && detected == 0) {
        ++totals->silent_stacks;  // ablation: no detector, silent corruption
      } else {
        Fail("stack_matrix",
             "the plain stack unexpectedly detected the scribble");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Leg 4: sendfile vs the counted read+send ablation.
// ---------------------------------------------------------------------------

constexpr uint16_t kPort = 8080;
constexpr size_t kBodyBytes = 64 * 1024;
constexpr int kGets = 16;

struct HttpRun {
  bool ok = false;
  uint64_t copied = 0;             // net.tx.copied_bytes
  uint64_t sendfile_bytes = 0;     // net.tx.sendfile_bytes
  uint64_t fallback_bytes = 0;     // net.tx.sendfile_fallback_bytes
  uint64_t sendfile_responses = 0;
};

bool Exchange(const ComPtr<Socket>& sock, const std::string& wire,
              size_t expected, std::vector<http::Response>* out) {
  size_t sent = 0;
  if (!Ok(sock->Send(wire.data(), wire.size(), &sent)) ||
      sent != wire.size()) {
    return false;
  }
  const size_t target = out->size() + expected;
  http::ResponseParser parser;
  char buf[4096];
  while (out->size() < target) {
    size_t got = 0;
    Error err = sock->Recv(buf, sizeof(buf), &got);
    if (!Ok(err) || got == 0) {
      return false;
    }
    if (parser.Feed(buf, got) == http::ParseStatus::kError) {
      return false;
    }
    while (parser.HasResponse()) {
      out->push_back(parser.TakeResponse());
    }
  }
  return true;
}

HttpRun RunHttp(bool sendfile) {
  HttpRun result;
  VirtualSwitch::Config sw;
  sw.port.bits_per_second = 100ull * 1000 * 1000;
  sw.port.propagation_ns = 5000;
  World world(sw);
  Host& server = world.AddHost("www", NetConfig::kOskit);
  Host& client = world.AddHost("client", NetConfig::kNativeBsd);

  std::string body(kBodyBytes, '\0');
  for (size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<char>(PatternByte(3, i));
  }

  bool listening = false;
  bool client_ok = false;
  std::unique_ptr<http::Server> httpd;
  world.sim().Spawn("www/httpd", [&] {
    auto disk = MemBlkIo::Create(4 * 1024 * 1024, 512);
    if (!Ok(fs::Mkfs(disk.get()))) {
      return;
    }
    fs::MountOptions mo;
    mo.trace = &server.trace;
    ComPtr<FileSystem> ffs;
    if (!Ok(fs::Offs::Mount(disk.get(), mo, ffs.Receive()))) {
      return;
    }
    ComPtr<Dir> root;
    ffs->GetRoot(root.Receive());
    ComPtr<File> f;
    if (!Ok(root->Create("big.bin", 0644, f.Receive()))) {
      return;
    }
    size_t n = 0;
    if (!Ok(f->Write(body.data(), 0, body.size(), &n)) || n != body.size()) {
      return;
    }
    http::Server::Config cfg;
    cfg.bind = SockAddr{kInetAny, kPort};
    cfg.trace = &server.trace;
    cfg.sendfile = sendfile;
    cfg.now = [&world] { return world.sim().clock().Now(); };
    httpd = std::make_unique<http::Server>(
        server.socket_factory, server.stack->CreateSelector(), root, cfg);
    if (!Ok(httpd->Start())) {
      return;
    }
    listening = true;
    httpd->Run();
  });

  world.sim().Spawn("client", [&] {
    world.sim().PollWait([&] { return listening; });
    ComPtr<Socket> sock = client.MakeSocket(SockType::kStream);
    if (!Ok(sock->Connect(SockAddr{server.addr, kPort}))) {
      return;
    }
    std::vector<http::Response> rsps;
    for (int i = 0; i < kGets; ++i) {
      if (!Exchange(sock, "GET /big.bin HTTP/1.1\r\nHost: bench\r\n\r\n", 1,
                    &rsps)) {
        return;
      }
    }
    if (!Exchange(sock,
                  "GET /__quit HTTP/1.1\r\nHost: bench\r\n"
                  "Connection: close\r\n\r\n",
                  1, &rsps)) {
      return;
    }
    if (rsps.size() != static_cast<size_t>(kGets) + 1) {
      return;
    }
    for (int i = 0; i < kGets; ++i) {
      if (rsps[i].status != 200 || rsps[i].body != body) {
        return;
      }
    }
    client_ok = rsps[kGets].status == 200;
  });

  world.RunToCompletion();
  const char* leg = sendfile ? "sendfile" : "sendfile-ablation";
  if (!client_ok) {
    Fail(leg, "client did not complete its transfers intact");
    return result;
  }
  result.ok = true;
  result.copied = server.trace.registry.Value("net.tx.copied_bytes");
  result.sendfile_bytes = server.trace.registry.Value("net.tx.sendfile_bytes");
  result.fallback_bytes =
      server.trace.registry.Value("net.tx.sendfile_fallback_bytes");
  result.sendfile_responses =
      server.trace.registry.Value("http.sendfile_responses");
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  // Usage: aio_campaign [--seed-base B] [--json <path>]
  // --seed-base shifts every deterministic data pattern onto a different
  // stream, so a second CI job exercises different bytes end to end.
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--seed-base" && i + 1 < argc) {
      g_seed_base = std::strtoull(argv[++i], nullptr, 0);
    } else {
      std::fprintf(stderr,
                   "usage: aio_campaign [--seed-base B] [--json <path>]\n");
      return 2;
    }
  }

  // Leg 1.
  const size_t depths[] = {1, 2, 4, 8, 16, 32};
  std::vector<DepthPoint> sweep;
  for (size_t d : depths) {
    sweep.push_back(RunDepth(d));
    std::printf("depth %2zu: %.4f requests/block, %.0f ns/block\n", d,
                sweep.back().requests_per_block, sweep.back().ns_per_block);
  }
  if (sweep.front().requests_per_block != 1.0) {
    Fail("queue_depth", "depth 1 must cost exactly one request per block");
  }
  if (sweep.back().requests_per_block > 0.125) {
    Fail("queue_depth", "depth 32 did not merge submissions into runs");
  }
  double merge_speedup =
      sweep.back().ns_per_block > 0
          ? sweep.front().ns_per_block / sweep.back().ns_per_block
          : 0;

  // Leg 2.
  JournalRing journal = RunJournalRing();
  std::printf("journal ring: %llu sqes, %llu merges, %llu commits\n",
              static_cast<unsigned long long>(journal.ring_sqes),
              static_cast<unsigned long long>(journal.ring_merges),
              static_cast<unsigned long long>(journal.commits));

  // Leg 3.
  const std::string stacks[] = {"",
                                "stripe,checksum,cache",
                                "stripe,cache,checksum",
                                "checksum,stripe,cache",
                                "checksum,cache,stripe",
                                "cache,stripe,checksum",
                                "cache,checksum,stripe"};
  MatrixTotals matrix;
  for (const std::string& spec : stacks) {
    RunMatrixComposition(spec, &matrix);
  }
  std::printf("stack matrix: %llu/%llu consistent, %llu detecting, "
              "%llu silent\n",
              static_cast<unsigned long long>(matrix.fsck_consistent),
              static_cast<unsigned long long>(matrix.compositions),
              static_cast<unsigned long long>(matrix.detecting_stacks),
              static_cast<unsigned long long>(matrix.silent_stacks));

  // Leg 4.
  HttpRun on = RunHttp(/*sendfile=*/true);
  HttpRun off = RunHttp(/*sendfile=*/false);
  const uint64_t body_total = static_cast<uint64_t>(kGets) * kBodyBytes;
  double copied_per_body_byte = 0;
  double ablation_copied_per_body_byte = 0;
  if (on.ok && off.ok) {
    // Both runs stage identical header (and quit-body) bytes, so the
    // ablation run prices the overhead exactly.
    if (off.copied < body_total) {
      Fail("sendfile", "ablation run copied fewer bytes than the bodies");
    } else {
      uint64_t overhead = off.copied - body_total;
      copied_per_body_byte =
          (static_cast<double>(on.copied) - static_cast<double>(overhead)) /
          static_cast<double>(body_total);
      ablation_copied_per_body_byte =
          static_cast<double>(off.copied - overhead) /
          static_cast<double>(body_total);
      if (on.copied != overhead) {
        Fail("sendfile", "sendfile run copied body bytes (not zero-copy)");
      }
    }
    if (on.sendfile_bytes != body_total) {
      Fail("sendfile", "not every body byte went through the zero-copy path");
    }
    if (on.fallback_bytes != 0) {
      Fail("sendfile", "the zero-copy path fell back to copying");
    }
    if (on.sendfile_responses != static_cast<uint64_t>(kGets)) {
      Fail("sendfile", "not every static response used sendfile");
    }
    if (off.sendfile_bytes != 0 || off.sendfile_responses != 0) {
      Fail("sendfile", "the ablation run still used sendfile");
    }
  }
  std::printf("sendfile: %.3f copied bytes per body byte "
              "(ablation %.3f), %llu zero-copy bytes\n",
              copied_per_body_byte, ablation_copied_per_body_byte,
              static_cast<unsigned long long>(on.sendfile_bytes));

  std::printf("\naio campaign: %zu depths, %llu stack compositions, "
              "%d failures\n",
              sweep.size(),
              static_cast<unsigned long long>(matrix.compositions),
              g_failures);

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 2;
    }
    std::fprintf(f, "{\n  \"bench\": \"aio_campaign\",\n");
    std::fprintf(f, "  \"failures\": %d,\n", g_failures);
    std::fprintf(f, "  \"queue_depth\": {\n");
    std::fprintf(f, "    \"blocks_per_depth\": %zu,\n", kSweepBlocks);
    for (const DepthPoint& p : sweep) {
      std::fprintf(f, "    \"d%zu_requests_per_block\": %.6f,\n", p.depth,
                   p.requests_per_block);
      std::fprintf(f, "    \"d%zu_ns_per_block\": %.1f,\n", p.depth,
                   p.ns_per_block);
    }
    std::fprintf(f, "    \"merge_speedup\": %.4f\n  },\n", merge_speedup);
    std::fprintf(f, "  \"journal_ring\": {\n");
    std::fprintf(f, "    \"ring_sqes\": %llu,\n",
                 static_cast<unsigned long long>(journal.ring_sqes));
    std::fprintf(f, "    \"ring_merges\": %llu,\n",
                 static_cast<unsigned long long>(journal.ring_merges));
    std::fprintf(f, "    \"commits\": %llu\n  },\n",
                 static_cast<unsigned long long>(journal.commits));
    std::fprintf(f, "  \"stack_matrix\": {\n");
    std::fprintf(f, "    \"compositions\": %llu,\n",
                 static_cast<unsigned long long>(matrix.compositions));
    std::fprintf(f, "    \"fsck_consistent\": %llu,\n",
                 static_cast<unsigned long long>(matrix.fsck_consistent));
    std::fprintf(f, "    \"detecting_stacks\": %llu,\n",
                 static_cast<unsigned long long>(matrix.detecting_stacks));
    std::fprintf(f, "    \"silent_stacks\": %llu,\n",
                 static_cast<unsigned long long>(matrix.silent_stacks));
    std::fprintf(f, "    \"flush_propagated\": %llu\n  },\n",
                 static_cast<unsigned long long>(matrix.flush_propagated));
    std::fprintf(f, "  \"sendfile\": {\n");
    std::fprintf(f, "    \"responses\": %d,\n", kGets);
    std::fprintf(f, "    \"body_bytes\": %llu,\n",
                 static_cast<unsigned long long>(body_total));
    std::fprintf(f, "    \"copied_per_body_byte\": %.6f,\n",
                 copied_per_body_byte);
    std::fprintf(f, "    \"ablation_copied_per_body_byte\": %.6f,\n",
                 ablation_copied_per_body_byte);
    std::fprintf(f, "    \"zero_copy_bytes\": %llu,\n",
                 static_cast<unsigned long long>(on.sendfile_bytes));
    std::fprintf(f, "    \"fallback_bytes\": %llu\n  }\n",
                 static_cast<unsigned long long>(on.fallback_bytes));
    std::fprintf(f, "}\n");
    std::fclose(f);
  }

  return g_failures == 0 ? 0 : 1;
}
