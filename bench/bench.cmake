# One benchmark binary per reproduced table/figure, plus ablations.
# Included from the top-level CMakeLists so that build/bench/ contains ONLY
# the benchmark executables: `for b in build/bench/*; do $b; done`.

function(oskit_bench name)
  add_executable(${name} bench/${name}.cc)
  target_link_libraries(${name} PRIVATE oskit_testbed oskit_vm oskit_fs
    oskit_diskpart benchmark::benchmark)
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY
    ${CMAKE_BINARY_DIR}/bench)
endfunction()

oskit_bench(table1_bandwidth)
oskit_bench(table2_latency)
oskit_bench(table3_sizes)
target_compile_definitions(table3_sizes PRIVATE
  OSKIT_SOURCE_DIR="${CMAKE_SOURCE_DIR}")
oskit_bench(fig_footprint)
target_compile_definitions(fig_footprint PRIVATE
  OSKIT_BUILD_DIR="${CMAKE_BINARY_DIR}")
oskit_bench(fig_javapc)
oskit_bench(napi_rx)
oskit_bench(c10k)
oskit_bench(ablation_glue)
oskit_bench(ablation_alloc)
oskit_bench(ablation_bufio)
oskit_bench(fault_campaign)
target_link_libraries(fault_campaign PRIVATE oskit_fault oskit_amm
  oskit_memdebug)
oskit_bench(crash_campaign)
target_link_libraries(crash_campaign PRIVATE oskit_fault oskit_aio)
oskit_bench(aio_campaign)
target_link_libraries(aio_campaign PRIVATE oskit_fault oskit_aio oskit_http)
oskit_bench(tenant_campaign)
target_link_libraries(tenant_campaign PRIVATE oskit_secure)
oskit_bench(http_campaign)
target_link_libraries(http_campaign PRIVATE oskit_http oskit_secure)
oskit_bench(monitor_campaign)
target_link_libraries(monitor_campaign PRIVATE oskit_secure oskit_scribble)
