// C10k: one selector-driven server sustaining >= 10,000 concurrently
// established TCP connections across a switched fabric of loadgen hosts.
//
// The scale-out pieces under test, end to end:
//
//   * the learning VirtualSwitch fabric (src/machine/switch.h) — every host
//     on its own port, unicast after learning;
//   * the O(1) TCP internals — 4-tuple hash demux, listeners-only SYN index,
//     hierarchical timer wheel (no full PCB scans, no per-PCB sweeps);
//   * the SYN queue behind listen() with batched accept;
//   * the NetSelector readiness interface — ONE server fiber and one
//     harvester fiber per loadgen host service everything (a fiber per
//     connection at 256 KB of stack each would be 2.6 GB for 10k).
//
// Load is open-loop: each loadgen host launches connections with
// exponentially distributed inter-arrival times, each connection performs a
// 16-byte request/echo round trip, then HOLDS the connection open until
// every host has finished — so the server's net.tcp.established_peak gauge
// proves the concurrency floor.  Then everything tears down and the run
// must drain cleanly.
//
// Acceptance (full scale, the default): established_peak >= 10,000 with
// >= 4 loadgen hosts, zero full-PCB-list scans on the server's hot path,
// and p50/p99/p999 connect-to-echo latency reported to BENCH_c10k.json.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/random.h"
#include "src/testbed/testbed.h"

using namespace oskit;
using namespace oskit::testbed;

namespace {

constexpr uint16_t kPort = 10000;
constexpr size_t kMsgBytes = 16;

struct Conn {
  ComPtr<Socket> sock;
  SimTime start_ns = 0;
  size_t got = 0;
  bool requested = false;
  bool failed = false;
};

struct HostState {
  std::vector<Conn> conns;
  int done = 0;
};

struct Options {
  int hosts = 4;
  int per_host = 2600;
  uint64_t mean_arrival_us = 400;
  const char* json_path = nullptr;
};

SocketExt* QueryExt(Socket* s) {
  void* extp = nullptr;
  if (!Ok(s->Query(SocketExt::kIid, &extp))) {
    return nullptr;
  }
  return static_cast<SocketExt*>(extp);
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  size_t idx = static_cast<size_t>(p * (sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg == "--hosts" && i + 1 < argc) {
      opt.hosts = std::atoi(argv[++i]);
    } else if (arg == "--per-host" && i + 1 < argc) {
      opt.per_host = std::atoi(argv[++i]);
    } else if (arg == "--mean-us" && i + 1 < argc) {
      opt.mean_arrival_us = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--json" && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: c10k [--hosts N] [--per-host N] [--mean-us U] "
                   "[--json <path>]\n");
      return 2;
    }
  }
  const int total = opt.hosts * opt.per_host;

  std::printf("C10k: %d loadgen hosts x %d connections = %d total, "
              "open-loop mean inter-arrival %llu us per host\n\n",
              opt.hosts, opt.per_host, total,
              static_cast<unsigned long long>(opt.mean_arrival_us));

  // Gigabit ports with a little propagation: enough serialization that the
  // switch's per-port egress queues actually queue, nowhere near enough to
  // congest a 16-byte echo workload.
  VirtualSwitch::Config sw;
  sw.port.bits_per_second = 1000ull * 1000 * 1000;
  sw.port.propagation_ns = 5 * kNsPerUs;
  World world(sw);
  Host& server = world.AddHost("server", NetConfig::kNativeBsd);
  for (int h = 0; h < opt.hosts; ++h) {
    world.AddHost("load" + std::to_string(h), NetConfig::kNativeBsd);
  }

  bool listening = false;
  int hosts_done = 0;
  int failures = 0;
  std::vector<double> latencies_us;
  latencies_us.reserve(total);
  SimTime first_start = ~SimTime{0};
  SimTime last_done = 0;
  std::vector<std::unique_ptr<HostState>> states;
  for (int h = 0; h < opt.hosts; ++h) {
    auto st = std::make_unique<HostState>();
    st->conns.resize(opt.per_host);
    states.push_back(std::move(st));
  }

  // ---- the server: one fiber, one selector, everything nonblocking ----
  world.sim().Spawn("server", [&] {
    ComPtr<Socket> listener = server.MakeSocket(SockType::kStream);
    if (!Ok(listener->Bind(SockAddr{kInetAny, kPort})) ||
        !Ok(listener->Listen(512))) {
      std::fprintf(stderr, "server: bind/listen failed\n");
      std::abort();
    }
    ComPtr<NetSelector> sel = server.stack->CreateSelector();
    sel->Add(listener.get(), kNetReadable, /*edge=*/false, nullptr);
    listening = true;

    int closed = 0;
    NetReadyEvent events[64];
    while (closed < total) {
      size_t n = 0;
      sel->Wait(events, 64, /*block=*/true, &n);
      for (size_t i = 0; i < n; ++i) {
        if (events[i].socket == listener.get()) {
          SocketExt* lext = QueryExt(listener.get());
          for (;;) {
            SockAddr peers[64];
            Socket* children[64];
            size_t accepted = 0;
            lext->AcceptBatch(peers, children, 64, &accepted);
            for (size_t k = 0; k < accepted; ++k) {
              SocketExt* ext = QueryExt(children[k]);
              ext->SetNonBlocking(true);
              ext->Release();
              sel->Add(children[k], kNetReadable, /*edge=*/false,
                       children[k]);
            }
            if (accepted < 64) {
              break;
            }
          }
          lext->Release();
          continue;
        }
        Socket* conn = events[i].socket;
        char buf[256];
        for (;;) {
          size_t got = 0;
          Error err = conn->Recv(buf, sizeof(buf), &got);
          if (err == Error::kWouldBlock) {
            break;
          }
          if (!Ok(err) || got == 0) {
            sel->Remove(conn);
            conn->Release();
            ++closed;
            break;
          }
          size_t sent = 0;
          conn->Send(buf, got, &sent);
        }
      }
    }
    sel->Remove(listener.get());
    // Linger past the clients' TIME_WAIT expiry so the 2MSL timers drain
    // through the wheels inside the measured simulation.
    world.sim().SleepFor(5 * kNsPerSec);
  });

  // ---- loadgen hosts: launcher + harvester fiber pairs ----
  for (int h = 0; h < opt.hosts; ++h) {
    Host& lg = world.host(1 + h);
    HostState& st = *states[h];
    auto sel = std::make_shared<ComPtr<NetSelector>>();

    world.sim().Spawn("launcher", [&, h, sel] {
      world.sim().PollWait([&] { return listening; });
      // Warm the ARP cache before the storm: the one-deep ARP pending
      // queue would otherwise swallow SYN bursts into 6 s retransmits.
      SimTime rtt = 0;
      lg.stack->Ping(server.addr, kNsPerSec, &rtt);
      *sel = lg.stack->CreateSelector();

      Rng rng(0x5eedc10c + static_cast<uint64_t>(h));
      for (int c = 0; c < opt.per_host; ++c) {
        SimTime gap = static_cast<SimTime>(
            -static_cast<double>(opt.mean_arrival_us * kNsPerUs) *
            std::log(1.0 - rng.Unit()));
        world.sim().SleepFor(gap);
        Conn& conn = st.conns[c];
        conn.sock = lg.MakeSocket(SockType::kStream);
        SocketExt* ext = QueryExt(conn.sock.get());
        ext->SetNonBlocking(true);
        ext->Release();
        conn.start_ns = world.sim().clock().Now();
        if (first_start == ~SimTime{0}) {
          first_start = conn.start_ns;
        }
        Error err = conn.sock->Connect(SockAddr{server.addr, kPort});
        if (err != Error::kWouldBlock && !Ok(err)) {
          conn.failed = true;
          ++failures;
          ++st.done;
          continue;
        }
        // Completion of the handshake is observed as writability.
        (*sel)->Add(conn.sock.get(), kNetWritable, /*edge=*/true, &conn);
      }
    });

    world.sim().Spawn("harvester", [&, h, sel] {
      world.sim().PollWait([&] { return sel->get() != nullptr; });
      NetReadyEvent events[64];
      while (st.done < opt.per_host) {
        size_t n = 0;
        (*sel)->Wait(events, 64, /*block=*/true, &n);
        for (size_t i = 0; i < n; ++i) {
          Conn& conn = *static_cast<Conn*>(events[i].token);
          if ((events[i].events & kNetError) != 0) {
            (*sel)->Remove(conn.sock.get());
            conn.failed = true;
            ++failures;
            ++st.done;
            continue;
          }
          if (!conn.requested && (events[i].events & kNetWritable) != 0) {
            char msg[kMsgBytes] = {};
            std::snprintf(msg, sizeof(msg), "h%02dc%06d", h,
                          static_cast<int>(&conn - st.conns.data()));
            size_t sent = 0;
            conn.sock->Send(msg, sizeof(msg), &sent);
            conn.requested = true;
            (*sel)->Modify(conn.sock.get(), kNetReadable, /*edge=*/true);
            continue;
          }
          if ((events[i].events & kNetReadable) != 0) {
            char buf[64];
            size_t got = 0;
            while (Ok(conn.sock->Recv(buf, sizeof(buf), &got)) && got > 0) {
              conn.got += got;
            }
            if (conn.got >= kMsgBytes) {
              SimTime now = world.sim().clock().Now();
              latencies_us.push_back(
                  static_cast<double>(now - conn.start_ns) / kNsPerUs);
              if (now > last_done) {
                last_done = now;
              }
              // Echo complete: hold the connection open (deregistered but
              // alive) until every host is done — the concurrency barrier.
              (*sel)->Remove(conn.sock.get());
              ++st.done;
            }
          }
        }
      }
      ++hosts_done;
      world.sim().PollWait([&] { return hosts_done >= opt.hosts; });
      // Everyone reached the barrier while every connection was still
      // established; now release them all (FIN storm, server drains EOFs).
      for (Conn& conn : st.conns) {
        conn.sock.Reset();
      }
    });
  }

  world.RunToCompletion(3600 * kNsPerSec);

  // ---- report ----
  std::sort(latencies_us.begin(), latencies_us.end());
  double p50 = Percentile(latencies_us, 0.50);
  double p99 = Percentile(latencies_us, 0.99);
  double p999 = Percentile(latencies_us, 0.999);
  double pmax = latencies_us.empty() ? 0 : latencies_us.back();
  double window_s = last_done > first_start
                        ? static_cast<double>(last_done - first_start) / kNsPerSec
                        : 0;
  double conns_per_sec = window_s > 0 ? total / window_s : 0;

  const auto& sc = server.stack->counters();
  uint64_t peak = sc.tcp_established_peak.value();
  uint64_t overflows = sc.tcp_listen_overflows.value();
  uint64_t loadgen_wheel_fired = 0;
  for (int h = 0; h < opt.hosts; ++h) {
    loadgen_wheel_fired += world.host(1 + h).stack->timer_wheel().fired();
  }

  std::printf("%-34s | %12s\n", "metric", "value");
  std::printf("-----------------------------------+-------------\n");
  std::printf("%-34s | %12d\n", "connections completed",
              static_cast<int>(latencies_us.size()));
  std::printf("%-34s | %12llu\n", "server established peak",
              static_cast<unsigned long long>(peak));
  std::printf("%-34s | %12.0f\n", "conns/sec (sim, open-loop window)",
              conns_per_sec);
  std::printf("%-34s | %12.1f\n", "connect-to-echo p50 (us)", p50);
  std::printf("%-34s | %12.1f\n", "connect-to-echo p99 (us)", p99);
  std::printf("%-34s | %12.1f\n", "connect-to-echo p999 (us)", p999);
  std::printf("%-34s | %12.1f\n", "connect-to-echo max (us)", pmax);
  std::printf("%-34s | %12llu\n", "listen overflows",
              static_cast<unsigned long long>(overflows));
  std::printf("%-34s | %12llu\n", "server pcb hash hits",
              static_cast<unsigned long long>(sc.pcb_hash_hits.value()));
  std::printf("%-34s | %12llu\n", "server full PCB scans",
              static_cast<unsigned long long>(sc.pcb_scan_full.value()));
  std::printf("%-34s | %12llu\n", "server wheel timers fired",
              static_cast<unsigned long long>(
                  server.stack->timer_wheel().fired()));
  std::printf("%-34s | %12llu\n", "loadgen wheel timers fired",
              static_cast<unsigned long long>(loadgen_wheel_fired));
  std::printf("%-34s | %12llu\n", "switch frames unicast",
              static_cast<unsigned long long>(
                  world.vswitch()->frames_unicast()));
  std::printf("%-34s | %12llu\n", "switch frames flooded",
              static_cast<unsigned long long>(
                  world.vswitch()->frames_flooded()));

  bool fail = false;
  std::printf("\nShape checks:\n");

  bool ok = static_cast<int>(latencies_us.size()) == total && failures == 0;
  fail |= !ok;
  std::printf("  completion:  %zu/%d round trips, %d failures  %s\n",
              latencies_us.size(), total, failures, ok ? "PASS" : "FAIL");

  // The hold-open barrier means the peak proves true concurrency.
  ok = peak >= static_cast<uint64_t>(total);
  fail |= !ok;
  std::printf("  concurrency: established peak %llu >= %d held-open  %s\n",
              static_cast<unsigned long long>(peak), total,
              ok ? "PASS" : "FAIL");

  // The headline: the C10k floor, with a real multi-host fabric.
  if (total >= 10000) {
    ok = peak >= 10000 && opt.hosts >= 4;
    fail |= !ok;
    std::printf("  c10k:        %llu concurrent connections from %d hosts "
                "(floor 10000 from >= 4)  %s\n",
                static_cast<unsigned long long>(peak), opt.hosts,
                ok ? "PASS" : "FAIL");
  } else {
    std::printf("  c10k:        SKIPPED (reduced scale: %d < 10000)\n", total);
  }

  // The O(1) internals carried the whole load: hash demux only, the linear
  // scan path never ran, and connection timers went through the wheel.
  ok = sc.pcb_scan_full.value() == 0 && sc.pcb_hash_hits.value() > 0 &&
       loadgen_wheel_fired > 0;
  fail |= !ok;
  std::printf("  internals:   %llu hash hits, %llu full scans, %llu wheel "
              "fires  %s\n",
              static_cast<unsigned long long>(sc.pcb_hash_hits.value()),
              static_cast<unsigned long long>(sc.pcb_scan_full.value()),
              static_cast<unsigned long long>(loadgen_wheel_fired),
              ok ? "PASS" : "FAIL");

  // Every registration was retired: nothing leaked in the selectors.
  ok = sc.select_registered.value() == 0 &&
       sc.select_adds.value() == static_cast<uint64_t>(total) + 1;
  fail |= !ok;
  std::printf("  selector:    %llu adds (conns+listener), %llu still "
              "registered  %s\n",
              static_cast<unsigned long long>(sc.select_adds.value()),
              static_cast<unsigned long long>(sc.select_registered.value()),
              ok ? "PASS" : "FAIL");

  // The switch really switched: one port per host, learning converged to
  // unicast (floods are ARP broadcasts only).
  ok = world.vswitch()->port_count() == static_cast<size_t>(opt.hosts) + 1 &&
       world.vswitch()->frames_unicast() > world.vswitch()->frames_flooded();
  fail |= !ok;
  std::printf("  fabric:      %zu ports, %llu unicast vs %llu flooded  %s\n",
              world.vswitch()->port_count(),
              static_cast<unsigned long long>(
                  world.vswitch()->frames_unicast()),
              static_cast<unsigned long long>(
                  world.vswitch()->frames_flooded()),
              ok ? "PASS" : "FAIL");

  if (opt.json_path != nullptr) {
    std::FILE* f = std::fopen(opt.json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", opt.json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"c10k\",\n");
    std::fprintf(f, "  \"hosts\": %d,\n  \"per_host\": %d,\n  \"total\": %d,\n",
                 opt.hosts, opt.per_host, total);
    std::fprintf(f, "  \"completed\": %zu,\n  \"failures\": %d,\n",
                 latencies_us.size(), failures);
    std::fprintf(f, "  \"established_peak\": %llu,\n",
                 static_cast<unsigned long long>(peak));
    std::fprintf(f, "  \"conns_per_sec\": %.1f,\n", conns_per_sec);
    std::fprintf(f,
                 "  \"latency_us\": {\"p50\": %.1f, \"p99\": %.1f, "
                 "\"p999\": %.1f, \"max\": %.1f},\n",
                 p50, p99, p999, pmax);
    std::fprintf(f, "  \"listen_overflows\": %llu,\n",
                 static_cast<unsigned long long>(overflows));
    std::fprintf(f, "  \"pcb_hash_hits\": %llu,\n",
                 static_cast<unsigned long long>(sc.pcb_hash_hits.value()));
    std::fprintf(f, "  \"pcb_scan_full\": %llu,\n",
                 static_cast<unsigned long long>(sc.pcb_scan_full.value()));
    std::fprintf(f, "  \"wheel_fired_loadgen\": %llu,\n",
                 static_cast<unsigned long long>(loadgen_wheel_fired));
    std::fprintf(f, "  \"switch\": {\"ports\": %zu, \"unicast\": %llu, "
                 "\"flooded\": %llu, \"macs_learned\": %llu}\n",
                 world.vswitch()->port_count(),
                 static_cast<unsigned long long>(
                     world.vswitch()->frames_unicast()),
                 static_cast<unsigned long long>(
                     world.vswitch()->frames_flooded()),
                 static_cast<unsigned long long>(
                     world.vswitch()->macs_learned()));
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", opt.json_path);
  }

  return fail ? 1 : 0;
}
