// Crash-point campaign: the durability counterpart of the fault campaign.
//
// Every run mounts the journaled filesystem on the Linux IDE driver with the
// disk's volatile write cache enabled, executes a deterministic metadata
// workload, and kills the power at a chosen durable-write index under a
// seeded cut policy (drop-all, drop-subset, reorder, torn sector run).  The
// post-crash image is then remounted host-side (journal replay + fsck) and
// held to three assertions:
//
//   (a) the volume is consistent — fsck finds no problems, no orphaned
//       blocks, no leaked inodes,
//   (b) everything an acknowledged Sync covered is intact byte-for-byte,
//   (c) the recovered state equals the model at SOME operation boundary at
//       or after the last acknowledged Sync — transactions are atomic, so
//       no in-between state may ever become visible.
//
// Phases:
//   A — exhaustive: a power cut at EVERY durable write index (drop-all),
//   B — lossy: seeded drop-subset / reorder / tear cuts across the sweep,
//   C — TCP-fed: an OSKit host persists a verified TCP stream, cut mid-run,
//   D — ablation: the same cuts against a journal-free volume MUST corrupt
//       it at least once, proving the detector has teeth.
//
// Aggregate acceptance additionally requires the recovery machinery to have
// demonstrably acted: fs.journal.replays, fs.journal.discarded_txns and
// disk.wcache.dropped all nonzero across the sweep.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/aio/stack.h"
#include "src/com/memblkio.h"
#include "src/dev/linux/linux_ide.h"
#include "src/diskpart/diskpart.h"
#include "src/fs/cache.h"
#include "src/fs/ffs.h"
#include "src/fs/fsck.h"
#include "src/testbed/testbed.h"

using namespace oskit;
using namespace oskit::testbed;

namespace {

constexpr uint64_t kDiskSectors = 4 * 1024 * 1024 / 512;
constexpr uint16_t kPort = 7100;
constexpr size_t kStreamBytes = 48 * 1024;
const char* const kDirMarker = "\x01:dir";

int g_failures = 0;

// --stack: the blkio layer composition mounted between the filesystem and
// the IDE device, listed bottom-up ("stripe,checksum,cache" = cache on
// top).  Empty = the classic direct mount.  The identical composition is
// rebuilt over the post-crash image for recovery, so fsck sees the stack's
// logical geometry with fresh (volatile) layer state — exactly what a
// reboot gives.
std::string g_stack;

void Fail(const char* phase, uint64_t run, const char* what) {
  std::printf("FAIL: %s run %llu [stack=%s]: %s\n", phase,
              static_cast<unsigned long long>(run),
              g_stack.empty() ? "plain" : g_stack.c_str(), what);
  ++g_failures;
}

// Builds the --stack composition over `base`.  The striping layer splits
// the SAME underlying device into two partition-view members (the power cut
// stays atomic across all stripes, as it would be for two platters behind
// one controller).
ComPtr<BlkIo> ApplyStack(ComPtr<BlkIo> base, trace::TraceEnv* tenv) {
  ComPtr<BlkIo> top = std::move(base);
  size_t pos = 0;
  while (pos < g_stack.size()) {
    size_t comma = g_stack.find(',', pos);
    size_t end = comma == std::string::npos ? g_stack.size() : comma;
    std::string layer = g_stack.substr(pos, end - pos);
    pos = end + 1;
    if (layer == "stripe") {
      off_t64 size = 0;
      top->GetSize(&size);
      uint64_t half = (size / 512) / 2;
      Partition lo{.start_sector = 0, .sector_count = half};
      Partition hi{.start_sector = half, .sector_count = half};
      std::vector<ComPtr<BlkIo>> members;
      members.push_back(MakePartitionView(top.get(), lo));
      members.push_back(MakePartitionView(top.get(), hi));
      // Unit = 2048 rounded up to the member block size (a cache layer
      // below the stripe presents 4 KiB blocks).
      uint32_t bs = members[0]->GetBlockSize();
      uint32_t unit = (2048 + bs - 1) / bs * bs;
      top = ComPtr<BlkIo>::FromQuery(
          aio::StripeBlkIo::Create(std::move(members), unit, tenv).get());
    } else if (layer == "checksum") {
      top = ComPtr<BlkIo>::FromQuery(
          aio::ChecksumBlkIo::Create(top.get(), tenv).get());
    } else if (layer == "cache") {
      top = ComPtr<BlkIo>::FromQuery(
          fs::CacheBlkIo::Create(top.get(), 4096, 64, tenv).get());
    } else {
      std::fprintf(stderr, "unknown stack layer: %s\n", layer.c_str());
      std::exit(2);
    }
  }
  return top;
}

using Aggregate = std::map<std::string, uint64_t>;
// Root-namespace model: file name -> content (kDirMarker for directories).
using Model = std::map<std::string, std::string>;

void MergeSnapshot(const trace::CounterSnapshot& snap, Aggregate* agg) {
  for (const auto& [name, value] : snap) {
    (*agg)[name] += value;
  }
}

uint8_t PatternByte(uint64_t salt, size_t i) {
  return static_cast<uint8_t>(salt * 131 + i * 29 + (i >> 9));
}

std::string PatternContent(uint64_t salt, size_t bytes) {
  std::string content(bytes, '\0');
  for (size_t i = 0; i < bytes; ++i) {
    content[i] = static_cast<char>(PatternByte(salt, i));
  }
  return content;
}

// ---------------------------------------------------------------------------
// The local metadata workload and its operation-boundary model.
//
// Journal commits happen only at metadata-operation entry (NoteMetaOp) and
// at explicit Sync, so the set of states a crash may legally expose is
// exactly {model after op j : j >= op index of the last acknowledged Sync}.
// The workload records the model after every operation to let verification
// check membership.
// ---------------------------------------------------------------------------

struct WorkloadTrace {
  std::vector<Model> snapshots;  // model after op 0, 1, ...
  size_t last_acked = 0;         // snapshot index covered by the last ok Sync
  bool mount_ok = false;
  bool finished = false;         // ran to completion and unmounted (no cut)
};

// One create+write pair.  The write is not a commit boundary on its own (no
// NoteMetaOp), so the pair snapshots as a single op.
bool CreateFile(Dir* root, Model* model, const std::string& name,
                const std::string& content) {
  ComPtr<File> f;
  if (!Ok(root->Create(name.c_str(), 0644, f.Receive()))) {
    return false;
  }
  size_t actual = 0;
  if (!Ok(f->Write(content.data(), 0, content.size(), &actual)) ||
      actual != content.size()) {
    return false;
  }
  (*model)[name] = content;
  return true;
}

// Runs the deterministic workload against a mounted root.  Stops early once
// the armed power cut fires (the disk reports every request with kIo).
void RunOps(FileSystem* fs, Dir* root, uint64_t salt, WorkloadTrace* t) {
  Model model;
  auto snap = [&] { t->snapshots.push_back(model); };
  snap();  // op 0: the empty, freshly mounted state
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 3; ++i) {
      std::string name =
          "r" + std::to_string(round) + "f" + std::to_string(i);
      size_t bytes = 600 + 977 * ((round * 3 + i) % 5);
      if (!CreateFile(root, &model, name, PatternContent(salt + round * 16 + i, bytes))) {
        return;
      }
      snap();
    }
    std::string dir = "d" + std::to_string(round);
    if (!Ok(root->Mkdir(dir.c_str(), 0755))) {
      return;
    }
    model[dir] = kDirMarker;
    snap();
    if (round >= 1) {
      std::string victim = "r" + std::to_string(round - 1) + "f1";
      if (!Ok(root->Unlink(victim.c_str()))) {
        return;
      }
      model.erase(victim);
      snap();
      std::string old_name = "r" + std::to_string(round - 1) + "f2";
      std::string new_name = "m" + std::to_string(round);
      if (!Ok(root->Rename(old_name.c_str(), root, new_name.c_str()))) {
        return;
      }
      model[new_name] = model[old_name];
      model.erase(old_name);
      snap();
    }
    if (round >= 2) {
      std::string dead_dir = "d" + std::to_string(round - 2);
      if (!Ok(root->Rmdir(dead_dir.c_str()))) {
        return;
      }
      model.erase(dead_dir);
      snap();
    }
    if (!Ok(fs->Sync())) {
      return;
    }
    t->last_acked = t->snapshots.size() - 1;
  }
}

// Reads the mounted root back into a Model (content per regular file,
// kDirMarker per directory).
bool ObserveState(Dir* root, Model* out) {
  uint64_t offset = 0;
  DirEntry entries[16];
  size_t count = 0;
  for (;;) {
    if (!Ok(root->ReadDir(&offset, entries, 16, &count))) {
      return false;
    }
    if (count == 0) {
      return true;
    }
    for (size_t i = 0; i < count; ++i) {
      std::string name(entries[i].name);
      if (name == "." || name == "..") {
        continue;
      }
      if (entries[i].type == FileType::kDirectory) {
        (*out)[name] = kDirMarker;
        continue;
      }
      ComPtr<File> f;
      if (!Ok(root->Lookup(name.c_str(), f.Receive()))) {
        return false;
      }
      FileStat stat;
      if (!Ok(f->GetStat(&stat))) {
        return false;
      }
      std::string content(stat.size, '\0');
      size_t actual = 0;
      if (stat.size != 0 &&
          (!Ok(f->Read(content.data(), 0, content.size(), &actual)) ||
           actual != content.size())) {
        return false;
      }
      (*out)[name] = content;
    }
  }
}

// ---------------------------------------------------------------------------
// One crash case: workload under an armed cut, then host-side recovery.
// ---------------------------------------------------------------------------

struct CaseResult {
  bool cut_fired = false;
  bool consistent = false;     // fsck (after replay) found no problems
  bool state_valid = false;    // observed state matches a legal op boundary
  uint64_t total_writes = 0;   // durable writes in an uncut probe run
};

// arm_at == 0 runs the workload uncut (the probe that measures the sweep).
CaseResult RunLocalCase(const char* phase, uint64_t run_id, bool journaled,
                        uint64_t arm_at, DiskHw::CutPolicy policy,
                        uint64_t seed, bool expect_consistent, Aggregate* agg) {
  trace::TraceEnv tenv;
  Simulation sim;
  Machine machine(&sim, Machine::Config{});
  DiskHw* disk = machine.AddDisk(kDiskSectors);
  KernelEnv kernel(&machine, MultiBootInfo{}, KernelEnv::SleepMode::kFiber,
                   &tenv, nullptr);
  machine.cpu().EnableInterrupts();
  FdevEnv fdev = DefaultFdevEnv(&kernel);
  DeviceRegistry registry;
  linuxdev::InitLinuxIde(fdev, &machine, &registry);
  auto device = registry.LookupByName("hda");
  ComPtr<BlkIo> blkio =
      ApplyStack(ComPtr<BlkIo>::FromQuery(device.get()), &tenv);

  CaseResult result;
  WorkloadTrace t;
  sim.Spawn("workload", [&] {
    fs::MkfsOptions mkfs;
    mkfs.journal_blocks = journaled ? fs::MkfsOptions::kAutoJournal : 0;
    if (!Ok(fs::Mkfs(blkio.get(), mkfs))) {
      Fail(phase, run_id, "mkfs failed on a healthy disk");
      return;
    }
    // Everything before this point (the formatted image) is durable; the
    // workload's own writes go through the volatile cache.
    disk->EnableWriteCache(true);
    fs::MountOptions mount;
    mount.trace = &tenv;
    FileSystem* raw = nullptr;
    if (!Ok(fs::Offs::Mount(blkio.get(), mount, &raw))) {
      Fail(phase, run_id, "mount failed on a healthy disk");
      return;
    }
    t.mount_ok = true;
    ComPtr<FileSystem> fs(raw);
    ComPtr<Dir> root;
    fs->GetRoot(root.Receive());
    if (arm_at != 0) {
      disk->ArmPowerCut(arm_at, policy, seed);
    }
    RunOps(fs.get(), root.get(), seed, &t);
    root.Reset();
    if (!disk->powered_off() && Ok(fs->Unmount())) {
      t.finished = true;
    }
  });
  if (sim.Run(600 * kNsPerSec) != Simulation::RunResult::kAllDone) {
    Fail(phase, run_id, "workload deadlocked or timed out");
    return result;
  }
  result.cut_fired = disk->powered_off();
  result.total_writes = disk->writes_completed();
  if (!t.mount_ok) {
    return result;
  }

  if (arm_at == 0) {
    // Probe run: no crash to recover from; just sanity-check completion.
    if (!t.finished) {
      Fail(phase, run_id, "uncut probe run did not complete");
    }
    MergeSnapshot(tenv.registry.Snapshot(), agg);
    return result;
  }

  // Host-side recovery of the post-crash image, through the same stack.
  auto post_mem = MemBlkIo::CreateFrom(disk->raw(), disk->raw_size(), 512);
  ComPtr<BlkIo> post =
      ApplyStack(ComPtr<BlkIo>::FromQuery(post_mem.get()), &tenv);
  fs::FsckOptions fsck_options;
  fsck_options.replay_journal = true;
  fs::FsckReport report = fs::Fsck(post.get(), fsck_options);
  result.consistent = report.superblock_valid && report.problems.empty();
  (*agg)["campaign.crash.replayed_txns"] += report.journal_replayed_txns;
  (*agg)["campaign.crash.discarded_txns"] += report.journal_discarded_txns;

  Model observed;
  if (result.consistent) {
    fs::MountOptions mount;
    mount.trace = &tenv;
    FileSystem* raw = nullptr;
    if (Ok(fs::Offs::Mount(post.get(), mount, &raw))) {
      ComPtr<FileSystem> fs(raw);
      ComPtr<Dir> root;
      fs->GetRoot(root.Receive());
      if (ObserveState(root.get(), &observed)) {
        for (size_t j = t.last_acked; j < t.snapshots.size(); ++j) {
          if (observed == t.snapshots[j]) {
            result.state_valid = true;
            break;
          }
        }
      }
      root.Reset();
      // Snapshot while the mount (and its fs.journal.* bindings) is alive.
      MergeSnapshot(tenv.registry.Snapshot(), agg);
      fs->Unmount();
    } else if (expect_consistent) {
      Fail(phase, run_id, "post-crash remount failed after successful fsck");
    }
  } else {
    MergeSnapshot(tenv.registry.Snapshot(), agg);
  }

  if (expect_consistent) {
    if (!result.consistent) {
      Fail(phase, run_id, "post-crash volume failed fsck after replay");
      for (const std::string& p : report.problems) {
        std::printf("      fsck: %s\n", p.c_str());
      }
    } else if (!result.state_valid) {
      Fail(phase, run_id,
           "recovered state matches no legal operation boundary "
           "(lost acknowledged data or exposed a partial transaction)");
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Phase C: a TCP-fed workload.  One OSKit host persists a pattern-checked
// stream to its disk with a Sync per chunk; power dies mid-transfer.
// ---------------------------------------------------------------------------

void RunTcpCase(uint64_t run_id, uint64_t arm_at, DiskHw::CutPolicy policy,
                uint64_t seed, Aggregate* agg) {
  World world(EthernetWire::Config{}, nullptr);
  Host& fs_host = world.AddHost("fs", NetConfig::kOskit);
  Host& src_host = world.AddHost("src", NetConfig::kNativeBsd);
  // The disk arrives after the kernel booted, so its driver glue (and the
  // campaign's own counter merge below) is wired here by hand.
  DiskHw* disk = fs_host.machine->AddDisk(kDiskSectors);
  linuxdev::InitLinuxIde(fs_host.fdev, fs_host.machine.get(),
                         &fs_host.registry);
  auto device = fs_host.registry.LookupByName("hda");
  ComPtr<BlkIo> blkio = ComPtr<BlkIo>::FromQuery(device.get());

  size_t acked_bytes = 0;
  bool listening = false;
  bool mount_ok = false;

  world.sim().Spawn("fs-server", [&] {
    if (!Ok(fs::Mkfs(blkio.get()))) {
      Fail("tcp", run_id, "mkfs failed");
      return;
    }
    disk->EnableWriteCache(true);
    fs::MountOptions mount;
    mount.trace = &fs_host.trace;
    FileSystem* raw = nullptr;
    if (!Ok(fs::Offs::Mount(blkio.get(), mount, &raw))) {
      Fail("tcp", run_id, "mount failed");
      return;
    }
    mount_ok = true;
    ComPtr<FileSystem> fs(raw);
    ComPtr<Dir> root;
    fs->GetRoot(root.Receive());
    ComPtr<File> file;
    if (!Ok(root->Create("tcpdata", 0644, file.Receive()))) {
      return;
    }
    ComPtr<Socket> listener = fs_host.MakeSocket(SockType::kStream);
    if (!Ok(listener->Bind(SockAddr{kInetAny, kPort})) ||
        !Ok(listener->Listen(1))) {
      Fail("tcp", run_id, "listen failed");
      return;
    }
    listening = true;
    SockAddr peer;
    ComPtr<Socket> conn;
    if (!Ok(listener->Accept(&peer, conn.Receive()))) {
      return;
    }
    disk->ArmPowerCut(arm_at, policy, seed);
    uint8_t buf[4096];
    size_t received = 0;
    size_t n = 0;
    while (Ok(conn->Recv(buf, sizeof(buf), &n)) && n > 0) {
      size_t actual = 0;
      if (!Ok(file->Write(buf, received, n, &actual)) || actual != n) {
        break;  // the cut fired mid-write; stop persisting
      }
      received += n;
      if (!Ok(fs->Sync())) {
        break;
      }
      acked_bytes = received;  // this prefix was acknowledged durable
    }
  });

  world.sim().Spawn("stream-source", [&] {
    world.sim().PollWait([&] { return listening; });
    ComPtr<Socket> conn = src_host.MakeSocket(SockType::kStream);
    if (!Ok(conn->Connect(SockAddr{fs_host.addr, kPort}))) {
      return;
    }
    uint8_t buf[4096];
    size_t done = 0;
    while (done < kStreamBytes) {
      size_t chunk = sizeof(buf);
      if (chunk > kStreamBytes - done) {
        chunk = kStreamBytes - done;
      }
      for (size_t i = 0; i < chunk; ++i) {
        buf[i] = PatternByte(seed, done + i);
      }
      size_t n = 0;
      if (!Ok(conn->Send(buf, chunk, &n))) {
        return;  // the server died with the power: expected
      }
      done += n;
    }
    conn->Shutdown(SockShutdown::kWrite);
    size_t n = 0;
    while (Ok(conn->Recv(buf, sizeof(buf), &n)) && n > 0) {
    }
  });

  if (world.sim().Run(1800 * kNsPerSec) != Simulation::RunResult::kAllDone) {
    Fail("tcp", run_id, "tcp phase deadlocked or timed out");
    return;
  }
  if (!mount_ok) {
    return;
  }
  if (!disk->powered_off()) {
    // The stream fit before the cut index: nothing to recover, still count.
    (*agg)["campaign.tcp.uncut_runs"] += 1;
    return;
  }

  auto post = MemBlkIo::CreateFrom(disk->raw(), disk->raw_size(), 512);
  fs::FsckOptions fsck_options;
  fsck_options.replay_journal = true;
  fs::FsckReport report = fs::Fsck(post.get(), fsck_options);
  if (!report.superblock_valid || !report.problems.empty()) {
    Fail("tcp", run_id, "post-crash volume failed fsck after replay");
    return;
  }
  trace::TraceEnv vtenv;
  fs::MountOptions mount;
  mount.trace = &vtenv;
  FileSystem* raw = nullptr;
  if (!Ok(fs::Offs::Mount(post.get(), mount, &raw))) {
    Fail("tcp", run_id, "post-crash remount failed");
    return;
  }
  ComPtr<FileSystem> fs(raw);
  ComPtr<Dir> root;
  fs->GetRoot(root.Receive());
  ComPtr<File> file;
  if (!Ok(root->Lookup("tcpdata", file.Receive()))) {
    if (acked_bytes != 0) {
      Fail("tcp", run_id, "acknowledged stream file vanished");
    }
  } else {
    FileStat stat;
    file->GetStat(&stat);
    bool ok = stat.size >= acked_bytes && stat.size <= kStreamBytes;
    std::string content(stat.size, '\0');
    size_t actual = 0;
    if (ok && stat.size != 0) {
      ok = Ok(file->Read(content.data(), 0, content.size(), &actual)) &&
           actual == content.size();
    }
    for (size_t i = 0; ok && i < content.size(); ++i) {
      if (static_cast<uint8_t>(content[i]) != PatternByte(seed, i)) {
        ok = false;
      }
    }
    if (!ok) {
      Fail("tcp", run_id, "recovered stream prefix shorter than the "
                          "acknowledged bytes or corrupted");
    } else {
      (*agg)["campaign.tcp.streams_verified"] += 1;
      (*agg)["campaign.tcp.acked_bytes"] += acked_bytes;
    }
  }
  root.Reset();
  MergeSnapshot(vtenv.registry.Snapshot(), agg);
  fs->Unmount();
  // The host-side disk counters were bound to no kernel (late AddDisk), so
  // fold them in by hand.
  (*agg)["disk.wcache.writes"] += disk->wcache_writes_counter().value();
  (*agg)["disk.wcache.flushes"] += disk->wcache_flushes_counter().value();
  (*agg)["disk.wcache.dropped"] += disk->wcache_dropped_counter().value();
  (*agg)["disk.wcache.torn"] += disk->wcache_torn_counter().value();
}

// ---------------------------------------------------------------------------
// Aggregate acceptance.
// ---------------------------------------------------------------------------

struct Requirement {
  const char* what;
  std::vector<const char*> any_of;
};

int CheckAggregate(const Aggregate& agg) {
  const std::vector<Requirement> required = {
      {"journal transactions replayed at mount",
       {"fs.journal.replays", "campaign.crash.replayed_txns"}},
      {"torn transactions discarded at mount",
       {"fs.journal.discarded_txns", "campaign.crash.discarded_txns"}},
      {"unflushed writes dropped by power cuts", {"disk.wcache.dropped"}},
      {"sector runs torn by power cuts", {"disk.wcache.torn"}},
      {"transactions committed", {"fs.journal.commits"}},
      {"write barriers issued", {"fs.cache.barriers"}},
      {"tcp stream prefixes verified", {"campaign.tcp.streams_verified"}},
      {"ablation cuts detected by fsck or the model",
       {"campaign.ablation.detected"}},
  };
  int missing = 0;
  std::printf("\naggregate durability checklist:\n");
  for (const Requirement& req : required) {
    uint64_t sum = 0;
    for (const char* name : req.any_of) {
      auto it = agg.find(name);
      if (it != agg.end()) {
        sum += it->second;
      }
    }
    std::printf("  %-46s %12llu %s\n", req.what,
                static_cast<unsigned long long>(sum),
                sum != 0 ? "ok" : "MISSING");
    if (sum == 0) {
      std::printf("FAIL: aggregate: no evidence that %s\n", req.what);
      ++missing;
    }
  }
  return missing;
}

// The local phases (probe, exhaustive, lossy, ablation) for ONE stack
// composition.  Results accumulate into *totals for the final report.
struct SweepTotals {
  uint64_t runs_a = 0;
  uint64_t runs_b = 0;
  uint64_t ablation_runs = 0;
  uint64_t detected = 0;
  uint64_t durable_writes = 0;  // the FIRST sweep's probe measurement
};

void RunLocalPhases(uint64_t seeds, uint64_t seed_base, uint64_t stride,
                    Aggregate* agg, SweepTotals* totals) {
  // Probe: learn how many durable writes the journaled workload issues.
  CaseResult probe =
      RunLocalCase("probe", 0, /*journaled=*/true, /*arm_at=*/0,
                   DiskHw::CutPolicy::kDropAll, 0, true, agg);
  uint64_t total = probe.total_writes;
  std::printf("crash campaign [stack=%s]: %llu durable writes per run, "
              "stride %llu, %llu seeds\n",
              g_stack.empty() ? "plain" : g_stack.c_str(),
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(stride),
              static_cast<unsigned long long>(seeds));
  if (total == 0) {
    Fail("probe", 0, "workload issued no writes");
  }
  if (totals->durable_writes == 0) {
    totals->durable_writes = total;
  }

  // Phase A: exhaustive drop-all cut at every durable write index.
  uint64_t runs_a = 0;
  uint64_t fired_a = 0;
  for (uint64_t k = 1; k <= total; k += stride) {
    CaseResult r = RunLocalCase("exhaustive", k, true, k,
                                DiskHw::CutPolicy::kDropAll, 1000 + k, true,
                                agg);
    ++runs_a;
    fired_a += r.cut_fired ? 1 : 0;
  }
  if (runs_a != 0 && fired_a == 0) {
    Fail("exhaustive", 0, "no cut ever fired");
  }
  (*agg)["campaign.crash.exhaustive_runs"] += runs_a;
  totals->runs_a += runs_a;

  // Phase B: lossy policies (subset / reorder / tear) across the same sweep,
  // once per seed.
  const DiskHw::CutPolicy lossy[] = {DiskHw::CutPolicy::kDropSubset,
                                     DiskHw::CutPolicy::kReorder,
                                     DiskHw::CutPolicy::kTear};
  uint64_t runs_b = 0;
  for (uint64_t seed = seed_base + 1; seed <= seed_base + seeds; ++seed) {
    for (uint64_t k = 1; k <= total; k += stride) {
      RunLocalCase("lossy", seed * 100000 + k, true, k, lossy[k % 3],
                   seed * 7919 + k, true, agg);
      ++runs_b;
    }
  }
  (*agg)["campaign.crash.lossy_runs"] += runs_b;
  totals->runs_b += runs_b;

  // Phase D: the ablation.  A journal-free volume under the lossy cuts must
  // corrupt at least once, or the consistency assertions above are vacuous.
  CaseResult ablation_probe =
      RunLocalCase("ablation-probe", 0, /*journaled=*/false, 0,
                   DiskHw::CutPolicy::kDropAll, 0, true, agg);
  uint64_t detected = 0;
  uint64_t ablation_runs = 0;
  for (uint64_t k = 1; k <= ablation_probe.total_writes; k += stride) {
    CaseResult r =
        RunLocalCase("ablation", k, false, k, lossy[k % 2],  // subset / tear
                     2000 + seed_base * 4099 + k, /*expect_consistent=*/false,
                     agg);
    ++ablation_runs;
    if (r.cut_fired && (!r.consistent || !r.state_valid)) {
      ++detected;
    }
  }
  (*agg)["campaign.ablation.runs"] += ablation_runs;
  (*agg)["campaign.ablation.detected"] += detected;
  totals->ablation_runs += ablation_runs;
  totals->detected += detected;
}

}  // namespace

int main(int argc, char** argv) {
  // Usage: crash_campaign [--seeds N] [--seed-base B] [--stride K]
  //                        [--json <path>] [--stack <spec>|matrix]
  // --seed-base shifts the whole seeded portion of the sweep (lossy, tcp,
  // ablation) onto disjoint RNG streams, so a second CI job adds coverage
  // instead of repeating the first.  --stack mounts the filesystem on a
  // blkio layer composition (bottom-up spec, e.g. "stripe,checksum,cache");
  // "matrix" sweeps the local phases over every permutation of the three
  // layers, proving the campaign passes unchanged over any composition.
  uint64_t seeds = 2;
  uint64_t seed_base = 0;
  uint64_t stride = 1;
  const char* json_path = nullptr;
  std::string stack_arg;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg == "--seeds" && i + 1 < argc) {
      seeds = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--seed-base" && i + 1 < argc) {
      seed_base = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--stride" && i + 1 < argc) {
      stride = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--stack" && i + 1 < argc) {
      stack_arg = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: crash_campaign [--seeds N] [--seed-base B] "
                   "[--stride K] [--json <path>] [--stack <spec>|matrix]\n");
      return 2;
    }
  }
  if (stride == 0) {
    stride = 1;
  }
  std::vector<std::string> stacks;
  if (stack_arg == "matrix") {
    stacks = {"",
              "stripe,checksum,cache",  // cache over checksum over stripe
              "stripe,cache,checksum",
              "checksum,stripe,cache",
              "checksum,cache,stripe",
              "cache,stripe,checksum",
              "cache,checksum,stripe"};
  } else {
    stacks = {stack_arg};
  }

  Aggregate agg;
  SweepTotals totals;
  for (const std::string& stack : stacks) {
    g_stack = stack;
    RunLocalPhases(seeds, seed_base, stride, &agg, &totals);
  }
  g_stack.clear();
  uint64_t runs_a = totals.runs_a;
  uint64_t runs_b = totals.runs_b;
  uint64_t ablation_runs = totals.ablation_runs;
  uint64_t detected = totals.detected;

  // Phase C: TCP-fed stream, cut at seeded indices under each lossy policy
  // (plain mount: the stack is orthogonal to how the bytes arrive).
  const DiskHw::CutPolicy lossy[] = {DiskHw::CutPolicy::kDropSubset,
                                     DiskHw::CutPolicy::kReorder,
                                     DiskHw::CutPolicy::kTear};
  uint64_t tcp_runs = 0;
  for (uint64_t seed = seed_base + 1; seed <= seed_base + seeds; ++seed) {
    for (int p = 0; p < 3; ++p) {
      // Arm index folded into [20, 116]: the stream issues well over that
      // many durable writes, so every seeded case actually cuts mid-stream.
      RunTcpCase(seed * 10 + p, 20 + (seed * 37 + p * 11) % 97, lossy[p], seed,
                 &agg);
      ++tcp_runs;
    }
  }
  agg["campaign.tcp.runs"] += tcp_runs;

  g_failures += CheckAggregate(agg);

  std::printf("\ncrash campaign: %llu exhaustive + %llu lossy + %llu tcp + "
              "%llu ablation runs, %llu ablation corruptions detected, "
              "%d failures\n",
              static_cast<unsigned long long>(runs_a),
              static_cast<unsigned long long>(runs_b),
              static_cast<unsigned long long>(tcp_runs),
              static_cast<unsigned long long>(ablation_runs),
              static_cast<unsigned long long>(detected), g_failures);

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 2;
    }
    std::fprintf(f, "{\n  \"bench\": \"crash_campaign\",\n");
    std::fprintf(f, "  \"seeds\": %llu,\n",
                 static_cast<unsigned long long>(seeds));
    std::fprintf(f, "  \"stride\": %llu,\n",
                 static_cast<unsigned long long>(stride));
    std::fprintf(f, "  \"durable_writes_per_run\": %llu,\n",
                 static_cast<unsigned long long>(totals.durable_writes));
    std::fprintf(f, "  \"stack_sweeps\": %zu,\n", stacks.size());
    std::fprintf(f, "  \"failures\": %d,\n", g_failures);
    std::fprintf(f, "  \"counters\": {\n");
    size_t remaining = agg.size();
    for (const auto& [name, value] : agg) {
      std::fprintf(f, "    \"%s\": %llu%s\n", name.c_str(),
                   static_cast<unsigned long long>(value),
                   --remaining != 0 ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
  }

  return g_failures == 0 ? 0 : 1;
}
