// Fault-injection campaign: the robustness counterpart of the performance
// tables.
//
// Sweeps N deterministic seeds, each driving two workloads under injected
// faults plus the wire's own loss/reorder model:
//
//   TCP phase   — a pattern-verified transfer between an OSKit host (FreeBSD
//                 stack + Linux driver over COM) and a native-BSD host, with
//                 NIC faults (tx drop, rx corruption, lost/spurious IRQs),
//                 allocator OOM (lmm + mbuf import), and PIT skew armed.
//                 Odd seeds run the OSKit host with interrupt mitigation +
//                 polled RX (kOskitNapi) and a higher missed-IRQ rate: a
//                 lost IRQ there strands a whole coalesced batch, so the rx
//                 watchdog must demonstrably recover under mitigation too.
//   disk phase  — mkfs/mount the fs component on the Linux IDE driver, then
//                 write/sync/read-back files under disk errors, hangs and
//                 slowdowns, with workload buffers in a memdebug arena.
//
// Invariants asserted per seed, and in aggregate at the end:
//   * no panics (the process completing IS the assertion),
//   * no memdebug faults or leaks,
//   * data intact or an error surfaced — never silent corruption,
//   * every injected fault class shows nonzero recovery counters.
//
// Any violation prints a FAIL line (run_all.sh greps for it) and the run
// exits nonzero.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/amm/amm.h"
#include "src/dev/linux/linux_ide.h"
#include "src/fault/fault.h"
#include "src/fs/ffs.h"
#include "src/libc/malloc.h"
#include "src/memdebug/memdebug.h"
#include "src/testbed/testbed.h"

using namespace oskit;
using namespace oskit::testbed;

namespace {

constexpr uint16_t kPort = 7000;
constexpr size_t kTransferBytes = 200 * 1024;

int g_failures = 0;

void Fail(uint64_t seed, const char* what) {
  std::printf("FAIL: seed %llu: %s\n", static_cast<unsigned long long>(seed),
              what);
  ++g_failures;
}

using Aggregate = std::map<std::string, uint64_t>;

void MergeSnapshot(const trace::CounterSnapshot& snap, Aggregate* agg) {
  for (const auto& [name, value] : snap) {
    // fault.* fire counts come from MergeFires (the env outlives the hosts'
    // registries and is the authoritative copy); skip them here so the two
    // sources do not double count.
    if (name.rfind("fault.", 0) == 0) {
      continue;
    }
    (*agg)[name] += value;
  }
}

void MergeFires(const fault::FaultEnv& env, Aggregate* agg) {
  env.ForEachSite([agg](const char* site, const fault::FaultSpec&, bool,
                        uint64_t, uint64_t fires) {
    (*agg)[std::string("fault.") + site] += fires;
  });
}

fault::FaultSpec Prob(uint32_t pct, uint64_t arg = 0) {
  fault::FaultSpec spec;
  spec.probability_percent = pct;
  spec.arg = arg;
  return spec;
}

uint8_t PatternByte(uint64_t seed, size_t i) {
  return static_cast<uint8_t>(seed * 131 + i * 29 + (i >> 9));
}

// ---------------------------------------------------------------------------
// TCP phase
// ---------------------------------------------------------------------------

void RunTcpPhase(uint64_t seed, Aggregate* agg) {
  fault::FaultEnv fenv(seed);

  EthernetWire::Config wc;
  wc.loss_percent = static_cast<uint32_t>(seed % 3);  // 0-2 %
  wc.reorder_jitter_ns = (seed % 4) * 100 * kNsPerUs;
  wc.fault_seed = seed;
  World world(wc, &fenv);
  const bool napi = (seed % 2) == 1;
  Host& a = world.AddHost("a",
                          napi ? NetConfig::kOskitNapi : NetConfig::kOskit);
  Host& b = world.AddHost("b", NetConfig::kNativeBsd);

  // Arm only after both hosts have booted: boot-time allocation is not the
  // robustness contract under test.  Under mitigation, IRQs are raised far
  // less often (once per coalesced batch) and only the quiet-tail ones can
  // strand (mid-stream, the next arrival re-fires the threshold), so napi
  // seeds push the miss rate up to make watchdog recoveries a certainty
  // across the sweep rather than a coin flip.
  fenv.Arm("nic.tx.drop", Prob(2));
  fenv.Arm("nic.rx.corrupt", Prob(2));
  fenv.Arm("nic.rx.miss_irq", Prob(napi ? 30 : 4));
  fenv.Arm("nic.irq.spurious", Prob(2));
  fenv.Arm("mbuf.rx_alloc", Prob(2));
  fenv.Arm("lmm.alloc", Prob(1));
  fenv.Arm("pit.skew", Prob(10, /*skew percent=*/20));

  // Nothing in the stack needs the periodic PIT (protocol timers run off the
  // simulation clock), so run it here to exercise skew + drift compensation.
  uint64_t ticks = 0;
  a.kernel->SetTimer(100, [&ticks] { ++ticks; });

  bool listening = false;
  bool server_error = false;
  bool client_error = false;
  bool client_done = false;
  std::vector<uint8_t> got;
  got.reserve(kTransferBytes);

  world.sim().Spawn("server", [&] {
    ComPtr<Socket> listener = a.MakeSocket(SockType::kStream);
    if (!Ok(listener->Bind(SockAddr{kInetAny, kPort})) ||
        !Ok(listener->Listen(1))) {
      server_error = true;
      return;
    }
    listening = true;
    SockAddr peer;
    ComPtr<Socket> conn;
    if (!Ok(listener->Accept(&peer, conn.Receive()))) {
      server_error = true;
      return;
    }
    uint8_t buf[4096];
    size_t n = 0;
    Error err = Error::kOk;
    while (Ok(err = conn->Recv(buf, sizeof(buf), &n)) && n > 0) {
      got.insert(got.end(), buf, buf + n);
    }
    if (!Ok(err)) {
      server_error = true;
    }
    size_t sent = 0;
    conn->Send("done", 4, &sent);
    conn->Shutdown(SockShutdown::kWrite);
  });

  world.sim().Spawn("client", [&] {
    world.sim().PollWait([&] { return listening; });
    ComPtr<Socket> conn = b.MakeSocket(SockType::kStream);
    if (!Ok(conn->Connect(SockAddr{a.addr, kPort}))) {
      client_error = true;
      return;
    }
    uint8_t buf[4096];
    size_t done = 0;
    while (done < kTransferBytes) {
      size_t chunk = sizeof(buf);
      if (chunk > kTransferBytes - done) {
        chunk = kTransferBytes - done;
      }
      for (size_t i = 0; i < chunk; ++i) {
        buf[i] = PatternByte(seed, done + i);
      }
      size_t n = 0;
      if (!Ok(conn->Send(buf, chunk, &n))) {
        client_error = true;
        return;
      }
      done += n;
    }
    conn->Shutdown(SockShutdown::kWrite);
    size_t n = 0;
    while (Ok(conn->Recv(buf, sizeof(buf), &n)) && n > 0) {
    }
    client_done = true;
  });

  // The deadline must clear TCP's worst case, not the happy path: one
  // retransmit give-up episode (RTO doubling from the BSD-default 6 s to the
  // 64 s cap, twelve times) takes ~660 simulated seconds before the
  // connection aborts with kTimedOut.
  Simulation::RunResult result = world.sim().Run(1800 * kNsPerSec);
  a.kernel->StopTimer();
  fenv.DisarmAll();

  if (result != Simulation::RunResult::kAllDone) {
    Fail(seed, result == Simulation::RunResult::kDeadlock
                   ? "tcp phase deadlocked"
                   : "tcp phase hit the simulated-time deadline");
  } else if (server_error || client_error) {
    // An error surfaced cleanly: acceptable under injected faults, as long
    // as it was REPORTED.  Nothing to verify beyond that.
    (*agg)["campaign.tcp.errors_surfaced"] += 1;
  } else {
    bool intact = client_done && got.size() == kTransferBytes;
    if (!intact) {
      Fail(seed, "tcp transfer truncated without an error");
    }
    for (size_t i = 0; intact && i < got.size(); ++i) {
      if (got[i] != PatternByte(seed, i)) {
        Fail(seed, "SILENT CORRUPTION: tcp payload mismatch");
        intact = false;
      }
    }
    if (intact) {
      (*agg)["campaign.tcp.transfers_ok"] += 1;
    }
  }

  // Keyed separately so the aggregate can require that the poll path and
  // the watchdog-under-mitigation each acted on the napi seeds specifically
  // (the plain glue.recov.rx_watchdog sum would be satisfied by the
  // per-frame seeds alone).
  if (napi) {
    (*agg)["campaign.napi.polls"] +=
        a.trace.registry.Value("glue.rx.poll.polls");
    (*agg)["campaign.napi.watchdog_recoveries"] +=
        a.trace.registry.Value("glue.recov.rx_watchdog");
    (*agg)["campaign.napi.coalesced_irqs"] +=
        a.trace.registry.Value("nic.rx.coalesce.irqs");
  }

  MergeSnapshot(a.trace.registry.Snapshot(), agg);
  MergeSnapshot(b.trace.registry.Snapshot(), agg);
  MergeFires(fenv, agg);
}

// ---------------------------------------------------------------------------
// Disk/filesystem phase
// ---------------------------------------------------------------------------

void RunDiskPhase(uint64_t seed, Aggregate* agg) {
  fault::FaultEnv fenv(seed ^ 0xd15c);
  trace::TraceEnv tenv;
  Simulation sim;
  Machine machine(&sim, Machine::Config{});
  machine.AddDisk(16 * 1024 * 1024 / 512);
  KernelEnv kernel(&machine, MultiBootInfo{}, KernelEnv::SleepMode::kFiber,
                   &tenv, &fenv);
  machine.cpu().EnableInterrupts();
  FdevEnv fdev = DefaultFdevEnv(&kernel);
  DeviceRegistry registry;
  linuxdev::InitLinuxIde(fdev, &machine, &registry);
  auto device = registry.LookupByName("hda");
  ComPtr<BlkIo> blkio = ComPtr<BlkIo>::FromQuery(device.get());

  // Workload buffers live in a memdebug arena: overruns, double frees and
  // leaks in the recovery paths show up as faults here.
  MemDebug md(libc::HostMemEnv());

  constexpr int kFiles = 6;
  constexpr size_t kFileBytes = 6000;
  bool phase_error = false;

  sim.Spawn("disk-workload", [&] {
    if (!Ok(fs::Mkfs(blkio.get()))) {
      Fail(seed, "mkfs failed on a clean disk");
      phase_error = true;
      return;
    }
    FileSystem* raw = nullptr;
    if (!Ok(fs::Offs::Mount(blkio.get(), &raw))) {
      Fail(seed, "mount failed on a clean disk");
      phase_error = true;
      return;
    }
    ComPtr<FileSystem> fs(raw);
    ComPtr<Dir> root;
    fs->GetRoot(root.Receive());

    // Faults go live only once the filesystem is up: transient I/O errors,
    // a hanging controller (watchdog-reset territory), and slow completions
    // stretched far past the driver's 50 ms watchdog.
    fenv.Arm("disk.read.error", Prob(3));
    fenv.Arm("disk.write.error", Prob(3));
    // The hang and slowdown trigger on a fixed request ordinal so EVERY seed
    // walks the watchdog-reset path at least twice, on top of a small random
    // chance of more.
    fault::FaultSpec stuck = Prob(1);
    stuck.nth_call = 5;
    stuck.max_fires = 2;
    fenv.Arm("disk.stuck", stuck);
    fault::FaultSpec slow = Prob(2, /*delay multiplier=*/1000);
    slow.nth_call = 9;
    fenv.Arm("disk.slow", slow);

    bool written_ok[kFiles] = {};
    char name[16];
    for (int f = 0; f < kFiles; ++f) {
      std::snprintf(name, sizeof(name), "file%d", f);
      auto* data = static_cast<uint8_t*>(md.Alloc(kFileBytes, "campaign.file"));
      for (size_t i = 0; i < kFileBytes; ++i) {
        data[i] = PatternByte(seed + f, i);
      }
      ComPtr<File> file;
      if (!Ok(root->Create(name, 0644, file.Receive()))) {
        md.Free(data);
        continue;  // error surfaced; nothing on disk to verify
      }
      size_t actual = 0;
      Error err = file->Write(data, 0, kFileBytes, &actual);
      written_ok[f] = Ok(err) && actual == kFileBytes;
      md.Free(data);
    }
    fs->Sync();

    // Verification runs with faults disarmed: whatever the filesystem
    // REPORTED as durably written must read back intact.
    fenv.DisarmAll();
    for (int f = 0; f < kFiles; ++f) {
      if (!written_ok[f]) {
        continue;
      }
      std::snprintf(name, sizeof(name), "file%d", f);
      ComPtr<File> file;
      if (!Ok(root->Lookup(name, file.Receive()))) {
        Fail(seed, "SILENT CORRUPTION: written file vanished");
        continue;
      }
      auto* back = static_cast<uint8_t*>(md.Alloc(kFileBytes, "campaign.readback"));
      size_t actual = 0;
      Error err = file->Read(back, 0, kFileBytes, &actual);
      if (!Ok(err) || actual != kFileBytes) {
        Fail(seed, "readback of a committed file failed after disarm");
      } else {
        for (size_t i = 0; i < kFileBytes; ++i) {
          if (back[i] != PatternByte(seed + f, i)) {
            Fail(seed, "SILENT CORRUPTION: file payload mismatch");
            break;
          }
        }
      }
      md.Free(back);
      (*agg)["campaign.fs.files_verified"] += 1;
    }
    root.Reset();
    fs->Unmount();
  });

  Simulation::RunResult result = sim.Run(600 * kNsPerSec);
  fenv.DisarmAll();
  if (result != Simulation::RunResult::kAllDone && !phase_error) {
    Fail(seed, result == Simulation::RunResult::kDeadlock
                   ? "disk phase deadlocked"
                   : "disk phase hit the simulated-time deadline");
  }

  // The AMM is exercised directly: its address-space maps are pure data
  // structures, so the fault contract (kNoSpace on injected OOM, clean
  // retry after) is checked without a device in the loop.
  Amm amm(0, 1 << 20);
  amm.SetFaultEnv(&fenv);
  fault::FaultSpec nth;
  nth.nth_call = 1;
  fenv.Arm("amm.alloc", nth);
  uint64_t addr = 0;
  if (amm.Allocate(&addr, 4096, Amm::kAllocated) != Error::kNoSpace) {
    Fail(seed, "amm did not surface the injected allocation failure");
  } else if (!Ok(amm.Allocate(&addr, 4096, Amm::kAllocated))) {
    Fail(seed, "amm retry after injected failure did not succeed");
  } else {
    (*agg)["campaign.amm.recoveries"] += 1;
  }
  fenv.DisarmAll();

  if (md.CheckAll() != 0) {
    Fail(seed, "memdebug fence check found faults");
  }
  if (md.DumpLeaks() != 0) {
    Fail(seed, "memdebug found leaked workload buffers");
  }
  if (md.faults_detected() != 0) {
    Fail(seed, "memdebug detected allocation faults during the workload");
  }

  MergeSnapshot(tenv.registry.Snapshot(), agg);
  MergeFires(fenv, agg);
}

// ---------------------------------------------------------------------------
// Aggregate acceptance: every fault class must have fired AND the matching
// recovery machinery must have acted at least once across the sweep.
// ---------------------------------------------------------------------------

struct Requirement {
  const char* what;
  std::vector<const char*> any_of;  // sum over these must be nonzero
};

int CheckAggregate(const Aggregate& agg, uint64_t seeds) {
  const std::vector<Requirement> required = {
      {"nic tx-drop faults fired", {"fault.nic.tx.drop"}},
      {"nic rx-corrupt faults fired", {"fault.nic.rx.corrupt"}},
      {"nic missed-IRQ faults fired", {"fault.nic.rx.miss_irq"}},
      {"nic spurious-IRQ faults fired", {"fault.nic.irq.spurious"}},
      {"mbuf-import OOM faults fired", {"fault.mbuf.rx_alloc"}},
      {"lmm OOM faults fired", {"fault.lmm.alloc"}},
      {"amm OOM faults fired", {"fault.amm.alloc"}},
      {"pit skew faults fired", {"fault.pit.skew"}},
      {"disk read-error faults fired", {"fault.disk.read.error"}},
      {"disk write-error faults fired", {"fault.disk.write.error"}},
      {"disk hang faults fired", {"fault.disk.stuck"}},
      {"disk slowdown faults fired", {"fault.disk.slow"}},
      {"tcp retransmitted around loss", {"net.tcp.retransmits"}},
      {"corruption caught by checksums",
       {"net.ip.bad_checksum", "net.tcp.bad_checksum"}},
      {"rx watchdog recovered lost IRQs",
       {"glue.recov.rx_watchdog", "bsd.rx.watchdog_recoveries"}},
      {"rx poll path exercised under faults", {"campaign.napi.polls"}},
      {"rx watchdog recovered under mitigation",
       {"campaign.napi.watchdog_recoveries"}},
      {"coalesced IRQs raised under faults",
       {"campaign.napi.coalesced_irqs"}},
      {"rx import OOM dropped cleanly",
       {"net.rx.alloc_drops", "bsd.rx.alloc_drops"}},
      {"driver OOM surfaced or dropped cleanly",
       {"glue.recv.oom_drops", "net.tx.errors"}},
      {"pit drift was compensated", {"machine.pit.skew_compensations"}},
      {"ide retried transient errors", {"glue.ide.retries"}},
      {"ide watchdog reset a hung controller", {"glue.ide.watchdog_resets"}},
      {"amm retried after injected OOM", {"campaign.amm.recoveries"}},
  };

  int missing = 0;
  std::printf("\naggregate recovery checklist (%llu seeds):\n",
              static_cast<unsigned long long>(seeds));
  for (const Requirement& req : required) {
    uint64_t sum = 0;
    for (const char* name : req.any_of) {
      auto it = agg.find(name);
      if (it != agg.end()) {
        sum += it->second;
      }
    }
    std::printf("  %-42s %12llu %s\n", req.what,
                static_cast<unsigned long long>(sum), sum != 0 ? "ok" : "MISSING");
    if (sum == 0) {
      std::printf("FAIL: aggregate: no evidence that %s\n", req.what);
      ++missing;
    }
  }
  return missing;
}

}  // namespace

int main(int argc, char** argv) {
  // Usage: fault_campaign [--seeds N] [--json <path>]
  uint64_t seeds = 16;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg == "--seeds" && i + 1 < argc) {
      seeds = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: fault_campaign [--seeds N] [--json <path>]\n");
      return 2;
    }
  }

  std::printf("fault campaign: %llu seeds, tcp + disk phases\n",
              static_cast<unsigned long long>(seeds));
  Aggregate agg;
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    RunTcpPhase(seed, &agg);
    RunDiskPhase(seed, &agg);
  }

  g_failures += CheckAggregate(agg, seeds);

  std::printf("\ncampaign: %llu seeds swept, %llu transfers ok, "
              "%llu files verified, %d failures\n",
              static_cast<unsigned long long>(seeds),
              static_cast<unsigned long long>(agg["campaign.tcp.transfers_ok"]),
              static_cast<unsigned long long>(agg["campaign.fs.files_verified"]),
              g_failures);

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 2;
    }
    std::fprintf(f, "{\n  \"bench\": \"fault_campaign\",\n");
    std::fprintf(f, "  \"seeds\": %llu,\n",
                 static_cast<unsigned long long>(seeds));
    std::fprintf(f, "  \"failures\": %d,\n", g_failures);
    std::fprintf(f, "  \"counters\": {\n");
    size_t remaining = agg.size();
    for (const auto& [name, value] : agg) {
      std::fprintf(f, "    \"%s\": %llu%s\n", name.c_str(),
                   static_cast<unsigned long long>(value),
                   --remaining != 0 ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
  }

  return g_failures == 0 ? 0 : 1;
}
