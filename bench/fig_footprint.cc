// §6.2.5 reproduction: the network-computer memory footprint.
//
// Paper: "the static (code+data) size of our executable is 412KB, including
// one ethernet driver, networking (121KB), the Kaffe virtual machine and
// native libraries (132KB), and various glue code" — and "using the OSKit it
// proved trivial to build a version of Java/PC that included networking but
// no file system."
//
// Here we report the static sizes of the component libraries a netcomputer
// image links (networking, driver, VM, kernel support, C library) and of
// the ones it can LEAVE OUT because the components are separable (§4.2):
// the filesystem, disk partitioning, and memdebug libraries.  Sizes are the
// built static archives' member object sizes.

#include <cstdio>
#include <filesystem>

#ifndef OSKIT_BUILD_DIR
#define OSKIT_BUILD_DIR "build"
#endif

namespace {

namespace fsys = std::filesystem;

long ArchiveSize(const fsys::path& lib) {
  std::error_code ec;
  auto size = fsys::file_size(lib, ec);
  return ec ? -1 : static_cast<long>(size);
}

struct Entry {
  const char* lib;
  const char* role;
  bool in_image;  // linked into the netcomputer
};

}  // namespace

int main() {
  const fsys::path build = OSKIT_BUILD_DIR;

  const Entry kEntries[] = {
      {"src/net/liboskit_net.a", "TCP/IP stack (FreeBSD-idiom)", true},
      {"src/dev/linux/liboskit_dev_linux.a", "Ethernet+IDE drivers (Linux-idiom)",
       true},
      {"src/vm/liboskit_vm.a", "KVM virtual machine (Kaffe stand-in)", true},
      {"src/kern/liboskit_kern.a", "kernel support library", true},
      {"src/libc/liboskit_libc.a", "minimal C library", true},
      {"src/lmm/liboskit_lmm.a", "list memory manager", true},
      {"src/com/liboskit_com.a", "COM interface support", true},
      {"src/boot/liboskit_boot.a", "bootstrap + bmodfs", true},
      {"src/sleep/liboskit_sleep.a", "sleep records", true},
      {"src/dev/fdev/liboskit_fdev.a", "device framework", true},
      {"src/fs/liboskit_fs.a", "file system (LEFT OUT of the image)", false},
      {"src/diskpart/liboskit_diskpart.a", "partitioning (LEFT OUT)", false},
      {"src/memdebug/liboskit_memdebug.a", "malloc debugging (LEFT OUT)", false},
  };

  std::printf("Memory footprint of a 'network computer' image (paper §6.2.5)\n");
  std::printf("(static component archive sizes from this build; the paper's "
              "image was 412KB total,\n networking 121KB, VM+libs 132KB — "
              "absolute bytes differ, the separability does not)\n\n");
  std::printf("%-42s %-38s %10s\n", "library", "role", "bytes");
  std::printf("--------------------------------------------------------------"
              "----------------------------\n");

  long image_total = 0;
  long omitted_total = 0;
  long net_bytes = 0;
  long vm_bytes = 0;
  for (const Entry& entry : kEntries) {
    long size = ArchiveSize(build / entry.lib);
    if (size < 0) {
      std::printf("%-42s %-38s %10s\n", entry.lib, entry.role, "missing");
      continue;
    }
    std::printf("%-42s %-38s %10ld\n", entry.lib, entry.role, size);
    if (entry.in_image) {
      image_total += size;
    } else {
      omitted_total += size;
    }
    if (std::string_view(entry.lib).find("oskit_net.a") != std::string_view::npos) {
      net_bytes = size;
    }
    if (std::string_view(entry.lib).find("oskit_vm.a") != std::string_view::npos) {
      vm_bytes = size;
    }
  }
  std::printf("--------------------------------------------------------------"
              "----------------------------\n");
  std::printf("%-42s %-38s %10ld\n", "netcomputer image (linked components)", "",
              image_total);
  std::printf("%-42s %-38s %10ld\n", "separable components left out", "",
              omitted_total);

  std::printf("\nShape checks:\n");
  std::printf("  networking share of the image: %.0f%%  (paper: 121/412 = "
              "29%%)\n", 100.0 * net_bytes / image_total);
  std::printf("  VM share of the image:         %.0f%%  (paper: 132/412 = "
              "32%%)\n", 100.0 * vm_bytes / image_total);
  std::printf("  modularity saving: leaving out fs/diskpart/memdebug trims "
              "%.0f%% of the would-be image\n",
              100.0 * omitted_total / (image_total + omitted_total));
  return 0;
}
