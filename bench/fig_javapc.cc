// §6.2.6 reproduction: network throughput of the language-based system.
//
// Paper: "using a measurement program written in Java, we measured a
// sustained TCP receive throughput of 78Mbps over a 100Mbps Ethernet ...
// the TCP send throughput was lower at 59Mbps due to the extra copy.  This
// relatively high performance is not surprising considering that the BSD
// network protocols have been tuned for over 15 years."
//
// Here the measurement program is KVM bytecode (the Kaffe stand-in) doing
// bulk socket operations through the VM's syscall layer, on an OSKit-
// configured host; the peer is a native C endpoint.  Reported:
//   * wire-limited simulated throughput on the 100 Mbps wire (saturation);
//   * software-path throughput (wall), where the VM interpreter overhead
//     and the OSKit glue overheads actually bite, compared against the
//     same transfer driven by native C code.

#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <string>
#include <vector>

#include "src/testbed/ttcp.h"
#include "src/vm/kvm.h"

using namespace oskit;
using namespace oskit::testbed;

namespace {

constexpr uint16_t kPort = 5010;
constexpr uint16_t kSysConnect = 16;   // -> conn handle
constexpr uint16_t kSysListenAccept = 17;  // -> conn handle
constexpr uint16_t kSysRecvBulk = 18;  // pop conn -> push bytes (0 on EOF)
constexpr uint16_t kSysSendBulk = 19;  // pop size, pop conn -> push bytes sent
constexpr uint16_t kSysShutdown = 20;  // pop conn

// Binds the VM's bulk-I/O "native methods" to the host's socket.
class BulkSys : public vm::SysHandler {
 public:
  BulkSys(Host* host, InetAddr peer) : host_(host), peer_(peer), buffer_(16384, 0x6b) {}

  Error Syscall(uint16_t number, vm::Vm& vm, int thread) override {
    switch (number) {
      case kSysConnect: {
        // The peer's listener may not be up yet; retry like any client.
        for (;;) {
          conn_ = host_->MakeSocket(SockType::kStream);
          if (Ok(conn_->Connect(SockAddr{peer_, kPort}))) {
            break;
          }
          host_->machine->sim().SleepFor(10 * kNsPerMs);
        }
        vm.Push(thread, 1);
        return Error::kOk;
      }
      case kSysListenAccept: {
        ComPtr<Socket> listener = host_->MakeSocket(SockType::kStream);
        Error err = listener->Bind(SockAddr{kInetAny, kPort});
        if (Ok(err)) {
          err = listener->Listen(1);
        }
        if (!Ok(err)) {
          return err;
        }
        SockAddr from;
        err = listener->Accept(&from, conn_.Receive());
        if (!Ok(err)) {
          return err;
        }
        vm.Push(thread, 1);
        return Error::kOk;
      }
      case kSysRecvBulk: {
        vm.Pop(thread);  // conn handle (single connection)
        size_t n = 0;
        Error err = conn_->Recv(buffer_.data(), buffer_.size(), &n);
        if (!Ok(err)) {
          return err;
        }
        vm.Push(thread, static_cast<int64_t>(n));
        return Error::kOk;
      }
      case kSysSendBulk: {
        auto size = static_cast<size_t>(vm.Pop(thread));
        vm.Pop(thread);  // conn handle
        if (size > buffer_.size()) {
          size = buffer_.size();
        }
        size_t n = 0;
        Error err = conn_->Send(buffer_.data(), size, &n);
        if (!Ok(err)) {
          return err;
        }
        vm.Push(thread, static_cast<int64_t>(n));
        return Error::kOk;
      }
      case kSysShutdown:
        vm.Pop(thread);
        return conn_->Shutdown(SockShutdown::kWrite);
      default:
        return Error::kNotImpl;
    }
  }

 private:
  Host* host_;
  InetAddr peer_;
  ComPtr<Socket> conn_;
  std::vector<uint8_t> buffer_;
};

struct RunResult {
  double wall_seconds;
  SimTime sim_ns;
  size_t bytes;
  uint64_t glue_copied_bytes = 0;   // VM-side mbuf->skbuff copies
  uint64_t vm_instructions = 0;
  double WallMbps() const { return bytes * 8.0 / wall_seconds / 1e6; }
  double SimMbps() const { return bytes * 8.0 / (sim_ns / 1e9) / 1e6; }

  // The same P6-scaled model as bench/table1_bandwidth, with the VM
  // interpreter's real instruction count added to the VM side.
  double ModelMbps() const {
    constexpr double kMemcpyBw = 70e6;
    constexpr double kChecksumBw = 50e6;
    constexpr double kFixedPerSegment = 100e-6;
    constexpr double kNsPerVmInsn = 100;  // ~20 cycles at 200 MHz
    double b = static_cast<double>(bytes);
    double segments = b / 1448.0;
    double side_s = segments * kFixedPerSegment + b / kMemcpyBw +
                    b / kChecksumBw +
                    static_cast<double>(glue_copied_bytes) / kMemcpyBw +
                    static_cast<double>(vm_instructions) * kNsPerVmInsn / 1e9;
    double wire_s = b * 8 / 100e6;
    double t = side_s > wire_s ? side_s : wire_s;
    return b * 8 / t / 1e6;
  }
};

// Runs one transfer with the VM on `vm_sends ? sender : receiver` side.
RunResult RunVmTransfer(bool vm_sends, size_t total_bytes, bool wire_limited) {
  EthernetWire::Config wire;
  if (wire_limited) {
    wire.bits_per_second = 100 * 1000 * 1000;
    wire.propagation_ns = 5 * kNsPerUs;
  }
  World world(wire);
  Host& a = world.AddHost("native", NetConfig::kOskit);
  Host& b = world.AddHost("javapc", NetConfig::kOskit);
  // This figure reproduces the paper's 1997 measurement, whose send-side
  // deficit came from the flatten-on-send glue copy.  Force that historical
  // behaviour; the scatter-gather path is measured in table1_bandwidth.
  a.stack->SetForceTxFlatten(true);
  b.stack->SetForceTxFlatten(true);

  size_t moved = 0;

  // The VM side program: connect/accept, then pump bytes in 16K syscalls.
  std::string program;
  if (vm_sends) {
    program =
        "sys 16\n"          // connect -> handle
        "store 0\n"
        "push " + std::to_string(total_bytes) + "\nstore 1\n"
        "pump:\n"
        "load 0\npush 16384\nsys 19\n"  // sent = send(conn, 16K)
        "load 1\nswap\nsub\nstore 1\n"  // remaining -= sent
        "load 1\npush 0\ngt\njnz pump\n"
        "load 0\nsys 20\n"              // shutdown
        "halt\n";
  } else {
    program =
        "sys 17\n"          // listen+accept -> handle
        "store 0\n"
        "pump:\n"
        "load 0\nsys 18\n"  // n = recv(conn)
        "dup\ngstore 0\n"   // remember last n
        "jnz pump\n"        // until EOF
        "halt\n";
  }
  std::vector<uint8_t> code;
  std::string asm_err;
  OSKIT_ASSERT_MSG(Ok(vm::Assemble(program, &code, &asm_err)), asm_err.c_str());

  BulkSys sys(&b, a.addr);
  auto machine = std::make_unique<vm::Vm>(std::move(code), &sys);
  OSKIT_ASSERT(Ok(machine->Verify()));
  machine->SpawnThread(0);

  world.sim().Spawn("javapc/vm", [&] {
    Error err = machine->Run();
    OSKIT_ASSERT_MSG(Ok(err), "VM faulted");
  });

  world.sim().Spawn("native/peer", [&] {
    std::vector<uint8_t> buf(16384, 0x33);
    if (vm_sends) {
      ComPtr<Socket> listener = a.MakeSocket(SockType::kStream);
      OSKIT_ASSERT(Ok(listener->Bind(SockAddr{kInetAny, kPort})));
      OSKIT_ASSERT(Ok(listener->Listen(1)));
      SockAddr from;
      ComPtr<Socket> conn;
      OSKIT_ASSERT(Ok(listener->Accept(&from, conn.Receive())));
      size_t n = 0;
      while (Ok(conn->Recv(buf.data(), buf.size(), &n)) && n > 0) {
        moved += n;
      }
    } else {
      // Native sender: retry until the VM's listener is up.
      ComPtr<Socket> conn;
      for (;;) {
        conn = a.MakeSocket(SockType::kStream);
        if (Ok(conn->Connect(SockAddr{b.addr, kPort}))) {
          break;
        }
        world.sim().SleepFor(10 * kNsPerMs);
      }
      size_t sent = 0;
      while (sent < total_bytes) {
        size_t n = 0;
        OSKIT_ASSERT(Ok(conn->Send(buf.data(), buf.size(), &n)));
        sent += n;
      }
      OSKIT_ASSERT(Ok(conn->Shutdown(SockShutdown::kWrite)));
      moved = sent;
    }
  });

  auto start = std::chrono::steady_clock::now();
  SimTime sim_start = world.sim().clock().Now();
  world.RunToCompletion(sim_start + 3600 * kNsPerSec);
  RunResult result;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  result.sim_ns = world.sim().clock().Now() - sim_start;
  result.bytes = moved;
  result.vm_instructions = machine->instructions_executed();
  // The VM host's glue-copy counter (nonzero only when the VM sends bulk
  // data: its mbuf chains get copied into skbuffs at the driver boundary).
  auto devices = b.registry.LookupByInterface(EtherDev::kIid);
  if (!devices.empty()) {
    auto* dev = static_cast<linuxdev::LinuxEtherDev*>(devices[0].get());
    result.glue_copied_bytes = dev->counters().copied_bytes;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  size_t megabytes = argc > 1 ? std::strtoul(argv[1], nullptr, 0) : 24;
  size_t total = megabytes * 1024 * 1024;

  std::printf("Java/PC network throughput (paper §6.2.6): the language "
              "runtime drives the OSKit's\nnetwork components "
              "(%zu MB transfers; paper: 78 Mbps receive / 59 Mbps send on "
              "100 Mbps Ethernet)\n\n", megabytes);

  RunResult recv_wire = RunVmTransfer(/*vm_sends=*/false, total / 4, true);
  RunResult send_wire = RunVmTransfer(/*vm_sends=*/true, total / 4, true);
  RunResult recv_sw = RunVmTransfer(/*vm_sends=*/false, total, false);
  RunResult send_sw = RunVmTransfer(/*vm_sends=*/true, total, false);

  std::printf("%-26s | %16s | %16s | %16s\n", "direction (VM endpoint)",
              "wire-limited sim", "software path", "P6-scaled model");
  std::printf("%-26s | %16s | %16s | %16s\n", "", "Mbit/s", "Mbit/s wall",
              "Mbit/s");
  std::printf("---------------------------+------------------+------------------+"
              "------------------\n");
  std::printf("%-26s | %16.1f | %16.0f | %16.1f\n", "VM receive",
              recv_wire.SimMbps(), recv_sw.WallMbps(), recv_sw.ModelMbps());
  std::printf("%-26s | %16.1f | %16.0f | %16.1f\n", "VM send",
              send_wire.SimMbps(), send_sw.WallMbps(), send_sw.ModelMbps());

  double ratio = send_sw.ModelMbps() / recv_sw.ModelMbps();
  std::printf("\nShape checks (P6-scaled model, from real work counters):\n");
  std::printf("  send/receive ratio = %.2f (paper: 59/78 = 0.76 — send pays "
              "the glue copy: %llu bytes)  %s\n",
              ratio,
              static_cast<unsigned long long>(send_sw.glue_copied_bytes),
              ratio < 0.95 ? "PASS" : "FAIL");
  std::printf("  the wire saturates in both directions (sim): %.0f / %.0f "
              "Mbit/s of 100\n", recv_wire.SimMbps(), send_wire.SimMbps());
  std::printf("  'mature components with flexible interfaces': the VM rides "
              "the same tuned BSD stack as C code.\n");
  return 0;
}
