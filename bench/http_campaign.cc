// HTTP campaign: the flagship HTTP/1.1 macro-workload, end to end.
//
// One simulated PC runs the http::Server over journaled FFS on a real IDE
// disk (encapsulated Linux driver, so cold reads cost seek + transfer time
// and the fs_read span accrues honest simulated nanoseconds), on the
// COM-glue + scatter-gather + NAPI network path.  Four loadgen hosts on the
// VirtualSwitch drive a mixed open-loop load:
//
//   holders     keep-alive connections doing sequential zipf-popular GETs,
//               then HELD open until every host finishes — the established
//               peak proves the >= 1000 concurrency floor;
//   churn       one-shot Connection: close connections arriving with
//               exponential inter-arrival gaps (a quarter hit the KVM
//               /dyn/add servlet);
//   pipeliners  bursts of pipelined requests in a single segment;
//   slow        slow-reader fibers that pipeline three large files and
//               drain the 384 KB of responses a few KB per millisecond —
//               the server's out_high_water backpressure must engage
//               (http.read_paused), never a stall, never unbounded staging.
//
// Phases: the full-scale main run, a small same-scale ablation trio
// (baseline / --no-sg via SetForceTxFlatten / no-NAPI via NetConfig::kOskit)
// for the EXPERIMENTS table, and a secure phase where a slow-loris tenant
// behind src/secure quotas gets kQuotaExceeded instead of starving the
// victim tenants sharing its host.
//
// Emits BENCH_http.json: throughput, p50/p99/p999 tail latency, the span
// attribution table (http.span.*), ablation rows, and the loris verdict.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/random.h"
#include "src/com/memblkio.h"
#include "src/dev/linux/linux_ide.h"
#include "src/diskpart/diskpart.h"
#include "src/fs/ffs.h"
#include "src/http/http.h"
#include "src/http/server.h"
#include "src/secure/wrap.h"
#include "src/testbed/testbed.h"
#include "src/vm/kvm.h"

using namespace oskit;
using namespace oskit::testbed;
using secure::Budget;
using secure::NetGuard;
using secure::Principal;
using secure::PrincipalRegistry;
using secure::Resource;

namespace {

constexpr uint16_t kPort = 8080;
constexpr int kFileCount = 48;
constexpr size_t kBigBytes = 128 * 1024;
constexpr int kSlowPipeline = 3;  // big-file responses per slow reader

size_t FileSizeOf(int i) { return size_t{512} << (i % 8); }  // 512 B .. 64 KB

std::string FilePath(int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/files/f%02d.bin", i);
  return buf;
}

// Zipf(s=1.0) file popularity over the catalog.
struct Zipf {
  std::vector<double> cdf;
  explicit Zipf(int n) {
    cdf.resize(n);
    double total = 0;
    for (int i = 0; i < n; ++i) {
      total += 1.0 / static_cast<double>(i + 1);
      cdf[i] = total;
    }
    for (int i = 0; i < n; ++i) {
      cdf[i] /= total;
    }
  }
  int Sample(Rng& rng) const {
    double u = rng.Unit();
    return static_cast<int>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
  }
};

// Captures kSysPutInt output from the servlet (netcomputer v2's miniature).
class ConsoleSys : public vm::SysHandler {
 public:
  explicit ConsoleSys(std::string* out) : out_(out) {}
  Error Syscall(uint16_t number, vm::Vm& vm, int thread) override {
    if (number == vm::kSysPutInt) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(vm.Pop(thread)));
      out_->append(buf);
      return Error::kOk;
    }
    return Error::kNotImpl;
  }

 private:
  std::string* out_;
};

constexpr char kDynProgram[] =
    "gload 0\n"
    "gload 1\n"
    "add\n"
    "sys 2\n"
    "halt\n";

int64_t QueryArg(const std::string& target, const std::string& key) {
  size_t q = target.find('?');
  if (q == std::string::npos) {
    return 0;
  }
  std::string query = target.substr(q + 1);
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    size_t end = amp == std::string::npos ? query.size() : amp;
    size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < end &&
        query.compare(pos, eq - pos, key) == 0) {
      return std::strtoll(query.c_str() + eq + 1, nullptr, 10);
    }
    pos = end + 1;
  }
  return 0;
}

SocketExt* QueryExt(Socket* s) {
  void* extp = nullptr;
  if (!Ok(s->Query(SocketExt::kIid, &extp))) {
    return nullptr;
  }
  return static_cast<SocketExt*>(extp);
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  size_t idx = static_cast<size_t>(p * (sorted.size() - 1));
  return sorted[idx];
}

// Blocking request helper: sends `wire`, parses `expected` responses.
// Returns false (instead of asserting) so callers can count failures.
bool Exchange(Socket* sock, const std::string& wire, size_t expected,
              std::vector<http::Response>* out) {
  size_t n = 0;
  if (!Ok(sock->Send(wire.data(), wire.size(), &n)) || n != wire.size()) {
    return false;
  }
  http::ResponseParser parser;
  char buf[4096];
  while (out->size() < expected) {
    Error err = sock->Recv(buf, sizeof(buf), &n);
    if (!Ok(err) || n == 0) {
      return false;
    }
    parser.Feed(buf, n);
    if (parser.status() == http::ParseStatus::kError) {
      return false;
    }
    while (parser.HasResponse()) {
      out->push_back(parser.TakeResponse());
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// One measured phase: a full world, one server host, N loadgen hosts.

struct PhaseOptions {
  const char* name = "main";
  NetConfig server_net = NetConfig::kOskitNapi;
  bool force_flatten = false;  // ablation: copy every TX frame (no SG)
  int hosts = 4;
  int holders = 260;          // per host, held open to the barrier
  int holder_requests = 3;    // sequential GETs per holder
  int churn = 90;             // per host, Connection: close one-shots
  int pipeliners = 8;         // per host
  int pipe_depth = 4;         // requests per pipelined burst
  int slow = 6;               // per host, slow-reader fibers
  uint64_t mean_arrival_us = 200;
  uint64_t seed = 0x8177bca3;
};

struct PhaseResult {
  // Client-side truth.
  int expected = 0;     // responses the load plan calls for
  int completed = 0;    // responses received AND validated
  int failures = 0;     // connect/send/validation failures
  double throughput_rps = 0;
  double p50 = 0, p99 = 0, p999 = 0, pmax = 0;
  // Server-side counters.
  uint64_t established_peak = 0;
  uint64_t listen_overflows = 0;
  uint64_t pcb_scan_full = 0;
  uint64_t requests = 0, responses = 0, pipelined = 0;
  uint64_t read_paused = 0, bytes_out = 0;
  uint64_t sg_frames = 0, tx_copied_bytes = 0;
  uint64_t napi_polls = 0, rx_frames = 0, rx_irqs = 0;
  // The span attribution table (name -> value), http.span.* only.
  std::vector<std::pair<std::string, uint64_t>> attribution;
};

// Per-connection client state, driven off the loadgen host's selector.
struct CConn {
  ComPtr<Socket> sock;
  http::ResponseParser parser;
  enum Mode { kHolder, kChurn, kPipe } mode = kHolder;
  int rounds_left = 0;           // holder: request rounds still to stage
  int await = 0;                 // responses outstanding on the wire
  std::deque<SimTime> sent_ts;   // staging time per outstanding request
  std::deque<size_t> expect;     // expected body length per outstanding
  bool connected = false;
  bool done = false;
  bool failed = false;
};

struct LoadHost {
  std::vector<CConn> conns;
  int done = 0;
  int slow_done = 0;
  bool warm = false;  // ARP warmed, slow readers may start
};

void RunHttpPhase(const PhaseOptions& opt, PhaseResult* r) {
  VirtualSwitch::Config sw;
  sw.port.bits_per_second = 1000ull * 1000 * 1000;
  sw.port.propagation_ns = 5 * kNsPerUs;
  World world(sw);
  Host& server = world.AddHost("www", opt.server_net);
  for (int h = 0; h < opt.hosts; ++h) {
    world.AddHost("load" + std::to_string(h), NetConfig::kNativeBsd);
  }
  if (opt.force_flatten) {
    server.stack->SetForceTxFlatten(true);
  }

  // The content volume lives on a real IDE disk behind the encapsulated
  // Linux driver: cold reads pay seek + transfer, the block cache makes the
  // zipf head cheap — exactly the profile the fs_read span should show.
  server.machine->AddDisk(24 * 1024 * 1024 / 512);
  DeviceRegistry disk_registry;
  linuxdev::InitLinuxIde(server.fdev, server.machine.get(), &disk_registry);
  auto hda_dev = disk_registry.LookupByName("hda");
  ComPtr<BlkIo> hda = ComPtr<BlkIo>::FromQuery(hda_dev.get());

  std::vector<uint8_t> servlet;
  std::string asm_error;
  OSKIT_ASSERT(Ok(vm::Assemble(kDynProgram, &servlet, &asm_error)));

  const int per_host = opt.holders + opt.churn + opt.pipeliners;
  const int fast_expected =
      opt.hosts * (opt.holders * opt.holder_requests + opt.churn +
                   opt.pipeliners * opt.pipe_depth);
  r->expected = fast_expected + opt.hosts * opt.slow * (kSlowPipeline + 1);

  Zipf zipf(kFileCount);
  bool listening = false;
  int hosts_done = 0;
  int hosts_torn = 0;
  bool quit_sent = false;
  std::vector<double> latencies_us;
  latencies_us.reserve(static_cast<size_t>(fast_expected));
  SimTime first_req = ~SimTime{0};
  SimTime last_resp = 0;
  std::vector<std::unique_ptr<LoadHost>> states;
  for (int h = 0; h < opt.hosts; ++h) {
    auto st = std::make_unique<LoadHost>();
    st->conns.resize(static_cast<size_t>(per_host));
    states.push_back(std::move(st));
  }

  auto note_resp = [&](SimTime now) {
    ++r->completed;
    if (now > last_resp) {
      last_resp = now;
    }
  };

  // ---- the server fiber: storage bring-up, then the event loop ----
  std::unique_ptr<http::Server> httpd;
  world.sim().Spawn("www/httpd", [&] {
    std::vector<Partition> layout = {
        {.start_sector = 64,
         .sector_count = 24 * 1024 * 1024 / 512 - 64,
         .type = kPartTypeOskitFs},
    };
    OSKIT_ASSERT(Ok(WriteMbr(hda.get(), layout)));
    std::vector<Partition> found;
    OSKIT_ASSERT(Ok(ReadPartitions(hda.get(), &found)));
    ComPtr<BlkIo> part = MakePartitionView(hda.get(), found[0]);
    OSKIT_ASSERT(Ok(fs::Mkfs(part.get())));
    fs::MountOptions mo;
    mo.trace = &server.trace;
    ComPtr<FileSystem> ffs;
    OSKIT_ASSERT(Ok(fs::Offs::Mount(part.get(), mo, ffs.Receive())));
    ComPtr<Dir> root;
    OSKIT_ASSERT(Ok(ffs->GetRoot(root.Receive())));
    OSKIT_ASSERT(Ok(root->Mkdir("files", 0755)));
    ComPtr<File> files_file;
    OSKIT_ASSERT(Ok(root->Lookup("files", files_file.Receive())));
    auto files = ComPtr<Dir>::FromQuery(files_file.get());
    size_t n = 0;
    for (int i = 0; i < kFileCount; ++i) {
      char name[32];
      std::snprintf(name, sizeof(name), "f%02d.bin", i);
      ComPtr<File> f;
      OSKIT_ASSERT(Ok(files->Create(name, 0644, f.Receive())));
      std::string data(FileSizeOf(i), static_cast<char>('a' + i % 26));
      OSKIT_ASSERT(Ok(f->Write(data.data(), 0, data.size(), &n)));
    }
    {
      ComPtr<File> big;
      OSKIT_ASSERT(Ok(root->Create("big.bin", 0644, big.Receive())));
      std::string data(kBigBytes, 'B');
      OSKIT_ASSERT(Ok(big->Write(data.data(), 0, data.size(), &n)));
    }
    // Remount so the serving phase starts with a cold block cache: the
    // zipf head warms up fast, the tail keeps paying real IDE seek and
    // transfer time — which is what the fs_read span must show.
    files.Reset();
    files_file.Reset();
    root.Reset();
    OSKIT_ASSERT(Ok(ffs->Unmount()));
    ffs.Reset();
    OSKIT_ASSERT(Ok(fs::Offs::Mount(part.get(), mo, ffs.Receive())));
    OSKIT_ASSERT(Ok(ffs->GetRoot(root.Receive())));

    http::Server::Config cfg;
    cfg.bind = SockAddr{kInetAny, kPort};
    cfg.backlog = 1024;
    cfg.trace = &server.trace;
    cfg.now = [&world] { return world.sim().clock().Now(); };
    httpd = std::make_unique<http::Server>(server.socket_factory,
                                           server.stack->CreateSelector(),
                                           root, cfg);
    httpd->AddDynRoute("/dyn/add", [servlet](const http::Request& req,
                                             std::string* body,
                                             std::string* type) -> int {
      std::string out;
      ConsoleSys sys(&out);
      vm::Vm machine(servlet, &sys);
      if (!Ok(machine.Verify())) {
        return 500;
      }
      machine.set_global(0, QueryArg(req.target, "a"));
      machine.set_global(1, QueryArg(req.target, "b"));
      machine.SpawnThread(0);
      if (!Ok(machine.Run())) {
        return 500;
      }
      *body = out + "\n";
      *type = "text/plain";
      return 200;
    });
    OSKIT_ASSERT(Ok(httpd->Start()));
    listening = true;
    httpd->Run();
    // Linger so client TIME_WAIT timers drain inside the measured run.
    world.sim().SleepFor(2 * kNsPerSec);
  });

  // ---- loadgen hosts: launcher + harvester, plus slow-reader fibers ----
  for (int h = 0; h < opt.hosts; ++h) {
    Host& lg = world.host(1 + h);
    LoadHost& st = *states[h];
    auto sel = std::make_shared<ComPtr<NetSelector>>();

    world.sim().Spawn("launcher", [&, h, sel] {
      world.sim().PollWait([&] { return listening; });
      // Warm the ARP cache: the one-deep pending queue would otherwise
      // swallow the SYN storm into 6 s retransmits.
      SimTime rtt = 0;
      lg.stack->Ping(server.addr, kNsPerSec, &rtt);
      st.warm = true;
      *sel = lg.stack->CreateSelector();
      Rng rng(opt.seed + static_cast<uint64_t>(h) * 7919);
      for (int c = 0; c < per_host; ++c) {
        SimTime gap = static_cast<SimTime>(
            -static_cast<double>(opt.mean_arrival_us * kNsPerUs) *
            std::log(1.0 - rng.Unit()));
        world.sim().SleepFor(gap);
        CConn& conn = st.conns[static_cast<size_t>(c)];
        if (c < opt.holders) {
          conn.mode = CConn::kHolder;
          conn.rounds_left = opt.holder_requests;
        } else if (c < opt.holders + opt.churn) {
          conn.mode = CConn::kChurn;
        } else {
          conn.mode = CConn::kPipe;
        }
        conn.sock = lg.MakeSocket(SockType::kStream);
        SocketExt* ext = QueryExt(conn.sock.get());
        ext->SetNonBlocking(true);
        ext->Release();
        Error err = conn.sock->Connect(SockAddr{server.addr, kPort});
        if (err != Error::kWouldBlock && !Ok(err)) {
          conn.failed = true;
          conn.done = true;
          ++r->failures;
          ++st.done;
          continue;
        }
        (*sel)->Add(conn.sock.get(), kNetWritable, /*edge=*/true, &conn);
      }
    });

    world.sim().Spawn("harvester", [&, h, sel] {
      world.sim().PollWait([&] { return sel->get() != nullptr; });
      Rng rng(opt.seed ^ (0xabcd0000 + static_cast<uint64_t>(h)));
      // Stages the next request round on an established connection.  The
      // requests are tiny; the send buffer always takes them whole.
      auto stage = [&](CConn& conn) {
        std::string wire;
        int reqs = 0;
        switch (conn.mode) {
          case CConn::kHolder: {
            int f = zipf.Sample(rng);
            wire = "GET " + FilePath(f) + " HTTP/1.1\r\nHost: bench\r\n\r\n";
            conn.expect.push_back(FileSizeOf(f));
            reqs = 1;
            --conn.rounds_left;
            break;
          }
          case CConn::kChurn: {
            if (rng.Unit() < 0.25) {
              int64_t a = static_cast<int64_t>(rng.Next() % 100);
              int64_t b = static_cast<int64_t>(rng.Next() % 100);
              wire = "GET /dyn/add?a=" + std::to_string(a) +
                     "&b=" + std::to_string(b) +
                     " HTTP/1.1\r\nConnection: close\r\n\r\n";
              conn.expect.push_back(std::to_string(a + b).size() + 1);
            } else {
              int f = zipf.Sample(rng);
              wire = "GET " + FilePath(f) +
                     " HTTP/1.1\r\nConnection: close\r\n\r\n";
              conn.expect.push_back(FileSizeOf(f));
            }
            reqs = 1;
            break;
          }
          case CConn::kPipe: {
            // One segment, pipe_depth requests, the last closes.
            for (int k = 0; k < opt.pipe_depth; ++k) {
              int f = zipf.Sample(rng);
              wire += "GET " + FilePath(f) + " HTTP/1.1\r\n";
              if (k == opt.pipe_depth - 1) {
                wire += "Connection: close\r\n";
              }
              wire += "\r\n";
              conn.expect.push_back(FileSizeOf(f));
            }
            reqs = opt.pipe_depth;
            break;
          }
        }
        SimTime now = world.sim().clock().Now();
        if (now < first_req) {
          first_req = now;
        }
        for (int k = 0; k < reqs; ++k) {
          conn.sent_ts.push_back(now);
        }
        conn.await += reqs;
        size_t sent = 0;
        Error err = conn.sock->Send(wire.data(), wire.size(), &sent);
        if (!Ok(err) || sent != wire.size()) {
          conn.failed = true;
        }
      };
      NetReadyEvent events[64];
      char buf[8192];
      auto finish = [&](CConn& conn, bool hold) {
        (*sel)->Remove(conn.sock.get());
        if (!hold) {
          conn.sock.Reset();
        }
        conn.done = true;
        ++st.done;
      };
      while (st.done < per_host) {
        size_t n = 0;
        (*sel)->Wait(events, 64, /*block=*/true, &n);
        for (size_t i = 0; i < n; ++i) {
          CConn& conn = *static_cast<CConn*>(events[i].token);
          if (conn.done) {
            continue;
          }
          if ((events[i].events & kNetError) != 0) {
            conn.failed = true;
            ++r->failures;
            finish(conn, /*hold=*/false);
            continue;
          }
          if (!conn.connected && (events[i].events & kNetWritable) != 0) {
            conn.connected = true;
            stage(conn);
            if (conn.failed) {
              ++r->failures;
              finish(conn, /*hold=*/false);
              continue;
            }
            (*sel)->Modify(conn.sock.get(), kNetReadable, /*edge=*/true);
            continue;
          }
          if ((events[i].events & kNetReadable) == 0) {
            continue;
          }
          size_t got = 0;
          Error err;
          bool eof = false;
          while ((err = conn.sock->Recv(buf, sizeof(buf), &got)) ==
                     Error::kOk &&
                 got > 0) {
            conn.parser.Feed(buf, got);
          }
          eof = Ok(err) && got == 0;
          if (conn.parser.status() == http::ParseStatus::kError) {
            conn.failed = true;
            ++r->failures;
            finish(conn, /*hold=*/false);
            continue;
          }
          while (conn.parser.HasResponse()) {
            http::Response resp = conn.parser.TakeResponse();
            SimTime now = world.sim().clock().Now();
            if (resp.status == 200 && !conn.expect.empty() &&
                resp.body.size() == conn.expect.front()) {
              note_resp(now);
            } else {
              conn.failed = true;
              ++r->failures;
            }
            if (!conn.sent_ts.empty()) {
              latencies_us.push_back(
                  static_cast<double>(now - conn.sent_ts.front()) /
                  kNsPerUs);
              conn.sent_ts.pop_front();
            }
            if (!conn.expect.empty()) {
              conn.expect.pop_front();
            }
            --conn.await;
          }
          if (conn.done) {
            continue;
          }
          if (conn.await == 0 && conn.mode == CConn::kHolder &&
              conn.rounds_left > 0) {
            stage(conn);
            continue;
          }
          if (conn.await == 0) {
            // Holders park established until the barrier; churn and
            // pipeliners close out.
            finish(conn, /*hold=*/conn.mode == CConn::kHolder);
            continue;
          }
          if (eof) {
            // Peer closed with responses still owed: failure.
            conn.failed = true;
            r->failures += conn.await;
            conn.await = 0;
            finish(conn, /*hold=*/false);
          }
        }
      }
      ++hosts_done;
      // The concurrency barrier: every host keeps its holders established
      // until everyone (including the slow readers) is finished.
      world.sim().PollWait(
          [&] {
            if (hosts_done < opt.hosts) {
              return false;
            }
            for (const auto& s : states) {
              if (s->slow_done < opt.slow) {
                return false;
              }
            }
            return true;
          },
          kNsPerMs);
      for (CConn& conn : st.conns) {
        conn.sock.Reset();
      }
      ++hosts_torn;
    });

    for (int s = 0; s < opt.slow; ++s) {
      world.sim().Spawn("slow", [&, h, s] {
        world.sim().PollWait([&] { return st.warm; });
        world.sim().SleepFor((1 + static_cast<SimTime>(s)) * kNsPerMs);
        constexpr int kSlowTotal = kSlowPipeline + 1;
        ComPtr<Socket> sock = lg.MakeSocket(SockType::kStream);
        if (!Ok(sock->Connect(SockAddr{server.addr, kPort}))) {
          r->failures += kSlowTotal;
          ++st.slow_done;
          return;
        }
        // Three pipelined big-file requests: ~384 KB of staged response
        // forces the server past out_high_water while we dribble.  A
        // fourth request sent mid-drain lands while the server is parked
        // above the high-water mark — that is the read-pause path.
        std::string wire;
        for (int k = 0; k < kSlowPipeline; ++k) {
          wire += "GET /big.bin HTTP/1.1\r\n\r\n";
        }
        SimTime t0 = world.sim().clock().Now();
        if (t0 < first_req) {
          first_req = t0;
        }
        size_t sent = 0;
        if (!Ok(sock->Send(wire.data(), wire.size(), &sent))) {
          r->failures += kSlowTotal;
          ++st.slow_done;
          return;
        }
        http::ResponseParser parser;
        char buf[4096];
        int taken = 0;
        int recvs = 0;
        bool dead = false;
        bool last_sent = false;
        while (taken < kSlowTotal && !dead) {
          world.sim().SleepFor(500 * kNsPerUs);
          if (!last_sent && ++recvs == 8) {
            const char last[] =
                "GET /big.bin HTTP/1.1\r\nConnection: close\r\n\r\n";
            if (!Ok(sock->Send(last, sizeof(last) - 1, &sent))) {
              dead = true;
              break;
            }
            last_sent = true;
          }
          size_t got = 0;
          Error err = sock->Recv(buf, sizeof(buf), &got);
          if (!Ok(err) || got == 0) {
            dead = true;
            break;
          }
          parser.Feed(buf, got);
          if (parser.status() == http::ParseStatus::kError) {
            dead = true;
            break;
          }
          while (parser.HasResponse()) {
            http::Response resp = parser.TakeResponse();
            if (resp.status == 200 && resp.body.size() == kBigBytes) {
              note_resp(world.sim().clock().Now());
              ++taken;
            } else {
              dead = true;
            }
          }
        }
        if (taken < kSlowTotal) {
          r->failures += kSlowTotal - taken;
        }
        sock.Reset();
        ++st.slow_done;
      });
    }
  }

  // The quit fiber: after every host has torn down, one clean request
  // drains the server loop.
  world.sim().Spawn("quit", [&] {
    world.sim().PollWait([&] { return hosts_torn >= opt.hosts; }, kNsPerMs);
    Host& lg = world.host(1);
    ComPtr<Socket> sock = lg.MakeSocket(SockType::kStream);
    OSKIT_ASSERT(Ok(sock->Connect(SockAddr{server.addr, kPort})));
    std::vector<http::Response> resp;
    OSKIT_ASSERT(
        Exchange(sock.get(),
                 "GET /__quit HTTP/1.1\r\nConnection: close\r\n\r\n", 1,
                 &resp));
    OSKIT_ASSERT(resp[0].status == 200);
    quit_sent = true;
  });

  world.RunToCompletion(3600 * kNsPerSec);
  OSKIT_ASSERT(quit_sent);

  std::sort(latencies_us.begin(), latencies_us.end());
  r->p50 = Percentile(latencies_us, 0.50);
  r->p99 = Percentile(latencies_us, 0.99);
  r->p999 = Percentile(latencies_us, 0.999);
  r->pmax = latencies_us.empty() ? 0 : latencies_us.back();
  double window_s = last_resp > first_req
                        ? static_cast<double>(last_resp - first_req) / kNsPerSec
                        : 0;
  r->throughput_rps = window_s > 0 ? r->completed / window_s : 0;

  const auto& sc = server.stack->counters();
  r->established_peak = sc.tcp_established_peak.value();
  r->listen_overflows = sc.tcp_listen_overflows.value();
  r->pcb_scan_full = sc.pcb_scan_full.value();
  const auto& reg = server.trace.registry;
  r->requests = reg.Value("http.requests");
  r->responses = reg.Value("http.responses");
  r->pipelined = reg.Value("http.requests.pipelined");
  r->read_paused = reg.Value("http.read_paused");
  r->bytes_out = reg.Value("http.bytes_out");
  r->sg_frames = reg.Value("glue.send.sg_frames");
  r->tx_copied_bytes = reg.Value("glue.send.copied_bytes");
  r->napi_polls = reg.Value("glue.rx.poll.polls");
  r->rx_frames = reg.Value("nic.rx.coalesce.frames");
  r->rx_irqs = reg.Value("nic.rx.coalesce.irqs");
  reg.ForEach(
      [&](const char* name, uint64_t value, bool) {
        r->attribution.emplace_back(name, value);
      },
      "http.span.");
}

// ---------------------------------------------------------------------------
// The secure phase: a slow-loris tenant behind quotas cannot starve the
// victims sharing its host.

struct SecureResult {
  uint64_t loris_denials = 0;  // kQuotaExceeded on socket creation
  int loris_held = 0;          // connections it did get (== its budget)
  int victim_expected = 0;
  int victim_completed = 0;
  double victim_p99_us = 0;
  bool drained = false;
};

void RunSecurePhase(uint64_t seed, SecureResult* out) {
  constexpr int kVictims = 4;
  constexpr int kVictimRequests = 25;
  constexpr int kLorisAttempts = 40;
  constexpr uint64_t kLorisBudget = 8;
  out->victim_expected = kVictims * kVictimRequests;

  VirtualSwitch::Config sw;
  sw.port.bits_per_second = 1000ull * 1000 * 1000;
  sw.port.propagation_ns = 5 * kNsPerUs;
  World world(sw);
  Host& server = world.AddHost("www", NetConfig::kOskitNapi);
  Host& tenants = world.AddHost("tenants", NetConfig::kNativeBsd);

  // The shared protection domain on the tenants host.
  PrincipalRegistry principals(&tenants.trace);
  NetGuard guard(&principals);
  tenants.stack->SetAccounting(&guard);
  Principal* loris = principals.Create(
      "loris", Budget{}.Set(Resource::kSockets, kLorisBudget));
  Principal* victim = principals.Create("victim");

  bool listening = false;
  int victims_done = 0;
  bool loris_parked = false;
  std::vector<double> victim_lat_us;

  std::unique_ptr<http::Server> httpd;
  world.sim().Spawn("www/httpd", [&] {
    auto disk = MemBlkIo::Create(2 * 1024 * 1024, 512);
    OSKIT_ASSERT(Ok(fs::Mkfs(disk.get())));
    fs::MountOptions mo;
    mo.trace = &server.trace;
    ComPtr<FileSystem> ffs;
    OSKIT_ASSERT(Ok(fs::Offs::Mount(disk.get(), mo, ffs.Receive())));
    ComPtr<Dir> root;
    OSKIT_ASSERT(Ok(ffs->GetRoot(root.Receive())));
    ComPtr<File> f;
    OSKIT_ASSERT(Ok(root->Create("page.html", 0644, f.Receive())));
    std::string body(2048, 'p');
    size_t n = 0;
    OSKIT_ASSERT(Ok(f->Write(body.data(), 0, body.size(), &n)));

    http::Server::Config cfg;
    cfg.bind = SockAddr{kInetAny, kPort};
    cfg.trace = &server.trace;
    cfg.now = [&world] { return world.sim().clock().Now(); };
    httpd = std::make_unique<http::Server>(server.socket_factory,
                                           server.stack->CreateSelector(),
                                           root, cfg);
    OSKIT_ASSERT(Ok(httpd->Start()));
    listening = true;
    httpd->Run();
  });

  // The slow-loris tenant: grabs every socket it can, sends a partial
  // request header on each, and parks.  The quota caps the grab at its
  // budget; every further Create is a counted kQuotaExceeded, not a hang.
  world.sim().Spawn("loris", [&] {
    world.sim().PollWait([&] { return listening; });
    SimTime rtt = 0;
    tenants.stack->Ping(server.addr, kNsPerSec, &rtt);
    ComPtr<SocketFactory> net = secure::MakeSecureSocketFactory(
        tenants.stack->CreateSocketFactory(), loris, &guard);
    std::vector<ComPtr<Socket>> hoard;
    for (int i = 0; i < kLorisAttempts; ++i) {
      ComPtr<Socket> s;
      Error err = net->Create(SockDomain::kInet, SockType::kStream,
                              s.Receive());
      if (err == Error::kQuotaExceeded) {
        continue;  // counted below via the principal's denial gauge
      }
      OSKIT_ASSERT(Ok(err));
      if (!Ok(s->Connect(SockAddr{server.addr, kPort}))) {
        continue;
      }
      size_t sent = 0;
      const char drip[] = "GET /page.html HTTP/1.1\r\nX-Drip: ";
      s->Send(drip, sizeof(drip) - 1, &sent);
      hoard.push_back(std::move(s));
    }
    out->loris_held = static_cast<int>(hoard.size());
    loris_parked = true;
    world.sim().PollWait([&] { return victims_done >= kVictims; }, kNsPerMs);
    hoard.clear();
  });

  // Victim tenants: ordinary keep-alive GET loops through their own secure
  // wrappers, which must complete untouched while the loris squats.
  for (int v = 0; v < kVictims; ++v) {
    world.sim().Spawn("victim", [&, v] {
      world.sim().PollWait([&] { return loris_parked; });
      Rng rng(seed + static_cast<uint64_t>(v));
      ComPtr<SocketFactory> net = secure::MakeSecureSocketFactory(
          tenants.stack->CreateSocketFactory(), victim, &guard);
      ComPtr<Socket> sock;
      OSKIT_ASSERT(Ok(net->Create(SockDomain::kInet, SockType::kStream,
                                  sock.Receive())));
      OSKIT_ASSERT(Ok(sock->Connect(SockAddr{server.addr, kPort})));
      for (int i = 0; i < kVictimRequests; ++i) {
        world.sim().SleepFor(static_cast<SimTime>(rng.Next() % 512) *
                             kNsPerUs);
        SimTime t0 = world.sim().clock().Now();
        std::vector<http::Response> resp;
        if (Exchange(sock.get(), "GET /page.html HTTP/1.1\r\n\r\n", 1,
                     &resp) &&
            resp[0].status == 200 && resp[0].body.size() == 2048) {
          ++out->victim_completed;
          victim_lat_us.push_back(
              static_cast<double>(world.sim().clock().Now() - t0) /
              kNsPerUs);
        }
      }
      sock.Reset();
      ++victims_done;
    });
  }

  world.sim().Spawn("quit", [&] {
    world.sim().PollWait([&] { return victims_done >= kVictims; }, kNsPerMs);
    ComPtr<Socket> sock = tenants.MakeSocket(SockType::kStream);
    OSKIT_ASSERT(Ok(sock->Connect(SockAddr{server.addr, kPort})));
    std::vector<http::Response> resp;
    OSKIT_ASSERT(
        Exchange(sock.get(),
                 "GET /__quit HTTP/1.1\r\nConnection: close\r\n\r\n", 1,
                 &resp));
    OSKIT_ASSERT(resp[0].status == 200);
  });

  // RunToCompletion panics on deadlock: returning at all is the no-hang
  // proof.
  world.RunToCompletion(600 * kNsPerSec);
  out->drained = true;
  out->loris_denials = loris->denied(Resource::kSockets);
  std::sort(victim_lat_us.begin(), victim_lat_us.end());
  out->victim_p99_us = Percentile(victim_lat_us, 0.99);
}

uint64_t AttrValue(const PhaseResult& r, const char* name) {
  for (const auto& [k, v] : r.attribution) {
    if (k == name) {
      return v;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  PhaseOptions main_opt;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg == "--hosts" && i + 1 < argc) {
      main_opt.hosts = std::atoi(argv[++i]);
    } else if (arg == "--holders" && i + 1 < argc) {
      main_opt.holders = std::atoi(argv[++i]);
    } else if (arg == "--churn" && i + 1 < argc) {
      main_opt.churn = std::atoi(argv[++i]);
    } else if (arg == "--requests" && i + 1 < argc) {
      main_opt.holder_requests = std::atoi(argv[++i]);
    } else if (arg == "--mean-us" && i + 1 < argc) {
      main_opt.mean_arrival_us = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--seed" && i + 1 < argc) {
      main_opt.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: http_campaign [--hosts N] [--holders N] "
                   "[--churn N] [--requests N] [--mean-us U] [--seed S] "
                   "[--json <path>]\n");
      return 2;
    }
  }
  const int held_total = main_opt.hosts * main_opt.holders;

  std::printf("HTTP campaign: %d loadgen hosts x (%d holders x %d reqs + "
              "%d churn + %d pipeliners x %d + %d slow)\n\n",
              main_opt.hosts, main_opt.holders, main_opt.holder_requests,
              main_opt.churn, main_opt.pipeliners, main_opt.pipe_depth,
              main_opt.slow);

  PhaseResult main_r;
  RunHttpPhase(main_opt, &main_r);

  // Ablation trio at one small common scale: identical load, three server
  // configurations.  Throughput barely moves (compute is free in the
  // simulator); the paper-shaped deltas are bytes copied per TX byte and
  // RX interrupts per frame.
  PhaseOptions abl;
  abl.hosts = 2;
  abl.holders = 40;
  abl.holder_requests = 2;
  abl.churn = 20;
  abl.pipeliners = 4;
  abl.slow = 2;
  abl.seed = main_opt.seed + 17;
  PhaseResult base_r, nosg_r, nonapi_r;
  abl.name = "abl_base";
  RunHttpPhase(abl, &base_r);
  abl.name = "abl_nosg";
  abl.force_flatten = true;
  RunHttpPhase(abl, &nosg_r);
  abl.name = "abl_nonapi";
  abl.force_flatten = false;
  abl.server_net = NetConfig::kOskit;
  RunHttpPhase(abl, &nonapi_r);

  SecureResult sec;
  RunSecurePhase(main_opt.seed + 31, &sec);

  // ---- report ----
  auto irqs_per_frame = [](const PhaseResult& r) {
    return r.rx_frames > 0
               ? static_cast<double>(r.rx_irqs) / static_cast<double>(r.rx_frames)
               : 0.0;
  };
  auto copied_per_byte = [](const PhaseResult& r) {
    return r.bytes_out > 0 ? static_cast<double>(r.tx_copied_bytes) /
                                 static_cast<double>(r.bytes_out)
                           : 0.0;
  };

  std::printf("%-34s | %12s\n", "metric", "value");
  std::printf("-----------------------------------+-------------\n");
  std::printf("%-34s | %9d/%d\n", "responses completed/expected",
              main_r.completed, main_r.expected);
  std::printf("%-34s | %12llu\n", "server established peak",
              static_cast<unsigned long long>(main_r.established_peak));
  std::printf("%-34s | %12.0f\n", "throughput (responses/sec, sim)",
              main_r.throughput_rps);
  std::printf("%-34s | %12.1f\n", "request p50 (us)", main_r.p50);
  std::printf("%-34s | %12.1f\n", "request p99 (us)", main_r.p99);
  std::printf("%-34s | %12.1f\n", "request p999 (us)", main_r.p999);
  std::printf("%-34s | %12.1f\n", "request max (us)", main_r.pmax);
  std::printf("%-34s | %12llu\n", "pipelined requests",
              static_cast<unsigned long long>(main_r.pipelined));
  std::printf("%-34s | %12llu\n", "read pauses (backpressure)",
              static_cast<unsigned long long>(main_r.read_paused));
  std::printf("%-34s | %12llu\n", "SG frames",
              static_cast<unsigned long long>(main_r.sg_frames));
  std::printf("%-34s | %12llu\n", "NAPI polls",
              static_cast<unsigned long long>(main_r.napi_polls));
  std::printf("%-34s | %12llu\n", "listen overflows",
              static_cast<unsigned long long>(main_r.listen_overflows));
  std::printf("\nAttribution (http.span.*):\n");
  for (const auto& [name, value] : main_r.attribution) {
    std::printf("  %-32s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }
  std::printf("\nAblations (common small scale):\n");
  std::printf("  %-10s %10s %12s %14s %10s\n", "config", "rps", "p50_us",
              "copied/byte", "irqs/frm");
  auto abl_row = [&](const char* name, const PhaseResult& r) {
    std::printf("  %-10s %10.0f %12.1f %14.4f %10.4f\n", name,
                r.throughput_rps, r.p50, copied_per_byte(r),
                irqs_per_frame(r));
  };
  abl_row("base", base_r);
  abl_row("no-sg", nosg_r);
  abl_row("no-napi", nonapi_r);

  bool fail = false;
  std::printf("\nShape checks:\n");

  bool ok = main_r.completed == main_r.expected && main_r.failures == 0;
  fail |= !ok;
  std::printf("  completion:   %d/%d responses, %d failures  %s\n",
              main_r.completed, main_r.expected, main_r.failures,
              ok ? "PASS" : "FAIL");

  ok = main_r.established_peak >= static_cast<uint64_t>(held_total);
  fail |= !ok;
  std::printf("  concurrency:  peak %llu >= %d held-open  %s\n",
              static_cast<unsigned long long>(main_r.established_peak),
              held_total, ok ? "PASS" : "FAIL");
  if (held_total >= 1000) {
    ok = main_r.established_peak >= 1000;
    fail |= !ok;
    std::printf("  kiloconn:     peak %llu >= 1000 concurrent  %s\n",
                static_cast<unsigned long long>(main_r.established_peak),
                ok ? "PASS" : "FAIL");
  } else {
    std::printf("  kiloconn:     SKIPPED (reduced scale: %d < 1000)\n",
                held_total);
  }

  ok = main_r.pipelined > 0 && main_r.read_paused > 0;
  fail |= !ok;
  std::printf("  mixed load:   %llu pipelined, %llu read pauses  %s\n",
              static_cast<unsigned long long>(main_r.pipelined),
              static_cast<unsigned long long>(main_r.read_paused),
              ok ? "PASS" : "FAIL");

  // The attribution table really attributes: every response got a request
  // span, the selector wait accrued real simulated time, and the FS path
  // was exercised.
  uint64_t span_reqs = AttrValue(main_r, "http.span.request.count");
  ok = span_reqs == main_r.responses &&
       AttrValue(main_r, "http.span.wait.self_ns") > 0 &&
       AttrValue(main_r, "http.span.fs_read.count") > 0 &&
       AttrValue(main_r, "http.span.fs_read.self_ns") > 0 &&
       AttrValue(main_r, "http.span.dyn.count") > 0;
  fail |= !ok;
  std::printf("  attribution:  %llu request spans == %llu responses, "
              "wait self %llu ns  %s\n",
              static_cast<unsigned long long>(span_reqs),
              static_cast<unsigned long long>(main_r.responses),
              static_cast<unsigned long long>(
                  AttrValue(main_r, "http.span.wait.self_ns")),
              ok ? "PASS" : "FAIL");

  // Zero-copy ablation: SG carried the main phase, the flattened run
  // copied every response byte at least once, the no-NAPI run took ~1
  // interrupt per frame where the NAPI run coalesced.
  ok = main_r.sg_frames > 0 && main_r.napi_polls > 0 &&
       nosg_r.sg_frames == 0 && copied_per_byte(nosg_r) >= 1.0 &&
       copied_per_byte(base_r) < 0.5 && nonapi_r.napi_polls == 0 &&
       irqs_per_frame(nonapi_r) > irqs_per_frame(base_r);
  fail |= !ok;
  std::printf("  ablations:    copied/byte %.3f(base) %.3f(no-sg), "
              "irqs/frm %.3f(base) %.3f(no-napi)  %s\n",
              copied_per_byte(base_r), copied_per_byte(nosg_r),
              irqs_per_frame(base_r), irqs_per_frame(nonapi_r),
              ok ? "PASS" : "FAIL");

  ok = main_r.pcb_scan_full == 0 && main_r.listen_overflows == 0;
  fail |= !ok;
  std::printf("  internals:    %llu full PCB scans, %llu listen overflows  "
              "%s\n",
              static_cast<unsigned long long>(main_r.pcb_scan_full),
              static_cast<unsigned long long>(main_r.listen_overflows),
              ok ? "PASS" : "FAIL");

  ok = sec.drained && sec.loris_denials > 0 &&
       sec.loris_held <= 8 &&
       sec.victim_completed == sec.victim_expected;
  fail |= !ok;
  std::printf("  slow-loris:   %llu denials, %d held (budget 8), victims "
              "%d/%d, p99 %.1f us  %s\n",
              static_cast<unsigned long long>(sec.loris_denials),
              sec.loris_held, sec.victim_completed, sec.victim_expected,
              sec.victim_p99_us, ok ? "PASS" : "FAIL");

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"http\",\n");
    std::fprintf(f, "  \"hosts\": %d,\n  \"held_total\": %d,\n",
                 main_opt.hosts, held_total);
    std::fprintf(f, "  \"expected\": %d,\n  \"completed\": %d,\n"
                 "  \"failures\": %d,\n",
                 main_r.expected, main_r.completed, main_r.failures);
    std::fprintf(f, "  \"established_peak\": %llu,\n",
                 static_cast<unsigned long long>(main_r.established_peak));
    std::fprintf(f, "  \"throughput_rps\": %.1f,\n", main_r.throughput_rps);
    std::fprintf(f,
                 "  \"latency_us\": {\"p50\": %.1f, \"p99\": %.1f, "
                 "\"p999\": %.1f, \"max\": %.1f},\n",
                 main_r.p50, main_r.p99, main_r.p999, main_r.pmax);
    std::fprintf(f,
                 "  \"server\": {\"requests\": %llu, \"responses\": %llu, "
                 "\"pipelined\": %llu, \"read_paused\": %llu, "
                 "\"bytes_out\": %llu, \"sg_frames\": %llu, "
                 "\"napi_polls\": %llu, \"listen_overflows\": %llu, "
                 "\"pcb_scan_full\": %llu},\n",
                 static_cast<unsigned long long>(main_r.requests),
                 static_cast<unsigned long long>(main_r.responses),
                 static_cast<unsigned long long>(main_r.pipelined),
                 static_cast<unsigned long long>(main_r.read_paused),
                 static_cast<unsigned long long>(main_r.bytes_out),
                 static_cast<unsigned long long>(main_r.sg_frames),
                 static_cast<unsigned long long>(main_r.napi_polls),
                 static_cast<unsigned long long>(main_r.listen_overflows),
                 static_cast<unsigned long long>(main_r.pcb_scan_full));
    std::fprintf(f, "  \"attribution\": {");
    for (size_t i = 0; i < main_r.attribution.size(); ++i) {
      std::fprintf(f, "%s\"%s\": %llu", i == 0 ? "" : ", ",
                   main_r.attribution[i].first.c_str(),
                   static_cast<unsigned long long>(
                       main_r.attribution[i].second));
    }
    std::fprintf(f, "},\n");
    auto abl_json = [&](const char* name, const PhaseResult& r, bool last) {
      std::fprintf(f,
                   "    \"%s\": {\"throughput_rps\": %.1f, \"p50_us\": %.1f, "
                   "\"copied_per_byte\": %.4f, \"irqs_per_frame\": %.4f, "
                   "\"sg_frames\": %llu, \"napi_polls\": %llu}%s\n",
                   name, r.throughput_rps, r.p50, copied_per_byte(r),
                   irqs_per_frame(r),
                   static_cast<unsigned long long>(r.sg_frames),
                   static_cast<unsigned long long>(r.napi_polls),
                   last ? "" : ",");
    };
    std::fprintf(f, "  \"ablations\": {\n");
    abl_json("base", base_r, false);
    abl_json("no_sg", nosg_r, false);
    abl_json("no_napi", nonapi_r, true);
    std::fprintf(f, "  },\n");
    std::fprintf(f,
                 "  \"secure\": {\"loris_denials\": %llu, \"loris_held\": %d, "
                 "\"victim_completed\": %d, \"victim_expected\": %d, "
                 "\"victim_p99_us\": %.1f, \"drained\": %s}\n",
                 static_cast<unsigned long long>(sec.loris_denials),
                 sec.loris_held, sec.victim_completed, sec.victim_expected,
                 sec.victim_p99_us, sec.drained ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);
  }

  return fail ? 1 : 0;
}
