// Monitor campaign: seeded scribble injection vs the nested-kernel memory
// monitor (src/machine/memmon.h), end to end.
//
// One world per (seed, mode): a kernel with the memory monitor enabled,
// three well-behaved tenants and one hostile component, all interleaved as
// fibers on the simulation:
//
//   * kernel state — four pages of "PCB tables" the kernel updates every
//     round through PhysMem::Store, mirrored in a host-side shadow; plus a
//     live PageDirectory whose translations victims depend on.
//   * victims — each owns monitor-granted pages (SecureLmm demotes them to
//     component-writable) and does a write/read-back pattern per round
//     through its MemDomain view; victim 0 also runs a create/write/unlink
//     leg on a journaled FFS volume (the tenant-invariant carry-over).
//   * hostile — a ScribbleInjector driven by the seeded FaultEnv, aiming
//     random/targeted stores, PTE flips, and misprogrammed DMA at the
//     kernel pages and the page-directory/page-table pages.
//
// Two runs per seed:
//
//   guarded   every injected scribble must be a counted, recoverable
//             violation: denied == injected, mon.violation.raised ==
//             injected, mon.violation.caught == injected (the trap-handler
//             accounting), ZERO kernel-shadow mismatches, translations
//             intact, victims unharmed (all ops succeed, none killed), the
//             hostile principal killed, fsck consistent, quota gauges
//             drained.  The run completing is the no-panic proof.
//   ablation  SetEnforcement(false): the same schedule LANDS silently
//             (landed == injected, raised == 0) and kernel state MUST
//             corrupt on at least one seed overall — the monitor is what
//             stood between a buggy component and silent corruption.
//
// Emits BENCH_monitor.json for bench/check_regression.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/com/memblkio.h"
#include "src/fault/scribble.h"
#include "src/fs/ffs.h"
#include "src/fs/fsck.h"
#include "src/kern/paging.h"
#include "src/secure/wrap.h"
#include "src/testbed/testbed.h"

using namespace oskit;
using fault::FaultSpec;
using fault::ScribbleInjector;
using secure::Budget;
using secure::Principal;
using secure::PrincipalRegistry;
using secure::Resource;
using secure::SecureLmm;

namespace {

constexpr int kVictims = 3;
constexpr size_t kKernelPages = 4;   // the shadowed "PCB table" pages
constexpr size_t kVictimPages = 2;   // per-victim granted pages
constexpr uint32_t kMapBase = 0x00400000;  // VA range the victims rely on

struct Options {
  int seeds = 5;
  uint64_t seed_base = 1;
  int rounds = 40;
  const char* json_path = nullptr;
};

struct RunResult {
  uint64_t injected = 0;        // scribbles presented to the memory system
  uint64_t denied = 0;          // refused by the monitor
  uint64_t landed = 0;          // mutated memory (ablation)
  uint64_t raised = 0;          // mon.violation.raised
  uint64_t caught = 0;          // mon.violation.caught (trap recovery)
  uint64_t pte_violations = 0;
  uint64_t dma_violations = 0;
  uint64_t kernel_mismatches = 0;  // shadow vs arena after the run
  uint64_t translate_broken = 0;   // victim VAs that no longer translate
  int victim_ops = 0;
  int victim_failures = 0;
  int fs_ops = 0;
  int fs_failures = 0;
  bool hostile_killed = false;
  bool victim_killed = false;
  bool fsck_consistent = false;
  uint64_t quota_leaked = 0;
  bool completed = false;
};

void RunCampaign(bool enforce, uint64_t seed, const Options& opt,
                 RunResult* out) {
  trace::TraceEnv trace;
  fault::FaultEnv fenv(seed);
  Simulation sim;
  Machine machine(&sim, Machine::Config{});
  KernelEnv kernel(&machine, MultiBootInfo{}, KernelEnv::SleepMode::kFiber,
                   &trace);
  PhysMem& phys = machine.phys();

  if (kernel.EnableMemoryMonitor() != Error::kOk) {
    std::fprintf(stderr, "EnableMemoryMonitor failed\n");
    std::abort();
  }
  MemMonitor* mon = kernel.memmon();
  mon->SetEnforcement(enforce);

  PrincipalRegistry principals(&trace);
  secure::AttachMonitor(&principals, mon);

  // ---- kernel state: shadowed pages the scribbler aims at ----
  void* kstate = kernel.MemAllocAligned(kKernelPages * kPageSize, 0, 12);
  if (kstate == nullptr) {
    std::abort();
  }
  PhysAddr kaddr = phys.AddrOf(kstate);
  std::vector<uint8_t> shadow(kKernelPages * kPageSize);
  for (size_t i = 0; i < shadow.size(); ++i) {
    shadow[i] = static_cast<uint8_t>((seed + i) * 2654435761u >> 24);
  }
  if (phys.Store(kaddr, shadow.data(), shadow.size()) != Error::kOk) {
    std::abort();
  }

  // ---- a live page directory (created under the monitor: its pages are
  // monitor-private) whose translations the victims depend on ----
  PageDirectory pd(&kernel);
  if (pd.MapRange(kMapBase, 0x00100000, 16 * kPageSize, kPteWritable) !=
      Error::kOk) {
    std::abort();
  }
  // The PTE targets: the directory page and the page-table page behind it.
  uint32_t pde = pd.raw_dir()[kMapBase >> 22];
  PhysAddr table_addr = pde & 0xfffff000u;
  std::vector<uint8_t> pt_shadow(2 * kPageSize);
  std::memcpy(pt_shadow.data(), phys.PtrAt(pd.dir_phys()), kPageSize);
  std::memcpy(pt_shadow.data() + kPageSize, phys.PtrAt(table_addr), kPageSize);

  // ---- tenants ----
  Principal* victims[kVictims];
  std::unique_ptr<SecureLmm> victim_lmm[kVictims];
  void* victim_mem[kVictims];
  for (int v = 0; v < kVictims; ++v) {
    victims[v] = principals.Create(
        "victim" + std::to_string(v),
        Budget{}.Set(Resource::kMemBytes, 64 * kPageSize));
    victim_lmm[v] = std::make_unique<SecureLmm>(&kernel.lmm(), victims[v],
                                                mon, &phys);
    victim_mem[v] =
        victim_lmm[v]->AllocAligned(kVictimPages * kPageSize, 0, 12, 0);
    if (victim_mem[v] == nullptr) {
      std::abort();
    }
  }
  Principal* hostile = principals.Create("hostile");
  MemDomain hostile_view = secure::DomainView(mon, hostile);

  // ---- the journaled FFS volume (victim 0's leg) ----
  ComPtr<MemBlkIo> disk = MemBlkIo::Create(1024 * 1024, 512);
  if (!Ok(fs::Mkfs(disk.get()))) {
    std::abort();
  }
  ComPtr<FileSystem> raw_fs;
  if (!Ok(fs::Offs::Mount(disk.get(), raw_fs.Receive()))) {
    std::abort();
  }
  secure::InstallJournalAdmission(static_cast<fs::Offs*>(raw_fs.get()),
                                  &principals);
  ComPtr<FileSystem> victim_fs =
      secure::MakeSecureFs(raw_fs, victims[0], &principals);

  // ---- the hostile component's scribble schedule ----
  fenv.Arm(fault::kScribbleRandomSite, FaultSpec{.probability_percent = 60});
  fenv.Arm(fault::kScribbleTargetedSite, FaultSpec{.probability_percent = 35});
  fenv.Arm(fault::kScribblePteSite, FaultSpec{.probability_percent = 30});
  fenv.Arm(fault::kScribbleDmaSite, FaultSpec{.probability_percent = 25});
  ScribbleInjector injector(&fenv, &phys, &hostile_view);
  injector.AddKernelTarget(kaddr, kKernelPages * kPageSize);
  injector.AddPteTarget(pd.dir_phys(), kPageSize);
  injector.AddPteTarget(table_addr, kPageSize);

  int victims_done = 0;
  bool hostile_done = false;

  // ---- victim fibers: write/read-back on granted pages, FS leg on 0 ----
  for (int v = 0; v < kVictims; ++v) {
    sim.Spawn("victim", [&, v] {
      MemDomain view = secure::DomainView(mon, victims[v]);
      PhysAddr base = phys.AddrOf(victim_mem[v]);
      ComPtr<Dir> root;
      if (v == 0 && !Ok(victim_fs->GetRoot(root.Receive()))) {
        std::abort();
      }
      for (int r = 0; r < opt.rounds; ++r) {
        uint8_t pattern[64];
        std::memset(pattern, 'A' + v + (r & 7), sizeof(pattern));
        PhysAddr at = base + (static_cast<PhysAddr>(r) * 64) %
                                 (kVictimPages * kPageSize - 64);
        uint8_t back[64] = {};
        bool ok = view.Store(at, pattern, sizeof(pattern)) == Error::kOk &&
                  view.Load(at, back, sizeof(back)) == Error::kOk &&
                  std::memcmp(pattern, back, sizeof(back)) == 0;
        ++out->victim_ops;
        if (!ok) {
          ++out->victim_failures;
        }
        if (v == 0) {
          std::string name = "f" + std::to_string(r);
          ComPtr<File> f;
          char blk[512];
          std::memset(blk, 'd', sizeof(blk));
          size_t n = 0;
          bool fs_ok = Ok(root->Create(name.c_str(), 0644, f.Receive())) &&
                       Ok(f->Write(blk, 0, sizeof(blk), &n)) &&
                       n == sizeof(blk);
          f.Reset();
          if (fs_ok) {
            fs_ok = Ok(root->Unlink(name.c_str()));
          }
          ++out->fs_ops;
          if (!fs_ok) {
            ++out->fs_failures;
          }
        }
        sim.SleepFor(kNsPerMs);
      }
      root.Reset();
      ++victims_done;
    });
  }

  // ---- hostile fiber: the scribble schedule, interleaved with victims ----
  sim.Spawn("hostile", [&] {
    for (int r = 0; r < opt.rounds; ++r) {
      injector.Tick();
      // The kernel also does its own (legitimate) state update each round:
      // bump a per-round counter word in page 0 and mirror it in the
      // shadow — in the guarded run both stay in lockstep no matter what
      // the injector does.
      uint32_t word = static_cast<uint32_t>(r + 1);
      std::memcpy(shadow.data() + 16, &word, sizeof(word));
      if (phys.Store(kaddr + 16, &word, sizeof(word)) != Error::kOk) {
        std::abort();  // the kernel's own store must always be allowed
      }
      sim.SleepFor(kNsPerMs);
    }
    hostile_done = true;
  });

  sim.Spawn("coordinator", [&] {
    sim.PollWait([&] { return victims_done >= kVictims && hostile_done; },
                 kNsPerMs);
  });

  if (sim.Run() != Simulation::RunResult::kAllDone) {
    std::fprintf(stderr, "simulation wedged\n");
    std::abort();
  }
  out->completed = true;

  // ---- measure ----
  const ScribbleInjector::Stats& st = injector.stats();
  out->injected = st.attempted;
  out->denied = st.denied;
  out->landed = st.landed;
  out->raised = mon->counters().raised.value();
  out->caught = trace.registry.Value("mon.violation.caught");
  out->pte_violations = mon->counters().pte_violations.value();
  out->dma_violations = mon->counters().dma_violations.value();
  out->hostile_killed = hostile->killed();
  for (int v = 0; v < kVictims; ++v) {
    out->victim_killed = out->victim_killed || victims[v]->killed();
  }

  // Kernel-state checksum: shadow vs arena, byte for byte.
  const uint8_t* actual = static_cast<const uint8_t*>(phys.PtrAt(kaddr));
  for (size_t i = 0; i < shadow.size(); ++i) {
    if (actual[i] != shadow[i]) {
      ++out->kernel_mismatches;
    }
  }
  // Paging-state checksum: the victims' translations and the raw pages.
  for (uint32_t p = 0; p < 16; ++p) {
    uint32_t pa = 0;
    uint32_t flags = 0;
    if (pd.Translate(kMapBase + p * kPageSize, &pa, &flags) != Error::kOk ||
        pa != 0x00100000 + p * kPageSize) {
      ++out->translate_broken;
    }
  }
  out->kernel_mismatches += static_cast<uint64_t>(
      std::memcmp(pt_shadow.data(), phys.PtrAt(pd.dir_phys()), kPageSize) != 0);
  out->kernel_mismatches += static_cast<uint64_t>(
      std::memcmp(pt_shadow.data() + kPageSize, phys.PtrAt(table_addr),
                  kPageSize) != 0);

  // ---- teardown ----
  // In the ablation, landed PTE scribbles leave wild pointers in the
  // directory; repair it from the shadow (through the host-pointer honesty
  // hatch — enforcement is off) so ~PageDirectory can walk it safely.
  if (!enforce) {
    std::memcpy(phys.PtrAt(pd.dir_phys()), pt_shadow.data(), kPageSize);
    std::memcpy(phys.PtrAt(table_addr), pt_shadow.data() + kPageSize,
                kPageSize);
  }
  for (int v = 0; v < kVictims; ++v) {
    victim_lmm[v]->Free(victim_mem[v], kVictimPages * kPageSize);
  }
  kernel.MemFree(kstate, kKernelPages * kPageSize);
  victim_fs.Reset();
  raw_fs->Sync();
  for (size_t i = 0; i < principals.size(); ++i) {
    for (size_t r = 0; r < secure::kResourceCount; ++r) {
      out->quota_leaked += principals.at(i)->charged(static_cast<Resource>(r));
    }
  }
  raw_fs->Unmount();
  raw_fs.Reset();
  out->fsck_consistent = fs::Fsck(disk.get()).consistent;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg == "--seeds" && i + 1 < argc) {
      opt.seeds = std::atoi(argv[++i]);
    } else if (arg == "--seed-base" && i + 1 < argc) {
      opt.seed_base = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--rounds" && i + 1 < argc) {
      opt.rounds = std::atoi(argv[++i]);
    } else if (arg == "--json" && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: monitor_campaign [--seeds N] [--seed-base S] "
                   "[--rounds R] [--json <path>]\n");
      return 2;
    }
  }

  std::printf("Monitor campaign: %d victims x %d rounds, 4 scribble sites, "
              "%d seed(s) from %llu\n\n",
              kVictims, opt.rounds, opt.seeds,
              static_cast<unsigned long long>(opt.seed_base));

  bool fail = false;
  uint64_t injected_total = 0;
  uint64_t caught_total = 0;
  uint64_t guarded_mismatches = 0;
  uint64_t ablation_landed_total = 0;
  int ablation_corrupt_seeds = 0;
  std::vector<std::string> seed_json;

  for (int s = 0; s < opt.seeds; ++s) {
    uint64_t seed = opt.seed_base + static_cast<uint64_t>(s);
    RunResult guard{};
    RunResult ablate{};
    RunCampaign(/*enforce=*/true, seed, opt, &guard);
    RunCampaign(/*enforce=*/false, seed, opt, &ablate);

    std::printf("seed %llu: guarded injected=%llu caught=%llu mismatches=%llu "
                "victim_fail=%d | ablation landed=%llu corrupt_bytes=%llu\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(guard.injected),
                static_cast<unsigned long long>(guard.caught),
                static_cast<unsigned long long>(guard.kernel_mismatches),
                guard.victim_failures,
                static_cast<unsigned long long>(ablate.landed),
                static_cast<unsigned long long>(ablate.kernel_mismatches));

    // Guarded: 100% of injected scribbles caught, nothing corrupted.
    if (guard.injected == 0) {
      std::printf("  FAIL guarded: the schedule injected nothing\n");
      fail = true;
    }
    if (guard.denied != guard.injected || guard.landed != 0) {
      std::printf("  FAIL guarded: denied=%llu landed=%llu of %llu injected\n",
                  static_cast<unsigned long long>(guard.denied),
                  static_cast<unsigned long long>(guard.landed),
                  static_cast<unsigned long long>(guard.injected));
      fail = true;
    }
    if (guard.raised != guard.injected || guard.caught != guard.injected) {
      std::printf("  FAIL guarded accounting: raised=%llu caught=%llu != "
                  "injected=%llu\n",
                  static_cast<unsigned long long>(guard.raised),
                  static_cast<unsigned long long>(guard.caught),
                  static_cast<unsigned long long>(guard.injected));
      fail = true;
    }
    if (guard.kernel_mismatches != 0 || guard.translate_broken != 0) {
      std::printf("  FAIL guarded integrity: %llu shadow mismatches, %llu "
                  "broken translations\n",
                  static_cast<unsigned long long>(guard.kernel_mismatches),
                  static_cast<unsigned long long>(guard.translate_broken));
      fail = true;
    }
    if (guard.victim_failures != 0 || guard.victim_killed ||
        guard.fs_failures != 0) {
      std::printf("  FAIL guarded victims: %d/%d ops failed, %d/%d fs ops "
                  "failed, killed=%d\n",
                  guard.victim_failures, guard.victim_ops, guard.fs_failures,
                  guard.fs_ops, guard.victim_killed ? 1 : 0);
      fail = true;
    }
    if (!guard.hostile_killed) {
      std::printf("  FAIL guarded: the hostile domain survived\n");
      fail = true;
    }
    if (!guard.fsck_consistent || guard.quota_leaked != 0) {
      std::printf("  FAIL guarded invariants: fsck=%d leaked=%llu\n",
                  guard.fsck_consistent ? 1 : 0,
                  static_cast<unsigned long long>(guard.quota_leaked));
      fail = true;
    }
    // Ablation: the same schedule lands silently.
    if (ablate.landed != ablate.injected || ablate.landed == 0) {
      std::printf("  FAIL ablation: landed=%llu of %llu injected\n",
                  static_cast<unsigned long long>(ablate.landed),
                  static_cast<unsigned long long>(ablate.injected));
      fail = true;
    }
    if (ablate.raised != 0 || ablate.caught != 0) {
      std::printf("  FAIL ablation counted violations with enforcement "
                  "off: raised=%llu caught=%llu\n",
                  static_cast<unsigned long long>(ablate.raised),
                  static_cast<unsigned long long>(ablate.caught));
      fail = true;
    }
    if (ablate.hostile_killed) {
      std::printf("  FAIL ablation: hostile domain killed with enforcement "
                  "off\n");
      fail = true;
    }

    injected_total += guard.injected;
    caught_total += guard.caught;
    guarded_mismatches += guard.kernel_mismatches + guard.translate_broken;
    ablation_landed_total += ablate.landed;
    if (ablate.kernel_mismatches > 0 || ablate.translate_broken > 0) {
      ++ablation_corrupt_seeds;
    }

    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"seed\": %llu, \"injected\": %llu, \"caught\": %llu, "
        "\"pte\": %llu, \"dma\": %llu, \"guarded_mismatches\": %llu, "
        "\"ablation_landed\": %llu, \"ablation_corrupt_bytes\": %llu}",
        static_cast<unsigned long long>(seed),
        static_cast<unsigned long long>(guard.injected),
        static_cast<unsigned long long>(guard.caught),
        static_cast<unsigned long long>(guard.pte_violations),
        static_cast<unsigned long long>(guard.dma_violations),
        static_cast<unsigned long long>(guard.kernel_mismatches),
        static_cast<unsigned long long>(ablate.landed),
        static_cast<unsigned long long>(ablate.kernel_mismatches));
    seed_json.push_back(buf);
  }

  // The ablation MUST corrupt somewhere, or the campaign proves nothing.
  if (ablation_corrupt_seeds == 0) {
    std::printf("\nFAIL: no ablation run corrupted kernel state — the "
                "monitor is not what integrity rests on\n");
    fail = true;
  }

  std::printf("\nShape checks:\n");
  std::printf("  catch rate:  %llu/%llu injected violations caught  %s\n",
              static_cast<unsigned long long>(caught_total),
              static_cast<unsigned long long>(injected_total),
              caught_total == injected_total ? "PASS" : "FAIL");
  std::printf("  integrity:   %llu guarded mismatches  %s\n",
              static_cast<unsigned long long>(guarded_mismatches),
              guarded_mismatches == 0 ? "PASS" : "FAIL");
  std::printf("  ablation:    corrupt on %d/%d seeds (need >= 1)  %s\n",
              ablation_corrupt_seeds, opt.seeds,
              ablation_corrupt_seeds >= 1 ? "PASS" : "FAIL");
  std::printf("  overall:     %s\n", fail ? "FAIL" : "PASS");

  if (opt.json_path != nullptr) {
    FILE* jf = std::fopen(opt.json_path, "w");
    if (jf == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", opt.json_path);
      return 2;
    }
    std::fprintf(jf, "{\n  \"bench\": \"monitor_campaign\",\n");
    std::fprintf(jf, "  \"victims\": %d,\n  \"rounds\": %d,\n", kVictims,
                 opt.rounds);
    std::fprintf(jf, "  \"seeds_run\": %d,\n", opt.seeds);
    std::fprintf(jf, "  \"injected_total\": %llu,\n",
                 static_cast<unsigned long long>(injected_total));
    std::fprintf(jf, "  \"caught_total\": %llu,\n",
                 static_cast<unsigned long long>(caught_total));
    std::fprintf(jf, "  \"catch_rate\": %.3f,\n",
                 injected_total > 0
                     ? static_cast<double>(caught_total) /
                           static_cast<double>(injected_total)
                     : 0.0);
    std::fprintf(jf, "  \"guarded_mismatches\": %llu,\n",
                 static_cast<unsigned long long>(guarded_mismatches));
    std::fprintf(jf, "  \"ablation_landed_total\": %llu,\n",
                 static_cast<unsigned long long>(ablation_landed_total));
    std::fprintf(jf, "  \"ablation_corrupt_seeds\": %d,\n",
                 ablation_corrupt_seeds);
    std::fprintf(jf, "  \"seeds\": [\n");
    for (size_t i = 0; i < seed_json.size(); ++i) {
      std::fprintf(jf, "%s%s\n", seed_json[i].c_str(),
                   i + 1 < seed_json.size() ? "," : "");
    }
    std::fprintf(jf, "  ],\n  \"pass\": %s\n}\n", fail ? "false" : "true");
    std::fclose(jf);
    std::printf("wrote %s\n", opt.json_path);
  }
  return fail ? 1 : 0;
}
