// NAPI ablation: RX interrupt mitigation + budgeted polled dispatch.
//
// The 1997 driver raised one interrupt per received frame; at 100 Mbps that
// is ~8600 interrupts per second of pure dispatch overhead on the receive
// path (and the receive-livelock literature's whole complaint).  This bench
// runs the same wire-limited ttcp transfer twice:
//
//   oskit (per-frame)     — seed behaviour: NIC mitigation registers at
//                           their defaults (threshold 1, no holdoff), glue
//                           drains the ring from the ISR, one IRQ per frame;
//   oskit_napi            — NIC raises only after 8 frames pend or a 1 ms
//                           holdoff expires (ring-occupancy fallback at 3/4
//                           full), glue masks RX, drains up to a 16-frame
//                           budget per softirq-style dispatch, re-enables
//                           and RE-CHECKS the ring, and hands each drained
//                           burst to TCP as one batch (one delayed-ACK pass).
//
// Everything is counter-verified from the receiver's trace registry: IRQs
// actually raised per frame actually delivered (nic.rx.coalesce.*), frames
// per poll dispatch (glue.rx.poll.*), and TCP batch passes (net.tcp.*).
// The headline claim — the PR's acceptance criterion — is a >= 4x reduction
// in RX interrupts per delivered frame at wire saturation, with the byte
// count asserted identical by the ttcp harness itself.

#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "src/testbed/ttcp.h"
#include "src/trace/trace.h"

using namespace oskit;
using namespace oskit::testbed;

namespace {

struct Metrics {
  const char* json_key;
  double sim_mbps = 0;
  uint64_t rx_frames = 0;       // frames the receiver's NIC accepted
  uint64_t rx_irqs = 0;         // RX interrupts actually raised for them
  uint64_t threshold_fires = 0;
  uint64_t holdoff_fires = 0;
  uint64_t ring_fires = 0;
  uint64_t polls = 0;           // glue poll dispatches
  uint64_t poll_frames = 0;     // frames delivered by those dispatches
  uint64_t budget_exhausted = 0;
  uint64_t reenable_races = 0;  // frames caught by the post-re-enable check
  uint64_t rx_batches = 0;      // TCP batch passes on the receiver
  uint64_t batched_outputs = 0;

  double IrqsPerFrame() const {
    return rx_frames > 0 ? static_cast<double>(rx_irqs) / rx_frames : 0;
  }
  double FramesPerPoll() const {
    return polls > 0 ? static_cast<double>(poll_frames) / polls : 0;
  }
};

Metrics RunConfig(const char* json_key, NetConfig config, size_t blocks) {
  // Wire-limited, as the claim is about saturation-rate interrupt load.
  EthernetWire::Config wire;
  wire.bits_per_second = 100 * 1000 * 1000;
  wire.propagation_ns = 5 * kNsPerUs;
  World world(wire);
  world.AddHost("rx", config);
  world.AddHost("tx", config);
  TtcpResult r = RunTtcp(world, /*block_size=*/4096, blocks);

  Metrics m;
  m.json_key = json_key;
  m.sim_mbps = r.MbitPerSecSim();
  const trace::CounterRegistry& reg = world.host(0).trace.registry;
  m.rx_frames = reg.Value("nic.rx.coalesce.frames");
  m.rx_irqs = reg.Value("nic.rx.coalesce.irqs");
  m.threshold_fires = reg.Value("nic.rx.coalesce.threshold_fires");
  m.holdoff_fires = reg.Value("nic.rx.coalesce.holdoff_fires");
  m.ring_fires = reg.Value("nic.rx.coalesce.ring_fallback_fires");
  m.polls = reg.Value("glue.rx.poll.polls");
  m.poll_frames = reg.Value("glue.rx.poll.frames");
  m.budget_exhausted = reg.Value("glue.rx.poll.budget_exhausted");
  m.reenable_races = reg.Value("glue.rx.poll.reenable_races");
  m.rx_batches = reg.Value("net.tcp.rx_batches");
  m.batched_outputs = reg.Value("net.tcp.batched_outputs");
  return m;
}

void PrintRow(const char* name, const Metrics& m) {
  std::printf("%-26s | %10.1f | %8llu | %8llu | %9.3f | %8llu | %11.1f\n",
              name, m.sim_mbps, static_cast<unsigned long long>(m.rx_frames),
              static_cast<unsigned long long>(m.rx_irqs), m.IrqsPerFrame(),
              static_cast<unsigned long long>(m.polls), m.FramesPerPoll());
}

}  // namespace

int main(int argc, char** argv) {
  // Usage: napi_rx [blocks] [--json <path>]
  size_t blocks = 2048;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "usage: napi_rx [blocks] [--json <path>]\n");
        return 2;
      }
      json_path = argv[++i];
    } else {
      blocks = std::strtoul(argv[i], nullptr, 0);
    }
  }

  std::printf("NAPI ablation: wire-limited ttcp (%zu x 4096-byte blocks), "
              "receiver-side interrupt accounting\n\n",
              blocks);

  Metrics perframe = RunConfig("oskit_perframe", NetConfig::kOskit, blocks);
  Metrics napi = RunConfig("oskit_napi", NetConfig::kOskitNapi, blocks);

  std::printf("%-26s | %10s | %8s | %8s | %9s | %8s | %11s\n", "configuration",
              "wire Mbit/s", "frames", "RX IRQs", "IRQ/frame", "polls",
              "frames/poll");
  std::printf("---------------------------+------------+----------+----------+"
              "-----------+----------+------------\n");
  PrintRow("OSKit, per-frame IRQ", perframe);
  PrintRow("OSKit, coalesced+polled", napi);
  std::printf("\nnapi IRQ causes: threshold=%llu holdoff=%llu ring=%llu; "
              "budget exhausted=%llu, re-enable races caught=%llu, "
              "tcp batches=%llu (outputs deferred into them=%llu)\n",
              static_cast<unsigned long long>(napi.threshold_fires),
              static_cast<unsigned long long>(napi.holdoff_fires),
              static_cast<unsigned long long>(napi.ring_fires),
              static_cast<unsigned long long>(napi.budget_exhausted),
              static_cast<unsigned long long>(napi.reenable_races),
              static_cast<unsigned long long>(napi.rx_batches),
              static_cast<unsigned long long>(napi.batched_outputs));

  bool fail = false;
  std::printf("\nShape checks:\n");

  // The seed path really is one interrupt per frame (this is the ablation
  // baseline — if it drifts, the reduction factor below means nothing).
  bool ok = perframe.IrqsPerFrame() > 0.99 && perframe.polls == 0;
  fail |= !ok;
  std::printf("  per-frame:   %.3f IRQs/frame, %llu polls (1997 behaviour: "
              "one IRQ per frame, ISR drain)  %s\n",
              perframe.IrqsPerFrame(),
              static_cast<unsigned long long>(perframe.polls),
              ok ? "PASS" : "FAIL");

  // The acceptance criterion: >= 4x fewer RX interrupts per delivered frame.
  double reduction = napi.IrqsPerFrame() > 0
                         ? perframe.IrqsPerFrame() / napi.IrqsPerFrame()
                         : 0;
  ok = reduction >= 4.0;
  fail |= !ok;
  std::printf("  mitigation:  %.3f -> %.3f IRQs/frame (%.1fx fewer; "
              "acceptance floor 4x)  %s\n",
              perframe.IrqsPerFrame(), napi.IrqsPerFrame(), reduction,
              ok ? "PASS" : "FAIL");

  // The polled path really carried the frames (not the legacy ISR drain),
  // and each dispatch amortised over several frames.
  // (tolerate a couple of frames parked in the ring when the simulation's
  // fibers finish mid-close-handshake)
  ok = napi.polls > 0 && napi.poll_frames + 4 >= napi.rx_frames &&
       napi.poll_frames <= napi.rx_frames && napi.FramesPerPoll() > 1.5;
  fail |= !ok;
  std::printf("  polling:     %llu/%llu frames via poll dispatch, %.1f "
              "frames/poll  %s\n",
              static_cast<unsigned long long>(napi.poll_frames),
              static_cast<unsigned long long>(napi.rx_frames),
              napi.FramesPerPoll(), ok ? "PASS" : "FAIL");

  // The burst fed TCP as batches: one delayed-ACK pass per burst, several
  // inputs folded into each deferred output.
  ok = napi.rx_batches > 0 && napi.batched_outputs >= napi.rx_batches;
  fail |= !ok;
  std::printf("  tcp batch:   %llu batch passes, %llu deferred outputs  %s\n",
              static_cast<unsigned long long>(napi.rx_batches),
              static_cast<unsigned long long>(napi.batched_outputs),
              ok ? "PASS" : "FAIL");

  // Mitigation must not cost bandwidth at saturation (byte-for-byte
  // delivery is already asserted inside the ttcp harness).
  ok = napi.sim_mbps > 0.95 * perframe.sim_mbps;
  fail |= !ok;
  std::printf("  bandwidth:   %.1f vs %.1f Mbit/s wire-limited  %s\n",
              napi.sim_mbps, perframe.sim_mbps, ok ? "PASS" : "FAIL");

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"napi_rx\",\n  \"blocks\": %zu,\n",
                 blocks);
    std::fprintf(f, "  \"configs\": [\n");
    const Metrics* rows[] = {&perframe, &napi};
    for (int i = 0; i < 2; ++i) {
      const Metrics& m = *rows[i];
      std::fprintf(
          f,
          "    {\"config\": \"%s\", \"sim_mbps\": %.1f, "
          "\"rx_frames\": %llu, \"rx_irqs\": %llu, "
          "\"irqs_per_frame\": %.4f, \"polls\": %llu, "
          "\"poll_frames\": %llu, \"frames_per_poll\": %.2f, "
          "\"threshold_fires\": %llu, \"holdoff_fires\": %llu, "
          "\"ring_fallback_fires\": %llu, \"budget_exhausted\": %llu, "
          "\"reenable_races\": %llu, \"tcp_rx_batches\": %llu, "
          "\"tcp_batched_outputs\": %llu}%s\n",
          m.json_key, m.sim_mbps, static_cast<unsigned long long>(m.rx_frames),
          static_cast<unsigned long long>(m.rx_irqs), m.IrqsPerFrame(),
          static_cast<unsigned long long>(m.polls),
          static_cast<unsigned long long>(m.poll_frames), m.FramesPerPoll(),
          static_cast<unsigned long long>(m.threshold_fires),
          static_cast<unsigned long long>(m.holdoff_fires),
          static_cast<unsigned long long>(m.ring_fires),
          static_cast<unsigned long long>(m.budget_exhausted),
          static_cast<unsigned long long>(m.reenable_races),
          static_cast<unsigned long long>(m.rx_batches),
          static_cast<unsigned long long>(m.batched_outputs),
          i == 0 ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"checks\": {\"irq_reduction_factor\": %.2f, "
                 "\"acceptance_floor\": 4.0}\n",
                 reduction);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);
  }

  return fail ? 1 : 0;
}
