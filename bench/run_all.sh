#!/bin/sh
# Runs every benchmark binary with smoke-sized arguments and emits a
# machine-readable counter report (BENCH_trace.json, produced by
# ablation_glue from the sender's trace counter registry; BENCH_fault.json,
# produced by the fault-injection campaign's aggregate counters;
# BENCH_sg.json, produced by table1_bandwidth with the per-row
# bytes-copied-per-byte-sent figures for the scatter-gather send path;
# BENCH_crash.json, produced by the every-write power-cut crash campaign's
# aggregate durability counters; BENCH_napi.json, produced by the NAPI
# ablation with IRQs-per-frame and frames-per-poll at wire saturation;
# BENCH_c10k.json, produced by the scale-out C10k bench with held-open
# concurrency, connect-to-echo latency percentiles, and switch statistics;
# BENCH_tenant.json, produced by the multi-tenant hostile-tenant campaign
# with per-seed victim p99 ratios, quota denial counts, and leak checks).
#
# Usage: bench/run_all.sh [build_dir]
#   build_dir defaults to ./build; binaries are expected in $build_dir/bench.
#
# Exit status is non-zero if any benchmark exits non-zero or any shape
# check prints FAIL.

set -u

BUILD_DIR="${1:-build}"
BENCH_DIR="$BUILD_DIR/bench"
LOG_DIR="$BENCH_DIR/logs"
JSON_OUT="$BENCH_DIR/BENCH_trace.json"
FAULT_JSON_OUT="$BENCH_DIR/BENCH_fault.json"
SG_JSON_OUT="$BENCH_DIR/BENCH_sg.json"
CRASH_JSON_OUT="$BENCH_DIR/BENCH_crash.json"
NAPI_JSON_OUT="$BENCH_DIR/BENCH_napi.json"
C10K_JSON_OUT="$BENCH_DIR/BENCH_c10k.json"
TENANT_JSON_OUT="$BENCH_DIR/BENCH_tenant.json"

if [ ! -d "$BENCH_DIR" ]; then
    echo "error: $BENCH_DIR not found — build the project first" >&2
    exit 2
fi
mkdir -p "$LOG_DIR"

status=0

run_bench() {
    name="$1"
    shift
    if [ ! -x "$BENCH_DIR/$name" ]; then
        echo "SKIP $name (not built)"
        return
    fi
    log="$LOG_DIR/$name.txt"
    echo "RUN  $name $*"
    if ! "$BENCH_DIR/$name" "$@" > "$log" 2>&1; then
        echo "FAIL $name (non-zero exit, see $log)"
        status=1
        return
    fi
    if grep -q "FAIL" "$log"; then
        echo "FAIL $name (shape check failed, see $log)"
        status=1
        return
    fi
    echo "PASS $name"
}

# Smoke sizes: enough traffic for every shape check, seconds per bench.
run_bench table1_bandwidth 2048 --json "$SG_JSON_OUT"
run_bench table2_latency   4000
run_bench napi_rx          2048 --json "$NAPI_JSON_OUT"
run_bench c10k             --hosts 4 --per-host 150 --json "$C10K_JSON_OUT"
run_bench table3_sizes
run_bench fig_footprint
run_bench fig_javapc
run_bench ablation_glue    4000 --json "$JSON_OUT"
run_bench ablation_alloc
run_bench ablation_bufio
run_bench fault_campaign   --seeds 8 --json "$FAULT_JSON_OUT"
run_bench crash_campaign   --seeds 2 --json "$CRASH_JSON_OUT"
run_bench tenant_campaign  --seeds 5 --json "$TENANT_JSON_OUT"

if [ -f "$JSON_OUT" ]; then
    echo "wrote $JSON_OUT"
else
    echo "FAIL BENCH_trace.json was not produced"
    status=1
fi
if [ -f "$FAULT_JSON_OUT" ]; then
    echo "wrote $FAULT_JSON_OUT"
else
    echo "FAIL BENCH_fault.json was not produced"
    status=1
fi
if [ -f "$SG_JSON_OUT" ]; then
    echo "wrote $SG_JSON_OUT"
else
    echo "FAIL BENCH_sg.json was not produced"
    status=1
fi
if [ -f "$CRASH_JSON_OUT" ]; then
    echo "wrote $CRASH_JSON_OUT"
else
    echo "FAIL BENCH_crash.json was not produced"
    status=1
fi
if [ -f "$NAPI_JSON_OUT" ]; then
    echo "wrote $NAPI_JSON_OUT"
else
    echo "FAIL BENCH_napi.json was not produced"
    status=1
fi
if [ -f "$C10K_JSON_OUT" ]; then
    echo "wrote $C10K_JSON_OUT"
else
    echo "FAIL BENCH_c10k.json was not produced"
    status=1
fi
if [ -f "$TENANT_JSON_OUT" ]; then
    echo "wrote $TENANT_JSON_OUT"
else
    echo "FAIL BENCH_tenant.json was not produced"
    status=1
fi

exit $status
