#!/bin/sh
# Runs every benchmark binary with smoke-sized arguments and emits a
# machine-readable counter report (BENCH_trace.json, produced by
# ablation_glue from the sender's trace counter registry; BENCH_fault.json,
# produced by the fault-injection campaign's aggregate counters;
# BENCH_sg.json, produced by table1_bandwidth with the per-row
# bytes-copied-per-byte-sent figures for the scatter-gather send path;
# BENCH_crash.json, produced by the every-write power-cut crash campaign's
# aggregate durability counters; BENCH_napi.json, produced by the NAPI
# ablation with IRQs-per-frame and frames-per-poll at wire saturation;
# BENCH_c10k.json, produced by the scale-out C10k bench with held-open
# concurrency, connect-to-echo latency percentiles, and switch statistics;
# BENCH_tenant.json, produced by the multi-tenant hostile-tenant campaign
# with per-seed victim p99 ratios, quota denial counts, and leak checks;
# BENCH_http.json, produced by the flagship HTTP/1.1 macro-workload with
# throughput, tail latency, span attribution, ablation rows, and the
# slow-loris verdict; BENCH_monitor.json, produced by the memory-monitor
# scribble campaign with catch rates, integrity checks, and the
# corruption-proving ablation; BENCH_aio.json, produced by the async
# completion-ring campaign with the queue-depth sweep, the journal-over-ring
# counters, the stack-composition matrix, and the sendfile vs read+send
# copied-bytes ablation).
#
# After the benches, every BENCH_*.json is compared against the checked-in
# baselines (bench/baselines/) by bench/check_regression: a metric outside
# its tolerance band fails the run and the deltas land in REGRESSIONS.json.
#
# Usage: bench/run_all.sh [build_dir]
#   build_dir defaults to ./build; binaries are expected in $build_dir/bench.
#
# Exit status is non-zero if any benchmark exits non-zero, any shape check
# prints FAIL, or any baselined metric regresses.

set -u

BUILD_DIR="${1:-build}"
BENCH_DIR="$BUILD_DIR/bench"
LOG_DIR="$BENCH_DIR/logs"
BASELINE_DIR="$(dirname "$0")/baselines"

if [ ! -d "$BENCH_DIR" ]; then
    echo "error: $BENCH_DIR not found — build the project first" >&2
    exit 2
fi
mkdir -p "$LOG_DIR"

status=0

run_bench() {
    name="$1"
    shift
    if [ ! -x "$BENCH_DIR/$name" ]; then
        echo "SKIP $name (not built)"
        return
    fi
    log="$LOG_DIR/$name.txt"
    echo "RUN  $name $*"
    if ! "$BENCH_DIR/$name" "$@" > "$log" 2>&1; then
        echo "FAIL $name (non-zero exit, see $log)"
        status=1
        return
    fi
    if grep -q "FAIL" "$log"; then
        echo "FAIL $name (shape check failed, see $log)"
        status=1
        return
    fi
    echo "PASS $name"
}

# Smoke sizes: enough traffic for every shape check, seconds per bench.
# These invocations must match .github/workflows/ci.yml and the baselines
# in bench/baselines/ — the emitted numbers are compared against them.
run_bench table1_bandwidth 2048 --json "$BENCH_DIR/BENCH_sg.json"
run_bench table2_latency   4000
run_bench napi_rx          2048 --json "$BENCH_DIR/BENCH_napi.json"
run_bench c10k             --hosts 4 --per-host 150 --json "$BENCH_DIR/BENCH_c10k.json"
run_bench table3_sizes
run_bench fig_footprint
run_bench fig_javapc
run_bench ablation_glue    4000 --json "$BENCH_DIR/BENCH_trace.json"
run_bench ablation_alloc
run_bench ablation_bufio
run_bench fault_campaign   --seeds 8 --json "$BENCH_DIR/BENCH_fault.json"
run_bench crash_campaign   --seeds 2 --json "$BENCH_DIR/BENCH_crash.json"
run_bench tenant_campaign  --seeds 5 --json "$BENCH_DIR/BENCH_tenant.json"
run_bench http_campaign    --json "$BENCH_DIR/BENCH_http.json"
run_bench monitor_campaign --seeds 5 --seed-base 1 --json "$BENCH_DIR/BENCH_monitor.json"
run_bench aio_campaign     --json "$BENCH_DIR/BENCH_aio.json"

for json in trace fault sg crash napi c10k tenant http monitor aio; do
    out="$BENCH_DIR/BENCH_$json.json"
    if [ -f "$out" ]; then
        echo "wrote $out"
    else
        echo "FAIL BENCH_$json.json was not produced"
        status=1
    fi
done

# The perf-regression gate: every baselined metric must stay inside its
# tolerance band.
if command -v python3 > /dev/null 2>&1; then
    if ! python3 "$(dirname "$0")/check_regression" \
            --baselines "$BASELINE_DIR" --bench-dir "$BENCH_DIR" \
            --out "$BENCH_DIR/REGRESSIONS.json"; then
        echo "FAIL perf regression gate (see $BENCH_DIR/REGRESSIONS.json)"
        status=1
    fi
else
    echo "SKIP perf regression gate (python3 not found)"
fi

exit $status
