// Table 1 reproduction: ttcp TCP bandwidth across the stack configurations.
//
// Paper setup: two Pentium Pro 200 MHz PCs on 100 Mbps Ethernet, ttcp
// sending 131072 x 4096-byte blocks; rows Linux 2.0.29, FreeBSD 2.1.5, and
// the OSKit (FreeBSD stack + Linux drivers).  Findings: the OSKit receives
// about as fast as FreeBSD (the received skbuff maps into an mbuf cluster
// without copying) but sends slower (discontiguous mbuf chains had to be
// copied into contiguous skbuffs).
//
// This harness runs the OSKit configuration twice: once with the historical
// flatten-on-send glue behaviour forced (reproducing the paper's measured
// asymmetry) and once with the scatter-gather transmit path (BufIoVec +
// gather DMA), which removes the send-side copy entirely.  The key derived
// figure is bytes-copied-per-byte-sent: ~1.0 for the flatten path, 0 for
// scatter-gather.
//
// Both machines of a pair run the same configuration, as in the paper.
// Three views of each transfer:
//
//   wire-limited (sim)  : simulated time against the 100 Mbps wire model —
//                         every configuration saturates the wire, as the
//                         paper's systems nearly did;
//   software path (wall): host CPU time of the whole two-machine software
//                         stack with an infinite wire.  On a modern CPU the
//                         extra 1.4 KB copy per segment is ~1% — real but
//                         below run-to-run noise, so this column shows the
//                         overall cost, not the asymmetry;
//   P6-scaled model     : bandwidth computed from the transfer's REAL,
//                         deterministic work counters (segments actually
//                         sent, bytes actually checksummed, bytes actually
//                         copied by the glue — all from executed code) and
//                         1997-hardware constants (documented below).  The
//                         paper's asymmetry lives here, because in 1997 the
//                         per-byte costs dominated.
//
// Model constants (order-of-magnitude P6/200): memcpy 70 MB/s, IP/TCP
// checksum 50 MB/s, 100 us fixed protocol+driver+interrupt cost per segment
// per side — chosen so a native endpoint lands near the paper's 1997
// throughput regime (CPU-bound just below the 100 Mbps wire).

#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "src/testbed/ttcp.h"
#include "src/trace/trace.h"

using namespace oskit;
using namespace oskit::testbed;

namespace {

constexpr double kMemcpyBw = 70e6;    // bytes/s
constexpr double kChecksumBw = 50e6;  // bytes/s
constexpr double kFixedPerSegment = 100e-6;  // s, per side
constexpr double kWireBps = 100e6;
constexpr double kMss = 1448;

struct Row {
  const char* name;
  const char* json_key;
  NetConfig config;
  bool force_tx_flatten;
};

struct Cell {
  double wall_mbps;
  double sim_mbps;
  double model_send_mbps;   // bottlenecked by the sending machine
  double model_recv_mbps;   // bottlenecked by the receiving machine
  uint64_t bytes_sent;
  uint64_t glue_copied_bytes;
  uint64_t sg_frames;
  uint64_t sg_segments;
  trace::CounterSnapshot sender_counters;  // sender registry after the run

  // The headline derived figure: how many bytes the boundary glue copied
  // for every byte that went out on the wire.
  double CopiedPerByte() const {
    return bytes_sent > 0
               ? static_cast<double>(glue_copied_bytes) / bytes_sent
               : 0;
  }
};

Cell RunConfig(const Row& row, size_t blocks, size_t block_size) {
  Cell cell{};
  auto apply_toggles = [&](World& world) {
    if (row.force_tx_flatten) {
      world.host(0).stack->SetForceTxFlatten(true);
      world.host(1).stack->SetForceTxFlatten(true);
    }
  };
  // Wire-limited run (smaller: it is wire-paced anyway).  The mitigated
  // configuration gets the full transfer: its slow-start ramp crosses ~1 ms
  // holdoff-latency RTTs, a fixed cost that needs amortising before the
  // steady-state (saturated) rate shows.
  {
    EthernetWire::Config wire;
    wire.bits_per_second = static_cast<uint64_t>(kWireBps);
    wire.propagation_ns = 5 * kNsPerUs;
    World world(wire);
    world.AddHost("rx", row.config);
    world.AddHost("tx", row.config);
    apply_toggles(world);
    size_t wire_blocks =
        row.config == NetConfig::kOskitNapi ? blocks : blocks / 4;
    TtcpResult r = RunTtcp(world, block_size, wire_blocks);
    cell.sim_mbps = r.MbitPerSecSim();
  }
  // Software-path run.
  TtcpResult sw;
  {
    World world;
    world.AddHost("rx", row.config);
    world.AddHost("tx", row.config);
    apply_toggles(world);
    sw = RunTtcp(world, block_size, blocks);
    cell.wall_mbps = sw.MbitPerSecWall();
    cell.sender_counters = world.host(1).trace.registry.Snapshot();
  }
  // Registry-sourced (TtcpResult fills these from the sender host's trace
  // counter registry, "glue.send.*").
  cell.bytes_sent = sw.bytes_transferred;
  cell.glue_copied_bytes = sw.sender_glue_copied_bytes;
  cell.sg_frames = sw.sender_glue_sg_frames;
  cell.sg_segments = sw.sender_glue_sg_segments;

  // ---- The P6-scaled model, fed by the transfer's real counters ----
  double bytes = static_cast<double>(sw.bytes_transferred);
  double segments = bytes / kMss;

  // Sender-side seconds: fixed per segment, the socket-layer user->buffer
  // copy, the checksum over every byte, plus whatever the glue REALLY
  // copied (zero for the natives and for scatter-gather OSKit, ~all bytes
  // for flatten OSKit).
  double sender_s = segments * kFixedPerSegment + bytes / kMemcpyBw +
                    bytes / kChecksumBw +
                    static_cast<double>(cell.glue_copied_bytes) / kMemcpyBw;
  // Receiver-side seconds: fixed per segment, checksum, buffer->user copy.
  // The OSKit receive path mapped every packet (glue rx copies = 0), so it
  // models identically to native FreeBSD — exactly the paper's point.
  double receiver_s = segments * kFixedPerSegment + bytes / kChecksumBw +
                      bytes / kMemcpyBw;
  double wire_s = bytes * 8 / kWireBps;

  auto mbps = [&](double side_s) {
    double t = side_s > wire_s ? side_s : wire_s;
    return bytes * 8 / t / 1e6;
  };
  cell.model_send_mbps = mbps(sender_s);
  cell.model_recv_mbps = mbps(receiver_s);
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  // Usage: table1_bandwidth [blocks] [--json <path>]
  // Paper: 131072 blocks (512 MB).  Default 8192 blocks (32 MB) per cell so
  // the table runs in seconds; pass a block count to scale.
  size_t blocks = 8192;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "usage: table1_bandwidth [blocks] [--json <path>]\n");
        return 2;
      }
      json_path = argv[++i];
    } else {
      blocks = std::strtoul(argv[i], nullptr, 0);
    }
  }
  const size_t kBlockSize = 4096;

  const Row kRows[] = {
      {"Linux 2.0.29 (native skbuff stack)", "linux", NetConfig::kNativeLinux,
       false},
      {"FreeBSD 2.1.5 (native mbuf stack)", "freebsd", NetConfig::kNativeBsd,
       false},
      {"OSKit, flatten send (1997 glue)", "oskit_flatten", NetConfig::kOskit,
       true},
      {"OSKit, scatter-gather send", "oskit_sg", NetConfig::kOskit, false},
      {"OSKit, coalesced+polled RX", "oskit_napi", NetConfig::kOskitNapi,
       false},
  };
  constexpr int kNumRows = 5;

  std::printf("Table 1: TCP bandwidth measured with ttcp "
              "(%zu blocks x %zu bytes = %.0f MB per cell)\n",
              blocks, kBlockSize, blocks * kBlockSize / 1048576.0);
  std::printf("(both machines of each pair run the configuration, as in the "
              "paper)\n\n");

  Cell cells[kNumRows];
  for (int i = 0; i < kNumRows; ++i) {
    cells[i] = RunConfig(kRows[i], blocks, kBlockSize);
  }

  std::printf("%-36s | %10s | %10s | %11s | %11s | %12s | %9s\n",
              "configuration", "wire (sim)", "sw (wall)", "model send",
              "model recv", "glue copies", "copied/");
  std::printf("%-36s | %10s | %10s | %11s | %11s | %12s | %9s\n", "", "Mbit/s",
              "Mbit/s", "Mbit/s", "Mbit/s", "bytes", "byte sent");
  std::printf("-------------------------------------+------------+------------+"
              "-------------+-------------+--------------+----------\n");
  for (int i = 0; i < kNumRows; ++i) {
    std::printf("%-36s | %10.1f | %10.0f | %11.1f | %11.1f | %12llu | %9.3f\n",
                kRows[i].name, cells[i].sim_mbps, cells[i].wall_mbps,
                cells[i].model_send_mbps, cells[i].model_recv_mbps,
                static_cast<unsigned long long>(cells[i].glue_copied_bytes),
                cells[i].CopiedPerByte());
  }

  const Cell& bsd = cells[1];
  const Cell& flatten = cells[2];
  const Cell& sg = cells[3];
  double flatten_send_ratio = flatten.model_send_mbps / bsd.model_send_mbps;
  double sg_send_ratio = sg.model_send_mbps / bsd.model_send_mbps;
  double recv_ratio = sg.model_recv_mbps / bsd.model_recv_mbps;
  bool fail = false;

  std::printf("\nShape checks against the paper's findings:\n");
  bool ok = recv_ratio > 0.98 && recv_ratio < 1.02;
  fail |= !ok;
  std::printf("  receive:      OSKit/FreeBSD = %.3f  (paper ~1.0 — zero-copy "
              "skbuff->mbuf mapping; glue rx copies = 0)  %s\n",
              recv_ratio, ok ? "PASS" : "FAIL");
  ok = flatten_send_ratio < 0.95;
  fail |= !ok;
  std::printf("  send/flatten: OSKit/FreeBSD = %.3f  (paper < 1 — the glue "
              "really copied %llu of %.0f MB through mbuf->skbuff)  %s\n",
              flatten_send_ratio,
              static_cast<unsigned long long>(flatten.glue_copied_bytes),
              blocks * kBlockSize / 1048576.0, ok ? "PASS" : "FAIL");
  // The scatter-gather path must copy strictly less per byte than the
  // flatten path — this is the tentpole claim, counter-verified.
  ok = sg.CopiedPerByte() < flatten.CopiedPerByte() &&
       sg.glue_copied_bytes == 0 && sg.sg_frames > 0;
  fail |= !ok;
  std::printf("  send/sg:      copied-per-byte %.3f -> %.3f, %llu gather "
              "frames (%llu segments) — the send copy is gone  %s\n",
              flatten.CopiedPerByte(), sg.CopiedPerByte(),
              static_cast<unsigned long long>(sg.sg_frames),
              static_cast<unsigned long long>(sg.sg_segments),
              ok ? "PASS" : "FAIL");
  ok = sg_send_ratio > flatten_send_ratio && sg_send_ratio > 0.98;
  fail |= !ok;
  std::printf("  send/model:   OSKit-sg/FreeBSD = %.3f  (> flatten's %.3f and "
              "~1.0: scatter-gather restores parity)  %s\n",
              sg_send_ratio, flatten_send_ratio, ok ? "PASS" : "FAIL");
  std::printf("  natives:      FreeBSD and Linux pay no conversion copy (glue "
              "bytes: %llu / %llu)\n",
              static_cast<unsigned long long>(cells[0].glue_copied_bytes),
              static_cast<unsigned long long>(cells[1].glue_copied_bytes));
  std::printf("  wire:         every configuration saturates the simulated 100 "
              "Mbps wire: %.1f / %.1f / %.1f / %.1f / %.1f Mbit/s\n",
              cells[0].sim_mbps, cells[1].sim_mbps, cells[2].sim_mbps,
              cells[3].sim_mbps, cells[4].sim_mbps);
  // Interrupt mitigation must not cost bandwidth: the coalesced+polled row
  // has to saturate the wire like its per-frame twin (bench/napi_rx holds
  // the IRQ-reduction claim itself).
  const Cell& napi = cells[4];
  ok = napi.sim_mbps > 0.95 * sg.sim_mbps;
  fail |= !ok;
  std::printf("  napi:         coalesced+polled wire rate %.1f vs per-frame "
              "%.1f Mbit/s (mitigation must not cost bandwidth)  %s\n",
              napi.sim_mbps, sg.sim_mbps, ok ? "PASS" : "FAIL");

  // Sender-side counter snapshots from each configuration's trace registry
  // (the same numbers kmon's `counters` command shows on that machine).
  std::printf("\nSender counter snapshots (trace registry, software-path run):\n");
  for (int i = 0; i < kNumRows; ++i) {
    std::printf("  %s\n", kRows[i].name);
    for (const auto& [name, value] : cells[i].sender_counters) {
      if (value != 0 &&
          (name.rfind("glue.send.", 0) == 0 || name == "net.tcp.out" ||
           name == "linux.tcp.out" || name == "machine.irq.dispatched")) {
        std::printf("    %-32s %12llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      }
    }
  }

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"table1_bandwidth_sg\",\n");
    std::fprintf(f, "  \"blocks\": %zu,\n  \"block_size\": %zu,\n", blocks,
                 kBlockSize);
    std::fprintf(f, "  \"rows\": [\n");
    for (int i = 0; i < kNumRows; ++i) {
      const Cell& c = cells[i];
      std::fprintf(
          f,
          "    {\"config\": \"%s\", \"bytes_sent\": %llu, "
          "\"glue_copied_bytes\": %llu, \"copied_per_byte_sent\": %.6f, "
          "\"sg_frames\": %llu, \"sg_segments\": %llu, "
          "\"model_send_mbps\": %.1f, \"model_recv_mbps\": %.1f, "
          "\"sim_mbps\": %.1f}%s\n",
          kRows[i].json_key, static_cast<unsigned long long>(c.bytes_sent),
          static_cast<unsigned long long>(c.glue_copied_bytes),
          c.CopiedPerByte(), static_cast<unsigned long long>(c.sg_frames),
          static_cast<unsigned long long>(c.sg_segments), c.model_send_mbps,
          c.model_recv_mbps, c.sim_mbps, i < kNumRows - 1 ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"checks\": {\"recv_ratio\": %.4f, "
                 "\"flatten_send_ratio\": %.4f, \"sg_send_ratio\": %.4f, "
                 "\"sg_copied_per_byte\": %.6f, "
                 "\"flatten_copied_per_byte\": %.6f}\n",
                 recv_ratio, flatten_send_ratio, sg_send_ratio,
                 sg.CopiedPerByte(), flatten.CopiedPerByte());
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);
  }

  return fail ? 1 : 0;
}
