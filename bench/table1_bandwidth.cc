// Table 1 reproduction: ttcp TCP bandwidth for the three configurations.
//
// Paper setup: two Pentium Pro 200 MHz PCs on 100 Mbps Ethernet, ttcp
// sending 131072 x 4096-byte blocks; rows Linux 2.0.29, FreeBSD 2.1.5, and
// the OSKit (FreeBSD stack + Linux drivers).  Findings: the OSKit receives
// about as fast as FreeBSD (the received skbuff maps into an mbuf cluster
// without copying) but sends slower (discontiguous mbuf chains must be
// copied into contiguous skbuffs).
//
// Both machines of a pair run the same configuration, as in the paper.
// Three views of each transfer:
//
//   wire-limited (sim)  : simulated time against the 100 Mbps wire model —
//                         every configuration saturates the wire, as the
//                         paper's systems nearly did;
//   software path (wall): host CPU time of the whole two-machine software
//                         stack with an infinite wire.  On a modern CPU the
//                         extra 1.4 KB copy per segment is ~1% — real but
//                         below run-to-run noise, so this column shows the
//                         overall cost, not the asymmetry;
//   P6-scaled model     : bandwidth computed from the transfer's REAL,
//                         deterministic work counters (segments actually
//                         sent, bytes actually checksummed, bytes actually
//                         copied by the glue — all from executed code) and
//                         1997-hardware constants (documented below).  The
//                         paper's asymmetry lives here, because in 1997 the
//                         per-byte costs dominated.
//
// Model constants (order-of-magnitude P6/200): memcpy 70 MB/s, IP/TCP
// checksum 50 MB/s, 100 us fixed protocol+driver+interrupt cost per segment
// per side — chosen so a native endpoint lands near the paper's 1997
// throughput regime (CPU-bound just below the 100 Mbps wire).

#include <cstdio>
#include <cstdlib>

#include "src/testbed/ttcp.h"
#include "src/trace/trace.h"

using namespace oskit;
using namespace oskit::testbed;

namespace {

constexpr double kMemcpyBw = 70e6;    // bytes/s
constexpr double kChecksumBw = 50e6;  // bytes/s
constexpr double kFixedPerSegment = 100e-6;  // s, per side
constexpr double kWireBps = 100e6;
constexpr double kMss = 1448;

struct Cell {
  double wall_mbps;
  double sim_mbps;
  double model_send_mbps;   // bottlenecked by the sending machine
  double model_recv_mbps;   // bottlenecked by the receiving machine
  uint64_t glue_copied_bytes;
  trace::CounterSnapshot sender_counters;  // sender registry after the run
};

Cell RunConfig(NetConfig config, size_t blocks, size_t block_size) {
  Cell cell{};
  // Wire-limited run (smaller: it is wire-paced anyway).
  {
    EthernetWire::Config wire;
    wire.bits_per_second = static_cast<uint64_t>(kWireBps);
    wire.propagation_ns = 5 * kNsPerUs;
    World world(wire);
    world.AddHost("rx", config);
    world.AddHost("tx", config);
    TtcpResult r = RunTtcp(world, block_size, blocks / 4);
    cell.sim_mbps = r.MbitPerSecSim();
  }
  // Software-path run.
  TtcpResult sw;
  {
    World world;
    world.AddHost("rx", config);
    world.AddHost("tx", config);
    sw = RunTtcp(world, block_size, blocks);
    cell.wall_mbps = sw.MbitPerSecWall();
    cell.sender_counters = world.host(1).trace.registry.Snapshot();
  }
  // Registry-sourced (TtcpResult fills this from the sender host's trace
  // counter registry, "glue.send.copied_bytes").
  cell.glue_copied_bytes = sw.sender_glue_copied_bytes;

  // ---- The P6-scaled model, fed by the transfer's real counters ----
  double bytes = static_cast<double>(sw.bytes_transferred);
  double segments = bytes / kMss;

  // Sender-side seconds: fixed per segment, the socket-layer user->buffer
  // copy, the checksum over every byte, plus whatever the glue REALLY
  // copied (zero for both native configurations, ~all bytes for OSKit).
  double sender_s = segments * kFixedPerSegment + bytes / kMemcpyBw +
                    bytes / kChecksumBw +
                    static_cast<double>(cell.glue_copied_bytes) / kMemcpyBw;
  // Receiver-side seconds: fixed per segment, checksum, buffer->user copy.
  // The OSKit receive path mapped every packet (glue rx copies = 0), so it
  // models identically to native FreeBSD — exactly the paper's point.
  double receiver_s = segments * kFixedPerSegment + bytes / kChecksumBw +
                      bytes / kMemcpyBw;
  double wire_s = bytes * 8 / kWireBps;

  auto mbps = [&](double side_s) {
    double t = side_s > wire_s ? side_s : wire_s;
    return bytes * 8 / t / 1e6;
  };
  cell.model_send_mbps = mbps(sender_s);
  cell.model_recv_mbps = mbps(receiver_s);
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  // Paper: 131072 blocks (512 MB).  Default 8192 blocks (32 MB) per cell so
  // the table runs in seconds; pass a block count to scale.
  size_t blocks = argc > 1 ? std::strtoul(argv[1], nullptr, 0) : 8192;
  const size_t kBlockSize = 4096;

  const struct {
    const char* name;
    NetConfig config;
  } kConfigs[] = {
      {"Linux 2.0.29 (native skbuff stack)", NetConfig::kNativeLinux},
      {"FreeBSD 2.1.5 (native mbuf stack)", NetConfig::kNativeBsd},
      {"OSKit (FreeBSD stack + Linux driver)", NetConfig::kOskit},
  };

  std::printf("Table 1: TCP bandwidth measured with ttcp "
              "(%zu blocks x %zu bytes = %.0f MB per cell)\n",
              blocks, kBlockSize, blocks * kBlockSize / 1048576.0);
  std::printf("(both machines of each pair run the configuration, as in the "
              "paper)\n\n");

  Cell cells[3];
  for (int i = 0; i < 3; ++i) {
    cells[i] = RunConfig(kConfigs[i].config, blocks, kBlockSize);
  }

  std::printf("%-38s | %11s | %11s | %12s | %12s | %12s\n", "configuration",
              "wire (sim)", "sw (wall)", "model send", "model recv",
              "glue copies");
  std::printf("%-38s | %11s | %11s | %12s | %12s | %12s\n", "", "Mbit/s",
              "Mbit/s", "Mbit/s", "Mbit/s", "bytes");
  std::printf("---------------------------------------+-------------+------------"
              "-+--------------+--------------+--------------\n");
  for (int i = 0; i < 3; ++i) {
    std::printf("%-38s | %11.1f | %11.0f | %12.1f | %12.1f | %12llu\n",
                kConfigs[i].name, cells[i].sim_mbps, cells[i].wall_mbps,
                cells[i].model_send_mbps, cells[i].model_recv_mbps,
                static_cast<unsigned long long>(cells[i].glue_copied_bytes));
  }

  const Cell& bsd = cells[1];
  const Cell& oskit = cells[2];
  double send_ratio = oskit.model_send_mbps / bsd.model_send_mbps;
  double recv_ratio = oskit.model_recv_mbps / bsd.model_recv_mbps;
  std::printf("\nShape checks against the paper's findings:\n");
  std::printf("  receive: OSKit/FreeBSD = %.3f  (paper ~1.0 — zero-copy "
              "skbuff->mbuf mapping; glue rx copies = 0)  %s\n",
              recv_ratio, recv_ratio > 0.98 && recv_ratio < 1.02 ? "PASS" : "FAIL");
  std::printf("  send:    OSKit/FreeBSD = %.3f  (paper < 1 — the glue really "
              "copied %llu of %.0f MB through mbuf->skbuff)  %s\n",
              send_ratio,
              static_cast<unsigned long long>(oskit.glue_copied_bytes),
              blocks * kBlockSize / 1048576.0, send_ratio < 0.95 ? "PASS" : "FAIL");
  std::printf("  natives: FreeBSD and Linux pay no conversion copy (glue "
              "bytes: %llu / %llu)\n",
              static_cast<unsigned long long>(cells[0].glue_copied_bytes),
              static_cast<unsigned long long>(cells[1].glue_copied_bytes));
  std::printf("  wire:    every configuration saturates the simulated 100 "
              "Mbps wire: %.1f / %.1f / %.1f Mbit/s\n",
              cells[0].sim_mbps, cells[1].sim_mbps, cells[2].sim_mbps);

  // Sender-side counter snapshots from each configuration's trace registry
  // (the same numbers kmon's `counters` command shows on that machine).
  std::printf("\nSender counter snapshots (trace registry, software-path run):\n");
  for (int i = 0; i < 3; ++i) {
    std::printf("  %s\n", kConfigs[i].name);
    for (const auto& [name, value] : cells[i].sender_counters) {
      if (value != 0 &&
          (name.rfind("glue.send.", 0) == 0 || name == "net.tcp.out" ||
           name == "linux.tcp.out" || name == "machine.irq.dispatched")) {
        std::printf("    %-32s %12llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      }
    }
  }
  return 0;
}
