// Table 2 reproduction: rtcp TCP 1-byte round-trip latency for the paper's
// three configurations, plus the coalesced+polled-RX OSKit as an honest
// ablation (mitigation's holdoff dominates ping-pong RTT — see the note the
// harness prints).
//
// Paper finding: "the FreeBSD versus OSKit results indicate that the OSKit
// imposes significant overhead ... largely attributable to the additional
// glue code within the OSKit components: the price we pay for modularity
// and separability" (the paper declines to interpret the Linux number).
//
// Here both endpoints run the measured configuration, the wire is
// infinitely fast, and the host-CPU time per round trip isolates exactly
// that software overhead.  A wire-limited column shows the simulated RTT
// with a 100 Mbps / 5 us wire for scale.

#include <cstdio>
#include <cstdlib>

#include "src/testbed/ttcp.h"
#include "src/trace/trace.h"

using namespace oskit;
using namespace oskit::testbed;

namespace {

RtcpResult RunOne(NetConfig config, bool wire_limited, uint64_t round_trips,
                  trace::CounterSnapshot* out_client_counters = nullptr) {
  EthernetWire::Config wire;
  if (wire_limited) {
    wire.bits_per_second = 100 * 1000 * 1000;
    wire.propagation_ns = 5 * kNsPerUs;
  }
  World world(wire);
  world.AddHost("server", config);
  world.AddHost("client", config);
  RtcpResult result = RunRtcp(world, round_trips);
  if (out_client_counters != nullptr) {
    *out_client_counters = world.host(1).trace.registry.Snapshot();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t round_trips = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 20000;

  const struct {
    const char* name;
    NetConfig config;
  } kConfigs[] = {
      {"Linux 2.0.29 (native skbuff stack)", NetConfig::kNativeLinux},
      {"FreeBSD 2.1.5 (native mbuf stack)", NetConfig::kNativeBsd},
      {"OSKit (FreeBSD stack + Linux driver)", NetConfig::kOskit},
      {"OSKit, coalesced+polled RX", NetConfig::kOskitNapi},
  };
  constexpr int kNumConfigs = 4;

  std::printf("Table 2: TCP one-byte round-trip time measured with rtcp "
              "(%llu round trips per cell)\n\n",
              static_cast<unsigned long long>(round_trips));
  std::printf("%-38s | %18s | %18s\n", "configuration", "sw-path us/rt (wall)",
              "wire-model us/rt (sim)");
  std::printf("---------------------------------------+--------------------+------"
              "--------------\n");

  double us[kNumConfigs];
  trace::CounterSnapshot client_counters[kNumConfigs];
  for (int i = 0; i < kNumConfigs; ++i) {
    RtcpResult sw = RunOne(kConfigs[i].config, /*wire_limited=*/false, round_trips,
                           &client_counters[i]);
    RtcpResult wire = RunOne(kConfigs[i].config, /*wire_limited=*/true,
                             round_trips / 10);
    us[i] = sw.UsecPerRoundTripWall();
    std::printf("%-38s | %18.2f | %18.1f\n", kConfigs[i].name, us[i],
                wire.UsecPerRoundTripSim());
  }

  double overhead = us[2] / us[1];
  std::printf("\nShape check: rtt(OSKit)/rtt(FreeBSD) = %.2f  (paper: > 1 — "
              "'the OSKit imposes significant overhead' from glue code)  %s\n",
              overhead, overhead > 1.02 ? "PASS" : "FAIL");
  std::printf("The delta is the COM boundary crossings, bufio conversions and "
              "emulated-process glue per packet (see bench/ablation_glue).\n");
  std::printf("Note: the coalesced+polled row pays the 1 ms holdoff per "
              "1-byte exchange (%.1fx the per-frame OSKit RTT) — interrupt "
              "mitigation trades ping-pong latency for throughput-side IRQ "
              "load; no shape check, the cost is the point.\n",
              us[3] / us[2]);

  // Client-side counter snapshots from each configuration's trace registry:
  // the per-packet mechanism behind the latency rows.
  std::printf("\nClient counter snapshots (trace registry, software-path run):\n");
  for (int i = 0; i < kNumConfigs; ++i) {
    std::printf("  %s\n", kConfigs[i].name);
    for (const auto& [name, value] : client_counters[i]) {
      if (value != 0 &&
          (name.rfind("glue.send.", 0) == 0 || name == "net.tcp.out" ||
           name == "linux.tcp.out" || name == "net.sleep.sleeps" ||
           name == "machine.irq.dispatched")) {
        std::printf("    %-32s %12llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      }
    }
  }
  return 0;
}
