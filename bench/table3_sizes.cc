// Table 3 + Figure 1 reproduction: source-size breakdown of the OSKit
// components and the structure diagram.
//
// The paper counts "filtered" source lines — comments, blank lines,
// preprocessor directives, and punctuation-only lines removed — split into
// interface (headers) vs implementation, and native vs encapsulated code.
// We apply the same filter to this repository's own tree.  Our
// "encapsulated" column counts the code deliberately written in a donor
// kernel's idiom (the Linux-style drivers/stack and the FreeBSD/BSD-idiom
// drivers) — the reproduction's analogue of imported code, since no GPL
// source is vendored.

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#ifndef OSKIT_SOURCE_DIR
#define OSKIT_SOURCE_DIR "."
#endif

namespace {

namespace fsys = std::filesystem;

struct Counts {
  long interface_lines = 0;
  long native_impl = 0;
  long encapsulated_impl = 0;
};

// The paper's filter: drop comments, blanks, preprocessor lines, and
// punctuation-only lines ("a line containing just a brace").
long FilteredLineCount(const fsys::path& file) {
  std::ifstream in(file);
  if (!in) {
    return 0;
  }
  long count = 0;
  bool in_block_comment = false;
  std::string line;
  while (std::getline(in, line)) {
    std::string meaningful;
    for (size_t i = 0; i < line.size(); ++i) {
      if (in_block_comment) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block_comment = false;
          ++i;
        }
        continue;
      }
      if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '/') {
        break;  // line comment
      }
      if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        ++i;
        continue;
      }
      meaningful.push_back(line[i]);
    }
    // Trim.
    size_t start = meaningful.find_first_not_of(" \t");
    if (start == std::string::npos) {
      continue;  // blank / comment-only
    }
    if (meaningful[start] == '#') {
      continue;  // preprocessor
    }
    bool punctuation_only = true;
    for (char c : meaningful) {
      if (std::isalnum(static_cast<unsigned char>(c))) {
        punctuation_only = false;
        break;
      }
    }
    if (punctuation_only) {
      continue;
    }
    ++count;
  }
  return count;
}

Counts CountDir(const fsys::path& dir, bool encapsulated_idiom) {
  Counts counts;
  if (!fsys::exists(dir)) {
    return counts;
  }
  for (const auto& entry : fsys::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    std::string ext = entry.path().extension().string();
    long lines = 0;
    if (ext == ".h" || ext == ".cc" || ext == ".cpp") {
      lines = FilteredLineCount(entry.path());
    } else {
      continue;
    }
    if (ext == ".h") {
      counts.interface_lines += lines;
    } else if (encapsulated_idiom) {
      counts.encapsulated_impl += lines;
    } else {
      counts.native_impl += lines;
    }
  }
  return counts;
}

struct Component {
  const char* path;
  const char* description;
  bool encapsulated;
};

}  // namespace

int main() {
  const fsys::path root = OSKIT_SOURCE_DIR;

  const Component kComponents[] = {
      {"src/boot", "Bootstrap support (MultiBoot, bmodfs)", false},
      {"src/kern", "Kernel support (+GDB stub)", false},
      {"src/machine", "Simulated PC platform (substrate)", false},
      {"src/lmm", "List Memory Manager", false},
      {"src/amm", "Address Map Manager", false},
      {"src/libc", "Minimal C library + POSIX layer", false},
      {"src/memdebug", "Malloc debugging", false},
      {"src/diskpart", "Disk partitioning", false},
      {"src/fsread", "File system reading (boot)", false},
      {"src/exec", "Program loading (SXF)", false},
      {"src/com", "COM interfaces & support", false},
      {"src/sleep", "Sleep records", false},
      {"src/dev/fdev", "Device driver framework", false},
      {"src/dev/linux", "Linux-idiom drivers & glue", true},
      {"src/dev/freebsd", "FreeBSD-idiom drivers & glue", true},
      {"src/net", "FreeBSD-idiom network stack", true},
      {"src/fs", "FFS-style file system", true},
      {"src/vm", "KVM bytecode machine (Kaffe stand-in)", false},
      {"src/testbed", "Example/benchmark world builder", false},
  };

  std::printf("Table 3: filtered source line counts of the reproduction's "
              "components\n");
  std::printf("(the paper's filter: comments, blanks, preprocessor and "
              "punctuation-only lines removed)\n\n");
  std::printf("%-16s %-42s %10s %10s %12s\n", "library", "description",
              "interface", "native", "donor-idiom");
  std::printf("-----------------------------------------------------------------"
              "--------------------------\n");

  Counts total;
  for (const Component& component : kComponents) {
    Counts counts = CountDir(root / component.path, component.encapsulated);
    const char* name = component.path + 4;  // strip "src/"
    std::printf("%-16s %-42s %10ld %10ld %12ld\n", name, component.description,
                counts.interface_lines, counts.native_impl,
                counts.encapsulated_impl);
    total.interface_lines += counts.interface_lines;
    total.native_impl += counts.native_impl;
    total.encapsulated_impl += counts.encapsulated_impl;
  }
  std::printf("-----------------------------------------------------------------"
              "--------------------------\n");
  std::printf("%-16s %-42s %10ld %10ld %12ld\n", "Total", "", total.interface_lines,
              total.native_impl, total.encapsulated_impl);
  long grand = total.interface_lines + total.native_impl + total.encapsulated_impl;
  std::printf("\nGrand total: %ld filtered lines "
              "(paper: ~260,000 incl. ~230,000 imported verbatim;\n"
              " this reproduction re-implements everything, so its donor-idiom "
              "code is %ld lines = %.0f%%)\n",
              grand, total.encapsulated_impl,
              100.0 * total.encapsulated_impl / grand);

  // Tests and benches (not part of the paper's table, shown for scale).
  Counts tests = CountDir(root / "tests", false);
  Counts bench = CountDir(root / "bench", false);
  Counts examples = CountDir(root / "examples", false);
  std::printf("\nOutside the kit: tests %ld, benches %ld, examples %ld filtered "
              "lines\n",
              tests.native_impl + tests.interface_lines,
              bench.native_impl + bench.interface_lines,
              examples.native_impl + examples.interface_lines);

  // Figure 1: the structure diagram, from the real dependency structure.
  std::printf("\nFigure 1: the structure of the OSKit reproduction\n");
  std::printf(
      "  +--------------------------------------------------------------+\n"
      "  |        Client Operating System or Language Run-Time          |\n"
      "  |   (examples: quickstart, ttcp/rtcp, netcomputer, fileserver) |\n"
      "  +--------------------------------------------------------------+\n"
      "  |  minimal C library (printf/malloc/POSIX fd layer)            |\n"
      "  +------------------+---------------------+---------------------+\n"
      "  |  [FreeBSD] net   |  [NetBSD-style] fs  |  bmodfs  | memdebug |\n"
      "  |  stack (mbufs)   |  offs on blkio      |          |          |\n"
      "  +------------------+---------------------+----------+----------+\n"
      "  |        COM interfaces: blkio bufio netio socket fs ...       |\n"
      "  +------------------+--------------------+----------------------+\n"
      "  |  [Linux] ether   |  [Linux] IDE disk  |  [FreeBSD] char tty  |\n"
      "  |  driver (skbuff) |  driver            |  drivers (clists)    |\n"
      "  +------------------+--------------------+----------------------+\n"
      "  |  fdev framework  |  LMM  |  AMM  | sleep records | exec/boot |\n"
      "  +--------------------------------------------------------------+\n"
      "  |  kernel support library (traps, IRQs, console, GDB stub)     |\n"
      "  +--------------------------------------------------------------+\n"
      "  |  simulated PC: CPU/PIC/PIT/UART/NIC/IDE on a shared wire     |\n"
      "  +--------------------------------------------------------------+\n"
      "  [bracketed] components are written in the donor kernel's idiom and\n"
      "  wrapped in glue, standing in for the paper's encapsulated imports.\n");
  return 0;
}
