// Tenant campaign: hostile tenants vs per-principal quotas, end to end.
//
// Topology (VirtualSwitch, one port per host):
//
//   host "tenants" — every tenant lives here and shares one NetStack, one
//     FFS volume (journaled, on MemBlkIo) and one trace registry:
//       * kVictims well-behaved tenants, each doing connect-echo round
//         trips to the target host plus a small create/write/unlink FS leg
//         per round, behind secure wrappers with open budgets;
//       * five seeded hostile tenants — socket spammer, ephemeral-port
//         exhauster, RX mbuf hog, disk filler, selector churner.
//   host "target" — a selector-driven TCP echo service plus a UDP blaster
//     aimed at the mbuf hog's port.
//
// Three runs per seed:
//
//   baseline  victims only; measures the no-attacker connect-to-echo p99.
//   guarded   attackers behind secure wrappers with tight budgets.  The
//             victims' p99 must stay within 3x baseline, every hostile op
//             must come back kQuotaExceeded (never a hang, never a panic:
//             the simulation completing IS the no-hang proof), the hog's
//             overage is shed and counted, and after teardown every
//             principal's sec.quota.charged.* gauge drains to zero.
//   ablation  the same attackers unwrapped.  The port exhauster binds the
//             whole ephemeral range and the disk filler eats the volume, so
//             victims MUST starve (asserted, like the journal-free crash
//             ablation): outbound connects die with kAddrNotAvail and FS
//             writes die with no space — the quota layer is what stood
//             between them.
//
// Emits BENCH_tenant.json with per-seed p99s, denial counts and the
// aggregate verdict.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/random.h"
#include "src/com/memblkio.h"
#include "src/fs/ffs.h"
#include "src/secure/wrap.h"
#include "src/testbed/testbed.h"

using namespace oskit;
using namespace oskit::testbed;
using secure::Acl;
using secure::Budget;
using secure::NetGuard;
using secure::Principal;
using secure::PrincipalRegistry;
using secure::Resource;

namespace {

constexpr uint16_t kEchoPort = 7777;
constexpr uint16_t kHogPort = 7200;
constexpr size_t kMsgBytes = 16;
constexpr int kVictims = 3;

enum class Mode { kBaseline, kGuarded, kAblation };

struct Options {
  int seeds = 5;
  uint64_t seed_base = 1;
  int rounds = 20;
  const char* json_path = nullptr;
};

struct RunResult {
  std::vector<double> lat_us;   // victim connect-to-echo latencies
  int echoes = 0;               // completed round trips
  int starved_net = 0;          // victim connects/echoes that failed
  int starved_fs = 0;           // victim FS legs that failed
  uint64_t quota_denials = 0;   // kQuotaExceeded returns seen by attackers
  uint64_t spam_denied = 0;     // ... per hostile tenant
  uint64_t port_denied = 0;
  uint64_t fill_denied = 0;
  uint64_t churn_denied = 0;
  uint64_t rx_shed = 0;         // hog overage shed by the stack (counted)
  uint64_t leaked = 0;          // sum of post-teardown charged gauges
  bool completed = false;       // the simulation drained (nobody hung)
};

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) {
    return 0;
  }
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * (v.size() - 1));
  return v[idx];
}

// One full campaign world.  Builds everything, runs to completion, fills
// `out`.  Every blocking operation lives inside a fiber; sends are paced;
// PollWaits use a millisecond quantum so multi-second waits stay cheap.
void RunCampaign(Mode mode, uint64_t seed, const Options& opt,
                 RunResult* out) {
  VirtualSwitch::Config sw;
  sw.port.bits_per_second = 1000ull * 1000 * 1000;
  sw.port.propagation_ns = 5 * kNsPerUs;
  World world(sw);
  Host& a = world.AddHost("tenants", NetConfig::kNativeBsd);
  Host& b = world.AddHost("target", NetConfig::kNativeBsd);

  const bool attack = mode != Mode::kBaseline;
  const bool guarded = mode == Mode::kGuarded;

  // ---- the shared protection domain on the tenants host ----
  PrincipalRegistry principals(&a.trace);
  NetGuard guard(&principals);
  a.stack->SetAccounting(&guard);

  // Victims: wrapped, open budgets — the wrappers are always on the
  // victims' path so baseline and guarded runs pay identical overhead.
  Principal* victims[kVictims];
  ComPtr<SocketFactory> victim_net[kVictims];
  for (int v = 0; v < kVictims; ++v) {
    victims[v] = principals.Create("victim" + std::to_string(v));
    victim_net[v] = secure::MakeSecureSocketFactory(
        a.stack->CreateSocketFactory(), victims[v], &guard);
  }

  // One journaled FFS volume shared by every tenant on the host.
  ComPtr<MemBlkIo> disk = MemBlkIo::Create(2 * 1024 * 1024, 512);
  if (!Ok(fs::Mkfs(disk.get()))) {
    std::fprintf(stderr, "mkfs failed\n");
    std::abort();
  }
  ComPtr<FileSystem> raw_fs;
  if (!Ok(fs::Offs::Mount(disk.get(), raw_fs.Receive()))) {
    std::fprintf(stderr, "mount failed\n");
    std::abort();
  }
  secure::InstallJournalAdmission(static_cast<fs::Offs*>(raw_fs.get()),
                                  &principals);
  ComPtr<FileSystem> victim_fs[kVictims];
  for (int v = 0; v < kVictims; ++v) {
    victim_fs[v] = secure::MakeSecureFs(raw_fs, victims[v], &principals);
  }

  // ---- coordination flags ----
  bool listening = false;
  bool attackers_ready = false;  // victims start once saturation is real
  int victims_done = 0;
  int attackers_done = 0;
  const int n_attackers = attack ? 5 : 0;
  bool stop = false;  // echo server + blaster run until this flips

  // ---- target host: selector-driven echo service ----
  world.sim().Spawn("echo-server", [&] {
    ComPtr<Socket> listener = b.MakeSocket(SockType::kStream);
    if (!Ok(listener->Bind(SockAddr{kInetAny, kEchoPort})) ||
        !Ok(listener->Listen(64))) {
      std::fprintf(stderr, "echo server: bind/listen failed\n");
      std::abort();
    }
    ComPtr<NetSelector> sel = b.stack->CreateSelector();
    sel->Add(listener.get(), kNetReadable, /*edge=*/false, nullptr);
    listening = true;
    std::vector<Socket*> conns;
    NetReadyEvent events[32];
    while (!stop) {
      size_t n = 0;
      sel->Wait(events, 32, /*block=*/false, &n);
      if (n == 0) {
        world.sim().SleepFor(kNsPerMs);
        continue;
      }
      for (size_t i = 0; i < n; ++i) {
        if (events[i].socket == listener.get()) {
          for (;;) {
            SockAddr peer;
            ComPtr<Socket> child;
            SocketExt* lext = nullptr;
            if (!Ok(QueryFor(listener.get(), &lext))) {
              break;
            }
            lext->SetNonBlocking(true);
            Error aerr = listener->Accept(&peer, child.Receive());
            lext->SetNonBlocking(false);
            lext->Release();
            if (!Ok(aerr)) {
              break;
            }
            SocketExt* ext = nullptr;
            if (Ok(QueryFor(child.get(), &ext))) {
              ext->SetNonBlocking(true);
              ext->Release();
            }
            Socket* raw = child.get();
            raw->AddRef();
            conns.push_back(raw);
            sel->Add(raw, kNetReadable, /*edge=*/false, raw);
          }
          continue;
        }
        Socket* conn = events[i].socket;
        char buf[256];
        for (;;) {
          size_t got = 0;
          Error err = conn->Recv(buf, sizeof(buf), &got);
          if (err == Error::kWouldBlock) {
            break;
          }
          if (!Ok(err) || got == 0) {
            sel->Remove(conn);
            conns.erase(std::find(conns.begin(), conns.end(), conn));
            conn->Release();
            break;
          }
          size_t sent = 0;
          conn->Send(buf, got, &sent);
        }
      }
    }
    for (Socket* conn : conns) {
      sel->Remove(conn);
      conn->Release();
    }
    sel->Remove(listener.get());
  });

  // ---- target host: UDP blaster at the mbuf hog ----
  if (attack) {
    world.sim().Spawn("blaster", [&] {
      ComPtr<Socket> tx = b.MakeSocket(SockType::kDgram);
      char dgram[256] = {};
      while (!stop) {
        size_t sent = 0;
        tx->SendTo(dgram, sizeof(dgram), SockAddr{a.addr, kHogPort}, &sent);
        world.sim().SleepFor(2 * kNsPerMs);  // paced: same-instant bursts
      }                                      // never reach the peer NIC
    });
  }

  // ---- victims ----
  for (int v = 0; v < kVictims; ++v) {
    world.sim().Spawn("victim", [&, v] {
      Rng rng(seed * 6700417 + static_cast<uint64_t>(v) * 131);
      world.sim().PollWait([&] { return listening && attackers_ready; },
                           kNsPerMs);
      ComPtr<Dir> root;
      if (!Ok(victim_fs[v]->GetRoot(root.Receive()))) {
        std::abort();
      }
      for (int r = 0; r < opt.rounds; ++r) {
        // Echo leg: connect-to-echo latency, the victim-visible metric.
        SimTime t0 = world.sim().clock().Now();
        ComPtr<Socket> conn;
        bool ok = Ok(victim_net[v]->Create(SockDomain::kInet,
                                           SockType::kStream,
                                           conn.Receive())) &&
                  Ok(conn->Connect(SockAddr{b.addr, kEchoPort}));
        if (ok) {
          char msg[kMsgBytes];
          std::memset(msg, 'a' + v, sizeof(msg));
          size_t sent = 0;
          ok = Ok(conn->Send(msg, sizeof(msg), &sent)) &&
               sent == sizeof(msg);
          size_t total = 0;
          while (ok && total < kMsgBytes) {
            char buf[64];
            size_t got = 0;
            ok = Ok(conn->Recv(buf, sizeof(buf), &got)) && got > 0;
            total += got;
          }
        }
        conn.Reset();
        if (ok) {
          ++out->echoes;
          out->lat_us.push_back(
              static_cast<double>(world.sim().clock().Now() - t0) /
              kNsPerUs);
        } else {
          ++out->starved_net;
        }

        // FS leg: a small create/write/unlink, sharing the volume with the
        // disk filler.
        std::string name = "v" + std::to_string(v) + "_" + std::to_string(r);
        ComPtr<File> f;
        char blk[1024];
        std::memset(blk, 'f', sizeof(blk));
        size_t n = 0;
        bool fs_ok =
            Ok(root->Create(name.c_str(), 0644, f.Receive())) &&
            Ok(f->Write(blk, 0, sizeof(blk), &n)) && n == sizeof(blk);
        f.Reset();
        if (fs_ok) {
          root->Unlink(name.c_str());
        } else {
          ++out->starved_fs;
        }
        world.sim().SleepFor((1 + rng.Below(4)) * kNsPerMs);
      }
      root.Reset();
      ++victims_done;
    });
  }

  // ---- hostile tenants ----
  if (attack) {
    // Socket spammer: opens sockets and never closes them.
    Principal* spammer = principals.Create(
        "spammer", Budget{}.Set(Resource::kSockets, 8));
    world.sim().Spawn("spammer", [&, spammer] {
      ComPtr<SocketFactory> net =
          guarded ? secure::MakeSecureSocketFactory(
                        a.stack->CreateSocketFactory(), spammer, &guard)
                  : a.stack->CreateSocketFactory();
      std::vector<ComPtr<Socket>> hoard;
      for (int i = 0; i < 64; ++i) {
        ComPtr<Socket> s;
        Error err = net->Create(SockDomain::kInet, SockType::kStream,
                                s.Receive());
        if (err == Error::kQuotaExceeded) {
          ++out->spam_denied;
        } else if (Ok(err)) {
          hoard.push_back(std::move(s));
        }
      }
      world.sim().PollWait([&] { return victims_done >= kVictims; },
                           kNsPerMs);
      hoard.clear();
      ++attackers_done;
    });

    // Port exhauster: binds the whole ephemeral range (49152..65535) so no
    // outbound connection on the host can allocate a port.
    Principal* exhauster = principals.Create(
        "exhauster", Budget{}.Set(Resource::kPorts, 16));
    world.sim().Spawn("exhauster", [&, exhauster] {
      ComPtr<SocketFactory> net =
          guarded ? secure::MakeSecureSocketFactory(
                        a.stack->CreateSocketFactory(), exhauster, &guard)
                  : a.stack->CreateSocketFactory();
      std::vector<ComPtr<Socket>> hoard;
      int denials = 0;
      for (uint32_t port = 49152; port <= 65535; ++port) {
        ComPtr<Socket> s;
        if (!Ok(net->Create(SockDomain::kInet, SockType::kStream,
                            s.Receive()))) {
          break;
        }
        Error err = s->Bind(SockAddr{kInetAny, static_cast<uint16_t>(port)});
        if (err == Error::kQuotaExceeded) {
          ++out->port_denied;
          // A handful of repeats proves the denial is stable, not a hang.
          if (++denials >= 8) {
            break;
          }
          continue;
        }
        if (Ok(err)) {
          hoard.push_back(std::move(s));
        }
      }
      world.sim().PollWait([&] { return victims_done >= kVictims; },
                           kNsPerMs);
      hoard.clear();
      ++attackers_done;
    });

    // Mbuf hog: binds a UDP port the blaster floods and never reads.  The
    // enforcement is mid-flight — over-budget deliveries are shed by the
    // stack and counted, not billed to anyone else.
    Principal* hog = principals.Create(
        "hog", Budget{}.Set(Resource::kMbufBytes, 2048));
    world.sim().Spawn("hog", [&, hog] {
      ComPtr<SocketFactory> net =
          guarded ? secure::MakeSecureSocketFactory(
                        a.stack->CreateSocketFactory(), hog, &guard)
                  : a.stack->CreateSocketFactory();
      ComPtr<Socket> sink;
      if (Ok(net->Create(SockDomain::kInet, SockType::kDgram,
                         sink.Receive()))) {
        sink->Bind(SockAddr{kInetAny, kHogPort});
      }
      world.sim().PollWait([&] { return victims_done >= kVictims; },
                           kNsPerMs);
      sink.Reset();  // parked bytes credit back here
      ++attackers_done;
    });

    // Disk filler: appends 16 KB chunks until something says no.
    Principal* filler = principals.Create(
        "filler", Budget{}.Set(Resource::kFsBlocks, 128));
    world.sim().Spawn("filler", [&, filler] {
      ComPtr<FileSystem> tfs =
          guarded ? secure::MakeSecureFs(raw_fs, filler, &principals)
                  : raw_fs;
      ComPtr<Dir> root;
      if (!Ok(tfs->GetRoot(root.Receive()))) {
        std::abort();
      }
      ComPtr<File> f;
      Error err = root->Create("junk", 0644, f.Receive());
      if (err == Error::kQuotaExceeded) {
        ++out->fill_denied;
      }
      char chunk[16 * 1024];
      std::memset(chunk, 'x', sizeof(chunk));
      uint64_t off = 0;
      while (Ok(err)) {
        size_t n = 0;
        err = f->Write(chunk, off, sizeof(chunk), &n);
        if (err == Error::kQuotaExceeded) {
          ++out->fill_denied;
        }
        if (!Ok(err) || n == 0) {
          break;
        }
        off += n;
      }
      f.Reset();
      world.sim().PollWait([&] { return victims_done >= kVictims; },
                           kNsPerMs);
      root->Unlink("junk");
      root.Reset();
      tfs->Sync();  // journal-txn charges credit at commit
      ++attackers_done;
    });

    // Selector churner: piles registrations onto one selector.
    Principal* churner = principals.Create(
        "churner", Budget{}.Set(Resource::kSelectorRegs, 4));
    world.sim().Spawn("churner", [&, churner] {
      ComPtr<SocketFactory> net =
          guarded ? secure::MakeSecureSocketFactory(
                        a.stack->CreateSocketFactory(), churner, &guard)
                  : a.stack->CreateSocketFactory();
      ComPtr<NetSelector> sel =
          guarded ? secure::MakeSecureSelector(a.stack->CreateSelector(),
                                               churner)
                  : a.stack->CreateSelector();
      std::vector<ComPtr<Socket>> socks;
      std::vector<Socket*> registered;
      for (int i = 0; i < 16; ++i) {
        ComPtr<Socket> s;
        if (!Ok(net->Create(SockDomain::kInet, SockType::kDgram,
                            s.Receive()))) {
          break;
        }
        s->Bind(SockAddr{kInetAny, static_cast<uint16_t>(7300 + i)});
        Error err = sel->Add(s.get(), kNetReadable, /*edge=*/false, nullptr);
        if (err == Error::kQuotaExceeded) {
          ++out->churn_denied;
        } else if (Ok(err)) {
          registered.push_back(s.get());
        }
        socks.push_back(std::move(s));
      }
      world.sim().PollWait([&] { return victims_done >= kVictims; },
                           kNsPerMs);
      for (Socket* s : registered) {
        sel->Remove(s);
      }
      socks.clear();
      sel.Reset();
      ++attackers_done;
    });

  }

  // Victims start once ARP is warm (the one-deep pending queue would turn
  // the first same-instant SYN burst into a 6 s retransmit and poison the
  // baseline) and, under attack, once the hostile load is in place: the
  // exhauster has taken whatever ports it can and the filler is done
  // eating the disk.
  world.sim().Spawn("starter", [&] {
    world.sim().PollWait([&] { return listening; }, kNsPerMs);
    SimTime rtt = 0;
    a.stack->Ping(b.addr, kNsPerSec, &rtt);
    if (attack) {
      world.sim().SleepFor(10 * kNsPerMs);
    }
    attackers_ready = true;
  });

  // ---- coordinator: tears the world down once everyone is done ----
  world.sim().Spawn("coordinator", [&] {
    world.sim().PollWait(
        [&] {
          return victims_done >= kVictims && attackers_done >= n_attackers;
        },
        kNsPerMs);
    world.sim().SleepFor(50 * kNsPerMs);  // let FINs and retransmits drain
    stop = true;
  });

  world.RunToCompletion();
  out->completed = true;

  out->rx_shed = a.stack->counters().rx_quota_shed.value();
  out->quota_denials = out->spam_denied + out->port_denied +
                       out->fill_denied + out->churn_denied;
  raw_fs->Sync();
  for (size_t i = 0; i < principals.size(); ++i) {
    for (size_t r = 0; r < secure::kResourceCount; ++r) {
      out->leaked +=
          principals.at(i)->charged(static_cast<Resource>(r));
    }
  }
  raw_fs->Unmount();
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg == "--seeds" && i + 1 < argc) {
      opt.seeds = std::atoi(argv[++i]);
    } else if (arg == "--seed-base" && i + 1 < argc) {
      opt.seed_base = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--rounds" && i + 1 < argc) {
      opt.rounds = std::atoi(argv[++i]);
    } else if (arg == "--json" && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: tenant_campaign [--seeds N] [--seed-base S] "
                   "[--rounds R] [--json <path>]\n");
      return 2;
    }
  }

  std::printf("Tenant campaign: %d victims x %d rounds, 5 hostile tenants, "
              "%d seed(s) from %llu\n\n",
              kVictims, opt.rounds, opt.seeds,
              static_cast<unsigned long long>(opt.seed_base));

  struct SeedReport {
    uint64_t seed;
    double base_p99, guard_p99, ratio;
    RunResult guard, ablate;
  };
  std::vector<SeedReport> reports;
  bool fail = false;

  for (int s = 0; s < opt.seeds; ++s) {
    SeedReport rep{};
    rep.seed = opt.seed_base + static_cast<uint64_t>(s);

    RunResult base{};
    RunCampaign(Mode::kBaseline, rep.seed, opt, &base);
    RunCampaign(Mode::kGuarded, rep.seed, opt, &rep.guard);
    RunCampaign(Mode::kAblation, rep.seed, opt, &rep.ablate);

    rep.base_p99 = Percentile(base.lat_us, 0.99);
    rep.guard_p99 = Percentile(rep.guard.lat_us, 0.99);
    rep.ratio = rep.base_p99 > 0 ? rep.guard_p99 / rep.base_p99 : 0;

    std::printf("seed %llu: baseline p99 %.1f us | guarded p99 %.1f us "
                "(%.2fx) denials=%llu shed=%llu leaked=%llu | "
                "ablation starved net=%d fs=%d\n",
                static_cast<unsigned long long>(rep.seed), rep.base_p99,
                rep.guard_p99, rep.ratio,
                static_cast<unsigned long long>(rep.guard.quota_denials),
                static_cast<unsigned long long>(rep.guard.rx_shed),
                static_cast<unsigned long long>(rep.guard.leaked),
                rep.ablate.starved_net, rep.ablate.starved_fs);

    const int expect = kVictims * opt.rounds;
    bool ok = base.echoes == expect && base.starved_net == 0 &&
              base.starved_fs == 0;
    if (!ok) {
      std::printf("  FAIL baseline: %d/%d echoes, %d net / %d fs "
                  "failures\n",
                  base.echoes, expect, base.starved_net, base.starved_fs);
      fail = true;
    }
    // Victims behind quotas never feel the attack.
    ok = rep.guard.echoes == expect && rep.guard.starved_net == 0 &&
         rep.guard.starved_fs == 0;
    if (!ok) {
      std::printf("  FAIL guarded victims: %d/%d echoes, %d net / %d fs "
                  "failures\n",
                  rep.guard.echoes, expect, rep.guard.starved_net,
                  rep.guard.starved_fs);
      fail = true;
    }
    if (rep.base_p99 > 0 && rep.ratio > 3.0) {
      std::printf("  FAIL guarded p99 %.1f us > 3x baseline %.1f us\n",
                  rep.guard_p99, rep.base_p99);
      fail = true;
    }
    // Every attacker was told no, explicitly: kQuotaExceeded, not a hang
    // (completion of the run proves nobody hung) and not a panic.
    if (rep.guard.spam_denied == 0 || rep.guard.port_denied == 0 ||
        rep.guard.fill_denied == 0 || rep.guard.churn_denied == 0) {
      std::printf("  FAIL guarded denials: spam=%llu port=%llu fill=%llu "
                  "churn=%llu (all must be > 0)\n",
                  static_cast<unsigned long long>(rep.guard.spam_denied),
                  static_cast<unsigned long long>(rep.guard.port_denied),
                  static_cast<unsigned long long>(rep.guard.fill_denied),
                  static_cast<unsigned long long>(rep.guard.churn_denied));
      fail = true;
    }
    if (rep.guard.rx_shed == 0) {
      std::printf("  FAIL guarded: the hog's overage was never shed\n");
      fail = true;
    }
    if (rep.guard.leaked != 0) {
      std::printf("  FAIL guarded leak check: %llu units still charged "
                  "after teardown\n",
                  static_cast<unsigned long long>(rep.guard.leaked));
      fail = true;
    }
    // The ablation must hurt: no quotas, starved victims.
    if (rep.ablate.starved_net == 0 || rep.ablate.starved_fs == 0) {
      std::printf("  FAIL ablation did not starve victims (net=%d fs=%d): "
                  "the quota layer is not what isolation rests on\n",
                  rep.ablate.starved_net, rep.ablate.starved_fs);
      fail = true;
    }
    if (rep.ablate.quota_denials != 0) {
      std::printf("  FAIL ablation saw %llu kQuotaExceeded denials with "
                  "wrappers off\n",
                  static_cast<unsigned long long>(rep.ablate.quota_denials));
      fail = true;
    }
    reports.push_back(rep);
  }

  double worst_ratio = 0;
  for (const SeedReport& rep : reports) {
    worst_ratio = std::max(worst_ratio, rep.ratio);
  }
  std::printf("\nShape checks:\n");
  std::printf("  isolation:   worst guarded/baseline p99 ratio %.2fx "
              "(bound 3x)  %s\n",
              worst_ratio, worst_ratio <= 3.0 ? "PASS" : "FAIL");
  std::printf("  overall:     %s\n", fail ? "FAIL" : "PASS");

  if (opt.json_path != nullptr) {
    FILE* jf = std::fopen(opt.json_path, "w");
    if (jf == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", opt.json_path);
      return 2;
    }
    std::fprintf(jf, "{\n  \"bench\": \"tenant_campaign\",\n");
    std::fprintf(jf, "  \"victims\": %d,\n  \"rounds\": %d,\n", kVictims,
                 opt.rounds);
    std::fprintf(jf, "  \"p99_bound_factor\": 3.0,\n");
    std::fprintf(jf, "  \"worst_ratio\": %.3f,\n", worst_ratio);
    std::fprintf(jf, "  \"seeds\": [\n");
    for (size_t i = 0; i < reports.size(); ++i) {
      const SeedReport& rep = reports[i];
      std::fprintf(
          jf,
          "    {\"seed\": %llu, \"baseline_p99_us\": %.1f, "
          "\"guarded_p99_us\": %.1f, \"ratio\": %.3f, "
          "\"quota_denials\": %llu, \"rx_shed\": %llu, \"leaked\": %llu, "
          "\"ablation_starved_net\": %d, \"ablation_starved_fs\": %d}%s\n",
          static_cast<unsigned long long>(rep.seed), rep.base_p99,
          rep.guard_p99, rep.ratio,
          static_cast<unsigned long long>(rep.guard.quota_denials),
          static_cast<unsigned long long>(rep.guard.rx_shed),
          static_cast<unsigned long long>(rep.guard.leaked),
          rep.ablate.starved_net, rep.ablate.starved_fs,
          i + 1 < reports.size() ? "," : "");
    }
    std::fprintf(jf, "  ],\n  \"pass\": %s\n}\n", fail ? "false" : "true");
    std::fclose(jf);
    std::printf("wrote %s\n", opt.json_path);
  }
  return fail ? 1 : 0;
}
