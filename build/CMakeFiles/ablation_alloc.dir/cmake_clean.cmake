file(REMOVE_RECURSE
  "CMakeFiles/ablation_alloc.dir/bench/ablation_alloc.cc.o"
  "CMakeFiles/ablation_alloc.dir/bench/ablation_alloc.cc.o.d"
  "bench/ablation_alloc"
  "bench/ablation_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
