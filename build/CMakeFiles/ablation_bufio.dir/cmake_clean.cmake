file(REMOVE_RECURSE
  "CMakeFiles/ablation_bufio.dir/bench/ablation_bufio.cc.o"
  "CMakeFiles/ablation_bufio.dir/bench/ablation_bufio.cc.o.d"
  "bench/ablation_bufio"
  "bench/ablation_bufio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bufio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
