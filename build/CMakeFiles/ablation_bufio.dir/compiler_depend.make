# Empty compiler generated dependencies file for ablation_bufio.
# This may be replaced when dependencies are built.
