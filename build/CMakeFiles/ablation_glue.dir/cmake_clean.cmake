file(REMOVE_RECURSE
  "CMakeFiles/ablation_glue.dir/bench/ablation_glue.cc.o"
  "CMakeFiles/ablation_glue.dir/bench/ablation_glue.cc.o.d"
  "bench/ablation_glue"
  "bench/ablation_glue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_glue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
