# Empty compiler generated dependencies file for ablation_glue.
# This may be replaced when dependencies are built.
