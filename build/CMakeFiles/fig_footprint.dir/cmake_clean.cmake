file(REMOVE_RECURSE
  "CMakeFiles/fig_footprint.dir/bench/fig_footprint.cc.o"
  "CMakeFiles/fig_footprint.dir/bench/fig_footprint.cc.o.d"
  "bench/fig_footprint"
  "bench/fig_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
