# Empty compiler generated dependencies file for fig_footprint.
# This may be replaced when dependencies are built.
