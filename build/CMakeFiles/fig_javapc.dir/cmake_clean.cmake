file(REMOVE_RECURSE
  "CMakeFiles/fig_javapc.dir/bench/fig_javapc.cc.o"
  "CMakeFiles/fig_javapc.dir/bench/fig_javapc.cc.o.d"
  "bench/fig_javapc"
  "bench/fig_javapc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_javapc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
