# Empty compiler generated dependencies file for fig_javapc.
# This may be replaced when dependencies are built.
