# Empty compiler generated dependencies file for table1_bandwidth.
# This may be replaced when dependencies are built.
