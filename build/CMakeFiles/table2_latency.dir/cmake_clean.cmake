file(REMOVE_RECURSE
  "CMakeFiles/table2_latency.dir/bench/table2_latency.cc.o"
  "CMakeFiles/table2_latency.dir/bench/table2_latency.cc.o.d"
  "bench/table2_latency"
  "bench/table2_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
