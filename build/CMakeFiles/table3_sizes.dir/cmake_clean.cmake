file(REMOVE_RECURSE
  "CMakeFiles/table3_sizes.dir/bench/table3_sizes.cc.o"
  "CMakeFiles/table3_sizes.dir/bench/table3_sizes.cc.o.d"
  "bench/table3_sizes"
  "bench/table3_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
