# Empty compiler generated dependencies file for table3_sizes.
# This may be replaced when dependencies are built.
