# Empty compiler generated dependencies file for fileserver.
# This may be replaced when dependencies are built.
