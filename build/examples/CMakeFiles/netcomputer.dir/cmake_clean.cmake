file(REMOVE_RECURSE
  "CMakeFiles/netcomputer.dir/netcomputer.cpp.o"
  "CMakeFiles/netcomputer.dir/netcomputer.cpp.o.d"
  "netcomputer"
  "netcomputer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcomputer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
