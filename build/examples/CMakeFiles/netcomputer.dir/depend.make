# Empty dependencies file for netcomputer.
# This may be replaced when dependencies are built.
