file(REMOVE_RECURSE
  "CMakeFiles/rtcp.dir/rtcp.cpp.o"
  "CMakeFiles/rtcp.dir/rtcp.cpp.o.d"
  "rtcp"
  "rtcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
