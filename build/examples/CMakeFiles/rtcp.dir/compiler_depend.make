# Empty compiler generated dependencies file for rtcp.
# This may be replaced when dependencies are built.
