file(REMOVE_RECURSE
  "CMakeFiles/ttcp.dir/ttcp.cpp.o"
  "CMakeFiles/ttcp.dir/ttcp.cpp.o.d"
  "ttcp"
  "ttcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
