# Empty compiler generated dependencies file for ttcp.
# This may be replaced when dependencies are built.
