# Empty dependencies file for ttcp.
# This may be replaced when dependencies are built.
