# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("com")
subdirs("trace")
subdirs("machine")
subdirs("lmm")
subdirs("amm")
subdirs("sleep")
subdirs("boot")
subdirs("kern")
subdirs("libc")
subdirs("memdebug")
subdirs("diskpart")
subdirs("fsread")
subdirs("exec")
subdirs("dev")
subdirs("net")
subdirs("fs")
subdirs("vm")
subdirs("testbed")
