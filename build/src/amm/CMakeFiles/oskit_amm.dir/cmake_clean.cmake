file(REMOVE_RECURSE
  "CMakeFiles/oskit_amm.dir/amm.cc.o"
  "CMakeFiles/oskit_amm.dir/amm.cc.o.d"
  "liboskit_amm.a"
  "liboskit_amm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oskit_amm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
