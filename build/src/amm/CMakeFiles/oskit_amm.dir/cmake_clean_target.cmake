file(REMOVE_RECURSE
  "liboskit_amm.a"
)
