# Empty dependencies file for oskit_amm.
# This may be replaced when dependencies are built.
