file(REMOVE_RECURSE
  "CMakeFiles/oskit_base.dir/checksum.cc.o"
  "CMakeFiles/oskit_base.dir/checksum.cc.o.d"
  "CMakeFiles/oskit_base.dir/error.cc.o"
  "CMakeFiles/oskit_base.dir/error.cc.o.d"
  "CMakeFiles/oskit_base.dir/panic.cc.o"
  "CMakeFiles/oskit_base.dir/panic.cc.o.d"
  "liboskit_base.a"
  "liboskit_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oskit_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
