file(REMOVE_RECURSE
  "liboskit_base.a"
)
