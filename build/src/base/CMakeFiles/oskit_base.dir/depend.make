# Empty dependencies file for oskit_base.
# This may be replaced when dependencies are built.
