
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/boot/memfs.cc" "src/boot/CMakeFiles/oskit_boot.dir/memfs.cc.o" "gcc" "src/boot/CMakeFiles/oskit_boot.dir/memfs.cc.o.d"
  "/root/repo/src/boot/multiboot.cc" "src/boot/CMakeFiles/oskit_boot.dir/multiboot.cc.o" "gcc" "src/boot/CMakeFiles/oskit_boot.dir/multiboot.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/oskit_base.dir/DependInfo.cmake"
  "/root/repo/build/src/com/CMakeFiles/oskit_com.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/oskit_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/oskit_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
