file(REMOVE_RECURSE
  "CMakeFiles/oskit_boot.dir/memfs.cc.o"
  "CMakeFiles/oskit_boot.dir/memfs.cc.o.d"
  "CMakeFiles/oskit_boot.dir/multiboot.cc.o"
  "CMakeFiles/oskit_boot.dir/multiboot.cc.o.d"
  "liboskit_boot.a"
  "liboskit_boot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oskit_boot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
