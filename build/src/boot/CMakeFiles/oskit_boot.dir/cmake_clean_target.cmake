file(REMOVE_RECURSE
  "liboskit_boot.a"
)
