# Empty compiler generated dependencies file for oskit_boot.
# This may be replaced when dependencies are built.
