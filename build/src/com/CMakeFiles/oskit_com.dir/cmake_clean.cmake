file(REMOVE_RECURSE
  "CMakeFiles/oskit_com.dir/memblkio.cc.o"
  "CMakeFiles/oskit_com.dir/memblkio.cc.o.d"
  "liboskit_com.a"
  "liboskit_com.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oskit_com.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
