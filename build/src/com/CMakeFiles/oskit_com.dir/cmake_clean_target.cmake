file(REMOVE_RECURSE
  "liboskit_com.a"
)
