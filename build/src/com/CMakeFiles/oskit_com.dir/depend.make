# Empty dependencies file for oskit_com.
# This may be replaced when dependencies are built.
