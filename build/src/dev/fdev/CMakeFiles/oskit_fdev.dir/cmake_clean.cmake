file(REMOVE_RECURSE
  "CMakeFiles/oskit_fdev.dir/fdev.cc.o"
  "CMakeFiles/oskit_fdev.dir/fdev.cc.o.d"
  "liboskit_fdev.a"
  "liboskit_fdev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oskit_fdev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
