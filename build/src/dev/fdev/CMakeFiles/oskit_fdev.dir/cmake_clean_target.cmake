file(REMOVE_RECURSE
  "liboskit_fdev.a"
)
