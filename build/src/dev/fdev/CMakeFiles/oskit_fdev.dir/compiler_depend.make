# Empty compiler generated dependencies file for oskit_fdev.
# This may be replaced when dependencies are built.
