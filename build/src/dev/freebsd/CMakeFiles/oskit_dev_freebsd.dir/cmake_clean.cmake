file(REMOVE_RECURSE
  "CMakeFiles/oskit_dev_freebsd.dir/freebsd_char.cc.o"
  "CMakeFiles/oskit_dev_freebsd.dir/freebsd_char.cc.o.d"
  "CMakeFiles/oskit_dev_freebsd.dir/freebsd_ether.cc.o"
  "CMakeFiles/oskit_dev_freebsd.dir/freebsd_ether.cc.o.d"
  "liboskit_dev_freebsd.a"
  "liboskit_dev_freebsd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oskit_dev_freebsd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
