file(REMOVE_RECURSE
  "liboskit_dev_freebsd.a"
)
