# Empty dependencies file for oskit_dev_freebsd.
# This may be replaced when dependencies are built.
