file(REMOVE_RECURSE
  "CMakeFiles/oskit_dev_linux.dir/linux_ether.cc.o"
  "CMakeFiles/oskit_dev_linux.dir/linux_ether.cc.o.d"
  "CMakeFiles/oskit_dev_linux.dir/linux_glue.cc.o"
  "CMakeFiles/oskit_dev_linux.dir/linux_glue.cc.o.d"
  "CMakeFiles/oskit_dev_linux.dir/linux_ide.cc.o"
  "CMakeFiles/oskit_dev_linux.dir/linux_ide.cc.o.d"
  "CMakeFiles/oskit_dev_linux.dir/skbuff.cc.o"
  "CMakeFiles/oskit_dev_linux.dir/skbuff.cc.o.d"
  "liboskit_dev_linux.a"
  "liboskit_dev_linux.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oskit_dev_linux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
