file(REMOVE_RECURSE
  "liboskit_dev_linux.a"
)
