# Empty dependencies file for oskit_dev_linux.
# This may be replaced when dependencies are built.
