# CMake generated Testfile for 
# Source directory: /root/repo/src/dev/linux
# Build directory: /root/repo/build/src/dev/linux
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
