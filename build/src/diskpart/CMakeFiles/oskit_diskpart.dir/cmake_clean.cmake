file(REMOVE_RECURSE
  "CMakeFiles/oskit_diskpart.dir/diskpart.cc.o"
  "CMakeFiles/oskit_diskpart.dir/diskpart.cc.o.d"
  "liboskit_diskpart.a"
  "liboskit_diskpart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oskit_diskpart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
