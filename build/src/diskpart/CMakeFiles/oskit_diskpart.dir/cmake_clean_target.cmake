file(REMOVE_RECURSE
  "liboskit_diskpart.a"
)
