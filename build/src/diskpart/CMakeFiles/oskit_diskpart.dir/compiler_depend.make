# Empty compiler generated dependencies file for oskit_diskpart.
# This may be replaced when dependencies are built.
