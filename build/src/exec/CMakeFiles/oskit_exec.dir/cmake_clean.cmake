file(REMOVE_RECURSE
  "CMakeFiles/oskit_exec.dir/sxf.cc.o"
  "CMakeFiles/oskit_exec.dir/sxf.cc.o.d"
  "liboskit_exec.a"
  "liboskit_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oskit_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
