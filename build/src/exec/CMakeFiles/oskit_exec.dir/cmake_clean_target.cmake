file(REMOVE_RECURSE
  "liboskit_exec.a"
)
