# Empty dependencies file for oskit_exec.
# This may be replaced when dependencies are built.
