
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/cache.cc" "src/fs/CMakeFiles/oskit_fs.dir/cache.cc.o" "gcc" "src/fs/CMakeFiles/oskit_fs.dir/cache.cc.o.d"
  "/root/repo/src/fs/ffs.cc" "src/fs/CMakeFiles/oskit_fs.dir/ffs.cc.o" "gcc" "src/fs/CMakeFiles/oskit_fs.dir/ffs.cc.o.d"
  "/root/repo/src/fs/ffs_com.cc" "src/fs/CMakeFiles/oskit_fs.dir/ffs_com.cc.o" "gcc" "src/fs/CMakeFiles/oskit_fs.dir/ffs_com.cc.o.d"
  "/root/repo/src/fs/fsck.cc" "src/fs/CMakeFiles/oskit_fs.dir/fsck.cc.o" "gcc" "src/fs/CMakeFiles/oskit_fs.dir/fsck.cc.o.d"
  "/root/repo/src/fs/secure.cc" "src/fs/CMakeFiles/oskit_fs.dir/secure.cc.o" "gcc" "src/fs/CMakeFiles/oskit_fs.dir/secure.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/oskit_base.dir/DependInfo.cmake"
  "/root/repo/build/src/com/CMakeFiles/oskit_com.dir/DependInfo.cmake"
  "/root/repo/build/src/libc/CMakeFiles/oskit_libc.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/oskit_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
