file(REMOVE_RECURSE
  "CMakeFiles/oskit_fs.dir/cache.cc.o"
  "CMakeFiles/oskit_fs.dir/cache.cc.o.d"
  "CMakeFiles/oskit_fs.dir/ffs.cc.o"
  "CMakeFiles/oskit_fs.dir/ffs.cc.o.d"
  "CMakeFiles/oskit_fs.dir/ffs_com.cc.o"
  "CMakeFiles/oskit_fs.dir/ffs_com.cc.o.d"
  "CMakeFiles/oskit_fs.dir/fsck.cc.o"
  "CMakeFiles/oskit_fs.dir/fsck.cc.o.d"
  "CMakeFiles/oskit_fs.dir/secure.cc.o"
  "CMakeFiles/oskit_fs.dir/secure.cc.o.d"
  "liboskit_fs.a"
  "liboskit_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oskit_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
