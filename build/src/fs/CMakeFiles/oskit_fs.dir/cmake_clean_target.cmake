file(REMOVE_RECURSE
  "liboskit_fs.a"
)
