# Empty dependencies file for oskit_fs.
# This may be replaced when dependencies are built.
