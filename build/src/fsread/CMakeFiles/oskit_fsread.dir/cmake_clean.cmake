file(REMOVE_RECURSE
  "CMakeFiles/oskit_fsread.dir/fsread.cc.o"
  "CMakeFiles/oskit_fsread.dir/fsread.cc.o.d"
  "liboskit_fsread.a"
  "liboskit_fsread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oskit_fsread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
