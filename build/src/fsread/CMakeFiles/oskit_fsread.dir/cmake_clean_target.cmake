file(REMOVE_RECURSE
  "liboskit_fsread.a"
)
