# Empty dependencies file for oskit_fsread.
# This may be replaced when dependencies are built.
