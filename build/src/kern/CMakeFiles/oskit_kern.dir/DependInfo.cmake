
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kern/gdb_stub.cc" "src/kern/CMakeFiles/oskit_kern.dir/gdb_stub.cc.o" "gcc" "src/kern/CMakeFiles/oskit_kern.dir/gdb_stub.cc.o.d"
  "/root/repo/src/kern/kernel.cc" "src/kern/CMakeFiles/oskit_kern.dir/kernel.cc.o" "gcc" "src/kern/CMakeFiles/oskit_kern.dir/kernel.cc.o.d"
  "/root/repo/src/kern/kmon.cc" "src/kern/CMakeFiles/oskit_kern.dir/kmon.cc.o" "gcc" "src/kern/CMakeFiles/oskit_kern.dir/kmon.cc.o.d"
  "/root/repo/src/kern/paging.cc" "src/kern/CMakeFiles/oskit_kern.dir/paging.cc.o" "gcc" "src/kern/CMakeFiles/oskit_kern.dir/paging.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/oskit_base.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/oskit_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/boot/CMakeFiles/oskit_boot.dir/DependInfo.cmake"
  "/root/repo/build/src/lmm/CMakeFiles/oskit_lmm.dir/DependInfo.cmake"
  "/root/repo/build/src/sleep/CMakeFiles/oskit_sleep.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/oskit_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/com/CMakeFiles/oskit_com.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
