file(REMOVE_RECURSE
  "CMakeFiles/oskit_kern.dir/gdb_stub.cc.o"
  "CMakeFiles/oskit_kern.dir/gdb_stub.cc.o.d"
  "CMakeFiles/oskit_kern.dir/kernel.cc.o"
  "CMakeFiles/oskit_kern.dir/kernel.cc.o.d"
  "CMakeFiles/oskit_kern.dir/kmon.cc.o"
  "CMakeFiles/oskit_kern.dir/kmon.cc.o.d"
  "CMakeFiles/oskit_kern.dir/paging.cc.o"
  "CMakeFiles/oskit_kern.dir/paging.cc.o.d"
  "liboskit_kern.a"
  "liboskit_kern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oskit_kern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
