file(REMOVE_RECURSE
  "liboskit_kern.a"
)
