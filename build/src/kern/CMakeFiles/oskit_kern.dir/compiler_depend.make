# Empty compiler generated dependencies file for oskit_kern.
# This may be replaced when dependencies are built.
