
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/libc/format.cc" "src/libc/CMakeFiles/oskit_libc.dir/format.cc.o" "gcc" "src/libc/CMakeFiles/oskit_libc.dir/format.cc.o.d"
  "/root/repo/src/libc/malloc.cc" "src/libc/CMakeFiles/oskit_libc.dir/malloc.cc.o" "gcc" "src/libc/CMakeFiles/oskit_libc.dir/malloc.cc.o.d"
  "/root/repo/src/libc/posix.cc" "src/libc/CMakeFiles/oskit_libc.dir/posix.cc.o" "gcc" "src/libc/CMakeFiles/oskit_libc.dir/posix.cc.o.d"
  "/root/repo/src/libc/quickalloc.cc" "src/libc/CMakeFiles/oskit_libc.dir/quickalloc.cc.o" "gcc" "src/libc/CMakeFiles/oskit_libc.dir/quickalloc.cc.o.d"
  "/root/repo/src/libc/stdio.cc" "src/libc/CMakeFiles/oskit_libc.dir/stdio.cc.o" "gcc" "src/libc/CMakeFiles/oskit_libc.dir/stdio.cc.o.d"
  "/root/repo/src/libc/string.cc" "src/libc/CMakeFiles/oskit_libc.dir/string.cc.o" "gcc" "src/libc/CMakeFiles/oskit_libc.dir/string.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/oskit_base.dir/DependInfo.cmake"
  "/root/repo/build/src/com/CMakeFiles/oskit_com.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
