file(REMOVE_RECURSE
  "CMakeFiles/oskit_libc.dir/format.cc.o"
  "CMakeFiles/oskit_libc.dir/format.cc.o.d"
  "CMakeFiles/oskit_libc.dir/malloc.cc.o"
  "CMakeFiles/oskit_libc.dir/malloc.cc.o.d"
  "CMakeFiles/oskit_libc.dir/posix.cc.o"
  "CMakeFiles/oskit_libc.dir/posix.cc.o.d"
  "CMakeFiles/oskit_libc.dir/quickalloc.cc.o"
  "CMakeFiles/oskit_libc.dir/quickalloc.cc.o.d"
  "CMakeFiles/oskit_libc.dir/stdio.cc.o"
  "CMakeFiles/oskit_libc.dir/stdio.cc.o.d"
  "CMakeFiles/oskit_libc.dir/string.cc.o"
  "CMakeFiles/oskit_libc.dir/string.cc.o.d"
  "liboskit_libc.a"
  "liboskit_libc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oskit_libc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
