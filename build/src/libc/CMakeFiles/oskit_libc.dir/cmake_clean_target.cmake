file(REMOVE_RECURSE
  "liboskit_libc.a"
)
