# Empty compiler generated dependencies file for oskit_libc.
# This may be replaced when dependencies are built.
