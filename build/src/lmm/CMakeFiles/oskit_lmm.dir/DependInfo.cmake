
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lmm/lmm.cc" "src/lmm/CMakeFiles/oskit_lmm.dir/lmm.cc.o" "gcc" "src/lmm/CMakeFiles/oskit_lmm.dir/lmm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/oskit_base.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/oskit_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/com/CMakeFiles/oskit_com.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
