file(REMOVE_RECURSE
  "CMakeFiles/oskit_lmm.dir/lmm.cc.o"
  "CMakeFiles/oskit_lmm.dir/lmm.cc.o.d"
  "liboskit_lmm.a"
  "liboskit_lmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oskit_lmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
