file(REMOVE_RECURSE
  "liboskit_lmm.a"
)
