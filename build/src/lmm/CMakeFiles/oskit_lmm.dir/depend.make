# Empty dependencies file for oskit_lmm.
# This may be replaced when dependencies are built.
