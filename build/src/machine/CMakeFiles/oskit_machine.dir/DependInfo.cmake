
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/clock.cc" "src/machine/CMakeFiles/oskit_machine.dir/clock.cc.o" "gcc" "src/machine/CMakeFiles/oskit_machine.dir/clock.cc.o.d"
  "/root/repo/src/machine/cpu.cc" "src/machine/CMakeFiles/oskit_machine.dir/cpu.cc.o" "gcc" "src/machine/CMakeFiles/oskit_machine.dir/cpu.cc.o.d"
  "/root/repo/src/machine/disk.cc" "src/machine/CMakeFiles/oskit_machine.dir/disk.cc.o" "gcc" "src/machine/CMakeFiles/oskit_machine.dir/disk.cc.o.d"
  "/root/repo/src/machine/fiber.cc" "src/machine/CMakeFiles/oskit_machine.dir/fiber.cc.o" "gcc" "src/machine/CMakeFiles/oskit_machine.dir/fiber.cc.o.d"
  "/root/repo/src/machine/nic.cc" "src/machine/CMakeFiles/oskit_machine.dir/nic.cc.o" "gcc" "src/machine/CMakeFiles/oskit_machine.dir/nic.cc.o.d"
  "/root/repo/src/machine/pic.cc" "src/machine/CMakeFiles/oskit_machine.dir/pic.cc.o" "gcc" "src/machine/CMakeFiles/oskit_machine.dir/pic.cc.o.d"
  "/root/repo/src/machine/pit.cc" "src/machine/CMakeFiles/oskit_machine.dir/pit.cc.o" "gcc" "src/machine/CMakeFiles/oskit_machine.dir/pit.cc.o.d"
  "/root/repo/src/machine/simulation.cc" "src/machine/CMakeFiles/oskit_machine.dir/simulation.cc.o" "gcc" "src/machine/CMakeFiles/oskit_machine.dir/simulation.cc.o.d"
  "/root/repo/src/machine/uart.cc" "src/machine/CMakeFiles/oskit_machine.dir/uart.cc.o" "gcc" "src/machine/CMakeFiles/oskit_machine.dir/uart.cc.o.d"
  "/root/repo/src/machine/wire.cc" "src/machine/CMakeFiles/oskit_machine.dir/wire.cc.o" "gcc" "src/machine/CMakeFiles/oskit_machine.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/oskit_base.dir/DependInfo.cmake"
  "/root/repo/build/src/com/CMakeFiles/oskit_com.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/oskit_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
