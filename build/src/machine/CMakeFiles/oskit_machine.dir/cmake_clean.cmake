file(REMOVE_RECURSE
  "CMakeFiles/oskit_machine.dir/clock.cc.o"
  "CMakeFiles/oskit_machine.dir/clock.cc.o.d"
  "CMakeFiles/oskit_machine.dir/cpu.cc.o"
  "CMakeFiles/oskit_machine.dir/cpu.cc.o.d"
  "CMakeFiles/oskit_machine.dir/disk.cc.o"
  "CMakeFiles/oskit_machine.dir/disk.cc.o.d"
  "CMakeFiles/oskit_machine.dir/fiber.cc.o"
  "CMakeFiles/oskit_machine.dir/fiber.cc.o.d"
  "CMakeFiles/oskit_machine.dir/nic.cc.o"
  "CMakeFiles/oskit_machine.dir/nic.cc.o.d"
  "CMakeFiles/oskit_machine.dir/pic.cc.o"
  "CMakeFiles/oskit_machine.dir/pic.cc.o.d"
  "CMakeFiles/oskit_machine.dir/pit.cc.o"
  "CMakeFiles/oskit_machine.dir/pit.cc.o.d"
  "CMakeFiles/oskit_machine.dir/simulation.cc.o"
  "CMakeFiles/oskit_machine.dir/simulation.cc.o.d"
  "CMakeFiles/oskit_machine.dir/uart.cc.o"
  "CMakeFiles/oskit_machine.dir/uart.cc.o.d"
  "CMakeFiles/oskit_machine.dir/wire.cc.o"
  "CMakeFiles/oskit_machine.dir/wire.cc.o.d"
  "liboskit_machine.a"
  "liboskit_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oskit_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
