file(REMOVE_RECURSE
  "liboskit_machine.a"
)
