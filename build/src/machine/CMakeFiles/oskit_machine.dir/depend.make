# Empty dependencies file for oskit_machine.
# This may be replaced when dependencies are built.
