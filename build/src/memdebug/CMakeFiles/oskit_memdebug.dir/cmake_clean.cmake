file(REMOVE_RECURSE
  "CMakeFiles/oskit_memdebug.dir/memdebug.cc.o"
  "CMakeFiles/oskit_memdebug.dir/memdebug.cc.o.d"
  "liboskit_memdebug.a"
  "liboskit_memdebug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oskit_memdebug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
