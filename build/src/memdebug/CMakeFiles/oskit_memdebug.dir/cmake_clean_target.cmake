file(REMOVE_RECURSE
  "liboskit_memdebug.a"
)
