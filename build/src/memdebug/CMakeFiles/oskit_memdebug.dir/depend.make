# Empty dependencies file for oskit_memdebug.
# This may be replaced when dependencies are built.
