
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/icmp.cc" "src/net/CMakeFiles/oskit_net.dir/icmp.cc.o" "gcc" "src/net/CMakeFiles/oskit_net.dir/icmp.cc.o.d"
  "/root/repo/src/net/ip.cc" "src/net/CMakeFiles/oskit_net.dir/ip.cc.o" "gcc" "src/net/CMakeFiles/oskit_net.dir/ip.cc.o.d"
  "/root/repo/src/net/mbuf.cc" "src/net/CMakeFiles/oskit_net.dir/mbuf.cc.o" "gcc" "src/net/CMakeFiles/oskit_net.dir/mbuf.cc.o.d"
  "/root/repo/src/net/mbuf_bufio.cc" "src/net/CMakeFiles/oskit_net.dir/mbuf_bufio.cc.o" "gcc" "src/net/CMakeFiles/oskit_net.dir/mbuf_bufio.cc.o.d"
  "/root/repo/src/net/socket.cc" "src/net/CMakeFiles/oskit_net.dir/socket.cc.o" "gcc" "src/net/CMakeFiles/oskit_net.dir/socket.cc.o.d"
  "/root/repo/src/net/stack.cc" "src/net/CMakeFiles/oskit_net.dir/stack.cc.o" "gcc" "src/net/CMakeFiles/oskit_net.dir/stack.cc.o.d"
  "/root/repo/src/net/tcp.cc" "src/net/CMakeFiles/oskit_net.dir/tcp.cc.o" "gcc" "src/net/CMakeFiles/oskit_net.dir/tcp.cc.o.d"
  "/root/repo/src/net/udp.cc" "src/net/CMakeFiles/oskit_net.dir/udp.cc.o" "gcc" "src/net/CMakeFiles/oskit_net.dir/udp.cc.o.d"
  "/root/repo/src/net/wire_formats.cc" "src/net/CMakeFiles/oskit_net.dir/wire_formats.cc.o" "gcc" "src/net/CMakeFiles/oskit_net.dir/wire_formats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/oskit_base.dir/DependInfo.cmake"
  "/root/repo/build/src/com/CMakeFiles/oskit_com.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/oskit_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/sleep/CMakeFiles/oskit_sleep.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/oskit_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
