file(REMOVE_RECURSE
  "CMakeFiles/oskit_net.dir/icmp.cc.o"
  "CMakeFiles/oskit_net.dir/icmp.cc.o.d"
  "CMakeFiles/oskit_net.dir/ip.cc.o"
  "CMakeFiles/oskit_net.dir/ip.cc.o.d"
  "CMakeFiles/oskit_net.dir/mbuf.cc.o"
  "CMakeFiles/oskit_net.dir/mbuf.cc.o.d"
  "CMakeFiles/oskit_net.dir/mbuf_bufio.cc.o"
  "CMakeFiles/oskit_net.dir/mbuf_bufio.cc.o.d"
  "CMakeFiles/oskit_net.dir/socket.cc.o"
  "CMakeFiles/oskit_net.dir/socket.cc.o.d"
  "CMakeFiles/oskit_net.dir/stack.cc.o"
  "CMakeFiles/oskit_net.dir/stack.cc.o.d"
  "CMakeFiles/oskit_net.dir/tcp.cc.o"
  "CMakeFiles/oskit_net.dir/tcp.cc.o.d"
  "CMakeFiles/oskit_net.dir/udp.cc.o"
  "CMakeFiles/oskit_net.dir/udp.cc.o.d"
  "CMakeFiles/oskit_net.dir/wire_formats.cc.o"
  "CMakeFiles/oskit_net.dir/wire_formats.cc.o.d"
  "liboskit_net.a"
  "liboskit_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oskit_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
