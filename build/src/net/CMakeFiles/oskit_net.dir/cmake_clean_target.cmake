file(REMOVE_RECURSE
  "liboskit_net.a"
)
