# Empty dependencies file for oskit_net.
# This may be replaced when dependencies are built.
