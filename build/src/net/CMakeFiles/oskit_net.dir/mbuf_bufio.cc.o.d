src/net/CMakeFiles/oskit_net.dir/mbuf_bufio.cc.o: \
 /root/repo/src/net/mbuf_bufio.cc /usr/include/stdc-predef.h \
 /root/repo/src/net/mbuf_bufio.h /root/repo/src/com/bufio.h \
 /root/repo/src/com/blkio.h /usr/include/c++/12/cstddef \
 /usr/include/x86_64-linux-gnu/c++/12/bits/c++config.h \
 /usr/include/x86_64-linux-gnu/c++/12/bits/os_defines.h \
 /usr/include/features.h /usr/include/features-time64.h \
 /usr/include/x86_64-linux-gnu/bits/wordsize.h \
 /usr/include/x86_64-linux-gnu/bits/timesize.h \
 /usr/include/x86_64-linux-gnu/sys/cdefs.h \
 /usr/include/x86_64-linux-gnu/bits/long-double.h \
 /usr/include/x86_64-linux-gnu/gnu/stubs.h \
 /usr/include/x86_64-linux-gnu/gnu/stubs-64.h \
 /usr/include/x86_64-linux-gnu/c++/12/bits/cpu_defines.h \
 /usr/include/c++/12/pstl/pstl_config.h \
 /usr/lib/gcc/x86_64-linux-gnu/12/include/stddef.h \
 /usr/include/c++/12/cstdint \
 /usr/lib/gcc/x86_64-linux-gnu/12/include/stdint.h /usr/include/stdint.h \
 /usr/include/x86_64-linux-gnu/bits/libc-header-start.h \
 /usr/include/x86_64-linux-gnu/bits/types.h \
 /usr/include/x86_64-linux-gnu/bits/typesizes.h \
 /usr/include/x86_64-linux-gnu/bits/time64.h \
 /usr/include/x86_64-linux-gnu/bits/wchar.h \
 /usr/include/x86_64-linux-gnu/bits/stdint-intn.h \
 /usr/include/x86_64-linux-gnu/bits/stdint-uintn.h \
 /root/repo/src/com/iunknown.h /usr/include/c++/12/utility \
 /usr/include/c++/12/bits/stl_relops.h \
 /usr/include/c++/12/bits/stl_pair.h /usr/include/c++/12/type_traits \
 /usr/include/c++/12/bits/move.h /usr/include/c++/12/bits/utility.h \
 /usr/include/c++/12/compare /usr/include/c++/12/concepts \
 /usr/include/c++/12/initializer_list \
 /usr/include/c++/12/ext/numeric_traits.h \
 /usr/include/c++/12/bits/cpp_type_traits.h \
 /usr/include/c++/12/ext/type_traits.h /root/repo/src/base/error.h \
 /root/repo/src/base/panic.h /root/repo/src/com/guid.h \
 /root/repo/src/net/mbuf.h /usr/include/c++/12/cstring \
 /usr/include/string.h \
 /usr/include/x86_64-linux-gnu/bits/types/locale_t.h \
 /usr/include/x86_64-linux-gnu/bits/types/__locale_t.h \
 /usr/include/strings.h
