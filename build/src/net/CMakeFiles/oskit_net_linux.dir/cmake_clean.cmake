file(REMOVE_RECURSE
  "CMakeFiles/oskit_net_linux.dir/linux/linux_stack.cc.o"
  "CMakeFiles/oskit_net_linux.dir/linux/linux_stack.cc.o.d"
  "liboskit_net_linux.a"
  "liboskit_net_linux.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oskit_net_linux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
