file(REMOVE_RECURSE
  "liboskit_net_linux.a"
)
