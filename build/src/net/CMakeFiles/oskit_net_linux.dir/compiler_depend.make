# Empty compiler generated dependencies file for oskit_net_linux.
# This may be replaced when dependencies are built.
