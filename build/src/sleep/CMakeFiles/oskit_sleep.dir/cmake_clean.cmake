file(REMOVE_RECURSE
  "CMakeFiles/oskit_sleep.dir/sleep.cc.o"
  "CMakeFiles/oskit_sleep.dir/sleep.cc.o.d"
  "liboskit_sleep.a"
  "liboskit_sleep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oskit_sleep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
