file(REMOVE_RECURSE
  "liboskit_sleep.a"
)
