# Empty compiler generated dependencies file for oskit_sleep.
# This may be replaced when dependencies are built.
