file(REMOVE_RECURSE
  "CMakeFiles/oskit_testbed.dir/testbed.cc.o"
  "CMakeFiles/oskit_testbed.dir/testbed.cc.o.d"
  "CMakeFiles/oskit_testbed.dir/ttcp.cc.o"
  "CMakeFiles/oskit_testbed.dir/ttcp.cc.o.d"
  "liboskit_testbed.a"
  "liboskit_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oskit_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
