file(REMOVE_RECURSE
  "liboskit_testbed.a"
)
