# Empty compiler generated dependencies file for oskit_testbed.
# This may be replaced when dependencies are built.
