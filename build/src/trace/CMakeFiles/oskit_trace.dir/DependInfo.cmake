
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/trace.cc" "src/trace/CMakeFiles/oskit_trace.dir/trace.cc.o" "gcc" "src/trace/CMakeFiles/oskit_trace.dir/trace.cc.o.d"
  "/root/repo/src/trace/trace_com.cc" "src/trace/CMakeFiles/oskit_trace.dir/trace_com.cc.o" "gcc" "src/trace/CMakeFiles/oskit_trace.dir/trace_com.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/oskit_base.dir/DependInfo.cmake"
  "/root/repo/build/src/com/CMakeFiles/oskit_com.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
