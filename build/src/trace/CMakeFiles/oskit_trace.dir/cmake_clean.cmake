file(REMOVE_RECURSE
  "CMakeFiles/oskit_trace.dir/trace.cc.o"
  "CMakeFiles/oskit_trace.dir/trace.cc.o.d"
  "CMakeFiles/oskit_trace.dir/trace_com.cc.o"
  "CMakeFiles/oskit_trace.dir/trace_com.cc.o.d"
  "liboskit_trace.a"
  "liboskit_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oskit_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
