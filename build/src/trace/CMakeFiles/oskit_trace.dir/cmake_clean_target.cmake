file(REMOVE_RECURSE
  "liboskit_trace.a"
)
