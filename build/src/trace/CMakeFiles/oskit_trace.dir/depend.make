# Empty dependencies file for oskit_trace.
# This may be replaced when dependencies are built.
