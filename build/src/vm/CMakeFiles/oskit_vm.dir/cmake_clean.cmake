file(REMOVE_RECURSE
  "CMakeFiles/oskit_vm.dir/asm.cc.o"
  "CMakeFiles/oskit_vm.dir/asm.cc.o.d"
  "CMakeFiles/oskit_vm.dir/kvm.cc.o"
  "CMakeFiles/oskit_vm.dir/kvm.cc.o.d"
  "liboskit_vm.a"
  "liboskit_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oskit_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
