file(REMOVE_RECURSE
  "liboskit_vm.a"
)
