# Empty dependencies file for oskit_vm.
# This may be replaced when dependencies are built.
