
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/amm_test.cc" "tests/CMakeFiles/amm_test.dir/amm_test.cc.o" "gcc" "tests/CMakeFiles/amm_test.dir/amm_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/testbed/CMakeFiles/oskit_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/amm/CMakeFiles/oskit_amm.dir/DependInfo.cmake"
  "/root/repo/build/src/memdebug/CMakeFiles/oskit_memdebug.dir/DependInfo.cmake"
  "/root/repo/build/src/diskpart/CMakeFiles/oskit_diskpart.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/oskit_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/fsread/CMakeFiles/oskit_fsread.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/oskit_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/oskit_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/dev/freebsd/CMakeFiles/oskit_dev_freebsd.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/oskit_net_linux.dir/DependInfo.cmake"
  "/root/repo/build/src/dev/linux/CMakeFiles/oskit_dev_linux.dir/DependInfo.cmake"
  "/root/repo/build/src/dev/fdev/CMakeFiles/oskit_fdev.dir/DependInfo.cmake"
  "/root/repo/build/src/kern/CMakeFiles/oskit_kern.dir/DependInfo.cmake"
  "/root/repo/build/src/lmm/CMakeFiles/oskit_lmm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/oskit_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sleep/CMakeFiles/oskit_sleep.dir/DependInfo.cmake"
  "/root/repo/build/src/boot/CMakeFiles/oskit_boot.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/oskit_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/libc/CMakeFiles/oskit_libc.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/oskit_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/com/CMakeFiles/oskit_com.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/oskit_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
