file(REMOVE_RECURSE
  "CMakeFiles/amm_test.dir/amm_test.cc.o"
  "CMakeFiles/amm_test.dir/amm_test.cc.o.d"
  "amm_test"
  "amm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
