# Empty compiler generated dependencies file for amm_test.
# This may be replaced when dependencies are built.
