file(REMOVE_RECURSE
  "CMakeFiles/boot_chain_test.dir/boot_chain_test.cc.o"
  "CMakeFiles/boot_chain_test.dir/boot_chain_test.cc.o.d"
  "boot_chain_test"
  "boot_chain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boot_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
