# Empty compiler generated dependencies file for boot_chain_test.
# This may be replaced when dependencies are built.
