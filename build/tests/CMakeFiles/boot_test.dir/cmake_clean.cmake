file(REMOVE_RECURSE
  "CMakeFiles/boot_test.dir/boot_test.cc.o"
  "CMakeFiles/boot_test.dir/boot_test.cc.o.d"
  "boot_test"
  "boot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
