file(REMOVE_RECURSE
  "CMakeFiles/com_test.dir/com_test.cc.o"
  "CMakeFiles/com_test.dir/com_test.cc.o.d"
  "com_test"
  "com_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/com_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
