file(REMOVE_RECURSE
  "CMakeFiles/diskpart_test.dir/diskpart_test.cc.o"
  "CMakeFiles/diskpart_test.dir/diskpart_test.cc.o.d"
  "diskpart_test"
  "diskpart_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diskpart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
