# Empty compiler generated dependencies file for diskpart_test.
# This may be replaced when dependencies are built.
