file(REMOVE_RECURSE
  "CMakeFiles/fsread_test.dir/fsread_test.cc.o"
  "CMakeFiles/fsread_test.dir/fsread_test.cc.o.d"
  "fsread_test"
  "fsread_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsread_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
