# Empty compiler generated dependencies file for fsread_test.
# This may be replaced when dependencies are built.
