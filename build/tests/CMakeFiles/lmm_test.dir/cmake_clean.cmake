file(REMOVE_RECURSE
  "CMakeFiles/lmm_test.dir/lmm_test.cc.o"
  "CMakeFiles/lmm_test.dir/lmm_test.cc.o.d"
  "lmm_test"
  "lmm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
