# Empty compiler generated dependencies file for lmm_test.
# This may be replaced when dependencies are built.
