file(REMOVE_RECURSE
  "CMakeFiles/memdebug_test.dir/memdebug_test.cc.o"
  "CMakeFiles/memdebug_test.dir/memdebug_test.cc.o.d"
  "memdebug_test"
  "memdebug_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memdebug_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
