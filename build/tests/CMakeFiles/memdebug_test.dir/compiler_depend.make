# Empty compiler generated dependencies file for memdebug_test.
# This may be replaced when dependencies are built.
