file(REMOVE_RECURSE
  "CMakeFiles/net_integration_test.dir/net_integration_test.cc.o"
  "CMakeFiles/net_integration_test.dir/net_integration_test.cc.o.d"
  "net_integration_test"
  "net_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
