file(REMOVE_RECURSE
  "CMakeFiles/paging_test.dir/paging_test.cc.o"
  "CMakeFiles/paging_test.dir/paging_test.cc.o.d"
  "paging_test"
  "paging_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
