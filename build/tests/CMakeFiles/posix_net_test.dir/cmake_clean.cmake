file(REMOVE_RECURSE
  "CMakeFiles/posix_net_test.dir/posix_net_test.cc.o"
  "CMakeFiles/posix_net_test.dir/posix_net_test.cc.o.d"
  "posix_net_test"
  "posix_net_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posix_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
