# Empty dependencies file for posix_net_test.
# This may be replaced when dependencies are built.
