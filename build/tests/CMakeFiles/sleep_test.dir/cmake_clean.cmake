file(REMOVE_RECURSE
  "CMakeFiles/sleep_test.dir/sleep_test.cc.o"
  "CMakeFiles/sleep_test.dir/sleep_test.cc.o.d"
  "sleep_test"
  "sleep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sleep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
