# Empty compiler generated dependencies file for sleep_test.
# This may be replaced when dependencies are built.
