// fileserver — the secure file server case study (§3.8).
//
// "The OSKit interface accepts only single pathname components, allowing the
// security wrapping code to do appropriate permission checking.  The
// fileserver itself, however, exports an interface accepting full pathnames,
// providing efficiency where it matters."
//
// A simulated PC assembles the full storage stack from separable components
// bound at run time (§4.2.2): simulated IDE disk -> encapsulated Linux IDE
// driver (BlkIo) -> MBR partition view -> offs filesystem -> per-credential
// security wrapper.  A second PC talks to it over TCP with a trivial
// full-pathname protocol:  "<uid> GET <path>\n" -> contents or an error.

#include <cstdio>
#include <sstream>
#include <string>

#include "src/diskpart/diskpart.h"
#include "src/dev/linux/linux_ide.h"
#include "src/fs/ffs.h"
#include "src/fs/fsck.h"
#include "src/fs/secure.h"
#include "src/libc/posix.h"
#include "src/testbed/testbed.h"

using namespace oskit;
using namespace oskit::testbed;

namespace {

constexpr uint16_t kPort = 9000;

// Serves one request line against a credential-wrapped root.
std::string HandleRequest(fs::FsPolicy* policy, const ComPtr<Dir>& raw_root,
                          const std::string& line) {
  std::istringstream in(line);
  uint32_t uid = 0;
  std::string verb;
  std::string path;
  in >> uid >> verb >> path;
  if (verb != "GET" || path.empty() || path[0] != '/') {
    return "ERR bad request\n";
  }
  // The wrapper is built per request with the caller's credentials; path
  // walking below goes one component at a time through the checked Dir.
  fs::Credentials creds{.uid = uid, .gid = uid};
  ComPtr<Dir> root = fs::MakeSecureDir(raw_root, policy, creds);
  libc::PosixIo posix;
  posix.SetRoot(std::move(root));
  int fd = posix.Open(path.c_str(), libc::kORdOnly);
  if (fd < 0) {
    return std::string("ERR ") + ErrorName(static_cast<Error>(-fd)) + "\n";
  }
  std::string contents = "OK ";
  char buf[512];
  long n;
  while ((n = posix.Read(fd, buf, sizeof(buf))) > 0) {
    contents.append(buf, static_cast<size_t>(n));
  }
  posix.Close(fd);
  if (n < 0) {
    // The security wrapper denies at the Read itself (the open only walked
    // the path); report the denial, not a truncated success.
    return std::string("ERR ") + ErrorName(static_cast<Error>(-n)) + "\n";
  }
  contents.push_back('\n');
  return contents;
}

}  // namespace

int main() {
  World world;
  Host& server = world.AddHost("filesrv", NetConfig::kOskit);
  Host& client = world.AddHost("client", NetConfig::kOskit);

  // Give the server a disk with an MBR and one offs partition, built the
  // honest way: partition the raw disk, format through the partition view.
  server.machine->AddDisk(24 * 1024 * 1024 / 512);
  DeviceRegistry disk_registry;
  linuxdev::InitLinuxIde(server.fdev, server.machine.get(), &disk_registry);
  auto hda_dev = disk_registry.LookupByName("hda");
  ComPtr<BlkIo> hda = ComPtr<BlkIo>::FromQuery(hda_dev.get());

  int requests_served = 0;

  world.sim().Spawn("filesrv/main", [&] {
    // --- storage bring-up ---
    std::vector<Partition> layout = {
        {.start_sector = 64,
         .sector_count = 24 * 1024 * 1024 / 512 - 64,
         .type = kPartTypeOskitFs},
    };
    OSKIT_ASSERT(Ok(WriteMbr(hda.get(), layout)));
    std::vector<Partition> found;
    OSKIT_ASSERT(Ok(ReadPartitions(hda.get(), &found)));
    ComPtr<BlkIo> part = MakePartitionView(hda.get(), found[0]);
    OSKIT_ASSERT(Ok(fs::Mkfs(part.get())));
    FileSystem* raw_fs = nullptr;
    OSKIT_ASSERT(Ok(fs::Offs::Mount(part.get(), &raw_fs)));
    ComPtr<FileSystem> filesystem(raw_fs);
    ComPtr<Dir> root;
    filesystem->GetRoot(root.Receive());

    // Populate: a public file and alice's private file (uid 1000).
    {
      ComPtr<File> f;
      OSKIT_ASSERT(Ok(root->Create("motd", 0644, f.Receive())));
      size_t n;
      f->Write("welcome, anyone", 0, 15, &n);
      ComPtr<File> p;
      OSKIT_ASSERT(Ok(root->Create("diary", 0600, p.Receive())));
      p->Write("alice's secrets", 0, 15, &n);
      // chown diary to alice by rewriting the inode's uid via stat trick:
      // offs keeps uid in the inode; the COM surface has no chown, so write
      // it directly through the component's open implementation (§4.6).
      auto* offs = static_cast<fs::Offs*>(raw_fs);
      FileStat st;
      p->GetStat(&st);
      fs::DiskInode inode;
      OSKIT_ASSERT(Ok(offs->ReadInode(st.ino, &inode)));
      inode.uid = 1000;
      inode.gid = 1000;
      OSKIT_ASSERT(Ok(offs->WriteInode(st.ino, inode)));
    }

    fs::UnixFsPolicy policy;

    // --- the network half: full pathnames on the wire, components inside ---
    ComPtr<Socket> listener = server.MakeSocket(SockType::kStream);
    OSKIT_ASSERT(Ok(listener->Bind(SockAddr{kInetAny, kPort})));
    OSKIT_ASSERT(Ok(listener->Listen(4)));
    for (int i = 0; i < 4; ++i) {
      SockAddr peer;
      ComPtr<Socket> conn;
      OSKIT_ASSERT(Ok(listener->Accept(&peer, conn.Receive())));
      std::string line;
      char c;
      size_t n = 0;
      while (Ok(conn->Recv(&c, 1, &n)) && n == 1 && c != '\n') {
        line.push_back(c);
      }
      std::string reply = HandleRequest(&policy, root, line);
      size_t sent = 0;
      conn->Send(reply.data(), reply.size(), &sent);
      conn->Shutdown(SockShutdown::kWrite);
      ++requests_served;
    }
    std::printf("filesrv: policy ran %llu checks, denied %llu\n",
                static_cast<unsigned long long>(policy.checks_performed()),
                static_cast<unsigned long long>(policy.denials()));
    root.Reset();
    OSKIT_ASSERT(Ok(filesystem->Unmount()));
    fs::FsckReport report = fs::Fsck(part.get());
    std::printf("filesrv: fsck after unmount: %s\n",
                report.consistent ? "clean" : "INCONSISTENT");
  });

  world.sim().Spawn("client/main", [&] {
    auto request = [&](const std::string& line) -> std::string {
      // The server spends a while in disk bring-up before it listens;
      // retry until the listener exists (a RST means "not yet").
      ComPtr<Socket> conn;
      for (;;) {
        conn = client.MakeSocket(SockType::kStream);
        if (Ok(conn->Connect(SockAddr{server.addr, kPort}))) {
          break;
        }
        world.sim().SleepFor(10 * kNsPerMs);
      }
      size_t n = 0;
      conn->Send(line.data(), line.size(), &n);
      std::string reply;
      char buf[256];
      while (Ok(conn->Recv(buf, sizeof(buf), &n)) && n > 0) {
        reply.append(buf, n);
      }
      return reply;
    };
    struct Case {
      const char* line;
      const char* expect_prefix;
    };
    const Case cases[] = {
        {"2000 GET /motd\n", "OK welcome"},       // world-readable
        {"2000 GET /diary\n", "ERR EACCES"},      // bob can't read alice's
        {"1000 GET /diary\n", "OK alice's"},      // alice can
        {"1000 GET /missing\n", "ERR ENOENT"},
    };
    for (const Case& test : cases) {
      std::string reply = request(test.line);
      bool ok = reply.rfind(test.expect_prefix, 0) == 0;
      std::printf("client: %-22s -> %s%s", test.line,
                  ok ? "" : "[UNEXPECTED] ", reply.c_str());
      fflush(stdout);
      OSKIT_ASSERT_MSG(ok, "fileserver policy mismatch");
    }
  });

  world.RunToCompletion();
  std::printf("fileserver: served %d requests with per-component permission "
              "checks\n", requests_served);
  return 0;
}
