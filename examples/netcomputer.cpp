// netcomputer v2 — the §7 network computer grown into the flagship HTTP/1.1
// service.
//
// Version 1 was a blocking accept loop answering a banner per connection.
// v2 is the real composition the paper promises: one simulated PC serves
// journaled-FFS static content AND KVM-scripted dynamic pages over the
// FreeBSD-derived TCP stack, through the epoll-style NetSelector with
// batched accept, on the NAPI + scatter-gather RX/TX path — sockets, FS,
// journal, VM, selector, and zero-copy send exercised by one binary.
//
// The KVM program still arrives the Java/PC way (§6.2.2): assembled into a
// MultiBoot boot module, read back through the boot-module filesystem and
// the POSIX layer, verified, then executed — once per /dyn request, with
// the query arguments in VM globals (the miniature of a JVM servlet).
//
// A second simulated PC plays the browser: keep-alive requests, a
// pipelined burst, dynamic pages, a 404, Connection: close semantics, and
// finally the quit route that drains the server cleanly.

#include <cstdio>
#include <string>
#include <vector>

#include "src/boot/memfs.h"
#include "src/com/memblkio.h"
#include "src/fs/ffs.h"
#include "src/http/http.h"
#include "src/http/server.h"
#include "src/libc/posix.h"
#include "src/testbed/testbed.h"
#include "src/vm/kvm.h"

using namespace oskit;
using namespace oskit::testbed;

namespace {

// Captures kSysPutChar/kSysPutInt output; the dyn handler turns it into the
// response body.
class ConsoleSys : public vm::SysHandler {
 public:
  explicit ConsoleSys(std::string* out) : out_(out) {}

  Error Syscall(uint16_t number, vm::Vm& vm, int thread) override {
    switch (number) {
      case vm::kSysPutChar:
        out_->push_back(static_cast<char>(vm.Pop(thread)));
        return Error::kOk;
      case vm::kSysPutInt: {
        char buf[32];
        snprintf(buf, sizeof(buf), "%lld",
                 static_cast<long long>(vm.Pop(thread)));
        out_->append(buf);
        return Error::kOk;
      }
      default:
        return Error::kNotImpl;
    }
  }

 private:
  std::string* out_;
};

// The dynamic page program: answers g0 + g1 (the servlet).
constexpr char kDynProgram[] =
    "gload 0\n"
    "gload 1\n"
    "add\n"
    "sys 2\n"
    "halt\n";

// Pulls "<key>=<decimal>" out of a query string; 0 when absent.
int64_t QueryArg(const std::string& target, const std::string& key) {
  size_t q = target.find('?');
  if (q == std::string::npos) {
    return 0;
  }
  std::string query = target.substr(q + 1);
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    size_t end = amp == std::string::npos ? query.size() : amp;
    size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < end &&
        query.compare(pos, eq - pos, key) == 0) {
      return std::strtoll(query.c_str() + eq + 1, nullptr, 10);
    }
    pos = end + 1;
  }
  return 0;
}

// Builds the journaled-FFS content volume: an index page plus binary blobs.
ComPtr<FileSystem> BuildContent(trace::TraceEnv* trace,
                                const std::string& index_body,
                                size_t blob_size, int blobs) {
  auto disk = MemBlkIo::Create(2 * 1024 * 1024, 512);
  OSKIT_ASSERT(Ok(fs::Mkfs(disk.get())));
  fs::MountOptions mo;
  mo.trace = trace;
  ComPtr<FileSystem> ffs;
  OSKIT_ASSERT(Ok(fs::Offs::Mount(disk.get(), mo, ffs.Receive())));
  ComPtr<Dir> root;
  OSKIT_ASSERT(Ok(ffs->GetRoot(root.Receive())));

  ComPtr<File> index;
  OSKIT_ASSERT(Ok(root->Create("index.html", 0644, index.Receive())));
  size_t n = 0;
  OSKIT_ASSERT(Ok(index->Write(index_body.data(), 0, index_body.size(), &n)));

  OSKIT_ASSERT(Ok(root->Mkdir("files", 0755)));
  ComPtr<File> files_file;
  OSKIT_ASSERT(Ok(root->Lookup("files", files_file.Receive())));
  auto files = ComPtr<Dir>::FromQuery(files_file.get());
  OSKIT_ASSERT(files);
  for (int i = 0; i < blobs; ++i) {
    char name[32];
    snprintf(name, sizeof(name), "f%d.bin", i);
    ComPtr<File> f;
    OSKIT_ASSERT(Ok(files->Create(name, 0644, f.Receive())));
    std::string data(blob_size, static_cast<char>('a' + i));
    OSKIT_ASSERT(Ok(f->Write(data.data(), 0, data.size(), &n)));
  }
  return ffs;
}

// Blocking-socket request helper for the browser: sends `wire` verbatim and
// parses `expected` responses off the connection.
std::vector<http::Response> Exchange(Socket* sock, const std::string& wire,
                                     size_t expected) {
  size_t n = 0;
  OSKIT_ASSERT(Ok(sock->Send(wire.data(), wire.size(), &n)));
  http::ResponseParser parser;
  std::vector<http::Response> responses;
  char buf[4096];
  while (responses.size() < expected) {
    Error err = sock->Recv(buf, sizeof(buf), &n);
    OSKIT_ASSERT(Ok(err));
    OSKIT_ASSERT_MSG(n > 0, "connection closed mid-response");
    parser.Feed(buf, n);
    OSKIT_ASSERT_MSG(parser.status() != http::ParseStatus::kError,
                     parser.error());
    while (parser.HasResponse()) {
      responses.push_back(parser.TakeResponse());
    }
  }
  return responses;
}

}  // namespace

int main() {
  VirtualSwitch::Config sw;
  sw.port.bits_per_second = 1000 * 1000 * 1000;
  sw.port.propagation_ns = 5 * 1000;
  World world(sw);
  // The server rides the modern path: COM glue + scatter-gather send +
  // NAPI polled RX.  The browser is a native-BSD host — cross-stack
  // interop is the paper's whole point.
  Host& server = world.AddHost("netpc", NetConfig::kOskitNapi);
  Host& browser = world.AddHost("browser", NetConfig::kNativeBsd);

  const std::string kIndex = "<html>KVM/OSKit network computer v2</html>\n";
  constexpr size_t kBlobSize = 8192;
  constexpr int kBlobs = 4;

  // "Compile" the dynamic-page program and hand it to the boot loader as a
  // module — the Java/PC .class-files-in-a-bmod flow, unchanged from v1.
  std::vector<uint8_t> bytecode;
  std::string asm_error;
  if (!Ok(vm::Assemble(kDynProgram, &bytecode, &asm_error))) {
    std::fprintf(stderr, "assembly failed: %s\n", asm_error.c_str());
    return 1;
  }
  BootLoader loader(&server.machine->phys());
  loader.AddModule("servlet.kvm entry=0", bytecode.data(), bytecode.size());
  MultiBootInfo info = loader.Load("netcomputer");

  ComPtr<FileSystem> content =
      BuildContent(&server.trace, kIndex, kBlobSize, kBlobs);
  ComPtr<Dir> content_root;
  OSKIT_ASSERT(Ok(content->GetRoot(content_root.Receive())));

  http::Server::Config cfg;
  cfg.bind = SockAddr{kInetAny, 80};
  cfg.trace = &server.trace;
  cfg.now = [&world] { return world.sim().clock().Now(); };
  http::Server httpd(server.socket_factory, server.stack->CreateSelector(),
                     content_root, cfg);

  uint64_t dyn_hits = 0;

  world.sim().Spawn("netpc/httpd", [&] {
    // Load the servlet through bmodfs + POSIX, verify it once; each /dyn
    // request then runs a fresh VM over the same bytecode.
    auto bmodfs = MemFs::BuildBmodFs(&server.machine->phys(), info);
    ComPtr<Dir> bmod_root;
    bmodfs->GetRoot(bmod_root.Receive());
    libc::PosixIo posix;
    posix.SetRoot(std::move(bmod_root));
    int fd = posix.Open("/servlet.kvm", libc::kORdOnly);
    OSKIT_ASSERT(fd >= 0);
    FileStat st;
    posix.Fstat(fd, &st);
    std::vector<uint8_t> program(st.size);
    OSKIT_ASSERT(posix.Read(fd, program.data(), program.size()) ==
                 static_cast<long>(program.size()));
    posix.Close(fd);
    {
      vm::Vm probe(program, nullptr);
      std::string problem;
      OSKIT_ASSERT_MSG(Ok(probe.Verify(&problem)), problem.c_str());
    }

    httpd.AddDynRoute("/dyn/add", [&, program](const http::Request& req,
                                               std::string* body,
                                               std::string* type) -> int {
      std::string out;
      ConsoleSys sys(&out);
      vm::Vm machine(program, &sys);
      if (!Ok(machine.Verify())) {
        return 500;
      }
      machine.set_global(0, QueryArg(req.target, "a"));
      machine.set_global(1, QueryArg(req.target, "b"));
      machine.SpawnThread(0);
      if (!Ok(machine.Run())) {
        return 500;
      }
      ++dyn_hits;
      *body = out + "\n";
      *type = "text/plain";
      return 200;
    });

    OSKIT_ASSERT(Ok(httpd.Start()));
    httpd.Run();
    std::printf("netpc: served %llu requests, %llu responses\n",
                static_cast<unsigned long long>(httpd.requests()),
                static_cast<unsigned long long>(httpd.responses()));
  });

  int checks_passed = 0;
  world.sim().Spawn("browser", [&] {
    SockAddr target{server.addr, 80};

    // Keep-alive connection: index page, a blob, then a dynamic page.
    ComPtr<Socket> conn = browser.MakeSocket(SockType::kStream);
    OSKIT_ASSERT(Ok(conn->Connect(target)));
    auto r = Exchange(conn.get(), "GET /index.html HTTP/1.1\r\n\r\n", 1);
    OSKIT_ASSERT(r[0].status == 200 && r[0].body == kIndex);
    ++checks_passed;
    r = Exchange(conn.get(), "GET /files/f2.bin HTTP/1.1\r\n\r\n", 1);
    OSKIT_ASSERT(r[0].status == 200 && r[0].body.size() == kBlobSize &&
                 r[0].body[0] == 'c');
    ++checks_passed;
    r = Exchange(conn.get(), "GET /dyn/add?a=7&b=35 HTTP/1.1\r\n\r\n", 1);
    OSKIT_ASSERT(r[0].status == 200 && r[0].body == "42\n");
    ++checks_passed;

    // Pipelined burst on the same connection: three requests in one
    // segment, three responses in order.
    r = Exchange(conn.get(),
                 "GET /files/f0.bin HTTP/1.1\r\n\r\n"
                 "GET /nope HTTP/1.1\r\n\r\n"
                 "GET /dyn/add?a=1&b=2 HTTP/1.1\r\n\r\n",
                 3);
    OSKIT_ASSERT(r[0].status == 200 && r[0].body.size() == kBlobSize);
    OSKIT_ASSERT(r[1].status == 404);
    OSKIT_ASSERT(r[2].status == 200 && r[2].body == "3\n");
    ++checks_passed;

    // Connection: close — the server must answer then shut the stream.
    r = Exchange(conn.get(),
                 "GET /index.html HTTP/1.1\r\nConnection: close\r\n\r\n", 1);
    OSKIT_ASSERT(r[0].status == 200 && !r[0].keep_alive);
    char buf[16];
    size_t n = 0;
    OSKIT_ASSERT(Ok(conn->Recv(buf, sizeof(buf), &n)) && n == 0);  // EOF
    ++checks_passed;

    // Fresh connection: quit route drains the server.
    ComPtr<Socket> quit = browser.MakeSocket(SockType::kStream);
    OSKIT_ASSERT(Ok(quit->Connect(target)));
    r = Exchange(quit.get(), "GET /__quit HTTP/1.1\r\n\r\n", 1);
    OSKIT_ASSERT(r[0].status == 200);
    ++checks_passed;
  });

  world.RunToCompletion();

  OSKIT_ASSERT(checks_passed == 6);
  OSKIT_ASSERT(dyn_hits == 2);
  uint64_t sg_frames = server.trace.registry.Value("glue.send.sg_frames");
  std::printf(
      "netcomputer v2: %d browser checks passed, %llu dyn pages, "
      "%llu SG frames, fs_read self %llu ns\n",
      checks_passed, static_cast<unsigned long long>(dyn_hits),
      static_cast<unsigned long long>(sg_frames),
      static_cast<unsigned long long>(
          server.trace.registry.Value("http.span.fs_read.self_ns")));
  return 0;
}
