// netcomputer — the Java/PC case study (§6.1.4), with the KVM bytecode
// machine standing in for the Kaffe JVM.
//
// A simulated PC boots with a KVM program as a MultiBoot boot module, reads
// it back through the boot-module filesystem and the POSIX layer (exactly
// how Java/PC loaded its .class files, §6.2.2), verifies it, and runs it.
// The VM's syscall layer is bound to the OSKit substrate: console output
// goes to the minimal C library, and sockets go to the FreeBSD-derived
// stack through the same factory interface the C library uses (§5).
//
// The program is a tiny line-oriented server: for each connection it reads
// a request line and answers with a banner — a miniature of the paper's
// Java-based web server.  A second simulated PC plays the browser.

#include <cstdio>
#include <string>
#include <vector>

#include "src/boot/memfs.h"
#include "src/libc/posix.h"
#include "src/testbed/testbed.h"
#include "src/vm/kvm.h"

using namespace oskit;
using namespace oskit::testbed;

namespace {

// Embedding-specific syscalls (>= 16): the netcomputer's "native methods".
constexpr uint16_t kSysNetListen = 16;  // pop port -> push handle
constexpr uint16_t kSysNetAccept = 17;  // pop handle -> push conn handle
constexpr uint16_t kSysNetRecv = 18;    // pop conn -> push byte (or -1 on EOF)
constexpr uint16_t kSysNetSend = 19;    // pop byte, pop conn
constexpr uint16_t kSysNetClose = 20;   // pop handle

class NetComputerSys : public vm::SysHandler {
 public:
  NetComputerSys(Host* host, std::string* console) : host_(host), console_(console) {}

  Error Syscall(uint16_t number, vm::Vm& vm, int thread) override {
    switch (number) {
      case vm::kSysPutChar:
        console_->push_back(static_cast<char>(vm.Pop(thread)));
        return Error::kOk;
      case vm::kSysPutInt: {
        char buf[32];
        snprintf(buf, sizeof(buf), "%lld",
                 static_cast<long long>(vm.Pop(thread)));
        console_->append(buf);
        return Error::kOk;
      }
      case vm::kSysTimeNs:
        vm.Push(thread, static_cast<int64_t>(host_->machine->clock().Now()));
        return Error::kOk;
      case kSysNetListen: {
        auto port = static_cast<uint16_t>(vm.Pop(thread));
        ComPtr<Socket> sock = host_->MakeSocket(SockType::kStream);
        Error err = sock->Bind(SockAddr{kInetAny, port});
        if (Ok(err)) {
          err = sock->Listen(4);
        }
        if (!Ok(err)) {
          return err;
        }
        vm.Push(thread, StoreHandle(std::move(sock)));
        return Error::kOk;
      }
      case kSysNetAccept: {
        Socket* listener = HandleToSocket(vm.Pop(thread));
        if (listener == nullptr) {
          return Error::kBadF;
        }
        SockAddr peer;
        ComPtr<Socket> conn;
        Error err = listener->Accept(&peer, conn.Receive());
        if (!Ok(err)) {
          return err;
        }
        vm.Push(thread, StoreHandle(std::move(conn)));
        return Error::kOk;
      }
      case kSysNetRecv: {
        Socket* conn = HandleToSocket(vm.Pop(thread));
        if (conn == nullptr) {
          return Error::kBadF;
        }
        char byte = 0;
        size_t n = 0;
        Error err = conn->Recv(&byte, 1, &n);
        if (!Ok(err)) {
          return err;
        }
        vm.Push(thread, n == 0 ? -1 : static_cast<uint8_t>(byte));
        return Error::kOk;
      }
      case kSysNetSend: {
        char byte = static_cast<char>(vm.Pop(thread));
        Socket* conn = HandleToSocket(vm.Pop(thread));
        if (conn == nullptr) {
          return Error::kBadF;
        }
        size_t n = 0;
        return conn->Send(&byte, 1, &n);
      }
      case kSysNetClose: {
        int64_t handle = vm.Pop(thread);
        if (handle < 0 || static_cast<size_t>(handle) >= handles_.size()) {
          return Error::kBadF;
        }
        handles_[handle].Reset();
        return Error::kOk;
      }
      default:
        return Error::kNotImpl;
    }
  }

 private:
  int64_t StoreHandle(ComPtr<Socket> sock) {
    handles_.push_back(std::move(sock));
    return static_cast<int64_t>(handles_.size()) - 1;
  }

  Socket* HandleToSocket(int64_t handle) {
    if (handle < 0 || static_cast<size_t>(handle) >= handles_.size()) {
      return nullptr;
    }
    return handles_[handle].get();
  }

  Host* host_;
  std::string* console_;
  std::vector<ComPtr<Socket>> handles_;
};

// Emits KVM assembly for the server program.
std::string ServerProgram(int connections, const std::string& banner) {
  std::string source;
  source += "push 80\nsys 16\ngstore 0\n";                 // g0 = listen(80)
  source += "push " + std::to_string(connections) + "\ngstore 2\n";
  source += "serve:\n";
  source += "gload 0\nsys 17\ngstore 1\n";                 // g1 = accept(g0)
  source += "readloop:\n";
  source += "gload 1\nsys 18\n";                           // byte = recv(g1)
  source += "dup\npush 0\nlt\njnz eof\n";                  // byte < 0: EOF
  source += "push 10\neq\njnz respond\n";                  // newline: answer
  source += "jmp readloop\n";
  source += "eof:\npop\njmp closecon\n";
  source += "respond:\n";
  for (char c : banner) {
    source += "gload 1\npush " + std::to_string(static_cast<int>(c)) + "\nsys 19\n";
  }
  source += "closecon:\n";
  source += "gload 1\nsys 20\n";                           // close(g1)
  source += "gload 2\npush 1\nsub\ngstore 2\n";            // --g2
  source += "gload 2\njnz serve\n";
  source += "halt\n";
  return source;
}

}  // namespace

int main() {
  EthernetWire::Config wire;
  wire.bits_per_second = 100 * 1000 * 1000;
  World world(wire);
  Host& server = world.AddHost("netpc", NetConfig::kOskit);
  Host& client = world.AddHost("browser", NetConfig::kOskit);

  const std::string kBanner = "KVM/OSKit network computer ready\n";
  constexpr int kConnections = 3;

  // "Compile" the program and hand it to the boot loader as a module, the
  // Java/PC .class-files-in-a-bmod flow.
  std::vector<uint8_t> bytecode;
  std::string asm_error;
  if (!Ok(vm::Assemble(ServerProgram(kConnections, kBanner), &bytecode, &asm_error))) {
    std::fprintf(stderr, "assembly failed: %s\n", asm_error.c_str());
    return 1;
  }
  BootLoader loader(&server.machine->phys());
  loader.AddModule("server.kvm entry=0", bytecode.data(), bytecode.size());
  MultiBootInfo info = loader.Load("netcomputer");

  std::string vm_console;
  int served_ok = 0;

  // The network computer's kernel: load the module through bmodfs + POSIX,
  // verify, run.
  world.sim().Spawn("netpc/kvm", [&] {
    auto bmodfs = MemFs::BuildBmodFs(&server.machine->phys(), info);
    ComPtr<Dir> root;
    bmodfs->GetRoot(root.Receive());
    libc::PosixIo posix;
    posix.SetRoot(std::move(root));
    int fd = posix.Open("/server.kvm", libc::kORdOnly);
    OSKIT_ASSERT(fd >= 0);
    FileStat st;
    posix.Fstat(fd, &st);
    std::vector<uint8_t> program(st.size);
    OSKIT_ASSERT(posix.Read(fd, program.data(), program.size()) ==
                 static_cast<long>(program.size()));
    posix.Close(fd);

    NetComputerSys sys(&server, &vm_console);
    vm::Vm machine(std::move(program), &sys);
    std::string problem;
    OSKIT_ASSERT_MSG(Ok(machine.Verify(&problem)), problem.c_str());
    machine.SpawnThread(0);
    Error err = machine.Run();
    OSKIT_ASSERT_MSG(Ok(err), "VM faulted");
    std::printf("netpc: VM ran %llu instructions\n",
                static_cast<unsigned long long>(machine.instructions_executed()));
  });

  // The "browser": three request/response exchanges.
  world.sim().Spawn("browser", [&] {
    for (int i = 0; i < kConnections; ++i) {
      ComPtr<Socket> conn = client.MakeSocket(SockType::kStream);
      Error err = conn->Connect(SockAddr{server.addr, 80});
      OSKIT_ASSERT(Ok(err));
      const char request[] = "GET /\n";
      size_t n = 0;
      OSKIT_ASSERT(Ok(conn->Send(request, sizeof(request) - 1, &n)));
      std::string reply;
      char buf[128];
      for (;;) {
        err = conn->Recv(buf, sizeof(buf), &n);
        OSKIT_ASSERT(Ok(err));
        if (n == 0) {
          break;
        }
        reply.append(buf, n);
      }
      std::printf("browser: connection %d got %zu bytes: %s", i + 1, reply.size(),
                  reply.c_str());
      if (reply == kBanner) {
        ++served_ok;
      }
    }
  });

  world.RunToCompletion();
  if (served_ok != kConnections) {
    std::fprintf(stderr, "netcomputer: expected %d good replies, got %d\n",
                 kConnections, served_ok);
    return 1;
  }
  std::printf("netcomputer: %d connections served by bytecode on the bare "
              "(simulated) metal\n", served_ok);
  return 0;
}
