// Quickstart: the paper's "Hello World kernel" (§3.2).
//
// "Using the OSKit, a 'Hello World' kernel is as simple as an ordinary
// 'Hello World' application in C": the boot loader places the kernel and a
// boot module, the kernel support library brings the machine up, and the
// client provides nothing but main().
//
// This example boots one simulated PC, prints through the minimal C
// library's printf (which reaches the console UART via the putchar
// override, §4.3.1), lists the boot modules it was handed, and reads one of
// them back through the boot-module filesystem (§6.2.2).

#include <cstdio>

#include "src/boot/memfs.h"
#include "src/kern/kernel.h"
#include "src/libc/posix.h"
#include "src/libc/stdio.h"

using namespace oskit;

int main() {
  Simulation sim;
  Machine machine(&sim, Machine::Config{.name = "hello-pc"});

  // The "boot loader" side: load a kernel command line and one module.
  BootLoader loader(&machine.phys());
  const char kMotd[] = "Welcome to the OSKit reproduction!\n";
  loader.AddModule("motd.txt greeting", kMotd, sizeof(kMotd) - 1);
  MultiBootInfo info = loader.Load("quickstart verbose=1");

  // The kernel side: bring-up + client main.
  KernelEnv kernel(&machine, info);

  // Bind the minimal C library's putchar to the base console (§4.2.1).
  libc::ConsoleOut out;
  out.SetPutchar(
      +[](void* ctx, int c) -> int {
        return static_cast<BaseConsole*>(ctx)->Putchar(c);
      },
      &kernel.console());

  kernel.Boot([&](int argc, char** argv) {
    out.Printf("Hello, World from a simulated OSKit kernel!\n");
    out.Printf("booted with %d args:", argc);
    for (int i = 0; i < argc; ++i) {
      out.Printf(" %s", argv[i]);
    }
    out.Printf("\n");
    out.Printf("memory: %u KB low, %u KB high\n", kernel.boot_info().mem_lower_kb,
               kernel.boot_info().mem_upper_kb);

    // Boot modules, straight from the MultiBoot info (§3.1).
    for (const BootModule& module : kernel.boot_info().modules) {
      out.Printf("module '%s' at [%#llx, %#llx)\n", module.string.c_str(),
                 static_cast<unsigned long long>(module.start),
                 static_cast<unsigned long long>(module.end));
    }

    // And again through the bmod filesystem + POSIX layer (§6.2.2).
    auto bmodfs = MemFs::BuildBmodFs(&machine.phys(), kernel.boot_info());
    ComPtr<Dir> root;
    bmodfs->GetRoot(root.Receive());
    libc::PosixIo posix;
    posix.SetRoot(std::move(root));
    int fd = posix.Open("/motd.txt", libc::kORdOnly);
    if (fd >= 0) {
      char buf[128] = {};
      long n = posix.Read(fd, buf, sizeof(buf) - 1);
      out.Printf("motd.txt (%ld bytes): %s", n, buf);
      posix.Close(fd);
    }

    // Exercise a hardware-level facility the OSKit exposes (§6.2.4):
    // install a custom breakpoint handler, then hit it.
    int breakpoints = 0;
    kernel.SetTrapHandler(kTrapBreakpoint, [&](TrapFrame& frame) {
      ++breakpoints;
      out.Printf("caught breakpoint #%d (trap %u)\n", breakpoints, frame.trapno);
      return true;
    });
    machine.cpu().RaiseTrap(kTrapBreakpoint);

    out.Printf("quickstart kernel exiting\n");
    return 0;
  });

  Simulation::RunResult result = sim.Run();

  // Mirror the simulated console onto the host terminal.
  std::fputs(machine.console_uart().TakeOutput().c_str(), stdout);
  if (result != Simulation::RunResult::kAllDone || kernel.exit_code() != 0) {
    std::fprintf(stderr, "quickstart failed\n");
    return 1;
  }
  std::printf("--- simulated kernel ran to completion (exit %d) ---\n",
              kernel.exit_code());
  return 0;
}
