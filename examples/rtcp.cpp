// rtcp — the paper's §5 TCP latency example: "a second benchmark to measure
// latency, similar to lbench's lat_tcp, called rtcp, which measures the time
// required for a 1-byte round trip."
//
// Usage: rtcp [round_trips]   (default 2000)

#include <cstdio>
#include <cstdlib>

#include "src/testbed/ttcp.h"

using namespace oskit;
using namespace oskit::testbed;

int main(int argc, char** argv) {
  uint64_t round_trips = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 2000;

  EthernetWire::Config wire;
  wire.bits_per_second = 100 * 1000 * 1000;
  wire.propagation_ns = 5 * kNsPerUs;

  World world(wire);
  world.AddHost("server", NetConfig::kOskit);
  world.AddHost("client", NetConfig::kOskit);

  std::printf("rtcp: %llu one-byte round trips, OSKit configuration\n",
              static_cast<unsigned long long>(round_trips));

  RtcpResult result = RunRtcp(world, round_trips);

  std::printf("simulated time : %.3f s -> %.1f us per round trip "
              "(wire + protocol)\n",
              result.sim_ns / 1e9, result.UsecPerRoundTripSim());
  std::printf("host CPU time  : %.3f s -> %.2f us of software path per "
              "round trip\n",
              result.wall_seconds, result.UsecPerRoundTripWall());
  return 0;
}
