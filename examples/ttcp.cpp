// ttcp — the paper's §5 TCP bandwidth example, wired exactly as Figure 3:
//
//   ttcp application code (BSD socket calls)
//     -> minimal C library (socket factory registered per §5)
//       -> FreeBSD-derived TCP/IP component (mbufs inside)
//         -> oskit_bufio COM boundary
//           -> encapsulated Linux Ethernet driver (skbuffs inside)
//             -> simulated NIC -> 100 Mbps simulated wire
//
// Two simulated PCs run the transfer; the program reports achieved
// bandwidth and the glue-copy statistics that explain the send/receive
// asymmetry of Table 1.
//
// Usage: ttcp [block_count [block_size]]   (defaults: 4096 x 4096 bytes)

#include <cstdio>
#include <cstdlib>

#include "src/testbed/ttcp.h"

using namespace oskit;
using namespace oskit::testbed;

int main(int argc, char** argv) {
  size_t block_count = argc > 1 ? std::strtoul(argv[1], nullptr, 0) : 4096;
  size_t block_size = argc > 2 ? std::strtoul(argv[2], nullptr, 0) : 4096;

  EthernetWire::Config wire;
  wire.bits_per_second = 100 * 1000 * 1000;  // the paper's 100 Mbps Ethernet
  wire.propagation_ns = 5 * kNsPerUs;

  World world(wire);
  world.AddHost("receiver", NetConfig::kOskit);
  world.AddHost("sender", NetConfig::kOskit);

  std::printf("ttcp: %zu blocks x %zu bytes = %.1f MB, OSKit configuration\n",
              block_count, block_size,
              block_count * block_size / 1048576.0);

  TtcpResult result = RunTtcp(world, block_size, block_count);

  std::printf("transferred      : %zu bytes\n", result.bytes_transferred);
  std::printf("simulated time   : %.3f s  -> %.1f Mbit/s (wire-limited)\n",
              result.sim_ns / 1e9, result.MbitPerSecSim());
  std::printf("host CPU time    : %.3f s  -> %.1f Mbit/s of software path\n",
              result.wall_seconds, result.MbitPerSecWall());
  std::printf("glue send copies : %llu packets, %llu bytes (the Table 1 copy)\n",
              static_cast<unsigned long long>(result.sender_glue_copies),
              static_cast<unsigned long long>(result.sender_glue_copied_bytes));

  const auto& stats = world.host(1).stack->counters();
  std::printf("sender TCP stats : %llu segments out, %llu retransmits\n",
              static_cast<unsigned long long>(stats.tcp_out),
              static_cast<unsigned long long>(stats.tcp_retransmits));
  return 0;
}
