#include "src/aio/stack.h"

#include <cstring>

#include "src/base/panic.h"

namespace oskit::aio {

namespace {

// Local FNV-1a (the journal uses the same function; src/aio cannot link
// src/fs — layering — so the 6 lines are duplicated rather than exported).
uint64_t Fnv64(const uint8_t* data, size_t len) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < len; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace

// ---------------------------------------------------------------------------
// SyncRingAdapter
// ---------------------------------------------------------------------------

SyncRingAdapter::SyncRingAdapter(ComPtr<BlkIo> below, trace::TraceEnv* trace)
    : below_(std::move(below)) {
  barrier_ = ComPtr<BlkIoBarrier>::FromQuery(below_.get());
  trace::TraceEnv* tenv = trace::ResolveTraceEnv(trace);
  trace_binding_.Bind(&tenv->registry, {{"aio.ring.sync_sqes", &sqes_}});
}

ComPtr<SyncRingAdapter> SyncRingAdapter::Wrap(BlkIo* below,
                                              trace::TraceEnv* trace) {
  OSKIT_ASSERT(below != nullptr);
  return ComPtr<SyncRingAdapter>(
      new SyncRingAdapter(ComPtr<BlkIo>::Retain(below), trace));
}

Error SyncRingAdapter::Query(const Guid& iid, void** out) {
  if (iid == IUnknown::kIid || iid == BlkIo::kIid) {
    AddRef();
    *out = static_cast<BlkIo*>(this);
    return Error::kOk;
  }
  if (iid == BlkIoBarrier::kIid) {
    AddRef();
    *out = static_cast<BlkIoBarrier*>(this);
    return Error::kOk;
  }
  if (iid == BlkIoRing::kIid) {
    AddRef();
    *out = static_cast<BlkIoRing*>(this);
    return Error::kOk;
  }
  *out = nullptr;
  return Error::kNoInterface;
}

Error SyncRingAdapter::Submit(const AioSqe* sqes, size_t count,
                              size_t* out_accepted) {
  *out_accepted = 0;
  if (sqes == nullptr && count != 0) {
    return Error::kInval;
  }
  size_t space = kRingDepth > cq_.size() ? kRingDepth - cq_.size() : 0;
  size_t accepted = count < space ? count : space;
  sqes_ += accepted;
  for (size_t i = 0; i < accepted; ++i) {
    const AioSqe& s = sqes[i];
    AioCqe cqe;
    cqe.tag = s.tag;
    switch (s.op) {
      case AioOp::kRead:
        cqe.status = below_->Read(s.buf, s.offset, s.len, &cqe.actual);
        break;
      case AioOp::kWrite:
        cqe.status = below_->Write(s.buf, s.offset, s.len, &cqe.actual);
        break;
      case AioOp::kFlush:
        cqe.status = Flush();
        break;
    }
    cq_.push_back(cqe);
  }
  *out_accepted = accepted;
  return Error::kOk;
}

Error SyncRingAdapter::Reap(AioCqe* out_cqes, size_t cap, size_t* out_count) {
  size_t n = 0;
  while (n < cap && !cq_.empty()) {
    out_cqes[n++] = cq_.front();
    cq_.pop_front();
  }
  *out_count = n;
  return Error::kOk;
}

// ---------------------------------------------------------------------------
// StripeBlkIo
// ---------------------------------------------------------------------------

StripeBlkIo::StripeBlkIo(std::vector<ComPtr<BlkIo>> children,
                         uint32_t stripe_unit, trace::TraceEnv* trace)
    : children_(std::move(children)), stripe_unit_(stripe_unit) {
  OSKIT_ASSERT_MSG(!children_.empty(), "stripe needs at least one member");
  OSKIT_ASSERT(stripe_unit_ > 0);
  off_t64 min_child = ~off_t64{0};
  for (auto& child : children_) {
    uint32_t bs = child->GetBlockSize();
    OSKIT_ASSERT_MSG(stripe_unit_ % bs == 0,
                     "stripe unit must be a multiple of the child block size");
    if (bs > block_size_) {
      block_size_ = bs;
    }
    off_t64 child_size = 0;
    OSKIT_ASSERT(Ok(child->GetSize(&child_size)));
    if (child_size < min_child) {
      min_child = child_size;
    }
    barriers_.push_back(ComPtr<BlkIoBarrier>::FromQuery(child.get()));
  }
  size_ = (min_child / stripe_unit_) * stripe_unit_ * children_.size();
  trace::TraceEnv* tenv = trace::ResolveTraceEnv(trace);
  trace_binding_.Bind(&tenv->registry, {{"aio.stripe.reads", &reads_},
                                        {"aio.stripe.writes", &writes_},
                                        {"aio.stripe.flushes", &flushes_}});
}

ComPtr<StripeBlkIo> StripeBlkIo::Create(std::vector<ComPtr<BlkIo>> children,
                                        uint32_t stripe_unit,
                                        trace::TraceEnv* trace) {
  return ComPtr<StripeBlkIo>(
      new StripeBlkIo(std::move(children), stripe_unit, trace));
}

Error StripeBlkIo::Query(const Guid& iid, void** out) {
  if (iid == IUnknown::kIid || iid == BlkIo::kIid) {
    AddRef();
    *out = static_cast<BlkIo*>(this);
    return Error::kOk;
  }
  if (iid == BlkIoBarrier::kIid) {
    AddRef();
    *out = static_cast<BlkIoBarrier*>(this);
    return Error::kOk;
  }
  *out = nullptr;
  return Error::kNoInterface;
}

// RAID0 address map: unit index `offset / unit` rotates over the members;
// member-local offset re-linearizes the member's own units.
template <typename OpFn>
Error StripeBlkIo::ForSpans(off_t64 offset, size_t amount, size_t* out_actual,
                            OpFn&& op) {
  *out_actual = 0;
  if (offset > size_) {
    return Error::kOutOfRange;
  }
  if (amount > size_ - offset) {
    if (offset + amount < offset) {
      return Error::kInval;  // shared wrap discipline (tests/bounds_abuse.h)
    }
    amount = size_ - offset;
  }
  size_t done = 0;
  while (done < amount) {
    off_t64 at = offset + done;
    off_t64 unit = at / stripe_unit_;
    size_t child = static_cast<size_t>(unit % children_.size());
    off_t64 child_unit = unit / children_.size();
    uint32_t in_unit = static_cast<uint32_t>(at % stripe_unit_);
    size_t span = stripe_unit_ - in_unit;
    if (span > amount - done) {
      span = amount - done;
    }
    off_t64 child_off = child_unit * stripe_unit_ + in_unit;
    size_t actual = 0;
    Error err = op(children_[child].get(), child_off, done, span, &actual);
    done += actual;
    if (!Ok(err)) {
      *out_actual = done;
      return err;
    }
    if (actual != span) {
      break;  // short child IO: report the prefix
    }
  }
  *out_actual = done;
  return Error::kOk;
}

Error StripeBlkIo::Read(void* buf, off_t64 offset, size_t amount,
                        size_t* out_actual) {
  ++reads_;
  auto* out = static_cast<uint8_t*>(buf);
  return ForSpans(offset, amount, out_actual,
                  [out](BlkIo* child, off_t64 child_off, size_t done,
                        size_t span, size_t* actual) {
                    return child->Read(out + done, child_off, span, actual);
                  });
}

Error StripeBlkIo::Write(const void* buf, off_t64 offset, size_t amount,
                         size_t* out_actual) {
  ++writes_;
  const auto* in = static_cast<const uint8_t*>(buf);
  return ForSpans(offset, amount, out_actual,
                  [in](BlkIo* child, off_t64 child_off, size_t done,
                       size_t span, size_t* actual) {
                    return child->Write(in + done, child_off, span, actual);
                  });
}

Error StripeBlkIo::Flush() {
  ++flushes_;
  // Every member must drain; keep flushing after a failure and surface the
  // first error (a half-flushed stripe set is not durable).
  Error first = Error::kOk;
  for (auto& barrier : barriers_) {
    if (!barrier) {
      continue;  // durable-by-default member
    }
    Error err = barrier->Flush();
    if (!Ok(err) && Ok(first)) {
      first = err;
    }
  }
  return first;
}

// ---------------------------------------------------------------------------
// ChecksumBlkIo
// ---------------------------------------------------------------------------

ChecksumBlkIo::ChecksumBlkIo(ComPtr<BlkIo> below, trace::TraceEnv* trace)
    : below_(std::move(below)), granule_(below_->GetBlockSize()) {
  OSKIT_ASSERT(granule_ > 0);
  barrier_ = ComPtr<BlkIoBarrier>::FromQuery(below_.get());
  trace::TraceEnv* tenv = trace::ResolveTraceEnv(trace);
  trace_binding_.Bind(&tenv->registry,
                      {{"aio.checksum.updates", &updates_},
                       {"aio.checksum.verified", &verified_},
                       {"aio.checksum.mismatches", &mismatches_}});
}

ComPtr<ChecksumBlkIo> ChecksumBlkIo::Create(BlkIo* below,
                                            trace::TraceEnv* trace) {
  OSKIT_ASSERT(below != nullptr);
  return ComPtr<ChecksumBlkIo>(
      new ChecksumBlkIo(ComPtr<BlkIo>::Retain(below), trace));
}

Error ChecksumBlkIo::Query(const Guid& iid, void** out) {
  if (iid == IUnknown::kIid || iid == BlkIo::kIid) {
    AddRef();
    *out = static_cast<BlkIo*>(this);
    return Error::kOk;
  }
  if (iid == BlkIoBarrier::kIid) {
    AddRef();
    *out = static_cast<BlkIoBarrier*>(this);
    return Error::kOk;
  }
  *out = nullptr;
  return Error::kNoInterface;
}

Error ChecksumBlkIo::Read(void* buf, off_t64 offset, size_t amount,
                          size_t* out_actual) {
  *out_actual = 0;
  if (offset + amount < offset) {
    return Error::kInval;
  }
  size_t actual = 0;
  Error err = below_->Read(buf, offset, amount, &actual);
  if (!Ok(err)) {
    return err;
  }
  // Verify every granule the read fully covered.  A mismatch means the
  // device returned different bytes than the last acknowledged write put
  // there — torn sector, scribble, bit rot — and the caller gets kIo, not
  // the corrupt data.
  const auto* data = static_cast<const uint8_t*>(buf);
  off_t64 first = (offset + granule_ - 1) / granule_;           // round up
  off_t64 last = (offset + actual) / granule_;                  // round down
  for (off_t64 g = first; g < last; ++g) {
    auto it = table_.find(g);
    if (it == table_.end()) {
      continue;  // unchecked: no write observed this power cycle
    }
    const uint8_t* granule_data = data + (g * granule_ - offset);
    if (Fnv64(granule_data, granule_) != it->second) {
      ++mismatches_;
      return Error::kIo;
    }
    ++verified_;
  }
  *out_actual = actual;
  return Error::kOk;
}

Error ChecksumBlkIo::Write(const void* buf, off_t64 offset, size_t amount,
                           size_t* out_actual) {
  *out_actual = 0;
  if (offset + amount < offset) {
    return Error::kInval;
  }
  size_t actual = 0;
  Error err = below_->Write(buf, offset, amount, &actual);
  if (!Ok(err)) {
    return err;
  }
  const auto* data = static_cast<const uint8_t*>(buf);
  off_t64 begin = offset / granule_;
  off_t64 end = (offset + actual + granule_ - 1) / granule_;
  for (off_t64 g = begin; g < end; ++g) {
    off_t64 g_start = g * granule_;
    if (g_start >= offset && g_start + granule_ <= offset + actual) {
      table_[g] = Fnv64(data + (g_start - offset), granule_);
      ++updates_;
    } else {
      // Partial edge: the layer does not read-to-merge, so the granule's
      // post-write digest is unknown — drop it back to unchecked.
      table_.erase(g);
    }
  }
  *out_actual = actual;
  return Error::kOk;
}

}  // namespace oskit::aio
