// Stackable block-IO layers over the COM block boundary (ROADMAP item 2,
// after the "Fast & Flexible IO" compositional-storage model).
//
// Each layer implements BlkIo + BlkIoBarrier and sits on whatever BlkIo it
// is given — a raw IDE device, a partition view, another layer — so any
// composition order works and a filesystem mounts on the top of the stack
// without knowing the stack exists.  The PR-4 crash campaign runs unchanged
// over every permutation (bench/crash_campaign --stack), which is the
// regression net for the composition invariants:
//
//  - Barrier propagation: Flush() on a layer reaches every underlying
//    device's write cache (striping fans it out to all children; layers
//    whose child exports no BlkIoBarrier treat it as durable-by-default,
//    same as the block cache).
//  - Bounds discipline: every layer applies the shared unsigned-wrap rules
//    (tests/bounds_abuse.h) before touching a child.
//  - The checksum layer's state is VOLATILE by design.  A persistent
//    per-block checksum table cannot be made crash-consistent from below
//    the journal (the data write and the table write tear independently
//    under a power cut, turning replay into spurious kIo), so the table
//    lives in memory, detects corruption within a power cycle — a torn or
//    scribbled sector read back while the machine is up — and leaves
//    cross-cycle integrity to the journal's own checksums, exactly the
//    split the journal format already implements.
//
// WrapSyncRing adapts any plain BlkIo to the BlkIoRing interface by
// executing submissions eagerly, so ring consumers (the journal's batched
// commit) work over every device; devices with a native ring (the IDE glue)
// are preferred by querying the device first.

#ifndef OSKIT_SRC_AIO_STACK_H_
#define OSKIT_SRC_AIO_STACK_H_

#include <deque>
#include <unordered_map>
#include <vector>

#include "src/com/aio.h"
#include "src/com/blkio.h"
#include "src/com/iunknown.h"
#include "src/trace/trace.h"

namespace oskit::aio {

// ---------------------------------------------------------------------------
// Sync-over-async adapter: BlkIoRing for any BlkIo.
// ---------------------------------------------------------------------------

class SyncRingAdapter final : public BlkIo,
                              public BlkIoBarrier,
                              public BlkIoRing,
                              public RefCounted<SyncRingAdapter> {
 public:
  static constexpr size_t kRingDepth = 64;

  // Takes a reference on `below`; the adapter also passes plain BlkIo and
  // barrier calls through, so it can sit in a stack like any other layer.
  static ComPtr<SyncRingAdapter> Wrap(BlkIo* below,
                                      trace::TraceEnv* trace = nullptr);

  Error Query(const Guid& iid, void** out) override;
  OSKIT_REFCOUNTED_BOILERPLATE()

  uint32_t GetBlockSize() override { return below_->GetBlockSize(); }
  Error Read(void* buf, off_t64 offset, size_t amount, size_t* out_actual) override {
    return below_->Read(buf, offset, amount, out_actual);
  }
  Error Write(const void* buf, off_t64 offset, size_t amount,
              size_t* out_actual) override {
    return below_->Write(buf, offset, amount, out_actual);
  }
  Error GetSize(off_t64* out_size) override { return below_->GetSize(out_size); }
  Error SetSize(off_t64 new_size) override { return below_->SetSize(new_size); }

  Error Flush() override { return barrier_ ? barrier_->Flush() : Error::kOk; }

  Error Submit(const AioSqe* sqes, size_t count, size_t* out_accepted) override;
  Error Reap(AioCqe* out_cqes, size_t cap, size_t* out_count) override;
  size_t Occupancy() override { return cq_.size(); }

 private:
  friend class RefCounted<SyncRingAdapter>;
  SyncRingAdapter(ComPtr<BlkIo> below, trace::TraceEnv* trace);
  ~SyncRingAdapter() = default;

  ComPtr<BlkIo> below_;
  ComPtr<BlkIoBarrier> barrier_;
  std::deque<AioCqe> cq_;
  trace::Counter sqes_;
  trace::CounterBlock trace_binding_;
};

// ---------------------------------------------------------------------------
// Striping layer: RAID0 over N children.
// ---------------------------------------------------------------------------

class StripeBlkIo final : public BlkIo,
                          public BlkIoBarrier,
                          public RefCounted<StripeBlkIo> {
 public:
  // `stripe_unit` is the bytes of consecutive address space each child
  // serves per rotation; it must be a positive multiple of every child's
  // block size.  Capacity is the smallest child's, rounded down to whole
  // units, times the child count — RAID0.
  static ComPtr<StripeBlkIo> Create(std::vector<ComPtr<BlkIo>> children,
                                    uint32_t stripe_unit,
                                    trace::TraceEnv* trace = nullptr);

  Error Query(const Guid& iid, void** out) override;
  OSKIT_REFCOUNTED_BOILERPLATE()

  uint32_t GetBlockSize() override { return block_size_; }
  Error Read(void* buf, off_t64 offset, size_t amount, size_t* out_actual) override;
  Error Write(const void* buf, off_t64 offset, size_t amount,
              size_t* out_actual) override;
  Error GetSize(off_t64* out_size) override {
    *out_size = size_;
    return Error::kOk;
  }
  Error SetSize(off_t64) override { return Error::kNotImpl; }

  // Fans the barrier out to EVERY child: a flush above the stripe is only
  // durable when all members drained their caches.
  Error Flush() override;

 private:
  friend class RefCounted<StripeBlkIo>;
  StripeBlkIo(std::vector<ComPtr<BlkIo>> children, uint32_t stripe_unit,
              trace::TraceEnv* trace);
  ~StripeBlkIo() = default;

  // Runs `amount` bytes at `offset` through per-child spans.
  template <typename OpFn>
  Error ForSpans(off_t64 offset, size_t amount, size_t* out_actual, OpFn&& op);

  std::vector<ComPtr<BlkIo>> children_;
  std::vector<ComPtr<BlkIoBarrier>> barriers_;  // parallel; may hold nulls
  uint32_t stripe_unit_;
  uint32_t block_size_ = 1;
  off_t64 size_ = 0;
  trace::Counter reads_;
  trace::Counter writes_;
  trace::Counter flushes_;
  trace::CounterBlock trace_binding_;
};

// ---------------------------------------------------------------------------
// Per-block checksum/integrity layer.
// ---------------------------------------------------------------------------

class ChecksumBlkIo final : public BlkIo,
                            public BlkIoBarrier,
                            public RefCounted<ChecksumBlkIo> {
 public:
  static ComPtr<ChecksumBlkIo> Create(BlkIo* below,
                                      trace::TraceEnv* trace = nullptr);

  Error Query(const Guid& iid, void** out) override;
  OSKIT_REFCOUNTED_BOILERPLATE()

  uint32_t GetBlockSize() override { return granule_; }
  // Reads verify every fully covered granule against the recorded digest
  // and surface kIo — never the corrupt bytes — on a mismatch.  Granules
  // no write has covered this power cycle are unchecked (entry absent).
  Error Read(void* buf, off_t64 offset, size_t amount, size_t* out_actual) override;
  // Writes record the digest of every fully covered granule; a partial
  // edge granule invalidates its entry (the layer never reads-to-merge, so
  // it cannot know the merged bytes).
  Error Write(const void* buf, off_t64 offset, size_t amount,
              size_t* out_actual) override;
  Error GetSize(off_t64* out_size) override { return below_->GetSize(out_size); }
  Error SetSize(off_t64) override { return Error::kNotImpl; }

  Error Flush() override { return barrier_ ? barrier_->Flush() : Error::kOk; }

  uint64_t mismatches() const { return mismatches_.value(); }
  size_t tracked_granules() const { return table_.size(); }

 private:
  friend class RefCounted<ChecksumBlkIo>;
  ChecksumBlkIo(ComPtr<BlkIo> below, trace::TraceEnv* trace);
  ~ChecksumBlkIo() = default;

  ComPtr<BlkIo> below_;
  ComPtr<BlkIoBarrier> barrier_;
  uint32_t granule_;
  std::unordered_map<uint64_t, uint64_t> table_;  // granule -> Fnv64
  trace::Counter updates_;
  trace::Counter verified_;
  trace::Counter mismatches_;
  trace::CounterBlock trace_binding_;
};

}  // namespace oskit::aio

#endif  // OSKIT_SRC_AIO_STACK_H_
