#include "src/amm/amm.h"

#include "src/base/panic.h"

namespace oskit {

Amm::Amm(uint64_t lo, uint64_t hi, uint32_t initial_flags, uint32_t free_flags)
    : lo_(lo), hi_(hi), free_flags_(free_flags) {
  OSKIT_ASSERT(lo < hi);
  entries_.emplace(lo, Entry{hi, initial_flags});
}

void Amm::SplitAt(uint64_t addr) {
  if (addr <= lo_ || addr >= hi_) {
    return;
  }
  auto it = entries_.upper_bound(addr);
  OSKIT_ASSERT(it != entries_.begin());
  --it;
  if (it->first == addr) {
    return;  // boundary already exists
  }
  Entry& entry = it->second;
  OSKIT_ASSERT(addr < entry.end);
  uint64_t old_end = entry.end;
  uint32_t flags = entry.flags;
  entry.end = addr;
  entries_.emplace(addr, Entry{old_end, flags});
}

void Amm::JoinAround(uint64_t lo, uint64_t hi) {
  // Merge runs of equal-flag entries in a window slightly wider than
  // [lo, hi) so boundary joins happen too.
  auto it = entries_.upper_bound(lo);
  if (it != entries_.begin()) {
    --it;
    if (it != entries_.begin()) {
      --it;
    }
  }
  while (it != entries_.end() && it->first < hi) {
    auto next = std::next(it);
    if (next == entries_.end()) {
      break;
    }
    if (it->second.end == next->first && it->second.flags == next->second.flags) {
      it->second.end = next->second.end;
      entries_.erase(next);
      continue;  // try to absorb the following entry as well
    }
    it = next;
  }
}

Error Amm::Modify(uint64_t addr, uint64_t size, uint32_t flags) {
  if (size == 0 || addr < lo_ || addr + size > hi_ || addr + size < addr) {
    return Error::kInval;
  }
  SplitAt(addr);
  SplitAt(addr + size);
  auto it = entries_.find(addr);
  OSKIT_ASSERT(it != entries_.end());
  while (it != entries_.end() && it->first < addr + size) {
    it->second.flags = flags;
    ++it;
  }
  JoinAround(addr, addr + size);
  return Error::kOk;
}

Error Amm::Allocate(uint64_t* inout_addr, uint64_t size, uint32_t flags,
                    unsigned align_bits, uint64_t upper_bound) {
  if (fault_->ShouldFail("amm.alloc")) {
    return Error::kNoSpace;
  }
  uint64_t addr = *inout_addr;
  Error err = FindGen(&addr, size, free_flags_, ~uint32_t{0}, align_bits);
  if (!Ok(err)) {
    return Error::kNoSpace;
  }
  if (addr + size > upper_bound) {
    return Error::kNoSpace;
  }
  err = Modify(addr, size, flags);
  if (!Ok(err)) {
    return err;
  }
  *inout_addr = addr;
  return Error::kOk;
}

Error Amm::Lookup(uint64_t addr, uint64_t* out_start, uint64_t* out_size,
                  uint32_t* out_flags) const {
  if (addr < lo_ || addr >= hi_) {
    return Error::kInval;
  }
  auto it = entries_.upper_bound(addr);
  OSKIT_ASSERT(it != entries_.begin());
  --it;
  *out_start = it->first;
  *out_size = it->second.end - it->first;
  *out_flags = it->second.flags;
  return Error::kOk;
}

Error Amm::FindGen(uint64_t* inout_addr, uint64_t size, uint32_t match_value,
                   uint32_t match_mask, unsigned align_bits) const {
  if (size == 0) {
    return Error::kInval;
  }
  uint64_t mask = (uint64_t{1} << align_bits) - 1;
  uint64_t floor = *inout_addr < lo_ ? lo_ : *inout_addr;
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    uint64_t start = it->first;
    uint64_t end = it->second.end;
    if ((it->second.flags & match_mask) != match_value) {
      continue;
    }
    uint64_t addr = start > floor ? start : floor;
    addr = (addr + mask) & ~mask;
    if (addr + size <= end && addr + size > addr) {
      *inout_addr = addr;
      return Error::kOk;
    }
  }
  return Error::kNoSpace;
}

void Amm::Iterate(const std::function<bool(uint64_t, uint64_t, uint32_t)>& visit) const {
  for (const auto& [start, entry] : entries_) {
    if (!visit(start, entry.end - start, entry.flags)) {
      return;
    }
  }
}

uint64_t Amm::BytesWith(uint32_t flags) const {
  uint64_t total = 0;
  for (const auto& [start, entry] : entries_) {
    if (entry.flags == flags) {
      total += entry.end - start;
    }
  }
  return total;
}

void Amm::AuditOrDie() const {
  OSKIT_ASSERT(!entries_.empty());
  uint64_t cursor = lo_;
  uint32_t prev_flags = 0;
  bool first = true;
  for (const auto& [start, entry] : entries_) {
    OSKIT_ASSERT_MSG(start == cursor, "coverage gap or overlap");
    OSKIT_ASSERT_MSG(entry.end > start, "empty entry");
    if (!first) {
      OSKIT_ASSERT_MSG(entry.flags != prev_flags, "unjoined adjacent entries");
    }
    first = false;
    prev_flags = entry.flags;
    cursor = entry.end;
  }
  OSKIT_ASSERT_MSG(cursor == hi_, "map does not reach hi");
}

}  // namespace oskit
