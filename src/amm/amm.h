// Address Map Manager (paper §3.3).
//
// Where the LMM hands out real memory, the AMM manages *address spaces that
// need not map to memory at all*: process address spaces, paging partitions,
// free-block maps, IPC namespaces.  It maintains a totally-ordered set of
// non-overlapping entries covering [lo, hi), each tagged with a client
// flag word; adjacent entries with equal flags are joined automatically and
// entries split as needed by partial-range operations.

#ifndef OSKIT_SRC_AMM_AMM_H_
#define OSKIT_SRC_AMM_AMM_H_

#include <cstdint>
#include <functional>
#include <map>

#include "src/base/error.h"
#include "src/fault/fault.h"

namespace oskit {

class Amm {
 public:
  // Conventional flag values; clients may use any uint32_t vocabulary.
  static constexpr uint32_t kFree = 0;
  static constexpr uint32_t kAllocated = 1;
  static constexpr uint32_t kReserved = 2;

  // Creates a map covering [lo, hi), initially all `initial_flags`.
  // `free_flags` is the value Allocate() hunts for.
  Amm(uint64_t lo, uint64_t hi, uint32_t initial_flags = kFree,
      uint32_t free_flags = kFree);

  uint64_t lo() const { return lo_; }
  uint64_t hi() const { return hi_; }

  // Sets the flags of [addr, addr+size) to `flags`, splitting and joining
  // entries as required.  kInval if the range leaves [lo, hi).
  Error Modify(uint64_t addr, uint64_t size, uint32_t flags);

  // Finds a free range of `size` (optionally aligned to 1<<align_bits and
  // within [*inout_addr, upper_bound)), marks it `flags`, and returns its
  // start in *inout_addr.  kNoSpace when no hole fits.
  Error Allocate(uint64_t* inout_addr, uint64_t size, uint32_t flags,
                 unsigned align_bits = 0, uint64_t upper_bound = ~uint64_t{0});

  // Marks [addr, addr+size) free again.
  Error Deallocate(uint64_t addr, uint64_t size) {
    return Modify(addr, size, free_flags_);
  }

  // Reserves a specific range regardless of its current state.
  Error Reserve(uint64_t addr, uint64_t size, uint32_t flags) {
    return Modify(addr, size, flags);
  }

  // Looks up the entry containing `addr`; returns its flags and extent.
  Error Lookup(uint64_t addr, uint64_t* out_start, uint64_t* out_size,
               uint32_t* out_flags) const;

  // Finds the first range at or after *inout_addr whose flags satisfy
  // (flags & match_mask) == match_value and whose size is >= size.
  Error FindGen(uint64_t* inout_addr, uint64_t size, uint32_t match_value,
                uint32_t match_mask, unsigned align_bits = 0) const;

  // Walks every entry in address order.  Return false from the visitor to
  // stop early.
  void Iterate(const std::function<bool(uint64_t start, uint64_t size,
                                        uint32_t flags)>& visit) const;

  // Number of distinct entries (tests use this to verify join behaviour).
  size_t entry_count() const { return entries_.size(); }

  // Total bytes carrying exactly `flags`.
  uint64_t BytesWith(uint32_t flags) const;

  // Invariant audit: full coverage of [lo, hi), no overlap, no adjacent
  // entries with equal flags.  Panics on violation.
  void AuditOrDie() const;

  // Fault injection: with "amm.alloc" armed, Allocate() fails with
  // kNoSpace on fired calls — the same error a genuinely full map returns.
  void SetFaultEnv(fault::FaultEnv* env) { fault_ = fault::ResolveFaultEnv(env); }

 private:
  struct Entry {
    uint64_t end;    // exclusive
    uint32_t flags;
  };

  // Splits the entry containing `addr` so that an entry boundary falls
  // exactly at `addr` (no-op if one already does or addr is lo_/hi_).
  void SplitAt(uint64_t addr);
  void JoinAround(uint64_t lo, uint64_t hi);

  uint64_t lo_;
  uint64_t hi_;
  uint32_t free_flags_;
  std::map<uint64_t, Entry> entries_;  // keyed by start address
  fault::FaultEnv* fault_ = fault::DefaultFaultEnv();
};

}  // namespace oskit

#endif  // OSKIT_SRC_AMM_AMM_H_
