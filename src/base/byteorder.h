// Network byte-order helpers.
//
// The OSKit is self-sufficient (paper section 4.1): it depends on no installed
// headers.  We follow suit and define our own hton/ntoh rather than pulling in
// <arpa/inet.h>.

#ifndef OSKIT_SRC_BASE_BYTEORDER_H_
#define OSKIT_SRC_BASE_BYTEORDER_H_

#include <bit>
#include <cstdint>

namespace oskit {

constexpr uint16_t ByteSwap16(uint16_t v) {
  return static_cast<uint16_t>((v << 8) | (v >> 8));
}

constexpr uint32_t ByteSwap32(uint32_t v) {
  return ((v & 0x000000ffu) << 24) | ((v & 0x0000ff00u) << 8) |
         ((v & 0x00ff0000u) >> 8) | ((v & 0xff000000u) >> 24);
}

constexpr uint16_t HostToNet16(uint16_t v) {
  if constexpr (std::endian::native == std::endian::little) {
    return ByteSwap16(v);
  } else {
    return v;
  }
}

constexpr uint32_t HostToNet32(uint32_t v) {
  if constexpr (std::endian::native == std::endian::little) {
    return ByteSwap32(v);
  } else {
    return v;
  }
}

constexpr uint16_t NetToHost16(uint16_t v) { return HostToNet16(v); }
constexpr uint32_t NetToHost32(uint32_t v) { return HostToNet32(v); }

// Unaligned big-endian accessors for parsing wire formats in place.
inline uint16_t LoadBe16(const uint8_t* p) {
  return static_cast<uint16_t>((p[0] << 8) | p[1]);
}

inline uint32_t LoadBe32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

inline void StoreBe16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v >> 8);
  p[1] = static_cast<uint8_t>(v);
}

inline void StoreBe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

// Little-endian accessors for on-disk formats (MBR, our FFS-like layout).
inline uint16_t LoadLe16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

inline uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

inline uint64_t LoadLe64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadLe32(p)) |
         (static_cast<uint64_t>(LoadLe32(p + 4)) << 32);
}

inline void StoreLe16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}

inline void StoreLe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

inline void StoreLe64(uint8_t* p, uint64_t v) {
  StoreLe32(p, static_cast<uint32_t>(v));
  StoreLe32(p + 4, static_cast<uint32_t>(v >> 32));
}

}  // namespace oskit

#endif  // OSKIT_SRC_BASE_BYTEORDER_H_
