#include "src/base/checksum.h"

namespace oskit {

void InetChecksum::Add(const void* data, size_t length) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  if (odd_ && length > 0) {
    // Pair this byte as the low half of the word whose high half came from
    // the tail of the previous Add().
    sum_ += *p++;
    --length;
    odd_ = false;
  }
  while (length >= 2) {
    sum_ += (static_cast<uint32_t>(p[0]) << 8) | p[1];
    p += 2;
    length -= 2;
  }
  if (length == 1) {
    sum_ += static_cast<uint32_t>(p[0]) << 8;
    odd_ = true;
  }
}

uint16_t InetChecksum::Finish() const {
  uint64_t sum = sum_;
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum & 0xffff);
}

uint16_t InetChecksumOf(const void* data, size_t length) {
  InetChecksum cksum;
  cksum.Add(data, length);
  return cksum.Finish();
}

}  // namespace oskit
