// RFC 1071 Internet checksum, used by the IP/ICMP/UDP/TCP layers.

#ifndef OSKIT_SRC_BASE_CHECKSUM_H_
#define OSKIT_SRC_BASE_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace oskit {

// Incremental checksum accumulator: feed byte ranges (possibly at odd
// offsets, as happens with chained mbufs), then Finish() to fold.
class InetChecksum {
 public:
  // Adds `length` bytes.  Handles a dangling odd byte between calls so that
  // discontiguous buffer chains sum identically to a flat buffer.
  void Add(const void* data, size_t length);

  // Folds carries and returns the one's-complement result in network order
  // semantics (i.e. ready to store into a header with StoreBe16... the value
  // returned is already the final 16-bit checksum field in host order).
  uint16_t Finish() const;

 private:
  uint64_t sum_ = 0;
  bool odd_ = false;  // true when an odd byte is pending in `sum_` alignment
};

// One-shot helper over a flat buffer.
uint16_t InetChecksumOf(const void* data, size_t length);

}  // namespace oskit

#endif  // OSKIT_SRC_BASE_CHECKSUM_H_
