// Error codes shared by every oskit-cpp component.
//
// The original OSKit used a COM-style `error_t` integer (OSKIT_E_* / POSIX
// errno values) as the return type of essentially every component interface
// method.  We keep that convention: COM interface methods return an Error and
// pass results through out-parameters, which makes the C++ interfaces read
// like the paper's Figure 2.

#ifndef OSKIT_SRC_BASE_ERROR_H_
#define OSKIT_SRC_BASE_ERROR_H_

#include <cstdint>

namespace oskit {

// Component-level error codes.  Values below 0x100 mirror POSIX errno
// semantics (the OSKit minimal C library exposed errno-style failures);
// values at 0x100 and above mirror the COM-style OSKIT_E_* errors.
enum class Error : int32_t {
  kOk = 0,

  // POSIX-flavoured errors.
  kPerm = 1,          // EPERM: operation not permitted
  kNoEnt = 2,         // ENOENT: no such file or directory
  kIo = 5,            // EIO: input/output error
  kBadF = 9,          // EBADF: bad handle / descriptor
  kNoMem = 12,        // ENOMEM: out of memory
  kAccess = 13,       // EACCES: permission denied
  kFault = 14,        // EFAULT: bad address
  kBusy = 16,         // EBUSY: resource busy
  kExist = 17,        // EEXIST: already exists
  kXDev = 18,         // EXDEV: cross-device link
  kNoDev = 19,        // ENODEV: no such device
  kNotDir = 20,       // ENOTDIR: not a directory
  kIsDir = 21,        // EISDIR: is a directory
  kInval = 22,        // EINVAL: invalid argument
  kNFile = 23,        // ENFILE: table overflow
  kMFile = 24,        // EMFILE: too many open handles
  kNoTty = 25,        // ENOTTY: inappropriate ioctl
  kFBig = 27,         // EFBIG: file too large
  kNoSpace = 28,      // ENOSPC: no space left on device
  kRoFs = 30,         // EROFS: read-only file system
  kPipe = 32,         // EPIPE: broken pipe / connection closed
  kNameTooLong = 36,  // ENAMETOOLONG
  kNotEmpty = 39,     // ENOTEMPTY: directory not empty
  kWouldBlock = 35,   // EWOULDBLOCK / EAGAIN
  kMsgSize = 40,      // EMSGSIZE: message too long
  kProtoNoSupport = 43,   // EPROTONOSUPPORT
  kAddrInUse = 48,        // EADDRINUSE
  kAddrNotAvail = 49,     // EADDRNOTAVAIL
  kNetUnreach = 51,       // ENETUNREACH
  kConnReset = 54,        // ECONNRESET
  kNoBufs = 55,           // ENOBUFS
  kIsConn = 56,           // EISCONN
  kNotConn = 57,          // ENOTCONN
  kTimedOut = 60,         // ETIMEDOUT
  kConnRefused = 61,      // ECONNREFUSED
  kHostUnreach = 65,      // EHOSTUNREACH
  kInProgress = 68,       // EINPROGRESS

  // COM-flavoured errors (paper section 4.4).
  kNoInterface = 0x100,  // OSKIT_E_NOINTERFACE: QueryInterface miss
  kNotImpl = 0x101,      // OSKIT_E_NOTIMPL: method not implemented
  kUnexpected = 0x102,   // OSKIT_E_UNEXPECTED: internal invariant broken
  kAborted = 0x103,      // OSKIT_E_ABORT: operation aborted
  kOutOfRange = 0x104,   // read/write beyond object bounds
  kCorrupt = 0x105,      // on-media structure failed validation
  kQuotaExceeded = 0x106,  // per-principal resource budget exhausted (§3.8)
};

// Human-readable name for diagnostics and test failure messages.
const char* ErrorName(Error e);

// True when `e` reports success.
constexpr bool Ok(Error e) { return e == Error::kOk; }

}  // namespace oskit

#endif  // OSKIT_SRC_BASE_ERROR_H_
