// Intrusive doubly-linked list.
//
// Kernel components (LMM free lists, mbuf queues, device registries, TCP
// segment queues) need containers that never allocate: membership state lives
// inside the element.  This is a minimal, assertion-checked intrusive list in
// the style of BSD's queue.h, but type-safe.

#ifndef OSKIT_SRC_BASE_INTRUSIVE_LIST_H_
#define OSKIT_SRC_BASE_INTRUSIVE_LIST_H_

#include <cstddef>

#include "src/base/panic.h"

namespace oskit {

// Embed one of these per list a type can belong to.
struct ListNode {
  ListNode* prev = nullptr;
  ListNode* next = nullptr;

  bool InList() const { return next != nullptr; }

  void Unlink() {
    OSKIT_ASSERT(InList());
    prev->next = next;
    next->prev = prev;
    prev = nullptr;
    next = nullptr;
  }
};

// Intrusive list of T, where `Member` points at the ListNode inside T.
// Usage:  IntrusiveList<Foo, &Foo::node> list;
template <typename T, ListNode T::* Member>
class IntrusiveList {
 public:
  IntrusiveList() {
    head_.prev = &head_;
    head_.next = &head_;
  }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  ~IntrusiveList() { OSKIT_ASSERT_MSG(Empty(), "list destroyed while non-empty"); }

  bool Empty() const { return head_.next == &head_; }

  size_t Size() const {
    size_t n = 0;
    for (const ListNode* p = head_.next; p != &head_; p = p->next) {
      ++n;
    }
    return n;
  }

  void PushFront(T* element) { InsertAfter(&head_, element); }
  void PushBack(T* element) { InsertBefore(&head_, element); }

  T* Front() { return Empty() ? nullptr : FromNode(head_.next); }
  T* Back() { return Empty() ? nullptr : FromNode(head_.prev); }

  T* PopFront() {
    if (Empty()) {
      return nullptr;
    }
    T* element = FromNode(head_.next);
    NodeOf(element)->Unlink();
    return element;
  }

  T* PopBack() {
    if (Empty()) {
      return nullptr;
    }
    T* element = FromNode(head_.prev);
    NodeOf(element)->Unlink();
    return element;
  }

  // Inserts `element` immediately before `position` (which must be linked).
  void InsertBeforeElement(T* position, T* element) {
    InsertBefore(NodeOf(position), element);
  }

  void Remove(T* element) { NodeOf(element)->Unlink(); }

  // Iteration: forward, unlink-safe if the caller captures `next` first.
  T* Next(T* element) {
    ListNode* n = NodeOf(element)->next;
    return n == &head_ ? nullptr : FromNode(n);
  }

  T* Prev(T* element) {
    ListNode* p = NodeOf(element)->prev;
    return p == &head_ ? nullptr : FromNode(p);
  }

  // Range-for support.
  class Iterator {
   public:
    Iterator(const IntrusiveList* list, ListNode* node) : list_(list), node_(node) {}
    T& operator*() const { return *FromNode(node_); }
    T* operator->() const { return FromNode(node_); }
    Iterator& operator++() {
      node_ = node_->next;
      return *this;
    }
    bool operator!=(const Iterator& other) const { return node_ != other.node_; }

   private:
    const IntrusiveList* list_;
    ListNode* node_;
  };

  Iterator begin() { return Iterator(this, head_.next); }
  Iterator end() { return Iterator(this, &head_); }

 private:
  static ListNode* NodeOf(T* element) { return &(element->*Member); }

  static T* FromNode(ListNode* node) {
    // Recover the element address from the embedded node address.
    const T* probe = nullptr;
    auto offset = reinterpret_cast<const char*>(&(probe->*Member)) -
                  reinterpret_cast<const char*>(probe);
    return reinterpret_cast<T*>(reinterpret_cast<char*>(node) - offset);
  }

  void InsertAfter(ListNode* position, T* element) {
    ListNode* node = NodeOf(element);
    OSKIT_ASSERT_MSG(!node->InList(), "element already linked");
    node->prev = position;
    node->next = position->next;
    position->next->prev = node;
    position->next = node;
  }

  void InsertBefore(ListNode* position, T* element) {
    ListNode* node = NodeOf(element);
    OSKIT_ASSERT_MSG(!node->InList(), "element already linked");
    node->next = position;
    node->prev = position->prev;
    position->prev->next = node;
    position->prev = node;
  }

  // Sentinel; prev/next are self-referential when empty.
  ListNode head_;
};

}  // namespace oskit

#endif  // OSKIT_SRC_BASE_INTRUSIVE_LIST_H_
