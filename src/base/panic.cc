#include "src/base/panic.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace oskit {
namespace {

[[noreturn]] void DefaultPanicHandler(const char* message) {
  std::fprintf(stderr, "oskit panic: %s\n", message);
  std::abort();
}

PanicHandler g_panic_handler = &DefaultPanicHandler;

}  // namespace

PanicHandler SetPanicHandler(PanicHandler handler) {
  PanicHandler previous = g_panic_handler;
  g_panic_handler = handler != nullptr ? handler : &DefaultPanicHandler;
  return previous;
}

void Panic(const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  g_panic_handler(buffer);
  // A conforming handler never returns; guard against one that does.
  std::abort();
}

}  // namespace oskit
