#include "src/base/panic.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace oskit {
namespace {

[[noreturn]] void DefaultPanicHandler(const char* message) {
  std::fprintf(stderr, "oskit panic: %s\n", message);
  std::abort();
}

PanicHandler g_panic_handler = &DefaultPanicHandler;

struct ObserverEntry {
  PanicObserver observer;
  void* ctx;
};

constexpr int kMaxPanicObservers = 8;
ObserverEntry g_observers[kMaxPanicObservers];
int g_observer_count = 0;
bool g_in_panic = false;

}  // namespace

PanicHandler SetPanicHandler(PanicHandler handler) {
  PanicHandler previous = g_panic_handler;
  g_panic_handler = handler != nullptr ? handler : &DefaultPanicHandler;
  return previous;
}

void AddPanicObserver(PanicObserver observer, void* ctx) {
  if (g_observer_count < kMaxPanicObservers) {
    g_observers[g_observer_count++] = ObserverEntry{observer, ctx};
  }
}

void RemovePanicObserver(PanicObserver observer, void* ctx) {
  for (int i = 0; i < g_observer_count; ++i) {
    if (g_observers[i].observer == observer && g_observers[i].ctx == ctx) {
      for (int j = i; j + 1 < g_observer_count; ++j) {
        g_observers[j] = g_observers[j + 1];
      }
      --g_observer_count;
      return;
    }
  }
}

void Panic(const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (!g_in_panic) {
    g_in_panic = true;
    for (int i = 0; i < g_observer_count; ++i) {
      g_observers[i].observer(g_observers[i].ctx, buffer);
    }
    g_in_panic = false;
  }
  g_panic_handler(buffer);
  // A conforming handler never returns; guard against one that does.
  std::abort();
}

}  // namespace oskit
