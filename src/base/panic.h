// Panic and assertion plumbing.
//
// In a real kernel the panic handler halts the machine; in this hosted
// reproduction the default handler prints to stderr and aborts, and tests can
// install a throwing handler to assert that a panic fired.

#ifndef OSKIT_SRC_BASE_PANIC_H_
#define OSKIT_SRC_BASE_PANIC_H_

namespace oskit {

// Handler invoked by Panic(); must not return.  Returns the previous handler.
using PanicHandler = void (*)(const char* message);
PanicHandler SetPanicHandler(PanicHandler handler);

// Observers run (in registration order) before the panic handler, so
// diagnostic state — the trace component's flight recorder, notably — can be
// dumped while the machine is still standing.  Observers must not panic;
// a nested Panic() skips the observer pass.
using PanicObserver = void (*)(void* ctx, const char* message);
void AddPanicObserver(PanicObserver observer, void* ctx);
void RemovePanicObserver(PanicObserver observer, void* ctx);

// Formats a message (printf-style) and invokes the installed panic handler.
[[noreturn]] void Panic(const char* format, ...) __attribute__((format(printf, 1, 2)));

}  // namespace oskit

// Kernel-style assertion: always enabled, independent of NDEBUG.  OSKit
// components guard their internal invariants with these so that corruption is
// caught at the component boundary rather than propagating.
#define OSKIT_ASSERT(cond)                                                    \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::oskit::Panic("assertion failed: %s at %s:%d", #cond, __FILE__, __LINE__); \
    }                                                                         \
  } while (0)

#define OSKIT_ASSERT_MSG(cond, msg)                                            \
  do {                                                                         \
    if (!(cond)) {                                                             \
      ::oskit::Panic("assertion failed: %s (%s) at %s:%d", #cond, (msg),       \
                     __FILE__, __LINE__);                                      \
    }                                                                          \
  } while (0)

#endif  // OSKIT_SRC_BASE_PANIC_H_
