// Deterministic pseudo-random source for the simulated platform and for
// property tests.  The simulation must be reproducible from a seed, so no
// component ever consults std::random_device or wall-clock entropy.

#ifndef OSKIT_SRC_BASE_RANDOM_H_
#define OSKIT_SRC_BASE_RANDOM_H_

#include <cstdint>

namespace oskit {

// xoshiro256** — small, fast, and good enough for fault injection and
// workload generation (not for cryptography).
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the four lanes.
    uint64_t x = seed;
    for (auto& lane : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      lane = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound); bound must be nonzero.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  // True with probability `percent`/100.
  bool Percent(uint32_t percent) { return Below(100) < percent; }

  // Uniform double in [0, 1).
  double Unit() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace oskit

#endif  // OSKIT_SRC_BASE_RANDOM_H_
