#include "src/boot/memfs.h"

#include <cstring>

#include "src/base/panic.h"

namespace oskit {

using memfs_internal::Node;

namespace {

bool ValidName(const char* name) {
  if (name == nullptr || name[0] == '\0') {
    return false;
  }
  if (std::strchr(name, '/') != nullptr) {
    return false;  // single pathname components only (§3.8)
  }
  return std::strlen(name) < sizeof(DirEntry{}.name);
}

void FillStat(const Node& node, FileStat* out) {
  out->ino = node.ino;
  out->type = node.type;
  out->mode = node.mode;
  out->nlink = node.nlink;
  out->size = node.data.size();
  out->blocks = (node.data.size() + 511) / 512;
  out->mtime = node.mtime;
}

}  // namespace

// ---------------------------------------------------------------------------
// COM wrappers.  A wrapper holds a strong reference to the filesystem and a
// shared_ptr to its node, so files stay readable after unlink (POSIX
// "deleted but open" semantics).
// ---------------------------------------------------------------------------

class MemFsFile final : public File, public RefCounted<MemFsFile> {
 public:
  MemFsFile(ComPtr<MemFs> fs, std::shared_ptr<Node> node)
      : fs_(std::move(fs)), node_(std::move(node)) {}

  Error Query(const Guid& iid, void** out) override {
    if (iid == IUnknown::kIid || iid == File::kIid) {
      AddRef();
      *out = static_cast<File*>(this);
      return Error::kOk;
    }
    *out = nullptr;
    return Error::kNoInterface;
  }
  OSKIT_REFCOUNTED_BOILERPLATE()

  Error Read(void* buf, uint64_t offset, size_t amount, size_t* out_actual) override {
    *out_actual = 0;
    if (node_->type != FileType::kRegular) {
      return Error::kIsDir;
    }
    if (offset >= node_->data.size()) {
      return Error::kOk;  // EOF
    }
    size_t n = amount;
    if (offset + n > node_->data.size()) {
      n = node_->data.size() - offset;
    }
    std::memcpy(buf, node_->data.data() + offset, n);
    *out_actual = n;
    return Error::kOk;
  }

  Error Write(const void* buf, uint64_t offset, size_t amount,
              size_t* out_actual) override {
    *out_actual = 0;
    if (node_->type != FileType::kRegular) {
      return Error::kIsDir;
    }
    if (offset + amount > node_->data.size()) {
      node_->data.resize(offset + amount, 0);
    }
    std::memcpy(node_->data.data() + offset, buf, amount);
    node_->mtime += 1;
    *out_actual = amount;
    return Error::kOk;
  }

  Error GetStat(FileStat* out_stat) override {
    FillStat(*node_, out_stat);
    return Error::kOk;
  }

  Error SetSize(uint64_t new_size) override {
    if (node_->type != FileType::kRegular) {
      return Error::kIsDir;
    }
    node_->data.resize(new_size, 0);
    node_->mtime += 1;
    return Error::kOk;
  }

  Error Sync() override { return Error::kOk; }

 private:
  ~MemFsFile() = default;
  friend class RefCounted<MemFsFile>;

  ComPtr<MemFs> fs_;
  std::shared_ptr<Node> node_;
};

class MemFsDir final : public Dir, public RefCounted<MemFsDir> {
 public:
  MemFsDir(ComPtr<MemFs> fs, std::shared_ptr<Node> node)
      : fs_(std::move(fs)), node_(std::move(node)) {}

  Error Query(const Guid& iid, void** out) override {
    if (iid == IUnknown::kIid || iid == File::kIid || iid == Dir::kIid) {
      AddRef();
      *out = static_cast<Dir*>(this);
      return Error::kOk;
    }
    *out = nullptr;
    return Error::kNoInterface;
  }
  OSKIT_REFCOUNTED_BOILERPLATE()

  // File methods on a directory.
  Error Read(void* buf, uint64_t offset, size_t amount, size_t* out_actual) override {
    *out_actual = 0;
    return Error::kIsDir;
  }
  Error Write(const void* buf, uint64_t offset, size_t amount,
              size_t* out_actual) override {
    *out_actual = 0;
    return Error::kIsDir;
  }
  Error GetStat(FileStat* out_stat) override {
    FillStat(*node_, out_stat);
    return Error::kOk;
  }
  Error SetSize(uint64_t) override { return Error::kIsDir; }
  Error Sync() override { return Error::kOk; }

  // Dir methods.
  Error Lookup(const char* name, File** out_file) override {
    *out_file = nullptr;
    std::shared_ptr<Node> target;
    if (name != nullptr && std::strcmp(name, ".") == 0) {
      target = node_;
    } else if (name != nullptr && std::strcmp(name, "..") == 0) {
      target = node_->parent.lock();
      if (target == nullptr) {
        target = node_;  // root's parent is root
      }
    } else {
      if (!ValidName(name)) {
        return Error::kInval;
      }
      auto it = node_->children.find(name);
      if (it == node_->children.end()) {
        return Error::kNoEnt;
      }
      target = it->second;
    }
    *out_file = WrapNode(fs_, std::move(target));
    return Error::kOk;
  }

  Error Create(const char* name, uint32_t mode, File** out_file) override {
    *out_file = nullptr;
    if (!ValidName(name) || std::strcmp(name, ".") == 0 || std::strcmp(name, "..") == 0) {
      return Error::kInval;
    }
    if (node_->children.count(name) > 0) {
      return Error::kExist;
    }
    auto child = std::make_shared<Node>();
    child->type = FileType::kRegular;
    child->ino = fs_->NextIno();
    child->mode = mode & 0777;
    child->parent = node_;
    node_->children.emplace(name, child);
    node_->mtime += 1;
    *out_file = WrapNode(fs_, std::move(child));
    return Error::kOk;
  }

  Error Mkdir(const char* name, uint32_t mode) override {
    if (!ValidName(name) || std::strcmp(name, ".") == 0 || std::strcmp(name, "..") == 0) {
      return Error::kInval;
    }
    if (node_->children.count(name) > 0) {
      return Error::kExist;
    }
    auto child = std::make_shared<Node>();
    child->type = FileType::kDirectory;
    child->ino = fs_->NextIno();
    child->mode = mode & 0777;
    child->nlink = 2;
    child->parent = node_;
    node_->children.emplace(name, child);
    node_->mtime += 1;
    return Error::kOk;
  }

  Error Unlink(const char* name) override {
    if (!ValidName(name)) {
      return Error::kInval;
    }
    auto it = node_->children.find(name);
    if (it == node_->children.end()) {
      return Error::kNoEnt;
    }
    if (it->second->type == FileType::kDirectory) {
      return Error::kIsDir;
    }
    node_->children.erase(it);
    node_->mtime += 1;
    return Error::kOk;
  }

  Error Rmdir(const char* name) override {
    if (!ValidName(name)) {
      return Error::kInval;
    }
    auto it = node_->children.find(name);
    if (it == node_->children.end()) {
      return Error::kNoEnt;
    }
    if (it->second->type != FileType::kDirectory) {
      return Error::kNotDir;
    }
    if (!it->second->children.empty()) {
      return Error::kNotEmpty;
    }
    node_->children.erase(it);
    node_->mtime += 1;
    return Error::kOk;
  }

  Error Rename(const char* old_name, Dir* new_dir, const char* new_name) override {
    if (!ValidName(old_name) || !ValidName(new_name)) {
      return Error::kInval;
    }
    auto* dest = static_cast<MemFsDir*>(new_dir);
    if (dest->fs_.get() != fs_.get()) {
      return Error::kXDev;
    }
    auto it = node_->children.find(old_name);
    if (it == node_->children.end()) {
      return Error::kNoEnt;
    }
    if (dest->node_->children.count(new_name) > 0) {
      return Error::kExist;
    }
    std::shared_ptr<Node> moving = it->second;
    // A directory must not become its own ancestor (POSIX EINVAL).
    if (moving->type == FileType::kDirectory) {
      for (std::shared_ptr<Node> walk = dest->node_; walk != nullptr;
           walk = walk->parent.lock()) {
        if (walk == moving) {
          return Error::kInval;
        }
      }
    }
    node_->children.erase(it);
    moving->parent = dest->node_;
    dest->node_->children.emplace(new_name, std::move(moving));
    node_->mtime += 1;
    dest->node_->mtime += 1;
    return Error::kOk;
  }

  Error ReadDir(uint64_t* inout_offset, DirEntry* entries, size_t capacity,
                size_t* out_count) override {
    *out_count = 0;
    uint64_t index = 0;
    for (const auto& [name, child] : node_->children) {
      if (index++ < *inout_offset) {
        continue;
      }
      if (*out_count == capacity) {
        break;
      }
      DirEntry& e = entries[*out_count];
      e.ino = child->ino;
      e.type = child->type;
      std::strncpy(e.name, name.c_str(), sizeof(e.name) - 1);
      e.name[sizeof(e.name) - 1] = '\0';
      ++*out_count;
      *inout_offset = index;
    }
    return Error::kOk;
  }

  // Wraps a node in the appropriate COM object, returned as File*.
  static File* WrapNode(const ComPtr<MemFs>& fs, std::shared_ptr<Node> node) {
    if (node->type == FileType::kDirectory) {
      return new MemFsDir(fs, std::move(node));
    }
    return new MemFsFile(fs, std::move(node));
  }

 private:
  ~MemFsDir() = default;
  friend class RefCounted<MemFsDir>;

  ComPtr<MemFs> fs_;
  std::shared_ptr<Node> node_;
};

// ---------------------------------------------------------------------------
// MemFs proper.
// ---------------------------------------------------------------------------

MemFs::MemFs() {
  root_ = std::make_shared<Node>();
  root_->type = FileType::kDirectory;
  root_->ino = 1;
  root_->mode = 0755;
  root_->nlink = 2;
}

ComPtr<MemFs> MemFs::Create() { return ComPtr<MemFs>(new MemFs()); }

ComPtr<MemFs> MemFs::BuildBmodFs(PhysMem* phys, const MultiBootInfo& info) {
  auto fs = Create();
  for (const BootModule& module : info.modules) {
    std::string name = BootModuleName(module);
    auto node = std::make_shared<Node>();
    node->type = FileType::kRegular;
    node->ino = fs->NextIno();
    node->mode = 0644;
    node->parent = fs->root_;
    size_t size = module.end - module.start;
    const auto* data = static_cast<const uint8_t*>(phys->PtrAt(module.start));
    node->data.assign(data, data + size);
    fs->root_->children.emplace(std::move(name), std::move(node));
  }
  return fs;
}

Error MemFs::Query(const Guid& iid, void** out) {
  if (iid == IUnknown::kIid || iid == FileSystem::kIid) {
    AddRef();
    *out = static_cast<FileSystem*>(this);
    return Error::kOk;
  }
  *out = nullptr;
  return Error::kNoInterface;
}

Error MemFs::GetRoot(Dir** out_root) {
  *out_root = nullptr;
  if (unmounted_) {
    return Error::kBadF;
  }
  *out_root = new MemFsDir(ComPtr<MemFs>::Retain(this), root_);
  return Error::kOk;
}

Error MemFs::StatFs(FsStat* out_stat) {
  *out_stat = FsStat{};
  out_stat->block_size = 1;
  out_stat->total_inodes = next_ino_ - 1;
  return Error::kOk;
}

Error MemFs::Unmount() {
  unmounted_ = true;
  return Error::kOk;
}

}  // namespace oskit
