// In-memory filesystem, and the boot-module filesystem built on it (§6.2.2).
//
// The paper's bmod facility gives a kernel "a simple RAM-disk file system
// accessible immediately upon bootstrap through POSIX's standard
// open/close/read/write interfaces" — Fluke's first user program, ML/OS's
// heap image, and Java/PC's .class files all loaded this way.  MemFs is that
// filesystem: a full read-write tree exposing the standard COM FileSystem /
// Dir / File interfaces, with BuildBmodFs() pre-populating it from the boot
// modules the loader placed in physical memory.

#ifndef OSKIT_SRC_BOOT_MEMFS_H_
#define OSKIT_SRC_BOOT_MEMFS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/boot/multiboot.h"
#include "src/com/filesystem.h"

namespace oskit {

namespace memfs_internal {

struct Node {
  FileType type = FileType::kRegular;
  uint64_t ino = 0;
  uint32_t mode = 0644;
  uint32_t nlink = 1;
  uint64_t mtime = 0;
  std::vector<uint8_t> data;                             // regular files
  std::map<std::string, std::shared_ptr<Node>> children; // directories
  std::weak_ptr<Node> parent;                            // for ".."
};

}  // namespace memfs_internal

class MemFs final : public FileSystem, public RefCounted<MemFs> {
 public:
  // An empty filesystem with a root directory.
  static ComPtr<MemFs> Create();

  // A filesystem with one file per boot module, named by the first word of
  // the module string (§3.1).  Module contents are copied out of simulated
  // physical memory.
  static ComPtr<MemFs> BuildBmodFs(PhysMem* phys, const MultiBootInfo& info);

  // IUnknown
  Error Query(const Guid& iid, void** out) override;
  OSKIT_REFCOUNTED_BOILERPLATE()

  // FileSystem
  Error GetRoot(Dir** out_root) override;
  Error StatFs(FsStat* out_stat) override;
  Error Sync() override { return Error::kOk; }
  Error Unmount() override;

 private:
  friend class RefCounted<MemFs>;
  friend class MemFsFile;
  friend class MemFsDir;

  MemFs();
  ~MemFs() = default;

  uint64_t NextIno() { return next_ino_++; }

  std::shared_ptr<memfs_internal::Node> root_;
  uint64_t next_ino_ = 2;
  bool unmounted_ = false;
};

}  // namespace oskit

#endif  // OSKIT_SRC_BOOT_MEMFS_H_
