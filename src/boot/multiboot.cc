#include "src/boot/multiboot.h"

#include <algorithm>
#include <cstring>

#include "src/base/panic.h"

namespace oskit {
namespace {

constexpr PhysAddr kPageMask = 4096 - 1;

PhysAddr PageAlignDown(PhysAddr addr) { return addr & ~kPageMask; }

}  // namespace

BootLoader::BootLoader(PhysMem* phys) : phys_(phys) {}

void BootLoader::AddModule(std::string string, const void* data, size_t size) {
  Pending p;
  p.string = std::move(string);
  p.data.assign(static_cast<const uint8_t*>(data),
                static_cast<const uint8_t*>(data) + size);
  pending_.push_back(std::move(p));
}

MultiBootInfo BootLoader::Load(std::string kernel_cmdline) {
  MultiBootInfo info;
  info.cmdline = std::move(kernel_cmdline);
  info.mem_lower_kb = 640;  // the eternal PC constant
  info.mem_upper_kb = static_cast<uint32_t>((phys_->size() - PhysMem::kBiosAreaEnd) / 1024);

  // Place modules from the top of RAM downward, each page aligned.
  PhysAddr cursor = PageAlignDown(phys_->size());
  for (auto it = pending_.rbegin(); it != pending_.rend(); ++it) {
    PhysAddr size = (it->data.size() + kPageMask) & ~kPageMask;
    OSKIT_ASSERT_MSG(cursor >= size + PhysMem::kBiosAreaEnd,
                     "boot modules do not fit in physical memory");
    cursor -= size;
    std::memcpy(phys_->PtrAt(cursor), it->data.data(), it->data.size());
    BootModule module;
    module.start = cursor;
    module.end = cursor + it->data.size();
    module.string = it->string;
    info.modules.push_back(std::move(module));
  }
  // Restore declaration order (we placed them in reverse).
  std::reverse(info.modules.begin(), info.modules.end());
  pending_.clear();
  return info;
}

std::string BootModuleName(const BootModule& module) {
  size_t space = module.string.find(' ');
  return space == std::string::npos ? module.string : module.string.substr(0, space);
}

}  // namespace oskit
