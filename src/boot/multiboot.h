// MultiBoot support (paper §3.1).
//
// The MultiBoot standard defines the contract between any compliant boot
// loader and any compliant kernel: the loader places the kernel and an
// arbitrary set of "boot modules" (uninterpreted flat files, each with a
// user-defined command string) into physical memory and hands the kernel a
// single info structure describing memory and module placement.
//
// In the simulated world the info structure lives in host structs, but the
// module CONTENTS really are placed into the simulated machine's physical
// memory, and the kernel support library really does reserve those ranges
// from the LMM before handing memory to the client (§3.2), so the paper's
// bootstrap dataflow is preserved end to end.

#ifndef OSKIT_SRC_BOOT_MULTIBOOT_H_
#define OSKIT_SRC_BOOT_MULTIBOOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/machine/physmem.h"

namespace oskit {

struct BootModule {
  PhysAddr start = 0;  // physical placement, page aligned
  PhysAddr end = 0;    // exclusive
  std::string string;  // user-defined; conventionally "name" or "name args"
};

struct MultiBootInfo {
  // Memory as the BIOS reports it: below-1MB and above-1MB amounts, in KB.
  uint32_t mem_lower_kb = 0;
  uint32_t mem_upper_kb = 0;
  std::string cmdline;  // kernel command line
  std::vector<BootModule> modules;
};

// The simulated boot loader: loads module contents into a machine's physical
// memory (page-aligned, growing downward from the top of RAM like real
// loaders keep modules out of the kernel's way) and fills in MultiBootInfo.
class BootLoader {
 public:
  explicit BootLoader(PhysMem* phys);

  // Queues a module for loading.
  void AddModule(std::string string, const void* data, size_t size);

  // Performs the "load": copies module data into physical memory and
  // returns the info structure the kernel receives.
  MultiBootInfo Load(std::string kernel_cmdline);

 private:
  struct Pending {
    std::string string;
    std::vector<uint8_t> data;
  };

  PhysMem* phys_;
  std::vector<Pending> pending_;
};

// Splits a module string into its first word (the conventional name) and
// the rest (arguments).
std::string BootModuleName(const BootModule& module);

}  // namespace oskit

#endif  // OSKIT_SRC_BOOT_MULTIBOOT_H_
