// Asynchronous block-IO completion ring — the io_uring-shaped extension of
// the block boundary (ROADMAP item 2, after the "Fast & Flexible IO"
// compositional-storage model).
//
// BlkIoRing is a new GUID discovered via Query on the same object that
// exports BlkIo (the §4.4.2 evolution idiom, exactly like BlkIoBarrier):
// clients that can batch — the journal's commit image writes, the aio
// campaign's queue-depth sweep — submit several tagged SQEs at once and
// reap completions in batches, letting a queue-depth-aware device schedule
// the whole set per controller round-trip.  Devices that cannot reorder
// simply don't export the interface; `aio::WrapSyncRing` adapts any plain
// BlkIo so every existing device still composes.
//
// Contract:
//  - Submit accepts up to `count` SQEs and reports how many were queued in
//    *out_accepted (backpressure: fewer than `count` when the submission
//    ring is full; zero is legal and means "reap first").
//  - Each accepted SQE completes exactly once with a CQE carrying the
//    caller's tag, a status, and the bytes actually transferred; CQEs are
//    delivered by Reap in completion order, which implementations may
//    choose freely (an LBA-sorting device completes out of submission
//    order — that is the point).
//  - Reap never blocks: it drains up to `cap` pending CQEs and returns the
//    count; implementations guarantee that every accepted SQE's CQE is
//    reapable after Submit returns (the simulated controller runs the
//    batch synchronously at submit time, so no poll/wait loop exists — the
//    asynchrony is in the interface and the scheduling, not the timing).
//  - kFlush SQEs are barriers within the ring: writes accepted before a
//    flush in the same or an earlier Submit are durable when the flush's
//    CQE reports kOk.

#ifndef OSKIT_SRC_COM_AIO_H_
#define OSKIT_SRC_COM_AIO_H_

#include <cstddef>
#include <cstdint>

#include "src/com/blkio.h"
#include "src/com/iunknown.h"

namespace oskit {

enum class AioOp : uint32_t {
  kRead = 0,
  kWrite = 1,
  kFlush = 2,
};

// Submission queue entry.  `buf` must stay valid until the CQE is reaped.
struct AioSqe {
  AioOp op = AioOp::kRead;
  void* buf = nullptr;      // unused for kFlush
  off_t64 offset = 0;       // unused for kFlush
  size_t len = 0;           // unused for kFlush
  uint64_t tag = 0;         // returned verbatim in the CQE
};

// Completion queue entry.
struct AioCqe {
  uint64_t tag = 0;
  Error status = Error::kOk;
  size_t actual = 0;  // bytes transferred (clamped short at end-of-device)
};

class BlkIoRing : public IUnknown {
 public:
  // Next GUID in the blkio family (blkio ...e1, barrier ...e2).
  static constexpr Guid kIid = MakeGuid(0x4aa7dfe3, 0x7c74, 0x11cf, 0xb5, 0x00, 0x08,
                                        0x00, 0x09, 0x53, 0xad, 0xc2);

  // Queues up to `count` SQEs; *out_accepted tells how many were taken.
  // Per-SQE failures (a wrapped range, a dead device) are reported through
  // that SQE's CQE status, not the Submit return — Submit itself fails only
  // when the arguments are malformed.
  virtual Error Submit(const AioSqe* sqes, size_t count, size_t* out_accepted) = 0;

  // Drains up to `cap` completions into out_cqes; *out_count received.
  virtual Error Reap(AioCqe* out_cqes, size_t cap, size_t* out_count) = 0;

  // SQEs accepted but not yet reaped (diagnostics; kmon's `aio` command).
  virtual size_t Occupancy() = 0;

 protected:
  ~BlkIoRing() = default;
};

}  // namespace oskit

#endif  // OSKIT_SRC_COM_AIO_H_
