// Block I/O interface — the C++ rendering of the paper's Figure 2.
//
// Implemented by disk device drivers, partition views, RAM disks, and the
// boot-module filesystem's backing objects.  Offsets and sizes are in bytes;
// implementations may require them to be multiples of GetBlockSize().

#ifndef OSKIT_SRC_COM_BLKIO_H_
#define OSKIT_SRC_COM_BLKIO_H_

#include <cstddef>
#include <cstdint>

#include "src/com/iunknown.h"

namespace oskit {

using off_t64 = uint64_t;

class BlkIo : public IUnknown {
 public:
  // Matches the paper's BLKIO_IID: GUID(0x4aa7dfe1, 0x7c74, 0x11cf, ...).
  static constexpr Guid kIid = MakeGuid(0x4aa7dfe1, 0x7c74, 0x11cf, 0xb5, 0x00, 0x08,
                                        0x00, 0x09, 0x53, 0xad, 0xc2);

  // Granularity of the underlying device; reads/writes must be aligned to it.
  virtual uint32_t GetBlockSize() = 0;

  // Reads `amount` bytes starting at `offset` into `buf`.  Stores the number
  // of bytes actually read (short at end-of-object) into *out_actual.
  virtual Error Read(void* buf, off_t64 offset, size_t amount, size_t* out_actual) = 0;

  // Writes `amount` bytes from `buf` at `offset`.
  virtual Error Write(const void* buf, off_t64 offset, size_t amount,
                      size_t* out_actual) = 0;

  // Total size of the object in bytes.
  virtual Error GetSize(off_t64* out_size) = 0;

  // Resizes the object; fixed-size devices return kNotImpl.
  virtual Error SetSize(off_t64 new_size) = 0;

 protected:
  ~BlkIo() = default;
};

// Flush/barrier extension of the block boundary (new GUID, discovered via
// Query — the §4.4.2 evolution idiom, like BufIoVec over BufIo): a client
// that needs a durability point asks the device for BlkIoBarrier; devices
// without a volatile write cache simply don't export it (or export it as a
// timed no-op) and old consumers keep working against plain BlkIo.
//
// It derives IUnknown rather than BlkIo so implementations that already
// expose BlkIo through another path (BufIo, Device) can add it without a
// diamond; callers always reach it through Query on the same object.
class BlkIoBarrier : public IUnknown {
 public:
  static constexpr Guid kIid = MakeGuid(0x4aa7dfe2, 0x7c74, 0x11cf, 0xb5, 0x00, 0x08,
                                        0x00, 0x09, 0x53, 0xad, 0xc2);

  // Returns once every write acknowledged before this call is durable: will
  // survive a power cut.  The ordering primitive journaling builds on.
  virtual Error Flush() = 0;

 protected:
  ~BlkIoBarrier() = default;
};

}  // namespace oskit

#endif  // OSKIT_SRC_COM_BLKIO_H_
