// Buffered I/O interface — the paper's bufio extension to blkio (§4.4.2).
//
// BufIo adds direct pointer-based access ("map") for the common case where
// the object's data happens to live in contiguous local memory.  Network
// packets cross component boundaries as BufIo objects: the Linux driver glue
// wraps an SkBuff as a BufIo, the FreeBSD stack glue wraps an MBuf chain as a
// BufIo, and each side Maps the other's buffer when it is contiguous and
// falls back to Read/Write copies when it is not (§4.7.3).  That asymmetry —
// map on receive, copy on send — is the mechanism behind Table 1.

#ifndef OSKIT_SRC_COM_BUFIO_H_
#define OSKIT_SRC_COM_BUFIO_H_

#include "src/com/blkio.h"

namespace oskit {

class BufIo : public BlkIo {
 public:
  static constexpr Guid kIid = MakeGuid(0xa24f6238, 0x0da1, 0x11d0, 0xa6, 0xbe, 0x00,
                                        0xa0, 0xc9, 0x0a, 0x5f, 0x2d);

  // Attempts to obtain a direct pointer to bytes [offset, offset+amount).
  // Succeeds only when that range is stored contiguously in local memory;
  // otherwise returns kNotImpl and the caller must fall back to Read().
  // A successful Map() pins the buffer until the matching Unmap().
  virtual Error Map(void** out_addr, off_t64 offset, size_t amount) = 0;

  // Releases a mapping obtained from Map().
  virtual Error Unmap(void* addr, off_t64 offset, size_t amount) = 0;

  // Ensures the data is resident/pinned for DMA-style access (advisory in
  // this reproduction; RAM-backed implementations return kOk trivially).
  virtual Error Wire() = 0;
  virtual Error Unwire() = 0;

 protected:
  ~BufIo() = default;
};

}  // namespace oskit

#endif  // OSKIT_SRC_COM_BUFIO_H_
