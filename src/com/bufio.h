// Buffered I/O interface — the paper's bufio extension to blkio (§4.4.2).
//
// BufIo adds direct pointer-based access ("map") for the common case where
// the object's data happens to live in contiguous local memory.  Network
// packets cross component boundaries as BufIo objects: the Linux driver glue
// wraps an SkBuff as a BufIo, the FreeBSD stack glue wraps an MBuf chain as a
// BufIo, and each side Maps the other's buffer when it is contiguous and
// falls back to Read/Write copies when it is not (§4.7.3).  Historically that
// asymmetry — map on receive, copy on send — was the mechanism behind
// Table 1.  BufIoVec below is the §4.4.2-style interface extension that
// closes the send side: a buffer object that is contiguous only piecewise
// (an mbuf chain) can publish its pieces as a scatter-gather vector, and a
// consumer with gather-capable DMA transmits them without flattening.

#ifndef OSKIT_SRC_COM_BUFIO_H_
#define OSKIT_SRC_COM_BUFIO_H_

#include "src/com/blkio.h"

namespace oskit {

class BufIo : public BlkIo {
 public:
  static constexpr Guid kIid = MakeGuid(0xa24f6238, 0x0da1, 0x11d0, 0xa6, 0xbe, 0x00,
                                        0xa0, 0xc9, 0x0a, 0x5f, 0x2d);

  // Attempts to obtain a direct pointer to bytes [offset, offset+amount).
  // Succeeds only when that range is stored contiguously in local memory;
  // otherwise returns kNotImpl and the caller must fall back to Read().
  // A successful Map() pins the buffer until the matching Unmap().
  virtual Error Map(void** out_addr, off_t64 offset, size_t amount) = 0;

  // Releases a mapping obtained from Map().
  virtual Error Unmap(void* addr, off_t64 offset, size_t amount) = 0;

  // Ensures the data is resident/pinned for DMA-style access (advisory in
  // this reproduction; RAM-backed implementations return kOk trivially).
  virtual Error Wire() = 0;
  virtual Error Unwire() = 0;

 protected:
  ~BufIo() = default;
};

// One contiguous piece of a scatter-gather view.
struct BufIoSegment {
  const uint8_t* data = nullptr;
  size_t len = 0;
};

// Scatter-gather extension of BufIo (new GUID, discovered via Query — the
// paper's §4.4.2 evolution idiom: old consumers keep working against BufIo,
// new consumers ask for BufIoVec and use the vector when the object grants
// it).  The segments point into the object's own storage; like Map, a
// successful Vectors() pins the buffer until UnmapVectors().
class BufIoVec : public BufIo {
 public:
  static constexpr Guid kIid = MakeGuid(0xa24f6239, 0x0da1, 0x11d0, 0xa6, 0xbe, 0x00,
                                        0xa0, 0xc9, 0x0a, 0x5f, 0x2d);

  // Fills out_segs[0..*out_count) with the contiguous pieces covering bytes
  // [offset, offset+amount).  Returns kNotImpl when the range would need
  // more than `cap` segments (caller may Coalesce or fall back to Read).
  virtual Error Vectors(BufIoSegment* out_segs, size_t cap, off_t64 offset,
                        size_t amount, size_t* out_count) = 0;

  // Releases the pin taken by a successful Vectors() call.
  virtual Error UnmapVectors(off_t64 offset, size_t amount) = 0;

 protected:
  ~BufIoVec() = default;
};

}  // namespace oskit

#endif  // OSKIT_SRC_COM_BUFIO_H_
