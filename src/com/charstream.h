// Character stream interface for console / serial character devices (§3.6:
// the FreeBSD-derived character drivers export this).

#ifndef OSKIT_SRC_COM_CHARSTREAM_H_
#define OSKIT_SRC_COM_CHARSTREAM_H_

#include <cstddef>

#include "src/com/iunknown.h"

namespace oskit {

class CharStream : public IUnknown {
 public:
  static constexpr Guid kIid = MakeGuid(0x2e9bbb21, 0x0de1, 0x11d0, 0xa6, 0xbe, 0x00,
                                        0xa0, 0xc9, 0x0a, 0x5f, 0x2e);

  // Reads up to `amount` bytes; blocks (per the component's execution model)
  // until at least one byte is available unless the stream is at EOF.
  virtual Error Read(void* buf, size_t amount, size_t* out_actual) = 0;

  // Writes `amount` bytes.
  virtual Error Write(const void* buf, size_t amount, size_t* out_actual) = 0;

 protected:
  ~CharStream() = default;
};

}  // namespace oskit

#endif  // OSKIT_SRC_COM_CHARSTREAM_H_
