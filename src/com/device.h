// Generic device-identity interface used by the fdev registry (§3.6).
// Every registered device implements this; clients Query for the functional
// interface they need (EtherDev, BlkIo, CharStream, ...).

#ifndef OSKIT_SRC_COM_DEVICE_H_
#define OSKIT_SRC_COM_DEVICE_H_

#include "src/com/iunknown.h"

namespace oskit {

struct DeviceInfo {
  const char* name = "";         // short instance name, e.g. "eth0"
  const char* description = "";  // human-readable driver description
  const char* vendor = "";       // donor source base, e.g. "linux" / "freebsd"
};

class Device : public IUnknown {
 public:
  static constexpr Guid kIid = MakeGuid(0x61e6a3f0, 0x0df5, 0x11d0, 0xa6, 0xbe, 0x00,
                                        0xa0, 0xc9, 0x0a, 0x5f, 0x32);

  virtual Error GetInfo(DeviceInfo* out_info) = 0;

 protected:
  ~Device() = default;
};

}  // namespace oskit

#endif  // OSKIT_SRC_COM_DEVICE_H_
