// Ethernet device interface exported by encapsulated NIC drivers (§3.6).

#ifndef OSKIT_SRC_COM_ETHERDEV_H_
#define OSKIT_SRC_COM_ETHERDEV_H_

#include "src/com/netio.h"

namespace oskit {

inline constexpr size_t kEtherAddrSize = 6;
inline constexpr size_t kEtherHeaderSize = 14;
inline constexpr size_t kEtherMtu = 1500;
inline constexpr size_t kEtherMaxFrame = kEtherHeaderSize + kEtherMtu;
inline constexpr size_t kEtherMinFrame = 60;  // without FCS

struct EtherAddr {
  uint8_t bytes[kEtherAddrSize] = {};

  friend bool operator==(const EtherAddr& a, const EtherAddr& b) {
    for (size_t i = 0; i < kEtherAddrSize; ++i) {
      if (a.bytes[i] != b.bytes[i]) {
        return false;
      }
    }
    return true;
  }

  bool IsBroadcast() const {
    for (uint8_t b : bytes) {
      if (b != 0xff) {
        return false;
      }
    }
    return true;
  }
};

inline constexpr EtherAddr kEtherBroadcast = {{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};

class EtherDev : public IUnknown {
 public:
  static constexpr Guid kIid = MakeGuid(0x4aa7dfed, 0x7c74, 0x11cf, 0xb5, 0x00, 0x08,
                                        0x00, 0x09, 0x53, 0xad, 0xc2);

  // Opens the device.  `recv` is the client's NetIo: the driver pushes every
  // received frame (including the 14-byte Ethernet header) into it.  Returns
  // the driver's send-side NetIo in *out_send.  The exchange-of-callbacks
  // binding described in §5.
  virtual Error Open(NetIo* recv, NetIo** out_send) = 0;

  // Stops delivery and drops the reference to the client's NetIo.
  virtual Error Close() = 0;

  // Station (MAC) address.
  virtual Error GetAddr(EtherAddr* out_addr) = 0;

 protected:
  ~EtherDev() = default;
};

}  // namespace oskit

#endif  // OSKIT_SRC_COM_ETHERDEV_H_
