// File system COM interfaces (§3.8).
//
// The granularity deliberately mirrors the Unix VFS layer: Dir::Lookup takes
// a SINGLE pathname component, never a path.  The paper's secure-fileserver
// case study depends on exactly this — a security wrapper interposes on each
// component lookup to do permission checking while the fileserver's own
// external interface accepts full paths.

#ifndef OSKIT_SRC_COM_FILESYSTEM_H_
#define OSKIT_SRC_COM_FILESYSTEM_H_

#include <cstddef>
#include <cstdint>

#include "src/com/iunknown.h"

namespace oskit {

enum class FileType : uint32_t {
  kRegular = 1,
  kDirectory = 2,
};

// Subset of struct stat the components exchange.  Conversions between a
// donor OS's native stat layout and this one happen in glue code (§4.7.2).
struct FileStat {
  uint64_t ino = 0;
  FileType type = FileType::kRegular;
  uint32_t mode = 0;  // permission bits, 0o777 mask
  uint32_t nlink = 0;
  uint64_t size = 0;
  uint64_t blocks = 0;  // 512-byte units, like st_blocks
  uint32_t uid = 0;
  uint32_t gid = 0;
  uint64_t mtime = 0;  // simulated-clock ticks
};

struct FsStat {
  uint32_t block_size = 0;
  uint64_t total_blocks = 0;
  uint64_t free_blocks = 0;
  uint64_t total_inodes = 0;
  uint64_t free_inodes = 0;
};

struct DirEntry {
  uint64_t ino = 0;
  FileType type = FileType::kRegular;
  char name[60] = {};
};

class File : public IUnknown {
 public:
  static constexpr Guid kIid = MakeGuid(0x3e9c2d10, 0x0df4, 0x11d0, 0xa6, 0xbe, 0x00,
                                        0xa0, 0xc9, 0x0a, 0x5f, 0x31);

  virtual Error Read(void* buf, uint64_t offset, size_t amount, size_t* out_actual) = 0;
  virtual Error Write(const void* buf, uint64_t offset, size_t amount,
                      size_t* out_actual) = 0;
  virtual Error GetStat(FileStat* out_stat) = 0;
  virtual Error SetSize(uint64_t new_size) = 0;
  virtual Error Sync() = 0;

 protected:
  ~File() = default;
};

class Dir : public File {
 public:
  static constexpr Guid kIid = MakeGuid(0x3e9c2d11, 0x0df4, 0x11d0, 0xa6, 0xbe, 0x00,
                                        0xa0, 0xc9, 0x0a, 0x5f, 0x31);

  // Looks up ONE pathname component (no '/' allowed).  "." and ".." work.
  // On success returns the object as a File; callers Query for Dir when they
  // need directory operations (safe downcast, §4.4.2).
  virtual Error Lookup(const char* name, File** out_file) = 0;

  // Creates a regular file.  kExist if the name is taken.
  virtual Error Create(const char* name, uint32_t mode, File** out_file) = 0;

  virtual Error Mkdir(const char* name, uint32_t mode) = 0;
  virtual Error Unlink(const char* name) = 0;
  virtual Error Rmdir(const char* name) = 0;
  virtual Error Rename(const char* old_name, Dir* new_dir, const char* new_name) = 0;

  // Reads directory entries starting at *inout_offset (an opaque cursor).
  // Fills at most `capacity` entries; *out_count == 0 signals end.
  virtual Error ReadDir(uint64_t* inout_offset, DirEntry* entries, size_t capacity,
                        size_t* out_count) = 0;

 protected:
  ~Dir() = default;
};

class FileSystem : public IUnknown {
 public:
  static constexpr Guid kIid = MakeGuid(0x3e9c2d12, 0x0df4, 0x11d0, 0xa6, 0xbe, 0x00,
                                        0xa0, 0xc9, 0x0a, 0x5f, 0x31);

  virtual Error GetRoot(Dir** out_root) = 0;
  virtual Error StatFs(FsStat* out_stat) = 0;
  virtual Error Sync() = 0;

  // Detaches from the underlying BlkIo after flushing.  All Files/Dirs
  // obtained from this filesystem become invalid.
  virtual Error Unmount() = 0;

 protected:
  ~FileSystem() = default;
};

}  // namespace oskit

#endif  // OSKIT_SRC_COM_FILESYSTEM_H_
