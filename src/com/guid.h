// Globally Unique Identifiers for COM interfaces (paper section 4.4).
//
// Every oskit-cpp interface is identified by a GUID; objects can be queried
// at run time for any interface they implement ("safe downcasting", section
// 4.4.2).  The layout matches the DCE UUID structure the paper uses in its
// Figure 2 BLKIO_IID definition.

#ifndef OSKIT_SRC_COM_GUID_H_
#define OSKIT_SRC_COM_GUID_H_

#include <cstdint>

namespace oskit {

struct Guid {
  uint32_t data1;
  uint16_t data2;
  uint16_t data3;
  uint8_t data4[8];

  friend constexpr bool operator==(const Guid& a, const Guid& b) {
    if (a.data1 != b.data1 || a.data2 != b.data2 || a.data3 != b.data3) {
      return false;
    }
    for (int i = 0; i < 8; ++i) {
      if (a.data4[i] != b.data4[i]) {
        return false;
      }
    }
    return true;
  }
};

// Convenience constructor mirroring the paper's GUID(...) macro.
constexpr Guid MakeGuid(uint32_t d1, uint16_t d2, uint16_t d3, uint8_t b0, uint8_t b1,
                        uint8_t b2, uint8_t b3, uint8_t b4, uint8_t b5, uint8_t b6,
                        uint8_t b7) {
  return Guid{d1, d2, d3, {b0, b1, b2, b3, b4, b5, b6, b7}};
}

}  // namespace oskit

#endif  // OSKIT_SRC_COM_GUID_H_
