// The COM base interface and reference-management helpers (paper section 4.4).
//
// A COM interface in the paper is a struct whose first member points to a
// table of function pointers; the natural C++ rendering is an abstract class
// whose vtable plays that role.  The three IUnknown methods — Query, AddRef,
// Release — carry exactly the semantics of sections 4.4.1/4.4.2:
//
//  * Query(iid, out) succeeds iff the object implements the interface named
//    by `iid`, returning a pointer usable as that interface (and taking a
//    reference on behalf of the caller).  This is the interface-extension /
//    safe-downcast mechanism: a client probes for an extended interface such
//    as BufIo and falls back to the base BlkIo when Query says kNoInterface.
//  * AddRef/Release are per-object reference counts; Release destroys the
//    object when the count reaches zero.
//
// Interfaces here require NO common support code from the client (4.4.3):
// any object that implements these three methods interoperates, regardless
// of how it manages its own storage.

#ifndef OSKIT_SRC_COM_IUNKNOWN_H_
#define OSKIT_SRC_COM_IUNKNOWN_H_

#include <cstdint>
#include <utility>

#include "src/base/error.h"
#include "src/base/panic.h"
#include "src/com/guid.h"

namespace oskit {

class IUnknown {
 public:
  static constexpr Guid kIid =
      MakeGuid(0x00000000, 0x0000, 0x0000, 0xc0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
               0x46);

  // Queries for the interface named `iid`.  On success stores a usable
  // interface pointer in *out (with a reference added) and returns kOk;
  // otherwise stores nullptr and returns kNoInterface.
  virtual Error Query(const Guid& iid, void** out) = 0;

  // Reference counting.  Both return the new count (diagnostic only).
  virtual uint32_t AddRef() = 0;
  virtual uint32_t Release() = 0;

 protected:
  // COM objects are destroyed via Release(), never via delete-through-base.
  ~IUnknown() = default;
};

// Typed Query helper: probes `object` for interface T.  Generic over the
// object's static type so that objects reaching IUnknown through several
// interface bases (MemBlkIo: BufIo and BlkIoBarrier) need no ambiguous
// up-conversion — Query itself is unambiguous, whichever vtable it is
// reached through.
template <typename T, typename Obj>
Error QueryFor(Obj* object, T** out) {
  void* raw = nullptr;
  Error err = object->Query(T::kIid, &raw);
  *out = static_cast<T*>(raw);
  return err;
}

// Smart reference to a COM interface.  Owns one reference.
template <typename T>
class ComPtr {
 public:
  ComPtr() = default;

  // Adopts `ptr` WITHOUT adding a reference (for "returns a new reference"
  // factory results).  Use Retain() to copy an existing borrowed pointer.
  explicit ComPtr(T* ptr) : ptr_(ptr) {}

  static ComPtr Retain(T* ptr) {
    if (ptr != nullptr) {
      ptr->AddRef();
    }
    return ComPtr(ptr);
  }

  ComPtr(const ComPtr& other) : ptr_(other.ptr_) {
    if (ptr_ != nullptr) {
      ptr_->AddRef();
    }
  }

  ComPtr(ComPtr&& other) noexcept : ptr_(other.ptr_) { other.ptr_ = nullptr; }

  ComPtr& operator=(const ComPtr& other) {
    if (this != &other) {
      Reset();
      ptr_ = other.ptr_;
      if (ptr_ != nullptr) {
        ptr_->AddRef();
      }
    }
    return *this;
  }

  ComPtr& operator=(ComPtr&& other) noexcept {
    if (this != &other) {
      Reset();
      ptr_ = other.ptr_;
      other.ptr_ = nullptr;
    }
    return *this;
  }

  ~ComPtr() { Reset(); }

  void Reset() {
    if (ptr_ != nullptr) {
      ptr_->Release();
      ptr_ = nullptr;
    }
  }

  // Receives an out-parameter result: `factory->Make(&ptr.Receive())`.
  // Any held reference is dropped first.
  T** Receive() {
    Reset();
    return &ptr_;
  }

  void** ReceiveVoid() { return reinterpret_cast<void**>(Receive()); }

  // Releases ownership to the caller without dropping the reference.
  T* Detach() {
    T* p = ptr_;
    ptr_ = nullptr;
    return p;
  }

  T* get() const { return ptr_; }
  T* operator->() const {
    OSKIT_ASSERT(ptr_ != nullptr);
    return ptr_;
  }
  T& operator*() const {
    OSKIT_ASSERT(ptr_ != nullptr);
    return *ptr_;
  }
  explicit operator bool() const { return ptr_ != nullptr; }

  // Queries `object` for T and wraps the result.
  template <typename Obj>
  static ComPtr FromQuery(Obj* object) {
    T* raw = nullptr;
    if (object == nullptr || !Ok(QueryFor(object, &raw))) {
      return ComPtr();
    }
    return ComPtr(raw);
  }

 private:
  T* ptr_ = nullptr;
};

// CRTP mixin supplying the reference-count half of IUnknown.  The derived
// class still implements Query() itself (interface composition is per-type).
//
// Counts are plain integers, not atomics: OSKit components follow the
// process-level/interrupt-level concurrency model of section 4.7.4, in which
// at most one thread of control executes inside a component at a time.
template <typename Derived>
class RefCounted {
 public:
  uint32_t AddRefImpl() { return ++refs_; }

  uint32_t ReleaseImpl() {
    OSKIT_ASSERT_MSG(refs_ > 0, "Release() on dead object");
    uint32_t remaining = --refs_;
    if (remaining == 0) {
      delete static_cast<Derived*>(this);
    }
    return remaining;
  }

  uint32_t ref_count() const { return refs_; }

 protected:
  ~RefCounted() = default;

 private:
  uint32_t refs_ = 1;  // born referenced, COM style
};

// Expands to the boilerplate AddRef/Release overrides inside a class that
// mixes in RefCounted<Self>.
#define OSKIT_REFCOUNTED_BOILERPLATE()                       \
  uint32_t AddRef() override { return this->AddRefImpl(); } \
  uint32_t Release() override { return this->ReleaseImpl(); }

}  // namespace oskit

#endif  // OSKIT_SRC_COM_IUNKNOWN_H_
