#include "src/com/memblkio.h"

#include <cstring>

namespace oskit {

MemBlkIo::MemBlkIo(size_t size, uint32_t block_size)
    : data_(size, 0), block_size_(block_size) {
  OSKIT_ASSERT(block_size >= 1);
}

ComPtr<MemBlkIo> MemBlkIo::Create(size_t size, uint32_t block_size) {
  return ComPtr<MemBlkIo>(new MemBlkIo(size, block_size));
}

ComPtr<MemBlkIo> MemBlkIo::CreateFrom(const void* data, size_t size,
                                      uint32_t block_size) {
  auto io = Create(size, block_size);
  std::memcpy(io->data_.data(), data, size);
  return io;
}

Error MemBlkIo::Query(const Guid& iid, void** out) {
  if (iid == IUnknown::kIid || iid == BlkIo::kIid || iid == BufIo::kIid) {
    AddRef();
    *out = static_cast<BufIo*>(this);
    return Error::kOk;
  }
  if (iid == BlkIoBarrier::kIid) {
    AddRef();
    *out = static_cast<BlkIoBarrier*>(this);
    return Error::kOk;
  }
  *out = nullptr;
  return Error::kNoInterface;
}

// Bounds discipline (shared with SkBuffIo and MbufBufIo): off_t64 is
// unsigned, so a "negative" offset arrives huge and `offset + amount` can
// wrap.  Check the offset first, then compare against the remainder; a range
// whose sum genuinely wraps is a caller bug (kInval), an ordinary past-end
// range keeps the short-read clamp.

Error MemBlkIo::Read(void* buf, off_t64 offset, size_t amount, size_t* out_actual) {
  *out_actual = 0;
  if (offset > data_.size()) {
    return Error::kOutOfRange;
  }
  size_t avail = data_.size() - static_cast<size_t>(offset);
  if (amount > avail && offset + amount < offset) {
    return Error::kInval;
  }
  size_t n = amount < avail ? amount : avail;
  std::memcpy(buf, data_.data() + offset, n);
  *out_actual = n;
  return Error::kOk;
}

Error MemBlkIo::Write(const void* buf, off_t64 offset, size_t amount,
                      size_t* out_actual) {
  *out_actual = 0;
  if (offset > data_.size()) {
    return Error::kOutOfRange;
  }
  size_t avail = data_.size() - static_cast<size_t>(offset);
  if (amount > avail && offset + amount < offset) {
    return Error::kInval;
  }
  size_t n = amount < avail ? amount : avail;
  std::memcpy(data_.data() + offset, buf, n);
  *out_actual = n;
  return Error::kOk;
}

Error MemBlkIo::GetSize(off_t64* out_size) {
  *out_size = data_.size();
  return Error::kOk;
}

Error MemBlkIo::SetSize(off_t64 new_size) {
  if (maps_outstanding_ != 0) {
    // Resizing would invalidate mapped pointers.
    return Error::kBusy;
  }
  data_.resize(new_size, 0);
  return Error::kOk;
}

Error MemBlkIo::Map(void** out_addr, off_t64 offset, size_t amount) {
  if (offset > data_.size()) {
    return Error::kOutOfRange;
  }
  if (amount > data_.size() - static_cast<size_t>(offset)) {
    return offset + amount < offset ? Error::kInval : Error::kOutOfRange;
  }
  ++maps_outstanding_;
  *out_addr = data_.data() + offset;
  return Error::kOk;
}

Error MemBlkIo::Unmap(void* addr, off_t64 offset, size_t amount) {
  OSKIT_ASSERT_MSG(maps_outstanding_ > 0, "Unmap without Map");
  --maps_outstanding_;
  return Error::kOk;
}

}  // namespace oskit
