// RAM-backed BufIo implementation.
//
// Serves as the OSKit's RAM-disk object: it backs the boot-module filesystem
// (§6.2.2), provides the buffered-object example from §4.4.2 (supports the
// extended BufIo interface where a raw disk driver supports only BlkIo), and
// is the workhorse storage object in tests.

#ifndef OSKIT_SRC_COM_MEMBLKIO_H_
#define OSKIT_SRC_COM_MEMBLKIO_H_

#include <cstdint>
#include <vector>

#include "src/com/bufio.h"

namespace oskit {

class MemBlkIo final : public BufIo, public BlkIoBarrier, public RefCounted<MemBlkIo> {
 public:
  // Creates an object of `size` zero bytes.  `block_size` is the advertised
  // granularity (1 for byte-addressable RAM objects).
  static ComPtr<MemBlkIo> Create(size_t size, uint32_t block_size = 1);

  // Creates an object holding a copy of [data, data+size).
  static ComPtr<MemBlkIo> CreateFrom(const void* data, size_t size,
                                     uint32_t block_size = 1);

  // IUnknown
  Error Query(const Guid& iid, void** out) override;
  OSKIT_REFCOUNTED_BOILERPLATE()

  // BlkIo
  uint32_t GetBlockSize() override { return block_size_; }
  Error Read(void* buf, off_t64 offset, size_t amount, size_t* out_actual) override;
  Error Write(const void* buf, off_t64 offset, size_t amount,
              size_t* out_actual) override;
  Error GetSize(off_t64* out_size) override;
  Error SetSize(off_t64 new_size) override;

  // BufIo
  Error Map(void** out_addr, off_t64 offset, size_t amount) override;
  Error Unmap(void* addr, off_t64 offset, size_t amount) override;
  Error Wire() override { return Error::kOk; }
  Error Unwire() override { return Error::kOk; }

  // BlkIoBarrier: RAM is "durable" the moment a Write returns.
  Error Flush() override { return Error::kOk; }

  // Direct access for owners (open implementation, §4.6).
  uint8_t* data() { return data_.data(); }
  size_t size() const { return data_.size(); }

 private:
  friend class RefCounted<MemBlkIo>;
  MemBlkIo(size_t size, uint32_t block_size);
  ~MemBlkIo() = default;

  std::vector<uint8_t> data_;
  uint32_t block_size_;
  uint32_t maps_outstanding_ = 0;
};

}  // namespace oskit

#endif  // OSKIT_SRC_COM_MEMBLKIO_H_
