// Network packet I/O interface.
//
// The OSKit connects drivers and protocol stacks with symmetric "push"
// endpoints (§5): when the client binds a stack to a driver they exchange
// NetIo callbacks; the driver pushes received packets into the stack's NetIo
// and the stack pushes outgoing packets into the driver's NetIo.  Packets
// are opaque BufIo objects, so neither side sees the other's buffer scheme.

#ifndef OSKIT_SRC_COM_NETIO_H_
#define OSKIT_SRC_COM_NETIO_H_

#include "src/com/bufio.h"

namespace oskit {

class NetIo : public IUnknown {
 public:
  static constexpr Guid kIid = MakeGuid(0x4aa7dfec, 0x7c74, 0x11cf, 0xb5, 0x00, 0x08,
                                        0x00, 0x09, 0x53, 0xad, 0xc2);

  // Delivers one packet of `size` bytes.  The callee may Map() the buffer for
  // zero-copy access or Read() it; it must take its own reference if it keeps
  // the packet beyond the call.
  virtual Error Push(BufIo* packet, size_t size) = 0;

 protected:
  ~NetIo() = default;
};

// Batched delivery, the §4.4.2 interface-extension idiom: a receiver that
// can amortize per-packet work (one TCP delayed-ACK/scheduling pass per
// burst instead of per frame) additionally implements NetIoBatch, and a
// polled driver discovers it via Query.  Pushes between BeginBatch() and
// EndBatch() may defer their response processing until EndBatch(); the
// bracket must not be nested.  A receiver exposing only plain NetIo gets
// per-packet behaviour, unchanged.
class NetIoBatch : public NetIo {
 public:
  static constexpr Guid kIid = MakeGuid(0x4aa7dfed, 0x7c74, 0x11cf, 0xb5, 0x00, 0x08,
                                        0x00, 0x09, 0x53, 0xad, 0xc2);

  virtual void BeginBatch() = 0;
  virtual void EndBatch() = 0;

 protected:
  ~NetIoBatch() = default;
};

}  // namespace oskit

#endif  // OSKIT_SRC_COM_NETIO_H_
