// Readiness-notification interfaces for scalable socket servers.
//
// The paper's socket interface (src/com/socket.h) is the classic blocking
// BSD model: one thread of control per connection, parked in sleep/wakeup.
// That model collapses at thousands of connections — the C10k problem — so
// the stack also exports NetSelector, an epoll-style readiness interface:
// register a socket with an interest mask once, then harvest batches of
// ready sockets from one thread.  Like every optional capability in the
// OSKit (§4.4.2), it is a separate COM interface discovered via Query, so
// clients that never need it pay nothing and foreign stacks simply don't
// implement it.
//
// SocketExt is the companion per-socket extension interface: non-blocking
// mode (so one server loop can service every ready socket without parking)
// and batched accept (drain a listener's whole accept queue in one call).

#ifndef OSKIT_SRC_COM_NETSELECTOR_H_
#define OSKIT_SRC_COM_NETSELECTOR_H_

#include <cstddef>
#include <cstdint>

#include "src/com/iunknown.h"
#include "src/com/socket.h"

namespace oskit {

// Readiness event bits.  kNetError is always reported regardless of the
// registered interest mask (epoll's EPOLLERR/EPOLLHUP rule).
inline constexpr uint32_t kNetReadable = 1u << 0;
inline constexpr uint32_t kNetWritable = 1u << 1;
inline constexpr uint32_t kNetError = 1u << 2;

struct NetReadyEvent {
  Socket* socket = nullptr;  // borrowed: no reference is added
  void* token = nullptr;     // the registration's opaque cookie
  uint32_t events = 0;       // kNet* bits ready at harvest time
};

class NetSelector : public IUnknown {
 public:
  static constexpr Guid kIid = MakeGuid(0x8f2d3b62, 0x0df2, 0x11d0, 0xa6, 0xbe,
                                        0x00, 0xa0, 0xc9, 0x0a, 0x5f, 0x31);

  // Registers `socket` with the given interest mask.  `edge` selects
  // edge-triggered delivery (wake only on new readiness); level-triggered
  // registrations stay on the ready list while the condition holds.
  // `token` is returned verbatim in harvested events.  A socket already
  // registered with a selector returns kBusy; a socket that is currently
  // ready is reported by the next Wait without needing a fresh event.
  // Registration is weak: the selector takes no reference, and a socket
  // that dies unregisters itself.
  virtual Error Add(Socket* socket, uint32_t interest, bool edge,
                    void* token) = 0;

  // Changes the interest mask / trigger mode of a registration.
  virtual Error Modify(Socket* socket, uint32_t interest, bool edge) = 0;

  virtual Error Remove(Socket* socket) = 0;

  // Harvests up to `capacity` ready registrations.  With `block` set, parks
  // the caller (sleep/wakeup) until at least one event is available; with
  // it clear, returns immediately (possibly zero events).
  virtual Error Wait(NetReadyEvent* out_events, size_t capacity, bool block,
                     size_t* out_count) = 0;

 protected:
  ~NetSelector() = default;
};

class SocketExt : public IUnknown {
 public:
  static constexpr Guid kIid = MakeGuid(0x8f2d3b63, 0x0df2, 0x11d0, 0xa6, 0xbe,
                                        0x00, 0xa0, 0xc9, 0x0a, 0x5f, 0x32);

  // Non-blocking mode: operations that would park the caller return
  // kWouldBlock instead (Send may return a short count first).
  virtual Error SetNonBlocking(bool on) = 0;

  // Drains up to `capacity` established connections from a listener's
  // accept queue without blocking.  Always returns kOk with *out_count
  // possibly zero; each accepted socket is returned with one reference.
  virtual Error AcceptBatch(SockAddr* out_peers, Socket** out_sockets,
                            size_t capacity, size_t* out_count) = 0;

 protected:
  ~SocketExt() = default;
};

}  // namespace oskit

#endif  // OSKIT_SRC_COM_NETSELECTOR_H_
