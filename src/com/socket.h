// Socket and socket-factory interfaces (§5).
//
// The protocol stack component exports a SocketFactory; the minimal C
// library's socket() call is routed through a client-registered factory
// (posix_set_socketcreator), so ANY stack that implements these two
// interfaces can sit behind the POSIX socket API.

#ifndef OSKIT_SRC_COM_SOCKET_H_
#define OSKIT_SRC_COM_SOCKET_H_

#include <cstddef>
#include <cstdint>

#include "src/com/bufio.h"
#include "src/com/iunknown.h"

namespace oskit {

// IPv4 address in host byte order.
struct InetAddr {
  uint32_t value = 0;

  friend constexpr bool operator==(InetAddr a, InetAddr b) { return a.value == b.value; }
  friend constexpr bool operator!=(InetAddr a, InetAddr b) { return a.value != b.value; }

  constexpr bool IsAny() const { return value == 0; }
};

constexpr InetAddr MakeInetAddr(uint8_t a, uint8_t b, uint8_t c, uint8_t d) {
  return InetAddr{(static_cast<uint32_t>(a) << 24) | (static_cast<uint32_t>(b) << 16) |
                  (static_cast<uint32_t>(c) << 8) | d};
}

inline constexpr InetAddr kInetAny = InetAddr{0};
inline constexpr InetAddr kInetBroadcast = InetAddr{0xffffffff};

// Socket-level endpoint address (family is implicitly AF_INET here; the
// factory's domain argument selects the family as in POSIX).
struct SockAddr {
  InetAddr addr;
  uint16_t port = 0;

  friend bool operator==(const SockAddr& a, const SockAddr& b) {
    return a.addr == b.addr && a.port == b.port;
  }
};

enum class SockDomain : int32_t {
  kInet = 2,  // AF_INET
};

enum class SockType : int32_t {
  kStream = 1,  // SOCK_STREAM (TCP)
  kDgram = 2,   // SOCK_DGRAM (UDP)
};

enum class SockShutdown : int32_t {
  kRead = 0,
  kWrite = 1,
  kBoth = 2,
};

class Socket : public IUnknown {
 public:
  static constexpr Guid kIid = MakeGuid(0x8f2d3b61, 0x0df2, 0x11d0, 0xa6, 0xbe, 0x00,
                                        0xa0, 0xc9, 0x0a, 0x5f, 0x2f);

  virtual Error Bind(const SockAddr& addr) = 0;

  // Stream: initiates the TCP handshake and blocks until established or
  // refused.  Dgram: records the default destination.
  virtual Error Connect(const SockAddr& addr) = 0;

  virtual Error Listen(int backlog) = 0;

  // Blocks until a connection is accepted; returns the peer address and a
  // new Socket carrying the connection.
  virtual Error Accept(SockAddr* out_peer, Socket** out_socket) = 0;

  // Stream semantics: Send blocks until all bytes are queued to the send
  // buffer; Recv blocks until at least one byte (or EOF → *out_actual == 0).
  virtual Error Send(const void* buf, size_t amount, size_t* out_actual) = 0;
  virtual Error Recv(void* buf, size_t amount, size_t* out_actual) = 0;

  // Datagram endpoints; streams return kNotImpl for the *To/*From forms
  // unless connected.
  virtual Error SendTo(const void* buf, size_t amount, const SockAddr& to,
                       size_t* out_actual) = 0;
  virtual Error RecvFrom(void* buf, size_t amount, SockAddr* out_from,
                         size_t* out_actual) = 0;

  virtual Error Shutdown(SockShutdown how) = 0;

  virtual Error GetSockName(SockAddr* out_addr) = 0;
  virtual Error GetPeerName(SockAddr* out_addr) = 0;

 protected:
  ~Socket() = default;
};

// Zero-copy transmit extension (new GUID, discovered via Query — the §4.4.2
// evolution idiom again).  SendBufIo is sendfile: the socket pulls the bytes
// out of a BufIoVec object (a file exporting its cached blocks, an mbuf
// chain, ...) via Vectors() and queues them for transmission WITHOUT copying
// them through the socket-layer send buffer; the pin taken by Vectors is
// held until TCP has no further use for the bytes (acknowledged, so no
// retransmission can need them).  Implementations fall back internally to a
// counted copy when the source refuses a vector, so the call always makes
// progress; only stream sockets export the interface.
class SocketZeroCopy : public IUnknown {
 public:
  static constexpr Guid kIid = MakeGuid(0x8f2d3b64, 0x0df2, 0x11d0, 0xa6, 0xbe, 0x00,
                                        0xa0, 0xc9, 0x0a, 0x5f, 0x33);

  // Queues bytes [offset, offset+amount) of `src` for transmission.  Same
  // blocking/short-write contract as Socket::Send: blocking sockets return
  // only when everything is queued, nonblocking ones may accept a prefix
  // (*out_actual < amount) or return kWouldBlock having accepted nothing.
  virtual Error SendBufIo(BufIoVec* src, off_t64 offset, size_t amount,
                          size_t* out_actual) = 0;

 protected:
  ~SocketZeroCopy() = default;
};

class SocketFactory : public IUnknown {
 public:
  static constexpr Guid kIid = MakeGuid(0x5ea0a280, 0x0df3, 0x11d0, 0xa6, 0xbe, 0x00,
                                        0xa0, 0xc9, 0x0a, 0x5f, 0x30);

  // Creates an unbound socket of the requested domain/type.
  virtual Error Create(SockDomain domain, SockType type, Socket** out_socket) = 0;

 protected:
  ~SocketFactory() = default;
};

}  // namespace oskit

#endif  // OSKIT_SRC_COM_SOCKET_H_
