// COM faces of the trace component (src/trace): unified counters and the
// flight recorder, exported the way every other OSKit component exports its
// services so a client kernel can bind them at run time and Query between
// them (§4.4.2 interface extension).
//
// CounterSet — read/reset access to the hierarchical counter registry
// (net.tcp.retransmits, glue.send.copied_bytes, ...).  TraceLog — read/clear
// access to the flight-recorder ring.  One concrete object
// (oskit::trace::TraceComponent) implements both; clients probe with Query
// for whichever face they need.

#ifndef OSKIT_SRC_COM_TRACE_H_
#define OSKIT_SRC_COM_TRACE_H_

#include <cstddef>
#include <cstdint>

#include "src/com/iunknown.h"

namespace oskit {

struct CounterInfo {
  const char* name = "";  // hierarchical dotted name, valid while registered
  uint64_t value = 0;
  bool gauge = false;  // gauges may move in both directions
};

class CounterSet : public IUnknown {
 public:
  static constexpr Guid kIid = MakeGuid(0x7b332001, 0x0e01, 0x11d0, 0xa6, 0xbe, 0x00,
                                        0xa0, 0xc9, 0x0a, 0x5f, 0x41);

  // Number of distinct registered names.
  virtual Error GetCount(size_t* out_count) = 0;

  // Counters are indexed 0..count-1 in name order; the order is stable
  // while no counter is registered or unregistered.
  virtual Error GetCounter(size_t index, CounterInfo* out_info) = 0;

  // kNoEnt when no counter has that name.
  virtual Error Lookup(const char* name, uint64_t* out_value) = 0;

  // Zeroes every counter.
  virtual Error Reset() = 0;

 protected:
  ~CounterSet() = default;
};

struct TraceRecord {
  uint64_t seq = 0;       // global recording order
  uint64_t time = 0;      // environment time source (sim clock)
  uint32_t type = 0;      // oskit::trace::EventType value
  const char* type_name = "";
  const char* tag = "";   // static string naming the recording site
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
};

class TraceLog : public IUnknown {
 public:
  static constexpr Guid kIid = MakeGuid(0x7b332002, 0x0e01, 0x11d0, 0xa6, 0xbe, 0x00,
                                        0xa0, 0xc9, 0x0a, 0x5f, 0x42);

  // Events currently buffered (<= ring capacity).  Named distinctly from
  // CounterSet::GetCount so one object can implement both faces.
  virtual Error GetEventCount(size_t* out_count) = 0;

  // index 0 = oldest buffered event.  kInval past the end.
  virtual Error Read(size_t index, TraceRecord* out_record) = 0;

  // Total ever recorded, including events lost to ring wrap-around.
  virtual Error GetTotalRecorded(uint64_t* out_total) = 0;

  virtual Error Clear() = 0;

 protected:
  ~TraceLog() = default;
};

}  // namespace oskit

#endif  // OSKIT_SRC_COM_TRACE_H_
