#include "src/dev/fdev/fdev.h"

#include <cstring>

namespace oskit {
namespace {

void* DefaultMemAlloc(void* ctx, size_t size, uint32_t flags) {
  auto* kernel = static_cast<KernelEnv*>(ctx);
  uint32_t lmm_flags = (flags & FdevEnv::kDmaReachable) != 0 ? kLmmFlag16Mb : 0;
  return kernel->MemAlloc(size, lmm_flags);
}

void DefaultMemFree(void* ctx, void* ptr, size_t size) {
  static_cast<KernelEnv*>(ctx)->MemFree(ptr, size);
}

void DefaultIrqAttach(void* ctx, int irq, std::function<void()> handler) {
  static_cast<KernelEnv*>(ctx)->IrqRegister(irq, std::move(handler));
}

void DefaultIrqDetach(void* ctx, int irq) {
  static_cast<KernelEnv*>(ctx)->IrqUnregister(irq);
}

uint64_t DefaultNowNs(void* ctx) {
  return static_cast<KernelEnv*>(ctx)->machine().clock().Now();
}

// Timer tokens are simulation event ids; kInvalidEvent is 0, so a null
// token can never collide with a live timer.
void* DefaultTimerStart(void* ctx, uint64_t ns, std::function<void()> fn) {
  SimClock& clock = static_cast<KernelEnv*>(ctx)->machine().clock();
  SimClock::EventId id = clock.ScheduleAfter(ns, std::move(fn));
  return reinterpret_cast<void*>(static_cast<uintptr_t>(id));
}

bool DefaultTimerCancel(void* ctx, void* token) {
  SimClock& clock = static_cast<KernelEnv*>(ctx)->machine().clock();
  auto id = static_cast<SimClock::EventId>(reinterpret_cast<uintptr_t>(token));
  return id != SimClock::kInvalidEvent && clock.Cancel(id);
}

}  // namespace

FdevEnv DefaultFdevEnv(KernelEnv* kernel) {
  FdevEnv env;
  env.mem_alloc = &DefaultMemAlloc;
  env.mem_free = &DefaultMemFree;
  env.irq_attach = &DefaultIrqAttach;
  env.irq_detach = &DefaultIrqDetach;
  env.now_ns = &DefaultNowNs;
  env.timer_start = &DefaultTimerStart;
  env.timer_cancel = &DefaultTimerCancel;
  env.sleep_env = &kernel->sleep_env();
  env.trace = &kernel->trace();
  env.fault = &kernel->fault();
  env.ctx = kernel;
  return env;
}

std::vector<ComPtr<Device>> DeviceRegistry::LookupByInterface(const Guid& iid) const {
  std::vector<ComPtr<Device>> found;
  for (const ComPtr<Device>& device : devices_) {
    void* probe = nullptr;
    if (Ok(device->Query(iid, &probe))) {
      static_cast<IUnknown*>(probe)->Release();
      found.push_back(device);
    }
  }
  return found;
}

ComPtr<Device> DeviceRegistry::LookupByName(const char* name) const {
  for (const ComPtr<Device>& device : devices_) {
    DeviceInfo info;
    if (Ok(device->GetInfo(&info)) && std::strcmp(info.name, name) == 0) {
      return device;
    }
  }
  return ComPtr<Device>();
}

}  // namespace oskit
