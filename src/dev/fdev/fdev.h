// Device-driver framework (paper §3.6) and the driver execution
// environment.
//
// FdevEnv is the "osenv": the set of services an encapsulated driver's glue
// code may ask of the client OS — memory typed for DMA, interrupt
// attachment, time, and sleep records.  Every entry has a default
// implementation bound to the kernel support library, and every entry can be
// overridden by the client (§4.2.1's f_devmemalloc pattern: "A default
// implementation of this function is provided ... but this default can
// easily be overridden by the client OS").
//
// DeviceRegistry is fdev_probe / fdev_device_lookup: drivers register the
// devices they find; clients look them up by the COM interface they need.

#ifndef OSKIT_SRC_DEV_FDEV_FDEV_H_
#define OSKIT_SRC_DEV_FDEV_FDEV_H_

#include <functional>
#include <vector>

#include "src/com/device.h"
#include "src/kern/kernel.h"
#include "src/sleep/sleep.h"

namespace oskit {

struct FdevEnv {
  // Memory flags.
  static constexpr uint32_t kDmaReachable = 1;  // must sit below 16 MB

  void* (*mem_alloc)(void* ctx, size_t size, uint32_t flags) = nullptr;
  void (*mem_free)(void* ctx, void* ptr, size_t size) = nullptr;

  // Interrupt management.  The handler runs at interrupt level.
  void (*irq_attach)(void* ctx, int irq, std::function<void()> handler) = nullptr;
  void (*irq_detach)(void* ctx, int irq) = nullptr;

  // Time.
  uint64_t (*now_ns)(void* ctx) = nullptr;

  // One-shot timers, for driver watchdogs: `fn` runs at interrupt level
  // after `ns`.  timer_start returns a token for timer_cancel; cancelling
  // an already-fired timer is a harmless no-op returning false.
  void* (*timer_start)(void* ctx, uint64_t ns, std::function<void()> fn) = nullptr;
  bool (*timer_cancel)(void* ctx, void* token) = nullptr;

  // Blocking: the one primitive (§4.7.6).
  SleepEnv* sleep_env = nullptr;

  // Observability environment the glue reports into (src/trace); null binds
  // the process-global default, like every other entry's fallback.
  trace::TraceEnv* trace = nullptr;

  // Fault-injection environment the glue probes (src/fault); null binds the
  // process-global default, which has nothing armed.
  fault::FaultEnv* fault = nullptr;

  void* ctx = nullptr;
};

// The default environment: LMM memory, KernelEnv IRQ routing, the machine
// clock, and the kernel's sleep environment.
FdevEnv DefaultFdevEnv(KernelEnv* kernel);

class DeviceRegistry {
 public:
  DeviceRegistry() = default;
  DeviceRegistry(const DeviceRegistry&) = delete;
  DeviceRegistry& operator=(const DeviceRegistry&) = delete;

  void Register(ComPtr<Device> device) { devices_.push_back(std::move(device)); }

  size_t count() const { return devices_.size(); }

  // All devices exposing the interface `iid` (fdev_device_lookup).
  std::vector<ComPtr<Device>> LookupByInterface(const Guid& iid) const;

  // First device whose DeviceInfo::name matches.
  ComPtr<Device> LookupByName(const char* name) const;

 private:
  std::vector<ComPtr<Device>> devices_;
};

}  // namespace oskit

#endif  // OSKIT_SRC_DEV_FDEV_FDEV_H_
