#include "src/dev/freebsd/freebsd_char.h"

#include <cstring>

#include "src/base/panic.h"

namespace oskit::freebsddev {

// ---------------------------------------------------------------------------
// Clist
// ---------------------------------------------------------------------------

Clist::~Clist() {
  while (head_ != nullptr) {
    Cblock* next = head_->next;
    env_.mem_free(env_.ctx, head_, sizeof(Cblock));
    head_ = next;
  }
}

bool Clist::Putc(uint8_t c) {
  if (tail_ == nullptr || tail_fill_ == kCblockSize) {
    auto* block = static_cast<Cblock*>(env_.mem_alloc(env_.ctx, sizeof(Cblock), 0));
    if (block == nullptr) {
      return false;
    }
    block->next = nullptr;
    if (tail_ == nullptr) {
      head_ = block;
      head_off_ = 0;
    } else {
      tail_->next = block;
    }
    tail_ = block;
    tail_fill_ = 0;
    ++cblocks_allocated_;
  }
  tail_->data[tail_fill_++] = c;
  ++count_;
  return true;
}

int Clist::Getc() {
  if (count_ == 0) {
    return -1;
  }
  uint8_t c = head_->data[head_off_++];
  --count_;
  bool head_is_tail = head_ == tail_;
  size_t head_end = head_is_tail ? tail_fill_ : kCblockSize;
  if (head_off_ == head_end) {
    Cblock* dead = head_;
    head_ = head_->next;
    head_off_ = 0;
    if (head_ == nullptr) {
      tail_ = nullptr;
      tail_fill_ = 0;
    }
    env_.mem_free(env_.ctx, dead, sizeof(Cblock));
  }
  return c;
}

// ---------------------------------------------------------------------------
// BsdTtyDev
// ---------------------------------------------------------------------------

BsdTtyDev::BsdTtyDev(const FdevEnv& env, Uart* uart, int irq, std::string name)
    : env_(env),
      uart_(uart),
      irq_(irq),
      name_(std::move(name)),
      rx_queue_(env),
      reader_wait_(env.sleep_env) {
  env_.irq_attach(env_.ctx, irq_, [this] { RxInterrupt(); });
  uart_->EnableRxInterrupt(true);
}

BsdTtyDev::~BsdTtyDev() {
  uart_->EnableRxInterrupt(false);
  env_.irq_detach(env_.ctx, irq_);
}

Error BsdTtyDev::Query(const Guid& iid, void** out) {
  if (iid == IUnknown::kIid || iid == Device::kIid) {
    AddRef();
    *out = static_cast<Device*>(this);
    return Error::kOk;
  }
  if (iid == CharStream::kIid) {
    AddRef();
    *out = static_cast<CharStream*>(this);
    return Error::kOk;
  }
  *out = nullptr;
  return Error::kNoInterface;
}

Error BsdTtyDev::GetInfo(DeviceInfo* out_info) {
  out_info->name = name_.c_str();
  out_info->description = "4.4BSD-style tty over simulated UART";
  out_info->vendor = "freebsd";
  return Error::kOk;
}

void BsdTtyDev::RxInterrupt() {
  // Interrupt level: drain the FIFO into the clist, wake any reader.
  bool got = false;
  while (uart_->RxReady()) {
    rx_queue_.Putc(uart_->ReadByte());
    got = true;
  }
  if (got && reader_waiting_) {
    reader_wait_.Wakeup();
  }
}

Error BsdTtyDev::Read(void* buf, size_t amount, size_t* out_actual) {
  *out_actual = 0;
  if (amount == 0) {
    return Error::kOk;
  }
  auto* out = static_cast<uint8_t*>(buf);
  // Block (process level) until at least one character is queued.
  while (rx_queue_.count() == 0) {
    reader_waiting_ = true;
    reader_wait_.Sleep();
    reader_waiting_ = false;
  }
  size_t n = 0;
  while (n < amount) {
    int c = rx_queue_.Getc();
    if (c < 0) {
      break;
    }
    out[n++] = static_cast<uint8_t>(c);
  }
  *out_actual = n;
  return Error::kOk;
}

Error BsdTtyDev::Write(const void* buf, size_t amount, size_t* out_actual) {
  const auto* in = static_cast<const uint8_t*>(buf);
  for (size_t i = 0; i < amount; ++i) {
    uart_->WriteByte(in[i]);
  }
  *out_actual = amount;
  return Error::kOk;
}

// ---------------------------------------------------------------------------
// Probe
// ---------------------------------------------------------------------------

Error InitFreeBsdChar(const FdevEnv& env, Machine* machine, DeviceRegistry* registry) {
  registry->Register(
      ComPtr<Device>(new BsdTtyDev(env, &machine->console_uart(), 4, "console")));
  registry->Register(
      ComPtr<Device>(new BsdTtyDev(env, &machine->debug_uart(), 3, "sio0")));
  return Error::kOk;
}

}  // namespace oskit::freebsddev
