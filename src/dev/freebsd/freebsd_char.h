// FreeBSD-idiom character device drivers (paper §3.6: "eight character
// device drivers imported from FreeBSD ... supporting the standard PC
// console and serial port").
//
// The "imported" flavour here is the 4.4BSD clist — the linked small-block
// character queue every BSD tty is built on — plus interrupt-level input
// feeding the clist and sleep/wakeup for blocked readers.  The glue exports
// the tty as COM Device + CharStream, so these FreeBSD drivers sit in the
// same registry as the Linux network drivers ("the FreeBSD drivers work
// alongside the Linux drivers without a problem").

#ifndef OSKIT_SRC_DEV_FREEBSD_FREEBSD_CHAR_H_
#define OSKIT_SRC_DEV_FREEBSD_FREEBSD_CHAR_H_

#include <string>

#include "src/com/charstream.h"
#include "src/com/device.h"
#include "src/dev/fdev/fdev.h"
#include "src/machine/uart.h"

namespace oskit::freebsddev {

// 4.4BSD clist: a queue of characters stored in chained fixed-size cblocks.
class Clist {
 public:
  static constexpr size_t kCblockSize = 64;

  explicit Clist(const FdevEnv& env) : env_(env) {}
  ~Clist();

  Clist(const Clist&) = delete;
  Clist& operator=(const Clist&) = delete;

  // putc: appends one character; allocates a cblock as needed.
  // Returns false when allocation fails (the BSD driver drops the char).
  bool Putc(uint8_t c);

  // getc: removes and returns the head character, or -1 when empty.
  int Getc();

  size_t count() const { return count_; }
  size_t cblocks_allocated() const { return cblocks_allocated_; }

 private:
  struct Cblock {
    Cblock* next;
    uint8_t data[kCblockSize];
  };

  FdevEnv env_;
  Cblock* head_ = nullptr;
  Cblock* tail_ = nullptr;
  size_t head_off_ = 0;   // consume cursor within head_
  size_t tail_fill_ = 0;  // fill cursor within tail_
  size_t count_ = 0;
  size_t cblocks_allocated_ = 0;
};

// A BSD-style tty over the simulated UART, exported as Device + CharStream.
class BsdTtyDev final : public Device,
                        public CharStream,
                        public RefCounted<BsdTtyDev> {
 public:
  BsdTtyDev(const FdevEnv& env, Uart* uart, int irq, std::string name);

  // IUnknown
  Error Query(const Guid& iid, void** out) override;
  uint32_t AddRef() override { return AddRefImpl(); }
  uint32_t Release() override { return ReleaseImpl(); }

  // Device
  Error GetInfo(DeviceInfo* out_info) override;

  // CharStream: Read blocks (sleep/wakeup) until at least one byte.
  Error Read(void* buf, size_t amount, size_t* out_actual) override;
  Error Write(const void* buf, size_t amount, size_t* out_actual) override;

  size_t input_queued() const { return rx_queue_.count(); }

 private:
  friend class RefCounted<BsdTtyDev>;
  ~BsdTtyDev();

  void RxInterrupt();

  FdevEnv env_;
  Uart* uart_;
  int irq_;
  std::string name_;
  Clist rx_queue_;
  SleepRecord reader_wait_;
  bool reader_waiting_ = false;
};

// Probes the machine's console and debug UARTs, BSD style, registering
// "console" and "sio0".
Error InitFreeBsdChar(const FdevEnv& env, Machine* machine, DeviceRegistry* registry);

}  // namespace oskit::freebsddev

#endif  // OSKIT_SRC_DEV_FREEBSD_FREEBSD_CHAR_H_
