#include "src/dev/freebsd/freebsd_ether.h"

#include <cstring>

#include "src/base/panic.h"

namespace oskit::freebsddev {

namespace {
// How often the RX watchdog looks for frames stranded by a lost interrupt.
constexpr uint64_t kRxWatchdogNs = 10 * 1000 * 1000;  // 10 ms
}  // namespace

BsdEtherDriver::BsdEtherDriver(const FdevEnv& env, NicHw* hw, net::NetStack* stack)
    : env_(env), hw_(hw), stack_(stack),
      fault_(fault::ResolveFaultEnv(env.fault)) {
  trace::TraceEnv* tenv = trace::ResolveTraceEnv(env_.trace);
  trace_binding_.Bind(&tenv->registry,
                      {{"bsd.tx.linearized", &tx_linearized_},
                       {"bsd.rx.alloc_drops", &rx_alloc_drops_},
                       {"bsd.rx.watchdog_recoveries", &rx_watchdog_recoveries_}});
}

BsdEtherDriver::~BsdEtherDriver() {
  CancelRxWatchdog();
  if (attached_) {
    env_.irq_detach(env_.ctx, hw_->irq());
    hw_->EnableRxInterrupt(false);
  }
}

Error BsdEtherDriver::Attach() {
  Error err = stack_->OpenNativeIf(this, &ifindex_);
  if (!Ok(err)) {
    return err;
  }
  env_.irq_attach(env_.ctx, hw_->irq(), [this] { Interrupt(); });
  hw_->EnableRxInterrupt(true);
  attached_ = true;
  ArmRxWatchdog();
  return Error::kOk;
}

void BsdEtherDriver::Output(net::MBuf* frame) {
  // Gather DMA straight from the chain: no software copy, the hardware
  // assembles the frame from the descriptor list.
  const uint8_t* chunks[kMaxGather];
  size_t lens[kMaxGather];
  size_t count = 0;
  bool overflow = false;
  for (net::MBuf* m = frame; m != nullptr; m = m->next) {
    if (m->len == 0) {
      continue;
    }
    if (count >= kMaxGather) {
      overflow = true;
      break;
    }
    chunks[count] = m->data;
    lens[count] = m->len;
    ++count;
  }
  if (overflow) {
    // More fragments than descriptors: linearize through a bounce buffer,
    // the if_xl-style m_defrag fallback, instead of dying on an assert.
    uint8_t bounce[kEtherMaxFrame];
    size_t total = 0;
    for (net::MBuf* m = frame; m != nullptr; m = m->next) {
      OSKIT_ASSERT_MSG(total + m->len <= sizeof(bounce), "oversize frame");
      std::memcpy(bounce + total, m->data, m->len);
      total += m->len;
    }
    ++tx_linearized_;
    hw_->TxStart(bounce, total);
  } else {
    hw_->TxStartVec(chunks, lens, count);
  }
  ++tx_frames_;
  stack_->pool().FreeChain(frame);
}

void BsdEtherDriver::Interrupt() {
  while (hw_->RxPending()) {
    size_t frame_len = hw_->RxFrameSize();
    if (fault_->ShouldFail("mbuf.rx_alloc")) {
      // Receive-buffer exhaustion: drain the frame to the floor (the ring
      // must advance) and count the drop; TCP above retransmits.
      uint8_t scratch[kEtherMaxFrame];
      hw_->RxDequeue(scratch);
      ++rx_alloc_drops_;
      continue;
    }
    net::MBuf* m = stack_->pool().GetCluster();
    OSKIT_ASSERT(frame_len <= m->buf_size());
    hw_->RxDequeue(m->data);
    m->len = static_cast<uint32_t>(frame_len);
    m->pkt_len = m->len;
    ++rx_frames_;
    stack_->EtherInputMbuf(ifindex_, m);
  }
}

void BsdEtherDriver::ArmRxWatchdog() {
  if (env_.timer_start == nullptr) {
    return;
  }
  watchdog_token_ =
      env_.timer_start(env_.ctx, kRxWatchdogNs, [this] { RxWatchdogTick(); });
}

void BsdEtherDriver::RxWatchdogTick() {
  watchdog_token_ = nullptr;
  if (!attached_) {
    return;
  }
  if (hw_->RxPending()) {
    ++rx_watchdog_recoveries_;
    Interrupt();
  }
  ArmRxWatchdog();
}

void BsdEtherDriver::CancelRxWatchdog() {
  if (watchdog_token_ != nullptr && env_.timer_cancel != nullptr) {
    env_.timer_cancel(env_.ctx, watchdog_token_);
    watchdog_token_ = nullptr;
  }
}

}  // namespace oskit::freebsddev
