#include "src/dev/freebsd/freebsd_ether.h"

#include "src/base/panic.h"

namespace oskit::freebsddev {

BsdEtherDriver::BsdEtherDriver(const FdevEnv& env, NicHw* hw, net::NetStack* stack)
    : env_(env), hw_(hw), stack_(stack) {}

BsdEtherDriver::~BsdEtherDriver() {
  if (attached_) {
    env_.irq_detach(env_.ctx, hw_->irq());
    hw_->EnableRxInterrupt(false);
  }
}

Error BsdEtherDriver::Attach() {
  Error err = stack_->OpenNativeIf(this, &ifindex_);
  if (!Ok(err)) {
    return err;
  }
  env_.irq_attach(env_.ctx, hw_->irq(), [this] { Interrupt(); });
  hw_->EnableRxInterrupt(true);
  attached_ = true;
  return Error::kOk;
}

void BsdEtherDriver::Output(net::MBuf* frame) {
  // Gather DMA straight from the chain: no software copy, the hardware
  // assembles the frame from the descriptor list.
  const uint8_t* chunks[64];
  size_t lens[64];
  size_t count = 0;
  for (net::MBuf* m = frame; m != nullptr; m = m->next) {
    if (m->len == 0) {
      continue;
    }
    OSKIT_ASSERT_MSG(count < 64, "gather list overflow");
    chunks[count] = m->data;
    lens[count] = m->len;
    ++count;
  }
  hw_->TxStartVec(chunks, lens, count);
  ++tx_frames_;
  stack_->pool().FreeChain(frame);
}

void BsdEtherDriver::Interrupt() {
  while (hw_->RxPending()) {
    size_t frame_len = hw_->RxFrameSize();
    net::MBuf* m = stack_->pool().GetCluster();
    OSKIT_ASSERT(frame_len <= m->buf_size());
    hw_->RxDequeue(m->data);
    m->len = static_cast<uint32_t>(frame_len);
    m->pkt_len = m->len;
    ++rx_frames_;
    stack_->EtherInputMbuf(ifindex_, m);
  }
}

}  // namespace oskit::freebsddev
