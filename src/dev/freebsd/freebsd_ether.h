// The BSD-idiom native Ethernet driver.
//
// This is the driver that belongs to the baseline "FreeBSD itself" rows of
// Tables 1 and 2: it speaks mbufs natively on both paths, so there is no
// buffer-model conversion and no COM boundary anywhere between TCP and the
// wire.  Transmit hands the hardware the mbuf chain as a DMA gather list;
// receive allocates a cluster mbuf and feeds the stack directly.

#ifndef OSKIT_SRC_DEV_FREEBSD_FREEBSD_ETHER_H_
#define OSKIT_SRC_DEV_FREEBSD_FREEBSD_ETHER_H_

#include "src/dev/fdev/fdev.h"
#include "src/machine/nic.h"
#include "src/net/stack.h"

namespace oskit::freebsddev {

class BsdEtherDriver final : public net::NativeEtherPort {
 public:
  BsdEtherDriver(const FdevEnv& env, NicHw* hw, net::NetStack* stack);
  ~BsdEtherDriver() override;

  // Binds into the stack (OpenNativeIf + interrupt attach).
  Error Attach();

  // NativeEtherPort
  EtherAddr mac() const override { return hw_->mac(); }
  void Output(net::MBuf* frame) override;

  uint64_t tx_frames() const { return tx_frames_; }
  uint64_t rx_frames() const { return rx_frames_; }

 private:
  void Interrupt();

  FdevEnv env_;
  NicHw* hw_;
  net::NetStack* stack_;
  int ifindex_ = -1;
  bool attached_ = false;
  uint64_t tx_frames_ = 0;
  uint64_t rx_frames_ = 0;
};

}  // namespace oskit::freebsddev

#endif  // OSKIT_SRC_DEV_FREEBSD_FREEBSD_ETHER_H_
