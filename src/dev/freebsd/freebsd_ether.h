// The BSD-idiom native Ethernet driver.
//
// This is the driver that belongs to the baseline "FreeBSD itself" rows of
// Tables 1 and 2: it speaks mbufs natively on both paths, so there is no
// buffer-model conversion and no COM boundary anywhere between TCP and the
// wire.  Transmit hands the hardware the mbuf chain as a DMA gather list;
// receive allocates a cluster mbuf and feeds the stack directly.
//
// Robustness: a chain with more fragments than the hardware has gather
// descriptors is linearized through a bounce buffer instead of tripping an
// assertion; receive-buffer exhaustion drops the frame (counted) instead of
// wedging; and a watchdog timer drains the RX ring if an interrupt is lost.
// Recovery actions are counted into the trace registry under "bsd.*".

#ifndef OSKIT_SRC_DEV_FREEBSD_FREEBSD_ETHER_H_
#define OSKIT_SRC_DEV_FREEBSD_FREEBSD_ETHER_H_

#include "src/dev/fdev/fdev.h"
#include "src/machine/nic.h"
#include "src/net/stack.h"

namespace oskit::freebsddev {

class BsdEtherDriver final : public net::NativeEtherPort {
 public:
  BsdEtherDriver(const FdevEnv& env, NicHw* hw, net::NetStack* stack);
  ~BsdEtherDriver() override;

  // Binds into the stack (OpenNativeIf + interrupt attach).
  Error Attach();

  // NativeEtherPort
  EtherAddr mac() const override { return hw_->mac(); }
  void Output(net::MBuf* frame) override;

  uint64_t tx_frames() const { return tx_frames_; }
  uint64_t rx_frames() const { return rx_frames_; }
  uint64_t tx_linearized() const { return tx_linearized_; }
  uint64_t rx_alloc_drops() const { return rx_alloc_drops_; }

 private:
  // The hardware's gather-descriptor budget (TxStartVec limit).
  static constexpr size_t kMaxGather = 64;

  void Interrupt();
  void ArmRxWatchdog();
  void RxWatchdogTick();
  void CancelRxWatchdog();

  FdevEnv env_;
  NicHw* hw_;
  net::NetStack* stack_;
  fault::FaultEnv* fault_;
  int ifindex_ = -1;
  bool attached_ = false;
  uint64_t tx_frames_ = 0;
  uint64_t rx_frames_ = 0;
  trace::Counter tx_linearized_;
  trace::Counter rx_alloc_drops_;
  trace::Counter rx_watchdog_recoveries_;
  trace::CounterBlock trace_binding_;
  void* watchdog_token_ = nullptr;
};

}  // namespace oskit::freebsddev

#endif  // OSKIT_SRC_DEV_FREEBSD_FREEBSD_ETHER_H_
