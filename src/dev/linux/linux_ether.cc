#include "src/dev/linux/linux_ether.h"

#include <cstring>

#include "src/base/panic.h"

namespace oskit::linuxdev {

namespace {

int simnic_open(linux_device* dev) {
  dev->priv->EnableRxInterrupt(true);
  dev->opened = true;
  return 0;
}

int simnic_stop(linux_device* dev) {
  dev->priv->EnableRxInterrupt(false);
  dev->opened = false;
  return 0;
}

int simnic_xmit(sk_buff* skb, linux_device* dev) {
  // Classic path: the driver hands the hardware ONE contiguous buffer.
  dev->priv->TxStart(skb->data, skb->len);
  dev->stats.tx_packets += 1;
  dev->stats.tx_bytes += skb->len;
  kfree_skb(dev->kenv, skb);
  return 0;
}

int simnic_xmit_vec(const uint8_t* const* chunks, const size_t* lens,
                    size_t count, linux_device* dev) {
  // Gather path: the descriptor list goes straight into the NIC's DMA
  // engine, so a discontiguous packet transmits without being flattened.
  dev->priv->TxStartVec(chunks, lens, count);
  size_t total = 0;
  for (size_t i = 0; i < count; ++i) {
    total += lens[i];
  }
  dev->stats.tx_packets += 1;
  dev->stats.tx_bytes += total;
  return 0;
}

}  // namespace

int simnic_probe(linux_device* dev, oskit::NicHw* hw) {
  dev->priv = hw;
  std::memcpy(dev->dev_addr, hw->mac().bytes, 6);
  dev->irq = hw->irq();
  dev->open = &simnic_open;
  dev->stop = &simnic_stop;
  dev->hard_start_xmit = &simnic_xmit;
  dev->hard_start_xmit_vec = &simnic_xmit_vec;  // simnic has gather DMA
  return 0;
}

namespace {

// Receives one frame off the ring: the classic Linux 2.0 path shared by the
// interrupt handler and the budgeted poll.
void simnic_rx_one(linux_device* dev) {
  oskit::NicHw* hw = dev->priv;
  size_t frame_len = hw->RxFrameSize();
  // Classic Linux 2.0 receive: allocate len+2, reserve 2 so the IP header
  // lands 4-byte aligned past the 14-byte Ethernet header.
  sk_buff* skb = dev_alloc_skb(dev->kenv, frame_len + 2);
  if (skb == nullptr) {
    // Out of memory: drop the frame (drain it so the ring advances).
    uint8_t discard[oskit::kEtherMaxFrame];
    hw->RxDequeue(discard);
    dev->stats.rx_dropped += 1;
    return;
  }
  skb_reserve(skb, 2);
  hw->RxDequeue(skb_put(skb, frame_len));
  dev->stats.rx_packets += 1;
  dev->stats.rx_bytes += frame_len;
  if (dev->netif_rx != nullptr && dev->opened) {
    dev->netif_rx(dev->netif_rx_ctx, dev, skb);
  } else {
    kfree_skb(dev->kenv, skb);
  }
}

}  // namespace

void simnic_interrupt(linux_device* dev) {
  while (dev->priv->RxPending()) {
    simnic_rx_one(dev);
  }
}

int simnic_poll(linux_device* dev, int budget) {
  int done = 0;
  while (done < budget && dev->priv->RxPending()) {
    simnic_rx_one(dev);
    ++done;
  }
  return done;
}

}  // namespace oskit::linuxdev
