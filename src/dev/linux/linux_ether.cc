#include "src/dev/linux/linux_ether.h"

#include <cstring>

#include "src/base/panic.h"

namespace oskit::linuxdev {

namespace {

int simnic_open(linux_device* dev) {
  dev->priv->EnableRxInterrupt(true);
  dev->opened = true;
  return 0;
}

int simnic_stop(linux_device* dev) {
  dev->priv->EnableRxInterrupt(false);
  dev->opened = false;
  return 0;
}

int simnic_xmit(sk_buff* skb, linux_device* dev) {
  // Linux drivers hand the hardware ONE contiguous buffer; that contiguity
  // assumption is what forces the glue's copy on the OSKit send path.
  dev->priv->TxStart(skb->data, skb->len);
  dev->stats.tx_packets += 1;
  dev->stats.tx_bytes += skb->len;
  kfree_skb(dev->kenv, skb);
  return 0;
}

}  // namespace

int simnic_probe(linux_device* dev, oskit::NicHw* hw) {
  dev->priv = hw;
  std::memcpy(dev->dev_addr, hw->mac().bytes, 6);
  dev->irq = hw->irq();
  dev->open = &simnic_open;
  dev->stop = &simnic_stop;
  dev->hard_start_xmit = &simnic_xmit;
  return 0;
}

void simnic_interrupt(linux_device* dev) {
  oskit::NicHw* hw = dev->priv;
  while (hw->RxPending()) {
    size_t frame_len = hw->RxFrameSize();
    // Classic Linux 2.0 receive: allocate len+2, reserve 2 so the IP header
    // lands 4-byte aligned past the 14-byte Ethernet header.
    sk_buff* skb = dev_alloc_skb(dev->kenv, frame_len + 2);
    if (skb == nullptr) {
      // Out of memory: drop the frame (drain it so the ring advances).
      uint8_t discard[oskit::kEtherMaxFrame];
      hw->RxDequeue(discard);
      dev->stats.rx_dropped += 1;
      continue;
    }
    skb_reserve(skb, 2);
    hw->RxDequeue(skb_put(skb, frame_len));
    dev->stats.rx_packets += 1;
    dev->stats.rx_bytes += frame_len;
    if (dev->netif_rx != nullptr && dev->opened) {
      dev->netif_rx(dev->netif_rx_ctx, dev, skb);
    } else {
      kfree_skb(dev->kenv, skb);
    }
  }
}

}  // namespace oskit::linuxdev
