// The "imported" Linux-2.0-style Ethernet driver core.
//
// Structured the way a Linux 2.0.29 driver was: a `linux_device` struct full
// of function pointers, dev->open / dev->hard_start_xmit entry points, an
// interrupt handler that allocates skbuffs and feeds them up through
// netif_rx().  It knows nothing about COM, mbufs, or the client OS: its
// world is skbuffs and the emulated kernel services in LinuxKernelEnv —
// exactly the situation of real encapsulated driver code (§4.7).  The
// hardware it drives is the simulated NIC (which stands in for the
// fifty-odd ISA/PCI cards the real OSKit imported drivers for).

#ifndef OSKIT_SRC_DEV_LINUX_LINUX_ETHER_H_
#define OSKIT_SRC_DEV_LINUX_LINUX_ETHER_H_

#include "src/dev/linux/skbuff.h"
#include "src/machine/nic.h"

namespace oskit::linuxdev {

struct linux_device;

// The glue installs this to receive packets (Linux's netif_rx path).
using netif_rx_fn = void (*)(void* ctx, linux_device* dev, sk_buff* skb);

struct net_device_stats {
  uint64_t rx_packets = 0;
  uint64_t rx_bytes = 0;
  uint64_t rx_dropped = 0;
  uint64_t tx_packets = 0;
  uint64_t tx_bytes = 0;
};

struct linux_device {
  char name[8] = {};
  int irq = 0;
  uint8_t dev_addr[6] = {};
  bool opened = false;

  // Driver entry points (filled by the probe routine, Linux style).
  int (*open)(linux_device* dev) = nullptr;
  int (*stop)(linux_device* dev) = nullptr;
  int (*hard_start_xmit)(sk_buff* skb, linux_device* dev) = nullptr;

  // Scatter-gather transmit (a NETIF_F_SG-style capability): present only
  // when the hardware has gather DMA; callers must check for nullptr and
  // fall back to hard_start_xmit on a linearized buffer.
  int (*hard_start_xmit_vec)(const uint8_t* const* chunks, const size_t* lens,
                             size_t count, linux_device* dev) = nullptr;

  // Upcall installed by the surrounding glue.
  netif_rx_fn netif_rx = nullptr;
  void* netif_rx_ctx = nullptr;

  // Emulated kernel services (the glue's environment emulation, §4.7.5).
  LinuxKernelEnv kenv;

  // Driver-private state.
  oskit::NicHw* priv = nullptr;

  net_device_stats stats;
};

// Probe routine for the simulated NIC ("simnic"), mirroring the shape of a
// Linux Space.c probe: fills in dev->open/stop/hard_start_xmit and the
// station address.  Returns 0 on success.
int simnic_probe(linux_device* dev, oskit::NicHw* hw);

// The driver's interrupt handler; the glue attaches it to the IRQ.  Drains
// the whole RX ring (the classic per-frame-IRQ receive loop).
void simnic_interrupt(linux_device* dev);

// NAPI-style budgeted receive: drains at most `budget` frames from the RX
// ring and returns how many were delivered (OOM drops count against the
// budget — they consumed ring slots).  The caller owns the interrupt
// discipline: mask the RX IRQ before polling, re-enable and RE-CHECK the
// ring afterwards (frames arriving between the last RxPending() check and
// the re-enable raise no interrupt).
int simnic_poll(linux_device* dev, int budget);

}  // namespace oskit::linuxdev

#endif  // OSKIT_SRC_DEV_LINUX_LINUX_ETHER_H_
