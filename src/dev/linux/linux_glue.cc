#include "src/dev/linux/linux_glue.h"

#include <cstring>

#include "src/base/panic.h"
#include "src/libc/format.h"

namespace oskit::linuxdev {

namespace {
// How often the RX watchdog looks for frames stranded by a lost interrupt.
constexpr uint64_t kRxWatchdogNs = 10 * 1000 * 1000;  // 10 ms
}  // namespace

// ---------------------------------------------------------------------------
// SkBuffIo
// ---------------------------------------------------------------------------

SkBuffIo::~SkBuffIo() {
  skb_->oskit_bufio = nullptr;
  kfree_skb(kenv_, skb_);
}

Error SkBuffIo::Query(const Guid& iid, void** out) {
  if (iid == IUnknown::kIid || iid == BlkIo::kIid || iid == BufIo::kIid ||
      iid == kSkBuffIoImplIid) {
    AddRef();
    *out = static_cast<BufIo*>(this);
    return Error::kOk;
  }
  *out = nullptr;
  return Error::kNoInterface;
}

// Bounds discipline for all three accessors: off_t64 is unsigned, so a
// "negative" offset arrives as a huge value and `offset + amount` can wrap
// back into range.  Check the offset against the length FIRST, then compare
// the amount against the remainder (subtraction form — cannot overflow).
// These checks guard memcpy ranges reachable from the COM BufIo surface.

Error SkBuffIo::Read(void* buf, off_t64 offset, size_t amount, size_t* out_actual) {
  *out_actual = 0;
  if (offset > skb_->len) {
    return Error::kOutOfRange;
  }
  size_t avail = skb_->len - static_cast<size_t>(offset);
  size_t n = amount < avail ? amount : avail;
  std::memcpy(buf, skb_->data + offset, n);
  *out_actual = n;
  return Error::kOk;
}

Error SkBuffIo::Write(const void* buf, off_t64 offset, size_t amount,
                      size_t* out_actual) {
  *out_actual = 0;
  if (offset > skb_->len || amount > skb_->len - static_cast<size_t>(offset)) {
    return Error::kOutOfRange;
  }
  std::memcpy(skb_->data + offset, buf, amount);
  *out_actual = amount;
  return Error::kOk;
}

Error SkBuffIo::GetSize(off_t64* out_size) {
  *out_size = skb_->len;
  return Error::kOk;
}

Error SkBuffIo::Map(void** out_addr, off_t64 offset, size_t amount) {
  // An skbuff is always contiguous: mapping always succeeds in bounds.
  if (offset > skb_->len || amount > skb_->len - static_cast<size_t>(offset)) {
    return Error::kOutOfRange;
  }
  *out_addr = skb_->data + offset;
  return Error::kOk;
}

// ---------------------------------------------------------------------------
// LinuxEtherDev
// ---------------------------------------------------------------------------

namespace {

// kmalloc/kfree emulation over the fdev osenv: network buffers must be
// DMA-reachable on the simulated platform, like real ISA-era Linux.
void* GlueKmalloc(void* ctx, size_t size) {
  auto* env = static_cast<FdevEnv*>(ctx);
  return env->mem_alloc(env->ctx, size, FdevEnv::kDmaReachable);
}

void GlueKfree(void* ctx, void* ptr, size_t size) {
  auto* env = static_cast<FdevEnv*>(ctx);
  env->mem_free(env->ctx, ptr, size);
}

// The send-side NetIo half of the §5 callback exchange.
class LinuxSendNetIo final : public NetIo, public RefCounted<LinuxSendNetIo> {
 public:
  explicit LinuxSendNetIo(LinuxEtherDev* dev) : dev_(dev) { dev->AddRef(); }

  Error Query(const Guid& iid, void** out) override {
    if (iid == IUnknown::kIid || iid == NetIo::kIid) {
      AddRef();
      *out = static_cast<NetIo*>(this);
      return Error::kOk;
    }
    *out = nullptr;
    return Error::kNoInterface;
  }
  OSKIT_REFCOUNTED_BOILERPLATE()

  Error Push(BufIo* packet, size_t size) override { return dev_->Transmit(packet, size); }

 private:
  friend class RefCounted<LinuxSendNetIo>;
  ~LinuxSendNetIo() { dev_->Release(); }

  LinuxEtherDev* dev_;
};

}  // namespace

LinuxEtherDev::LinuxEtherDev(const FdevEnv& env, NicHw* hw, std::string name)
    : env_(env), name_(std::move(name)), trace_(trace::ResolveTraceEnv(env.trace)) {
  trace_binding_.Bind(&trace_->registry,
                      {{"glue.send.native_passthrough", &counters_.native_passthrough},
                       {"glue.send.fake_skbuff", &counters_.fake_skbuff},
                       {"glue.send.sg_frames", &counters_.sg_frames},
                       {"glue.send.sg_segments", &counters_.sg_segments},
                       {"glue.send.copied", &counters_.copied},
                       {"glue.send.copied_bytes", &counters_.copied_bytes},
                       {"glue.recv.push_errors", &counters_.rx_push_errors},
                       {"glue.recv.oom_drops", &counters_.rx_oom_drops},
                       {"glue.recov.rx_watchdog",
                        &counters_.rx_watchdog_recoveries},
                       {"glue.rx.poll.polls", &counters_.rx_polls},
                       {"glue.rx.poll.frames", &counters_.rx_poll_frames},
                       {"glue.rx.poll.budget_exhausted",
                        &counters_.rx_poll_budget_exhausted},
                       {"glue.rx.poll.reenable_races",
                        &counters_.rx_poll_reenable_races}});
  libc::Snprintf(dev_.name, sizeof(dev_.name), "%s", name_.c_str());
  dev_.kenv.kmalloc = &GlueKmalloc;
  dev_.kenv.kfree = &GlueKfree;
  dev_.kenv.ctx = &env_;
  int rc = simnic_probe(&dev_, hw);
  OSKIT_ASSERT_MSG(rc == 0, "simnic probe failed");
}

LinuxEtherDev::~LinuxEtherDev() {
  CancelRxWatchdog();
  CancelRxPollEvents();
  if (dev_.opened) {
    env_.irq_detach(env_.ctx, dev_.irq);
    dev_.stop(&dev_);
  }
}

void LinuxEtherDev::SetRxPoll(const RxPollConfig& config) {
  OSKIT_ASSERT_MSG(config.budget >= 1, "poll budget below 1");
  poll_ = config;
  if (!poll_.enabled) {
    CancelRxPollEvents();
    if (dev_.opened) {
      dev_.priv->EnableRxInterrupt(true);
    }
  }
}

Error LinuxEtherDev::Query(const Guid& iid, void** out) {
  if (iid == IUnknown::kIid || iid == Device::kIid) {
    AddRef();
    *out = static_cast<Device*>(this);
    return Error::kOk;
  }
  if (iid == EtherDev::kIid) {
    AddRef();
    *out = static_cast<EtherDev*>(this);
    return Error::kOk;
  }
  *out = nullptr;
  return Error::kNoInterface;
}

Error LinuxEtherDev::GetInfo(DeviceInfo* out_info) {
  out_info->name = name_.c_str();
  out_info->description = "Linux 2.0-style simulated Ethernet (simnic)";
  out_info->vendor = "linux";
  return Error::kOk;
}

void LinuxEtherDev::NetifRxThunk(void* ctx, linux_device* dev, sk_buff* skb) {
  auto* self = static_cast<LinuxEtherDev*>(ctx);
  if (!self->client_recv_) {
    kfree_skb(dev->kenv, skb);
    return;
  }
  // Export the skbuff as a COM bufio object WITHOUT copying (§4.7.3): the
  // wrapper owns the skbuff; the client takes references if it keeps it.
  size_t len = skb->len;
  ComPtr<SkBuffIo> io(new SkBuffIo(dev->kenv, skb));
  Error err = self->client_recv_->Push(io.get(), len);
  if (!Ok(err)) {
    // The client refused the frame (typically mbuf exhaustion); the frame
    // is dropped here, cleanly, and the stack above retransmits.
    ++self->counters_.rx_push_errors;
  }
}

void LinuxEtherDev::SyncRxStats() {
  uint64_t dropped = dev_.stats.rx_dropped;
  if (dropped > last_rx_dropped_) {
    counters_.rx_oom_drops += dropped - last_rx_dropped_;
    last_rx_dropped_ = dropped;
  }
}

void LinuxEtherDev::ArmRxWatchdog() {
  if (env_.timer_start == nullptr) {
    return;
  }
  watchdog_token_ =
      env_.timer_start(env_.ctx, kRxWatchdogNs, [this] { RxWatchdogTick(); });
}

void LinuxEtherDev::RxWatchdogTick() {
  watchdog_token_ = nullptr;
  if (!dev_.opened) {
    return;
  }
  // Frames waiting with a poll or re-enable pass already queued are being
  // handled, not stranded; only recover when nothing is in flight.
  if (dev_.priv->RxPending() && !RxPollInFlight()) {
    // Frames are sitting in the ring with no interrupt in sight: the IRQ
    // was lost (under coalescing, a lost IRQ strands the whole batch).
    // Run the handler by hand, like a Linux driver's dev->tx/rx timeout
    // path — through the poll loop when polling is on, so recovery keeps
    // the budget and batching discipline.
    ++counters_.rx_watchdog_recoveries;
    if (poll_.enabled) {
      dev_.priv->EnableRxInterrupt(false);
      ScheduleRxPoll(0);
    } else {
      simnic_interrupt(&dev_);
      SyncRxStats();
    }
  }
  ArmRxWatchdog();
}

void LinuxEtherDev::CancelRxWatchdog() {
  if (watchdog_token_ != nullptr && env_.timer_cancel != nullptr) {
    env_.timer_cancel(env_.ctx, watchdog_token_);
    watchdog_token_ = nullptr;
  }
}

// ---- Polled receive (NAPI-style) ----

void LinuxEtherDev::RxIrq() {
  if (!poll_.enabled) {
    // 1997 behaviour: drain the whole ring at interrupt level, one IRQ per
    // frame arriving later.
    simnic_interrupt(&dev_);
    SyncRxStats();
    return;
  }
  if (RxPollInFlight()) {
    return;  // spurious or raced IRQ: a drain is already on its way
  }
  // Mask further RX interrupts and defer the drain to the budgeted poll.
  dev_.priv->EnableRxInterrupt(false);
  ScheduleRxPoll(poll_.softirq_delay_ns);
}

void LinuxEtherDev::ScheduleRxPoll(uint64_t delay_ns) {
  poll_token_ =
      env_.timer_start(env_.ctx, delay_ns, [this] { RxPollDispatch(); });
}

void LinuxEtherDev::RxPollDispatch() {
  poll_token_ = nullptr;
  if (!dev_.opened) {
    return;
  }
  ++counters_.rx_polls;
  if (batch_recv_) {
    batch_recv_->BeginBatch();
  }
  int n = simnic_poll(&dev_, poll_.budget);
  counters_.rx_poll_frames += static_cast<uint64_t>(n);
  SyncRxStats();
  if (batch_recv_) {
    batch_recv_->EndBatch();
  }
  if (n >= poll_.budget && dev_.priv->RxPending()) {
    // Budget exhausted with work left: stay in polled mode (interrupts
    // remain masked) and take another pass.
    ++counters_.rx_poll_budget_exhausted;
    ScheduleRxPoll(poll_.softirq_delay_ns);
    return;
  }
  reenable_token_ =
      env_.timer_start(env_.ctx, poll_.reenable_delay_ns, [this] { RxReenable(); });
}

void LinuxEtherDev::RxReenable() {
  reenable_token_ = nullptr;
  if (!dev_.opened) {
    return;
  }
  dev_.priv->EnableRxInterrupt(true);
  // THE race: a frame that arrived after the poll's final RxPending() check
  // and before this re-enable raised no interrupt, and re-enabling does not
  // replay it.  Without this re-check it strands until the watchdog's 10 ms
  // sweep — the classic NAPI exit bug.
  if (dev_.priv->RxPending()) {
    ++counters_.rx_poll_reenable_races;
    dev_.priv->EnableRxInterrupt(false);
    ScheduleRxPoll(poll_.softirq_delay_ns);
  }
}

void LinuxEtherDev::CancelRxPollEvents() {
  if (env_.timer_cancel == nullptr) {
    poll_token_ = nullptr;
    reenable_token_ = nullptr;
    return;
  }
  if (poll_token_ != nullptr) {
    env_.timer_cancel(env_.ctx, poll_token_);
    poll_token_ = nullptr;
  }
  if (reenable_token_ != nullptr) {
    env_.timer_cancel(env_.ctx, reenable_token_);
    reenable_token_ = nullptr;
  }
}

Error LinuxEtherDev::Open(NetIo* recv, NetIo** out_send) {
  if (dev_.opened) {
    return Error::kBusy;
  }
  client_recv_ = ComPtr<NetIo>::Retain(recv);
  // Discover the client's batch face (§4.4.2: extension by Query) so the
  // poll loop can bracket a burst; a plain NetIo client gets per-frame
  // delivery, unchanged.
  void* batch_raw = nullptr;
  if (Ok(recv->Query(NetIoBatch::kIid, &batch_raw))) {
    batch_recv_ = ComPtr<NetIoBatch>(static_cast<NetIoBatch*>(batch_raw));
  }
  dev_.netif_rx = &LinuxEtherDev::NetifRxThunk;
  dev_.netif_rx_ctx = this;
  int rc = dev_.open(&dev_);
  if (rc != 0) {
    client_recv_.Reset();
    batch_recv_.Reset();
    return Error::kIo;
  }
  env_.irq_attach(env_.ctx, dev_.irq, [this] { RxIrq(); });
  ArmRxWatchdog();
  *out_send = new LinuxSendNetIo(this);
  return Error::kOk;
}

Error LinuxEtherDev::Close() {
  if (!dev_.opened) {
    return Error::kOk;
  }
  CancelRxWatchdog();
  CancelRxPollEvents();
  env_.irq_detach(env_.ctx, dev_.irq);
  dev_.stop(&dev_);
  client_recv_.Reset();
  batch_recv_.Reset();
  return Error::kOk;
}

Error LinuxEtherDev::GetAddr(EtherAddr* out_addr) {
  std::memcpy(out_addr->bytes, dev_.dev_addr, 6);
  return Error::kOk;
}

Error LinuxEtherDev::Transmit(BufIo* packet, size_t size) {
  if (!dev_.opened) {
    return Error::kNoDev;
  }
  if (size > kEtherMaxFrame) {
    return Error::kMsgSize;
  }

  // Recognise our own skbuffs by implementation identity (§4.7.3).
  void* native = nullptr;
  if (Ok(packet->Query(kSkBuffIoImplIid, &native))) {
    auto* io = static_cast<SkBuffIo*>(native);
    ++counters_.native_passthrough;
    // The driver consumes (frees) the skbuff, so detach it from the
    // wrapper by copying the header into a fresh fake around the same data:
    // simplest correct ownership dance without touching the imported code.
    sk_buff* owned = io->skb();
    sk_buff* fake = dev_alloc_skb(dev_.kenv, 0);
    if (fake == nullptr) {
      io->Release();
      return Error::kNoMem;
    }
    fake->fake = true;
    fake->data = owned->data;
    fake->tail = owned->tail;
    fake->len = owned->len;
    dev_.hard_start_xmit(fake, &dev_);
    io->Release();
    return Error::kOk;
  }

  void* mapped = nullptr;
  if (Ok(packet->Map(&mapped, 0, size))) {
    // Foreign but contiguous: manufacture a "fake" skbuff pointing directly
    // at the mapped data (§4.7.3), no copy.
    ++counters_.fake_skbuff;
    trace_->recorder.Record(trace::EventType::kBufMap, "glue.send", size);
    sk_buff* fake = dev_alloc_skb(dev_.kenv, 0);
    if (fake == nullptr) {
      packet->Unmap(mapped, 0, size);
      return Error::kNoMem;
    }
    fake->fake = true;
    fake->data = static_cast<uint8_t*>(mapped);
    fake->tail = fake->data + size;
    fake->len = static_cast<uint32_t>(size);
    dev_.hard_start_xmit(fake, &dev_);
    packet->Unmap(mapped, 0, size);
    return Error::kOk;
  }

  // Discontiguous foreign packet.  If the object can publish its pieces
  // (BufIoVec, discovered §4.4.2-style via Query) and the driver advertises
  // gather DMA, transmit the segments directly — no copy, no flatten.
  if (dev_.hard_start_xmit_vec != nullptr) {
    void* vec_raw = nullptr;
    if (Ok(packet->Query(BufIoVec::kIid, &vec_raw))) {
      auto* vec = static_cast<BufIoVec*>(vec_raw);
      constexpr size_t kTxGather = 16;  // simnic DMA descriptor ring slots
      BufIoSegment segs[kTxGather];
      size_t count = 0;
      Error verr = vec->Vectors(segs, kTxGather, 0, size, &count);
      if (Ok(verr) && count > 0) {
        const uint8_t* chunks[kTxGather];
        size_t lens[kTxGather];
        for (size_t i = 0; i < count; ++i) {
          chunks[i] = segs[i].data;
          lens[i] = segs[i].len;
        }
        ++counters_.sg_frames;
        counters_.sg_segments += count;
        trace_->recorder.Record(trace::EventType::kBufMap, "glue.send.sg", size);
        dev_.hard_start_xmit_vec(chunks, lens, count, &dev_);
        vec->UnmapVectors(0, size);
        vec->Release();
        return Error::kOk;
      }
      vec->Release();
    }
  }

  // Last resort: allocate a normal skbuff and copy the data in — the
  // Table 1 send-path copy, now only a fallback.
  ++counters_.copied;
  counters_.copied_bytes += size;
  trace_->recorder.Record(trace::EventType::kBufCopy, "glue.send", size);
  sk_buff* skb = dev_alloc_skb(dev_.kenv, size);
  if (skb == nullptr) {
    return Error::kNoMem;
  }
  size_t actual = 0;
  Error err = packet->Read(skb_put(skb, size), 0, size, &actual);
  if (!Ok(err) || actual != size) {
    kfree_skb(dev_.kenv, skb);
    return Ok(err) ? Error::kIo : err;
  }
  dev_.hard_start_xmit(skb, &dev_);
  return Error::kOk;
}

// ---------------------------------------------------------------------------
// Init / probe
// ---------------------------------------------------------------------------

Error InitLinuxEthernet(const FdevEnv& env, Machine* machine,
                        DeviceRegistry* registry) {
  int index = 0;
  for (const auto& nic : machine->nics()) {
    char name[8];
    libc::Snprintf(name, sizeof(name), "eth%d", index++);
    ComPtr<Device> device(new LinuxEtherDev(env, nic.get(), name));
    registry->Register(std::move(device));
  }
  return Error::kOk;
}

}  // namespace oskit::linuxdev
