// Glue encapsulating the Linux-idiom Ethernet driver (paper §4.7, §4.7.3).
//
// A thin layer that (a) emulates the Linux kernel environment the imported
// driver expects (kmalloc, request_irq) on top of the fdev osenv, (b) exports
// the driver as COM Device + EtherDev objects, and (c) converts packets at
// the boundary:
//
//   receive:  skbuff --(wrap, no copy)--> BufIo --> client's NetIo
//   transmit: BufIo --Map ok--> "fake" skbuff around the mapped data (no
//             copy); --Map fails but the object Queries as BufIoVec and the
//             driver has gather DMA--> scatter-gather transmit straight from
//             the object's segments (no copy, no flatten); --otherwise-->
//             dev_alloc_skb + Read (the copy the paper blamed for the
//             OSKit's lower send bandwidth, §5 — now only the fallback);
//             native skbuffs are recognised by their function-table pointer
//             and passed straight through (§4.7.3).

#ifndef OSKIT_SRC_DEV_LINUX_LINUX_GLUE_H_
#define OSKIT_SRC_DEV_LINUX_LINUX_GLUE_H_

#include <memory>
#include <string>

#include "src/com/device.h"
#include "src/com/etherdev.h"
#include "src/dev/fdev/fdev.h"
#include "src/dev/linux/linux_ether.h"

namespace oskit::linuxdev {

// BufIo face of a received skbuff.  The GUID below identifies THIS concrete
// implementation (not an abstract interface): querying for it is the C++
// rendering of the paper's "the Linux glue code can easily recognize
// 'foreign' bufio objects by checking their function table pointer".
inline constexpr Guid kSkBuffIoImplIid =
    MakeGuid(0x7b331990, 0x0e01, 0x11d0, 0xa6, 0xbe, 0x00, 0xa0, 0xc9, 0x0a, 0x5f,
             0x40);

class SkBuffIo final : public BufIo, public RefCounted<SkBuffIo> {
 public:
  // Takes ownership of `skb`.
  SkBuffIo(const LinuxKernelEnv& kenv, sk_buff* skb) : kenv_(kenv), skb_(skb) {
    skb->oskit_bufio = this;  // the one-word glue field (§4.7.3)
  }

  Error Query(const Guid& iid, void** out) override;
  OSKIT_REFCOUNTED_BOILERPLATE()

  uint32_t GetBlockSize() override { return 1; }
  Error Read(void* buf, off_t64 offset, size_t amount, size_t* out_actual) override;
  Error Write(const void* buf, off_t64 offset, size_t amount,
              size_t* out_actual) override;
  Error GetSize(off_t64* out_size) override;
  Error SetSize(off_t64) override { return Error::kNotImpl; }
  Error Map(void** out_addr, off_t64 offset, size_t amount) override;
  Error Unmap(void* addr, off_t64 offset, size_t amount) override { return Error::kOk; }
  Error Wire() override { return Error::kOk; }
  Error Unwire() override { return Error::kOk; }

  sk_buff* skb() { return skb_; }

 private:
  friend class RefCounted<SkBuffIo>;
  ~SkBuffIo();

  LinuxKernelEnv kenv_;
  sk_buff* skb_;
};

// The encapsulated driver as a COM device.
class LinuxEtherDev final : public Device,
                            public EtherDev,
                            public RefCounted<LinuxEtherDev> {
 public:
  // Boundary counters, registered with the trace environment's registry
  // under "glue.send.*" / "glue.recv.*" / "glue.rx.poll.*" /
  // "glue.recov.*".
  struct Counters {
    trace::Counter native_passthrough;  // our own skbuff handed back: no work
    trace::Counter fake_skbuff;         // foreign buffer mapped: zero copy
    trace::Counter sg_frames;           // discontiguous buffer gathered: zero copy
    trace::Counter sg_segments;         // total segments across sg_frames
    trace::Counter copied;              // foreign buffer unmappable: copied
    trace::Counter copied_bytes;
    trace::Counter rx_push_errors;      // client NetIo::Push refused a frame
    trace::Counter rx_oom_drops;        // driver dropped: no skbuff memory
    trace::Counter rx_watchdog_recoveries;  // ring drained after a lost IRQ
    trace::Counter rx_polls;            // budgeted poll dispatches
    trace::Counter rx_poll_frames;      // frames delivered by those polls
    trace::Counter rx_poll_budget_exhausted;  // polls that hit the budget
    trace::Counter rx_poll_reenable_races;    // frames caught by the re-check
  };

  // NAPI-style polled receive.  Disabled by default (per-frame 1997
  // behaviour, the ablation baseline).  When enabled, the ISR masks the RX
  // interrupt and defers to a budgeted poll: drain up to `budget` frames,
  // then either keep polling (budget exhausted) or re-enable the interrupt
  // and RE-CHECK the ring — a frame can arrive between the final drain and
  // the re-enable, raising no IRQ (the hardware does not latch); without
  // the re-check it strands until the watchdog.  The delays model softirq
  // scheduling and the ISR exit path.
  struct RxPollConfig {
    bool enabled = false;
    int budget = 16;
    uint64_t softirq_delay_ns = 2 * 1000;   // IRQ -> poll dispatch
    uint64_t reenable_delay_ns = 2 * 1000;  // last drain -> re-enable+re-check
  };

  LinuxEtherDev(const FdevEnv& env, NicHw* hw, std::string name);

  // IUnknown (two COM bases: disambiguate AddRef/Release explicitly).
  Error Query(const Guid& iid, void** out) override;
  uint32_t AddRef() override { return AddRefImpl(); }
  uint32_t Release() override { return ReleaseImpl(); }

  // Device
  Error GetInfo(DeviceInfo* out_info) override;

  // EtherDev
  Error Open(NetIo* recv, NetIo** out_send) override;
  Error Close() override;
  Error GetAddr(EtherAddr* out_addr) override;

  const Counters& counters() const { return counters_; }
  const net_device_stats& device_stats() const { return dev_.stats; }

  void SetRxPoll(const RxPollConfig& config);
  const RxPollConfig& rx_poll_config() const { return poll_; }

  // Transmit entry used by the send-side NetIo.
  Error Transmit(BufIo* packet, size_t size);

 private:
  friend class RefCounted<LinuxEtherDev>;
  ~LinuxEtherDev();

  static void NetifRxThunk(void* ctx, linux_device* dev, sk_buff* skb);

  // Folds the driver's private drop statistics into the registry counters.
  void SyncRxStats();
  // RX watchdog: a periodic timer (fdev timer service) that drains the ring
  // if frames are waiting with no interrupt — the recovery for a lost IRQ.
  void ArmRxWatchdog();
  void RxWatchdogTick();
  void CancelRxWatchdog();

  // Polled-RX machinery (see RxPollConfig).
  void RxIrq();             // the ISR: per-frame drain, or mask + defer
  void RxPollDispatch();    // budgeted drain, batched into the stack
  void RxReenable();        // re-enable the interrupt, then re-check
  void ScheduleRxPoll(uint64_t delay_ns);
  void CancelRxPollEvents();
  bool RxPollInFlight() const {
    return poll_token_ != nullptr || reenable_token_ != nullptr;
  }

  FdevEnv env_;
  linux_device dev_;
  std::string name_;
  ComPtr<NetIo> client_recv_;
  ComPtr<NetIoBatch> batch_recv_;  // client_recv_'s batch face, if it has one
  trace::TraceEnv* trace_;
  Counters counters_;
  trace::CounterBlock trace_binding_;
  uint64_t last_rx_dropped_ = 0;
  void* watchdog_token_ = nullptr;
  RxPollConfig poll_;
  void* poll_token_ = nullptr;      // pending RxPollDispatch timer
  void* reenable_token_ = nullptr;  // pending RxReenable timer
};

// §5's fdev_linux_init_ethernet + fdev_probe rolled together: probes every
// simulated NIC on the machine with the Linux driver set and registers the
// resulting devices.
Error InitLinuxEthernet(const FdevEnv& env, Machine* machine,
                        DeviceRegistry* registry);

}  // namespace oskit::linuxdev

#endif  // OSKIT_SRC_DEV_LINUX_LINUX_GLUE_H_
