#include "src/dev/linux/linux_ide.h"

#include <algorithm>
#include <cstring>

#include "src/base/panic.h"
#include "src/libc/format.h"
#include "src/machine/machine.h"

namespace oskit::linuxdev {

// ---------------------------------------------------------------------------
// "Imported" driver core
// ---------------------------------------------------------------------------

namespace {

// The commands the request loop can program into the controller.
enum ide_cmd { IDE_CMD_READ, IDE_CMD_WRITE, IDE_CMD_FLUSH };

Error ide_issue_and_wait(ide_drive* drive, ide_cmd cmd, uint64_t lba,
                         uint32_t sectors, uint8_t* buf) {
  if (drive->busy) {
    return Error::kBusy;  // one outstanding request, 1997 IDE
  }
  drive->busy = true;
  for (uint32_t attempt = 0;; ++attempt) {
    drive->done = false;
    drive->status = Error::kOk;
    ++drive->requests_issued;
    switch (cmd) {
      case IDE_CMD_READ:
        drive->hw->SubmitRead(lba, sectors, buf);
        break;
      case IDE_CMD_WRITE:
        drive->hw->SubmitWrite(lba, sectors, buf);
        break;
      case IDE_CMD_FLUSH:
        drive->hw->SubmitFlush();
        break;
    }
    // Linux style: sleep until the IRQ handler marks the request done —
    // watched over by a timeout that doubles on every retry (the backoff).
    bool timed_out = false;
    while (!drive->done) {
      if (drive->benv.sleep_on_timeout != nullptr && drive->timeout_ns != 0) {
        bool expired = drive->benv.sleep_on_timeout(
            drive->benv.ctx, drive, drive->timeout_ns << attempt);
        if (expired && !drive->done) {
          timed_out = true;
          break;
        }
      } else {
        drive->benv.sleep_on(drive->benv.ctx, drive);
      }
    }
    if (timed_out) {
      // Completion lost (controller hung or a dropped interrupt): reset the
      // controller — which also cancels any late completion — and reissue.
      ++drive->watchdog_resets;
      drive->hw->Reset();
      drive->status = Error::kTimedOut;
    } else if (Ok(drive->status)) {
      drive->busy = false;
      return Error::kOk;
    } else if (drive->status == Error::kOutOfRange) {
      break;  // an addressing bug, not a transient fault: don't hammer it
    }
    if (attempt >= drive->max_retries) {
      break;
    }
    ++drive->retries;
  }
  ++drive->errors_surfaced;
  drive->busy = false;
  return drive->status;
}

}  // namespace

Error ide_do_request(ide_drive* drive, uint64_t lba, uint32_t sectors, uint8_t* buf,
                     bool write) {
  return ide_issue_and_wait(drive, write ? IDE_CMD_WRITE : IDE_CMD_READ, lba,
                            sectors, buf);
}

Error ide_do_flush(ide_drive* drive) {
  return ide_issue_and_wait(drive, IDE_CMD_FLUSH, 0, 0, nullptr);
}

void ide_interrupt(ide_drive* drive) {
  if (!drive->hw->RequestDone()) {
    return;  // spurious
  }
  ++drive->irqs_handled;
  drive->status = drive->hw->RequestStatus();
  drive->hw->AckCompletion();
  drive->done = true;
  drive->benv.wake_up(drive->benv.ctx, drive);
}

// ---------------------------------------------------------------------------
// Glue
// ---------------------------------------------------------------------------

namespace {

void GlueSleepOn(void* ctx, void* /*chan*/) {
  auto* dev = static_cast<LinuxIdeDev*>(ctx);
  // Single-channel device: the sleep record IS the wait queue.
  dev->SleepOnCompletion();
}

void GlueWakeUp(void* ctx, void* /*chan*/) {
  static_cast<LinuxIdeDev*>(ctx)->WakeCompletion();
}

bool GlueSleepOnTimeout(void* ctx, void* /*chan*/, uint64_t ns) {
  return static_cast<LinuxIdeDev*>(ctx)->SleepOnCompletionTimeout(ns);
}

}  // namespace

LinuxIdeDev::LinuxIdeDev(const FdevEnv& env, DiskHw* hw, std::string name)
    : env_(env), name_(std::move(name)), completion_(env.sleep_env) {
  drive_.hw = hw;
  drive_.benv.sleep_on = &GlueSleepOn;
  drive_.benv.wake_up = &GlueWakeUp;
  if (env_.timer_start != nullptr) {
    drive_.benv.sleep_on_timeout = &GlueSleepOnTimeout;
  }
  drive_.benv.ctx = this;
  trace::TraceEnv* tenv = trace::ResolveTraceEnv(env_.trace);
  trace_binding_.Bind(&tenv->registry,
                      {{"glue.ide.retries", &drive_.retries},
                       {"glue.ide.watchdog_resets", &drive_.watchdog_resets},
                       {"glue.ide.errors_surfaced", &drive_.errors_surfaced},
                       {"glue.ide.ring.sqes", &ring_sqes_},
                       {"glue.ide.ring.merges", &ring_merges_},
                       {"glue.ide.ring.merged_sqes", &ring_merged_}});
  env_.irq_attach(env_.ctx, hw->irq(), [this] { ide_interrupt(&drive_); });
}

bool LinuxIdeDev::SleepOnCompletionTimeout(uint64_t ns) {
  if (env_.timer_start == nullptr) {
    completion_.Sleep();
    return false;
  }
  void* token = env_.timer_start(env_.ctx, ns, [this] { WakeCompletion(); });
  completion_.Sleep();
  // Cancel failing means the watchdog event already ran: the wake that
  // resumed us was the timeout, not the completion interrupt.
  return !env_.timer_cancel(env_.ctx, token);
}

LinuxIdeDev::~LinuxIdeDev() { env_.irq_detach(env_.ctx, drive_.hw->irq()); }

Error LinuxIdeDev::Query(const Guid& iid, void** out) {
  if (iid == IUnknown::kIid || iid == Device::kIid) {
    AddRef();
    *out = static_cast<Device*>(this);
    return Error::kOk;
  }
  if (iid == BlkIo::kIid) {
    AddRef();
    *out = static_cast<BlkIo*>(this);
    return Error::kOk;
  }
  if (iid == BlkIoBarrier::kIid) {
    AddRef();
    *out = static_cast<BlkIoBarrier*>(this);
    return Error::kOk;
  }
  if (iid == BlkIoRing::kIid) {
    AddRef();
    *out = static_cast<BlkIoRing*>(this);
    return Error::kOk;
  }
  *out = nullptr;
  return Error::kNoInterface;
}

Error LinuxIdeDev::GetInfo(DeviceInfo* out_info) {
  out_info->name = name_.c_str();
  out_info->description = "Linux 2.0-style simulated IDE disk";
  out_info->vendor = "linux";
  return Error::kOk;
}

Error LinuxIdeDev::Read(void* buf, off_t64 offset, size_t amount, size_t* out_actual) {
  *out_actual = 0;
  constexpr uint32_t kSector = DiskHw::kSectorSize;
  uint64_t disk_bytes = drive_.hw->sector_count() * kSector;
  if (offset > disk_bytes) {
    return Error::kOutOfRange;
  }
  // Bounds discipline (shared with MemBlkIo and MbufBufIo): compare by
  // subtraction so a huge `amount` cannot wrap `offset + amount` past the
  // device end; a genuinely wrapping range is a caller bug, not a short read.
  if (amount > disk_bytes - offset) {
    if (offset + amount < offset) {
      return Error::kInval;
    }
    amount = disk_bytes - offset;
  }
  auto* out = static_cast<uint8_t*>(buf);
  size_t done = 0;
  while (done < amount) {
    uint64_t lba = (offset + done) / kSector;
    uint32_t in_sector = static_cast<uint32_t>((offset + done) % kSector);
    if (in_sector == 0 && amount - done >= kSector) {
      // Whole-sector fast path: DMA straight into the caller's buffer, up
      // to 64 sectors per request (old IDE multi-sector limit).
      uint32_t sectors = static_cast<uint32_t>((amount - done) / kSector);
      if (sectors > 64) {
        sectors = 64;
      }
      Error err = ide_do_request(&drive_, lba, sectors, out + done, /*write=*/false);
      if (!Ok(err)) {
        return err;
      }
      done += static_cast<size_t>(sectors) * kSector;
      continue;
    }
    // Partial sector: bounce through a sector buffer.
    uint8_t sector_buf[kSector];
    Error err = ide_do_request(&drive_, lba, 1, sector_buf, /*write=*/false);
    if (!Ok(err)) {
      return err;
    }
    size_t n = kSector - in_sector;
    if (n > amount - done) {
      n = amount - done;
    }
    std::memcpy(out + done, sector_buf + in_sector, n);
    done += n;
  }
  *out_actual = done;
  return Error::kOk;
}

Error LinuxIdeDev::Write(const void* buf, off_t64 offset, size_t amount,
                         size_t* out_actual) {
  *out_actual = 0;
  constexpr uint32_t kSector = DiskHw::kSectorSize;
  uint64_t disk_bytes = drive_.hw->sector_count() * kSector;
  if (offset > disk_bytes) {
    return Error::kOutOfRange;
  }
  if (amount > disk_bytes - offset) {
    if (offset + amount < offset) {
      return Error::kInval;  // wrapped range (see Read)
    }
    amount = disk_bytes - offset;
  }
  const auto* in = static_cast<const uint8_t*>(buf);
  size_t done = 0;
  while (done < amount) {
    uint64_t lba = (offset + done) / kSector;
    uint32_t in_sector = static_cast<uint32_t>((offset + done) % kSector);
    if (in_sector == 0 && amount - done >= kSector) {
      uint32_t sectors = static_cast<uint32_t>((amount - done) / kSector);
      if (sectors > 64) {
        sectors = 64;
      }
      Error err = ide_do_request(&drive_, lba, sectors,
                                 const_cast<uint8_t*>(in + done), /*write=*/true);
      if (!Ok(err)) {
        return err;
      }
      done += static_cast<size_t>(sectors) * kSector;
      continue;
    }
    // Read-modify-write for the partial sector.
    uint8_t sector_buf[kSector];
    Error err = ide_do_request(&drive_, lba, 1, sector_buf, /*write=*/false);
    if (!Ok(err)) {
      return err;
    }
    size_t n = kSector - in_sector;
    if (n > amount - done) {
      n = amount - done;
    }
    std::memcpy(sector_buf + in_sector, in + done, n);
    err = ide_do_request(&drive_, lba, 1, sector_buf, /*write=*/true);
    if (!Ok(err)) {
      return err;
    }
    done += n;
  }
  *out_actual = done;
  return Error::kOk;
}

Error LinuxIdeDev::GetSize(off_t64* out_size) {
  *out_size = drive_.hw->sector_count() * DiskHw::kSectorSize;
  return Error::kOk;
}

// ---------------------------------------------------------------------------
// BlkIoRing: queue-depth-aware scheduling.
//
// The controller charges a fixed seek per request (DiskHw::Timing.seek_ns)
// plus one completion IRQ, so the win from a deep queue is issuing FEWER,
// LARGER requests: the batch is sorted by LBA and adjacent whole-sector
// SQEs are merged into single multi-count commands (<= 64 sectors, the old
// IDE limit), gathered/scattered through a bounce buffer.  Writes run
// before reads (an in-batch read of a block written by the same batch must
// see the new bytes), flushes run last (the ring's barrier contract).
// ---------------------------------------------------------------------------

void LinuxIdeDev::CompleteSqe(const AioSqe& sqe) {
  AioCqe cqe;
  cqe.tag = sqe.tag;
  switch (sqe.op) {
    case AioOp::kRead:
      cqe.status = Read(sqe.buf, sqe.offset, sqe.len, &cqe.actual);
      break;
    case AioOp::kWrite:
      cqe.status = Write(sqe.buf, sqe.offset, sqe.len, &cqe.actual);
      break;
    case AioOp::kFlush:
      cqe.status = Flush();
      break;
  }
  cq_.push_back(cqe);
}

void LinuxIdeDev::RunMerged(const std::vector<const AioSqe*>& run, bool write) {
  constexpr uint32_t kSector = DiskHw::kSectorSize;
  size_t total = 0;
  for (const AioSqe* s : run) {
    total += s->len;
  }
  std::vector<uint8_t> bounce(total);
  if (write) {
    size_t off = 0;
    for (const AioSqe* s : run) {
      std::memcpy(bounce.data() + off, s->buf, s->len);
      off += s->len;
    }
  }
  uint64_t lba = run.front()->offset / kSector;
  Error err = ide_do_request(&drive_, lba, static_cast<uint32_t>(total / kSector),
                             bounce.data(), write);
  ++ring_merges_;
  ring_merged_ += run.size();
  size_t off = 0;
  for (const AioSqe* s : run) {
    if (!write && Ok(err)) {
      std::memcpy(s->buf, bounce.data() + off, s->len);
    }
    off += s->len;
    cq_.push_back(AioCqe{s->tag, err, Ok(err) ? s->len : 0});
  }
}

Error LinuxIdeDev::Submit(const AioSqe* sqes, size_t count, size_t* out_accepted) {
  *out_accepted = 0;
  if (sqes == nullptr && count != 0) {
    return Error::kInval;
  }
  // Backpressure: never let unreaped completions exceed the ring depth.
  size_t space = kRingDepth > cq_.size() ? kRingDepth - cq_.size() : 0;
  size_t accepted = count < space ? count : space;
  ring_sqes_ += accepted;

  constexpr uint32_t kSector = DiskHw::kSectorSize;
  uint64_t disk_bytes = drive_.hw->sector_count() * kSector;
  std::vector<const AioSqe*> reads;
  std::vector<const AioSqe*> writes;
  std::vector<const AioSqe*> odd;      // unaligned/oversized: slow byte path
  std::vector<const AioSqe*> flushes;  // barriers: after every data op
  for (size_t i = 0; i < accepted; ++i) {
    const AioSqe& s = sqes[i];
    if (s.op == AioOp::kFlush) {
      flushes.push_back(&s);
      continue;
    }
    bool mergeable = s.offset % kSector == 0 && s.len % kSector == 0 &&
                     s.len != 0 && s.len / kSector <= 64 &&
                     s.offset <= disk_bytes && s.len <= disk_bytes - s.offset;
    if (!mergeable) {
      odd.push_back(&s);  // CompleteSqe applies the usual bounds discipline
    } else if (s.op == AioOp::kWrite) {
      writes.push_back(&s);
    } else {
      reads.push_back(&s);
    }
  }

  // Stable: two SQEs on the same LBA keep submission order.
  auto by_lba = [](const AioSqe* a, const AioSqe* b) {
    return a->offset < b->offset;
  };
  auto schedule = [&](std::vector<const AioSqe*>& v, bool write) {
    std::stable_sort(v.begin(), v.end(), by_lba);
    size_t i = 0;
    while (i < v.size()) {
      size_t j = i + 1;
      size_t sectors = v[i]->len / kSector;
      while (j < v.size() &&
             v[j]->offset == v[j - 1]->offset + v[j - 1]->len &&
             sectors + v[j]->len / kSector <= 64) {
        sectors += v[j]->len / kSector;
        ++j;
      }
      if (j - i == 1) {
        CompleteSqe(*v[i]);
      } else {
        RunMerged(std::vector<const AioSqe*>(v.begin() + i, v.begin() + j),
                  write);
      }
      i = j;
    }
  };
  schedule(writes, /*write=*/true);
  schedule(reads, /*write=*/false);
  for (const AioSqe* s : odd) {
    CompleteSqe(*s);
  }
  for (const AioSqe* s : flushes) {
    CompleteSqe(*s);
  }
  *out_accepted = accepted;
  return Error::kOk;
}

Error LinuxIdeDev::Reap(AioCqe* out_cqes, size_t cap, size_t* out_count) {
  size_t n = 0;
  while (n < cap && !cq_.empty()) {
    out_cqes[n++] = cq_.front();
    cq_.pop_front();
  }
  *out_count = n;
  return Error::kOk;
}

Error InitLinuxIde(const FdevEnv& env, Machine* machine, DeviceRegistry* registry) {
  int index = 0;
  for (const auto& disk : machine->disks()) {
    char name[8];
    libc::Snprintf(name, sizeof(name), "hd%c", 'a' + index++);
    registry->Register(ComPtr<Device>(new LinuxIdeDev(env, disk.get(), name)));
  }
  return Error::kOk;
}

}  // namespace oskit::linuxdev
