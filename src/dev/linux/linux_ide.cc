#include "src/dev/linux/linux_ide.h"

#include <cstring>

#include "src/base/panic.h"
#include "src/libc/format.h"
#include "src/machine/machine.h"

namespace oskit::linuxdev {

// ---------------------------------------------------------------------------
// "Imported" driver core
// ---------------------------------------------------------------------------

namespace {

// The commands the request loop can program into the controller.
enum ide_cmd { IDE_CMD_READ, IDE_CMD_WRITE, IDE_CMD_FLUSH };

Error ide_issue_and_wait(ide_drive* drive, ide_cmd cmd, uint64_t lba,
                         uint32_t sectors, uint8_t* buf) {
  if (drive->busy) {
    return Error::kBusy;  // one outstanding request, 1997 IDE
  }
  drive->busy = true;
  for (uint32_t attempt = 0;; ++attempt) {
    drive->done = false;
    drive->status = Error::kOk;
    ++drive->requests_issued;
    switch (cmd) {
      case IDE_CMD_READ:
        drive->hw->SubmitRead(lba, sectors, buf);
        break;
      case IDE_CMD_WRITE:
        drive->hw->SubmitWrite(lba, sectors, buf);
        break;
      case IDE_CMD_FLUSH:
        drive->hw->SubmitFlush();
        break;
    }
    // Linux style: sleep until the IRQ handler marks the request done —
    // watched over by a timeout that doubles on every retry (the backoff).
    bool timed_out = false;
    while (!drive->done) {
      if (drive->benv.sleep_on_timeout != nullptr && drive->timeout_ns != 0) {
        bool expired = drive->benv.sleep_on_timeout(
            drive->benv.ctx, drive, drive->timeout_ns << attempt);
        if (expired && !drive->done) {
          timed_out = true;
          break;
        }
      } else {
        drive->benv.sleep_on(drive->benv.ctx, drive);
      }
    }
    if (timed_out) {
      // Completion lost (controller hung or a dropped interrupt): reset the
      // controller — which also cancels any late completion — and reissue.
      ++drive->watchdog_resets;
      drive->hw->Reset();
      drive->status = Error::kTimedOut;
    } else if (Ok(drive->status)) {
      drive->busy = false;
      return Error::kOk;
    } else if (drive->status == Error::kOutOfRange) {
      break;  // an addressing bug, not a transient fault: don't hammer it
    }
    if (attempt >= drive->max_retries) {
      break;
    }
    ++drive->retries;
  }
  ++drive->errors_surfaced;
  drive->busy = false;
  return drive->status;
}

}  // namespace

Error ide_do_request(ide_drive* drive, uint64_t lba, uint32_t sectors, uint8_t* buf,
                     bool write) {
  return ide_issue_and_wait(drive, write ? IDE_CMD_WRITE : IDE_CMD_READ, lba,
                            sectors, buf);
}

Error ide_do_flush(ide_drive* drive) {
  return ide_issue_and_wait(drive, IDE_CMD_FLUSH, 0, 0, nullptr);
}

void ide_interrupt(ide_drive* drive) {
  if (!drive->hw->RequestDone()) {
    return;  // spurious
  }
  ++drive->irqs_handled;
  drive->status = drive->hw->RequestStatus();
  drive->hw->AckCompletion();
  drive->done = true;
  drive->benv.wake_up(drive->benv.ctx, drive);
}

// ---------------------------------------------------------------------------
// Glue
// ---------------------------------------------------------------------------

namespace {

void GlueSleepOn(void* ctx, void* /*chan*/) {
  auto* dev = static_cast<LinuxIdeDev*>(ctx);
  // Single-channel device: the sleep record IS the wait queue.
  dev->SleepOnCompletion();
}

void GlueWakeUp(void* ctx, void* /*chan*/) {
  static_cast<LinuxIdeDev*>(ctx)->WakeCompletion();
}

bool GlueSleepOnTimeout(void* ctx, void* /*chan*/, uint64_t ns) {
  return static_cast<LinuxIdeDev*>(ctx)->SleepOnCompletionTimeout(ns);
}

}  // namespace

LinuxIdeDev::LinuxIdeDev(const FdevEnv& env, DiskHw* hw, std::string name)
    : env_(env), name_(std::move(name)), completion_(env.sleep_env) {
  drive_.hw = hw;
  drive_.benv.sleep_on = &GlueSleepOn;
  drive_.benv.wake_up = &GlueWakeUp;
  if (env_.timer_start != nullptr) {
    drive_.benv.sleep_on_timeout = &GlueSleepOnTimeout;
  }
  drive_.benv.ctx = this;
  trace::TraceEnv* tenv = trace::ResolveTraceEnv(env_.trace);
  trace_binding_.Bind(&tenv->registry,
                      {{"glue.ide.retries", &drive_.retries},
                       {"glue.ide.watchdog_resets", &drive_.watchdog_resets},
                       {"glue.ide.errors_surfaced", &drive_.errors_surfaced}});
  env_.irq_attach(env_.ctx, hw->irq(), [this] { ide_interrupt(&drive_); });
}

bool LinuxIdeDev::SleepOnCompletionTimeout(uint64_t ns) {
  if (env_.timer_start == nullptr) {
    completion_.Sleep();
    return false;
  }
  void* token = env_.timer_start(env_.ctx, ns, [this] { WakeCompletion(); });
  completion_.Sleep();
  // Cancel failing means the watchdog event already ran: the wake that
  // resumed us was the timeout, not the completion interrupt.
  return !env_.timer_cancel(env_.ctx, token);
}

LinuxIdeDev::~LinuxIdeDev() { env_.irq_detach(env_.ctx, drive_.hw->irq()); }

Error LinuxIdeDev::Query(const Guid& iid, void** out) {
  if (iid == IUnknown::kIid || iid == Device::kIid) {
    AddRef();
    *out = static_cast<Device*>(this);
    return Error::kOk;
  }
  if (iid == BlkIo::kIid) {
    AddRef();
    *out = static_cast<BlkIo*>(this);
    return Error::kOk;
  }
  if (iid == BlkIoBarrier::kIid) {
    AddRef();
    *out = static_cast<BlkIoBarrier*>(this);
    return Error::kOk;
  }
  *out = nullptr;
  return Error::kNoInterface;
}

Error LinuxIdeDev::GetInfo(DeviceInfo* out_info) {
  out_info->name = name_.c_str();
  out_info->description = "Linux 2.0-style simulated IDE disk";
  out_info->vendor = "linux";
  return Error::kOk;
}

Error LinuxIdeDev::Read(void* buf, off_t64 offset, size_t amount, size_t* out_actual) {
  *out_actual = 0;
  constexpr uint32_t kSector = DiskHw::kSectorSize;
  uint64_t disk_bytes = drive_.hw->sector_count() * kSector;
  if (offset > disk_bytes) {
    return Error::kOutOfRange;
  }
  if (offset + amount > disk_bytes) {
    amount = disk_bytes - offset;
  }
  auto* out = static_cast<uint8_t*>(buf);
  size_t done = 0;
  while (done < amount) {
    uint64_t lba = (offset + done) / kSector;
    uint32_t in_sector = static_cast<uint32_t>((offset + done) % kSector);
    if (in_sector == 0 && amount - done >= kSector) {
      // Whole-sector fast path: DMA straight into the caller's buffer, up
      // to 64 sectors per request (old IDE multi-sector limit).
      uint32_t sectors = static_cast<uint32_t>((amount - done) / kSector);
      if (sectors > 64) {
        sectors = 64;
      }
      Error err = ide_do_request(&drive_, lba, sectors, out + done, /*write=*/false);
      if (!Ok(err)) {
        return err;
      }
      done += static_cast<size_t>(sectors) * kSector;
      continue;
    }
    // Partial sector: bounce through a sector buffer.
    uint8_t sector_buf[kSector];
    Error err = ide_do_request(&drive_, lba, 1, sector_buf, /*write=*/false);
    if (!Ok(err)) {
      return err;
    }
    size_t n = kSector - in_sector;
    if (n > amount - done) {
      n = amount - done;
    }
    std::memcpy(out + done, sector_buf + in_sector, n);
    done += n;
  }
  *out_actual = done;
  return Error::kOk;
}

Error LinuxIdeDev::Write(const void* buf, off_t64 offset, size_t amount,
                         size_t* out_actual) {
  *out_actual = 0;
  constexpr uint32_t kSector = DiskHw::kSectorSize;
  uint64_t disk_bytes = drive_.hw->sector_count() * kSector;
  if (offset > disk_bytes) {
    return Error::kOutOfRange;
  }
  if (offset + amount > disk_bytes) {
    amount = disk_bytes - offset;
  }
  const auto* in = static_cast<const uint8_t*>(buf);
  size_t done = 0;
  while (done < amount) {
    uint64_t lba = (offset + done) / kSector;
    uint32_t in_sector = static_cast<uint32_t>((offset + done) % kSector);
    if (in_sector == 0 && amount - done >= kSector) {
      uint32_t sectors = static_cast<uint32_t>((amount - done) / kSector);
      if (sectors > 64) {
        sectors = 64;
      }
      Error err = ide_do_request(&drive_, lba, sectors,
                                 const_cast<uint8_t*>(in + done), /*write=*/true);
      if (!Ok(err)) {
        return err;
      }
      done += static_cast<size_t>(sectors) * kSector;
      continue;
    }
    // Read-modify-write for the partial sector.
    uint8_t sector_buf[kSector];
    Error err = ide_do_request(&drive_, lba, 1, sector_buf, /*write=*/false);
    if (!Ok(err)) {
      return err;
    }
    size_t n = kSector - in_sector;
    if (n > amount - done) {
      n = amount - done;
    }
    std::memcpy(sector_buf + in_sector, in + done, n);
    err = ide_do_request(&drive_, lba, 1, sector_buf, /*write=*/true);
    if (!Ok(err)) {
      return err;
    }
    done += n;
  }
  *out_actual = done;
  return Error::kOk;
}

Error LinuxIdeDev::GetSize(off_t64* out_size) {
  *out_size = drive_.hw->sector_count() * DiskHw::kSectorSize;
  return Error::kOk;
}

Error InitLinuxIde(const FdevEnv& env, Machine* machine, DeviceRegistry* registry) {
  int index = 0;
  for (const auto& disk : machine->disks()) {
    char name[8];
    libc::Snprintf(name, sizeof(name), "hd%c", 'a' + index++);
    registry->Register(ComPtr<Device>(new LinuxIdeDev(env, disk.get(), name)));
  }
  return Error::kOk;
}

}  // namespace oskit::linuxdev
