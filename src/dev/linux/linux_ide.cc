#include "src/dev/linux/linux_ide.h"

#include <cstring>

#include "src/base/panic.h"
#include "src/libc/format.h"
#include "src/machine/machine.h"

namespace oskit::linuxdev {

// ---------------------------------------------------------------------------
// "Imported" driver core
// ---------------------------------------------------------------------------

Error ide_do_request(ide_drive* drive, uint64_t lba, uint32_t sectors, uint8_t* buf,
                     bool write) {
  OSKIT_ASSERT_MSG(!drive->busy, "overlapping IDE requests");
  drive->busy = true;
  drive->done = false;
  ++drive->requests_issued;
  if (write) {
    drive->hw->SubmitWrite(lba, sectors, buf);
  } else {
    drive->hw->SubmitRead(lba, sectors, buf);
  }
  // Linux style: sleep until the IRQ handler marks the request done.
  while (!drive->done) {
    drive->benv.sleep_on(drive->benv.ctx, drive);
  }
  drive->busy = false;
  return drive->status;
}

void ide_interrupt(ide_drive* drive) {
  if (!drive->hw->RequestDone()) {
    return;  // spurious
  }
  ++drive->irqs_handled;
  drive->status = drive->hw->RequestStatus();
  drive->hw->AckCompletion();
  drive->done = true;
  drive->benv.wake_up(drive->benv.ctx, drive);
}

// ---------------------------------------------------------------------------
// Glue
// ---------------------------------------------------------------------------

namespace {

void GlueSleepOn(void* ctx, void* /*chan*/) {
  auto* dev = static_cast<LinuxIdeDev*>(ctx);
  // Single-channel device: the sleep record IS the wait queue.
  dev->SleepOnCompletion();
}

void GlueWakeUp(void* ctx, void* /*chan*/) {
  static_cast<LinuxIdeDev*>(ctx)->WakeCompletion();
}

}  // namespace

LinuxIdeDev::LinuxIdeDev(const FdevEnv& env, DiskHw* hw, std::string name)
    : env_(env), name_(std::move(name)), completion_(env.sleep_env) {
  drive_.hw = hw;
  drive_.benv.sleep_on = &GlueSleepOn;
  drive_.benv.wake_up = &GlueWakeUp;
  drive_.benv.ctx = this;
  env_.irq_attach(env_.ctx, hw->irq(), [this] { ide_interrupt(&drive_); });
}

LinuxIdeDev::~LinuxIdeDev() { env_.irq_detach(env_.ctx, drive_.hw->irq()); }

Error LinuxIdeDev::Query(const Guid& iid, void** out) {
  if (iid == IUnknown::kIid || iid == Device::kIid) {
    AddRef();
    *out = static_cast<Device*>(this);
    return Error::kOk;
  }
  if (iid == BlkIo::kIid) {
    AddRef();
    *out = static_cast<BlkIo*>(this);
    return Error::kOk;
  }
  *out = nullptr;
  return Error::kNoInterface;
}

Error LinuxIdeDev::GetInfo(DeviceInfo* out_info) {
  out_info->name = name_.c_str();
  out_info->description = "Linux 2.0-style simulated IDE disk";
  out_info->vendor = "linux";
  return Error::kOk;
}

Error LinuxIdeDev::Read(void* buf, off_t64 offset, size_t amount, size_t* out_actual) {
  *out_actual = 0;
  constexpr uint32_t kSector = DiskHw::kSectorSize;
  uint64_t disk_bytes = drive_.hw->sector_count() * kSector;
  if (offset > disk_bytes) {
    return Error::kOutOfRange;
  }
  if (offset + amount > disk_bytes) {
    amount = disk_bytes - offset;
  }
  auto* out = static_cast<uint8_t*>(buf);
  size_t done = 0;
  while (done < amount) {
    uint64_t lba = (offset + done) / kSector;
    uint32_t in_sector = static_cast<uint32_t>((offset + done) % kSector);
    if (in_sector == 0 && amount - done >= kSector) {
      // Whole-sector fast path: DMA straight into the caller's buffer, up
      // to 64 sectors per request (old IDE multi-sector limit).
      uint32_t sectors = static_cast<uint32_t>((amount - done) / kSector);
      if (sectors > 64) {
        sectors = 64;
      }
      Error err = ide_do_request(&drive_, lba, sectors, out + done, /*write=*/false);
      if (!Ok(err)) {
        return err;
      }
      done += static_cast<size_t>(sectors) * kSector;
      continue;
    }
    // Partial sector: bounce through a sector buffer.
    uint8_t sector_buf[kSector];
    Error err = ide_do_request(&drive_, lba, 1, sector_buf, /*write=*/false);
    if (!Ok(err)) {
      return err;
    }
    size_t n = kSector - in_sector;
    if (n > amount - done) {
      n = amount - done;
    }
    std::memcpy(out + done, sector_buf + in_sector, n);
    done += n;
  }
  *out_actual = done;
  return Error::kOk;
}

Error LinuxIdeDev::Write(const void* buf, off_t64 offset, size_t amount,
                         size_t* out_actual) {
  *out_actual = 0;
  constexpr uint32_t kSector = DiskHw::kSectorSize;
  uint64_t disk_bytes = drive_.hw->sector_count() * kSector;
  if (offset > disk_bytes) {
    return Error::kOutOfRange;
  }
  if (offset + amount > disk_bytes) {
    amount = disk_bytes - offset;
  }
  const auto* in = static_cast<const uint8_t*>(buf);
  size_t done = 0;
  while (done < amount) {
    uint64_t lba = (offset + done) / kSector;
    uint32_t in_sector = static_cast<uint32_t>((offset + done) % kSector);
    if (in_sector == 0 && amount - done >= kSector) {
      uint32_t sectors = static_cast<uint32_t>((amount - done) / kSector);
      if (sectors > 64) {
        sectors = 64;
      }
      Error err = ide_do_request(&drive_, lba, sectors,
                                 const_cast<uint8_t*>(in + done), /*write=*/true);
      if (!Ok(err)) {
        return err;
      }
      done += static_cast<size_t>(sectors) * kSector;
      continue;
    }
    // Read-modify-write for the partial sector.
    uint8_t sector_buf[kSector];
    Error err = ide_do_request(&drive_, lba, 1, sector_buf, /*write=*/false);
    if (!Ok(err)) {
      return err;
    }
    size_t n = kSector - in_sector;
    if (n > amount - done) {
      n = amount - done;
    }
    std::memcpy(sector_buf + in_sector, in + done, n);
    err = ide_do_request(&drive_, lba, 1, sector_buf, /*write=*/true);
    if (!Ok(err)) {
      return err;
    }
    done += n;
  }
  *out_actual = done;
  return Error::kOk;
}

Error LinuxIdeDev::GetSize(off_t64* out_size) {
  *out_size = drive_.hw->sector_count() * DiskHw::kSectorSize;
  return Error::kOk;
}

Error InitLinuxIde(const FdevEnv& env, Machine* machine, DeviceRegistry* registry) {
  int index = 0;
  for (const auto& disk : machine->disks()) {
    char name[8];
    libc::Snprintf(name, sizeof(name), "hd%c", 'a' + index++);
    registry->Register(ComPtr<Device>(new LinuxIdeDev(env, disk.get(), name)));
  }
  return Error::kOk;
}

}  // namespace oskit::linuxdev
