// The "imported" Linux-2.0-style IDE disk driver and its glue.
//
// Core idiom: a request struct, an interrupt handler completing the current
// request, and sleep_on/wake_up blocking — the Linux half of §4.7.6's
// "the interrupt handler in a device driver uses [sleep/wakeup] to wake up
// a blocked read or write request after it has completed".  The glue binds
// sleep_on/wake_up to OSKit sleep records and exports the drive as COM
// Device + BlkIo, so any filesystem can be bound to it at run time (§4.2.2).
//
// Robustness: like its ancestor, the driver defends against misbehaving
// hardware.  A request that reports a media error is retried with
// exponential backoff up to max_retries before the error is surfaced to the
// BlkIo client; a request whose completion interrupt never arrives trips a
// watchdog (sleep_on_timeout), the controller is reset, and the request is
// reissued.  Both the retries and the resets are counted into the trace
// registry (glue.ide.*), so a fault campaign can check every injected disk
// fault produced a recovery action.

#ifndef OSKIT_SRC_DEV_LINUX_LINUX_IDE_H_
#define OSKIT_SRC_DEV_LINUX_LINUX_IDE_H_

#include <deque>
#include <string>
#include <vector>

#include "src/com/aio.h"
#include "src/com/blkio.h"
#include "src/com/device.h"
#include "src/dev/fdev/fdev.h"
#include "src/dev/linux/skbuff.h"
#include "src/machine/disk.h"
#include "src/trace/trace.h"

namespace oskit::linuxdev {

// The Linux-ish blocking services the imported block driver expects.
struct LinuxBlockEnv {
  void (*sleep_on)(void* ctx, void* chan) = nullptr;
  void (*wake_up)(void* ctx, void* chan) = nullptr;
  // Bounded sleep for the request watchdog: returns true when `ns` elapsed
  // with no wake_up.  Optional; without it requests block forever, the
  // original Linux 2.0 behaviour.
  bool (*sleep_on_timeout)(void* ctx, void* chan, uint64_t ns) = nullptr;
  void* ctx = nullptr;
};

// The "imported" driver core.
struct ide_drive {
  oskit::DiskHw* hw = nullptr;
  LinuxBlockEnv benv;

  // Current request state (one outstanding, 1997 IDE).
  bool busy = false;
  bool done = false;
  oskit::Error status = oskit::Error::kOk;

  // Recovery policy.
  uint64_t timeout_ns = 50 * 1000 * 1000;  // 50 ms before the watchdog fires
  uint32_t max_retries = 4;

  uint64_t requests_issued = 0;
  uint64_t irqs_handled = 0;
  oskit::trace::Counter retries;           // error status -> reissued
  oskit::trace::Counter watchdog_resets;   // lost completion -> hw reset
  oskit::trace::Counter errors_surfaced;   // retries exhausted
};

// Issues a request and blocks until the completion interrupt, retrying
// transient errors and watchdog-resetting a hung controller.  Returns
// kBusy (without blocking) if a request is already outstanding.
oskit::Error ide_do_request(ide_drive* drive, uint64_t lba, uint32_t sectors,
                            uint8_t* buf, bool write);

// Issues a cache-flush command (WIN_FLUSH_CACHE) through the same blocking,
// retry and watchdog machinery.  On success every previously acknowledged
// write is durable.
oskit::Error ide_do_flush(ide_drive* drive);

// The interrupt handler the glue attaches to IRQ 14.
void ide_interrupt(ide_drive* drive);

// ---------------------------------------------------------------------------
// Glue: COM export
// ---------------------------------------------------------------------------

// Exports the drive as Device + BlkIo + BlkIoBarrier + BlkIoRing.  The ring
// is where the glue earns its keep: a deep submission batch is sorted by
// LBA and adjacent whole-sector requests are merged into single multi-count
// controller commands (up to the 64-sector IDE limit), so queue depth
// amortizes the fixed per-request seek/IRQ round-trip that the synchronous
// call-per-block path pays every time.  Counters land under glue.ide.ring.*.
class LinuxIdeDev final : public Device, public BlkIo, public BlkIoBarrier,
                          public BlkIoRing, public RefCounted<LinuxIdeDev> {
 public:
  LinuxIdeDev(const FdevEnv& env, oskit::DiskHw* hw, std::string name);

  // IUnknown
  Error Query(const Guid& iid, void** out) override;
  uint32_t AddRef() override { return AddRefImpl(); }
  uint32_t Release() override { return ReleaseImpl(); }

  // Device
  Error GetInfo(DeviceInfo* out_info) override;

  // BlkIo: byte-granular offsets; partial sectors handled by
  // read-modify-write in the glue, as the real blkio glue did.
  uint32_t GetBlockSize() override { return oskit::DiskHw::kSectorSize; }
  Error Read(void* buf, off_t64 offset, size_t amount, size_t* out_actual) override;
  Error Write(const void* buf, off_t64 offset, size_t amount,
              size_t* out_actual) override;
  Error GetSize(off_t64* out_size) override;
  Error SetSize(off_t64) override { return Error::kNotImpl; }

  // BlkIoBarrier: drains the drive's volatile write cache.
  Error Flush() override { return ide_do_flush(&drive_); }

  // BlkIoRing: queue-depth-aware scheduling (LBA sort + adjacent merge).
  static constexpr size_t kRingDepth = 64;
  Error Submit(const AioSqe* sqes, size_t count, size_t* out_accepted) override;
  Error Reap(AioCqe* out_cqes, size_t cap, size_t* out_count) override;
  size_t Occupancy() override { return cq_.size(); }

  const ide_drive& drive() const { return drive_; }
  ide_drive& mutable_drive() { return drive_; }  // recovery-policy tuning

  // Sleep-record plumbing the emulated sleep_on/wake_up binds to (§4.7.6).
  void SleepOnCompletion() { completion_.Sleep(); }
  void WakeCompletion() { completion_.Wakeup(); }
  // Bounded sleep via the fdev timer service; true when the watchdog fired
  // first.
  bool SleepOnCompletionTimeout(uint64_t ns);

 private:
  friend class RefCounted<LinuxIdeDev>;
  ~LinuxIdeDev();

  // Executes one scheduled run of merged whole-sector SQEs (or one odd SQE
  // through the slow byte path) and queues its CQEs.
  void CompleteSqe(const AioSqe& sqe);
  void RunMerged(const std::vector<const AioSqe*>& run, bool write);

  FdevEnv env_;
  ide_drive drive_;
  std::string name_;
  SleepRecord completion_;
  trace::CounterBlock trace_binding_;

  std::deque<AioCqe> cq_;
  trace::Counter ring_sqes_;      // SQEs accepted
  trace::Counter ring_merges_;    // multi-SQE controller commands issued
  trace::Counter ring_merged_;    // SQEs that rode a merged command
};

// Probes every simulated disk on the machine, registering "hda", "hdb", ...
Error InitLinuxIde(const FdevEnv& env, Machine* machine, DeviceRegistry* registry);

}  // namespace oskit::linuxdev

#endif  // OSKIT_SRC_DEV_LINUX_LINUX_IDE_H_
