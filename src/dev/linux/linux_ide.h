// The "imported" Linux-2.0-style IDE disk driver and its glue.
//
// Core idiom: a request struct, an interrupt handler completing the current
// request, and sleep_on/wake_up blocking — the Linux half of §4.7.6's
// "the interrupt handler in a device driver uses [sleep/wakeup] to wake up
// a blocked read or write request after it has completed".  The glue binds
// sleep_on/wake_up to OSKit sleep records and exports the drive as COM
// Device + BlkIo, so any filesystem can be bound to it at run time (§4.2.2).

#ifndef OSKIT_SRC_DEV_LINUX_LINUX_IDE_H_
#define OSKIT_SRC_DEV_LINUX_LINUX_IDE_H_

#include <string>

#include "src/com/blkio.h"
#include "src/com/device.h"
#include "src/dev/fdev/fdev.h"
#include "src/dev/linux/skbuff.h"
#include "src/machine/disk.h"

namespace oskit::linuxdev {

// The Linux-ish blocking services the imported block driver expects.
struct LinuxBlockEnv {
  void (*sleep_on)(void* ctx, void* chan) = nullptr;
  void (*wake_up)(void* ctx, void* chan) = nullptr;
  void* ctx = nullptr;
};

// The "imported" driver core.
struct ide_drive {
  oskit::DiskHw* hw = nullptr;
  LinuxBlockEnv benv;

  // Current request state (one outstanding, 1997 IDE).
  bool busy = false;
  bool done = false;
  oskit::Error status = oskit::Error::kOk;

  uint64_t requests_issued = 0;
  uint64_t irqs_handled = 0;
};

// Issues a request and blocks until the completion interrupt.
oskit::Error ide_do_request(ide_drive* drive, uint64_t lba, uint32_t sectors,
                            uint8_t* buf, bool write);

// The interrupt handler the glue attaches to IRQ 14.
void ide_interrupt(ide_drive* drive);

// ---------------------------------------------------------------------------
// Glue: COM export
// ---------------------------------------------------------------------------

class LinuxIdeDev final : public Device, public BlkIo, public RefCounted<LinuxIdeDev> {
 public:
  LinuxIdeDev(const FdevEnv& env, oskit::DiskHw* hw, std::string name);

  // IUnknown
  Error Query(const Guid& iid, void** out) override;
  uint32_t AddRef() override { return AddRefImpl(); }
  uint32_t Release() override { return ReleaseImpl(); }

  // Device
  Error GetInfo(DeviceInfo* out_info) override;

  // BlkIo: byte-granular offsets; partial sectors handled by
  // read-modify-write in the glue, as the real blkio glue did.
  uint32_t GetBlockSize() override { return oskit::DiskHw::kSectorSize; }
  Error Read(void* buf, off_t64 offset, size_t amount, size_t* out_actual) override;
  Error Write(const void* buf, off_t64 offset, size_t amount,
              size_t* out_actual) override;
  Error GetSize(off_t64* out_size) override;
  Error SetSize(off_t64) override { return Error::kNotImpl; }

  const ide_drive& drive() const { return drive_; }

  // Sleep-record plumbing the emulated sleep_on/wake_up binds to (§4.7.6).
  void SleepOnCompletion() { completion_.Sleep(); }
  void WakeCompletion() { completion_.Wakeup(); }

 private:
  friend class RefCounted<LinuxIdeDev>;
  ~LinuxIdeDev();

  FdevEnv env_;
  ide_drive drive_;
  std::string name_;
  SleepRecord completion_;
  bool waiter_present_ = false;
};

// Probes every simulated disk on the machine, registering "hda", "hdb", ...
Error InitLinuxIde(const FdevEnv& env, Machine* machine, DeviceRegistry* registry);

}  // namespace oskit::linuxdev

#endif  // OSKIT_SRC_DEV_LINUX_LINUX_IDE_H_
