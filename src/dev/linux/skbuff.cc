#include "src/dev/linux/skbuff.h"

#include <new>

#include "src/base/panic.h"

namespace oskit::linuxdev {

sk_buff* dev_alloc_skb(const LinuxKernelEnv& env, size_t size) {
  size_t total = sizeof(sk_buff) + size;
  void* raw = env.kmalloc(env.ctx, total);
  if (raw == nullptr) {
    return nullptr;
  }
  auto* skb = new (raw) sk_buff();
  skb->head = static_cast<uint8_t*>(raw) + sizeof(sk_buff);
  skb->data = skb->head;
  skb->tail = skb->head;
  skb->end = skb->head + size;
  skb->truesize = static_cast<uint32_t>(total);
  return skb;
}

void kfree_skb(const LinuxKernelEnv& env, sk_buff* skb) {
  if (skb == nullptr) {
    return;
  }
  if (skb->fake) {
    // Fake skbuffs were manufactured by the glue around foreign data; only
    // the header itself came from kmalloc.
    skb->~sk_buff();
    env.kfree(env.ctx, skb, sizeof(sk_buff));
    return;
  }
  size_t total = skb->truesize;
  skb->~sk_buff();
  env.kfree(env.ctx, skb, total);
}

void skb_reserve(sk_buff* skb, size_t len) {
  OSKIT_ASSERT_MSG(skb->tail == skb->data, "skb_reserve on non-empty skb");
  OSKIT_ASSERT_MSG(skb->data + len <= skb->end, "skb_reserve overflow");
  skb->data += len;
  skb->tail += len;
}

uint8_t* skb_put(sk_buff* skb, size_t len) {
  uint8_t* old_tail = skb->tail;
  OSKIT_ASSERT_MSG(skb->tail + len <= skb->end, "skb_put overflow");
  skb->tail += len;
  skb->len += static_cast<uint32_t>(len);
  return old_tail;
}

uint8_t* skb_push(sk_buff* skb, size_t len) {
  OSKIT_ASSERT_MSG(skb->data - len >= skb->head, "skb_push underflow");
  skb->data -= len;
  skb->len += static_cast<uint32_t>(len);
  return skb->data;
}

uint8_t* skb_pull(sk_buff* skb, size_t len) {
  OSKIT_ASSERT_MSG(len <= skb->len, "skb_pull past end");
  skb->data += len;
  skb->len -= static_cast<uint32_t>(len);
  return skb->data;
}

}  // namespace oskit::linuxdev
