// The Linux-idiom packet buffer: sk_buff.
//
// This file plays the role of the code the OSKit imported from Linux 2.0.29
// "largely unmodified" (§4.7): it is deliberately written in that kernel's
// idiom — one contiguous allocation, head/data/tail/end cursors, skb_put /
// skb_reserve / skb_push manipulation — because the Table 1 experiment is
// precisely about the friction between this contiguous model and BSD's
// chained mbufs.  The one concession to its new home is the paper's own
// trick: "The COM interface is simply a one-word field in the skbuff
// structure in which the glue code places a pointer to a function table"
// (§4.7.3) — here the oskit_bufio word.

#ifndef OSKIT_SRC_DEV_LINUX_SKBUFF_H_
#define OSKIT_SRC_DEV_LINUX_SKBUFF_H_

#include <cstddef>
#include <cstdint>

namespace oskit::linuxdev {

// The slice of the Linux kernel environment that skbuff code needs; the
// glue binds these to the fdev environment (kmalloc -> fdev mem_alloc).
struct LinuxKernelEnv {
  void* (*kmalloc)(void* ctx, size_t size) = nullptr;
  void (*kfree)(void* ctx, void* ptr, size_t size) = nullptr;
  void* ctx = nullptr;
};

struct sk_buff {
  sk_buff* next = nullptr;
  uint8_t* head = nullptr;  // start of the allocation
  uint8_t* data = nullptr;  // start of valid data
  uint8_t* tail = nullptr;  // end of valid data
  uint8_t* end = nullptr;   // end of the allocation
  uint32_t len = 0;
  uint32_t truesize = 0;    // bytes obtained from kmalloc

  // OSKit glue word (§4.7.3).
  void* oskit_bufio = nullptr;

  // Glue-manufactured "fake" skbuff pointing at foreign mapped data: the
  // zero-copy transmit path.  kfree_skb must not free foreign data.
  bool fake = false;
};

// dev_alloc_skb: one contiguous buffer of `size` bytes (callers reserve
// headroom themselves, Linux style).
sk_buff* dev_alloc_skb(const LinuxKernelEnv& env, size_t size);

void kfree_skb(const LinuxKernelEnv& env, sk_buff* skb);

// Classic cursor manipulation; all bounds-checked hard (the imported code
// trusted itself; we keep the checks the original had as BUG()s).
void skb_reserve(sk_buff* skb, size_t len);
uint8_t* skb_put(sk_buff* skb, size_t len);
uint8_t* skb_push(sk_buff* skb, size_t len);
uint8_t* skb_pull(sk_buff* skb, size_t len);

}  // namespace oskit::linuxdev

#endif  // OSKIT_SRC_DEV_LINUX_SKBUFF_H_
