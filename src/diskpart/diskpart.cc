#include "src/diskpart/diskpart.h"

#include <cstring>

#include "src/base/byteorder.h"
#include "src/base/panic.h"

namespace oskit {
namespace {

constexpr size_t kMbrEntryOffset = 446;
constexpr size_t kMbrEntrySize = 16;
constexpr uint8_t kMbrSig0 = 0x55;
constexpr uint8_t kMbrSig1 = 0xaa;

constexpr uint32_t kDisklabelMagic = 0x82564557;  // historical BSD value
constexpr size_t kDisklabelMaxParts = 8;

Error ReadSector(BlkIo* disk, uint64_t sector, uint8_t* buf) {
  size_t actual = 0;
  Error err = disk->Read(buf, sector * kDiskSectorSize, kDiskSectorSize, &actual);
  if (!Ok(err)) {
    return err;
  }
  if (actual != kDiskSectorSize) {
    return Error::kOutOfRange;
  }
  return Error::kOk;
}

struct RawEntry {
  uint8_t status;
  uint8_t type;
  uint32_t lba_start;
  uint32_t sectors;
};

RawEntry ParseEntry(const uint8_t* p) {
  RawEntry e;
  e.status = p[0];
  e.type = p[4];
  e.lba_start = LoadLe32(p + 8);
  e.sectors = LoadLe32(p + 12);
  return e;
}

// Reads the disklabel inside a BSD slice and appends its sub-partitions.
Error ReadDisklabel(BlkIo* disk, const Partition& slice, std::vector<Partition>* out) {
  uint8_t sector[kDiskSectorSize];
  Error err = ReadSector(disk, slice.start_sector + 1, sector);
  if (!Ok(err)) {
    return err;
  }
  if (LoadLe32(sector) != kDisklabelMagic) {
    return Error::kCorrupt;
  }
  uint16_t nparts = LoadLe16(sector + 4);
  if (nparts > kDisklabelMaxParts) {
    return Error::kCorrupt;
  }
  // Entries at offset 16: {size(4), offset(4), type(1), pad(7)} each.
  for (uint16_t i = 0; i < nparts; ++i) {
    const uint8_t* p = sector + 16 + i * 16;
    uint32_t size = LoadLe32(p);
    uint32_t offset = LoadLe32(p + 4);
    uint8_t type = p[8];
    if (size == 0) {
      continue;
    }
    if (static_cast<uint64_t>(offset) + size > slice.sector_count) {
      return Error::kCorrupt;
    }
    Partition sub;
    sub.start_sector = slice.start_sector + offset;
    sub.sector_count = size;
    sub.type = type;
    sub.index = i;
    sub.from_disklabel = true;
    out->push_back(sub);
  }
  return Error::kOk;
}

}  // namespace

Error ReadPartitions(BlkIo* disk, std::vector<Partition>* out) {
  out->clear();
  uint8_t sector[kDiskSectorSize];
  Error err = ReadSector(disk, 0, sector);
  if (!Ok(err)) {
    return err;
  }
  if (sector[510] != kMbrSig0 || sector[511] != kMbrSig1) {
    return Error::kCorrupt;
  }

  off_t64 disk_size = 0;
  err = disk->GetSize(&disk_size);
  if (!Ok(err)) {
    return err;
  }
  uint64_t disk_sectors = disk_size / kDiskSectorSize;

  std::vector<Partition> extended_chain;
  int index = 1;
  for (int i = 0; i < 4; ++i) {
    RawEntry e = ParseEntry(sector + kMbrEntryOffset + i * kMbrEntrySize);
    if (e.type == kPartTypeEmpty || e.sectors == 0) {
      ++index;
      continue;
    }
    if (static_cast<uint64_t>(e.lba_start) + e.sectors > disk_sectors) {
      return Error::kCorrupt;
    }
    Partition part;
    part.start_sector = e.lba_start;
    part.sector_count = e.sectors;
    part.type = e.type;
    part.bootable = (e.status & 0x80) != 0;
    part.index = index++;
    if (e.type == kPartTypeExtended) {
      extended_chain.push_back(part);
    } else {
      out->push_back(part);
    }
  }

  // Walk extended-partition EBR chains; logical partitions number from 5.
  int logical = 5;
  for (const Partition& ext : extended_chain) {
    uint64_t ebr_sector = ext.start_sector;
    for (int hops = 0; hops < 64; ++hops) {  // cycle guard
      err = ReadSector(disk, ebr_sector, sector);
      if (!Ok(err)) {
        return err;
      }
      if (sector[510] != kMbrSig0 || sector[511] != kMbrSig1) {
        return Error::kCorrupt;
      }
      RawEntry data = ParseEntry(sector + kMbrEntryOffset);
      RawEntry next = ParseEntry(sector + kMbrEntryOffset + kMbrEntrySize);
      if (data.type != kPartTypeEmpty && data.sectors != 0) {
        Partition part;
        part.start_sector = ebr_sector + data.lba_start;
        part.sector_count = data.sectors;
        part.type = data.type;
        part.bootable = (data.status & 0x80) != 0;
        part.index = logical++;
        if (part.start_sector + part.sector_count > disk_sectors) {
          return Error::kCorrupt;
        }
        out->push_back(part);
      }
      if (next.type != kPartTypeExtended || next.sectors == 0) {
        break;
      }
      ebr_sector = ext.start_sector + next.lba_start;
    }
  }

  // Descend into BSD slices.
  std::vector<Partition> slices = *out;
  for (const Partition& p : slices) {
    if (p.type == kPartTypeBsd) {
      // A corrupt disklabel is not fatal for the rest of the disk.
      (void)ReadDisklabel(disk, p, out);
    }
  }
  return Error::kOk;
}

namespace {

// BlkIo view of a sector extent of an underlying disk.  Exposes the
// underlying disk's BlkIoBarrier when it has one, so flush semantics
// propagate through partition-backed stacks (striping over partition views
// must be able to reach every DiskHw's write cache).
class PartitionView final : public BlkIo,
                            public BlkIoBarrier,
                            public RefCounted<PartitionView> {
 public:
  PartitionView(ComPtr<BlkIo> disk, uint64_t start_byte, uint64_t byte_count)
      : disk_(std::move(disk)), start_(start_byte), count_(byte_count) {
    barrier_ = ComPtr<BlkIoBarrier>::FromQuery(disk_.get());
  }

  Error Query(const Guid& iid, void** out) override {
    if (iid == IUnknown::kIid || iid == BlkIo::kIid) {
      AddRef();
      *out = static_cast<BlkIo*>(this);
      return Error::kOk;
    }
    if (iid == BlkIoBarrier::kIid && barrier_) {
      AddRef();
      *out = static_cast<BlkIoBarrier*>(this);
      return Error::kOk;
    }
    *out = nullptr;
    return Error::kNoInterface;
  }
  OSKIT_REFCOUNTED_BOILERPLATE()

  uint32_t GetBlockSize() override { return disk_->GetBlockSize(); }

  Error Read(void* buf, off_t64 offset, size_t amount, size_t* out_actual) override {
    *out_actual = 0;
    if (offset > count_) {
      return Error::kOutOfRange;
    }
    size_t n = amount;
    // Subtraction form: `offset + n` can wrap for a hostile `amount`, which
    // would pass a huge range straight through to the underlying disk.
    if (n > count_ - offset) {
      if (offset + n < offset) {
        return Error::kInval;
      }
      n = count_ - offset;
    }
    return disk_->Read(buf, start_ + offset, n, out_actual);
  }

  Error Write(const void* buf, off_t64 offset, size_t amount,
              size_t* out_actual) override {
    *out_actual = 0;
    if (offset > count_) {
      return Error::kOutOfRange;
    }
    size_t n = amount;
    if (n > count_ - offset) {
      if (offset + n < offset) {
        return Error::kInval;  // wrapped range (see Read)
      }
      n = count_ - offset;
    }
    return disk_->Write(buf, start_ + offset, n, out_actual);
  }

  Error GetSize(off_t64* out_size) override {
    *out_size = count_;
    return Error::kOk;
  }

  Error SetSize(off_t64) override { return Error::kNotImpl; }

  Error Flush() override { return barrier_ ? barrier_->Flush() : Error::kOk; }

 private:
  friend class RefCounted<PartitionView>;
  ~PartitionView() = default;

  ComPtr<BlkIo> disk_;
  ComPtr<BlkIoBarrier> barrier_;
  uint64_t start_;
  uint64_t count_;
};

}  // namespace

ComPtr<BlkIo> MakePartitionView(BlkIo* disk, const Partition& partition) {
  return ComPtr<BlkIo>(new PartitionView(ComPtr<BlkIo>::Retain(disk),
                                         partition.start_sector * kDiskSectorSize,
                                         partition.sector_count * kDiskSectorSize));
}

Error WriteMbr(BlkIo* disk, const std::vector<Partition>& primaries) {
  if (primaries.size() > 4) {
    return Error::kInval;
  }
  uint8_t sector[kDiskSectorSize];
  std::memset(sector, 0, sizeof(sector));
  for (size_t i = 0; i < primaries.size(); ++i) {
    const Partition& p = primaries[i];
    uint8_t* e = sector + kMbrEntryOffset + i * kMbrEntrySize;
    e[0] = p.bootable ? 0x80 : 0x00;
    e[4] = p.type;
    StoreLe32(e + 8, static_cast<uint32_t>(p.start_sector));
    StoreLe32(e + 12, static_cast<uint32_t>(p.sector_count));
  }
  sector[510] = kMbrSig0;
  sector[511] = kMbrSig1;
  size_t actual = 0;
  return disk->Write(sector, 0, kDiskSectorSize, &actual);
}

Error WriteDisklabel(BlkIo* slice, const std::vector<Partition>& subs) {
  if (subs.size() > kDisklabelMaxParts) {
    return Error::kInval;
  }
  uint8_t sector[kDiskSectorSize];
  std::memset(sector, 0, sizeof(sector));
  StoreLe32(sector, kDisklabelMagic);
  StoreLe16(sector + 4, static_cast<uint16_t>(subs.size()));
  for (size_t i = 0; i < subs.size(); ++i) {
    uint8_t* p = sector + 16 + i * 16;
    StoreLe32(p, static_cast<uint32_t>(subs[i].sector_count));
    StoreLe32(p + 4, static_cast<uint32_t>(subs[i].start_sector));
    p[8] = subs[i].type;
  }
  size_t actual = 0;
  return slice->Write(sector, kDiskSectorSize, kDiskSectorSize, &actual);
}

}  // namespace oskit
