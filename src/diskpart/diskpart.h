// Disk partition interpretation (the paper's `diskpart` library).
//
// Reads PC MBR partition tables (including extended-partition chains) and
// BSD disklabels found inside BSD-type slices, and manufactures per-partition
// BlkIo views so any filesystem component can be bound to any partition at
// run time (§4.2.2 dynamic binding).  A writer half exists so tests and
// examples can fabricate partitioned disks.

#ifndef OSKIT_SRC_DISKPART_DISKPART_H_
#define OSKIT_SRC_DISKPART_DISKPART_H_

#include <cstdint>
#include <vector>

#include "src/com/blkio.h"
#include "src/com/iunknown.h"

namespace oskit {

inline constexpr uint32_t kDiskSectorSize = 512;

// MBR partition type bytes we care about.
inline constexpr uint8_t kPartTypeEmpty = 0x00;
inline constexpr uint8_t kPartTypeFat16 = 0x06;
inline constexpr uint8_t kPartTypeExtended = 0x05;
inline constexpr uint8_t kPartTypeLinux = 0x83;
inline constexpr uint8_t kPartTypeBsd = 0xa5;
inline constexpr uint8_t kPartTypeOskitFs = 0x7f;  // our FFS-like filesystem

struct Partition {
  uint64_t start_sector = 0;
  uint64_t sector_count = 0;
  uint8_t type = 0;
  bool bootable = false;
  // Identification: "sd0s1"-style MBR slot (1..4, then 5+ for logicals) or
  // BSD disklabel letter index ('a' + bsd_index) when from_disklabel.
  int index = 0;
  bool from_disklabel = false;
};

// Reads the MBR at sector 0, follows extended-partition chains, and descends
// into BSD slices' disklabels.  Returns kCorrupt when sector 0 lacks the
// 0x55AA signature.
Error ReadPartitions(BlkIo* disk, std::vector<Partition>* out);

// Returns a BlkIo view exposing exactly the partition's sectors; reads and
// writes are offset and bounds-checked against the partition extent.
ComPtr<BlkIo> MakePartitionView(BlkIo* disk, const Partition& partition);

// ---- Writer half (test/example tooling) ----

// Writes an MBR with up to four primary entries.
Error WriteMbr(BlkIo* disk, const std::vector<Partition>& primaries);

// Writes a BSD disklabel into `slice` (sector 1 of the slice), declaring the
// given sub-partitions (offsets relative to the slice).
Error WriteDisklabel(BlkIo* slice, const std::vector<Partition>& subs);

}  // namespace oskit

#endif  // OSKIT_SRC_DISKPART_DISKPART_H_
