#include "src/exec/sxf.h"

#include <cstring>

#include "src/base/byteorder.h"
#include "src/base/checksum.h"

namespace oskit::exec {

Error Parse(const uint8_t* image, size_t size, ImageInfo* out) {
  if (size < kSxfHeaderSize) {
    return Error::kCorrupt;
  }
  if (LoadLe32(image) != kSxfMagic || LoadLe32(image + 4) != kSxfVersion) {
    return Error::kCorrupt;
  }
  uint32_t entry = LoadLe32(image + 8);
  uint32_t nsegs = LoadLe32(image + 12);
  uint32_t stored_sum = LoadLe32(image + 16);
  if (nsegs > 64) {
    return Error::kCorrupt;
  }
  size_t table_end = kSxfHeaderSize + static_cast<size_t>(nsegs) * kSxfSegmentSize;
  if (table_end > size) {
    return Error::kCorrupt;
  }
  // Checksum covers everything after the checksum field.
  uint16_t computed = InetChecksumOf(image + kSxfHeaderSize, size - kSxfHeaderSize);
  if (computed != stored_sum) {
    return Error::kCorrupt;
  }

  out->entry = entry;
  out->segments.clear();
  out->mem_size = 0;
  for (uint32_t i = 0; i < nsegs; ++i) {
    const uint8_t* p = image + kSxfHeaderSize + i * kSxfSegmentSize;
    Segment seg;
    uint32_t type = LoadLe32(p);
    if (type < 1 || type > 3) {
      return Error::kCorrupt;
    }
    seg.type = static_cast<SegmentType>(type);
    seg.file_offset = LoadLe32(p + 4);
    seg.file_size = LoadLe32(p + 8);
    seg.mem_offset = LoadLe32(p + 12);
    seg.mem_size = LoadLe32(p + 16);
    if (seg.file_size > seg.mem_size) {
      return Error::kCorrupt;
    }
    if (seg.type == SegmentType::kBss && seg.file_size != 0) {
      return Error::kCorrupt;
    }
    if (static_cast<uint64_t>(seg.file_offset) + seg.file_size > size) {
      return Error::kCorrupt;
    }
    // Memory ranges must not overlap previously declared ones.
    uint64_t lo = seg.mem_offset;
    uint64_t hi = lo + seg.mem_size;
    for (const Segment& other : out->segments) {
      uint64_t other_lo = other.mem_offset;
      uint64_t other_hi = other_lo + other.mem_size;
      if (lo < other_hi && other_lo < hi) {
        return Error::kCorrupt;
      }
    }
    if (hi > out->mem_size) {
      out->mem_size = static_cast<uint32_t>(hi);
    }
    out->segments.push_back(seg);
  }
  if (out->mem_size != 0 && entry >= out->mem_size) {
    return Error::kCorrupt;
  }
  return Error::kOk;
}

Error Load(const uint8_t* image, size_t size, uint8_t* memory, size_t memory_size,
           ImageInfo* out_info) {
  Error err = Parse(image, size, out_info);
  if (!Ok(err)) {
    return err;
  }
  if (out_info->mem_size > memory_size) {
    return Error::kNoMem;
  }
  for (const Segment& seg : out_info->segments) {
    uint8_t* dst = memory + seg.mem_offset;
    if (seg.file_size > 0) {
      std::memcpy(dst, image + seg.file_offset, seg.file_size);
    }
    if (seg.mem_size > seg.file_size) {
      std::memset(dst + seg.file_size, 0, seg.mem_size - seg.file_size);
    }
  }
  return Error::kOk;
}

std::vector<uint8_t> Build(uint32_t entry, const std::vector<BuildSegment>& segments) {
  size_t table_end = kSxfHeaderSize + segments.size() * kSxfSegmentSize;
  size_t total = table_end;
  for (const BuildSegment& seg : segments) {
    total += seg.contents.size();
  }
  std::vector<uint8_t> image(total, 0);
  StoreLe32(image.data(), kSxfMagic);
  StoreLe32(image.data() + 4, kSxfVersion);
  StoreLe32(image.data() + 8, entry);
  StoreLe32(image.data() + 12, static_cast<uint32_t>(segments.size()));

  uint32_t file_cursor = static_cast<uint32_t>(table_end);
  for (size_t i = 0; i < segments.size(); ++i) {
    const BuildSegment& seg = segments[i];
    uint8_t* p = image.data() + kSxfHeaderSize + i * kSxfSegmentSize;
    uint32_t mem_size = seg.mem_size != 0
                            ? seg.mem_size
                            : static_cast<uint32_t>(seg.contents.size());
    StoreLe32(p, static_cast<uint32_t>(seg.type));
    StoreLe32(p + 4, seg.contents.empty() ? 0 : file_cursor);
    StoreLe32(p + 8, static_cast<uint32_t>(seg.contents.size()));
    StoreLe32(p + 12, seg.mem_offset);
    StoreLe32(p + 16, mem_size);
    if (!seg.contents.empty()) {
      std::memcpy(image.data() + file_cursor, seg.contents.data(),
                  seg.contents.size());
      file_cursor += static_cast<uint32_t>(seg.contents.size());
    }
  }
  uint16_t sum =
      InetChecksumOf(image.data() + kSxfHeaderSize, image.size() - kSxfHeaderSize);
  StoreLe32(image.data() + 16, sum);
  return image;
}

}  // namespace oskit::exec
