// Program loading (the paper's `exec` library).
//
// The OSKit's exec library loaded executables into a client-provided memory
// abstraction; Fluke used it for its first user-mode program, pulled from
// the boot-module filesystem.  Our executable format is SXF ("simple
// executable format"): a header plus typed segments, with a checksum so the
// loader can reject corrupt images.  The builder half lets tests, examples,
// and the boot-image tooling produce images.
//
// Layout (little endian):
//   0:  magic "SXF1"
//   4:  u32 version (1)
//   8:  u32 entry (offset into the loaded image)
//  12:  u32 segment count
//  16:  u32 image checksum (RFC1071 over everything after this field)
//  20:  segments, 24 bytes each:
//        u32 type (1=code, 2=data, 3=bss)
//        u32 file_offset, u32 file_size
//        u32 mem_offset, u32 mem_size   (mem_size >= file_size; rest zeroed)
//        u32 reserved
//  followed by segment file data.

#ifndef OSKIT_SRC_EXEC_SXF_H_
#define OSKIT_SRC_EXEC_SXF_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/base/error.h"

namespace oskit::exec {

inline constexpr uint32_t kSxfMagic = 0x31465853;  // "SXF1"
inline constexpr uint32_t kSxfVersion = 1;
inline constexpr size_t kSxfHeaderSize = 20;
inline constexpr size_t kSxfSegmentSize = 24;

enum class SegmentType : uint32_t {
  kCode = 1,
  kData = 2,
  kBss = 3,
};

struct Segment {
  SegmentType type = SegmentType::kData;
  uint32_t file_offset = 0;
  uint32_t file_size = 0;
  uint32_t mem_offset = 0;
  uint32_t mem_size = 0;
};

struct ImageInfo {
  uint32_t entry = 0;
  uint32_t mem_size = 0;  // total memory footprint
  std::vector<Segment> segments;
};

// Parses and validates an image's header (magic, version, checksum, segment
// sanity: in-bounds file ranges, non-overlapping memory ranges).
Error Parse(const uint8_t* image, size_t size, ImageInfo* out);

// Loads the image into `memory` (of at least info.mem_size bytes): copies
// code/data, zeroes bss and data tails.
Error Load(const uint8_t* image, size_t size, uint8_t* memory, size_t memory_size,
           ImageInfo* out_info);

// ---- Builder ----

struct BuildSegment {
  SegmentType type = SegmentType::kData;
  uint32_t mem_offset = 0;
  uint32_t mem_size = 0;                // for bss or data with zero tail
  std::vector<uint8_t> contents;        // file data (empty for pure bss)
};

// Produces a valid SXF image.  mem_size of 0 means "same as contents size".
std::vector<uint8_t> Build(uint32_t entry, const std::vector<BuildSegment>& segments);

}  // namespace oskit::exec

#endif  // OSKIT_SRC_EXEC_SXF_H_
