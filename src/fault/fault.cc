#include "src/fault/fault.h"

namespace oskit::fault {

FaultEnv::FaultEnv(uint64_t seed) : seed_(seed), rng_(seed) {}

FaultEnv::~FaultEnv() { UnregisterAll(); }

void FaultEnv::Reseed(uint64_t seed) {
  seed_ = seed;
  rng_ = Rng(seed);
  total_fires_ = 0;
  for (auto& [name, site] : sites_) {
    site.calls = 0;
    site.fires.Reset();
  }
}

void FaultEnv::Arm(const std::string& site_name, const FaultSpec& spec) {
  Site& site = sites_[site_name];
  site.spec = spec;
  if (!site.armed) {
    site.armed = true;
    ++armed_count_;
  }
  if (trace_ != nullptr && !site.registered) {
    RegisterSite(site_name, &site);
  }
}

void FaultEnv::Disarm(const std::string& site_name) {
  auto it = sites_.find(site_name);
  if (it != sites_.end() && it->second.armed) {
    it->second.armed = false;
    --armed_count_;
  }
}

void FaultEnv::DisarmAll() {
  for (auto& [name, site] : sites_) {
    site.armed = false;
  }
  armed_count_ = 0;
}

bool FaultEnv::armed(const std::string& site_name) const {
  auto it = sites_.find(site_name);
  return it != sites_.end() && it->second.armed;
}

bool FaultEnv::ShouldFail(const char* site_name) {
  if (armed_count_ == 0) {
    return false;  // the production fast path
  }
  auto it = sites_.find(site_name);
  if (it == sites_.end() || !it->second.armed) {
    return false;
  }
  Site& site = it->second;
  ++site.calls;
  if (site.fires >= site.spec.max_fires) {
    return false;
  }
  bool fire = site.spec.nth_call != 0 && site.calls == site.spec.nth_call;
  if (!fire && site.spec.probability_percent != 0) {
    fire = rng_.Percent(site.spec.probability_percent);
  }
  if (!fire) {
    return false;
  }
  ++site.fires;
  ++total_fires_;
  if (trace_ != nullptr) {
    trace_->recorder.Record(trace::EventType::kMark, it->first.c_str(),
                            site.calls, site.fires);
  }
  return true;
}

uint64_t FaultEnv::SiteArg(const char* site_name) const {
  auto it = sites_.find(site_name);
  if (it == sites_.end() || !it->second.armed) {
    return 0;
  }
  return it->second.spec.arg;
}

uint64_t FaultEnv::calls(const std::string& site_name) const {
  auto it = sites_.find(site_name);
  return it == sites_.end() ? 0 : it->second.calls;
}

uint64_t FaultEnv::fires(const std::string& site_name) const {
  auto it = sites_.find(site_name);
  return it == sites_.end() ? 0 : it->second.fires.value();
}

void FaultEnv::BindTrace(trace::TraceEnv* env) {
  UnregisterAll();
  trace_ = trace::ResolveTraceEnv(env);
  for (auto& [name, site] : sites_) {
    RegisterSite(name, &site);
  }
}

void FaultEnv::ForEachSite(
    const std::function<void(const char* site, const FaultSpec& spec,
                             bool armed, uint64_t calls, uint64_t fires)>& fn)
    const {
  for (const auto& [name, site] : sites_) {
    fn(name.c_str(), site.spec, site.armed, site.calls, site.fires.value());
  }
}

void FaultEnv::RegisterSite(const std::string& name, Site* site) {
  trace_->registry.Register("fault." + name, &site->fires);
  site->registered = true;
}

void FaultEnv::UnregisterAll() {
  if (trace_ == nullptr) {
    return;
  }
  for (auto& [name, site] : sites_) {
    if (site.registered) {
      trace_->registry.Unregister("fault." + name, &site.fires);
      site.registered = false;
    }
  }
}

FaultEnv* DefaultFaultEnv() {
  // Never destroyed: components may probe it during static teardown, the
  // same lifetime contract as the default trace environment.
  static FaultEnv* env = new FaultEnv(1);
  return env;
}

}  // namespace oskit::fault
