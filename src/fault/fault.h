// Deterministic fault injection for the simulated platform and the glue
// layers above it.
//
// The paper argues that encapsulated legacy components keep working when
// dropped into a foreign execution environment; this component exists to
// test the unhappy half of that claim.  A FaultEnv is a seedable registry
// of named fault *sites* ("disk.read.error", "nic.rx.corrupt",
// "lmm.alloc", ...).  Instrumented components probe their site on the hot
// path with ShouldFail(); a campaign or test arms sites with a trigger
// spec — fire with probability p%, fire on exactly the nth call, or both —
// and the component then simulates the corresponding hardware or resource
// failure (error status, dropped frame, flipped byte, stuck completion,
// nullptr return).
//
// Like the trace environment it mirrors (src/trace/trace.h), the fault
// environment is client-overridable: components accept a FaultEnv* and
// fall back to a process-global default that has nothing armed, so
// production configurations pay one pointer test per probe.  All
// randomness comes from the environment's own seeded Rng — a campaign
// seed reproduces the exact fault schedule, byte corruption choices
// included.  Every fire bumps a "fault.<site>" counter in the bound trace
// registry and drops a kMark event in the flight recorder, so recovery
// counters can be correlated against injected causes in one snapshot.

#ifndef OSKIT_SRC_FAULT_FAULT_H_
#define OSKIT_SRC_FAULT_FAULT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "src/base/random.h"
#include "src/trace/trace.h"

namespace oskit::fault {

// How an armed site decides to fire.  Either trigger may be used alone or
// both together (nth-call fires deterministically; the probability applies
// to every other call).
struct FaultSpec {
  uint32_t probability_percent = 0;  // 0 = never by chance
  uint64_t nth_call = 0;             // 1-based; 0 = no call-count trigger
  uint64_t max_fires = ~uint64_t{0}; // stop firing after this many
  uint64_t arg = 0;  // site-specific parameter (delay multiplier, skew %)
};

class FaultEnv {
 public:
  explicit FaultEnv(uint64_t seed = 1);
  ~FaultEnv();
  FaultEnv(const FaultEnv&) = delete;
  FaultEnv& operator=(const FaultEnv&) = delete;

  // Restarts the deterministic schedule: reseeds the Rng and zeroes every
  // site's call/fire history (arming is preserved).
  void Reseed(uint64_t seed);
  uint64_t seed() const { return seed_; }

  void Arm(const std::string& site, const FaultSpec& spec);
  void Disarm(const std::string& site);
  void DisarmAll();
  bool armed(const std::string& site) const;

  // The hot-path probe: counts the call and reports whether the site's
  // trigger fired.  Unarmed (or never-armed) sites cost one integer test.
  bool ShouldFail(const char* site);

  // The armed spec's site parameter (0 when not armed).
  uint64_t SiteArg(const char* site) const;

  uint64_t calls(const std::string& site) const;
  uint64_t fires(const std::string& site) const;
  uint64_t total_fires() const { return total_fires_; }

  // Shared deterministic randomness for fault *content* decisions (which
  // byte to corrupt, how long to stall) so they replay with the schedule.
  Rng& rng() { return rng_; }

  // Reports fires into `env`'s registry (as "fault.<site>") and flight
  // recorder (kMark events tagged with the site name).  Null binds the
  // process-global default trace environment.
  void BindTrace(trace::TraceEnv* env);

  // Deterministic (name-sorted) iteration over every site ever armed.
  void ForEachSite(
      const std::function<void(const char* site, const FaultSpec& spec,
                               bool armed, uint64_t calls, uint64_t fires)>& fn)
      const;

 private:
  struct Site {
    FaultSpec spec;
    bool armed = false;
    uint64_t calls = 0;
    trace::Counter fires;  // registered as "fault.<site>"
    bool registered = false;
  };

  void RegisterSite(const std::string& name, Site* site);
  void UnregisterAll();

  uint64_t seed_;
  Rng rng_;
  uint64_t armed_count_ = 0;
  uint64_t total_fires_ = 0;
  // node-based: Site addresses and key c_str()s stay stable for the
  // registry and the flight recorder's static-tag contract.
  std::map<std::string, Site> sites_;
  trace::TraceEnv* trace_ = nullptr;
};

// The process-global default environment: never destroyed, nothing armed
// unless a test arms it.
FaultEnv* DefaultFaultEnv();

inline FaultEnv* ResolveFaultEnv(FaultEnv* env) {
  return env != nullptr ? env : DefaultFaultEnv();
}

}  // namespace oskit::fault

#endif  // OSKIT_SRC_FAULT_FAULT_H_
