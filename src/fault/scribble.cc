#include "src/fault/scribble.h"

namespace oskit::fault {

const ScribbleInjector::Target* ScribbleInjector::PickTarget(
    const std::vector<Target>& targets) {
  if (targets.empty()) {
    return nullptr;
  }
  return &targets[env_->rng().Below(targets.size())];
}

// The store stays inside the target (max_len bounds it): a scribble that
// ran off the end could fail with kFault (a bad address) instead of a
// protection violation, and the campaign's caught == injected equality
// only counts the latter.
void ScribbleInjector::Attempt(PhysAddr addr, size_t max_len,
                               uint64_t* site_count, bool dma) {
  uint8_t garbage[8];
  size_t len = 1 + env_->rng().Below(sizeof(garbage));
  if (len > max_len) {
    len = max_len;
  }
  for (size_t i = 0; i < len; ++i) {
    garbage[i] = static_cast<uint8_t>(env_->rng().Next());
  }
  ++stats_.attempted;
  ++*site_count;
  Error err = dma ? phys_->Dma(addr, garbage, len)
                  : domain_->Store(addr, garbage, len);
  if (err == Error::kOk) {
    ++stats_.landed;
  } else {
    ++stats_.denied;
  }
}

void ScribbleInjector::Tick() {
  if (env_->ShouldFail(kScribbleRandomSite)) {
    if (const Target* t = PickTarget(kernel_targets_)) {
      size_t offset = env_->rng().Below(t->len);
      Attempt(t->addr + offset, t->len - offset, &stats_.random,
              /*dma=*/false);
    }
  }
  if (env_->ShouldFail(kScribbleTargetedSite)) {
    // The "I know where it lives" attack: the structure's first word.
    if (const Target* t = PickTarget(kernel_targets_)) {
      Attempt(t->addr, t->len, &stats_.targeted, /*dma=*/false);
    }
  }
  if (env_->ShouldFail(kScribblePteSite)) {
    if (const Target* t = PickTarget(pte_targets_)) {
      // Aim at an aligned entry inside the table, like a real PTE flip.
      size_t slot = env_->rng().Below(t->len / 4) * 4;
      Attempt(t->addr + slot, 4, &stats_.pte, /*dma=*/false);
    }
  }
  if (env_->ShouldFail(kScribbleDmaSite)) {
    if (const Target* t = PickTarget(kernel_targets_)) {
      size_t offset = env_->rng().Below(t->len);
      Attempt(t->addr + offset, t->len - offset, &stats_.dma, /*dma=*/true);
    }
  }
}

}  // namespace oskit::fault
