// Scribble injection: the hostile-component workload for the memory
// monitor (src/machine/memmon.h).
//
// A ScribbleInjector plays a buggy or hostile wrapped component that has
// decided to write where it should not.  It is driven by the same seeded
// FaultEnv machinery as every other campaign (arm the sites, replay the
// schedule from the seed) and aims every store at protected state through
// the CHECKED entry points — the simulation's stand-in for the store
// instructions a real nested kernel deprivileges:
//
//   mon.scribble.random    a store at a uniformly random offset inside the
//                          registered kernel-state targets
//   mon.scribble.targeted  a store at the start of a specific kernel
//                          structure (the "I know where the PCB table
//                          lives" attack)
//   mon.scribble.pte       a store into a page-directory/page-table page —
//                          the PTE-flip privilege escalation
//   mon.scribble.dma       a misprogrammed DMA landing in kernel state,
//                          via PhysMem::Dma
//
// With the monitor enforcing, every attempt is a counted, recoverable
// violation (stats().denied); with the ablation every attempt lands
// (stats().landed) and the first symptom is silent corruption — exactly
// the contrast bench/monitor_campaign measures.
//
// This lives in src/fault (it is an injector, not a device) but needs the
// machine layer's types, so it builds as its own library: oskit_scribble.

#ifndef OSKIT_SRC_FAULT_SCRIBBLE_H_
#define OSKIT_SRC_FAULT_SCRIBBLE_H_

#include <cstdint>
#include <vector>

#include "src/fault/fault.h"
#include "src/machine/memmon.h"
#include "src/machine/physmem.h"

namespace oskit::fault {

inline constexpr const char* kScribbleRandomSite = "mon.scribble.random";
inline constexpr const char* kScribbleTargetedSite = "mon.scribble.targeted";
inline constexpr const char* kScribblePteSite = "mon.scribble.pte";
inline constexpr const char* kScribbleDmaSite = "mon.scribble.dma";

class ScribbleInjector {
 public:
  struct Stats {
    uint64_t attempted = 0;  // stores presented to the memory system
    uint64_t denied = 0;     // refused by the monitor (counted violations)
    uint64_t landed = 0;     // mutated memory (the ablation's count)
    uint64_t random = 0;     // per-site attempt breakdown
    uint64_t targeted = 0;
    uint64_t pte = 0;
    uint64_t dma = 0;
  };

  // `domain` is the hostile component's deprivileged view; `phys` is the
  // DMA path.  The env's rng drives offset and payload choices so a seed
  // replays the exact scribble schedule.
  ScribbleInjector(FaultEnv* env, PhysMem* phys, MemDomain* domain)
      : env_(ResolveFaultEnv(env)), phys_(phys), domain_(domain) {}

  // Kernel-state ranges the random/targeted/dma sites aim at.
  void AddKernelTarget(PhysAddr addr, size_t len) {
    kernel_targets_.push_back({addr, len});
  }
  // Page-directory/page-table pages the pte site aims at.
  void AddPteTarget(PhysAddr addr, size_t len) {
    pte_targets_.push_back({addr, len});
  }

  // Probes all four sites once, firing whichever the armed schedule says
  // fire this round.
  void Tick();

  const Stats& stats() const { return stats_; }

 private:
  struct Target {
    PhysAddr addr;
    size_t len;
  };

  const Target* PickTarget(const std::vector<Target>& targets);
  void Attempt(PhysAddr addr, size_t max_len, uint64_t* site_count, bool dma);

  FaultEnv* env_;
  PhysMem* phys_;
  MemDomain* domain_;
  std::vector<Target> kernel_targets_;
  std::vector<Target> pte_targets_;
  Stats stats_;
};

}  // namespace oskit::fault

#endif  // OSKIT_SRC_FAULT_SCRIBBLE_H_
