#include "src/fs/cache.h"

#include <cstring>

#include "src/base/panic.h"

namespace oskit::fs {

BlockCache::BlockCache(ComPtr<BlkIo> device, uint32_t block_size, size_t capacity,
                       trace::TraceEnv* trace)
    : device_(std::move(device)),
      block_size_(block_size),
      capacity_(capacity),
      trace_(trace::ResolveTraceEnv(trace)) {
  OSKIT_ASSERT(capacity_ >= 8);
  trace_binding_.Bind(&trace_->registry,
                      {{"fs.cache.hits", &counters_.hits},
                       {"fs.cache.misses", &counters_.misses},
                       {"fs.cache.writebacks", &counters_.writebacks}});
}

BlockCache::~BlockCache() {
  // Callers are expected to Sync(); losing dirty blocks here mirrors what a
  // power cut would do, which the fsck tests exploit deliberately.
}

void BlockCache::Touch(uint32_t block, Entry& entry) {
  lru_.erase(entry.lru_pos);
  lru_.push_front(block);
  entry.lru_pos = lru_.begin();
}

Error BlockCache::WriteBack(uint32_t block, Entry& entry) {
  size_t actual = 0;
  Error err = device_->Write(entry.data.data(),
                             static_cast<off_t64>(block) * block_size_, block_size_,
                             &actual);
  if (!Ok(err)) {
    return err;
  }
  if (actual != block_size_) {
    return Error::kIo;
  }
  entry.dirty = false;
  ++counters_.writebacks;
  return Error::kOk;
}

Error BlockCache::EvictOne() {
  OSKIT_ASSERT(!lru_.empty());
  uint32_t victim = lru_.back();
  auto it = entries_.find(victim);
  OSKIT_ASSERT(it != entries_.end());
  if (it->second.dirty) {
    Error err = WriteBack(victim, it->second);
    if (!Ok(err)) {
      return err;
    }
  }
  lru_.pop_back();
  entries_.erase(it);
  return Error::kOk;
}

Error BlockCache::Get(uint32_t block, uint8_t** out_data) {
  auto it = entries_.find(block);
  if (it != entries_.end()) {
    ++counters_.hits;
    Touch(block, it->second);
    *out_data = it->second.data.data();
    return Error::kOk;
  }
  ++counters_.misses;
  while (entries_.size() >= capacity_) {
    Error err = EvictOne();
    if (!Ok(err)) {
      return err;
    }
  }
  Entry entry;
  entry.data.resize(block_size_);
  size_t actual = 0;
  Error err = device_->Read(entry.data.data(),
                            static_cast<off_t64>(block) * block_size_, block_size_,
                            &actual);
  if (!Ok(err)) {
    return err;
  }
  if (actual != block_size_) {
    return Error::kOutOfRange;
  }
  lru_.push_front(block);
  entry.lru_pos = lru_.begin();
  auto [pos, inserted] = entries_.emplace(block, std::move(entry));
  OSKIT_ASSERT(inserted);
  *out_data = pos->second.data.data();
  return Error::kOk;
}

void BlockCache::MarkDirty(uint32_t block) {
  auto it = entries_.find(block);
  OSKIT_ASSERT_MSG(it != entries_.end(), "MarkDirty on uncached block");
  it->second.dirty = true;
}

Error BlockCache::ReadBlock(uint32_t block, void* out) {
  uint8_t* data = nullptr;
  Error err = Get(block, &data);
  if (!Ok(err)) {
    return err;
  }
  std::memcpy(out, data, block_size_);
  return Error::kOk;
}

Error BlockCache::WriteBlock(uint32_t block, const void* data) {
  uint8_t* slot = nullptr;
  Error err = Get(block, &slot);
  if (!Ok(err)) {
    return err;
  }
  std::memcpy(slot, data, block_size_);
  MarkDirty(block);
  return Error::kOk;
}

Error BlockCache::ZeroBlock(uint32_t block) {
  uint8_t* slot = nullptr;
  Error err = Get(block, &slot);
  if (!Ok(err)) {
    return err;
  }
  std::memset(slot, 0, block_size_);
  MarkDirty(block);
  return Error::kOk;
}

Error BlockCache::Sync() {
  for (auto& [block, entry] : entries_) {
    if (entry.dirty) {
      Error err = WriteBack(block, entry);
      if (!Ok(err)) {
        return err;
      }
    }
  }
  return Error::kOk;
}

void BlockCache::Invalidate(uint32_t block) {
  auto it = entries_.find(block);
  if (it != entries_.end()) {
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
  }
}

}  // namespace oskit::fs
