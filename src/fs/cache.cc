#include "src/fs/cache.h"

#include <algorithm>
#include <cstring>

#include "src/base/panic.h"

namespace oskit::fs {

BlockCache::BlockCache(ComPtr<BlkIo> device, uint32_t block_size, size_t capacity,
                       trace::TraceEnv* trace)
    : device_(std::move(device)),
      block_size_(block_size),
      capacity_(capacity),
      trace_(trace::ResolveTraceEnv(trace)) {
  OSKIT_ASSERT(capacity_ >= 8);
  // Discover the barrier extension the §4.4.2 way: ask, don't assume.  A
  // device without one (plain memory block device) gets free barriers.
  barrier_ = ComPtr<BlkIoBarrier>::FromQuery(device_.get());
  trace_binding_.Bind(&trace_->registry,
                      {{"fs.cache.hits", &counters_.hits},
                       {"fs.cache.misses", &counters_.misses},
                       {"fs.cache.writebacks", &counters_.writebacks},
                       {"fs.cache.barriers", &counters_.barriers}});
}

BlockCache::~BlockCache() {
  // Callers are expected to Sync(); losing dirty blocks here mirrors what a
  // power cut would do, which the fsck tests exploit deliberately.
}

void BlockCache::Touch(uint32_t block, Entry& entry) {
  lru_.erase(entry.lru_pos);
  lru_.push_front(block);
  entry.lru_pos = lru_.begin();
}

void BlockCache::Remove(uint32_t block) {
  auto it = entries_.find(block);
  if (it != entries_.end()) {
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
  }
}

Error BlockCache::WriteBack(uint32_t block, Entry& entry) {
  size_t actual = 0;
  Error err = device_->Write(entry.data.data(),
                             static_cast<off_t64>(block) * block_size_, block_size_,
                             &actual);
  if (!Ok(err)) {
    return err;
  }
  if (actual != block_size_) {
    return Error::kIo;
  }
  entry.dirty = false;
  ++counters_.writebacks;
  return Error::kOk;
}

Error BlockCache::EvictOne() {
  OSKIT_ASSERT(!lru_.empty());
  // Least-recently-used first, but a dirty block the pin callback claims
  // (an open journal transaction's metadata) must not reach its home
  // location before the commit record — skip it.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    uint32_t victim = *it;
    auto pos = entries_.find(victim);
    OSKIT_ASSERT(pos != entries_.end());
    if (pos->second.refs > 0) {
      // A GetRef pointer is outstanding; even a clean entry must keep its
      // storage alive until PutRef.
      continue;
    }
    if (pos->second.dirty && pin_ && pin_(victim)) {
      continue;
    }
    if (pos->second.dirty) {
      Error err = WriteBack(victim, pos->second);
      if (!Ok(err)) {
        return err;
      }
    }
    lru_.erase(pos->second.lru_pos);
    entries_.erase(pos);
    return Error::kOk;
  }
  // Every cached block is unevictable (pinned dirty by an open transaction,
  // or exported via GetRef): the working set outgrew the cache.  Surface it;
  // the filesystem falls back to a non-journaled writeback.
  return Error::kBusy;
}

Error BlockCache::Get(uint32_t block, uint8_t** out_data) {
  auto it = entries_.find(block);
  if (it != entries_.end()) {
    ++counters_.hits;
    Touch(block, it->second);
    *out_data = it->second.data.data();
    return Error::kOk;
  }
  ++counters_.misses;
  while (entries_.size() >= capacity_) {
    Error err = EvictOne();
    if (!Ok(err)) {
      return err;
    }
  }
  Entry entry;
  entry.data.resize(block_size_);
  size_t actual = 0;
  Error err = device_->Read(entry.data.data(),
                            static_cast<off_t64>(block) * block_size_, block_size_,
                            &actual);
  if (!Ok(err)) {
    return err;
  }
  if (actual != block_size_) {
    return Error::kOutOfRange;
  }
  lru_.push_front(block);
  entry.lru_pos = lru_.begin();
  auto [pos, inserted] = entries_.emplace(block, std::move(entry));
  OSKIT_ASSERT(inserted);
  *out_data = pos->second.data.data();
  return Error::kOk;
}

void BlockCache::MarkDirty(uint32_t block) {
  auto it = entries_.find(block);
  OSKIT_ASSERT_MSG(it != entries_.end(), "MarkDirty on uncached block");
  it->second.dirty = true;
}

bool BlockCache::IsDirty(uint32_t block) const {
  auto it = entries_.find(block);
  return it != entries_.end() && it->second.dirty;
}

Error BlockCache::ReadBlock(uint32_t block, void* out) {
  uint8_t* data = nullptr;
  Error err = Get(block, &data);
  if (!Ok(err)) {
    return err;
  }
  std::memcpy(out, data, block_size_);
  return Error::kOk;
}

Error BlockCache::WriteBlock(uint32_t block, const void* data) {
  uint8_t* slot = nullptr;
  Error err = Get(block, &slot);
  if (!Ok(err)) {
    return err;
  }
  std::memcpy(slot, data, block_size_);
  MarkDirty(block);
  return Error::kOk;
}

Error BlockCache::ZeroBlock(uint32_t block) {
  uint8_t* slot = nullptr;
  Error err = Get(block, &slot);
  if (!Ok(err)) {
    return err;
  }
  std::memset(slot, 0, block_size_);
  MarkDirty(block);
  return Error::kOk;
}

std::vector<uint32_t> BlockCache::CollectDirty() const {
  std::vector<uint32_t> dirty;
  for (const auto& [block, entry] : entries_) {
    if (entry.dirty) {
      dirty.push_back(block);
    }
  }
  std::sort(dirty.begin(), dirty.end());
  return dirty;
}

Error BlockCache::Sync() {
  // Ascending block order, always: the hash map's iteration order must never
  // leak into the device's write log, or the crash-point campaign (which
  // cuts power at every write index) stops being reproducible.
  for (uint32_t block : CollectDirty()) {
    Error err = WriteBackOne(block);
    if (!Ok(err)) {
      return err;
    }
  }
  return Error::kOk;
}

Error BlockCache::WriteBackOne(uint32_t block) {
  auto it = entries_.find(block);
  if (it == entries_.end() || !it->second.dirty) {
    return Error::kOk;
  }
  return WriteBack(block, it->second);
}

Error BlockCache::Barrier() {
  if (!barrier_) {
    return Error::kOk;
  }
  Error err = barrier_->Flush();
  if (Ok(err)) {
    ++counters_.barriers;
  }
  return err;
}

Error BlockCache::Invalidate(uint32_t block) {
  auto it = entries_.find(block);
  if (it == entries_.end()) {
    return Error::kOk;
  }
  if (it->second.dirty) {
    // Refuse to silently lose a pending write; callers that mean it use
    // DropDirty.
    return Error::kBusy;
  }
  if (it->second.refs > 0) {
    return Error::kBusy;  // a GetRef pointer still aliases the storage
  }
  Remove(block);
  return Error::kOk;
}

void BlockCache::DropDirty(uint32_t block) {
  auto it = entries_.find(block);
  if (it == entries_.end()) {
    return;
  }
  if (it->second.refs > 0) {
    // A zero-copy reader still holds the bytes.  Keep the entry (clean) so
    // the exported pointer stays valid; the block is dead to the filesystem
    // either way, and readers observing stale bytes is the documented
    // sendfile race, not a safety problem.
    it->second.dirty = false;
    return;
  }
  Remove(block);
}

Error BlockCache::GetRef(uint32_t block, const uint8_t** out_data) {
  uint8_t* data = nullptr;
  Error err = Get(block, &data);
  if (!Ok(err)) {
    return err;
  }
  auto it = entries_.find(block);
  OSKIT_ASSERT(it != entries_.end());
  ++it->second.refs;
  // The pointer is pin-stable: Entry.data's heap buffer never moves on map
  // rehash, and EvictOne/DropDirty skip entries with refs > 0.
  *out_data = data;
  return Error::kOk;
}

void BlockCache::PutRef(uint32_t block) {
  auto it = entries_.find(block);
  OSKIT_ASSERT_MSG(it != entries_.end() && it->second.refs > 0,
                   "PutRef without a matching GetRef");
  --it->second.refs;
}

void BlockCache::SetEvictionPin(std::function<bool(uint32_t)> pin) {
  pin_ = std::move(pin);
}

// ---------------------------------------------------------------------------
// CacheBlkIo
// ---------------------------------------------------------------------------

CacheBlkIo::CacheBlkIo(ComPtr<BlkIo> below, uint32_t block_size,
                       size_t capacity, trace::TraceEnv* trace)
    : cache_(std::move(below), block_size, capacity, trace) {}

ComPtr<CacheBlkIo> CacheBlkIo::Create(BlkIo* below, uint32_t block_size,
                                      size_t capacity,
                                      trace::TraceEnv* trace) {
  OSKIT_ASSERT(below != nullptr);
  off_t64 size = 0;
  OSKIT_ASSERT(Ok(below->GetSize(&size)));
  auto layer = ComPtr<CacheBlkIo>(new CacheBlkIo(
      ComPtr<BlkIo>::Retain(below), block_size, capacity, trace));
  // Whole cache blocks only: a ragged tail would need read-modify-write of
  // a partial device block, which the cache does not do.
  layer->size_ = (size / block_size) * block_size;
  return layer;
}

Error CacheBlkIo::Query(const Guid& iid, void** out) {
  if (iid == IUnknown::kIid || iid == BlkIo::kIid) {
    AddRef();
    *out = static_cast<BlkIo*>(this);
    return Error::kOk;
  }
  if (iid == BlkIoBarrier::kIid) {
    AddRef();
    *out = static_cast<BlkIoBarrier*>(this);
    return Error::kOk;
  }
  *out = nullptr;
  return Error::kNoInterface;
}

Error CacheBlkIo::Read(void* buf, off_t64 offset, size_t amount,
                       size_t* out_actual) {
  *out_actual = 0;
  if (offset > size_) {
    return Error::kOutOfRange;
  }
  if (amount > size_ - offset) {
    if (offset + amount < offset) {
      return Error::kInval;  // shared wrap discipline (tests/bounds_abuse.h)
    }
    amount = size_ - offset;
  }
  auto* out = static_cast<uint8_t*>(buf);
  const uint32_t bs = cache_.block_size();
  size_t done = 0;
  while (done < amount) {
    off_t64 at = offset + done;
    auto block = static_cast<uint32_t>(at / bs);
    uint32_t in_block = static_cast<uint32_t>(at % bs);
    size_t span = bs - in_block;
    if (span > amount - done) {
      span = amount - done;
    }
    uint8_t* data = nullptr;
    Error err = cache_.Get(block, &data);
    if (!Ok(err)) {
      *out_actual = done;
      return err;
    }
    std::memcpy(out + done, data + in_block, span);
    done += span;
  }
  *out_actual = done;
  return Error::kOk;
}

Error CacheBlkIo::Write(const void* buf, off_t64 offset, size_t amount,
                        size_t* out_actual) {
  *out_actual = 0;
  if (offset > size_) {
    return Error::kOutOfRange;
  }
  if (amount > size_ - offset) {
    if (offset + amount < offset) {
      return Error::kInval;  // wrapped range (see Read)
    }
    amount = size_ - offset;
  }
  const auto* in = static_cast<const uint8_t*>(buf);
  const uint32_t bs = cache_.block_size();
  size_t done = 0;
  while (done < amount) {
    off_t64 at = offset + done;
    auto block = static_cast<uint32_t>(at / bs);
    uint32_t in_block = static_cast<uint32_t>(at % bs);
    size_t span = bs - in_block;
    if (span > amount - done) {
      span = amount - done;
    }
    uint8_t* data = nullptr;
    Error err = cache_.Get(block, &data);
    if (!Ok(err)) {
      *out_actual = done;
      return err;
    }
    std::memcpy(data + in_block, in + done, span);
    cache_.MarkDirty(block);
    done += span;
  }
  *out_actual = done;
  return Error::kOk;
}

Error CacheBlkIo::Flush() {
  Error err = cache_.Sync();
  if (!Ok(err)) {
    return err;
  }
  return cache_.Barrier();
}

}  // namespace oskit::fs
