// Write-back block cache over a BlkIo, in the style of the BSD buffer cache
// the imported filesystem code expected.

#ifndef OSKIT_SRC_FS_CACHE_H_
#define OSKIT_SRC_FS_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <vector>

#include "src/com/blkio.h"
#include "src/trace/trace.h"

namespace oskit::fs {

class BlockCache {
 public:
  // Registered with the trace environment's registry under "fs.cache.*".
  struct Counters {
    trace::Counter hits;
    trace::Counter misses;
    trace::Counter writebacks;
  };

  // `capacity` is the number of cached blocks before LRU eviction.  `trace`
  // is the observability environment to report into; null binds the default.
  BlockCache(ComPtr<BlkIo> device, uint32_t block_size, size_t capacity = 256,
             trace::TraceEnv* trace = nullptr);
  ~BlockCache();

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  uint32_t block_size() const { return block_size_; }

  // Returns a pointer to the cached block contents, reading it in if absent
  // (bread).  The pointer stays valid until the next cache call.
  Error Get(uint32_t block, uint8_t** out_data);

  // Marks a block dirty (bdwrite).
  void MarkDirty(uint32_t block);

  // Convenience: whole-block read/write through the cache.
  Error ReadBlock(uint32_t block, void* out);
  Error WriteBlock(uint32_t block, const void* data);
  Error ZeroBlock(uint32_t block);

  // Flushes all dirty blocks to the device (sync).
  Error Sync();

  // Drops a clean or dirty block without writing (used after freeing it).
  void Invalidate(uint32_t block);

  const Counters& counters() const { return counters_; }
  uint64_t hits() const { return counters_.hits; }
  uint64_t misses() const { return counters_.misses; }
  uint64_t writebacks() const { return counters_.writebacks; }

 private:
  struct Entry {
    std::vector<uint8_t> data;
    bool dirty = false;
    std::list<uint32_t>::iterator lru_pos;
  };

  Error EvictOne();
  Error WriteBack(uint32_t block, Entry& entry);
  void Touch(uint32_t block, Entry& entry);

  ComPtr<BlkIo> device_;
  uint32_t block_size_;
  size_t capacity_;
  std::map<uint32_t, Entry> entries_;
  std::list<uint32_t> lru_;  // front = most recent
  trace::TraceEnv* trace_;
  Counters counters_;
  trace::CounterBlock trace_binding_;
};

}  // namespace oskit::fs

#endif  // OSKIT_SRC_FS_CACHE_H_
