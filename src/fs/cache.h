// Write-back block cache over a BlkIo, in the style of the BSD buffer cache
// the imported filesystem code expected.
//
// Durability: the cache discovers the device's BlkIoBarrier extension via
// Query at construction.  Sync() writes dirty blocks back in ascending block
// order — a deterministic sequence the crash-point campaign depends on —
// and Barrier() makes everything written so far durable.  Writing back does
// NOT make data durable on a device with a volatile write cache; callers
// sequence WriteBack/Sync and Barrier to build ordering guarantees (the
// journal's commit protocol lives in src/fs/journal).

#ifndef OSKIT_SRC_FS_CACHE_H_
#define OSKIT_SRC_FS_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/com/blkio.h"
#include "src/trace/trace.h"

namespace oskit::fs {

class BlockCache {
 public:
  // Registered with the trace environment's registry under "fs.cache.*".
  struct Counters {
    trace::Counter hits;
    trace::Counter misses;
    trace::Counter writebacks;
    trace::Counter barriers;
  };

  // `capacity` is the number of cached blocks before LRU eviction.  `trace`
  // is the observability environment to report into; null binds the default.
  BlockCache(ComPtr<BlkIo> device, uint32_t block_size, size_t capacity = 256,
             trace::TraceEnv* trace = nullptr);
  ~BlockCache();

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  uint32_t block_size() const { return block_size_; }

  // Returns a pointer to the cached block contents, reading it in if absent
  // (bread).  The pointer stays valid until the next cache call.
  Error Get(uint32_t block, uint8_t** out_data);

  // Marks a block dirty (bdwrite).
  void MarkDirty(uint32_t block);
  bool IsDirty(uint32_t block) const;

  // Convenience: whole-block read/write through the cache.
  Error ReadBlock(uint32_t block, void* out);
  Error WriteBlock(uint32_t block, const void* data);
  Error ZeroBlock(uint32_t block);

  // Writes all dirty blocks back in ascending block order (sync).  Does NOT
  // issue a barrier; pair with Barrier() for a durability point.
  Error Sync();

  // Dirty block numbers in ascending order (what Sync would write).
  std::vector<uint32_t> CollectDirty() const;

  // Writes one dirty block back (no-op when absent or clean).
  Error WriteBackOne(uint32_t block);

  // Durability point: everything written back before this call survives a
  // power cut.  kOk trivially when the device exports no BlkIoBarrier.
  Error Barrier();

  // Drops a CLEAN block; refuses (kBusy) to silently discard dirty data.
  // Dropping a block that is not cached is a harmless no-op.
  Error Invalidate(uint32_t block);

  // The intentional-data-loss spelling: drops the block even when dirty
  // (simulated power cut, block freed before ever reaching the device).
  void DropDirty(uint32_t block);

  // Blocks for which `pin` returns true are never evicted while dirty —
  // the journal pins an open transaction's metadata so no home-location
  // write precedes the commit record.  Clean blocks always evict.
  void SetEvictionPin(std::function<bool(uint32_t)> pin);

  // Zero-copy export (the FFS sendfile path): pins the block's cached
  // contents and returns a pointer that stays valid — the entry is never
  // evicted and its heap storage never moves — until the matching PutRef.
  // Unlike Get's pointer, this one survives later cache calls.
  Error GetRef(uint32_t block, const uint8_t** out_data);
  void PutRef(uint32_t block);

  const Counters& counters() const { return counters_; }
  uint64_t hits() const { return counters_.hits; }
  uint64_t misses() const { return counters_.misses; }
  uint64_t writebacks() const { return counters_.writebacks; }

 private:
  struct Entry {
    std::vector<uint8_t> data;
    bool dirty = false;
    uint32_t refs = 0;  // GetRef pins outstanding; never evicted while > 0
    std::list<uint32_t>::iterator lru_pos;
  };

  Error EvictOne();
  Error WriteBack(uint32_t block, Entry& entry);
  void Touch(uint32_t block, Entry& entry);
  void Remove(uint32_t block);

  ComPtr<BlkIo> device_;
  ComPtr<BlkIoBarrier> barrier_;  // null when the device has none
  uint32_t block_size_;
  size_t capacity_;
  std::unordered_map<uint32_t, Entry> entries_;
  std::list<uint32_t> lru_;  // front = most recent
  std::function<bool(uint32_t)> pin_;
  trace::TraceEnv* trace_;
  Counters counters_;
  trace::CounterBlock trace_binding_;
};

// The block cache as just another stackable layer: a BlkIo + BlkIoBarrier
// facade over an embedded BlockCache, so `cache(checksum(stripe(...)))` and
// every other composition order work with the same object the filesystem
// has always used.  Flush() is the layer spelling of the cache's durability
// pair: Sync() (write back all dirty blocks, ascending) then Barrier().
class CacheBlkIo final : public BlkIo,
                         public BlkIoBarrier,
                         public RefCounted<CacheBlkIo> {
 public:
  static ComPtr<CacheBlkIo> Create(BlkIo* below, uint32_t block_size,
                                   size_t capacity = 256,
                                   trace::TraceEnv* trace = nullptr);

  Error Query(const Guid& iid, void** out) override;
  OSKIT_REFCOUNTED_BOILERPLATE()

  uint32_t GetBlockSize() override { return cache_.block_size(); }
  Error Read(void* buf, off_t64 offset, size_t amount,
             size_t* out_actual) override;
  Error Write(const void* buf, off_t64 offset, size_t amount,
              size_t* out_actual) override;
  Error GetSize(off_t64* out_size) override {
    *out_size = size_;
    return Error::kOk;
  }
  Error SetSize(off_t64) override { return Error::kNotImpl; }

  Error Flush() override;

  BlockCache& cache() { return cache_; }

 private:
  friend class RefCounted<CacheBlkIo>;
  CacheBlkIo(ComPtr<BlkIo> below, uint32_t block_size, size_t capacity,
             trace::TraceEnv* trace);
  ~CacheBlkIo() = default;

  BlockCache cache_;
  off_t64 size_ = 0;
};

}  // namespace oskit::fs

#endif  // OSKIT_SRC_FS_CACHE_H_
