// Write-back block cache over a BlkIo, in the style of the BSD buffer cache
// the imported filesystem code expected.

#ifndef OSKIT_SRC_FS_CACHE_H_
#define OSKIT_SRC_FS_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <vector>

#include "src/com/blkio.h"

namespace oskit::fs {

class BlockCache {
 public:
  // `capacity` is the number of cached blocks before LRU eviction.
  BlockCache(ComPtr<BlkIo> device, uint32_t block_size, size_t capacity = 256);
  ~BlockCache();

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  uint32_t block_size() const { return block_size_; }

  // Returns a pointer to the cached block contents, reading it in if absent
  // (bread).  The pointer stays valid until the next cache call.
  Error Get(uint32_t block, uint8_t** out_data);

  // Marks a block dirty (bdwrite).
  void MarkDirty(uint32_t block);

  // Convenience: whole-block read/write through the cache.
  Error ReadBlock(uint32_t block, void* out);
  Error WriteBlock(uint32_t block, const void* data);
  Error ZeroBlock(uint32_t block);

  // Flushes all dirty blocks to the device (sync).
  Error Sync();

  // Drops a clean or dirty block without writing (used after freeing it).
  void Invalidate(uint32_t block);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t writebacks() const { return writebacks_; }

 private:
  struct Entry {
    std::vector<uint8_t> data;
    bool dirty = false;
    std::list<uint32_t>::iterator lru_pos;
  };

  Error EvictOne();
  Error WriteBack(uint32_t block, Entry& entry);
  void Touch(uint32_t block, Entry& entry);

  ComPtr<BlkIo> device_;
  uint32_t block_size_;
  size_t capacity_;
  std::map<uint32_t, Entry> entries_;
  std::list<uint32_t> lru_;  // front = most recent
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t writebacks_ = 0;
};

}  // namespace oskit::fs

#endif  // OSKIT_SRC_FS_CACHE_H_
