#include "src/fs/ffs.h"

#include <bit>
#include <cstring>

#include "src/base/panic.h"
#include "src/libc/string.h"

namespace oskit::fs {

static_assert(std::endian::native == std::endian::little,
              "on-disk structures are stored little-endian via memcpy");

namespace {


bool IsDot(const char* name) { return libc::Strcmp(name, ".") == 0; }
bool IsDotDot(const char* name) { return libc::Strcmp(name, "..") == 0; }

}  // namespace

// ---------------------------------------------------------------------------
// mkfs
// ---------------------------------------------------------------------------

Error Mkfs(BlkIo* device, const MkfsOptions& options) {
  off_t64 device_bytes = 0;
  Error err = device->GetSize(&device_bytes);
  if (!Ok(err)) {
    return err;
  }
  uint32_t total_blocks = static_cast<uint32_t>(device_bytes / kBlockSize);
  if (total_blocks < 16) {
    return Error::kNoSpace;
  }

  SuperBlock sb;
  sb.total_blocks = total_blocks;
  sb.inode_count = options.inode_count != 0
                       ? options.inode_count
                       : (total_blocks / 8 + kInodesPerBlock) / kInodesPerBlock *
                             kInodesPerBlock;
  sb.bitmap_start = 1;
  sb.bitmap_blocks = (total_blocks + kBlockSize * 8 - 1) / (kBlockSize * 8);
  sb.itable_start = sb.bitmap_start + sb.bitmap_blocks;
  sb.itable_blocks = sb.inode_count / kInodesPerBlock;
  // Journal region between the inode table and the data area (still inside
  // the metadata zone fsck treats as implicitly in-use).
  uint32_t journal_blocks = options.journal_blocks;
  if (journal_blocks == MkfsOptions::kAutoJournal) {
    journal_blocks = total_blocks / 32;
    if (journal_blocks > 64) {
      journal_blocks = 64;
    }
    if (journal_blocks < kMinJournalBlocks) {
      journal_blocks = kMinJournalBlocks;
    }
    // A volume too small to afford a journal gets none rather than failing.
    if (sb.itable_start + sb.itable_blocks + journal_blocks + 4 >= total_blocks) {
      journal_blocks = 0;
    }
  } else if (journal_blocks != 0 && journal_blocks < kMinJournalBlocks) {
    return Error::kInval;
  }
  sb.journal_start = journal_blocks != 0 ? sb.itable_start + sb.itable_blocks : 0;
  sb.journal_blocks = journal_blocks;
  sb.data_start = sb.itable_start + sb.itable_blocks + journal_blocks;
  if (sb.data_start + 4 >= total_blocks) {
    return Error::kNoSpace;
  }
  sb.free_blocks = total_blocks - sb.data_start;
  sb.free_inodes = sb.inode_count - 2;  // ino 0 unused, ino 1 = root
  sb.clean = 1;

  std::vector<uint8_t> block(kBlockSize, 0);
  size_t actual = 0;

  // Zero the metadata area.
  for (uint32_t b = 0; b < sb.data_start; ++b) {
    err = device->Write(block.data(), static_cast<off_t64>(b) * kBlockSize,
                        kBlockSize, &actual);
    if (!Ok(err) || actual != kBlockSize) {
      return Ok(err) ? Error::kIo : err;
    }
  }

  // Bitmap: metadata blocks are "used".
  for (uint32_t b = 0; b < sb.data_start; ++b) {
    uint32_t bitmap_block = sb.bitmap_start + b / (kBlockSize * 8);
    uint32_t bit = b % (kBlockSize * 8);
    err = device->Read(block.data(), static_cast<off_t64>(bitmap_block) * kBlockSize,
                       kBlockSize, &actual);
    if (!Ok(err)) {
      return err;
    }
    block[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
    err = device->Write(block.data(), static_cast<off_t64>(bitmap_block) * kBlockSize,
                        kBlockSize, &actual);
    if (!Ok(err)) {
      return err;
    }
  }

  // Also mark the root directory's first data block used.
  uint32_t root_block = sb.data_start;
  {
    uint32_t bitmap_block = sb.bitmap_start + root_block / (kBlockSize * 8);
    uint32_t bit = root_block % (kBlockSize * 8);
    err = device->Read(block.data(), static_cast<off_t64>(bitmap_block) * kBlockSize,
                       kBlockSize, &actual);
    if (!Ok(err)) {
      return err;
    }
    block[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
    err = device->Write(block.data(), static_cast<off_t64>(bitmap_block) * kBlockSize,
                        kBlockSize, &actual);
    if (!Ok(err)) {
      return err;
    }
    sb.free_blocks -= 1;
  }

  // Root inode.
  DiskInode root;
  root.mode = kModeDirectory | 0755;
  root.nlink = 2;  // "." and the root's self-reference
  root.size = 2 * kDirEntrySize;
  root.direct[0] = root_block;
  root.blocks = 1;

  std::memset(block.data(), 0, kBlockSize);
  std::memcpy(block.data() + kRootIno * kInodeSize, &root, sizeof(root));
  err = device->Write(block.data(), static_cast<off_t64>(sb.itable_start) * kBlockSize,
                      kBlockSize, &actual);
  if (!Ok(err)) {
    return err;
  }

  // Root directory data: "." and "..".
  std::memset(block.data(), 0, kBlockSize);
  auto* dot = reinterpret_cast<DiskDirEntry*>(block.data());
  dot->ino = kRootIno;
  dot->type = kModeDirectory >> 12;
  dot->name_len = 1;
  libc::Strcpy(dot->name, ".");
  auto* dotdot = reinterpret_cast<DiskDirEntry*>(block.data() + kDirEntrySize);
  dotdot->ino = kRootIno;
  dotdot->type = kModeDirectory >> 12;
  dotdot->name_len = 2;
  libc::Strcpy(dotdot->name, "..");
  err = device->Write(block.data(), static_cast<off_t64>(root_block) * kBlockSize,
                      kBlockSize, &actual);
  if (!Ok(err)) {
    return err;
  }

  // Journal superblock (the region itself was zeroed by the metadata sweep
  // above, so no stale transaction from a previous life can ever replay).
  if (sb.journal_blocks != 0) {
    err = JournalFormat(device, sb);
    if (!Ok(err)) {
      return err;
    }
  }

  // Superblock last (a crash mid-mkfs leaves no valid magic).
  std::memset(block.data(), 0, kBlockSize);
  std::memcpy(block.data(), &sb, sizeof(sb));
  return device->Write(block.data(), 0, kBlockSize, &actual);
}

// ---------------------------------------------------------------------------
// Mount / superblock
// ---------------------------------------------------------------------------

namespace {

Error LoadSuperBlockRaw(BlkIo* device, SuperBlock* out) {
  uint8_t block[kBlockSize];
  size_t actual = 0;
  Error err = device->Read(block, 0, kBlockSize, &actual);
  if (!Ok(err)) {
    return err;
  }
  if (actual != kBlockSize) {
    return Error::kCorrupt;
  }
  std::memcpy(out, block, sizeof(*out));
  if (out->magic != kFsMagic || out->version != kFsVersion ||
      out->block_size != kBlockSize) {
    return Error::kCorrupt;
  }
  off_t64 device_bytes = 0;
  err = device->GetSize(&device_bytes);
  if (!Ok(err) ||
      static_cast<off_t64>(out->total_blocks) * kBlockSize > device_bytes) {
    return Error::kCorrupt;
  }
  return Error::kOk;
}

}  // namespace

Offs::Offs(ComPtr<BlkIo> device, const SuperBlock& sb, trace::TraceEnv* trace)
    : device_(std::move(device)), sb_(sb) {
  cache_ = std::make_unique<BlockCache>(device_, kBlockSize, 256, trace);
  alloc_cursor_ = sb_.data_start;
  trace::TraceEnv* tenv = trace::ResolveTraceEnv(trace);
  jcounters_binding_.Bind(&tenv->registry,
                          {{"fs.journal.commits", &jcounters_.commits},
                           {"fs.journal.blocks_logged", &jcounters_.blocks_logged},
                           {"fs.journal.overflows", &jcounters_.overflows},
                           {"fs.journal.meta_ops", &jcounters_.meta_ops},
                           {"fs.journal.replays", &jcounters_.replays},
                           {"fs.journal.discarded_txns",
                            &jcounters_.discarded_txns}});
}

Offs::~Offs() = default;

Error Offs::Mount(BlkIo* device, FileSystem** out_fs) {
  return Mount(device, MountOptions{}, out_fs);
}

Error Offs::Mount(BlkIo* device, const MountOptions& options, FileSystem** out_fs) {
  *out_fs = nullptr;
  SuperBlock sb;
  Error err = LoadSuperBlockRaw(device, &sb);
  if (!Ok(err)) {
    return err;
  }
  JournalReplayStats replay_stats;
  if (sb.journal_blocks >= kMinJournalBlocks && options.replay_journal) {
    err = JournalReplay(device, sb, /*apply=*/true, &replay_stats);
    if (!Ok(err)) {
      return err;
    }
    // Block 0 may itself have been a replay target; trust the redone image.
    err = LoadSuperBlockRaw(device, &sb);
    if (!Ok(err)) {
      return err;
    }
  }
  auto* fs = new Offs(ComPtr<BlkIo>::Retain(device), sb, options.trace);
  if (sb.journal_blocks >= kMinJournalBlocks) {
    fs->journal_ = std::make_unique<JournalWriter>(fs->device_, sb.journal_start,
                                                   sb.journal_blocks);
    err = fs->journal_->Load();
    if (!Ok(err)) {
      fs->Release();
      return err;
    }
    fs->jcounters_.replays += replay_stats.replayed_txns;
    fs->jcounters_.discarded_txns += replay_stats.discarded_txns;
    fs->cache_->SetEvictionPin(
        [fs](uint32_t block) { return fs->txn_blocks_.count(block) != 0; });
  }
  // Mark dirty-on-disk until a clean unmount (what fsck keys off).
  fs->sb_.clean = 0;
  err = fs->Sync();
  if (!Ok(err)) {
    fs->Release();
    return err;
  }
  *out_fs = fs;
  return Error::kOk;
}

Error Offs::WriteSuperBlock() {
  uint8_t* data = nullptr;
  Error err = cache_->Get(0, &data);
  if (!Ok(err)) {
    return err;
  }
  std::memset(data, 0, kBlockSize);
  std::memcpy(data, &sb_, sizeof(sb_));
  MetaDirty(0);
  return Error::kOk;
}

void Offs::MetaDirty(uint32_t block) {
  cache_->MarkDirty(block);
  if (journal_) {
    txn_blocks_.insert(block);
  }
}

Error Offs::NoteMetaOp() {
  ++jcounters_.meta_ops;
  if (journal_ == nullptr) {
    return Error::kOk;
  }
  if (meta_admit_) {
    // Per-principal admission before any intent write: denial aborts the
    // metadata op here, with nothing yet enlisted in the transaction.
    Error err = meta_admit_();
    if (!Ok(err)) {
      return err;
    }
  }
  // Commit early at operation boundaries so the open transaction always
  // fits the journal: the batch so far is consistent, the next op starts a
  // fresh one.
  uint32_t soft_limit = journal_->capacity() / 2;
  if (soft_limit > 24) {
    soft_limit = 24;
  }
  if (soft_limit < 1) {
    soft_limit = 1;
  }
  if (txn_blocks_.size() >= soft_limit) {
    return Sync();
  }
  return Error::kOk;
}

Error Offs::Query(const Guid& iid, void** out) {
  if (iid == IUnknown::kIid || iid == FileSystem::kIid) {
    AddRef();
    *out = static_cast<FileSystem*>(this);
    return Error::kOk;
  }
  *out = nullptr;
  return Error::kNoInterface;
}

Error Offs::StatFs(FsStat* out_stat) {
  out_stat->block_size = kBlockSize;
  out_stat->total_blocks = sb_.total_blocks;
  out_stat->free_blocks = sb_.free_blocks;
  out_stat->total_inodes = sb_.inode_count;
  out_stat->free_inodes = sb_.free_inodes;
  return Error::kOk;
}

Error Offs::Sync() {
  Error err = WriteSuperBlock();
  if (!Ok(err)) {
    return err;
  }
  if (journal_ == nullptr) {
    // Unjournaled (ablation) path: ordered writeback and one barrier.  The
    // writeback itself is not atomic — exactly the weakness the crash
    // campaign's ablation phase demonstrates.
    err = cache_->Sync();
    if (!Ok(err)) {
      return err;
    }
    return cache_->Barrier();
  }

  // Phase 1: non-transaction (file data) blocks to their home locations,
  // ascending, made durable before any metadata referencing them commits.
  for (uint32_t block : cache_->CollectDirty()) {
    if (txn_blocks_.count(block) != 0) {
      continue;
    }
    err = cache_->WriteBackOne(block);
    if (!Ok(err)) {
      return err;
    }
  }
  err = cache_->Barrier();
  if (!Ok(err)) {
    return err;
  }
  if (txn_blocks_.empty()) {
    if (meta_committed_) {
      meta_committed_();  // admitted ops that dirtied nothing still settle
    }
    return Error::kOk;
  }

  std::vector<uint32_t> targets(txn_blocks_.begin(), txn_blocks_.end());
  if (targets.size() > journal_->capacity()) {
    // The batch outgrew the journal: fall back to a plain barriered
    // writeback.  Not atomic, but counted, so campaigns can prove the
    // fallback never fires on their workloads.
    ++jcounters_.overflows;
    txn_blocks_.clear();
    if (meta_committed_) {
      meta_committed_();
    }
    err = cache_->Sync();
    if (!Ok(err)) {
      return err;
    }
    return cache_->Barrier();
  }

  // Phase 2: the write-ahead commit (images + header + commit + flush).
  // The transaction stays pinned until the commit record is durable; only
  // then may home locations be overwritten.
  err = journal_->Commit(targets, [this](uint32_t block, uint8_t* out) {
    uint8_t* data = nullptr;
    Error e = cache_->Get(block, &data);
    if (!Ok(e)) {
      return e;
    }
    std::memcpy(out, data, kBlockSize);
    return Error::kOk;
  });
  if (!Ok(err)) {
    return err;
  }
  ++jcounters_.commits;
  jcounters_.blocks_logged += targets.size();
  txn_blocks_.clear();
  if (meta_committed_) {
    meta_committed_();
  }

  // Phase 3: home-location writeback (ascending) behind the commit barrier.
  for (uint32_t block : targets) {
    err = cache_->WriteBackOne(block);
    if (!Ok(err)) {
      return err;
    }
  }
  err = cache_->Barrier();
  if (!Ok(err)) {
    return err;
  }

  // Phase 4: lazily retire the transaction.  A stale checkpoint only means
  // replay redoes idempotent work.
  return journal_->Checkpoint();
}

Error Offs::Unmount() {
  if (unmounted_) {
    return Error::kOk;
  }
  sb_.clean = 1;
  Error err = Sync();
  if (!Ok(err)) {
    return err;
  }
  unmounted_ = true;
  return Error::kOk;
}

// ---------------------------------------------------------------------------
// Inode table
// ---------------------------------------------------------------------------

Error Offs::ReadInode(uint64_t ino, DiskInode* out) {
  if (ino == 0 || ino >= sb_.inode_count) {
    return Error::kInval;
  }
  uint32_t block = sb_.itable_start + static_cast<uint32_t>(ino / kInodesPerBlock);
  uint8_t* data = nullptr;
  Error err = cache_->Get(block, &data);
  if (!Ok(err)) {
    return err;
  }
  std::memcpy(out, data + (ino % kInodesPerBlock) * kInodeSize, sizeof(DiskInode));
  return Error::kOk;
}

Error Offs::WriteInode(uint64_t ino, const DiskInode& inode) {
  if (ino == 0 || ino >= sb_.inode_count) {
    return Error::kInval;
  }
  uint32_t block = sb_.itable_start + static_cast<uint32_t>(ino / kInodesPerBlock);
  uint8_t* data = nullptr;
  Error err = cache_->Get(block, &data);
  if (!Ok(err)) {
    return err;
  }
  std::memcpy(data + (ino % kInodesPerBlock) * kInodeSize, &inode, sizeof(DiskInode));
  MetaDirty(block);
  return Error::kOk;
}

Error Offs::AllocInode(uint16_t mode, uint64_t* out_ino) {
  if (sb_.free_inodes == 0) {
    return Error::kNoSpace;
  }
  for (uint64_t ino = 2; ino < sb_.inode_count; ++ino) {
    DiskInode inode;
    Error err = ReadInode(ino, &inode);
    if (!Ok(err)) {
      return err;
    }
    if ((inode.mode & kModeTypeMask) == kModeFree) {
      inode = DiskInode{};
      inode.mode = mode;
      inode.nlink = 0;
      inode.mtime = now();
      err = WriteInode(ino, inode);
      if (!Ok(err)) {
        return err;
      }
      --sb_.free_inodes;
      *out_ino = ino;
      return Error::kOk;
    }
  }
  return Error::kNoSpace;
}

Error Offs::FreeInode(uint64_t ino) {
  DiskInode inode;
  Error err = ReadInode(ino, &inode);
  if (!Ok(err)) {
    return err;
  }
  err = TruncateBlocks(&inode, 0);
  if (!Ok(err)) {
    return err;
  }
  inode = DiskInode{};
  err = WriteInode(ino, inode);
  if (!Ok(err)) {
    return err;
  }
  ++sb_.free_inodes;
  return Error::kOk;
}

// ---------------------------------------------------------------------------
// Block allocation
// ---------------------------------------------------------------------------

Error Offs::SetBitmapBit(uint32_t block, bool used) {
  uint32_t bitmap_block = sb_.bitmap_start + block / (kBlockSize * 8);
  uint32_t bit = block % (kBlockSize * 8);
  uint8_t* data = nullptr;
  Error err = cache_->Get(bitmap_block, &data);
  if (!Ok(err)) {
    return err;
  }
  uint8_t mask = static_cast<uint8_t>(1u << (bit % 8));
  bool was_used = (data[bit / 8] & mask) != 0;
  if (used == was_used) {
    return Error::kUnexpected;  // double alloc / double free
  }
  if (used) {
    data[bit / 8] |= mask;
  } else {
    data[bit / 8] &= static_cast<uint8_t>(~mask);
  }
  MetaDirty(bitmap_block);
  return Error::kOk;
}

Error Offs::FindFreeBitmapBit(uint32_t* out_block) {
  // Rotor scan from the last allocation point.
  uint32_t total = sb_.total_blocks;
  uint32_t start = alloc_cursor_;
  for (uint32_t i = 0; i < total; ++i) {
    uint32_t block = start + i;
    if (block >= total) {
      block = sb_.data_start + (block - total) % (total - sb_.data_start);
    }
    if (block < sb_.data_start) {
      continue;
    }
    uint32_t bitmap_block = sb_.bitmap_start + block / (kBlockSize * 8);
    uint32_t bit = block % (kBlockSize * 8);
    uint8_t* data = nullptr;
    Error err = cache_->Get(bitmap_block, &data);
    if (!Ok(err)) {
      return err;
    }
    if ((data[bit / 8] & (1u << (bit % 8))) == 0) {
      *out_block = block;
      alloc_cursor_ = block + 1;
      return Error::kOk;
    }
  }
  return Error::kNoSpace;
}

Error Offs::AllocBlock(uint32_t* out_block) {
  if (sb_.free_blocks == 0) {
    return Error::kNoSpace;
  }
  uint32_t block = 0;
  Error err = FindFreeBitmapBit(&block);
  if (!Ok(err)) {
    return err;
  }
  err = SetBitmapBit(block, true);
  if (!Ok(err)) {
    return err;
  }
  --sb_.free_blocks;
  err = cache_->ZeroBlock(block);
  if (!Ok(err)) {
    return err;
  }
  *out_block = block;
  return Error::kOk;
}

Error Offs::FreeBlock(uint32_t block) {
  if (block < sb_.data_start || block >= sb_.total_blocks) {
    return Error::kInval;
  }
  Error err = SetBitmapBit(block, false);
  if (!Ok(err)) {
    return err;
  }
  ++sb_.free_blocks;
  return Error::kOk;
}

// ---------------------------------------------------------------------------
// Block mapping (direct, single and double indirect)
// ---------------------------------------------------------------------------

Error Offs::BMap(uint64_t ino, DiskInode* inode, uint32_t file_block, bool alloc,
                 uint32_t* out_block) {
  *out_block = 0;
  bool inode_dirty = false;

  auto load_slot = [&](uint32_t table_block, uint32_t index, uint32_t* out) -> Error {
    uint8_t* data = nullptr;
    Error err = cache_->Get(table_block, &data);
    if (!Ok(err)) {
      return err;
    }
    std::memcpy(out, data + index * 4, 4);
    return Error::kOk;
  };
  auto store_slot = [&](uint32_t table_block, uint32_t index, uint32_t value) -> Error {
    uint8_t* data = nullptr;
    Error err = cache_->Get(table_block, &data);
    if (!Ok(err)) {
      return err;
    }
    std::memcpy(data + index * 4, &value, 4);
    MetaDirty(table_block);  // indirect blocks are metadata
    return Error::kOk;
  };

  Error err = Error::kOk;
  if (file_block < kDirectBlocks) {
    uint32_t block = inode->direct[file_block];
    if (block == 0 && alloc) {
      err = AllocBlock(&block);
      if (!Ok(err)) {
        return err;
      }
      inode->direct[file_block] = block;
      inode->blocks += 1;
      inode_dirty = true;
    }
    *out_block = block;
  } else if (file_block < kDirectBlocks + kPointersPerBlock) {
    uint32_t index = file_block - kDirectBlocks;
    if (inode->indirect == 0) {
      if (!alloc) {
        return Error::kOk;  // hole
      }
      err = AllocBlock(&inode->indirect);
      if (!Ok(err)) {
        return err;
      }
      inode->blocks += 1;
      inode_dirty = true;
    }
    uint32_t block = 0;
    err = load_slot(inode->indirect, index, &block);
    if (!Ok(err)) {
      return err;
    }
    if (block == 0 && alloc) {
      err = AllocBlock(&block);
      if (!Ok(err)) {
        return err;
      }
      err = store_slot(inode->indirect, index, block);
      if (!Ok(err)) {
        return err;
      }
      inode->blocks += 1;
      inode_dirty = true;
    }
    *out_block = block;
  } else {
    uint32_t index = file_block - kDirectBlocks - kPointersPerBlock;
    uint32_t outer = index / kPointersPerBlock;
    uint32_t inner = index % kPointersPerBlock;
    if (outer >= kPointersPerBlock) {
      return Error::kFBig;
    }
    if (inode->double_indirect == 0) {
      if (!alloc) {
        return Error::kOk;
      }
      err = AllocBlock(&inode->double_indirect);
      if (!Ok(err)) {
        return err;
      }
      inode->blocks += 1;
      inode_dirty = true;
    }
    uint32_t mid = 0;
    err = load_slot(inode->double_indirect, outer, &mid);
    if (!Ok(err)) {
      return err;
    }
    if (mid == 0) {
      if (!alloc) {
        return Error::kOk;
      }
      err = AllocBlock(&mid);
      if (!Ok(err)) {
        return err;
      }
      err = store_slot(inode->double_indirect, outer, mid);
      if (!Ok(err)) {
        return err;
      }
      inode->blocks += 1;
      inode_dirty = true;
    }
    uint32_t block = 0;
    err = load_slot(mid, inner, &block);
    if (!Ok(err)) {
      return err;
    }
    if (block == 0 && alloc) {
      err = AllocBlock(&block);
      if (!Ok(err)) {
        return err;
      }
      err = store_slot(mid, inner, block);
      if (!Ok(err)) {
        return err;
      }
      inode->blocks += 1;
      inode_dirty = true;
    }
    *out_block = block;
  }

  if (inode_dirty) {
    return WriteInode(ino, *inode);
  }
  return Error::kOk;
}

// ---------------------------------------------------------------------------
// File read / write / truncate
// ---------------------------------------------------------------------------

Error Offs::FileReadAt(uint64_t ino, void* buf, uint64_t offset, size_t amount,
                       size_t* out_actual) {
  *out_actual = 0;
  DiskInode inode;
  Error err = ReadInode(ino, &inode);
  if (!Ok(err)) {
    return err;
  }
  if (offset >= inode.size) {
    return Error::kOk;  // EOF
  }
  if (amount > inode.size - offset) {
    if (offset + amount < offset) {
      return Error::kInval;  // wrapped range, not a short read
    }
    amount = inode.size - offset;
  }
  auto* out = static_cast<uint8_t*>(buf);
  size_t done = 0;
  while (done < amount) {
    uint32_t fb = static_cast<uint32_t>((offset + done) / kBlockSize);
    uint32_t in_block = static_cast<uint32_t>((offset + done) % kBlockSize);
    size_t n = kBlockSize - in_block;
    if (n > amount - done) {
      n = amount - done;
    }
    uint32_t block = 0;
    err = BMap(ino, &inode, fb, /*alloc=*/false, &block);
    if (!Ok(err)) {
      return err;
    }
    if (block == 0) {
      std::memset(out + done, 0, n);  // hole
    } else {
      uint8_t* data = nullptr;
      err = cache_->Get(block, &data);
      if (!Ok(err)) {
        return err;
      }
      std::memcpy(out + done, data + in_block, n);
    }
    done += n;
  }
  *out_actual = done;
  return Error::kOk;
}

Error Offs::FileWriteAt(uint64_t ino, const void* buf, uint64_t offset, size_t amount,
                        size_t* out_actual) {
  *out_actual = 0;
  DiskInode inode;
  Error err = ReadInode(ino, &inode);
  if (!Ok(err)) {
    return err;
  }
  if (offset + amount < offset) {
    return Error::kInval;  // wrapped range: would loop allocating forever
  }
  // Directory contents are metadata: a half-applied dirent write is exactly
  // the orphan/corruption class the journal exists to prevent.  Regular
  // file data stays outside the transaction (ordered mode).
  bool is_dir = (inode.mode & kModeTypeMask) == kModeDirectory;
  const auto* in = static_cast<const uint8_t*>(buf);
  size_t done = 0;
  while (done < amount) {
    uint32_t fb = static_cast<uint32_t>((offset + done) / kBlockSize);
    uint32_t in_block = static_cast<uint32_t>((offset + done) % kBlockSize);
    size_t n = kBlockSize - in_block;
    if (n > amount - done) {
      n = amount - done;
    }
    uint32_t block = 0;
    err = BMap(ino, &inode, fb, /*alloc=*/true, &block);
    if (!Ok(err)) {
      return err;
    }
    OSKIT_ASSERT(block != 0);
    uint8_t* data = nullptr;
    err = cache_->Get(block, &data);
    if (!Ok(err)) {
      return err;
    }
    std::memcpy(data + in_block, in + done, n);
    if (is_dir) {
      MetaDirty(block);
    } else {
      cache_->MarkDirty(block);
    }
    done += n;
  }
  if (offset + done > inode.size) {
    // Reload: BMap may have stored the inode with new block pointers.
    err = ReadInode(ino, &inode);
    if (!Ok(err)) {
      return err;
    }
    inode.size = offset + done;
    inode.mtime = now();
    err = WriteInode(ino, inode);
    if (!Ok(err)) {
      return err;
    }
  } else if (done > 0) {
    err = ReadInode(ino, &inode);
    if (!Ok(err)) {
      return err;
    }
    inode.mtime = now();
    err = WriteInode(ino, inode);
    if (!Ok(err)) {
      return err;
    }
  }
  *out_actual = done;
  return Error::kOk;
}

Error Offs::TruncateBlocks(DiskInode* inode, uint32_t from_fb) {
  // Frees all data blocks with index >= from_fb plus any indirect blocks
  // that become empty.  Called with the inode NOT yet written back.
  auto free_if = [&](uint32_t* slot) -> Error {
    if (*slot != 0) {
      Error err = FreeBlock(*slot);
      if (!Ok(err)) {
        return err;
      }
      *slot = 0;
      inode->blocks -= 1;
    }
    return Error::kOk;
  };

  for (uint32_t fb = from_fb; fb < kDirectBlocks; ++fb) {
    Error err = free_if(&inode->direct[fb]);
    if (!Ok(err)) {
      return err;
    }
  }

  // Single indirect.
  if (inode->indirect != 0) {
    uint32_t first = from_fb > kDirectBlocks ? from_fb - kDirectBlocks : 0;
    if (first < kPointersPerBlock) {
      uint8_t* data = nullptr;
      Error err = cache_->Get(inode->indirect, &data);
      if (!Ok(err)) {
        return err;
      }
      bool any_left = false;
      for (uint32_t i = 0; i < kPointersPerBlock; ++i) {
        uint32_t slot = 0;
        std::memcpy(&slot, data + i * 4, 4);
        if (i >= first && slot != 0) {
          err = FreeBlock(slot);
          if (!Ok(err)) {
            return err;
          }
          slot = 0;
          std::memcpy(data + i * 4, &slot, 4);
          MetaDirty(inode->indirect);
          inode->blocks -= 1;
        } else if (slot != 0) {
          any_left = true;
        }
      }
      if (!any_left) {
        err = free_if(&inode->indirect);
        if (!Ok(err)) {
          return err;
        }
      }
    }
  }

  // Double indirect.
  if (inode->double_indirect != 0) {
    uint32_t base = kDirectBlocks + kPointersPerBlock;
    uint32_t first = from_fb > base ? from_fb - base : 0;
    uint8_t* outer_data = nullptr;
    Error err = cache_->Get(inode->double_indirect, &outer_data);
    if (!Ok(err)) {
      return err;
    }
    bool outer_any_left = false;
    for (uint32_t o = 0; o < kPointersPerBlock; ++o) {
      uint32_t mid = 0;
      std::memcpy(&mid, outer_data + o * 4, 4);
      if (mid == 0) {
        continue;
      }
      uint32_t mid_base = o * kPointersPerBlock;
      if (mid_base + kPointersPerBlock <= first) {
        outer_any_left = true;
        continue;  // entirely below the cut
      }
      uint8_t* mid_data = nullptr;
      err = cache_->Get(mid, &mid_data);
      if (!Ok(err)) {
        return err;
      }
      bool mid_any_left = false;
      for (uint32_t i = 0; i < kPointersPerBlock; ++i) {
        uint32_t slot = 0;
        std::memcpy(&slot, mid_data + i * 4, 4);
        if (slot == 0) {
          continue;
        }
        if (mid_base + i >= first) {
          err = FreeBlock(slot);
          if (!Ok(err)) {
            return err;
          }
          slot = 0;
          std::memcpy(mid_data + i * 4, &slot, 4);
          MetaDirty(mid);
          inode->blocks -= 1;
        } else {
          mid_any_left = true;
        }
      }
      if (!mid_any_left) {
        err = FreeBlock(mid);
        if (!Ok(err)) {
          return err;
        }
        inode->blocks -= 1;
        uint32_t zero = 0;
        // Re-fetch the outer block: freeing `mid` may have evicted it.
        err = cache_->Get(inode->double_indirect, &outer_data);
        if (!Ok(err)) {
          return err;
        }
        std::memcpy(outer_data + o * 4, &zero, 4);
        MetaDirty(inode->double_indirect);
      } else {
        outer_any_left = true;
      }
    }
    if (!outer_any_left) {
      err = free_if(&inode->double_indirect);
      if (!Ok(err)) {
        return err;
      }
    }
  }
  return Error::kOk;
}

Error Offs::FileTruncate(uint64_t ino, uint64_t new_size) {
  DiskInode inode;
  Error err = ReadInode(ino, &inode);
  if (!Ok(err)) {
    return err;
  }
  if (new_size < inode.size) {
    uint32_t keep_blocks = static_cast<uint32_t>((new_size + kBlockSize - 1) / kBlockSize);
    err = TruncateBlocks(&inode, keep_blocks);
    if (!Ok(err)) {
      return err;
    }
    // Zero the tail of the last kept block so re-extension reads zeros.
    if (new_size % kBlockSize != 0) {
      uint32_t block = 0;
      err = BMap(ino, &inode, keep_blocks - 1, /*alloc=*/false, &block);
      if (!Ok(err)) {
        return err;
      }
      if (block != 0) {
        uint8_t* data = nullptr;
        err = cache_->Get(block, &data);
        if (!Ok(err)) {
          return err;
        }
        std::memset(data + new_size % kBlockSize, 0,
                    kBlockSize - new_size % kBlockSize);
        // Journaled even though it is file data: the zeroing must land
        // atomically with the size change, or a replayed truncate could
        // expose stale bytes on re-extension.
        MetaDirty(block);
      }
    }
  }
  inode.size = new_size;
  inode.mtime = now();
  return WriteInode(ino, inode);
}

// ---------------------------------------------------------------------------
// Directories
// ---------------------------------------------------------------------------

Error Offs::DirLookup(uint64_t dir_ino, const char* name, uint64_t* out_ino) {
  DiskInode dir;
  Error err = ReadInode(dir_ino, &dir);
  if (!Ok(err)) {
    return err;
  }
  if ((dir.mode & kModeTypeMask) != kModeDirectory) {
    return Error::kNotDir;
  }
  uint64_t entries = dir.size / kDirEntrySize;
  for (uint64_t i = 0; i < entries; ++i) {
    DiskDirEntry entry;
    size_t actual = 0;
    err = FileReadAt(dir_ino, &entry, i * kDirEntrySize, kDirEntrySize, &actual);
    if (!Ok(err) || actual != kDirEntrySize) {
      return Ok(err) ? Error::kCorrupt : err;
    }
    if (entry.ino != 0 && libc::Strcmp(entry.name, name) == 0) {
      *out_ino = entry.ino;
      return Error::kOk;
    }
  }
  return Error::kNoEnt;
}

Error Offs::DirAdd(uint64_t dir_ino, const char* name, uint64_t ino,
                   uint16_t type_bits) {
  DiskInode dir;
  Error err = ReadInode(dir_ino, &dir);
  if (!Ok(err)) {
    return err;
  }
  DiskDirEntry entry;
  entry.ino = ino;
  entry.type = static_cast<uint8_t>(type_bits >> 12);
  entry.name_len = static_cast<uint8_t>(libc::Strlen(name));
  libc::Strlcpy(entry.name, name, sizeof(entry.name));

  // Reuse an empty slot, else append.
  uint64_t entries = dir.size / kDirEntrySize;
  uint64_t slot = entries;
  for (uint64_t i = 0; i < entries; ++i) {
    DiskDirEntry probe;
    size_t actual = 0;
    err = FileReadAt(dir_ino, &probe, i * kDirEntrySize, kDirEntrySize, &actual);
    if (!Ok(err)) {
      return err;
    }
    if (probe.ino == 0) {
      slot = i;
      break;
    }
  }
  size_t actual = 0;
  return FileWriteAt(dir_ino, &entry, slot * kDirEntrySize, kDirEntrySize, &actual);
}

Error Offs::DirRemove(uint64_t dir_ino, const char* name) {
  DiskInode dir;
  Error err = ReadInode(dir_ino, &dir);
  if (!Ok(err)) {
    return err;
  }
  uint64_t entries = dir.size / kDirEntrySize;
  for (uint64_t i = 0; i < entries; ++i) {
    DiskDirEntry entry;
    size_t actual = 0;
    err = FileReadAt(dir_ino, &entry, i * kDirEntrySize, kDirEntrySize, &actual);
    if (!Ok(err)) {
      return err;
    }
    if (entry.ino != 0 && libc::Strcmp(entry.name, name) == 0) {
      entry = DiskDirEntry{};
      return FileWriteAt(dir_ino, &entry, i * kDirEntrySize, kDirEntrySize, &actual);
    }
  }
  return Error::kNoEnt;
}

Error Offs::DirIsEmpty(uint64_t dir_ino, bool* out_empty) {
  DiskInode dir;
  Error err = ReadInode(dir_ino, &dir);
  if (!Ok(err)) {
    return err;
  }
  uint64_t entries = dir.size / kDirEntrySize;
  for (uint64_t i = 0; i < entries; ++i) {
    DiskDirEntry entry;
    size_t actual = 0;
    err = FileReadAt(dir_ino, &entry, i * kDirEntrySize, kDirEntrySize, &actual);
    if (!Ok(err)) {
      return err;
    }
    if (entry.ino != 0 && !IsDot(entry.name) && !IsDotDot(entry.name)) {
      *out_empty = false;
      return Error::kOk;
    }
  }
  *out_empty = true;
  return Error::kOk;
}

Error Offs::DirRead(uint64_t dir_ino, uint64_t* inout_offset, DirEntry* entries,
                    size_t capacity, size_t* out_count) {
  *out_count = 0;
  DiskInode dir;
  Error err = ReadInode(dir_ino, &dir);
  if (!Ok(err)) {
    return err;
  }
  uint64_t total = dir.size / kDirEntrySize;
  uint64_t i = *inout_offset;
  while (i < total && *out_count < capacity) {
    DiskDirEntry raw;
    size_t actual = 0;
    err = FileReadAt(dir_ino, &raw, i * kDirEntrySize, kDirEntrySize, &actual);
    if (!Ok(err)) {
      return err;
    }
    ++i;
    if (raw.ino == 0) {
      continue;
    }
    DirEntry& out = entries[*out_count];
    out.ino = raw.ino;
    out.type = (static_cast<uint16_t>(raw.type) << 12) == kModeDirectory
                   ? FileType::kDirectory
                   : FileType::kRegular;
    libc::Strlcpy(out.name, raw.name, sizeof(out.name));
    ++*out_count;
  }
  *inout_offset = i;
  return Error::kOk;
}

}  // namespace oskit::fs
