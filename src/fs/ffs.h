// "offs" — the FFS-style filesystem component (paper §3.8).
//
// Plays the role of the encapsulated NetBSD FFS: a real on-disk filesystem
// (src/fs/format.h) running over ANY BlkIo — the Linux-idiom IDE driver, a
// partition view, or a RAM disk — bound at run time (§4.2.2: "the client OS
// can bind at run time any file system to any device driver").  The exported
// COM interfaces take single pathname components, the granularity the secure
// fileserver case study depends on.

#ifndef OSKIT_SRC_FS_FFS_H_
#define OSKIT_SRC_FS_FFS_H_

#include <functional>
#include <memory>
#include <set>

#include "src/com/filesystem.h"
#include "src/fs/cache.h"
#include "src/fs/format.h"
#include "src/fs/journal.h"
#include "src/trace/trace.h"

namespace oskit::fs {

struct MkfsOptions {
  // 0 = choose automatically (one inode per 8 data blocks).
  uint32_t inode_count = 0;
  // Journal region size in blocks.  kAutoJournal sizes it from the device
  // (and silently omits it on volumes too small to hold one); 0 formats
  // without a journal (the crash campaign's ablation mode); any other value
  // is used as given and must fit.
  static constexpr uint32_t kAutoJournal = 0xffffffff;
  uint32_t journal_blocks = kAutoJournal;
};

// Formats the device.  Destroys all content.
Error Mkfs(BlkIo* device, const MkfsOptions& options = {});

struct MountOptions {
  // Observability environment for the cache and journal counters; null
  // binds the process-global default.
  trace::TraceEnv* trace = nullptr;
  // Replay the journal's commit chain before exposing the volume.  Off only
  // for tests that want to inspect the unreplayed image.
  bool replay_journal = true;
};

class Offs final : public FileSystem, public RefCounted<Offs> {
 public:
  // Mounts the filesystem; fails with kCorrupt when the superblock does not
  // validate.  Replays the metadata journal first (crash recovery), then
  // clears the clean flag on disk until Unmount.
  static Error Mount(BlkIo* device, FileSystem** out_fs);
  static Error Mount(BlkIo* device, const MountOptions& options,
                     FileSystem** out_fs);

  // IUnknown
  Error Query(const Guid& iid, void** out) override;
  OSKIT_REFCOUNTED_BOILERPLATE()

  // FileSystem
  Error GetRoot(Dir** out_root) override;
  Error StatFs(FsStat* out_stat) override;
  Error Sync() override;
  Error Unmount() override;

  // ---- Internal operations used by the File/Dir wrappers ----
  Error ReadInode(uint64_t ino, DiskInode* out);
  Error WriteInode(uint64_t ino, const DiskInode& inode);
  Error AllocInode(uint16_t mode, uint64_t* out_ino);
  Error FreeInode(uint64_t ino);

  Error AllocBlock(uint32_t* out_block);
  Error FreeBlock(uint32_t block);

  // Maps file block index -> disk block; allocates missing blocks when
  // `alloc` (growing through single and double indirection).  A hole reads
  // as block 0 (callers substitute zeros).
  Error BMap(uint64_t ino, DiskInode* inode, uint32_t file_block, bool alloc,
             uint32_t* out_block);

  Error FileReadAt(uint64_t ino, void* buf, uint64_t offset, size_t amount,
                   size_t* out_actual);
  Error FileWriteAt(uint64_t ino, const void* buf, uint64_t offset, size_t amount,
                    size_t* out_actual);
  Error FileTruncate(uint64_t ino, uint64_t new_size);

  // Directory primitives (single components).
  Error DirLookup(uint64_t dir_ino, const char* name, uint64_t* out_ino);
  Error DirAdd(uint64_t dir_ino, const char* name, uint64_t ino, uint16_t type_bits);
  Error DirRemove(uint64_t dir_ino, const char* name);
  Error DirIsEmpty(uint64_t dir_ino, bool* out_empty);
  Error DirRead(uint64_t dir_ino, uint64_t* inout_offset, DirEntry* entries,
                size_t capacity, size_t* out_count);

  const SuperBlock& superblock() const { return sb_; }
  BlockCache& cache() { return *cache_; }
  uint64_t now() { return ++mtime_counter_; }
  bool unmounted() const { return unmounted_; }
  bool journaled() const { return journal_ != nullptr; }

  // Registered as "fs.journal.*" in the mount's trace environment.
  struct JournalCounters {
    trace::Counter commits;         // transactions written and flushed
    trace::Counter blocks_logged;   // block images across all commits
    trace::Counter overflows;       // batches too big: unjournaled fallback
    trace::Counter meta_ops;        // metadata operations noted
    trace::Counter replays;         // transactions redone at mount
    trace::Counter discarded_txns;  // torn transactions dropped at mount
  };
  const JournalCounters& journal_counters() const { return jcounters_; }

  // Called by the COM wrappers at each metadata-operation boundary: counts
  // the op and commits early when the open transaction nears the journal's
  // capacity (keeping every batch atomically commitable).
  Error NoteMetaOp();

  // Per-principal journal-transaction admission (src/secure).  `admit` runs
  // at the top of NoteMetaOp on journaled volumes, BEFORE the op's intent
  // blocks join the open transaction; a non-kOk return aborts the metadata
  // op with that error (the COM wrappers surface it unchanged).
  // `committed` runs each time the open transaction reaches the disk (or
  // drains empty) in Sync, so the accountant can credit outstanding
  // journal-txn charges.
  void SetMetaHooks(std::function<Error()> admit,
                    std::function<void()> committed) {
    meta_admit_ = std::move(admit);
    meta_committed_ = std::move(committed);
  }

  // ---- exposed for the File/Dir wrappers and white-box tests ----
  // MarkDirty for a METADATA block: also enlists it in the open journal
  // transaction (and thereby pins it against eviction until commit).
  void MetaDirty(uint32_t block);

 private:
  friend class RefCounted<Offs>;
  Offs(ComPtr<BlkIo> device, const SuperBlock& sb, trace::TraceEnv* trace);
  ~Offs();

  Error WriteSuperBlock();
  Error SetBitmapBit(uint32_t block, bool used);
  Error FindFreeBitmapBit(uint32_t* out_block);
  // Frees every data/indirect block at or beyond file block `from_fb`.
  Error TruncateBlocks(DiskInode* inode, uint32_t from_fb);

  ComPtr<BlkIo> device_;
  SuperBlock sb_;
  std::unique_ptr<BlockCache> cache_;
  std::unique_ptr<JournalWriter> journal_;  // null on unjournaled volumes
  std::set<uint32_t> txn_blocks_;  // the open transaction's metadata blocks
  std::function<Error()> meta_admit_;      // see SetMetaHooks
  std::function<void()> meta_committed_;
  JournalCounters jcounters_;
  trace::CounterBlock jcounters_binding_;
  uint64_t mtime_counter_ = 0;
  bool unmounted_ = false;
  uint32_t alloc_cursor_ = 0;  // rotor for block allocation
};

}  // namespace oskit::fs

#endif  // OSKIT_SRC_FS_FFS_H_
