// COM File/Dir wrappers over the offs core: the VFS-granularity interface
// (single pathname components) of §3.8.

#include <cstring>

#include "src/base/panic.h"
#include "src/fs/ffs.h"
#include "src/libc/string.h"

namespace oskit::fs {

namespace {

bool ValidComponent(const char* name) {
  if (name == nullptr || name[0] == '\0') {
    return false;
  }
  if (libc::Strlen(name) > kMaxNameLen) {
    return false;
  }
  return libc::Strchr(name, '/') == nullptr;
}

void FillStat(uint64_t ino, const DiskInode& inode, FileStat* out) {
  out->ino = ino;
  out->type = (inode.mode & kModeTypeMask) == kModeDirectory ? FileType::kDirectory
                                                             : FileType::kRegular;
  out->mode = inode.mode & 0777;
  out->nlink = inode.nlink;
  out->size = inode.size;
  out->blocks = static_cast<uint64_t>(inode.blocks) * (kBlockSize / 512);
  out->uid = inode.uid;
  out->gid = inode.gid;
  out->mtime = inode.mtime;
}

class OffsDir;

File* WrapInode(const ComPtr<Offs>& fs, uint64_t ino, uint16_t mode);

class OffsFile final : public File, public RefCounted<OffsFile> {
 public:
  OffsFile(ComPtr<Offs> fs, uint64_t ino) : fs_(std::move(fs)), ino_(ino) {}

  Error Query(const Guid& iid, void** out) override {
    if (iid == IUnknown::kIid || iid == File::kIid) {
      AddRef();
      *out = static_cast<File*>(this);
      return Error::kOk;
    }
    *out = nullptr;
    return Error::kNoInterface;
  }
  OSKIT_REFCOUNTED_BOILERPLATE()

  Error Read(void* buf, uint64_t offset, size_t amount, size_t* out_actual) override {
    if (fs_->unmounted()) {
      return Error::kBadF;
    }
    return fs_->FileReadAt(ino_, buf, offset, amount, out_actual);
  }

  Error Write(const void* buf, uint64_t offset, size_t amount,
              size_t* out_actual) override {
    if (fs_->unmounted()) {
      return Error::kBadF;
    }
    return fs_->FileWriteAt(ino_, buf, offset, amount, out_actual);
  }

  Error GetStat(FileStat* out_stat) override {
    DiskInode inode;
    Error err = fs_->ReadInode(ino_, &inode);
    if (!Ok(err)) {
      return err;
    }
    FillStat(ino_, inode, out_stat);
    return Error::kOk;
  }

  Error SetSize(uint64_t new_size) override {
    if (fs_->unmounted()) {
      return Error::kBadF;
    }
    Error err = fs_->NoteMetaOp();
    if (!Ok(err)) {
      return err;
    }
    return fs_->FileTruncate(ino_, new_size);
  }

  Error Sync() override { return fs_->Sync(); }

 private:
  friend class RefCounted<OffsFile>;
  ~OffsFile() = default;

  ComPtr<Offs> fs_;
  uint64_t ino_;
};

class OffsDir final : public Dir, public RefCounted<OffsDir> {
 public:
  OffsDir(ComPtr<Offs> fs, uint64_t ino) : fs_(std::move(fs)), ino_(ino) {}

  Error Query(const Guid& iid, void** out) override {
    if (iid == IUnknown::kIid || iid == File::kIid || iid == Dir::kIid) {
      AddRef();
      *out = static_cast<Dir*>(this);
      return Error::kOk;
    }
    *out = nullptr;
    return Error::kNoInterface;
  }
  OSKIT_REFCOUNTED_BOILERPLATE()

  // File surface on a directory object.
  Error Read(void*, uint64_t, size_t, size_t* out_actual) override {
    *out_actual = 0;
    return Error::kIsDir;
  }
  Error Write(const void*, uint64_t, size_t, size_t* out_actual) override {
    *out_actual = 0;
    return Error::kIsDir;
  }
  Error GetStat(FileStat* out_stat) override {
    DiskInode inode;
    Error err = fs_->ReadInode(ino_, &inode);
    if (!Ok(err)) {
      return err;
    }
    FillStat(ino_, inode, out_stat);
    return Error::kOk;
  }
  Error SetSize(uint64_t) override { return Error::kIsDir; }
  Error Sync() override { return fs_->Sync(); }

  // Dir surface.
  Error Lookup(const char* name, File** out_file) override {
    *out_file = nullptr;
    if (fs_->unmounted()) {
      return Error::kBadF;
    }
    if (!ValidComponent(name)) {
      return Error::kInval;
    }
    uint64_t target = 0;
    Error err = fs_->DirLookup(ino_, name, &target);
    if (!Ok(err)) {
      return err;
    }
    DiskInode inode;
    err = fs_->ReadInode(target, &inode);
    if (!Ok(err)) {
      return err;
    }
    *out_file = WrapInode(fs_, target, inode.mode);
    return Error::kOk;
  }

  Error Create(const char* name, uint32_t mode, File** out_file) override {
    *out_file = nullptr;
    if (fs_->unmounted()) {
      return Error::kBadF;
    }
    if (!ValidComponent(name) || libc::Strcmp(name, ".") == 0 ||
        libc::Strcmp(name, "..") == 0) {
      return Error::kInval;
    }
    uint64_t existing = 0;
    if (Ok(fs_->DirLookup(ino_, name, &existing))) {
      return Error::kExist;
    }
    Error err = fs_->NoteMetaOp();
    if (!Ok(err)) {
      return err;
    }
    uint64_t ino = 0;
    err = fs_->AllocInode(kModeRegular | (mode & 0777), &ino);
    if (!Ok(err)) {
      return err;
    }
    err = fs_->DirAdd(ino_, name, ino, kModeRegular);
    if (!Ok(err)) {
      fs_->FreeInode(ino);
      return err;
    }
    DiskInode inode;
    err = fs_->ReadInode(ino, &inode);
    if (!Ok(err)) {
      return err;
    }
    inode.nlink = 1;
    err = fs_->WriteInode(ino, inode);
    if (!Ok(err)) {
      return err;
    }
    *out_file = new OffsFile(fs_, ino);
    return Error::kOk;
  }

  Error Mkdir(const char* name, uint32_t mode) override {
    if (fs_->unmounted()) {
      return Error::kBadF;
    }
    if (!ValidComponent(name) || libc::Strcmp(name, ".") == 0 ||
        libc::Strcmp(name, "..") == 0) {
      return Error::kInval;
    }
    uint64_t existing = 0;
    if (Ok(fs_->DirLookup(ino_, name, &existing))) {
      return Error::kExist;
    }
    Error err = fs_->NoteMetaOp();
    if (!Ok(err)) {
      return err;
    }
    uint64_t ino = 0;
    err = fs_->AllocInode(kModeDirectory | (mode & 0777), &ino);
    if (!Ok(err)) {
      return err;
    }
    // Seed "." and "..".
    err = fs_->DirAdd(ino, ".", ino, kModeDirectory);
    if (Ok(err)) {
      err = fs_->DirAdd(ino, "..", ino_, kModeDirectory);
    }
    if (Ok(err)) {
      err = fs_->DirAdd(ino_, name, ino, kModeDirectory);
    }
    if (!Ok(err)) {
      fs_->FreeInode(ino);
      return err;
    }
    DiskInode inode;
    err = fs_->ReadInode(ino, &inode);
    if (!Ok(err)) {
      return err;
    }
    inode.nlink = 2;  // "." plus the parent's entry
    err = fs_->WriteInode(ino, inode);
    if (!Ok(err)) {
      return err;
    }
    // Parent gains a link from the child's "..".
    DiskInode parent;
    err = fs_->ReadInode(ino_, &parent);
    if (!Ok(err)) {
      return err;
    }
    parent.nlink += 1;
    return fs_->WriteInode(ino_, parent);
  }

  Error Unlink(const char* name) override {
    if (fs_->unmounted()) {
      return Error::kBadF;
    }
    if (!ValidComponent(name)) {
      return Error::kInval;
    }
    uint64_t ino = 0;
    Error err = fs_->DirLookup(ino_, name, &ino);
    if (!Ok(err)) {
      return err;
    }
    DiskInode inode;
    err = fs_->ReadInode(ino, &inode);
    if (!Ok(err)) {
      return err;
    }
    if ((inode.mode & kModeTypeMask) == kModeDirectory) {
      return Error::kIsDir;
    }
    err = fs_->NoteMetaOp();
    if (!Ok(err)) {
      return err;
    }
    err = fs_->DirRemove(ino_, name);
    if (!Ok(err)) {
      return err;
    }
    if (inode.nlink <= 1) {
      return fs_->FreeInode(ino);
    }
    inode.nlink -= 1;
    return fs_->WriteInode(ino, inode);
  }

  Error Rmdir(const char* name) override {
    if (fs_->unmounted()) {
      return Error::kBadF;
    }
    if (!ValidComponent(name) || libc::Strcmp(name, ".") == 0 ||
        libc::Strcmp(name, "..") == 0) {
      return Error::kInval;
    }
    uint64_t ino = 0;
    Error err = fs_->DirLookup(ino_, name, &ino);
    if (!Ok(err)) {
      return err;
    }
    DiskInode inode;
    err = fs_->ReadInode(ino, &inode);
    if (!Ok(err)) {
      return err;
    }
    if ((inode.mode & kModeTypeMask) != kModeDirectory) {
      return Error::kNotDir;
    }
    bool empty = false;
    err = fs_->DirIsEmpty(ino, &empty);
    if (!Ok(err)) {
      return err;
    }
    if (!empty) {
      return Error::kNotEmpty;
    }
    err = fs_->NoteMetaOp();
    if (!Ok(err)) {
      return err;
    }
    err = fs_->DirRemove(ino_, name);
    if (!Ok(err)) {
      return err;
    }
    err = fs_->FreeInode(ino);
    if (!Ok(err)) {
      return err;
    }
    DiskInode parent;
    err = fs_->ReadInode(ino_, &parent);
    if (!Ok(err)) {
      return err;
    }
    parent.nlink -= 1;  // the child's ".." is gone
    return fs_->WriteInode(ino_, parent);
  }

  Error Rename(const char* old_name, Dir* new_dir, const char* new_name) override {
    if (fs_->unmounted()) {
      return Error::kBadF;
    }
    if (!ValidComponent(old_name) || !ValidComponent(new_name)) {
      return Error::kInval;
    }
    auto* dest = static_cast<OffsDir*>(new_dir);
    if (dest->fs_.get() != fs_.get()) {
      return Error::kXDev;
    }
    uint64_t ino = 0;
    Error err = fs_->DirLookup(ino_, old_name, &ino);
    if (!Ok(err)) {
      return err;
    }
    uint64_t existing = 0;
    if (Ok(fs_->DirLookup(dest->ino_, new_name, &existing))) {
      return Error::kExist;
    }
    err = fs_->NoteMetaOp();
    if (!Ok(err)) {
      return err;
    }
    DiskInode inode;
    err = fs_->ReadInode(ino, &inode);
    if (!Ok(err)) {
      return err;
    }
    uint16_t type = inode.mode & kModeTypeMask;
    if (type == kModeDirectory) {
      // A directory must not become its own ancestor (POSIX EINVAL):
      // climb the destination's ".." chain looking for the moving inode.
      uint64_t walk = dest->ino_;
      for (int depth = 0; depth < 1024; ++depth) {
        if (walk == ino) {
          return Error::kInval;
        }
        if (walk == kRootIno) {
          break;
        }
        uint64_t parent = 0;
        err = fs_->DirLookup(walk, "..", &parent);
        if (!Ok(err)) {
          return err;
        }
        walk = parent;
      }
    }
    err = fs_->DirAdd(dest->ino_, new_name, ino, type);
    if (!Ok(err)) {
      return err;
    }
    err = fs_->DirRemove(ino_, old_name);
    if (!Ok(err)) {
      return err;
    }
    if (type == kModeDirectory && dest->ino_ != ino_) {
      // Fix "..", and the parents' link counts.
      err = fs_->DirRemove(ino, "..");
      if (Ok(err)) {
        err = fs_->DirAdd(ino, "..", dest->ino_, kModeDirectory);
      }
      if (!Ok(err)) {
        return err;
      }
      DiskInode old_parent;
      err = fs_->ReadInode(ino_, &old_parent);
      if (!Ok(err)) {
        return err;
      }
      old_parent.nlink -= 1;
      err = fs_->WriteInode(ino_, old_parent);
      if (!Ok(err)) {
        return err;
      }
      DiskInode new_parent;
      err = fs_->ReadInode(dest->ino_, &new_parent);
      if (!Ok(err)) {
        return err;
      }
      new_parent.nlink += 1;
      err = fs_->WriteInode(dest->ino_, new_parent);
      if (!Ok(err)) {
        return err;
      }
    }
    return Error::kOk;
  }

  Error ReadDir(uint64_t* inout_offset, DirEntry* entries, size_t capacity,
                size_t* out_count) override {
    if (fs_->unmounted()) {
      return Error::kBadF;
    }
    return fs_->DirRead(ino_, inout_offset, entries, capacity, out_count);
  }

 private:
  friend class RefCounted<OffsDir>;
  ~OffsDir() = default;

  ComPtr<Offs> fs_;
  uint64_t ino_;
};

File* WrapInode(const ComPtr<Offs>& fs, uint64_t ino, uint16_t mode) {
  if ((mode & kModeTypeMask) == kModeDirectory) {
    return new OffsDir(fs, ino);
  }
  return new OffsFile(fs, ino);
}

}  // namespace

Error Offs::GetRoot(Dir** out_root) {
  *out_root = nullptr;
  if (unmounted_) {
    return Error::kBadF;
  }
  *out_root = new OffsDir(ComPtr<Offs>::Retain(this), kRootIno);
  return Error::kOk;
}

}  // namespace oskit::fs
