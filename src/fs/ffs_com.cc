// COM File/Dir wrappers over the offs core: the VFS-granularity interface
// (single pathname components) of §3.8.

#include <cstring>
#include <vector>

#include "src/base/panic.h"
#include "src/com/bufio.h"
#include "src/fs/ffs.h"
#include "src/libc/string.h"

namespace oskit::fs {

namespace {

bool ValidComponent(const char* name) {
  if (name == nullptr || name[0] == '\0') {
    return false;
  }
  if (libc::Strlen(name) > kMaxNameLen) {
    return false;
  }
  return libc::Strchr(name, '/') == nullptr;
}

void FillStat(uint64_t ino, const DiskInode& inode, FileStat* out) {
  out->ino = ino;
  out->type = (inode.mode & kModeTypeMask) == kModeDirectory ? FileType::kDirectory
                                                             : FileType::kRegular;
  out->mode = inode.mode & 0777;
  out->nlink = inode.nlink;
  out->size = inode.size;
  out->blocks = static_cast<uint64_t>(inode.blocks) * (kBlockSize / 512);
  out->uid = inode.uid;
  out->gid = inode.gid;
  out->mtime = inode.mtime;
}

class OffsDir;

File* WrapInode(const ComPtr<Offs>& fs, uint64_t ino, uint16_t mode);

// Shared all-zero block backing file holes in a Vectors() view: a hole has
// no disk block to pin, so every hole segment points here.
const uint8_t* ZeroBlock() {
  static const uint8_t kZeros[kBlockSize] = {};
  return kZeros;
}

// BufIoVec tear-off over a regular file — the sendfile source.  Vectors()
// maps the byte range through BMap and pins each covered block in the block
// cache (BlockCache::GetRef), handing out pointers directly into the cache's
// own storage; the network stack grafts those pointers into external-storage
// mbufs and the bytes reach the wire without ever being copied.  The pin is
// dropped by UnmapVectors once TCP has acknowledged delivery.
class FileVec final : public BufIoVec, public RefCounted<FileVec> {
 public:
  FileVec(ComPtr<Offs> fs, uint64_t ino) : fs_(std::move(fs)), ino_(ino) {}

  Error Query(const Guid& iid, void** out) override {
    if (iid == IUnknown::kIid || iid == BlkIo::kIid || iid == BufIo::kIid ||
        iid == BufIoVec::kIid) {
      AddRef();
      *out = static_cast<BufIoVec*>(this);
      return Error::kOk;
    }
    *out = nullptr;
    return Error::kNoInterface;
  }
  OSKIT_REFCOUNTED_BOILERPLATE()

  // BlkIo surface (byte-granular: a file has no device alignment demands).
  uint32_t GetBlockSize() override { return 1; }
  Error Read(void* buf, off_t64 offset, size_t amount, size_t* out_actual) override {
    if (fs_->unmounted()) {
      return Error::kBadF;
    }
    return fs_->FileReadAt(ino_, buf, offset, amount, out_actual);
  }
  Error Write(const void* buf, off_t64 offset, size_t amount,
              size_t* out_actual) override {
    if (fs_->unmounted()) {
      return Error::kBadF;
    }
    return fs_->FileWriteAt(ino_, buf, offset, amount, out_actual);
  }
  Error GetSize(off_t64* out_size) override {
    DiskInode inode;
    Error err = fs_->ReadInode(ino_, &inode);
    if (!Ok(err)) {
      return err;
    }
    *out_size = inode.size;
    return Error::kOk;
  }
  Error SetSize(off_t64) override { return Error::kNotImpl; }

  // BufIo surface.  A file's bytes are scattered across cache blocks, so a
  // single contiguous Map is only honest within one block — callers wanting
  // more use Vectors; kNotImpl keeps them on that path.
  Error Map(void**, off_t64, size_t) override { return Error::kNotImpl; }
  Error Unmap(void*, off_t64, size_t) override { return Error::kInval; }
  Error Wire() override { return Error::kOk; }
  Error Unwire() override { return Error::kOk; }

  // BufIoVec surface.
  Error Vectors(BufIoSegment* out_segs, size_t cap, off_t64 offset,
                size_t amount, size_t* out_count) override {
    *out_count = 0;
    if (fs_->unmounted()) {
      return Error::kBadF;
    }
    DiskInode inode;
    Error err = fs_->ReadInode(ino_, &inode);
    if (!Ok(err)) {
      return err;
    }
    if (offset > inode.size || amount > inode.size - offset) {
      return Error::kOutOfRange;
    }
    if (amount == 0) {
      return Error::kOk;
    }
    uint32_t first_fb = static_cast<uint32_t>(offset / kBlockSize);
    uint32_t last_fb = static_cast<uint32_t>((offset + amount - 1) / kBlockSize);
    if (static_cast<size_t>(last_fb - first_fb) + 1 > cap) {
      return Error::kNotImpl;  // range needs more pieces than the caller holds
    }
    Pin pin{offset, amount, {}};
    size_t produced = 0;
    uint64_t cur = offset;
    size_t remaining = amount;
    for (uint32_t fb = first_fb; fb <= last_fb; ++fb) {
      uint32_t disk_block = 0;
      err = fs_->BMap(ino_, &inode, fb, /*alloc=*/false, &disk_block);
      if (Ok(err)) {
        size_t in_block = static_cast<size_t>(cur % kBlockSize);
        size_t take = kBlockSize - in_block;
        if (take > remaining) {
          take = remaining;
        }
        const uint8_t* data = nullptr;
        if (disk_block == 0) {
          data = ZeroBlock();  // hole: nothing on disk to pin
        } else {
          err = fs_->cache().GetRef(disk_block, &data);
          if (Ok(err)) {
            pin.blocks.push_back(disk_block);
          }
        }
        if (Ok(err)) {
          out_segs[produced++] = {data + in_block, take};
          cur += take;
          remaining -= take;
        }
      }
      if (!Ok(err)) {
        for (uint32_t pinned : pin.blocks) {
          fs_->cache().PutRef(pinned);
        }
        return err;
      }
    }
    pins_.push_back(std::move(pin));
    *out_count = produced;
    return Error::kOk;
  }

  Error UnmapVectors(off_t64 offset, size_t amount) override {
    for (auto it = pins_.begin(); it != pins_.end(); ++it) {
      if (it->offset == offset && it->amount == amount) {
        for (uint32_t block : it->blocks) {
          fs_->cache().PutRef(block);
        }
        pins_.erase(it);
        return Error::kOk;
      }
    }
    return Error::kInval;
  }

 private:
  friend class RefCounted<FileVec>;
  ~FileVec() {
    // A dropped object releases whatever its clients forgot to.
    for (const Pin& pin : pins_) {
      for (uint32_t block : pin.blocks) {
        fs_->cache().PutRef(block);
      }
    }
  }

  struct Pin {
    off_t64 offset;
    size_t amount;
    std::vector<uint32_t> blocks;
  };

  ComPtr<Offs> fs_;
  uint64_t ino_;
  std::vector<Pin> pins_;
};

class OffsFile final : public File, public RefCounted<OffsFile> {
 public:
  OffsFile(ComPtr<Offs> fs, uint64_t ino) : fs_(std::move(fs)), ino_(ino) {}

  Error Query(const Guid& iid, void** out) override {
    if (iid == IUnknown::kIid || iid == File::kIid) {
      AddRef();
      *out = static_cast<File*>(this);
      return Error::kOk;
    }
    if (iid == BufIo::kIid || iid == BufIoVec::kIid) {
      // Zero-copy capability, granted as a tear-off (§4.4.2 evolution: File
      // consumers never see it; sendfile consumers Query for it).
      *out = static_cast<BufIoVec*>(new FileVec(fs_, ino_));
      return Error::kOk;
    }
    *out = nullptr;
    return Error::kNoInterface;
  }
  OSKIT_REFCOUNTED_BOILERPLATE()

  Error Read(void* buf, uint64_t offset, size_t amount, size_t* out_actual) override {
    if (fs_->unmounted()) {
      return Error::kBadF;
    }
    return fs_->FileReadAt(ino_, buf, offset, amount, out_actual);
  }

  Error Write(const void* buf, uint64_t offset, size_t amount,
              size_t* out_actual) override {
    if (fs_->unmounted()) {
      return Error::kBadF;
    }
    return fs_->FileWriteAt(ino_, buf, offset, amount, out_actual);
  }

  Error GetStat(FileStat* out_stat) override {
    DiskInode inode;
    Error err = fs_->ReadInode(ino_, &inode);
    if (!Ok(err)) {
      return err;
    }
    FillStat(ino_, inode, out_stat);
    return Error::kOk;
  }

  Error SetSize(uint64_t new_size) override {
    if (fs_->unmounted()) {
      return Error::kBadF;
    }
    Error err = fs_->NoteMetaOp();
    if (!Ok(err)) {
      return err;
    }
    return fs_->FileTruncate(ino_, new_size);
  }

  Error Sync() override { return fs_->Sync(); }

 private:
  friend class RefCounted<OffsFile>;
  ~OffsFile() = default;

  ComPtr<Offs> fs_;
  uint64_t ino_;
};

class OffsDir final : public Dir, public RefCounted<OffsDir> {
 public:
  OffsDir(ComPtr<Offs> fs, uint64_t ino) : fs_(std::move(fs)), ino_(ino) {}

  Error Query(const Guid& iid, void** out) override {
    if (iid == IUnknown::kIid || iid == File::kIid || iid == Dir::kIid) {
      AddRef();
      *out = static_cast<Dir*>(this);
      return Error::kOk;
    }
    *out = nullptr;
    return Error::kNoInterface;
  }
  OSKIT_REFCOUNTED_BOILERPLATE()

  // File surface on a directory object.
  Error Read(void*, uint64_t, size_t, size_t* out_actual) override {
    *out_actual = 0;
    return Error::kIsDir;
  }
  Error Write(const void*, uint64_t, size_t, size_t* out_actual) override {
    *out_actual = 0;
    return Error::kIsDir;
  }
  Error GetStat(FileStat* out_stat) override {
    DiskInode inode;
    Error err = fs_->ReadInode(ino_, &inode);
    if (!Ok(err)) {
      return err;
    }
    FillStat(ino_, inode, out_stat);
    return Error::kOk;
  }
  Error SetSize(uint64_t) override { return Error::kIsDir; }
  Error Sync() override { return fs_->Sync(); }

  // Dir surface.
  Error Lookup(const char* name, File** out_file) override {
    *out_file = nullptr;
    if (fs_->unmounted()) {
      return Error::kBadF;
    }
    if (!ValidComponent(name)) {
      return Error::kInval;
    }
    uint64_t target = 0;
    Error err = fs_->DirLookup(ino_, name, &target);
    if (!Ok(err)) {
      return err;
    }
    DiskInode inode;
    err = fs_->ReadInode(target, &inode);
    if (!Ok(err)) {
      return err;
    }
    *out_file = WrapInode(fs_, target, inode.mode);
    return Error::kOk;
  }

  Error Create(const char* name, uint32_t mode, File** out_file) override {
    *out_file = nullptr;
    if (fs_->unmounted()) {
      return Error::kBadF;
    }
    if (!ValidComponent(name) || libc::Strcmp(name, ".") == 0 ||
        libc::Strcmp(name, "..") == 0) {
      return Error::kInval;
    }
    uint64_t existing = 0;
    if (Ok(fs_->DirLookup(ino_, name, &existing))) {
      return Error::kExist;
    }
    Error err = fs_->NoteMetaOp();
    if (!Ok(err)) {
      return err;
    }
    uint64_t ino = 0;
    err = fs_->AllocInode(kModeRegular | (mode & 0777), &ino);
    if (!Ok(err)) {
      return err;
    }
    err = fs_->DirAdd(ino_, name, ino, kModeRegular);
    if (!Ok(err)) {
      fs_->FreeInode(ino);
      return err;
    }
    DiskInode inode;
    err = fs_->ReadInode(ino, &inode);
    if (!Ok(err)) {
      return err;
    }
    inode.nlink = 1;
    err = fs_->WriteInode(ino, inode);
    if (!Ok(err)) {
      return err;
    }
    *out_file = new OffsFile(fs_, ino);
    return Error::kOk;
  }

  Error Mkdir(const char* name, uint32_t mode) override {
    if (fs_->unmounted()) {
      return Error::kBadF;
    }
    if (!ValidComponent(name) || libc::Strcmp(name, ".") == 0 ||
        libc::Strcmp(name, "..") == 0) {
      return Error::kInval;
    }
    uint64_t existing = 0;
    if (Ok(fs_->DirLookup(ino_, name, &existing))) {
      return Error::kExist;
    }
    Error err = fs_->NoteMetaOp();
    if (!Ok(err)) {
      return err;
    }
    uint64_t ino = 0;
    err = fs_->AllocInode(kModeDirectory | (mode & 0777), &ino);
    if (!Ok(err)) {
      return err;
    }
    // Seed "." and "..".
    err = fs_->DirAdd(ino, ".", ino, kModeDirectory);
    if (Ok(err)) {
      err = fs_->DirAdd(ino, "..", ino_, kModeDirectory);
    }
    if (Ok(err)) {
      err = fs_->DirAdd(ino_, name, ino, kModeDirectory);
    }
    if (!Ok(err)) {
      fs_->FreeInode(ino);
      return err;
    }
    DiskInode inode;
    err = fs_->ReadInode(ino, &inode);
    if (!Ok(err)) {
      return err;
    }
    inode.nlink = 2;  // "." plus the parent's entry
    err = fs_->WriteInode(ino, inode);
    if (!Ok(err)) {
      return err;
    }
    // Parent gains a link from the child's "..".
    DiskInode parent;
    err = fs_->ReadInode(ino_, &parent);
    if (!Ok(err)) {
      return err;
    }
    parent.nlink += 1;
    return fs_->WriteInode(ino_, parent);
  }

  Error Unlink(const char* name) override {
    if (fs_->unmounted()) {
      return Error::kBadF;
    }
    if (!ValidComponent(name)) {
      return Error::kInval;
    }
    uint64_t ino = 0;
    Error err = fs_->DirLookup(ino_, name, &ino);
    if (!Ok(err)) {
      return err;
    }
    DiskInode inode;
    err = fs_->ReadInode(ino, &inode);
    if (!Ok(err)) {
      return err;
    }
    if ((inode.mode & kModeTypeMask) == kModeDirectory) {
      return Error::kIsDir;
    }
    err = fs_->NoteMetaOp();
    if (!Ok(err)) {
      return err;
    }
    err = fs_->DirRemove(ino_, name);
    if (!Ok(err)) {
      return err;
    }
    if (inode.nlink <= 1) {
      return fs_->FreeInode(ino);
    }
    inode.nlink -= 1;
    return fs_->WriteInode(ino, inode);
  }

  Error Rmdir(const char* name) override {
    if (fs_->unmounted()) {
      return Error::kBadF;
    }
    if (!ValidComponent(name) || libc::Strcmp(name, ".") == 0 ||
        libc::Strcmp(name, "..") == 0) {
      return Error::kInval;
    }
    uint64_t ino = 0;
    Error err = fs_->DirLookup(ino_, name, &ino);
    if (!Ok(err)) {
      return err;
    }
    DiskInode inode;
    err = fs_->ReadInode(ino, &inode);
    if (!Ok(err)) {
      return err;
    }
    if ((inode.mode & kModeTypeMask) != kModeDirectory) {
      return Error::kNotDir;
    }
    bool empty = false;
    err = fs_->DirIsEmpty(ino, &empty);
    if (!Ok(err)) {
      return err;
    }
    if (!empty) {
      return Error::kNotEmpty;
    }
    err = fs_->NoteMetaOp();
    if (!Ok(err)) {
      return err;
    }
    err = fs_->DirRemove(ino_, name);
    if (!Ok(err)) {
      return err;
    }
    err = fs_->FreeInode(ino);
    if (!Ok(err)) {
      return err;
    }
    DiskInode parent;
    err = fs_->ReadInode(ino_, &parent);
    if (!Ok(err)) {
      return err;
    }
    parent.nlink -= 1;  // the child's ".." is gone
    return fs_->WriteInode(ino_, parent);
  }

  Error Rename(const char* old_name, Dir* new_dir, const char* new_name) override {
    if (fs_->unmounted()) {
      return Error::kBadF;
    }
    if (!ValidComponent(old_name) || !ValidComponent(new_name)) {
      return Error::kInval;
    }
    auto* dest = static_cast<OffsDir*>(new_dir);
    if (dest->fs_.get() != fs_.get()) {
      return Error::kXDev;
    }
    uint64_t ino = 0;
    Error err = fs_->DirLookup(ino_, old_name, &ino);
    if (!Ok(err)) {
      return err;
    }
    uint64_t existing = 0;
    if (Ok(fs_->DirLookup(dest->ino_, new_name, &existing))) {
      return Error::kExist;
    }
    err = fs_->NoteMetaOp();
    if (!Ok(err)) {
      return err;
    }
    DiskInode inode;
    err = fs_->ReadInode(ino, &inode);
    if (!Ok(err)) {
      return err;
    }
    uint16_t type = inode.mode & kModeTypeMask;
    if (type == kModeDirectory) {
      // A directory must not become its own ancestor (POSIX EINVAL):
      // climb the destination's ".." chain looking for the moving inode.
      uint64_t walk = dest->ino_;
      for (int depth = 0; depth < 1024; ++depth) {
        if (walk == ino) {
          return Error::kInval;
        }
        if (walk == kRootIno) {
          break;
        }
        uint64_t parent = 0;
        err = fs_->DirLookup(walk, "..", &parent);
        if (!Ok(err)) {
          return err;
        }
        walk = parent;
      }
    }
    err = fs_->DirAdd(dest->ino_, new_name, ino, type);
    if (!Ok(err)) {
      return err;
    }
    err = fs_->DirRemove(ino_, old_name);
    if (!Ok(err)) {
      return err;
    }
    if (type == kModeDirectory && dest->ino_ != ino_) {
      // Fix "..", and the parents' link counts.
      err = fs_->DirRemove(ino, "..");
      if (Ok(err)) {
        err = fs_->DirAdd(ino, "..", dest->ino_, kModeDirectory);
      }
      if (!Ok(err)) {
        return err;
      }
      DiskInode old_parent;
      err = fs_->ReadInode(ino_, &old_parent);
      if (!Ok(err)) {
        return err;
      }
      old_parent.nlink -= 1;
      err = fs_->WriteInode(ino_, old_parent);
      if (!Ok(err)) {
        return err;
      }
      DiskInode new_parent;
      err = fs_->ReadInode(dest->ino_, &new_parent);
      if (!Ok(err)) {
        return err;
      }
      new_parent.nlink += 1;
      err = fs_->WriteInode(dest->ino_, new_parent);
      if (!Ok(err)) {
        return err;
      }
    }
    return Error::kOk;
  }

  Error ReadDir(uint64_t* inout_offset, DirEntry* entries, size_t capacity,
                size_t* out_count) override {
    if (fs_->unmounted()) {
      return Error::kBadF;
    }
    return fs_->DirRead(ino_, inout_offset, entries, capacity, out_count);
  }

 private:
  friend class RefCounted<OffsDir>;
  ~OffsDir() = default;

  ComPtr<Offs> fs_;
  uint64_t ino_;
};

File* WrapInode(const ComPtr<Offs>& fs, uint64_t ino, uint16_t mode) {
  if ((mode & kModeTypeMask) == kModeDirectory) {
    return new OffsDir(fs, ino);
  }
  return new OffsFile(fs, ino);
}

}  // namespace

Error Offs::GetRoot(Dir** out_root) {
  *out_root = nullptr;
  if (unmounted_) {
    return Error::kBadF;
  }
  *out_root = new OffsDir(ComPtr<Offs>::Retain(this), kRootIno);
  return Error::kOk;
}

}  // namespace oskit::fs
