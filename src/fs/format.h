// On-disk format of the OSKit-cpp filesystem ("offs"), an FFS-style layout
// standing in for the encapsulated NetBSD FFS (§3.8).
//
// Little-endian throughout.  Layout, in 4 KB blocks:
//   block 0:              superblock
//   blocks [1, 1+B):      block-allocation bitmap (1 bit per block)
//   blocks [1+B, 1+B+I):  inode table (32 inodes of 128 bytes per block)
//   blocks [data_start,…: file data
//
// Inodes address 10 direct blocks, one single-indirect and one
// double-indirect block (4 KB / 4-byte entries = 1024 pointers per level),
// for a maximum file size of 10+1024+1024² blocks ≈ 4 GB.

#ifndef OSKIT_SRC_FS_FORMAT_H_
#define OSKIT_SRC_FS_FORMAT_H_

#include <cstdint>

namespace oskit::fs {

inline constexpr uint32_t kFsMagic = 0x0f500f50;
inline constexpr uint32_t kFsVersion = 1;
inline constexpr uint32_t kBlockSize = 4096;
inline constexpr uint32_t kInodeSize = 128;
inline constexpr uint32_t kInodesPerBlock = kBlockSize / kInodeSize;
inline constexpr uint32_t kDirectBlocks = 10;
inline constexpr uint32_t kPointersPerBlock = kBlockSize / 4;
inline constexpr uint64_t kRootIno = 1;

// Directory entries are fixed-size records inside directory file data.
inline constexpr uint32_t kDirEntrySize = 64;
inline constexpr uint32_t kMaxNameLen = 54 - 1;  // NUL-terminated in storage

// Inode mode: type in the high bits, permissions in the low 12.
inline constexpr uint16_t kModeTypeMask = 0xf000;
inline constexpr uint16_t kModeRegular = 0x8000;
inline constexpr uint16_t kModeDirectory = 0x4000;
inline constexpr uint16_t kModeFree = 0x0000;

struct SuperBlock {
  uint32_t magic = kFsMagic;
  uint32_t version = kFsVersion;
  uint32_t block_size = kBlockSize;
  uint32_t total_blocks = 0;
  uint32_t inode_count = 0;
  uint32_t bitmap_start = 0;   // first bitmap block
  uint32_t bitmap_blocks = 0;
  uint32_t itable_start = 0;   // first inode-table block
  uint32_t itable_blocks = 0;
  uint32_t data_start = 0;     // first data block
  uint32_t free_blocks = 0;
  uint32_t free_inodes = 0;
  uint32_t clean = 1;          // cleared while mounted read-write
  // Write-ahead journal region, [journal_start, journal_start+journal_blocks).
  // Zero blocks means the volume was formatted without a journal (the crash
  // campaign's ablation mode).  Appended after `clean`, so images written by
  // older tools read back with journal_blocks == 0 — no version bump needed.
  uint32_t journal_start = 0;
  uint32_t journal_blocks = 0;
};

struct DiskInode {
  uint16_t mode = 0;
  uint16_t nlink = 0;
  uint32_t uid = 0;
  uint32_t gid = 0;
  uint64_t size = 0;
  uint64_t mtime = 0;
  uint32_t direct[kDirectBlocks] = {};
  uint32_t indirect = 0;
  uint32_t double_indirect = 0;
  uint32_t blocks = 0;  // data+indirect blocks held (fsck cross-check)
  uint8_t reserved[44] = {};
};

static_assert(sizeof(DiskInode) == kInodeSize, "inode layout drift");

struct DiskDirEntry {
  uint64_t ino = 0;       // 0 means the slot is empty
  uint8_t type = 0;       // kModeRegular/kModeDirectory high nibble (>> 12)
  uint8_t name_len = 0;
  char name[kMaxNameLen + 1] = {};
};

static_assert(sizeof(DiskDirEntry) == kDirEntrySize, "dirent layout drift");

}  // namespace oskit::fs

#endif  // OSKIT_SRC_FS_FORMAT_H_
