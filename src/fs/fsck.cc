#include "src/fs/fsck.h"

#include <cstring>
#include <deque>
#include <map>

#include "src/fs/format.h"
#include "src/fs/journal.h"
#include "src/libc/format.h"
#include "src/libc/string.h"

namespace oskit::fs {

namespace {

class Checker {
 public:
  Checker(BlkIo* device, const FsckOptions& options)
      : device_(device), options_(options) {}

  FsckReport Run() {
    if (!LoadSuperBlock()) {
      return report_;
    }
    report_.superblock_valid = true;
    report_.was_clean = sb_.clean != 0;

    CheckJournal();
    if (options_.replay_journal && report_.journal_replayed_txns > 0) {
      // Replay rewrote metadata (possibly block 0 itself): re-read the
      // superblock and check the repaired image.
      if (!LoadSuperBlock()) {
        return report_;
      }
      report_.was_clean = sb_.clean != 0;
    }

    block_seen_.assign(sb_.total_blocks, false);
    inode_links_.clear();

    // Metadata blocks are implicitly in use.
    for (uint32_t b = 0; b < sb_.data_start; ++b) {
      block_seen_[b] = true;
    }

    WalkTree();
    CheckInodeTable();
    CheckBitmap();

    report_.consistent = report_.problems.empty();
    return report_;
  }

 private:
  void Problem(const char* format, ...) __attribute__((format(printf, 2, 3))) {
    char buf[256];
    va_list args;
    va_start(args, format);
    libc::Vsnprintf(buf, sizeof(buf), format, args);
    va_end(args);
    report_.problems.emplace_back(buf);
  }

  bool LoadSuperBlock() {
    uint8_t block[kBlockSize];
    size_t actual = 0;
    if (!Ok(device_->Read(block, 0, kBlockSize, &actual)) || actual != kBlockSize) {
      report_.problems.emplace_back("cannot read superblock");
      return false;
    }
    std::memcpy(&sb_, block, sizeof(sb_));
    if (sb_.magic != kFsMagic || sb_.version != kFsVersion ||
        sb_.block_size != kBlockSize) {
      report_.problems.emplace_back("bad superblock magic/version");
      return false;
    }
    return true;
  }

  void CheckJournal() {
    if (sb_.journal_blocks == 0) {
      return;
    }
    if (sb_.journal_blocks < kMinJournalBlocks ||
        sb_.journal_start < sb_.itable_start ||
        sb_.journal_start + sb_.journal_blocks > sb_.data_start) {
      Problem("journal region [%u,+%u) does not fit the metadata area",
              sb_.journal_start, sb_.journal_blocks);
      return;
    }
    JournalReplayStats stats;
    Error err = JournalReplay(device_, sb_, options_.replay_journal, &stats);
    if (!Ok(err)) {
      Problem("journal superblock failed validation");
      return;
    }
    report_.journal_present = stats.journal_present;
    report_.journal_discarded_txns = stats.discarded_txns;
    if (options_.replay_journal) {
      report_.journal_replayed_txns = stats.replayed_txns;
    } else {
      report_.journal_pending_txns = stats.replayed_txns;
      if (stats.replayed_txns > 0) {
        // Committed-but-unapplied transactions mean the home-location
        // metadata may be arbitrarily stale; checking it without replay
        // would report phantom corruption.
        Problem("journal has %u unapplied transactions (run with replay)",
                stats.replayed_txns);
      }
    }
  }

  bool ReadInodeRaw(uint64_t ino, DiskInode* out) {
    if (ino == 0 || ino >= sb_.inode_count) {
      return false;
    }
    uint32_t block = sb_.itable_start + static_cast<uint32_t>(ino / kInodesPerBlock);
    uint8_t data[kBlockSize];
    size_t actual = 0;
    if (!Ok(device_->Read(data, static_cast<off_t64>(block) * kBlockSize, kBlockSize,
                          &actual))) {
      return false;
    }
    std::memcpy(out, data + (ino % kInodesPerBlock) * kInodeSize, sizeof(DiskInode));
    return true;
  }

  bool ReadBlockRaw(uint32_t block, uint8_t* out) {
    size_t actual = 0;
    return Ok(device_->Read(out, static_cast<off_t64>(block) * kBlockSize, kBlockSize,
                            &actual)) &&
           actual == kBlockSize;
  }

  // Claims a block for `ino`; reports double-claims and range errors.
  bool Claim(uint64_t ino, uint32_t block) {
    if (block < sb_.data_start || block >= sb_.total_blocks) {
      Problem("inode %llu references out-of-range block %u",
              static_cast<unsigned long long>(ino), block);
      return false;
    }
    if (block_seen_[block]) {
      Problem("block %u multiply claimed (by inode %llu)", block,
              static_cast<unsigned long long>(ino));
      return false;
    }
    block_seen_[block] = true;
    ++report_.blocks_in_use;
    return true;
  }

  // Enumerates all blocks held by the inode (data + indirect), claiming
  // each, and returns the count.
  uint32_t ClaimInodeBlocks(uint64_t ino, const DiskInode& inode) {
    uint32_t held = 0;
    for (uint32_t i = 0; i < kDirectBlocks; ++i) {
      if (inode.direct[i] != 0 && Claim(ino, inode.direct[i])) {
        ++held;
      }
    }
    uint8_t table[kBlockSize];
    if (inode.indirect != 0 && Claim(ino, inode.indirect)) {
      ++held;
      if (ReadBlockRaw(inode.indirect, table)) {
        for (uint32_t i = 0; i < kPointersPerBlock; ++i) {
          uint32_t slot = 0;
          std::memcpy(&slot, table + i * 4, 4);
          if (slot != 0 && Claim(ino, slot)) {
            ++held;
          }
        }
      }
    }
    if (inode.double_indirect != 0 && Claim(ino, inode.double_indirect)) {
      ++held;
      uint8_t outer[kBlockSize];
      if (ReadBlockRaw(inode.double_indirect, outer)) {
        for (uint32_t o = 0; o < kPointersPerBlock; ++o) {
          uint32_t mid = 0;
          std::memcpy(&mid, outer + o * 4, 4);
          if (mid == 0) {
            continue;
          }
          if (Claim(ino, mid)) {
            ++held;
          }
          if (ReadBlockRaw(mid, table)) {
            for (uint32_t i = 0; i < kPointersPerBlock; ++i) {
              uint32_t slot = 0;
              std::memcpy(&slot, table + i * 4, 4);
              if (slot != 0 && Claim(ino, slot)) {
                ++held;
              }
            }
          }
        }
      }
    }
    return held;
  }

  void WalkTree() {
    std::deque<uint64_t> queue;
    std::map<uint64_t, bool> visited;
    queue.push_back(kRootIno);
    while (!queue.empty()) {
      uint64_t ino = queue.front();
      queue.pop_front();
      if (visited.count(ino) > 0) {
        continue;
      }
      visited[ino] = true;

      DiskInode inode;
      if (!ReadInodeRaw(ino, &inode)) {
        Problem("unreadable inode %llu", static_cast<unsigned long long>(ino));
        continue;
      }
      uint16_t type = inode.mode & kModeTypeMask;
      if (type == kModeFree) {
        Problem("directory references free inode %llu",
                static_cast<unsigned long long>(ino));
        continue;
      }
      ++report_.inodes_in_use;
      uint32_t held = ClaimInodeBlocks(ino, inode);
      if (held != inode.blocks) {
        Problem("inode %llu holds %u blocks but records %u",
                static_cast<unsigned long long>(ino), held, inode.blocks);
      }
      uint64_t max_size = static_cast<uint64_t>(held) * kBlockSize;
      if (inode.size > max_size &&
          // Sparse files legitimately exceed held*block; only flag when a
          // fully dense file would be impossible for the held count.
          inode.blocks >= kDirectBlocks) {
        // Heuristic only: keep quiet for sparse files.
      }

      if (type == kModeDirectory) {
        ++report_.directories;
        ScanDirectory(ino, inode, &queue);
      } else {
        ++report_.regular_files;
        inode_links_[ino] += 0;  // ensure presence; counted via dir scan
      }
    }

    // Link-count verification for everything we saw referenced.
    for (const auto& [ino, links] : inode_links_) {
      DiskInode inode;
      if (!ReadInodeRaw(ino, &inode)) {
        continue;
      }
      if ((inode.mode & kModeTypeMask) == kModeRegular && inode.nlink != links) {
        Problem("inode %llu nlink=%u but %u directory references",
                static_cast<unsigned long long>(ino), inode.nlink, links);
      }
    }
  }

  void ScanDirectory(uint64_t ino, const DiskInode& inode, std::deque<uint64_t>* queue) {
    uint64_t entries = inode.size / kDirEntrySize;
    if (inode.size % kDirEntrySize != 0) {
      Problem("directory %llu size %llu not a multiple of the entry size",
              static_cast<unsigned long long>(ino),
              static_cast<unsigned long long>(inode.size));
    }
    bool saw_dot = false;
    bool saw_dotdot = false;
    for (uint64_t i = 0; i < entries; ++i) {
      DiskDirEntry entry;
      if (!ReadFileBytes(inode, i * kDirEntrySize, &entry, sizeof(entry))) {
        Problem("directory %llu unreadable at entry %llu",
                static_cast<unsigned long long>(ino),
                static_cast<unsigned long long>(i));
        return;
      }
      if (entry.ino == 0) {
        continue;
      }
      if (entry.name[kMaxNameLen] != '\0' ||
          entry.name_len != libc::Strlen(entry.name)) {
        Problem("directory %llu entry %llu has corrupt name",
                static_cast<unsigned long long>(ino),
                static_cast<unsigned long long>(i));
        continue;
      }
      if (libc::Strcmp(entry.name, ".") == 0) {
        saw_dot = true;
        if (entry.ino != ino) {
          Problem("directory %llu: '.' points to %llu",
                  static_cast<unsigned long long>(ino),
                  static_cast<unsigned long long>(entry.ino));
        }
        continue;
      }
      if (libc::Strcmp(entry.name, "..") == 0) {
        saw_dotdot = true;
        continue;
      }
      inode_links_[entry.ino] += 1;
      queue->push_back(entry.ino);
    }
    if (!saw_dot || !saw_dotdot) {
      Problem("directory %llu missing '.' or '..'",
              static_cast<unsigned long long>(ino));
    }
  }

  // Raw file read via the inode's block map (no cache, read-only).
  bool ReadFileBytes(const DiskInode& inode, uint64_t offset, void* out, size_t len) {
    auto* dst = static_cast<uint8_t*>(out);
    uint8_t block_data[kBlockSize];
    while (len > 0) {
      uint32_t fb = static_cast<uint32_t>(offset / kBlockSize);
      uint32_t in_block = static_cast<uint32_t>(offset % kBlockSize);
      uint32_t block = 0;
      if (fb < kDirectBlocks) {
        block = inode.direct[fb];
      } else if (fb < kDirectBlocks + kPointersPerBlock) {
        if (inode.indirect == 0) {
          block = 0;
        } else {
          if (!ReadBlockRaw(inode.indirect, block_data)) {
            return false;
          }
          std::memcpy(&block, block_data + (fb - kDirectBlocks) * 4, 4);
        }
      } else {
        uint32_t index = fb - kDirectBlocks - kPointersPerBlock;
        if (inode.double_indirect == 0) {
          block = 0;
        } else {
          if (!ReadBlockRaw(inode.double_indirect, block_data)) {
            return false;
          }
          uint32_t mid = 0;
          std::memcpy(&mid, block_data + (index / kPointersPerBlock) * 4, 4);
          if (mid == 0) {
            block = 0;
          } else {
            if (!ReadBlockRaw(mid, block_data)) {
              return false;
            }
            std::memcpy(&block, block_data + (index % kPointersPerBlock) * 4, 4);
          }
        }
      }
      size_t n = kBlockSize - in_block;
      if (n > len) {
        n = len;
      }
      if (block == 0) {
        std::memset(dst, 0, n);
      } else {
        if (!ReadBlockRaw(block, block_data)) {
          return false;
        }
        std::memcpy(dst, block_data + in_block, n);
      }
      dst += n;
      offset += n;
      len -= n;
    }
    return true;
  }

  void CheckInodeTable() {
    uint64_t used = 0;
    for (uint64_t ino = 1; ino < sb_.inode_count; ++ino) {
      DiskInode inode;
      if (!ReadInodeRaw(ino, &inode)) {
        continue;
      }
      if ((inode.mode & kModeTypeMask) != kModeFree) {
        ++used;
      }
    }
    uint64_t expected_free = sb_.inode_count - 1 - used;  // ino 0 reserved
    if (sb_.free_inodes != expected_free) {
      Problem("superblock free_inodes=%u, table says %llu", sb_.free_inodes,
              static_cast<unsigned long long>(expected_free));
    }
    if (used != report_.inodes_in_use) {
      Problem("%llu inodes allocated but %llu reachable from the root",
              static_cast<unsigned long long>(used),
              static_cast<unsigned long long>(report_.inodes_in_use));
    }
  }

  void CheckBitmap() {
    uint8_t block_data[kBlockSize];
    uint64_t bitmap_used = 0;
    for (uint32_t b = 0; b < sb_.total_blocks; ++b) {
      uint32_t bitmap_block = sb_.bitmap_start + b / (kBlockSize * 8);
      uint32_t bit = b % (kBlockSize * 8);
      if (bit == 0 || b == 0) {
        if (!ReadBlockRaw(bitmap_block, block_data)) {
          Problem("unreadable bitmap block %u", bitmap_block);
          return;
        }
      }
      bool marked = (block_data[bit / 8] & (1u << (bit % 8))) != 0;
      if (marked) {
        ++bitmap_used;
      }
      if (marked != block_seen_[b]) {
        Problem("block %u: bitmap=%d but tree-walk=%d", b, marked ? 1 : 0,
                block_seen_[b] ? 1 : 0);
      }
    }
    uint64_t expected_free = sb_.total_blocks - bitmap_used;
    if (sb_.free_blocks != expected_free) {
      Problem("superblock free_blocks=%u, bitmap says %llu", sb_.free_blocks,
              static_cast<unsigned long long>(expected_free));
    }
  }

  BlkIo* device_;
  FsckOptions options_;
  SuperBlock sb_{};
  FsckReport report_;
  std::vector<bool> block_seen_;
  std::map<uint64_t, uint32_t> inode_links_;
};

}  // namespace

FsckReport Fsck(BlkIo* device, const FsckOptions& options) {
  return Checker(device, options).Run();
}

FsckReport Fsck(BlkIo* device) { return Fsck(device, FsckOptions{}); }

}  // namespace oskit::fs
