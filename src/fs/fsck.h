// Filesystem consistency checker for the offs format.
//
// Walks the directory tree from the root, cross-checking every structure:
// reachable inodes vs the inode table, reachable blocks vs the allocation
// bitmap, link counts vs directory references, and size vs held blocks.
// The randomized filesystem property tests run this after every operation
// sequence and after simulated crashes (unsynced caches).
//
// On journaled volumes the checker also walks the journal's commit chain:
// by default read-only (reporting how many transactions are pending or
// torn), or — with replay_journal — redoing them first, the way a real
// fsck repairs a crashed log-structured volume before checking it.

#ifndef OSKIT_SRC_FS_FSCK_H_
#define OSKIT_SRC_FS_FSCK_H_

#include <string>
#include <vector>

#include "src/com/blkio.h"

namespace oskit::fs {

struct FsckOptions {
  // Apply pending journal transactions before checking.  The only write
  // fsck will ever perform.
  bool replay_journal = false;
};

struct FsckReport {
  bool superblock_valid = false;
  bool was_clean = false;       // on-disk clean flag
  bool consistent = false;      // no problems found
  uint64_t inodes_in_use = 0;
  uint64_t blocks_in_use = 0;
  uint64_t directories = 0;
  uint64_t regular_files = 0;
  // Journal state (zeroes on unjournaled volumes).
  bool journal_present = false;
  uint64_t journal_pending_txns = 0;    // committed, not yet checkpointed
  uint64_t journal_replayed_txns = 0;   // redone (replay_journal only)
  uint64_t journal_discarded_txns = 0;  // torn candidates ignored
  std::vector<std::string> problems;
};

// Never modifies the device (unless options.replay_journal is set, which
// writes only journal-committed images and the journal checkpoint).
FsckReport Fsck(BlkIo* device, const FsckOptions& options);
FsckReport Fsck(BlkIo* device);

}  // namespace oskit::fs

#endif  // OSKIT_SRC_FS_FSCK_H_
