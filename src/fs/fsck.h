// Filesystem consistency checker for the offs format.
//
// Walks the directory tree from the root, cross-checking every structure:
// reachable inodes vs the inode table, reachable blocks vs the allocation
// bitmap, link counts vs directory references, and size vs held blocks.
// The randomized filesystem property tests run this after every operation
// sequence and after simulated crashes (unsynced caches).

#ifndef OSKIT_SRC_FS_FSCK_H_
#define OSKIT_SRC_FS_FSCK_H_

#include <string>
#include <vector>

#include "src/com/blkio.h"

namespace oskit::fs {

struct FsckReport {
  bool superblock_valid = false;
  bool was_clean = false;       // on-disk clean flag
  bool consistent = false;      // no problems found
  uint64_t inodes_in_use = 0;
  uint64_t blocks_in_use = 0;
  uint64_t directories = 0;
  uint64_t regular_files = 0;
  std::vector<std::string> problems;
};

// Read-only check; never modifies the device.
FsckReport Fsck(BlkIo* device);

}  // namespace oskit::fs

#endif  // OSKIT_SRC_FS_FSCK_H_
