#include "src/fs/journal.h"

#include <cstring>

#include "src/base/panic.h"

namespace oskit::fs {

uint64_t Fnv64(const void* data, size_t len, uint64_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < len; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

namespace {

uint64_t JsbChecksum(const JournalSuper& jsb) {
  return Fnv64(&jsb, offsetof(JournalSuper, checksum));
}

Error ReadBlockRaw(BlkIo* device, uint32_t block, uint8_t* out) {
  size_t actual = 0;
  Error err = device->Read(out, static_cast<off_t64>(block) * kBlockSize,
                           kBlockSize, &actual);
  if (!Ok(err)) {
    return err;
  }
  return actual == kBlockSize ? Error::kOk : Error::kIo;
}

Error WriteBlockRaw(BlkIo* device, uint32_t block, const void* data) {
  size_t actual = 0;
  Error err = device->Write(data, static_cast<off_t64>(block) * kBlockSize,
                            kBlockSize, &actual);
  if (!Ok(err)) {
    return err;
  }
  return actual == kBlockSize ? Error::kOk : Error::kIo;
}

Error LoadJsb(BlkIo* device, uint32_t journal_start, uint32_t region_blocks,
              JournalSuper* out) {
  uint8_t block[kBlockSize];
  Error err = ReadBlockRaw(device, journal_start, block);
  if (!Ok(err)) {
    return err;
  }
  std::memcpy(out, block, sizeof(*out));
  // next_pos == region_blocks is legal: a transaction that ended exactly at
  // the region boundary leaves the checkpoint parked there until the next
  // Commit wraps it back to 1 (ReadTxnAt reads it as a clean end of chain).
  if (out->magic != kJournalMagic || out->version != kJournalVersion ||
      out->region_blocks != region_blocks || out->checksum != JsbChecksum(*out) ||
      out->next_pos < 1 || out->next_pos > region_blocks || out->next_seq == 0) {
    return Error::kCorrupt;
  }
  return Error::kOk;
}

Error StoreJsb(BlkIo* device, uint32_t journal_start, JournalSuper* jsb) {
  jsb->checksum = JsbChecksum(*jsb);
  uint8_t block[kBlockSize] = {};
  std::memcpy(block, jsb, sizeof(*jsb));
  return WriteBlockRaw(device, journal_start, block);
}

// One parsed, validated transaction.
struct TxnView {
  TxnHeader header;
  std::vector<uint32_t> targets;
};

// Reads the transaction candidate at region block `pos`, expecting `seq`.
// kOk: valid.  kNoEnt: no candidate (stop quietly).  kCorrupt: a candidate
// header that fails validation (counts as a discard).
Error ReadTxnAt(BlkIo* device, const SuperBlock& sb, uint32_t pos, uint64_t seq,
                TxnView* out) {
  uint32_t region = sb.journal_blocks;
  // 64-bit arithmetic: `pos + 2` (and the n_blocks check below) must not
  // wrap in uint32 when a scribbled superblock or header supplies huge
  // values — the same unsigned-wrap class as the byte-range IO surfaces.
  if (pos < 1 || static_cast<uint64_t>(pos) + 2 > region) {
    return Error::kNoEnt;
  }
  uint8_t header_block[kBlockSize];
  Error err = ReadBlockRaw(device, sb.journal_start + pos, header_block);
  if (!Ok(err)) {
    return err;
  }
  TxnHeader header;
  std::memcpy(&header, header_block, sizeof(header));
  if (header.magic != kTxnHeaderMagic) {
    return Error::kNoEnt;  // free space or an old lap's payload: end of chain
  }
  if (header.seq != seq || header.n_blocks == 0 ||
      header.n_blocks > kMaxTxnTargets ||
      static_cast<uint64_t>(pos) + 2 + header.n_blocks > region) {
    return Error::kCorrupt;
  }
  uint8_t commit_block[kBlockSize];
  err = ReadBlockRaw(device, sb.journal_start + pos + 1 + header.n_blocks,
                     commit_block);
  if (!Ok(err)) {
    return err;
  }
  TxnCommit commit;
  std::memcpy(&commit, commit_block, sizeof(commit));
  if (commit.magic != kTxnCommitMagic || commit.seq != seq ||
      commit.n_blocks != header.n_blocks ||
      commit.checksum != Fnv64(header_block, kBlockSize)) {
    return Error::kCorrupt;  // torn or never-completed commit
  }
  // Header and commit agree; now the images must match the header's digest.
  uint64_t payload = 0xcbf29ce484222325ull;
  uint8_t image[kBlockSize];
  for (uint32_t i = 0; i < header.n_blocks; ++i) {
    err = ReadBlockRaw(device, sb.journal_start + pos + 1 + i, image);
    if (!Ok(err)) {
      return err;
    }
    payload = Fnv64(image, kBlockSize, payload);
  }
  if (payload != header.payload_checksum) {
    return Error::kCorrupt;
  }
  out->header = header;
  out->targets.resize(header.n_blocks);
  std::memcpy(out->targets.data(), header_block + sizeof(TxnHeader),
              header.n_blocks * sizeof(uint32_t));
  for (uint32_t target : out->targets) {
    if (target >= sb.total_blocks) {
      return Error::kCorrupt;
    }
  }
  return Error::kOk;
}

}  // namespace

Error JournalFormat(BlkIo* device, const SuperBlock& sb) {
  OSKIT_ASSERT(sb.journal_blocks >= kMinJournalBlocks);
  JournalSuper jsb;
  jsb.region_blocks = sb.journal_blocks;
  return StoreJsb(device, sb.journal_start, &jsb);
}

Error JournalReplay(BlkIo* device, const SuperBlock& sb, bool apply,
                    JournalReplayStats* stats) {
  *stats = JournalReplayStats{};
  if (sb.journal_blocks < kMinJournalBlocks) {
    return Error::kOk;  // ablation mode: no journal on this volume
  }
  JournalSuper jsb;
  Error err = LoadJsb(device, sb.journal_start, sb.journal_blocks, &jsb);
  if (!Ok(err)) {
    return err;
  }
  stats->journal_present = true;

  uint32_t pos = jsb.next_pos;
  uint64_t seq = jsb.next_seq;
  uint8_t image[kBlockSize];
  for (;;) {
    TxnView txn;
    err = ReadTxnAt(device, sb, pos, seq, &txn);
    if (err == Error::kNoEnt) {
      break;  // clean end of chain
    }
    if (err == Error::kCorrupt) {
      // A torn transaction is discarded, never partially applied — and
      // nothing after it can have committed (each commit is flushed before
      // the next transaction starts), so the chain ends here.
      ++stats->discarded_txns;
      break;
    }
    if (!Ok(err)) {
      return err;
    }
    if (apply) {
      for (uint32_t i = 0; i < txn.header.n_blocks; ++i) {
        err = ReadBlockRaw(device, sb.journal_start + pos + 1 + i, image);
        if (!Ok(err)) {
          return err;
        }
        err = WriteBlockRaw(device, txn.targets[i], image);
        if (!Ok(err)) {
          return err;
        }
      }
    }
    stats->replayed_blocks += txn.header.n_blocks;
    ++stats->replayed_txns;
    pos += txn.header.n_blocks + 2;
    ++seq;
  }

  if (apply && stats->replayed_txns > 0) {
    // Make the redone metadata durable, then retire the chain so a second
    // crash replays nothing stale.
    ComPtr<BlkIoBarrier> barrier = ComPtr<BlkIoBarrier>::FromQuery(device);
    if (barrier) {
      err = barrier->Flush();
      if (!Ok(err)) {
        return err;
      }
    }
    jsb.next_pos = pos;
    jsb.next_seq = seq;
    err = StoreJsb(device, sb.journal_start, &jsb);
    if (!Ok(err)) {
      return err;
    }
    if (barrier) {
      err = barrier->Flush();
      if (!Ok(err)) {
        return err;
      }
    }
  }
  return Error::kOk;
}

JournalWriter::JournalWriter(ComPtr<BlkIo> device, uint32_t journal_start,
                             uint32_t journal_blocks)
    : device_(std::move(device)), start_(journal_start), region_(journal_blocks) {
  OSKIT_ASSERT(region_ >= kMinJournalBlocks);
  barrier_ = ComPtr<BlkIoBarrier>::FromQuery(device_.get());
  ring_ = ComPtr<BlkIoRing>::FromQuery(device_.get());
}

Error JournalWriter::Load() {
  JournalSuper jsb;
  Error err = LoadJsb(device_.get(), start_, region_, &jsb);
  if (!Ok(err)) {
    return err;
  }
  next_pos_ = jsb.next_pos;
  next_seq_ = jsb.next_seq;
  return Error::kOk;
}

uint32_t JournalWriter::capacity() const {
  uint32_t by_region = region_ - 3;  // jsb, header, commit
  return by_region < kMaxTxnTargets ? by_region : kMaxTxnTargets;
}

Error JournalWriter::WriteRaw(uint32_t region_block, const void* data) {
  return WriteBlockRaw(device_.get(), start_ + region_block, data);
}

Error JournalWriter::WriteImages(
    const std::vector<uint32_t>& targets,
    const std::function<Error(uint32_t, uint8_t*)>& read_block,
    uint64_t* out_payload_checksum) {
  uint32_t n = static_cast<uint32_t>(targets.size());
  uint64_t payload = 0xcbf29ce484222325ull;

  if (!ring_) {
    // Sequential fallback: one synchronous write per image.
    uint8_t image[kBlockSize];
    for (uint32_t i = 0; i < n; ++i) {
      Error err = read_block(targets[i], image);
      if (!Ok(err)) {
        return err;
      }
      payload = Fnv64(image, kBlockSize, payload);
      err = WriteRaw(next_pos_ + 1 + i, image);
      if (!Ok(err)) {
        return err;
      }
    }
    *out_payload_checksum = payload;
    return Error::kOk;
  }

  // Async ring: stage every image, then hand the device the whole run as
  // one tagged submission batch.  The images land between barriers — the
  // commit record's checksums tolerate any ordering the ring picks — and a
  // contiguous run lets the device merge them into few controller round
  // trips.  SQE buffers must stay valid until reaped, hence one flat arena.
  std::vector<uint8_t> images(static_cast<size_t>(n) * kBlockSize);
  std::vector<AioSqe> sqes(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint8_t* image = images.data() + static_cast<size_t>(i) * kBlockSize;
    Error err = read_block(targets[i], image);
    if (!Ok(err)) {
      return err;
    }
    payload = Fnv64(image, kBlockSize, payload);
    sqes[i].op = AioOp::kWrite;
    sqes[i].buf = image;
    sqes[i].offset =
        static_cast<off_t64>(start_ + next_pos_ + 1 + i) * kBlockSize;
    sqes[i].len = kBlockSize;
    sqes[i].tag = i;
  }

  size_t submitted = 0;
  size_t reaped = 0;
  while (reaped < n) {
    size_t accepted = 0;
    if (submitted < n) {
      Error err = ring_->Submit(sqes.data() + submitted, n - submitted,
                                &accepted);
      if (!Ok(err)) {
        return err;
      }
      submitted += accepted;
    }
    AioCqe cqes[16];
    size_t got = 0;
    Error err = ring_->Reap(cqes, sizeof(cqes) / sizeof(cqes[0]), &got);
    if (!Ok(err)) {
      return err;
    }
    if (got == 0 && accepted == 0) {
      return Error::kIo;  // ring wedged: accepting nothing, completing nothing
    }
    for (size_t i = 0; i < got; ++i) {
      if (!Ok(cqes[i].status) || cqes[i].actual != kBlockSize) {
        return Ok(cqes[i].status) ? Error::kIo : cqes[i].status;
      }
    }
    reaped += got;
  }
  *out_payload_checksum = payload;
  return Error::kOk;
}

Error JournalWriter::Barrier() {
  return barrier_ ? barrier_->Flush() : Error::kOk;
}

Error JournalWriter::WriteJsb(bool flush) {
  JournalSuper jsb;
  jsb.region_blocks = region_;
  jsb.next_pos = next_pos_;
  jsb.next_seq = next_seq_;
  Error err = StoreJsb(device_.get(), start_, &jsb);
  if (!Ok(err)) {
    return err;
  }
  return flush ? Barrier() : Error::kOk;
}

Error JournalWriter::Commit(
    const std::vector<uint32_t>& targets,
    const std::function<Error(uint32_t, uint8_t*)>& read_block) {
  uint32_t n = static_cast<uint32_t>(targets.size());
  if (n == 0) {
    return Error::kOk;
  }
  if (n > capacity()) {
    return Error::kNoSpace;
  }
  if (next_pos_ + n + 2 > region_) {
    // Wrap.  The checkpoint must be durable BEFORE old journal space is
    // reused, or a stale checkpoint could point a future replay into the
    // middle of this transaction's images.
    next_pos_ = 1;
    Error err = WriteJsb(/*flush=*/true);
    if (!Ok(err)) {
      return err;
    }
  }

  uint64_t payload = 0;
  {
    Error err = WriteImages(targets, read_block, &payload);
    if (!Ok(err)) {
      return err;
    }
  }

  uint8_t header_block[kBlockSize] = {};
  TxnHeader header;
  header.n_blocks = n;
  header.seq = next_seq_;
  header.payload_checksum = payload;
  std::memcpy(header_block, &header, sizeof(header));
  std::memcpy(header_block + sizeof(header), targets.data(),
              n * sizeof(uint32_t));
  Error err = WriteRaw(next_pos_, header_block);
  if (!Ok(err)) {
    return err;
  }

  uint8_t commit_block[kBlockSize] = {};
  TxnCommit commit;
  commit.n_blocks = n;
  commit.seq = next_seq_;
  commit.checksum = Fnv64(header_block, kBlockSize);
  std::memcpy(commit_block, &commit, sizeof(commit));
  err = WriteRaw(next_pos_ + 1 + n, commit_block);
  if (!Ok(err)) {
    return err;
  }

  // The commit barrier: after this returns, the transaction replays.
  err = Barrier();
  if (!Ok(err)) {
    return err;
  }
  next_pos_ += n + 2;
  ++next_seq_;
  return Error::kOk;
}

Error JournalWriter::Checkpoint() { return WriteJsb(/*flush=*/false); }

}  // namespace oskit::fs
