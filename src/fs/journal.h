// Write-ahead intent journal for offs metadata (the durability half of the
// paper's "real filesystem over any driver" story).
//
// Physical-redo design.  A transaction is the full 4 KB images of every
// metadata block an operation batch touched, laid out contiguously in the
// journal region:
//
//   block jsb:        journal superblock (checkpoint: where replay starts)
//   block pos:        TxnHeader + target block numbers
//   blocks pos+1..:   the n block images
//   block pos+1+n:    TxnCommit
//
// The commit record carries a checksum of the header block as written, and
// the header carries a checksum of the concatenated images, so ANY torn,
// dropped, or reordered write inside an unflushed transaction invalidates
// it as a whole: replay applies a committed transaction completely or not
// at all, and applying one twice is a no-op (redo is idempotent).
//
// The checkpoint is written lazily (unflushed) after each transaction's
// home-location writeback; a stale checkpoint only makes replay redo work
// already done.  The one ordering hazard — a new transaction wrapping over
// journal space a stale checkpoint still points into — is closed by writing
// and FLUSHING a fresh checkpoint before every wrap, so a replay chain
// never crosses a wrap boundary.

#ifndef OSKIT_SRC_FS_JOURNAL_H_
#define OSKIT_SRC_FS_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/com/aio.h"
#include "src/com/blkio.h"
#include "src/fs/format.h"

namespace oskit::fs {

// FNV-1a, the traditional dependency-free integrity hash.
uint64_t Fnv64(const void* data, size_t len, uint64_t seed = 0xcbf29ce484222325ull);

inline constexpr uint32_t kJournalMagic = 0x4a4f5552;    // "JOUR"
inline constexpr uint32_t kJournalVersion = 1;
inline constexpr uint32_t kTxnHeaderMagic = 0x54584e48;  // "TXNH"
inline constexpr uint32_t kTxnCommitMagic = 0x54584e43;  // "TXNC"
// jsb + header + one image + commit.
inline constexpr uint32_t kMinJournalBlocks = 4;

// Lives in the first sector of the first journal block, so the sector-run
// tear model can never leave it half-written: a cut yields the old record
// or the new one, both valid.
struct JournalSuper {
  uint32_t magic = kJournalMagic;
  uint32_t version = kJournalVersion;
  uint32_t region_blocks = 0;
  uint32_t next_pos = 1;  // region-relative block of the next transaction
  uint64_t next_seq = 1;
  uint64_t checksum = 0;  // Fnv64 over the fields above
};

struct TxnHeader {
  uint32_t magic = kTxnHeaderMagic;
  uint32_t n_blocks = 0;
  uint64_t seq = 0;
  uint64_t payload_checksum = 0;  // over the n concatenated images
  // Followed in the block by uint32_t targets[n_blocks].
};

struct TxnCommit {
  uint32_t magic = kTxnCommitMagic;
  uint32_t n_blocks = 0;
  uint64_t seq = 0;
  uint64_t checksum = 0;  // Fnv64 over the header block as written
};

inline constexpr uint32_t kMaxTxnTargets =
    (kBlockSize - sizeof(TxnHeader)) / sizeof(uint32_t);

struct JournalReplayStats {
  bool journal_present = false;  // volume has a region with a valid jsb
  uint32_t replayed_txns = 0;
  uint32_t replayed_blocks = 0;
  uint32_t discarded_txns = 0;   // commit-chain candidates that failed checks
};

// Formats the journal region described by `sb` (fresh jsb; the caller has
// already zeroed the region, which Mkfs's metadata sweep does).
Error JournalFormat(BlkIo* device, const SuperBlock& sb);

// Walks the commit chain from the on-disk checkpoint.  With `apply`,
// committed images are written to their home blocks, a barrier is issued,
// and the checkpoint is advanced past the chain; without it the device is
// not written (fsck's verify mode).  kOk with journal_present=false when
// the volume has no journal; kCorrupt when the jsb itself fails validation.
Error JournalReplay(BlkIo* device, const SuperBlock& sb, bool apply,
                    JournalReplayStats* stats);

// The mounted filesystem's append side.
class JournalWriter {
 public:
  JournalWriter(ComPtr<BlkIo> device, uint32_t journal_start,
                uint32_t journal_blocks);

  // Reads and validates the on-disk checkpoint.
  Error Load();

  // Most block images one transaction can carry.
  uint32_t capacity() const;

  // Writes one transaction (images, header, commit) and flushes it.
  // `read_block` supplies the current image of each target.  kNoSpace when
  // targets exceed capacity() — the caller falls back to an unjournaled
  // writeback.
  Error Commit(const std::vector<uint32_t>& targets,
               const std::function<Error(uint32_t, uint8_t*)>& read_block);

  // Advances the on-disk checkpoint past everything committed so far.
  // Deliberately unflushed: see the file comment.
  Error Checkpoint();

  uint64_t next_seq() const { return next_seq_; }
  uint32_t next_pos() const { return next_pos_; }

  // True when the device granted BlkIoRing and commits batch their image
  // writes through it (diagnostics / tests).
  bool async() const { return static_cast<bool>(ring_); }

 private:
  Error WriteRaw(uint32_t region_block, const void* data);
  // The transaction's n images as one submission batch: a ring-capable
  // device schedules the whole contiguous run per controller round-trip.
  // Falls back to sequential writes when the device has no ring.
  Error WriteImages(const std::vector<uint32_t>& targets,
                    const std::function<Error(uint32_t, uint8_t*)>& read_block,
                    uint64_t* out_payload_checksum);
  Error WriteJsb(bool flush);
  Error Barrier();

  ComPtr<BlkIo> device_;
  ComPtr<BlkIoBarrier> barrier_;
  ComPtr<BlkIoRing> ring_;
  uint32_t start_;
  uint32_t region_;
  uint32_t next_pos_ = 1;
  uint64_t next_seq_ = 1;
};

}  // namespace oskit::fs

#endif  // OSKIT_SRC_FS_JOURNAL_H_
