#include "src/fs/secure.h"

namespace oskit::fs {

bool UnixFsPolicy::Allows(const Credentials& who, FsOp op, const FileStat& stat) {
  ++checks_;
  if (who.superuser) {
    return true;
  }
  // Select the mode triplet: owner / group / other.
  uint32_t shift;
  if (who.uid == stat.uid) {
    shift = 6;
  } else if (who.gid == stat.gid) {
    shift = 3;
  } else {
    shift = 0;
  }
  uint32_t bits = (stat.mode >> shift) & 7;
  bool ok;
  switch (op) {
    case FsOp::kRead:
      ok = (bits & 4) != 0;
      break;
    case FsOp::kWrite:
    case FsOp::kCreate:
    case FsOp::kRemove:
      ok = (bits & 2) != 0;
      break;
    case FsOp::kLookup:
      ok = (bits & 1) != 0;
      break;
    case FsOp::kStat:
      ok = true;
      break;
    default:
      ok = false;
      break;
  }
  if (!ok) {
    ++denials_;
  }
  return ok;
}

namespace {

class SecureFile final : public File, public RefCounted<SecureFile> {
 public:
  SecureFile(ComPtr<File> inner, FsPolicy* policy, const Credentials& creds)
      : inner_(std::move(inner)), policy_(policy), creds_(creds) {}

  Error Query(const Guid& iid, void** out) override {
    if (iid == IUnknown::kIid || iid == File::kIid) {
      AddRef();
      *out = static_cast<File*>(this);
      return Error::kOk;
    }
    // Deliberately NOT forwarding unknown queries to the inner object:
    // handing out unwrapped interfaces would bypass the checks.
    *out = nullptr;
    return Error::kNoInterface;
  }
  OSKIT_REFCOUNTED_BOILERPLATE()

  Error Read(void* buf, uint64_t offset, size_t amount, size_t* out_actual) override {
    *out_actual = 0;
    Error err = Check(FsOp::kRead);
    if (!Ok(err)) {
      return err;
    }
    return inner_->Read(buf, offset, amount, out_actual);
  }

  Error Write(const void* buf, uint64_t offset, size_t amount,
              size_t* out_actual) override {
    *out_actual = 0;
    Error err = Check(FsOp::kWrite);
    if (!Ok(err)) {
      return err;
    }
    return inner_->Write(buf, offset, amount, out_actual);
  }

  Error GetStat(FileStat* out_stat) override { return inner_->GetStat(out_stat); }

  Error SetSize(uint64_t new_size) override {
    Error err = Check(FsOp::kWrite);
    if (!Ok(err)) {
      return err;
    }
    return inner_->SetSize(new_size);
  }

  Error Sync() override { return inner_->Sync(); }

 private:
  friend class RefCounted<SecureFile>;
  ~SecureFile() = default;

  Error Check(FsOp op) {
    FileStat stat;
    Error err = inner_->GetStat(&stat);
    if (!Ok(err)) {
      return err;
    }
    return policy_->Allows(creds_, op, stat) ? Error::kOk : Error::kAccess;
  }

  ComPtr<File> inner_;
  FsPolicy* policy_;
  Credentials creds_;
};

class SecureDirImpl final : public Dir, public RefCounted<SecureDirImpl> {
 public:
  SecureDirImpl(ComPtr<Dir> inner, FsPolicy* policy, const Credentials& creds)
      : inner_(std::move(inner)), policy_(policy), creds_(creds) {}

  Error Query(const Guid& iid, void** out) override {
    if (iid == IUnknown::kIid || iid == File::kIid || iid == Dir::kIid) {
      AddRef();
      *out = static_cast<Dir*>(this);
      return Error::kOk;
    }
    *out = nullptr;
    return Error::kNoInterface;
  }
  OSKIT_REFCOUNTED_BOILERPLATE()

  // File surface.
  Error Read(void*, uint64_t, size_t, size_t* out_actual) override {
    *out_actual = 0;
    return Error::kIsDir;
  }
  Error Write(const void*, uint64_t, size_t, size_t* out_actual) override {
    *out_actual = 0;
    return Error::kIsDir;
  }
  Error GetStat(FileStat* out_stat) override { return inner_->GetStat(out_stat); }
  Error SetSize(uint64_t) override { return Error::kIsDir; }
  Error Sync() override { return inner_->Sync(); }

  // Dir surface: the per-component checking the paper's fileserver relies
  // on.  Every traversal step demands execute permission HERE, and results
  // come back wrapped.
  Error Lookup(const char* name, File** out_file) override {
    *out_file = nullptr;
    Error err = Check(FsOp::kLookup);
    if (!Ok(err)) {
      return err;
    }
    ComPtr<File> found;
    err = inner_->Lookup(name, found.Receive());
    if (!Ok(err)) {
      return err;
    }
    ComPtr<Dir> as_dir = ComPtr<Dir>::FromQuery(found.get());
    if (as_dir) {
      *out_file = new SecureDirImpl(std::move(as_dir), policy_, creds_);
    } else {
      *out_file = new SecureFile(std::move(found), policy_, creds_);
    }
    return Error::kOk;
  }

  Error Create(const char* name, uint32_t mode, File** out_file) override {
    *out_file = nullptr;
    Error err = Check(FsOp::kCreate);
    if (!Ok(err)) {
      return err;
    }
    ComPtr<File> created;
    err = inner_->Create(name, mode, created.Receive());
    if (!Ok(err)) {
      return err;
    }
    *out_file = new SecureFile(std::move(created), policy_, creds_);
    return Error::kOk;
  }

  Error Mkdir(const char* name, uint32_t mode) override {
    Error err = Check(FsOp::kCreate);
    if (!Ok(err)) {
      return err;
    }
    return inner_->Mkdir(name, mode);
  }

  Error Unlink(const char* name) override {
    Error err = Check(FsOp::kRemove);
    if (!Ok(err)) {
      return err;
    }
    return inner_->Unlink(name);
  }

  Error Rmdir(const char* name) override {
    Error err = Check(FsOp::kRemove);
    if (!Ok(err)) {
      return err;
    }
    return inner_->Rmdir(name);
  }

  Error Rename(const char* old_name, Dir* new_dir, const char* new_name) override {
    Error err = Check(FsOp::kRemove);
    if (!Ok(err)) {
      return err;
    }
    // Unwrap the destination if it is one of ours (same policy domain).
    auto* secure_dest = dynamic_cast<SecureDirImpl*>(new_dir);
    Dir* dest = secure_dest != nullptr ? secure_dest->inner_.get() : new_dir;
    if (secure_dest != nullptr) {
      err = secure_dest->Check(FsOp::kCreate);
      if (!Ok(err)) {
        return err;
      }
    }
    return inner_->Rename(old_name, dest, new_name);
  }

  Error ReadDir(uint64_t* inout_offset, DirEntry* entries, size_t capacity,
                size_t* out_count) override {
    *out_count = 0;
    Error err = Check(FsOp::kRead);
    if (!Ok(err)) {
      return err;
    }
    return inner_->ReadDir(inout_offset, entries, capacity, out_count);
  }

 private:
  friend class RefCounted<SecureDirImpl>;
  ~SecureDirImpl() = default;

  Error Check(FsOp op) {
    FileStat stat;
    Error err = inner_->GetStat(&stat);
    if (!Ok(err)) {
      return err;
    }
    return policy_->Allows(creds_, op, stat) ? Error::kOk : Error::kAccess;
  }

  ComPtr<Dir> inner_;
  FsPolicy* policy_;
  Credentials creds_;
};

}  // namespace

ComPtr<Dir> MakeSecureDir(ComPtr<Dir> inner, FsPolicy* policy,
                          const Credentials& creds) {
  return ComPtr<Dir>(new SecureDirImpl(std::move(inner), policy, creds));
}

}  // namespace oskit::fs
