// Security wrapping of the filesystem COM interfaces (paper §3.8).
//
// "The OSKit interface accepts only single pathname components, allowing the
// security wrapping code to do appropriate permission checking ... avoiding
// any modification of the main file system code."
//
// SecureDir/SecureFile interpose on every operation, consulting a
// client-supplied policy with the subject's credentials and the target's
// attributes before delegating to the wrapped object.  Lookup results are
// re-wrapped, so the protection follows every traversal.

#ifndef OSKIT_SRC_FS_SECURE_H_
#define OSKIT_SRC_FS_SECURE_H_

#include "src/com/filesystem.h"

namespace oskit::fs {

struct Credentials {
  uint32_t uid = 0;
  uint32_t gid = 0;
  bool superuser = false;
};

enum class FsOp {
  kRead,
  kWrite,
  kLookup,   // directory traversal (execute bit)
  kCreate,   // add entries to a directory
  kRemove,
  kStat,
};

// Returns true when `who` may perform `op` on an object with `stat`.
// The default policy implements classic Unix mode-bit checking.
class FsPolicy {
 public:
  virtual ~FsPolicy() = default;
  virtual bool Allows(const Credentials& who, FsOp op, const FileStat& stat) = 0;
};

class UnixFsPolicy final : public FsPolicy {
 public:
  bool Allows(const Credentials& who, FsOp op, const FileStat& stat) override;

  uint64_t checks_performed() const { return checks_; }
  uint64_t denials() const { return denials_; }

 private:
  uint64_t checks_ = 0;
  uint64_t denials_ = 0;
};

// Wraps a directory (typically a filesystem root) with permission checks.
// Policy and credentials must outlive the returned object graph.
ComPtr<Dir> MakeSecureDir(ComPtr<Dir> inner, FsPolicy* policy,
                          const Credentials& creds);

}  // namespace oskit::fs

#endif  // OSKIT_SRC_FS_SECURE_H_
