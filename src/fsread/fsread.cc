#include "src/fsread/fsread.h"

#include <cstring>
#include <string>

#include "src/base/byteorder.h"

namespace oskit::fsread {
namespace {

// The format constants, restated independently of src/fs (this library must
// not link against the full component).
constexpr uint32_t kMagic = 0x0f500f50;
constexpr uint32_t kBlockSize = 4096;
constexpr uint32_t kInodeSize = 128;
constexpr uint32_t kInodesPerBlock = kBlockSize / kInodeSize;
constexpr uint32_t kDirect = 10;
constexpr uint32_t kPointersPerBlock = kBlockSize / 4;
constexpr uint64_t kRootIno = 1;
constexpr uint32_t kDirEntrySize = 64;
constexpr uint16_t kTypeMask = 0xf000;
constexpr uint16_t kTypeDir = 0x4000;
constexpr uint16_t kTypeRegular = 0x8000;

struct Super {
  uint32_t total_blocks;
  uint32_t inode_count;
  uint32_t itable_start;
};

struct Inode {
  uint16_t mode;
  uint64_t size;
  uint32_t direct[kDirect];
  uint32_t indirect;
  uint32_t double_indirect;
};

Error ReadBlock(BlkIo* device, uint32_t block, uint8_t* out) {
  size_t actual = 0;
  Error err = device->Read(out, static_cast<off_t64>(block) * kBlockSize, kBlockSize,
                           &actual);
  if (!Ok(err)) {
    return err;
  }
  return actual == kBlockSize ? Error::kOk : Error::kCorrupt;
}

Error ReadSuper(BlkIo* device, Super* out) {
  uint8_t block[kBlockSize];
  Error err = ReadBlock(device, 0, block);
  if (!Ok(err)) {
    return err;
  }
  if (LoadLe32(block) != kMagic) {
    return Error::kCorrupt;
  }
  out->total_blocks = LoadLe32(block + 12);
  out->inode_count = LoadLe32(block + 16);
  out->itable_start = LoadLe32(block + 28);
  return Error::kOk;
}

Error ReadInode(BlkIo* device, const Super& sb, uint64_t ino, Inode* out) {
  if (ino == 0 || ino >= sb.inode_count) {
    return Error::kNoEnt;
  }
  uint8_t block[kBlockSize];
  Error err = ReadBlock(device, sb.itable_start + static_cast<uint32_t>(ino / kInodesPerBlock), block);
  if (!Ok(err)) {
    return err;
  }
  const uint8_t* p = block + (ino % kInodesPerBlock) * kInodeSize;
  out->mode = LoadLe16(p);
  out->size = LoadLe64(p + 16);
  for (uint32_t i = 0; i < kDirect; ++i) {
    out->direct[i] = LoadLe32(p + 32 + i * 4);
  }
  out->indirect = LoadLe32(p + 72);
  out->double_indirect = LoadLe32(p + 76);
  return Error::kOk;
}

// Maps a file block index to a disk block (0 = hole).
Error BMap(BlkIo* device, const Inode& inode, uint32_t fb, uint32_t* out_block) {
  uint8_t table[kBlockSize];
  if (fb < kDirect) {
    *out_block = inode.direct[fb];
    return Error::kOk;
  }
  fb -= kDirect;
  if (fb < kPointersPerBlock) {
    if (inode.indirect == 0) {
      *out_block = 0;
      return Error::kOk;
    }
    Error err = ReadBlock(device, inode.indirect, table);
    if (!Ok(err)) {
      return err;
    }
    *out_block = LoadLe32(table + fb * 4);
    return Error::kOk;
  }
  fb -= kPointersPerBlock;
  if (inode.double_indirect == 0) {
    *out_block = 0;
    return Error::kOk;
  }
  Error err = ReadBlock(device, inode.double_indirect, table);
  if (!Ok(err)) {
    return err;
  }
  uint32_t mid = LoadLe32(table + (fb / kPointersPerBlock) * 4);
  if (mid == 0) {
    *out_block = 0;
    return Error::kOk;
  }
  err = ReadBlock(device, mid, table);
  if (!Ok(err)) {
    return err;
  }
  *out_block = LoadLe32(table + (fb % kPointersPerBlock) * 4);
  return Error::kOk;
}

Error ReadRange(BlkIo* device, const Inode& inode, uint64_t offset, void* buf,
                size_t len) {
  // A wrapping [offset, offset+len) range would walk the file-block loop
  // with a corrupt running offset; reject it like every other IO surface.
  if (offset + len < offset) {
    return Error::kInval;
  }
  auto* dst = static_cast<uint8_t*>(buf);
  uint8_t block_data[kBlockSize];
  while (len > 0) {
    uint32_t fb = static_cast<uint32_t>(offset / kBlockSize);
    uint32_t in_block = static_cast<uint32_t>(offset % kBlockSize);
    size_t n = kBlockSize - in_block;
    if (n > len) {
      n = len;
    }
    uint32_t block = 0;
    Error err = BMap(device, inode, fb, &block);
    if (!Ok(err)) {
      return err;
    }
    if (block == 0) {
      std::memset(dst, 0, n);
    } else {
      err = ReadBlock(device, block, block_data);
      if (!Ok(err)) {
        return err;
      }
      std::memcpy(dst, block_data + in_block, n);
    }
    dst += n;
    offset += n;
    len -= n;
  }
  return Error::kOk;
}

// Resolves a path to an inode number.
Error Resolve(BlkIo* device, const Super& sb, const char* path, uint64_t* out_ino) {
  uint64_t ino = kRootIno;
  const char* p = path;
  while (*p == '/') {
    ++p;
  }
  while (*p != '\0') {
    const char* end = p;
    while (*end != '\0' && *end != '/') {
      ++end;
    }
    std::string component(p, end);
    Inode dir;
    Error err = ReadInode(device, sb, ino, &dir);
    if (!Ok(err)) {
      return err;
    }
    if ((dir.mode & kTypeMask) != kTypeDir) {
      return Error::kNotDir;
    }
    bool found = false;
    uint64_t entries = dir.size / kDirEntrySize;
    uint8_t raw[kDirEntrySize];
    for (uint64_t i = 0; i < entries; ++i) {
      err = ReadRange(device, dir, i * kDirEntrySize, raw, kDirEntrySize);
      if (!Ok(err)) {
        return err;
      }
      uint64_t entry_ino = LoadLe64(raw);
      if (entry_ino == 0) {
        continue;
      }
      const char* name = reinterpret_cast<const char*>(raw + 10);
      if (component == name) {
        ino = entry_ino;
        found = true;
        break;
      }
    }
    if (!found) {
      return Error::kNoEnt;
    }
    p = end;
    while (*p == '/') {
      ++p;
    }
  }
  *out_ino = ino;
  return Error::kOk;
}

}  // namespace

Error ReadFile(BlkIo* device, const char* path, std::vector<uint8_t>* out) {
  Super sb;
  Error err = ReadSuper(device, &sb);
  if (!Ok(err)) {
    return err;
  }
  uint64_t ino = 0;
  err = Resolve(device, sb, path, &ino);
  if (!Ok(err)) {
    return err;
  }
  Inode inode;
  err = ReadInode(device, sb, ino, &inode);
  if (!Ok(err)) {
    return err;
  }
  if ((inode.mode & kTypeMask) != kTypeRegular) {
    return Error::kIsDir;
  }
  out->resize(inode.size);
  return ReadRange(device, inode, 0, out->data(), inode.size);
}

Error StatPath(BlkIo* device, const char* path, uint64_t* out_ino, uint64_t* out_size,
               bool* out_is_dir) {
  Super sb;
  Error err = ReadSuper(device, &sb);
  if (!Ok(err)) {
    return err;
  }
  uint64_t ino = 0;
  err = Resolve(device, sb, path, &ino);
  if (!Ok(err)) {
    return err;
  }
  Inode inode;
  err = ReadInode(device, sb, ino, &inode);
  if (!Ok(err)) {
    return err;
  }
  *out_ino = ino;
  *out_size = inode.size;
  *out_is_dir = (inode.mode & kTypeMask) == kTypeDir;
  return Error::kOk;
}

Error ListDir(BlkIo* device, const char* path, std::vector<std::string>* out_names) {
  out_names->clear();
  Super sb;
  Error err = ReadSuper(device, &sb);
  if (!Ok(err)) {
    return err;
  }
  uint64_t ino = 0;
  err = Resolve(device, sb, path, &ino);
  if (!Ok(err)) {
    return err;
  }
  Inode dir;
  err = ReadInode(device, sb, ino, &dir);
  if (!Ok(err)) {
    return err;
  }
  if ((dir.mode & kTypeMask) != kTypeDir) {
    return Error::kNotDir;
  }
  uint64_t entries = dir.size / kDirEntrySize;
  uint8_t raw[kDirEntrySize];
  for (uint64_t i = 0; i < entries; ++i) {
    err = ReadRange(device, dir, i * kDirEntrySize, raw, kDirEntrySize);
    if (!Ok(err)) {
      return err;
    }
    if (LoadLe64(raw) == 0) {
      continue;
    }
    out_names->emplace_back(reinterpret_cast<const char*>(raw + 10));
  }
  return Error::kOk;
}

}  // namespace oskit::fsread
