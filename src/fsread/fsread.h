// Minimal read-only filesystem reading (the paper's `fsread` library).
//
// Boot loaders need to pull a kernel or boot module out of a filesystem
// without linking the full filesystem component; fsread is that independent,
// from-first-principles reader for the offs on-disk format — no cache, no
// write paths, no shared code with src/fs (which also makes it a useful
// cross-check of the format in tests).

#ifndef OSKIT_SRC_FSREAD_FSREAD_H_
#define OSKIT_SRC_FSREAD_FSREAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/com/blkio.h"

namespace oskit::fsread {

// Reads the regular file at `path` ('/'-separated, absolute) into *out.
Error ReadFile(BlkIo* device, const char* path, std::vector<uint8_t>* out);

// Looks up `path` and reports its inode number and size (files and
// directories).  kNoEnt when absent.
Error StatPath(BlkIo* device, const char* path, uint64_t* out_ino,
               uint64_t* out_size, bool* out_is_dir);

// Lists the names in the directory at `path`.
Error ListDir(BlkIo* device, const char* path, std::vector<std::string>* out_names);

}  // namespace oskit::fsread

#endif  // OSKIT_SRC_FSREAD_FSREAD_H_
