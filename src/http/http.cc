#include "src/http/http.h"

#include <cctype>
#include <cstdio>
#include <cstring>

namespace oskit::http {

namespace {

bool IsTokenChar(char c) {
  // RFC 7230 tchar.
  if (std::isalnum(static_cast<unsigned char>(c))) {
    return true;
  }
  return std::strchr("!#$%&'*+-.^_`|~", c) != nullptr;
}

// Parses a non-negative decimal; false on overflow/empty/non-digits.
bool ParseDecimal(const std::string& s, uint64_t* out) {
  if (s.empty()) {
    return false;
  }
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    if (v > (~uint64_t{0} - 9) / 10) {
      return false;
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

std::string TrimOws(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) {
    --e;
  }
  return s.substr(b, e - b);
}

// Parses "HTTP/<d>.<d>"; false on anything else.
bool ParseVersion(const std::string& s, int* major, int* minor) {
  if (s.size() != 8 || s.compare(0, 5, "HTTP/") != 0 || s[6] != '.') {
    return false;
  }
  if (s[5] < '0' || s[5] > '9' || s[7] < '0' || s[7] > '9') {
    return false;
  }
  *major = s[5] - '0';
  *minor = s[7] - '0';
  return true;
}

// Splits the flat "line\r\nline\r\n...\r\n" header region into headers and
// resolves framing (Content-Length, keep-alive).  Shared by the request and
// response parsers; returns nullptr on success or a static error reason.
const char* ParseHeaderBlock(
    const std::string& region, size_t start, size_t max_headers,
    std::vector<std::pair<std::string, std::string>>* headers,
    uint64_t* content_length, bool* keep_alive_default, bool* reject_te) {
  size_t pos = start;
  bool have_connection = false;
  while (pos < region.size()) {
    size_t eol = region.find("\r\n", pos);
    if (eol == std::string::npos) {
      return "header line missing CRLF";
    }
    if (eol == pos) {
      break;  // blank line — handled by caller's terminator search
    }
    size_t colon = region.find(':', pos);
    if (colon == std::string::npos || colon > eol || colon == pos) {
      return "header line missing name";
    }
    std::string name = region.substr(pos, colon - pos);
    for (char c : name) {
      if (!IsTokenChar(c)) {
        return "header name has illegal character";
      }
    }
    std::string value = TrimOws(region.substr(colon + 1, eol - colon - 1));
    for (char c : value) {
      if (static_cast<unsigned char>(c) < 0x20 && c != '\t') {
        return "header value has control character";
      }
    }
    if (headers->size() >= max_headers) {
      return "too many headers";
    }
    if (EqualsIgnoreCase(name, "content-length")) {
      uint64_t v = 0;
      if (!ParseDecimal(value, &v)) {
        return "bad Content-Length";
      }
      if (*content_length != ~uint64_t{0} && *content_length != v) {
        return "conflicting Content-Length";
      }
      *content_length = v;
    } else if (EqualsIgnoreCase(name, "transfer-encoding")) {
      *reject_te = true;
    } else if (EqualsIgnoreCase(name, "connection")) {
      have_connection = true;
      if (EqualsIgnoreCase(value, "close")) {
        *keep_alive_default = false;
      } else if (EqualsIgnoreCase(value, "keep-alive")) {
        *keep_alive_default = true;
      }
    }
    headers->emplace_back(std::move(name), std::move(value));
    pos = eol + 2;
  }
  (void)have_connection;
  return nullptr;
}

const std::string* FindHeader(
    const std::vector<std::pair<std::string, std::string>>& headers,
    const char* name) {
  for (const auto& [n, v] : headers) {
    if (EqualsIgnoreCase(n, name)) {
      return &v;
    }
  }
  return nullptr;
}

}  // namespace

bool EqualsIgnoreCase(const std::string& a, const char* b) {
  size_t i = 0;
  for (; i < a.size(); ++i) {
    if (b[i] == '\0' ||
        std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return b[i] == '\0';
}

const std::string* Request::Header(const char* name) const {
  return FindHeader(headers, name);
}

const std::string* Response::Header(const char* name) const {
  return FindHeader(headers, name);
}

// ---------------------------------------------------------------------------
// RequestParser
// ---------------------------------------------------------------------------

ParseStatus RequestParser::status() const {
  if (failed_) {
    return ParseStatus::kError;
  }
  return ready_.empty() ? ParseStatus::kNeedMore : ParseStatus::kRequest;
}

void RequestParser::Reset() {
  buf_.clear();
  ready_.clear();
  error_ = "";
  failed_ = false;
}

Request RequestParser::TakeRequest() {
  Request r = std::move(ready_.front());
  ready_.pop_front();
  return r;
}

ParseStatus RequestParser::Feed(const void* data, size_t len) {
  if (failed_) {
    return ParseStatus::kError;
  }
  buf_.append(static_cast<const char*>(data), len);
  return ParseBuffered();
}

ParseStatus RequestParser::ParseBuffered() {
  for (;;) {
    // Frame the head: request line + headers end at the blank line.
    size_t head_end = buf_.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      if (buf_.size() > limits_.max_header_bytes) {
        failed_ = true;
        error_ = "header block too large";
        return ParseStatus::kError;
      }
      // An early syntax error is reportable before the blank line arrives:
      // a request line that already exceeds its limit.
      size_t line_end = buf_.find("\r\n");
      if (line_end == std::string::npos && buf_.size() > limits_.max_request_line) {
        failed_ = true;
        error_ = "request line too long";
        return ParseStatus::kError;
      }
      return status();
    }
    if (head_end + 4 > limits_.max_header_bytes) {
      failed_ = true;
      error_ = "header block too large";
      return ParseStatus::kError;
    }

    // Request line.
    size_t line_end = buf_.find("\r\n");
    if (line_end > limits_.max_request_line) {
      failed_ = true;
      error_ = "request line too long";
      return ParseStatus::kError;
    }
    std::string line = buf_.substr(0, line_end);
    size_t sp1 = line.find(' ');
    size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                          : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        line.find(' ', sp2 + 1) != std::string::npos) {
      failed_ = true;
      error_ = "malformed request line";
      return ParseStatus::kError;
    }
    Request req;
    req.method = line.substr(0, sp1);
    req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (req.method.empty() || req.target.empty()) {
      failed_ = true;
      error_ = "malformed request line";
      return ParseStatus::kError;
    }
    for (char c : req.method) {
      if (!IsTokenChar(c)) {
        failed_ = true;
        error_ = "malformed method";
        return ParseStatus::kError;
      }
    }
    for (char c : req.target) {
      if (static_cast<unsigned char>(c) <= 0x20 || c == 0x7f) {
        failed_ = true;
        error_ = "malformed request target";
        return ParseStatus::kError;
      }
    }
    if (!ParseVersion(line.substr(sp2 + 1), &req.version_major,
                      &req.version_minor)) {
      failed_ = true;
      error_ = "malformed HTTP version";
      return ParseStatus::kError;
    }
    if (req.version_major != 1) {
      failed_ = true;
      error_ = "unsupported HTTP major version";
      return ParseStatus::kError;
    }

    // Headers (between the request line and the blank line).
    uint64_t content_length = ~uint64_t{0};
    bool keep_alive = req.version_minor >= 1;  // 1.1 default on, 1.0 off
    bool reject_te = false;
    const char* reason =
        ParseHeaderBlock(buf_.substr(0, head_end + 2), line_end + 2,
                         limits_.max_headers, &req.headers, &content_length,
                         &keep_alive, &reject_te);
    if (reason != nullptr) {
      failed_ = true;
      error_ = reason;
      return ParseStatus::kError;
    }
    if (reject_te) {
      // No chunked support: mis-framing the body would desynchronize the
      // whole connection, so refuse loudly (server answers 501).
      failed_ = true;
      error_ = "Transfer-Encoding not supported";
      return ParseStatus::kError;
    }
    req.keep_alive = keep_alive;

    uint64_t body_len = content_length == ~uint64_t{0} ? 0 : content_length;
    if (body_len > limits_.max_body) {
      failed_ = true;
      error_ = "body too large";
      return ParseStatus::kError;
    }
    size_t body_start = head_end + 4;
    if (buf_.size() - body_start < body_len) {
      return status();  // body still in flight
    }
    req.body = buf_.substr(body_start, body_len);
    buf_.erase(0, body_start + body_len);
    ready_.push_back(std::move(req));
    // Loop: pipelined requests parse back-to-back from the same buffer.
  }
}

// ---------------------------------------------------------------------------
// ResponseParser
// ---------------------------------------------------------------------------

ParseStatus ResponseParser::status() const {
  if (failed_) {
    return ParseStatus::kError;
  }
  return ready_.empty() ? ParseStatus::kNeedMore : ParseStatus::kRequest;
}

void ResponseParser::Reset() {
  buf_.clear();
  ready_.clear();
  error_ = "";
  failed_ = false;
}

Response ResponseParser::TakeResponse() {
  Response r = std::move(ready_.front());
  ready_.pop_front();
  return r;
}

ParseStatus ResponseParser::Feed(const void* data, size_t len) {
  if (failed_) {
    return ParseStatus::kError;
  }
  buf_.append(static_cast<const char*>(data), len);
  return ParseBuffered();
}

ParseStatus ResponseParser::ParseBuffered() {
  for (;;) {
    size_t head_end = buf_.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      return status();
    }
    size_t line_end = buf_.find("\r\n");
    std::string line = buf_.substr(0, line_end);
    size_t sp1 = line.find(' ');
    size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                          : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos) {
      failed_ = true;
      error_ = "malformed status line";
      return ParseStatus::kError;
    }
    Response resp;
    if (!ParseVersion(line.substr(0, sp1), &resp.version_major,
                      &resp.version_minor)) {
      failed_ = true;
      error_ = "malformed HTTP version";
      return ParseStatus::kError;
    }
    std::string code = sp2 == std::string::npos
                           ? line.substr(sp1 + 1)
                           : line.substr(sp1 + 1, sp2 - sp1 - 1);
    uint64_t status_code = 0;
    if (!ParseDecimal(code, &status_code) || status_code < 100 ||
        status_code > 999) {
      failed_ = true;
      error_ = "malformed status code";
      return ParseStatus::kError;
    }
    resp.status = static_cast<int>(status_code);
    if (sp2 != std::string::npos) {
      resp.reason = line.substr(sp2 + 1);
    }

    uint64_t content_length = ~uint64_t{0};
    bool keep_alive = resp.version_minor >= 1;
    bool reject_te = false;
    const char* reason =
        ParseHeaderBlock(buf_.substr(0, head_end + 2), line_end + 2,
                         /*max_headers=*/64, &resp.headers, &content_length,
                         &keep_alive, &reject_te);
    if (reason != nullptr) {
      failed_ = true;
      error_ = reason;
      return ParseStatus::kError;
    }
    if (reject_te || content_length == ~uint64_t{0}) {
      // The loadgen protocol requires explicitly framed responses; a
      // missing Content-Length would mean read-until-close.
      failed_ = true;
      error_ = "response without Content-Length";
      return ParseStatus::kError;
    }
    resp.keep_alive = keep_alive;
    size_t body_start = head_end + 4;
    if (buf_.size() - body_start < content_length) {
      return status();
    }
    resp.body = buf_.substr(body_start, content_length);
    buf_.erase(0, body_start + content_length);
    ready_.push_back(std::move(resp));
  }
}

// ---------------------------------------------------------------------------
// Formatting
// ---------------------------------------------------------------------------

const char* StatusReason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 403:
      return "Forbidden";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string FormatResponseHead(int status, const char* reason,
                               size_t content_length, const char* content_type,
                               bool keep_alive) {
  char head[256];
  std::snprintf(head, sizeof(head),
                "HTTP/1.1 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: %s\r\n"
                "\r\n",
                status, reason != nullptr ? reason : StatusReason(status),
                content_type, content_length,
                keep_alive ? "keep-alive" : "close");
  return std::string(head);
}

}  // namespace oskit::http
