// HTTP/1.1 message parsing for the flagship netcomputer service.
//
// The paper's §7 case studies compose OSKit components into whole systems
// (the network computer, the standalone Java environment); this component is
// the protocol layer of that story grown to production shape: an
// incremental, segmentation-independent HTTP/1.1 parser feeding the
// selector-driven server in src/http/server.h.
//
// The parser is a pure byte-stream machine: Feed() appends whatever the
// transport delivered — one byte, a full pipeline of requests, a request
// torn mid-header — and completed requests become available in arrival
// order.  Parsing depends only on the accumulated byte sequence, never on
// segmentation, which the seeded property test in tests/http_test.cc pins
// by comparing every torn feed against a flat-buffer reference.
//
// Scope (what the flagship workload needs, nothing more): GET/HEAD/POST,
// CRLF line discipline, Content-Length bodies, HTTP/1.0-vs-1.1 keep-alive
// rules.  Transfer-Encoding is recognized and rejected (kError — the server
// answers 501) rather than silently mis-framed.

#ifndef OSKIT_SRC_HTTP_HTTP_H_
#define OSKIT_SRC_HTTP_HTTP_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

namespace oskit::http {

struct Request {
  std::string method;   // "GET", "HEAD", "POST", ...
  std::string target;   // raw request-target, query string included
  int version_major = 1;
  int version_minor = 1;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;      // Content-Length bytes, possibly empty
  bool keep_alive = true;

  // Case-insensitive header lookup; nullptr when absent.
  const std::string* Header(const char* name) const;
};

enum class ParseStatus {
  kNeedMore,  // no complete request buffered yet
  kRequest,   // at least one complete request ready (TakeRequest pops)
  kError,     // stream is malformed; sticky until Reset
};

class RequestParser {
 public:
  struct Limits {
    size_t max_request_line = 4096;
    size_t max_header_bytes = 16 * 1024;  // request line + all headers
    size_t max_headers = 64;
    size_t max_body = 1 << 20;
  };

  RequestParser() = default;
  explicit RequestParser(const Limits& limits) : limits_(limits) {}

  // Appends transport bytes and parses as far as possible.  Once the stream
  // has errored every further Feed returns kError (a malformed stream has
  // no recoverable framing).
  ParseStatus Feed(const void* data, size_t len);

  ParseStatus status() const;
  bool HasRequest() const { return !ready_.empty(); }

  // Pops the oldest completed request.  Only valid when HasRequest().
  Request TakeRequest();

  // Reason for kError ("" while healthy).
  const char* error() const { return error_; }

  // Bytes buffered but not yet part of a completed request.
  size_t pending_bytes() const { return buf_.size(); }

  void Reset();

 private:
  ParseStatus ParseBuffered();

  Limits limits_;
  std::string buf_;
  std::deque<Request> ready_;
  const char* error_ = "";
  bool failed_ = false;
};

// Client-side counterpart for loadgen: parses status-line + headers +
// Content-Length body responses (exactly what the server emits).
struct Response {
  int status = 0;
  std::string reason;
  int version_major = 1;
  int version_minor = 1;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;

  const std::string* Header(const char* name) const;
};

class ResponseParser {
 public:
  ParseStatus Feed(const void* data, size_t len);
  ParseStatus status() const;
  bool HasResponse() const { return !ready_.empty(); }
  Response TakeResponse();
  const char* error() const { return error_; }
  void Reset();

 private:
  ParseStatus ParseBuffered();

  std::string buf_;
  std::deque<Response> ready_;
  const char* error_ = "";
  bool failed_ = false;
};

// Serializes a response head (status line + the standard header block +
// blank line).  The caller appends the body itself — the server streams
// file bodies in after the head.
std::string FormatResponseHead(int status, const char* reason,
                               size_t content_length, const char* content_type,
                               bool keep_alive);

// Canonical reason phrase for the status codes the server emits.
const char* StatusReason(int status);

// ASCII case-insensitive string equality (header names).
bool EqualsIgnoreCase(const std::string& a, const char* b);

}  // namespace oskit::http

#endif  // OSKIT_SRC_HTTP_HTTP_H_
