#include "src/http/server.h"

#include <cstring>

#include "src/base/panic.h"

namespace oskit::http {

namespace {

constexpr size_t kMaxEvents = 64;

const char* ContentTypeFor(const std::string& path) {
  size_t dot = path.rfind('.');
  if (dot == std::string::npos) {
    return "application/octet-stream";
  }
  std::string ext = path.substr(dot);
  if (ext == ".html" || ext == ".htm") {
    return "text/html";
  }
  if (ext == ".txt") {
    return "text/plain";
  }
  return "application/octet-stream";
}

}  // namespace

Server::Server(ComPtr<SocketFactory> factory, ComPtr<NetSelector> selector,
               ComPtr<Dir> root, const Config& config)
    : factory_(std::move(factory)),
      selector_(std::move(selector)),
      root_(std::move(root)),
      config_(config),
      trace_(trace::ResolveTraceEnv(config.trace)),
      span_wait_(trace_, "http.span.wait"),
      span_accept_(trace_, "http.span.accept"),
      span_fs_read_(trace_, "http.span.fs_read"),
      span_dyn_(trace_, "http.span.dyn"),
      span_request_(trace_, "http.span.request") {
  counters_.Bind(&trace_->registry,
                 {{"http.conns.accepted", &accepted_},
                  {"http.conns.open", &open_, /*gauge=*/true},
                  {"http.conns.closed", &closed_},
                  {"http.requests", &requests_},
                  {"http.requests.pipelined", &pipelined_},
                  {"http.responses", &responses_},
                  {"http.bytes_in", &bytes_in_},
                  {"http.bytes_out", &bytes_out_},
                  {"http.errors.bad_request", &bad_requests_},
                  {"http.errors.not_found", &not_found_},
                  {"http.read_paused", &read_paused_},
                  {"http.sendfile_responses", &sendfile_responses_}});
}

Server::~Server() {
  for (Conn* conn : conns_) {
    if (!conn->dead) {
      selector_->Remove(conn->sock.get());
    }
    delete conn;
  }
  conns_.clear();
  if (listener_registered_) {
    selector_->Remove(listener_.get());
  }
}

void Server::AddDynRoute(const std::string& prefix, DynHandler handler) {
  dyn_routes_.emplace_back(prefix, std::move(handler));
}

Error Server::Start() {
  Error err = factory_->Create(SockDomain::kInet, SockType::kStream,
                               listener_.Receive());
  if (!Ok(err)) {
    return err;
  }
  listener_ext_ = ComPtr<SocketExt>::FromQuery(listener_.get());
  if (!listener_ext_) {
    return Error::kNotImpl;  // the server requires nonblocking sockets
  }
  listener_ext_->SetNonBlocking(true);
  err = listener_->Bind(config_.bind);
  if (!Ok(err)) {
    return err;
  }
  err = listener_->Listen(config_.backlog);
  if (!Ok(err)) {
    return err;
  }
  err = selector_->Add(listener_.get(), kNetReadable, /*edge=*/false,
                       /*token=*/nullptr);
  if (!Ok(err)) {
    return err;
  }
  listener_registered_ = true;
  return Error::kOk;
}

void Server::Run() {
  NetReadyEvent events[kMaxEvents];
  std::vector<Conn*> graveyard;
  while (!stopping_ || !conns_.empty()) {
    size_t count = 0;
    {
      trace::ScopedSpan wait(&span_wait_);
      Error err = selector_->Wait(events, kMaxEvents, /*block=*/true, &count);
      if (!Ok(err)) {
        break;
      }
    }
    for (size_t i = 0; i < count; ++i) {
      if (events[i].token == nullptr) {
        HandleListener();
        continue;
      }
      Conn* conn = static_cast<Conn*>(events[i].token);
      // A connection closed earlier in this batch may still appear in a
      // later event slot; its Conn outlives the batch in `conns_` as a
      // tombstone (dead flag) and is reaped below.
      if (conn->dead) {
        continue;
      }
      HandleConn(conn, events[i].events);
    }
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->dead) {
        graveyard.push_back(*it);
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
    for (Conn* conn : graveyard) {
      delete conn;
    }
    graveyard.clear();
  }
}

void Server::HandleListener() {
  trace::ScopedSpan accept(&span_accept_);
  std::vector<SockAddr> peers(config_.accept_batch);
  std::vector<Socket*> socks(config_.accept_batch, nullptr);
  for (;;) {
    size_t count = 0;
    Error err = listener_ext_->AcceptBatch(peers.data(), socks.data(),
                                           socks.size(), &count);
    if (!Ok(err) || count == 0) {
      return;
    }
    for (size_t i = 0; i < count; ++i) {
      ComPtr<Socket> sock(socks[i]);  // adopt the batch's reference
      if (stopping_) {
        continue;  // drops the connection
      }
      auto ext = ComPtr<SocketExt>::FromQuery(sock.get());
      if (!ext) {
        continue;
      }
      ext->SetNonBlocking(true);
      auto* conn = new Conn;
      conn->sock = std::move(sock);
      conn->ext = std::move(ext);
      // Optional zero-copy capability; interposed (secure-wrapped) sockets
      // typically refuse it and those connections just copy.
      conn->zc = ComPtr<SocketZeroCopy>::FromQuery(conn->sock.get());
      conn->interest = kNetReadable;
      err = selector_->Add(conn->sock.get(), conn->interest, /*edge=*/false,
                           conn);
      if (!Ok(err)) {
        delete conn;
        continue;
      }
      conns_.insert(conn);
      accepted_ += 1;
      open_ += 1;
    }
    if (count < socks.size()) {
      return;  // queue drained
    }
  }
}

void Server::HandleConn(Conn* conn, uint32_t events) {
  if ((events & kNetError) != 0) {
    CloseConn(conn);
    return;
  }
  if ((events & kNetReadable) != 0) {
    ReadInto(conn);
    if (conn->dead) {
      return;
    }
  }
  // Drain the parse -> respond -> flush cycle; a flush that empties the
  // staging buffer un-parks any requests held back by the high-water check.
  do {
    ProcessRequests(conn);
    Flush(conn);
  } while (!conn->dead && conn->out_pending == 0 &&
           conn->parser.HasRequest() && !conn->close_after);
  if (conn->dead) {
    return;
  }
  UpdateInterest(conn);
}

void Server::ReadInto(Conn* conn) {
  std::vector<char> chunk(config_.read_chunk);
  while (!conn->saw_eof &&
         conn->parser.status() != ParseStatus::kError &&
         conn->out_pending < config_.out_high_water) {
    size_t actual = 0;
    Error err = conn->sock->Recv(chunk.data(), chunk.size(), &actual);
    if (err == Error::kWouldBlock) {
      return;
    }
    if (!Ok(err)) {
      CloseConn(conn);
      return;
    }
    if (actual == 0) {
      conn->saw_eof = true;
      return;
    }
    bytes_in_ += actual;
    conn->parser.Feed(chunk.data(), actual);
  }
}

void Server::ProcessRequests(Conn* conn) {
  while (!conn->close_after && conn->parser.HasRequest() &&
         conn->out_pending < config_.out_high_water) {
    if (!conn->inflight.empty()) {
      pipelined_ += 1;
    }
    Request req = conn->parser.TakeRequest();
    requests_ += 1;
    HandleRequest(conn, req);
    if (conn->dead) {
      return;
    }
  }
  if (conn->parser.status() == ParseStatus::kError && !conn->close_after) {
    bad_requests_ += 1;
    int status =
        std::strstr(conn->parser.error(), "Transfer-Encoding") != nullptr
            ? 501
            : 400;
    std::string body = std::string(StatusReason(status)) + "\n";
    StageResponse(conn, status, body, "text/plain", /*keep_alive=*/false,
                  /*head_only=*/false, NowNs());
    conn->close_after = true;
  }
  if (conn->saw_eof && !conn->parser.HasRequest()) {
    conn->close_after = true;
  }
}

void Server::HandleRequest(Conn* conn, const Request& req) {
  uint64_t start_ns = NowNs();
  bool head_only = req.method == "HEAD";

  if (!config_.quit_path.empty() && req.target == config_.quit_path) {
    StageResponse(conn, 200, "bye\n", "text/plain", /*keep_alive=*/false,
                  head_only, start_ns);
    conn->close_after = true;
    BeginStopping();
    return;
  }

  for (const auto& [prefix, handler] : dyn_routes_) {
    if (req.target.compare(0, prefix.size(), prefix) == 0) {
      std::string body;
      std::string type = "text/plain";
      int status;
      {
        trace::ScopedSpan dyn(&span_dyn_);
        status = handler(req, &body, &type);
      }
      StageResponse(conn, status, body, type.c_str(), req.keep_alive,
                    head_only, start_ns);
      if (!req.keep_alive) {
        conn->close_after = true;
      }
      return;
    }
  }

  if (req.method != "GET" && req.method != "HEAD") {
    StageResponse(conn, 405, "Method Not Allowed\n", "text/plain",
                  req.keep_alive, head_only, start_ns);
    if (!req.keep_alive) {
      conn->close_after = true;
    }
    return;
  }

  // Static lookup: walk the path one component at a time (the COM Dir
  // contract — and the reason security wrappers can interpose per step).
  std::string path = req.target;
  size_t query = path.find('?');
  if (query != std::string::npos) {
    path.resize(query);
  }
  ComPtr<File> file;
  bool found = root_ && !path.empty() && path[0] == '/';
  if (found) {
    trace::ScopedSpan fs(&span_fs_read_);
    ComPtr<Dir> cur = root_;
    size_t pos = 1;
    while (found && pos <= path.size()) {
      size_t slash = path.find('/', pos);
      size_t end = slash == std::string::npos ? path.size() : slash;
      std::string comp = path.substr(pos, end - pos);
      pos = end + 1;
      if (comp.empty() || comp == "." || comp == "..") {
        found = false;
        break;
      }
      ComPtr<File> next;
      if (!Ok(cur->Lookup(comp.c_str(), next.Receive()))) {
        found = false;
        break;
      }
      if (slash == std::string::npos) {
        file = std::move(next);
        break;
      }
      cur = ComPtr<Dir>::FromQuery(next.get());
      if (!cur) {
        found = false;
      }
    }
    found = found && file;
  }
  if (!found) {
    not_found_ += 1;
    StageResponse(conn, 404, "Not Found\n", "text/plain", req.keep_alive,
                  head_only, start_ns);
    if (!req.keep_alive) {
      conn->close_after = true;
    }
    return;
  }

  FileStat st;
  std::string body;
  ComPtr<BufIoVec> vec;
  Error err;
  {
    trace::ScopedSpan fs(&span_fs_read_);
    err = file->GetStat(&st);
    if (Ok(err) && st.type == FileType::kDirectory) {
      err = Error::kIsDir;
    }
    if (Ok(err) && !head_only) {
      // Sendfile: when the socket can pull bytes (SocketZeroCopy) and the
      // file can publish them (BufIoVec), stage a window into the file and
      // skip the body read entirely — Flush streams it cache-to-wire.
      if (config_.sendfile && conn->zc && st.size > 0) {
        vec = ComPtr<BufIoVec>::FromQuery(file.get());
      }
      if (!vec && st.size > 0) {
        // Copied path (and the read+send ablation): read the whole body
        // through the staging buffer.
        body.resize(st.size);
        uint64_t off = 0;
        while (Ok(err) && off < st.size) {
          size_t actual = 0;
          err = file->Read(body.data() + off, off,
                           static_cast<size_t>(st.size - off), &actual);
          if (Ok(err) && actual == 0) {
            err = Error::kIo;  // shorter than its stat said
          }
          off += actual;
        }
      }
    }
  }
  if (!Ok(err)) {
    StageResponse(conn, err == Error::kIsDir ? 403 : 500,
                  "Unavailable\n", "text/plain", req.keep_alive, head_only,
                  start_ns);
  } else if (head_only) {
    // HEAD: full Content-Length, no body bytes.
    StageBytes(conn, FormatResponseHead(200, nullptr, st.size,
                                        ContentTypeFor(path), req.keep_alive));
    FinishResponse(conn, start_ns);
  } else if (vec) {
    StageBytes(conn, FormatResponseHead(200, nullptr, st.size,
                                        ContentTypeFor(path), req.keep_alive));
    OutChunk chunk;
    chunk.file = std::move(vec);
    chunk.file_off = 0;
    chunk.len = static_cast<size_t>(st.size);
    conn->out_pending += chunk.len;
    conn->outq.push_back(std::move(chunk));
    sendfile_responses_ += 1;
    FinishResponse(conn, start_ns);
  } else {
    StageResponse(conn, 200, body, ContentTypeFor(path), req.keep_alive,
                  /*head_only=*/false, start_ns);
  }
  if (!req.keep_alive) {
    conn->close_after = true;
  }
}

void Server::StageBytes(Conn* conn, std::string bytes) {
  if (bytes.empty()) {
    return;
  }
  conn->out_pending += bytes.size();
  // Extend the tail chunk when it is also literal bytes: keeps pipelined
  // small responses in one Send call instead of one per header/body piece.
  if (!conn->outq.empty() && !conn->outq.back().file) {
    conn->outq.back().bytes += bytes;
    conn->outq.back().len = conn->outq.back().bytes.size();
    return;
  }
  OutChunk chunk;
  chunk.len = bytes.size();
  chunk.bytes = std::move(bytes);
  conn->outq.push_back(std::move(chunk));
}

void Server::FinishResponse(Conn* conn, uint64_t start_ns) {
  conn->staged_total = conn->sent_total + conn->out_pending;
  conn->inflight.push_back({conn->staged_total, start_ns});
  responses_ += 1;
}

void Server::StageResponse(Conn* conn, int status, const std::string& body,
                           const char* content_type, bool keep_alive,
                           bool head_only, uint64_t start_ns) {
  std::string staged = FormatResponseHead(status, nullptr, body.size(),
                                          content_type, keep_alive);
  if (!head_only) {
    staged += body;
  }
  StageBytes(conn, std::move(staged));
  FinishResponse(conn, start_ns);
}

void Server::Flush(Conn* conn) {
  while (!conn->outq.empty()) {
    OutChunk& chunk = conn->outq.front();
    if (chunk.sent == chunk.len) {
      conn->outq.pop_front();
      continue;
    }
    size_t actual = 0;
    Error err;
    if (chunk.file) {
      err = conn->zc->SendBufIo(chunk.file.get(), chunk.file_off + chunk.sent,
                                chunk.len - chunk.sent, &actual);
    } else {
      err = conn->sock->Send(chunk.bytes.data() + chunk.sent,
                             chunk.len - chunk.sent, &actual);
    }
    if (Ok(err)) {
      chunk.sent += actual;
      conn->out_pending -= actual;
      conn->sent_total += actual;
      bytes_out_ += actual;
      if (actual == 0) {
        break;
      }
    } else if (err == Error::kWouldBlock) {
      break;
    } else {
      CloseConn(conn);
      return;
    }
  }
  uint64_t now = NowNs();
  while (!conn->inflight.empty() &&
         conn->inflight.front().end <= conn->sent_total) {
    uint64_t start = conn->inflight.front().start_ns;
    span_request_.AddSample(now >= start ? now - start : 0);
    conn->inflight.pop_front();
  }
}

void Server::UpdateInterest(Conn* conn) {
  if (stopping_) {
    conn->close_after = true;
  }
  bool out_pending = conn->out_pending > 0;
  if (conn->close_after && !out_pending) {
    CloseConn(conn);
    return;
  }
  uint32_t desired = 0;
  if (!conn->close_after && !conn->saw_eof &&
      conn->out_pending < config_.out_high_water) {
    desired |= kNetReadable;
  } else if ((conn->interest & kNetReadable) != 0 && !conn->close_after &&
             !conn->saw_eof) {
    // Transition into backpressure: stop reading until the slow peer
    // drains what is already staged.
    read_paused_ += 1;
  }
  if (out_pending) {
    desired |= kNetWritable;
  }
  if (desired != conn->interest) {
    if (Ok(selector_->Modify(conn->sock.get(), desired, /*edge=*/false))) {
      conn->interest = desired;
    }
  }
}

void Server::CloseConn(Conn* conn) {
  if (conn->dead) {
    return;
  }
  selector_->Remove(conn->sock.get());
  conn->sock->Shutdown(SockShutdown::kBoth);
  conn->dead = true;
  closed_ += 1;
  open_ -= 1;
}

void Server::BeginStopping() {
  if (stopping_) {
    return;
  }
  stopping_ = true;
  if (listener_registered_) {
    selector_->Remove(listener_.get());
    listener_registered_ = false;
  }
  // Idle connections never produce another event; close them now.  Draining
  // ones (the quit response itself, slow readers mid-flush) finish first.
  for (Conn* conn : conns_) {
    if (!conn->dead && conn->out_pending == 0) {
      CloseConn(conn);
    }
  }
}

}  // namespace oskit::http
