// The flagship HTTP/1.1 server: netcomputer v2's engine.
//
// One fiber drives every connection through the epoll-style NetSelector —
// batched accept off the listener, nonblocking reads into the incremental
// RequestParser, responses staged per connection and flushed as the send
// window opens.  Static content comes from a COM Dir tree (FFS over the
// journal in the flagship composition); dynamic routes dispatch to
// registered handlers (the KVM interpreter in netcomputer v2).  Because
// everything arrives via COM interfaces, the same server runs unwrapped or
// behind the src/secure interposers unchanged — the secure HTTP campaign
// phase depends on exactly that.
//
// Attribution: the server owns the first real span instrumentation —
// scoped spans around the selector wait / accept burst / FS read / dyn
// dispatch, and an interval span per request from parse-complete to
// response fully flushed (pipelining and slow readers make request
// lifetimes overlap, which is what SpanSite::AddSample exists for).

#ifndef OSKIT_SRC_HTTP_SERVER_H_
#define OSKIT_SRC_HTTP_SERVER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/com/filesystem.h"
#include "src/com/netselector.h"
#include "src/com/socket.h"
#include "src/http/http.h"
#include "src/trace/trace.h"

namespace oskit::http {

class Server {
 public:
  struct Config {
    SockAddr bind;  // port required; addr may be kInetAny
    int backlog = 128;
    size_t accept_batch = 64;
    size_t read_chunk = 4096;
    // Stop reading a connection while this much output is pending (slow
    // readers must not balloon the staging buffer).
    size_t out_high_water = 256 * 1024;
    // Requests to this target shut the server down cleanly (responds 200,
    // stops accepting, drains in-flight responses).  Empty disables.
    std::string quit_path = "/__quit";
    // Serve static bodies zero-copy when the file grants BufIoVec and the
    // socket grants SocketZeroCopy (sendfile).  Off = the counted read+send
    // ablation: every body byte is copied through the staging buffer.
    bool sendfile = true;
    trace::TraceEnv* trace = nullptr;  // null = process default
    // Simulated-time source for per-request latency spans; spans record 0 ns
    // when unset.
    std::function<uint64_t()> now;
  };

  // Dynamic route handler: fills body/content_type, returns the status code.
  using DynHandler =
      std::function<int(const Request&, std::string* body,
                        std::string* content_type)>;

  // `root` may be null (static requests answer 404).  The factory must hand
  // out sockets implementing SocketExt, and the selector must accept them —
  // both the native stack surface and the secure wrappers qualify.
  Server(ComPtr<SocketFactory> factory, ComPtr<NetSelector> selector,
         ComPtr<Dir> root, const Config& config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Routes every target with this prefix to `handler` (checked in
  // registration order, before static lookup).
  void AddDynRoute(const std::string& prefix, DynHandler handler);

  // Creates/binds/registers the listener.  Must precede Run.
  Error Start();

  // The server fiber body: harvests selector events until a quit-path
  // request has been served and every connection has drained.
  void Run();

  // Counters (also in the registry under http.*).
  uint64_t requests() const { return requests_.value(); }
  uint64_t responses() const { return responses_.value(); }
  size_t open_conns() const { return conns_.size(); }
  bool stopping() const { return stopping_; }

 private:
  // One staged piece of a connection's output: either literal bytes
  // (headers, dynamic/copied bodies) or a window into a BufIoVec file that
  // Flush pushes through SocketZeroCopy::SendBufIo without staging a copy.
  struct OutChunk {
    std::string bytes;        // literal form (when `file` is null)
    ComPtr<BufIoVec> file;    // sendfile form
    uint64_t file_off = 0;    // file byte the chunk starts at
    size_t len = 0;           // total chunk length
    size_t sent = 0;          // bytes already accepted by the socket
  };

  struct Conn {
    ComPtr<Socket> sock;
    ComPtr<SocketExt> ext;
    ComPtr<SocketZeroCopy> zc;  // null: socket can't sendfile
    RequestParser parser;
    std::deque<OutChunk> outq;  // staged output not yet accepted by the socket
    size_t out_pending = 0;     // unsent bytes across outq
    uint64_t sent_total = 0;  // lifetime bytes accepted by Send
    uint64_t staged_total = 0;  // lifetime bytes staged
    // In-flight responses: span closes when sent_total reaches `end`.
    struct PendingReq {
      uint64_t end;
      uint64_t start_ns;
    };
    std::deque<PendingReq> inflight;
    uint32_t interest = 0;  // mask currently registered with the selector
    bool close_after = false;  // close once output drains
    bool saw_eof = false;
    bool dead = false;  // unregistered, awaiting delete
  };

  void HandleListener();
  void HandleConn(Conn* conn, uint32_t events);
  void ReadInto(Conn* conn);
  void ProcessRequests(Conn* conn);
  void HandleRequest(Conn* conn, const Request& req);
  void StageResponse(Conn* conn, int status, const std::string& body,
                     const char* content_type, bool keep_alive, bool head_only,
                     uint64_t start_ns);
  void StageBytes(Conn* conn, std::string bytes);
  void FinishResponse(Conn* conn, uint64_t start_ns);
  void Flush(Conn* conn);
  void UpdateInterest(Conn* conn);
  void CloseConn(Conn* conn);
  void BeginStopping();
  uint64_t NowNs() const { return config_.now ? config_.now() : 0; }

  ComPtr<SocketFactory> factory_;
  ComPtr<NetSelector> selector_;
  ComPtr<Dir> root_;
  Config config_;
  trace::TraceEnv* trace_;

  ComPtr<Socket> listener_;
  ComPtr<SocketExt> listener_ext_;
  bool listener_registered_ = false;
  std::unordered_set<Conn*> conns_;
  std::vector<std::pair<std::string, DynHandler>> dyn_routes_;
  bool stopping_ = false;

  trace::Counter accepted_;
  trace::Counter open_;  // gauge
  trace::Counter closed_;
  trace::Counter requests_;
  trace::Counter pipelined_;
  trace::Counter responses_;
  trace::Counter bytes_in_;
  trace::Counter bytes_out_;
  trace::Counter bad_requests_;
  trace::Counter not_found_;
  trace::Counter read_paused_;
  trace::Counter sendfile_responses_;  // static bodies staged zero-copy
  trace::CounterBlock counters_;

  trace::SpanSite span_wait_;
  trace::SpanSite span_accept_;
  trace::SpanSite span_fs_read_;
  trace::SpanSite span_dyn_;
  trace::SpanSite span_request_;
};

}  // namespace oskit::http

#endif  // OSKIT_SRC_HTTP_SERVER_H_
