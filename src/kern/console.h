// Base console over the simulated UART.
//
// The kernel support library's default console: what the minimal C library's
// putchar lands on unless the client overrides it (§3.4, §4.3.1).

#ifndef OSKIT_SRC_KERN_CONSOLE_H_
#define OSKIT_SRC_KERN_CONSOLE_H_

#include "src/machine/simulation.h"
#include "src/machine/uart.h"

namespace oskit {

class BaseConsole {
 public:
  BaseConsole(Simulation* sim, Uart* uart) : sim_(sim), uart_(uart) {}

  int Putchar(int c) {
    if (c == '\n') {
      uart_->WriteByte('\r');
    }
    uart_->WriteByte(static_cast<uint8_t>(c));
    return c;
  }

  int Puts(const char* s) {
    while (*s != '\0') {
      Putchar(*s++);
    }
    Putchar('\n');
    return 0;
  }

  // Non-blocking: -1 when no byte is pending.
  int TryGetchar() { return uart_->RxReady() ? uart_->ReadByte() : -1; }

  // Blocking read (process-level: polls while the simulated world runs).
  int Getchar() {
    sim_->PollWait([this] { return uart_->RxReady(); });
    return uart_->ReadByte();
  }

 private:
  Simulation* sim_;
  Uart* uart_;
};

}  // namespace oskit

#endif  // OSKIT_SRC_KERN_CONSOLE_H_
