#include "src/kern/gdb_stub.h"

#include <cstdio>
#include <cstring>

#include "src/base/panic.h"

namespace oskit {
namespace {

const char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

// Little-endian hex encoding of a 64-bit register, as GDB expects.
void AppendRegHex(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    uint8_t byte = static_cast<uint8_t>(value >> (i * 8));
    out->push_back(kHexDigits[byte >> 4]);
    out->push_back(kHexDigits[byte & 0xf]);
  }
}

bool ParseRegHex(const char* hex, uint64_t* out) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    int hi = HexValue(hex[i * 2]);
    int lo = HexValue(hex[i * 2 + 1]);
    if (hi < 0 || lo < 0) {
      return false;
    }
    value |= static_cast<uint64_t>((hi << 4) | lo) << (i * 8);
  }
  *out = value;
  return true;
}

bool ParseHexNumber(const std::string& s, size_t* pos, uint64_t* out) {
  uint64_t value = 0;
  bool any = false;
  while (*pos < s.size()) {
    int v = HexValue(s[*pos]);
    if (v < 0) {
      break;
    }
    value = (value << 4) | static_cast<uint64_t>(v);
    ++*pos;
    any = true;
  }
  *out = value;
  return any;
}

}  // namespace

GdbStub::GdbStub(Machine* machine, Uart* uart) : machine_(machine), uart_(uart) {}

void GdbStub::AttachDefaultTraps(Cpu* cpu) {
  auto hook = [this](int signal) {
    return [this, signal](TrapFrame& frame) -> bool {
      HandleException(signal, frame);
      return true;
    };
  };
  cpu->SetVector(kTrapBreakpoint, hook(5));         // SIGTRAP
  cpu->SetVector(kTrapDebug, hook(5));              // SIGTRAP
  cpu->SetVector(kTrapDivide, hook(8));             // SIGFPE
  cpu->SetVector(kTrapGeneralProtection, hook(11)); // SIGSEGV
  cpu->SetVector(kTrapPageFault, hook(11));         // SIGSEGV
}

int GdbStub::ReadByteBlocking() {
  if (!uart_->RxReady()) {
    if (machine_->sim().scheduler().current() != nullptr) {
      machine_->sim().PollWait([this] { return uart_->RxReady(); });
    } else {
      Panic("gdb stub: debugger link idle with no way to wait");
    }
  }
  return uart_->ReadByte();
}

std::string GdbStub::ReceivePacket() {
  for (;;) {
    // Hunt for the start-of-packet marker.
    int c = ReadByteBlocking();
    if (c == 0x03) {
      return "\x03";  // interrupt request
    }
    if (c != '$') {
      continue;
    }
    std::string payload;
    uint8_t sum = 0;
    for (;;) {
      c = ReadByteBlocking();
      if (c == '#') {
        break;
      }
      sum = static_cast<uint8_t>(sum + c);
      payload.push_back(static_cast<char>(c));
    }
    int hi = HexValue(static_cast<char>(ReadByteBlocking()));
    int lo = HexValue(static_cast<char>(ReadByteBlocking()));
    if (hi >= 0 && lo >= 0 && static_cast<uint8_t>((hi << 4) | lo) == sum) {
      uart_->WriteByte('+');
      return payload;
    }
    uart_->WriteByte('-');  // bad checksum: ask for retransmission
  }
}

void GdbStub::SendPacket(const std::string& payload) {
  uint8_t sum = 0;
  for (char c : payload) {
    sum = static_cast<uint8_t>(sum + static_cast<uint8_t>(c));
  }
  uart_->WriteByte('$');
  for (char c : payload) {
    uart_->WriteByte(static_cast<uint8_t>(c));
  }
  uart_->WriteByte('#');
  uart_->WriteByte(static_cast<uint8_t>(kHexDigits[sum >> 4]));
  uart_->WriteByte(static_cast<uint8_t>(kHexDigits[sum & 0xf]));
  // A full implementation would wait for '+' and retransmit on '-'; the
  // simulated serial line never corrupts data, so the ack (if the test sends
  // one) is consumed by the next ReceivePacket() hunt loop.
}

uint64_t* GdbStub::RegSlot(TrapFrame& frame, int index) {
  if (index >= 0 && index < 8) {
    return &frame.gprs[index];
  }
  switch (index) {
    case 8:
      return &frame.pc;
    case 9:
      return &frame.sp;
    case 10:
      return &frame.flags;
    default:
      return nullptr;
  }
}

std::string GdbStub::ReadRegisters(const TrapFrame& frame) {
  std::string out;
  TrapFrame& mutable_frame = const_cast<TrapFrame&>(frame);
  for (int i = 0; i < kNumRegs; ++i) {
    AppendRegHex(&out, *RegSlot(mutable_frame, i));
  }
  return out;
}

std::string GdbStub::WriteRegisters(const std::string& hex, TrapFrame& frame) {
  if (hex.size() < static_cast<size_t>(kNumRegs) * 16) {
    return "E01";
  }
  for (int i = 0; i < kNumRegs; ++i) {
    if (!ParseRegHex(hex.c_str() + i * 16, RegSlot(frame, i))) {
      return "E01";
    }
  }
  return "OK";
}

std::string GdbStub::ReadMemory(const std::string& args) {
  size_t pos = 0;
  uint64_t addr = 0;
  uint64_t len = 0;
  if (!ParseHexNumber(args, &pos, &addr) || pos >= args.size() || args[pos] != ',') {
    return "E01";
  }
  ++pos;
  if (!ParseHexNumber(args, &pos, &len)) {
    return "E01";
  }
  PhysMem& phys = machine_->phys();
  if (addr + len > phys.size() || addr + len < addr) {
    return "E02";
  }
  std::string out;
  const auto* p = static_cast<const uint8_t*>(phys.PtrAt(addr));
  for (uint64_t i = 0; i < len; ++i) {
    out.push_back(kHexDigits[p[i] >> 4]);
    out.push_back(kHexDigits[p[i] & 0xf]);
  }
  return out;
}

std::string GdbStub::WriteMemory(const std::string& args) {
  size_t pos = 0;
  uint64_t addr = 0;
  uint64_t len = 0;
  if (!ParseHexNumber(args, &pos, &addr) || pos >= args.size() || args[pos] != ',') {
    return "E01";
  }
  ++pos;
  if (!ParseHexNumber(args, &pos, &len) || pos >= args.size() || args[pos] != ':') {
    return "E01";
  }
  ++pos;
  if (args.size() - pos < len * 2) {
    return "E01";
  }
  PhysMem& phys = machine_->phys();
  if (addr + len > phys.size() || addr + len < addr) {
    return "E02";
  }
  auto* p = static_cast<uint8_t*>(phys.PtrAt(addr));
  for (uint64_t i = 0; i < len; ++i) {
    int hi = HexValue(args[pos + i * 2]);
    int lo = HexValue(args[pos + i * 2 + 1]);
    if (hi < 0 || lo < 0) {
      return "E01";
    }
    p[i] = static_cast<uint8_t>((hi << 4) | lo);
  }
  return "OK";
}

std::string GdbStub::ReadOneRegister(const std::string& args, const TrapFrame& frame) {
  size_t pos = 0;
  uint64_t index = 0;
  if (!ParseHexNumber(args, &pos, &index) || index >= kNumRegs) {
    return "E01";
  }
  std::string out;
  TrapFrame& mutable_frame = const_cast<TrapFrame&>(frame);
  AppendRegHex(&out, *RegSlot(mutable_frame, static_cast<int>(index)));
  return out;
}

std::string GdbStub::WriteOneRegister(const std::string& args, TrapFrame& frame) {
  size_t pos = 0;
  uint64_t index = 0;
  if (!ParseHexNumber(args, &pos, &index) || index >= kNumRegs ||
      pos >= args.size() || args[pos] != '=') {
    return "E01";
  }
  ++pos;
  if (args.size() - pos < 16 ||
      !ParseRegHex(args.c_str() + pos, RegSlot(frame, static_cast<int>(index)))) {
    return "E01";
  }
  return "OK";
}

void GdbStub::HandleException(int signal, TrapFrame& frame) {
  step_requested_ = false;
  char stop[8];
  std::snprintf(stop, sizeof(stop), "T%02x", signal);
  SendPacket(stop);

  for (;;) {
    std::string packet = ReceivePacket();
    ++packets_handled_;
    if (packet.empty()) {
      SendPacket("");
      continue;
    }
    switch (packet[0]) {
      case '?':
        SendPacket(stop);
        break;
      case 'g':
        SendPacket(ReadRegisters(frame));
        break;
      case 'G':
        SendPacket(WriteRegisters(packet.substr(1), frame));
        break;
      case 'm':
        SendPacket(ReadMemory(packet.substr(1)));
        break;
      case 'M':
        SendPacket(WriteMemory(packet.substr(1)));
        break;
      case 'p':
        SendPacket(ReadOneRegister(packet.substr(1), frame));
        break;
      case 'P':
        SendPacket(WriteOneRegister(packet.substr(1), frame));
        break;
      case 'c':
        return;  // continue the target
      case 's':
        step_requested_ = true;
        return;
      case 'k':
        killed_ = true;
        return;
      case 'D':
        SendPacket("OK");
        return;  // detach
      case 'q':
        if (packet.rfind("qSupported", 0) == 0) {
          SendPacket("PacketSize=4096");
        } else {
          SendPacket("");  // unsupported query
        }
        break;
      default:
        SendPacket("");  // unsupported command
        break;
    }
  }
}

}  // namespace oskit
