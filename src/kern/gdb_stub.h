// GDB remote-serial-protocol stub (paper §3.5).
//
// "The stub is a small module that handles traps in the client OS
// environment and communicates over a serial line with GDB running on
// another machine, using GDB's standard remote debugging protocol."
//
// This is a real implementation of the wire protocol ('$data#cksum' frames,
// '+'/'-' acks, g/G/m/M/p/P/c/s/k/?/qSupported packets) speaking over the
// simulated debug UART.  It attaches to trap vectors and, when a trap fires,
// serves the debugger until it resumes the target.  Tests drive it with a
// protocol-level mock debugger.

#ifndef OSKIT_SRC_KERN_GDB_STUB_H_
#define OSKIT_SRC_KERN_GDB_STUB_H_

#include <cstdint>
#include <string>

#include "src/machine/machine.h"

namespace oskit {

class GdbStub {
 public:
  // Register file exposed to GDB: 8 GPRs, pc, sp, flags (11 x 64-bit).
  static constexpr int kNumRegs = 11;

  GdbStub(Machine* machine, Uart* uart);

  // Hooks the standard debug-relevant trap vectors (breakpoint, debug,
  // divide, GP fault, page fault) so they enter the stub.
  void AttachDefaultTraps(Cpu* cpu);

  // Serves the debugger for one stop: sends the stop reply for `signal`,
  // then processes packets until the debugger continues/steps/kills.
  // Mutations of `frame` (register writes) are visible to the caller.
  void HandleException(int signal, TrapFrame& frame);

  bool killed() const { return killed_; }
  bool step_requested() const { return step_requested_; }
  uint64_t packets_handled() const { return packets_handled_; }

 private:
  // Low-level framing.
  std::string ReceivePacket();
  void SendPacket(const std::string& payload);
  int ReadByteBlocking();

  // Packet handlers; each returns the reply payload.
  std::string ReadRegisters(const TrapFrame& frame);
  std::string WriteRegisters(const std::string& hex, TrapFrame& frame);
  std::string ReadMemory(const std::string& args);
  std::string WriteMemory(const std::string& args);
  std::string ReadOneRegister(const std::string& args, const TrapFrame& frame);
  std::string WriteOneRegister(const std::string& args, TrapFrame& frame);

  static uint64_t* RegSlot(TrapFrame& frame, int index);

  Machine* machine_;
  Uart* uart_;
  bool killed_ = false;
  bool step_requested_ = false;
  uint64_t packets_handled_ = 0;
};

}  // namespace oskit

#endif  // OSKIT_SRC_KERN_GDB_STUB_H_
