#include "src/kern/kernel.h"

#include <cstdio>
#include <cstring>

namespace oskit {

KernelEnv::KernelEnv(Machine* machine, const MultiBootInfo& info, SleepMode sleep_mode,
                     trace::TraceEnv* trace, fault::FaultEnv* fault)
    : machine_(machine),
      info_(info),
      console_(&machine->sim(), &machine->console_uart()),
      trace_(trace::ResolveTraceEnv(trace)),
      fault_(fault::ResolveFaultEnv(fault)) {
  if (sleep_mode == SleepMode::kFiber) {
    sleep_env_ = std::make_unique<FiberSleepEnv>(&machine->sim());
  } else {
    sleep_env_ = std::make_unique<SpinSleepEnv>(&machine->sim());
  }
  // Bring the observability substrate up with the machine: timestamps from
  // the simulated clock, the CPU's dispatch counters and flight-recorder
  // events, and the LMM's allocation instrumentation.
  trace_->recorder.SetTimeSource(
      [clock = &machine->sim().clock()] { return clock->Now(); });
  trace_->spans.SetTimeSource(
      [clock = &machine->sim().clock()] { return clock->Now(); });
  Cpu& cpu = machine_->cpu();
  Pit& pit = machine_->pit();
  cpu_counters_.Bind(&trace_->registry,
                     {{"machine.trap.dispatched", &cpu.counters().traps_dispatched},
                      {"machine.irq.dispatched", &cpu.counters().irq_dispatched},
                      {"machine.pit.skew_events", &pit.skew_events_counter()},
                      {"machine.pit.skew_compensations",
                       &pit.skew_compensations_counter()}});
  cpu.SetTraceRecorder(&trace_->recorder);
  lmm_.BindTrace(trace_);
  // Thread the fault environment through this kernel's machine: the fault
  // campaign arms one env and every simulated device on the machine sees it.
  lmm_.BindFault(fault_);
  fault_->BindTrace(trace_);
  pit.SetFaultEnv(fault_);
  for (const auto& nic : machine_->nics()) {
    nic->SetFaultEnv(fault_);
    // Per-NIC interrupt-coalescing counters; with several NICs the registry
    // reports the sum, like every other multi-instance binding.
    auto block = std::make_unique<trace::CounterBlock>();
    block->Bind(&trace_->registry,
                {{"nic.rx.coalesce.frames", &nic->rx_coalesce_frames_counter()},
                 {"nic.rx.coalesce.irqs", &nic->rx_coalesce_irqs_counter()},
                 {"nic.rx.coalesce.threshold_fires",
                  &nic->rx_coalesce_threshold_counter()},
                 {"nic.rx.coalesce.holdoff_fires",
                  &nic->rx_coalesce_holdoff_counter()},
                 {"nic.rx.coalesce.ring_fallback_fires",
                  &nic->rx_coalesce_ring_counter()}});
    nic_counters_.push_back(std::move(block));
  }
  for (const auto& disk : machine_->disks()) {
    disk->SetFaultEnv(fault_);
    // Per-disk durability counters; with several disks the registry reports
    // the sum, like every other multi-instance binding.
    auto block = std::make_unique<trace::CounterBlock>();
    block->Bind(&trace_->registry,
                {{"disk.wcache.writes", &disk->wcache_writes_counter()},
                 {"disk.wcache.flushes", &disk->wcache_flushes_counter()},
                 {"disk.wcache.dropped", &disk->wcache_dropped_counter()},
                 {"disk.wcache.torn", &disk->wcache_torn_counter()}});
    disk_counters_.push_back(std::move(block));
  }
  InstallDefaultHandlers();
  SetupMemory();
}

KernelEnv::~KernelEnv() {
  machine_->cpu().SetTraceRecorder(nullptr);
  // The time source captured this machine's clock; don't leave it dangling
  // in a shared (default) environment.
  trace_->recorder.SetTimeSource(nullptr);
  trace_->spans.SetTimeSource(nullptr);
  // The fault environment may outlive this kernel's trace registry (a
  // campaign sweeps many worlds with one env); move its reporting back to
  // the process-global default while the registry is still alive.
  fault_->BindTrace(nullptr);
  memmon_.reset();  // detaches itself from PhysMem
  if (memmon_map_ != nullptr) {
    MemFree(memmon_map_, memmon_map_bytes_);
  }
}

Error KernelEnv::EnableMemoryMonitor() {
  if (memmon_ != nullptr) {
    return Error::kExist;
  }
  memmon_ =
      std::make_unique<MemMonitor>(&machine_->phys(), &machine_->cpu(), trace_);
  size_t bytes = memmon_->map_bytes_needed();
  size_t rounded = (bytes + kLmmPageSize - 1) & ~size_t{kLmmPageSize - 1};
  void* storage = MemAllocAligned(rounded, 0, /*align_bits=*/12);
  if (storage == nullptr) {
    memmon_.reset();
    return Error::kNoMem;
  }
  Error err = memmon_->Enable(storage, rounded);
  if (err != Error::kOk) {
    MemFree(storage, rounded);
    memmon_.reset();
    return err;
  }
  memmon_map_ = storage;
  memmon_map_bytes_ = rounded;
  machine_->phys().AttachMonitor(memmon_.get());
  for (const auto& disk : machine_->disks()) {
    disk->AttachDmaMonitor(&machine_->phys());
  }
  mon_counters_.Bind(&trace_->registry,
                     {{"mon.violation.caught", &mon_caught_}});
  // Violations arrive as magic-tagged GP/page faults.  They are counted,
  // attributed, and RECOVERED — the offending domain dies, the world keeps
  // running.  Anything else chains to the previously installed handler
  // (§6.2.4's fall-back discipline), so organic traps still panic/dump.
  for (uint32_t vec :
       {uint32_t{kTrapGeneralProtection}, uint32_t{kTrapPageFault}}) {
    auto prev = std::make_shared<Cpu::Handler>();
    *prev = machine_->cpu().SetVector(
        vec, [this, prev](TrapFrame& frame) -> bool {
          if ((frame.error_code & 0xffff0000u) == MemMonitor::kFaultMagic) {
            ++mon_caught_;
            const MemMonitor::Violation* v = memmon_->last_violation();
            if (v != nullptr && v->domain != MemMonitor::kKernelDomain) {
              memmon_->KillDomain(v->domain);
            }
            return true;  // recovered: the store never landed
          }
          return *prev ? (*prev)(frame) : false;
        });
  }
  return Error::kOk;
}

void KernelEnv::InstallDefaultHandlers() {
  Cpu& cpu = machine_->cpu();
  // Default trap behaviour: dump the frame and panic — the "debugging works
  // as expected" baseline.
  for (uint32_t vec = 0; vec < kIrqBaseVector; ++vec) {
    cpu.SetFallback(vec, [this](TrapFrame& frame) -> bool {
      Panic("%s: unexpected trap\n%s", machine_->name().c_str(),
            FormatTrapFrame(frame).c_str());
      return true;
    });
  }
  // Default IRQ behaviour: count spurious deliveries, don't die.
  for (int irq = 0; irq < Pic::kIrqLines; ++irq) {
    cpu.SetFallback(kIrqBaseVector + irq, [](TrapFrame&) -> bool { return true; });
    cpu.SetVector(kIrqBaseVector + irq, [this, irq](TrapFrame&) -> bool {
      if (irq == Pit::kIrq && timer_handler_) {
        timer_handler_();
        return true;
      }
      if (irq_handlers_[irq]) {
        irq_handlers_[irq]();
        return true;
      }
      return false;  // fall back: spurious
    });
  }
}

void KernelEnv::SetupMemory() {
  PhysMem& phys = machine_->phys();
  uint8_t* base = phys.base();
  size_t total = phys.size();

  // Region types and priorities follow the x86 kernel support library:
  // generic allocations prefer high memory so that scarce low/DMA memory
  // stays available for the allocations that really need it (§3.3).
  lmm_.AddRegion(&region_low_, base, PhysMem::kBiosAreaEnd,
                 kLmmFlag1Mb | kLmmFlag16Mb, /*priority=*/10);
  lmm_.AddRegion(&region_dma_, base + PhysMem::kBiosAreaEnd,
                 PhysMem::kDmaLimit - PhysMem::kBiosAreaEnd, kLmmFlag16Mb,
                 /*priority=*/20);
  if (total > PhysMem::kDmaLimit) {
    lmm_.AddRegion(&region_high_, base + PhysMem::kDmaLimit,
                   total - PhysMem::kDmaLimit, 0, /*priority=*/30);
  }
  lmm_.AddFree(base, total);

  // Reserve page zero (null-pointer guard) and the BIOS/video hole that a
  // real PC would have at 640K..1M.
  lmm_.RemoveFree(base, kLmmPageSize);
  lmm_.RemoveFree(base + 640 * 1024, PhysMem::kBiosAreaEnd - 640 * 1024);

  // Reserve every boot module so the client can use them later (§3.2: the
  // library "automatically locates all of the boot modules loaded with the
  // kernel and reserves the physical memory in which they are located").
  for (const BootModule& module : info_.modules) {
    lmm_.RemoveFree(base + module.start, module.end - module.start);
  }
}

void KernelEnv::IrqRegister(int irq, IrqHandler handler) {
  OSKIT_ASSERT(irq >= 0 && irq < Pic::kIrqLines);
  irq_handlers_[irq] = std::move(handler);
  machine_->pic().Unmask(irq);
}

void KernelEnv::IrqUnregister(int irq) {
  OSKIT_ASSERT(irq >= 0 && irq < Pic::kIrqLines);
  machine_->pic().Mask(irq);
  irq_handlers_[irq] = nullptr;
}

void KernelEnv::SetTrapHandler(uint32_t vector, Cpu::Handler handler) {
  machine_->cpu().SetVector(vector, std::move(handler));
}

void KernelEnv::SetTimer(uint32_t hz, IrqHandler handler) {
  timer_handler_ = std::move(handler);
  machine_->pic().Unmask(Pit::kIrq);
  machine_->pit().Start(hz);
}

void KernelEnv::StopTimer() {
  machine_->pit().Stop();
  machine_->pic().Mask(Pit::kIrq);
  timer_handler_ = nullptr;
}

void* KernelEnv::MemAlloc(size_t size, uint32_t flags) {
  return lmm_.Alloc(size, flags);
}

void* KernelEnv::MemAllocAligned(size_t size, uint32_t flags, unsigned align_bits) {
  return lmm_.AllocAligned(size, flags, align_bits, 0);
}

void KernelEnv::MemFree(void* ptr, size_t size) { lmm_.Free(ptr, size); }

Fiber* KernelEnv::Boot(MainFn main) {
  return sim().Spawn(machine_->name() + "/main", [this, main = std::move(main)] {
    machine_->cpu().EnableInterrupts();
    // Parse the MultiBoot command line into argv, C style.
    std::vector<std::string> args;
    args.push_back(machine_->name());
    const std::string& cmdline = info_.cmdline;
    size_t pos = 0;
    while (pos < cmdline.size()) {
      while (pos < cmdline.size() && cmdline[pos] == ' ') {
        ++pos;
      }
      size_t end = cmdline.find(' ', pos);
      if (end == std::string::npos) {
        end = cmdline.size();
      }
      if (end > pos) {
        args.push_back(cmdline.substr(pos, end - pos));
      }
      pos = end;
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) {
      argv.push_back(arg.data());
    }
    argv.push_back(nullptr);
    exit_code_ = main(static_cast<int>(args.size()), argv.data());
    exited_ = true;
  });
}

std::string KernelEnv::FormatTrapFrame(const TrapFrame& frame) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "trap %u, error=%#010x\n"
                "pc=%#018llx sp=%#018llx flags=%#010llx\n"
                "r0=%#llx r1=%#llx r2=%#llx r3=%#llx\n"
                "r4=%#llx r5=%#llx r6=%#llx r7=%#llx",
                frame.trapno, frame.error_code,
                static_cast<unsigned long long>(frame.pc),
                static_cast<unsigned long long>(frame.sp),
                static_cast<unsigned long long>(frame.flags),
                static_cast<unsigned long long>(frame.gprs[0]),
                static_cast<unsigned long long>(frame.gprs[1]),
                static_cast<unsigned long long>(frame.gprs[2]),
                static_cast<unsigned long long>(frame.gprs[3]),
                static_cast<unsigned long long>(frame.gprs[4]),
                static_cast<unsigned long long>(frame.gprs[5]),
                static_cast<unsigned long long>(frame.gprs[6]),
                static_cast<unsigned long long>(frame.gprs[7]));
  return buf;
}

}  // namespace oskit
