// Kernel support library (paper §3.2).
//
// "By default, the kernel support library automatically does everything
// necessary to get the processor into a convenient execution environment in
// which interrupts, traps, debugging, and other standard facilities work as
// expected" — and the client need only provide a standard C-style main().
//
// KernelEnv is that bring-up for a simulated Machine:
//  * installs default trap handlers (panic with a register dump) and lets
//    clients interpose their own handlers that fall back to the defaults
//    (§6.2.4 — how Java/PC catches null-pointer faults itself);
//  * routes PIC IRQs to registered handlers and manages masking;
//  * builds the LMM over physical memory with the conventional x86 region
//    types (<1MB, <16MB DMA, high) and reserves page zero, the BIOS area,
//    and every boot module before handing memory out (§3.2);
//  * provides the base console and the sleep environment;
//  * Boot() spawns the kernel main on a fiber with argc/argv parsed from
//    the MultiBoot command line.

#ifndef OSKIT_SRC_KERN_KERNEL_H_
#define OSKIT_SRC_KERN_KERNEL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/boot/multiboot.h"
#include "src/fault/fault.h"
#include "src/kern/console.h"
#include "src/lmm/lmm.h"
#include "src/machine/machine.h"
#include "src/machine/memmon.h"
#include "src/sleep/sleep_envs.h"
#include "src/trace/trace.h"

namespace oskit {

class KernelEnv {
 public:
  using IrqHandler = std::function<void()>;
  using MainFn = std::function<int(int argc, char** argv)>;

  enum class SleepMode {
    kFiber,  // park the fiber (threaded client OS)
    kSpin,   // single-threaded example kernel: spin on the sleep record
  };

  // `trace` is the observability environment (src/trace) this kernel's
  // components report into; null binds the process-global default.  The
  // testbed gives every simulated machine its own.  `fault` is the fault
  // environment (src/fault) wired through this kernel's machine and LMM —
  // null binds the process-global default, which has nothing armed.
  KernelEnv(Machine* machine, const MultiBootInfo& info,
            SleepMode sleep_mode = SleepMode::kFiber,
            trace::TraceEnv* trace = nullptr,
            fault::FaultEnv* fault = nullptr);
  ~KernelEnv();

  Machine& machine() { return *machine_; }
  Simulation& sim() { return machine_->sim(); }
  Lmm& lmm() { return lmm_; }
  BaseConsole& console() { return console_; }
  SleepEnv& sleep_env() { return *sleep_env_; }
  trace::TraceEnv& trace() { return *trace_; }
  fault::FaultEnv& fault() { return *fault_; }
  const MultiBootInfo& boot_info() const { return info_; }

  // ---- Interrupts ----
  // Registers `handler` for a PIC IRQ line and unmasks it.
  void IrqRegister(int irq, IrqHandler handler);
  void IrqUnregister(int irq);

  // Installs a custom trap handler; when it returns false the default
  // handler (panic + dump) runs.  Returns a token restoring the old state.
  void SetTrapHandler(uint32_t vector, Cpu::Handler handler);

  // ---- Timer ----
  // Programs the PIT and delivers ticks to `handler` at interrupt level.
  void SetTimer(uint32_t hz, IrqHandler handler);
  void StopTimer();

  // ---- Memory (the f_devmemalloc-style default services, §4.2.1) ----
  // Flags: kLmmFlag16Mb for DMA-reachable memory, 0 otherwise.
  void* MemAlloc(size_t size, uint32_t flags = 0);
  void* MemAllocAligned(size_t size, uint32_t flags, unsigned align_bits);
  void MemFree(void* ptr, size_t size);

  // ---- Memory monitor (src/machine/memmon.h) ----
  // Brings the nested-kernel monitor up over this machine's physical
  // memory: allocates the protection map from the LMM (those pages become
  // monitor-private — the map protects itself), attaches the monitor to
  // PhysMem and to every disk's DMA path, and installs recovery handlers
  // on kTrapGeneralProtection/kTrapPageFault that count
  // mon.violation.caught, kill the offending domain, and resume — never
  // panic.  Non-monitor traps chain to whatever handler was installed
  // before.  kExist when already enabled, kNoMem when the map can't be
  // allocated.
  Error EnableMemoryMonitor();
  // Null until EnableMemoryMonitor() succeeds.
  MemMonitor* memmon() { return memmon_.get(); }

  // ---- Bootstrap ----
  // Spawns the kernel main fiber: enables interrupts, parses the MultiBoot
  // command line into argv, runs `main`, records its exit code.
  Fiber* Boot(MainFn main);

  bool exited() const { return exited_; }
  int exit_code() const { return exit_code_; }

  // Formats a TrapFrame like the OSKit's trap_dump().
  static std::string FormatTrapFrame(const TrapFrame& frame);

 private:
  void InstallDefaultHandlers();
  void SetupMemory();

  Machine* machine_;
  MultiBootInfo info_;
  BaseConsole console_;
  std::unique_ptr<SleepEnv> sleep_env_;
  trace::TraceEnv* trace_;
  fault::FaultEnv* fault_;
  trace::CounterBlock cpu_counters_;
  std::vector<std::unique_ptr<trace::CounterBlock>> disk_counters_;
  std::vector<std::unique_ptr<trace::CounterBlock>> nic_counters_;
  Lmm lmm_;
  LmmRegion region_low_;    // < 1 MB
  LmmRegion region_dma_;    // 1..16 MB
  LmmRegion region_high_;   // > 16 MB
  IrqHandler irq_handlers_[Pic::kIrqLines];
  IrqHandler timer_handler_;
  std::unique_ptr<MemMonitor> memmon_;
  void* memmon_map_ = nullptr;  // LMM pages holding the protection map
  size_t memmon_map_bytes_ = 0;
  trace::Counter mon_caught_;
  trace::CounterBlock mon_counters_;
  bool exited_ = false;
  int exit_code_ = 0;
};

}  // namespace oskit

#endif  // OSKIT_SRC_KERN_KERNEL_H_
