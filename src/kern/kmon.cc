#include "src/kern/kmon.h"

#include <cstdarg>

#include "src/libc/format.h"
#include "src/libc/string.h"

namespace oskit {

namespace {

// Parses "<hex-or-dec> [<hex-or-dec>]" command arguments.
bool ParseNumbers(const std::string& args, uint64_t* first, uint64_t* second) {
  const char* p = args.c_str();
  const char* end = nullptr;
  *first = static_cast<uint64_t>(libc::Strtoul(p, &end, 0));
  if (end == p) {
    return false;
  }
  if (second != nullptr) {
    p = end;
    const char* end2 = nullptr;
    uint64_t v = static_cast<uint64_t>(libc::Strtoul(p, &end2, 0));
    if (end2 != p) {
      *second = v;
    }
  }
  return true;
}

}  // namespace

void KernelMonitor::Print(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  libc::Vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  for (const char* p = buf; *p != '\0'; ++p) {
    console_->Putchar(*p);
  }
}

std::string KernelMonitor::ReadLine() {
  std::string line;
  for (;;) {
    int c = console_->Getchar();
    if (c == '\r' || c == '\n') {
      console_->Putchar('\n');
      return line;
    }
    if (c == 0x7f || c == '\b') {
      if (!line.empty()) {
        line.pop_back();
        Print("\b \b");
      }
      continue;
    }
    line.push_back(static_cast<char>(c));
    console_->Putchar(c);  // echo
  }
}

void KernelMonitor::AttachDefaultTraps() {
  auto hook = [this](TrapFrame& frame) -> bool {
    Enter(frame);
    return true;
  };
  Cpu& cpu = kernel_->machine().cpu();
  cpu.SetVector(kTrapBreakpoint, hook);
  cpu.SetVector(kTrapDebug, hook);
  cpu.SetVector(kTrapDivide, hook);
  cpu.SetVector(kTrapGeneralProtection, hook);
  cpu.SetVector(kTrapPageFault, hook);
}

void KernelMonitor::CmdRegs(const TrapFrame& frame) {
  Print("trap %u err=%#x\n", frame.trapno, frame.error_code);
  Print("pc=%#llx sp=%#llx flags=%#llx\n",
        static_cast<unsigned long long>(frame.pc),
        static_cast<unsigned long long>(frame.sp),
        static_cast<unsigned long long>(frame.flags));
  for (int i = 0; i < 8; i += 2) {
    Print("r%d=%#llx r%d=%#llx\n", i,
          static_cast<unsigned long long>(frame.gprs[i]), i + 1,
          static_cast<unsigned long long>(frame.gprs[i + 1]));
  }
}

void KernelMonitor::CmdMem(const std::string& args) {
  uint64_t addr = 0;
  uint64_t len = 16;
  if (!ParseNumbers(args, &addr, &len)) {
    Print("usage: m <addr> [len]\n");
    return;
  }
  PhysMem& phys = kernel_->machine().phys();
  // Wrap-safe: `addr + len` can overflow and sneak past a naive bound.
  if (addr >= phys.size() || len > phys.size() - addr) {
    Print("out of range\n");
    return;
  }
  const auto* p = static_cast<const uint8_t*>(phys.PtrAt(addr));
  for (uint64_t i = 0; i < len; i += 16) {
    Print("%08llx:", static_cast<unsigned long long>(addr + i));
    for (uint64_t j = i; j < i + 16 && j < len; ++j) {
      Print(" %02x", p[j]);
    }
    Print("\n");
  }
}

void KernelMonitor::CmdWrite(const std::string& args) {
  uint64_t addr = 0;
  uint64_t value = ~uint64_t{0};
  if (!ParseNumbers(args, &addr, &value) || value > 0xff) {
    Print("usage: w <addr> <byte>\n");
    return;
  }
  PhysMem& phys = kernel_->machine().phys();
  if (addr >= phys.size()) {
    Print("out of range\n");
    return;
  }
  *static_cast<uint8_t*>(phys.PtrAt(addr)) = static_cast<uint8_t>(value);
  Print("ok\n");
}

void KernelMonitor::CmdTranslate(const std::string& args) {
  if (page_dir_ == nullptr) {
    Print("no page directory attached\n");
    return;
  }
  uint64_t va = 0;
  if (!ParseNumbers(args, &va, nullptr)) {
    Print("usage: t <vaddr>\n");
    return;
  }
  uint32_t pa = 0;
  uint32_t flags = 0;
  Error err = page_dir_->Translate(static_cast<uint32_t>(va), &pa, &flags);
  if (!Ok(err)) {
    Print("not mapped\n");
    return;
  }
  Print("va %#llx -> pa %#x%s%s\n", static_cast<unsigned long long>(va), pa,
        (flags & kPteWritable) != 0 ? " rw" : " ro",
        (flags & kPteUser) != 0 ? " user" : " kernel");
}

void KernelMonitor::CmdCounters(const std::string& args) {
  trace::CounterRegistry& registry = kernel_->trace().registry;
  size_t shown = 0;
  registry.ForEach(
      [this, &shown](const char* name, uint64_t value, bool gauge) {
        Print("%-32s %12llu%s\n", name, static_cast<unsigned long long>(value),
              gauge ? " (gauge)" : "");
        ++shown;
      },
      args);
  if (shown == 0) {
    Print(args.empty() ? "no counters registered\n"
                       : "no counters match that prefix\n");
  }
}

void KernelMonitor::CmdTrace(const std::string& args) {
  trace::FlightRecorder& recorder = kernel_->trace().recorder;
  if (args == "dump") {
    if (recorder.size() == 0) {
      Print("trace ring empty\n");
      return;
    }
    Print("trace: %llu events (%llu recorded total)\n",
          static_cast<unsigned long long>(recorder.size()),
          static_cast<unsigned long long>(recorder.total_recorded()));
    char line[128];
    recorder.ForEach([this, &line](const trace::TraceEvent& event) {
      trace::FlightRecorder::FormatEvent(event, line, sizeof(line));
      Print("%s\n", line);
    });
  } else if (args == "clear") {
    recorder.Clear();
    Print("trace ring cleared\n");
  } else {
    Print("usage: trace dump | trace clear\n");
  }
}

void KernelMonitor::CmdHot() {
  trace::SpanTracker& spans = kernel_->trace().spans;
  spans.DumpHot([this](const char* line) { Print("%s\n", line); });
  if (spans.depth() > 0) {
    Print("open spans (innermost last):\n");
    spans.ForEachOpen([this](const trace::SpanSite* site, uint64_t start_ns,
                             uint64_t child_ns) {
      Print("  OPEN %-26s started=%llu child=%llu\n", site->name(),
            static_cast<unsigned long long>(start_ns),
            static_cast<unsigned long long>(child_ns));
    });
  }
}

void KernelMonitor::CmdFault(const std::string& args) {
  fault::FaultEnv& env = kernel_->fault();
  if (args.empty()) {
    Print("fault env seed=%llu total_fires=%llu\n",
          static_cast<unsigned long long>(env.seed()),
          static_cast<unsigned long long>(env.total_fires()));
    size_t shown = 0;
    env.ForEachSite([this, &shown](const char* site, const fault::FaultSpec& spec,
                                   bool armed, uint64_t calls, uint64_t fires) {
      Print("%-24s %s pct=%u nth=%llu calls=%llu fires=%llu\n", site,
            armed ? "armed   " : "disarmed", spec.probability_percent,
            static_cast<unsigned long long>(spec.nth_call),
            static_cast<unsigned long long>(calls),
            static_cast<unsigned long long>(fires));
      ++shown;
    });
    if (shown == 0) {
      Print("no fault sites touched yet\n");
    }
    return;
  }
  size_t space = args.find(' ');
  std::string sub = args.substr(0, space);
  std::string rest = space == std::string::npos ? "" : args.substr(space + 1);
  if (sub == "arm") {
    size_t sp2 = rest.find(' ');
    std::string site = rest.substr(0, sp2);
    std::string nums = sp2 == std::string::npos ? "" : rest.substr(sp2 + 1);
    uint64_t pct = 0;
    uint64_t nth = 0;
    if (site.empty() || !ParseNumbers(nums, &pct, &nth) || pct > 100) {
      Print("usage: fault arm <site> <pct> [nth]\n");
      return;
    }
    fault::FaultSpec spec;
    spec.probability_percent = static_cast<uint32_t>(pct);
    spec.nth_call = nth;
    env.Arm(site, spec);
    Print("armed %s\n", site.c_str());
  } else if (sub == "disarm") {
    if (rest == "all") {
      env.DisarmAll();
      Print("all sites disarmed\n");
    } else if (!rest.empty()) {
      env.Disarm(rest);
      Print("disarmed %s\n", rest.c_str());
    } else {
      Print("usage: fault disarm <site>|all\n");
    }
  } else if (sub == "seed") {
    uint64_t seed = 0;
    if (!ParseNumbers(rest, &seed, nullptr)) {
      Print("usage: fault seed <n>\n");
      return;
    }
    env.Reseed(seed);
    Print("reseeded to %llu\n", static_cast<unsigned long long>(seed));
  } else {
    Print("usage: fault | fault arm <site> <pct> [nth] | "
          "fault disarm <site>|all | fault seed <n>\n");
  }
}

void KernelMonitor::CmdNicMit(const std::string& args) {
  const auto& nics = kernel_->machine().nics();
  if (nics.empty()) {
    Print("no NICs on this machine\n");
    return;
  }
  if (args.empty()) {
    size_t idx = 0;
    for (const auto& nic : nics) {
      const NicHw::RxMitigation& mit = nic->rx_mitigation();
      Print("nic%llu: threshold=%llu holdoff_us=%llu ring_fallback=%llu "
            "frames=%llu irqs=%llu\n",
            static_cast<unsigned long long>(idx++),
            static_cast<unsigned long long>(mit.frame_threshold),
            static_cast<unsigned long long>(mit.holdoff_ns / 1000),
            static_cast<unsigned long long>(mit.ring_fallback),
            static_cast<unsigned long long>(nic->rx_coalesce_frames_counter()),
            static_cast<unsigned long long>(nic->rx_coalesce_irqs_counter()));
    }
    return;
  }
  // nicmit <idx> <threshold> <holdoff_us> — three numbers, parsed by hand
  // (ParseNumbers stops at two).
  const char* p = args.c_str();
  const char* end = nullptr;
  uint64_t idx = static_cast<uint64_t>(libc::Strtoul(p, &end, 0));
  bool ok = end != p;
  p = end;
  uint64_t threshold = static_cast<uint64_t>(libc::Strtoul(p, &end, 0));
  ok = ok && end != p;
  p = end;
  uint64_t holdoff_us = static_cast<uint64_t>(libc::Strtoul(p, &end, 0));
  ok = ok && end != p;
  if (!ok || threshold < 1) {
    Print("usage: nicmit | nicmit <idx> <threshold> <holdoff_us>\n");
    return;
  }
  if (idx >= nics.size()) {
    Print("no such NIC\n");
    return;
  }
  NicHw::RxMitigation mit = nics[idx]->rx_mitigation();
  mit.frame_threshold = threshold;
  mit.holdoff_ns = holdoff_us * 1000;
  nics[idx]->SetRxMitigation(mit);
  Print("nic%llu: threshold=%llu holdoff_us=%llu\n",
        static_cast<unsigned long long>(idx),
        static_cast<unsigned long long>(threshold),
        static_cast<unsigned long long>(holdoff_us));
}

void KernelMonitor::CmdNetstat() {
  if (!netstat_) {
    Print("no network stack attached\n");
    return;
  }
  netstat_([this](const char* line) { Print("%s\n", line); });
}

void KernelMonitor::CmdTenants() {
  if (!tenants_) {
    Print("no principal registry attached\n");
    return;
  }
  tenants_([this](const char* line) { Print("%s\n", line); });
}

void KernelMonitor::CmdMon() {
  MemMonitor* mon = kernel_->memmon();
  if (mon == nullptr) {
    Print("memory monitor not enabled\n");
    return;
  }
  Print("mon: enabled enforce=%s pages: monitor=%llu kernel=%llu "
        "component=%llu\n",
        mon->enforcing() ? "on" : "OFF (ablation)",
        static_cast<unsigned long long>(
            mon->PageCount(PageProt::kMonitorPrivate)),
        static_cast<unsigned long long>(
            mon->PageCount(PageProt::kKernelWritable)),
        static_cast<unsigned long long>(
            mon->PageCount(PageProt::kComponentWritable)));
  const MemMonitor::Counters& c = mon->counters();
  Print("violations: raised=%llu caught=%llu store=%llu load=%llu "
        "dma=%llu pte=%llu\n",
        static_cast<unsigned long long>(c.raised.value()),
        static_cast<unsigned long long>(
            kernel_->trace().registry.Value("mon.violation.caught")),
        static_cast<unsigned long long>(c.store_violations.value()),
        static_cast<unsigned long long>(c.load_violations.value()),
        static_cast<unsigned long long>(c.dma_violations.value()),
        static_cast<unsigned long long>(c.pte_violations.value()));
  Print("gate: protect=%llu store=%llu domains_killed=%llu\n",
        static_cast<unsigned long long>(c.calls_protect.value()),
        static_cast<unsigned long long>(c.calls_store.value()),
        static_cast<unsigned long long>(c.domains_killed.value()));
  size_t shown = 0;
  mon->ForEachViolation([this, &shown](const MemMonitor::Violation& v) {
    Print("  #%llu domain=%u addr=%#llx access=%s prot=%s\n",
          static_cast<unsigned long long>(v.seq), v.domain,
          static_cast<unsigned long long>(v.addr), MemAccessName(v.access),
          PageProtName(v.prot));
    ++shown;
  });
  if (shown == 0) {
    Print("no violations recorded\n");
  }
}

void KernelMonitor::CmdAio() {
  // The async-storage slice of the counter registry: the stackable layers
  // (aio.*), the IDE glue's native ring, and the journal's commit path.
  trace::CounterRegistry& registry = kernel_->trace().registry;
  size_t shown = 0;
  for (const char* prefix : {"aio.", "glue.ide.ring", "fs.journal"}) {
    registry.ForEach(
        [this, &shown](const char* name, uint64_t value, bool gauge) {
          Print("%-32s %12llu%s\n", name,
                static_cast<unsigned long long>(value), gauge ? " (gauge)" : "");
          ++shown;
        },
        prefix);
  }
  if (shown == 0) {
    Print("no async-storage counters registered\n");
  }
  if (aio_) {
    aio_([this](const char* line) { Print("%s\n", line); });
  }
}

void KernelMonitor::CmdHelp() {
  Print("kmon commands: r regs | m addr [len] | w addr byte | t vaddr | "
        "counters [prefix] | trace dump|clear | hot | "
        "fault [arm|disarm|seed] | "
        "nicmit [idx threshold holdoff_us] | netstat | tenants | mon | "
        "aio | s step | c continue | halt | help\n");
}

void KernelMonitor::Enter(TrapFrame& frame) {
  step_requested_ = false;
  Print("\nkmon: stopped at trap %u (pc=%#llx) — 'help' for commands\n",
        frame.trapno, static_cast<unsigned long long>(frame.pc));
  for (;;) {
    Print("kmon> ");
    std::string line = ReadLine();
    // Split command word / arguments.
    size_t space = line.find(' ');
    std::string cmd = line.substr(0, space);
    std::string args = space == std::string::npos ? "" : line.substr(space + 1);
    if (cmd.empty()) {
      continue;
    }
    ++commands_handled_;
    if (cmd == "r") {
      CmdRegs(frame);
    } else if (cmd == "m") {
      CmdMem(args);
    } else if (cmd == "w") {
      CmdWrite(args);
    } else if (cmd == "t") {
      CmdTranslate(args);
    } else if (cmd == "counters") {
      CmdCounters(args);
    } else if (cmd == "trace") {
      CmdTrace(args);
    } else if (cmd == "hot") {
      CmdHot();
    } else if (cmd == "fault") {
      CmdFault(args);
    } else if (cmd == "nicmit") {
      CmdNicMit(args);
    } else if (cmd == "netstat") {
      CmdNetstat();
    } else if (cmd == "tenants") {
      CmdTenants();
    } else if (cmd == "mon") {
      CmdMon();
    } else if (cmd == "aio") {
      CmdAio();
    } else if (cmd == "s") {
      step_requested_ = true;
      return;
    } else if (cmd == "c") {
      return;
    } else if (cmd == "halt") {
      halted_ = true;
      Print("halted\n");
      return;
    } else if (cmd == "help") {
      CmdHelp();
    } else {
      Print("unknown command '%s'\n", cmd.c_str());
    }
  }
}

}  // namespace oskit
