// kmon: the local kernel monitor (the §3.5 future-work item).
//
// "In the future, we plan to integrate a local debugger into the OSKit as
// well, which can be used when a separate machine running GDB is not
// available."  kmon is that debugger: a console-driven monitor the kernel
// drops into on a trap (or on demand), with the classic monitor command set:
//
//   r                 dump the trap frame registers
//   m <addr> [len]    hex-dump physical memory
//   w <addr> <byte>   poke one byte
//   t <addr>          translate through a page directory, when one is set
//   s                 request single step (sets the flag, continues)
//   c                 continue
//   halt              mark the kernel as halted
//   counters [pfx]    dump the trace counter registry (optional name prefix)
//   trace dump        dump the flight-recorder ring, oldest first
//   trace clear       clear the flight-recorder ring
//   fault             list fault-injection sites (spec, calls, fires)
//   fault arm <site> <pct> [nth]   arm a site (percent probability / nth call)
//   fault disarm <site>|all        disarm one site or every site
//   fault seed <n>    reseed the fault environment (resets call/fire counts)
//   hot               dump span attribution (self-time-sorted hot paths)
//                     plus any spans still open at the stop
//   nicmit            show each NIC's RX interrupt-mitigation registers
//   nicmit <idx> <threshold> <holdoff_us>   program a NIC's mitigation
//   netstat           dump the attached stack's PCB tables, listen queues,
//                     timer wheel, and selector registrations
//   tenants           dump the attached principal registry: per-tenant
//                     budgets, live charges, and denial counts
//   mon               dump the memory monitor: protection-map summary,
//                     mon.* violation counters, and the last-N violation
//                     sites (domain/principal, address, access type)
//   aio               dump the async-storage counters (aio.*, the IDE
//                     glue's ring, fs.journal.*) plus any attached
//                     per-device ring occupancy lines
//   help              list commands
//
// Input/output go through the base console, so it works on whatever the
// client wired putchar to.

#ifndef OSKIT_SRC_KERN_KMON_H_
#define OSKIT_SRC_KERN_KMON_H_

#include <functional>
#include <string>

#include "src/kern/console.h"
#include "src/kern/kernel.h"
#include "src/kern/paging.h"

namespace oskit {

class KernelMonitor {
 public:
  KernelMonitor(KernelEnv* kernel, BaseConsole* console)
      : kernel_(kernel), console_(console) {}

  // Hooks the debug-relevant trap vectors so faults land in the monitor.
  void AttachDefaultTraps();

  // Enters the command loop for one stop.  Returns when the operator
  // continues ('c'/'s') or halts.  Mutations of `frame` persist.
  void Enter(TrapFrame& frame);

  // Optional: lets 't' translate virtual addresses.
  void SetPageDirectory(PageDirectory* pd) { page_dir_ = pd; }

  // Optional: backs the 'netstat' command.  The kernel monitor cannot link
  // the network stack (layering), so the owner plugs in a dumper — typically
  // a lambda forwarding to NetStack::Netstat — that emits one formatted line
  // per call of the provided sink.
  using NetstatSource =
      std::function<void(const std::function<void(const char*)>&)>;
  void SetNetstatSource(NetstatSource source) { netstat_ = std::move(source); }

  // Optional: backs the 'tenants' command the same way — the owner plugs in
  // a dumper forwarding to PrincipalRegistry::Tenants (the monitor cannot
  // link src/secure; layering again).
  using TenantsSource = NetstatSource;
  void SetTenantsSource(TenantsSource source) { tenants_ = std::move(source); }

  // Optional: extends the 'aio' command with live per-device ring lines
  // (occupancy, depth) — the counter summary works without it.  The owner
  // plugs in a dumper over its BlkIoRing devices; the monitor cannot link
  // the device layer (layering once more).
  using AioSource = NetstatSource;
  void SetAioSource(AioSource source) { aio_ = std::move(source); }

  bool halted() const { return halted_; }
  bool step_requested() const { return step_requested_; }
  uint64_t commands_handled() const { return commands_handled_; }

 private:
  void Print(const char* format, ...) __attribute__((format(printf, 2, 3)));
  std::string ReadLine();
  void CmdRegs(const TrapFrame& frame);
  void CmdMem(const std::string& args);
  void CmdWrite(const std::string& args);
  void CmdTranslate(const std::string& args);
  void CmdCounters(const std::string& args);
  void CmdTrace(const std::string& args);
  void CmdHot();
  void CmdFault(const std::string& args);
  void CmdNicMit(const std::string& args);
  void CmdNetstat();
  void CmdTenants();
  void CmdMon();
  void CmdAio();
  void CmdHelp();

  KernelEnv* kernel_;
  BaseConsole* console_;
  PageDirectory* page_dir_ = nullptr;
  NetstatSource netstat_;
  TenantsSource tenants_;
  AioSource aio_;
  bool halted_ = false;
  bool step_requested_ = false;
  uint64_t commands_handled_ = 0;
};

}  // namespace oskit

#endif  // OSKIT_SRC_KERN_KMON_H_
