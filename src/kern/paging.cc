#include "src/kern/paging.h"

#include <cstring>

namespace oskit {

namespace {

constexpr uint32_t kEntries = 1024;
constexpr uint32_t kAddrMask = 0xfffff000;

uint32_t DirIndex(uint32_t va) { return va >> 22; }
uint32_t TableIndex(uint32_t va) { return (va >> 12) & 0x3ff; }

}  // namespace

PageDirectory::PageDirectory(KernelEnv* kernel) : kernel_(kernel) {
  void* dir = kernel_->lmm().AllocPage(0);
  OSKIT_ASSERT_MSG(dir != nullptr, "out of memory for page directory");
  std::memset(dir, 0, kPageSize);
  dir_phys_ = static_cast<uint32_t>(kernel_->machine().phys().AddrOf(dir));
  // Nested-kernel discipline: the directory page is monitor-private from
  // birth — only the MonitorStore gate below may mutate it.
  Protect(dir, PageProt::kMonitorPrivate);
}

PageDirectory::~PageDirectory() {
  uint32_t* dir = raw_dir();
  for (uint32_t i = 0; i < kEntries; ++i) {
    if ((dir[i] & kPtePresent) != 0 && (dir[i] & kPdeLargePage) == 0) {
      void* table = kernel_->machine().phys().PtrAt(dir[i] & kAddrMask);
      Protect(table, PageProt::kKernelWritable);
      kernel_->MemFree(table, kPageSize);
    }
  }
  Protect(dir, PageProt::kKernelWritable);
  kernel_->MemFree(dir, kPageSize);
}

void PageDirectory::Protect(void* page, PageProt prot) {
  MemMonitor* mon = kernel_->memmon();
  if (mon != nullptr && mon->enabled()) {
    mon->MonitorCall(kernel_->machine().phys().AddrOf(page), kPageSize, prot);
  }
}

void PageDirectory::MonSet(uint32_t* slot, uint32_t value) {
  MemMonitor* mon = kernel_->memmon();
  if (mon != nullptr && mon->enabled()) {
    mon->MonitorStore(kernel_->machine().phys().AddrOf(slot), &value,
                      sizeof(value));
  } else {
    *slot = value;
  }
}

uint32_t* PageDirectory::raw_dir() {
  return static_cast<uint32_t*>(kernel_->machine().phys().PtrAt(dir_phys_));
}

uint32_t* PageDirectory::TableFor(uint32_t va, bool alloc) {
  uint32_t* dir = raw_dir();
  uint32_t pde = dir[DirIndex(va)];
  if ((pde & kPtePresent) == 0) {
    if (!alloc) {
      return nullptr;
    }
    void* table = kernel_->lmm().AllocPage(0);
    if (table == nullptr) {
      return nullptr;
    }
    std::memset(table, 0, kPageSize);
    Protect(table, PageProt::kMonitorPrivate);
    ++table_pages_;
    uint32_t table_phys =
        static_cast<uint32_t>(kernel_->machine().phys().AddrOf(table));
    // Directory entries carry the union of permissions; leaf PTEs restrict.
    pde = table_phys | kPtePresent | kPteWritable | kPteUser;
    MonSet(&dir[DirIndex(va)], pde);
  }
  if ((pde & kPdeLargePage) != 0) {
    return nullptr;  // a 4 MB mapping occupies this slot
  }
  return static_cast<uint32_t*>(
      kernel_->machine().phys().PtrAt(pde & kAddrMask));
}

Error PageDirectory::MapPage(uint32_t va, uint32_t pa, uint32_t flags) {
  if ((va & (kPageSize - 1)) != 0 || (pa & (kPageSize - 1)) != 0) {
    return Error::kInval;
  }
  // A 4 MB mapping occupying the slot is "already mapped", not an
  // allocation failure.
  uint32_t pde = raw_dir()[DirIndex(va)];
  if ((pde & kPtePresent) != 0 && (pde & kPdeLargePage) != 0) {
    return Error::kExist;
  }
  uint32_t* table = TableFor(va, /*alloc=*/true);
  if (table == nullptr) {
    return Error::kNoMem;
  }
  if ((table[TableIndex(va)] & kPtePresent) != 0) {
    return Error::kExist;
  }
  MonSet(&table[TableIndex(va)],
         (pa & kAddrMask) | kPtePresent | (flags & (kPteWritable | kPteUser)));
  return Error::kOk;
}

Error PageDirectory::MapLargePage(uint32_t va, uint32_t pa, uint32_t flags) {
  if ((va & (kLargePageSize - 1)) != 0 || (pa & (kLargePageSize - 1)) != 0) {
    return Error::kInval;
  }
  uint32_t* dir = raw_dir();
  if ((dir[DirIndex(va)] & kPtePresent) != 0) {
    return Error::kExist;
  }
  MonSet(&dir[DirIndex(va)], (pa & 0xffc00000) | kPtePresent | kPdeLargePage |
                                 (flags & (kPteWritable | kPteUser)));
  return Error::kOk;
}

Error PageDirectory::UnmapPage(uint32_t va) {
  uint32_t* table = TableFor(va, /*alloc=*/false);
  if (table == nullptr) {
    return Error::kFault;
  }
  if ((table[TableIndex(va)] & kPtePresent) == 0) {
    return Error::kFault;
  }
  MonSet(&table[TableIndex(va)], 0);
  // Free the table when it holds no present entries.
  for (uint32_t i = 0; i < kEntries; ++i) {
    if ((table[i] & kPtePresent) != 0) {
      return Error::kOk;
    }
  }
  uint32_t* dir = raw_dir();
  // The page returns to the general pool; revert it before freeing so the
  // next owner isn't handed a monitor-private page.
  Protect(table, PageProt::kKernelWritable);
  kernel_->MemFree(table, kPageSize);
  --table_pages_;
  MonSet(&dir[DirIndex(va)], 0);
  return Error::kOk;
}

Error PageDirectory::Translate(uint32_t va, uint32_t* out_pa,
                               uint32_t* out_flags) const {
  auto* self = const_cast<PageDirectory*>(this);
  uint32_t* dir = self->raw_dir();
  uint32_t pde = dir[DirIndex(va)];
  if ((pde & kPtePresent) == 0) {
    return Error::kFault;
  }
  if ((pde & kPdeLargePage) != 0) {
    *out_pa = (pde & 0xffc00000) | (va & (kLargePageSize - 1));
    *out_flags = pde & (kPteWritable | kPteUser);
    return Error::kOk;
  }
  auto* table = static_cast<uint32_t*>(
      self->kernel_->machine().phys().PtrAt(pde & kAddrMask));
  uint32_t pte = table[TableIndex(va)];
  if ((pte & kPtePresent) == 0) {
    return Error::kFault;
  }
  *out_pa = (pte & kAddrMask) | (va & (kPageSize - 1));
  *out_flags = pte & (kPteWritable | kPteUser);
  return Error::kOk;
}

Error PageDirectory::MapRange(uint32_t va, uint32_t pa, uint32_t size,
                              uint32_t flags) {
  // `va + size` (or `pa + size`) overflowing 32 bits must be rejected, not
  // silently wrap and map low memory; a range ending exactly at 4 GB is
  // still valid.
  if (uint64_t{va} + size > (uint64_t{1} << 32) ||
      uint64_t{pa} + size > (uint64_t{1} << 32)) {
    return Error::kInval;
  }
  for (uint64_t offset = 0; offset < size; offset += kPageSize) {
    Error err = MapPage(static_cast<uint32_t>(va + offset),
                        static_cast<uint32_t>(pa + offset), flags);
    if (!Ok(err)) {
      return err;
    }
  }
  return Error::kOk;
}

// ---- Segment descriptors ----

uint64_t EncodeSegment(const SegmentDescriptor& seg) {
  uint32_t limit = seg.limit;
  bool granular = false;
  if (limit > 0xfffff) {
    // Page granularity: the hardware multiplies by 4K (and adds 0xfff).
    limit = limit >> 12;
    granular = true;
  }
  uint64_t raw = 0;
  raw |= limit & 0xffffull;                       // limit 15:0
  raw |= (seg.base & 0xffffull) << 16;            // base 15:0
  raw |= ((seg.base >> 16) & 0xffull) << 32;      // base 23:16
  // Access byte: P | DPL | S=1 | type.
  uint64_t access = 0x10;                          // S=1 (code/data)
  if (seg.present) {
    access |= 0x80;
  }
  access |= static_cast<uint64_t>(seg.dpl & 3) << 5;
  if (seg.code) {
    access |= 0x08;               // executable
    if (seg.writable) {
      access |= 0x02;             // readable
    }
  } else if (seg.writable) {
    access |= 0x02;               // writable data
  }
  raw |= access << 40;
  raw |= ((limit >> 16) & 0xfull) << 48;          // limit 19:16
  uint64_t gran_flags = 0;
  if (seg.is_32bit) {
    gran_flags |= 0x4;                            // D/B
  }
  if (granular) {
    gran_flags |= 0x8;                            // G
  }
  raw |= gran_flags << 52;
  raw |= ((seg.base >> 24) & 0xffull) << 56;      // base 31:24
  return raw;
}

SegmentDescriptor DecodeSegment(uint64_t raw) {
  SegmentDescriptor seg;
  uint32_t limit = static_cast<uint32_t>(raw & 0xffff) |
                   (static_cast<uint32_t>((raw >> 48) & 0xf) << 16);
  seg.base = static_cast<uint32_t>((raw >> 16) & 0xffff) |
             (static_cast<uint32_t>((raw >> 32) & 0xff) << 16) |
             (static_cast<uint32_t>((raw >> 56) & 0xff) << 24);
  uint64_t access = (raw >> 40) & 0xff;
  seg.present = (access & 0x80) != 0;
  seg.dpl = static_cast<uint8_t>((access >> 5) & 3);
  seg.code = (access & 0x08) != 0;
  seg.writable = (access & 0x02) != 0;
  uint64_t gran_flags = (raw >> 52) & 0xf;
  seg.is_32bit = (gran_flags & 0x4) != 0;
  if ((gran_flags & 0x8) != 0) {
    limit = (limit << 12) | 0xfff;
  }
  seg.limit = limit;
  return seg;
}

}  // namespace oskit
