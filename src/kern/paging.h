// x86 page-table and segment-descriptor support (paper §3.2).
//
// "On the x86, the kernel support library includes functions to create and
// manipulate x86 page tables and segment registers."  These build REAL
// 32-bit two-level page tables (the exact hardware bit layout) inside the
// simulated machine's physical memory, using page-granular LMM allocations;
// Translate() walks them exactly as the MMU would.  Higher layers can build
// architecture-neutral VM on top, but per §4.6 the raw structures stay
// exposed: dir_phys() hands the client the literal CR3 value.
//
// Nested-kernel integration (src/machine/memmon.h): when the kernel's
// memory monitor is enabled, directory and page-table pages are registered
// monitor-private at allocation and every PDE/PTE mutation goes through the
// MonitorStore gate — a component scribbling at a page table through its
// checked view takes a counted page fault instead of flipping a PTE.  The
// §4.6 raw_dir() hatch still hands out the host pointer; writes through it
// bypass the monitor, the documented honesty limit of the simulation.

#ifndef OSKIT_SRC_KERN_PAGING_H_
#define OSKIT_SRC_KERN_PAGING_H_

#include <cstdint>

#include "src/kern/kernel.h"

namespace oskit {

// Page table entry bits (hardware layout).
inline constexpr uint32_t kPtePresent = 1u << 0;
inline constexpr uint32_t kPteWritable = 1u << 1;
inline constexpr uint32_t kPteUser = 1u << 2;
inline constexpr uint32_t kPteAccessed = 1u << 5;
inline constexpr uint32_t kPteDirty = 1u << 6;
inline constexpr uint32_t kPdeLargePage = 1u << 7;  // 4 MB page in a PDE
inline constexpr uint32_t kPageSize = 4096;
inline constexpr uint32_t kLargePageSize = 4u << 20;

class PageDirectory {
 public:
  // Allocates an empty, page-aligned directory from the kernel's LMM.
  explicit PageDirectory(KernelEnv* kernel);
  ~PageDirectory();

  PageDirectory(const PageDirectory&) = delete;
  PageDirectory& operator=(const PageDirectory&) = delete;

  // Maps the 4 KB page at virtual `va` to physical `pa` with `flags`
  // (kPteWritable/kPteUser; kPtePresent is implied).  Allocates the page
  // table if absent.  kExist if already mapped — including when a 4 MB
  // large page occupies the slot; both addresses must be page aligned.
  Error MapPage(uint32_t va, uint32_t pa, uint32_t flags);

  // Maps a 4 MB large page (PSE) at `va` (4 MB aligned).
  Error MapLargePage(uint32_t va, uint32_t pa, uint32_t flags);

  // Removes a 4 KB mapping; frees the page table when it empties.
  Error UnmapPage(uint32_t va);

  // Hardware-faithful walk: returns the physical address `va` translates
  // to, honouring large pages.  kFault when not present.
  Error Translate(uint32_t va, uint32_t* out_pa, uint32_t* out_flags) const;

  // Maps [va, va+size) to [pa, pa+size) page by page.  kInval when either
  // end overflows the 32-bit address space — the range must not wrap.
  Error MapRange(uint32_t va, uint32_t pa, uint32_t size, uint32_t flags);

  // The physical address of the directory: what the client loads into CR3.
  uint32_t dir_phys() const { return dir_phys_; }

  // Open implementation (§4.6): the raw 1024-entry directory.
  uint32_t* raw_dir();

  // Number of page-table pages currently allocated (tests).
  uint32_t table_pages() const { return table_pages_; }

 private:
  uint32_t* TableFor(uint32_t va, bool alloc);
  // Registers/reverts a paging page's protection with the kernel's memory
  // monitor (no-ops without one).
  void Protect(void* page, PageProt prot);
  // PDE/PTE slot write through the MonitorStore gate (plain store without
  // an enabled monitor).
  void MonSet(uint32_t* slot, uint32_t value);

  KernelEnv* kernel_;
  uint32_t dir_phys_ = 0;
  uint32_t table_pages_ = 0;
};

// ---- Segment descriptors (GDT entries), hardware bit layout ----

struct SegmentDescriptor {
  uint32_t base = 0;
  uint32_t limit = 0;   // in bytes (encoded with page granularity when large)
  bool code = false;    // code vs data segment
  bool writable = true; // data: writable; code: readable
  uint8_t dpl = 0;      // privilege level 0..3
  bool present = true;
  bool is_32bit = true;
};

// Encodes the descriptor into the x86's split-field 8-byte format.
uint64_t EncodeSegment(const SegmentDescriptor& seg);

// Decodes it back (for verification / debugger display).
SegmentDescriptor DecodeSegment(uint64_t raw);

}  // namespace oskit

#endif  // OSKIT_SRC_KERN_PAGING_H_
