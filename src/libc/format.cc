#include "src/libc/format.h"

#include <cstdint>

#include "src/libc/string.h"

namespace oskit::libc {
namespace {

struct Spec {
  bool left = false;        // '-'
  bool zero_pad = false;    // '0'
  bool plus = false;        // '+'
  bool space = false;       // ' '
  bool alt = false;         // '#'
  int width = 0;
  int precision = -1;       // -1 means unspecified
  int length = 0;           // -2=hh -1=h 0=int 1=l 2=ll 3=z
};

class Emitter {
 public:
  Emitter(FormatSink sink, void* ctx) : sink_(sink), ctx_(ctx) {}

  void Put(char c) {
    ++count_;
    if (alive_) {
      alive_ = sink_(ctx_, c);
    }
  }

  void Fill(char c, int n) {
    for (int i = 0; i < n; ++i) {
      Put(c);
    }
  }

  int count() const { return count_; }

 private:
  FormatSink sink_;
  void* ctx_;
  bool alive_ = true;
  int count_ = 0;
};

// Emits one converted number/string with padding per `spec`.
// `body` is the digits (without sign/prefix); sign/prefix handled here.
void EmitPadded(Emitter& out, const Spec& spec, const char* prefix,
                const char* body, int body_len) {
  int prefix_len = static_cast<int>(Strlen(prefix));
  // Precision on integers: minimum digit count.
  int zeros = 0;
  if (spec.precision >= 0 && body_len < spec.precision) {
    zeros = spec.precision - body_len;
  }
  int total = prefix_len + zeros + body_len;
  int pad = spec.width > total ? spec.width - total : 0;

  if (!spec.left && spec.zero_pad && spec.precision < 0) {
    // Zero padding goes after the sign/prefix.
    out.Fill(' ', 0);
    for (int i = 0; i < prefix_len; ++i) {
      out.Put(prefix[i]);
    }
    out.Fill('0', pad + zeros);
  } else {
    if (!spec.left) {
      out.Fill(' ', pad);
    }
    for (int i = 0; i < prefix_len; ++i) {
      out.Put(prefix[i]);
    }
    out.Fill('0', zeros);
  }
  for (int i = 0; i < body_len; ++i) {
    out.Put(body[i]);
  }
  if (spec.left) {
    out.Fill(' ', pad);
  }
}

// Converts `value` to digits in `base` (reversed into buf, then fixed).
int ToDigits(uint64_t value, unsigned base, bool upper, char* buf) {
  const char* digits = upper ? "0123456789ABCDEF" : "0123456789abcdef";
  int n = 0;
  do {
    buf[n++] = digits[value % base];
    value /= base;
  } while (value != 0);
  // Reverse in place.
  for (int i = 0; i < n / 2; ++i) {
    char tmp = buf[i];
    buf[i] = buf[n - 1 - i];
    buf[n - 1 - i] = tmp;
  }
  return n;
}

uint64_t FetchUnsigned(va_list args, int length) {
  switch (length) {
    case 1:
      return va_arg(args, unsigned long);
    case 2:
      return va_arg(args, unsigned long long);
    case 3:
      return va_arg(args, size_t);
    default:
      return va_arg(args, unsigned int);  // h/hh promote to int
  }
}

int64_t FetchSigned(va_list args, int length) {
  switch (length) {
    case 1:
      return va_arg(args, long);
    case 2:
      return va_arg(args, long long);
    case 3:
      return static_cast<int64_t>(va_arg(args, size_t));
    default:
      return va_arg(args, int);
  }
}

}  // namespace

int FormatV(FormatSink sink, void* ctx, const char* format, va_list args) {
  Emitter out(sink, ctx);
  for (const char* p = format; *p != '\0'; ++p) {
    if (*p != '%') {
      out.Put(*p);
      continue;
    }
    ++p;
    if (*p == '%') {
      out.Put('%');
      continue;
    }

    Spec spec;
    // Flags.
    for (;; ++p) {
      if (*p == '-') {
        spec.left = true;
      } else if (*p == '0') {
        spec.zero_pad = true;
      } else if (*p == '+') {
        spec.plus = true;
      } else if (*p == ' ') {
        spec.space = true;
      } else if (*p == '#') {
        spec.alt = true;
      } else {
        break;
      }
    }
    // Width.
    if (*p == '*') {
      spec.width = va_arg(args, int);
      if (spec.width < 0) {
        spec.left = true;
        spec.width = -spec.width;
      }
      ++p;
    } else {
      while (IsDigit(*p)) {
        spec.width = spec.width * 10 + (*p++ - '0');
      }
    }
    // Precision.
    if (*p == '.') {
      ++p;
      spec.precision = 0;
      if (*p == '*') {
        spec.precision = va_arg(args, int);
        ++p;
      } else {
        while (IsDigit(*p)) {
          spec.precision = spec.precision * 10 + (*p++ - '0');
        }
      }
    }
    // Length modifiers.
    if (*p == 'h') {
      spec.length = -1;
      ++p;
      if (*p == 'h') {
        spec.length = -2;
        ++p;
      }
    } else if (*p == 'l') {
      spec.length = 1;
      ++p;
      if (*p == 'l') {
        spec.length = 2;
        ++p;
      }
    } else if (*p == 'z') {
      spec.length = 3;
      ++p;
    }

    char digits[24];
    switch (*p) {
      case 'd':
      case 'i': {
        int64_t v = FetchSigned(args, spec.length);
        uint64_t mag = v < 0 ? static_cast<uint64_t>(-(v + 1)) + 1
                             : static_cast<uint64_t>(v);
        const char* prefix = v < 0 ? "-" : (spec.plus ? "+" : (spec.space ? " " : ""));
        int n = ToDigits(mag, 10, false, digits);
        EmitPadded(out, spec, prefix, digits, n);
        break;
      }
      case 'u': {
        int n = ToDigits(FetchUnsigned(args, spec.length), 10, false, digits);
        EmitPadded(out, spec, "", digits, n);
        break;
      }
      case 'x':
      case 'X': {
        bool upper = *p == 'X';
        uint64_t v = FetchUnsigned(args, spec.length);
        int n = ToDigits(v, 16, upper, digits);
        const char* prefix = (spec.alt && v != 0) ? (upper ? "0X" : "0x") : "";
        EmitPadded(out, spec, prefix, digits, n);
        break;
      }
      case 'o': {
        uint64_t v = FetchUnsigned(args, spec.length);
        int n = ToDigits(v, 8, false, digits);
        EmitPadded(out, spec, (spec.alt && v != 0) ? "0" : "", digits, n);
        break;
      }
      case 'b': {  // binary: kernel-debug extension
        int n = ToDigits(FetchUnsigned(args, spec.length), 2, false, digits);
        EmitPadded(out, spec, "", digits, n);
        break;
      }
      case 'p': {
        uintptr_t v = reinterpret_cast<uintptr_t>(va_arg(args, void*));
        int n = ToDigits(v, 16, false, digits);
        EmitPadded(out, spec, "0x", digits, n);
        break;
      }
      case 'c': {
        char c = static_cast<char>(va_arg(args, int));
        Spec char_spec = spec;
        char_spec.zero_pad = false;
        EmitPadded(out, char_spec, "", &c, 1);
        break;
      }
      case 's': {
        const char* s = va_arg(args, const char*);
        if (s == nullptr) {
          s = "(null)";
        }
        int len = static_cast<int>(
            spec.precision >= 0 ? Strnlen(s, static_cast<size_t>(spec.precision))
                                : Strlen(s));
        Spec str_spec = spec;
        str_spec.precision = -1;  // already applied as a byte limit
        str_spec.zero_pad = false;
        EmitPadded(out, str_spec, "", s, len);
        break;
      }
      case '\0':
        return out.count();  // dangling '%' at end of format
      default:
        // Unknown conversion: emit it literally, C-library style.
        out.Put('%');
        out.Put(*p);
        break;
    }
  }
  return out.count();
}

namespace {

struct BufferCtx {
  char* buffer;
  size_t size;
  size_t used;
};

bool BufferSink(void* ctx, char c) {
  auto* b = static_cast<BufferCtx*>(ctx);
  if (b->used + 1 < b->size) {
    b->buffer[b->used] = c;
  }
  ++b->used;
  return true;
}

}  // namespace

int Vsnprintf(char* buffer, size_t size, const char* format, va_list args) {
  BufferCtx ctx{buffer, size, 0};
  int n = FormatV(&BufferSink, &ctx, format, args);
  if (size > 0) {
    size_t term = ctx.used < size - 1 ? ctx.used : size - 1;
    buffer[term] = '\0';
  }
  return n;
}

int Snprintf(char* buffer, size_t size, const char* format, ...) {
  va_list args;
  va_start(args, format);
  int n = Vsnprintf(buffer, size, format, args);
  va_end(args);
  return n;
}

}  // namespace oskit::libc
