// printf formatting core for the minimal C library (paper §3.4).
//
// Deliberately dependency-free: no buffering, no locales, no floating point
// ("locales and floating-point are not supported ... the standard I/O calls
// don't do any buffering").  Output goes through a caller-supplied one-byte
// sink, which is how printf ends up layered on putchar (§4.3.1).

#ifndef OSKIT_SRC_LIBC_FORMAT_H_
#define OSKIT_SRC_LIBC_FORMAT_H_

#include <cstdarg>
#include <cstddef>

namespace oskit::libc {

// Byte sink; returns false to stop formatting (e.g., buffer full).
using FormatSink = bool (*)(void* ctx, char c);

// Formats `format` with `args` into `sink`.  Returns the number of bytes
// that were (or would have been) emitted.
//
// Supported: %d %i %u %x %X %o %b %c %s %p %%, flags '-', '0', '+', ' ',
// '#', field width (and '*'), precision (and '*'), and the length modifiers
// h, hh, l, ll, z.
int FormatV(FormatSink sink, void* ctx, const char* format, va_list args);

// snprintf built on FormatV.  Always NUL-terminates when size > 0; returns
// the length the full output would have had.
int Snprintf(char* buffer, size_t size, const char* format, ...)
    __attribute__((format(printf, 3, 4)));
int Vsnprintf(char* buffer, size_t size, const char* format, va_list args);

}  // namespace oskit::libc

#endif  // OSKIT_SRC_LIBC_FORMAT_H_
