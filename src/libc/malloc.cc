#include "src/libc/malloc.h"

#include <cstdlib>

#include "src/base/panic.h"
#include "src/libc/string.h"

namespace oskit::libc {
namespace {

void* HostAlloc(void* /*ctx*/, size_t size) { return std::malloc(size); }
void HostFree(void* /*ctx*/, void* ptr, size_t /*size*/) { std::free(ptr); }

constexpr size_t kHeaderSize = sizeof(void*) == 8 ? 32 : 16;

}  // namespace

MemEnv HostMemEnv() {
  MemEnv env;
  env.alloc = &HostAlloc;
  env.free = &HostFree;
  return env;
}

MallocArena::Header* MallocArena::HeaderOf(void* ptr) {
  auto* header = reinterpret_cast<Header*>(static_cast<char*>(ptr) - kHeaderSize);
  OSKIT_ASSERT_MSG(header->magic == kMagic, "bad malloc header (corruption?)");
  return header;
}

const MallocArena::Header* MallocArena::HeaderOf(const void* ptr) {
  return HeaderOf(const_cast<void*>(ptr));
}

void* MallocArena::Malloc(size_t size) {
  static_assert(sizeof(Header) <= kHeaderSize, "header must fit the slot");
  if (size == 0) {
    size = 1;
  }
  size_t raw_size = kHeaderSize + size;
  void* raw = env_.alloc(env_.ctx, raw_size);
  if (raw == nullptr) {
    return nullptr;
  }
  auto* header = static_cast<Header*>(raw);
  header->size = size;
  header->raw_size = raw_size;
  header->raw = raw;
  header->magic = kMagic;
  bytes_in_use_ += size;
  ++blocks_in_use_;
  ++total_allocs_;
  return static_cast<char*>(raw) + kHeaderSize;
}

void* MallocArena::Calloc(size_t count, size_t elem_size) {
  if (elem_size != 0 && count > static_cast<size_t>(-1) / elem_size) {
    return nullptr;  // multiplication would overflow
  }
  size_t total = count * elem_size;
  void* ptr = Malloc(total);
  if (ptr != nullptr) {
    Memset(ptr, 0, total);
  }
  return ptr;
}

void* MallocArena::Realloc(void* ptr, size_t new_size) {
  if (ptr == nullptr) {
    return Malloc(new_size);
  }
  if (new_size == 0) {
    Free(ptr);
    return nullptr;
  }
  Header* header = HeaderOf(ptr);
  void* fresh = Malloc(new_size);
  if (fresh == nullptr) {
    return nullptr;
  }
  Memcpy(fresh, ptr, header->size < new_size ? header->size : new_size);
  Free(ptr);
  return fresh;
}

void* MallocArena::Memalign(size_t alignment, size_t size) {
  OSKIT_ASSERT_MSG((alignment & (alignment - 1)) == 0, "alignment not a power of 2");
  // Plain Malloc only guarantees the underlying allocator's alignment (16).
  if (alignment <= 16) {
    return Malloc(size);
  }
  // Over-allocate, then place the header immediately before the aligned
  // payload; `raw` in the header remembers the true allocation.
  size_t raw_size = kHeaderSize + alignment + size;
  void* raw = env_.alloc(env_.ctx, raw_size);
  if (raw == nullptr) {
    return nullptr;
  }
  uintptr_t payload = reinterpret_cast<uintptr_t>(raw) + kHeaderSize;
  payload = (payload + alignment - 1) & ~(alignment - 1);
  auto* header = reinterpret_cast<Header*>(payload - kHeaderSize);
  header->size = size;
  header->raw_size = raw_size;
  header->raw = raw;
  header->magic = kMagic;
  bytes_in_use_ += size;
  ++blocks_in_use_;
  ++total_allocs_;
  return reinterpret_cast<void*>(payload);
}

void MallocArena::Free(void* ptr) {
  if (ptr == nullptr) {
    return;
  }
  Header* header = HeaderOf(ptr);
  bytes_in_use_ -= header->size;
  --blocks_in_use_;
  header->magic = 0;  // catch double free on the next HeaderOf
  env_.free(env_.ctx, header->raw, header->raw_size);
}

size_t MallocArena::UsableSize(const void* ptr) const { return HeaderOf(ptr)->size; }

}  // namespace oskit::libc
