// Minimal C library malloc, layered on a client-overridable memory service.
//
// Kernels cannot use a hosted malloc (§3.3/§3.4); the OSKit's malloc sits on
// top of whatever low-level memory allocator the client provides — by
// default the LMM.  Each block carries a small header recording its size, so
// Free/Realloc need no external bookkeeping; the header is also the hook the
// memdebug library (§3.5) wraps.

#ifndef OSKIT_SRC_LIBC_MALLOC_H_
#define OSKIT_SRC_LIBC_MALLOC_H_

#include <cstddef>
#include <cstdint>

namespace oskit::libc {

// The client-supplied low-level service (§4.2.1: the f_devmemalloc pattern —
// a default exists, and the client OS overrides it to take control).
struct MemEnv {
  void* (*alloc)(void* ctx, size_t size) = nullptr;
  void (*free)(void* ctx, void* ptr, size_t size) = nullptr;
  void* ctx = nullptr;
};

// A MemEnv backed by the host heap, for user-space use of the library
// (most OSKit libraries "are often useful in user-mode code as well", §3.2).
MemEnv HostMemEnv();

class MallocArena {
 public:
  explicit MallocArena(const MemEnv& env) : env_(env) {}
  MallocArena(const MallocArena&) = delete;
  MallocArena& operator=(const MallocArena&) = delete;

  void* Malloc(size_t size);
  void* Calloc(size_t count, size_t elem_size);
  void* Realloc(void* ptr, size_t new_size);
  // Alignment must be a power of two; memory from Memalign is freed with
  // the ordinary Free.
  void* Memalign(size_t alignment, size_t size);
  void Free(void* ptr);

  // Size the caller asked for, recovered from the header.
  size_t UsableSize(const void* ptr) const;

  // Statistics (exposed implementation, §4.6).
  uint64_t bytes_in_use() const { return bytes_in_use_; }
  uint64_t blocks_in_use() const { return blocks_in_use_; }
  uint64_t total_allocs() const { return total_allocs_; }

 private:
  struct Header {
    size_t size;       // bytes the caller asked for
    size_t raw_size;   // bytes obtained from the MemEnv
    void* raw;         // pointer obtained from the MemEnv
    uint32_t magic;
  };
  static constexpr uint32_t kMagic = 0x4d414c43;  // "MALC"

  static Header* HeaderOf(void* ptr);
  static const Header* HeaderOf(const void* ptr);

  MemEnv env_;
  uint64_t bytes_in_use_ = 0;
  uint64_t blocks_in_use_ = 0;
  uint64_t total_allocs_ = 0;
};

}  // namespace oskit::libc

#endif  // OSKIT_SRC_LIBC_MALLOC_H_
