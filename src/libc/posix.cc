#include "src/libc/posix.h"

#include "src/base/panic.h"
#include "src/libc/string.h"

namespace oskit::libc {
namespace {

int Neg(Error e) { return -static_cast<int>(e); }

}  // namespace

int PosixIo::AllocFd() {
  // 0/1/2 are reserved in spirit for stdio; the console is not an fd here.
  for (int fd = 3; fd < kMaxFds; ++fd) {
    if (fds_[fd].kind == FdKind::kClosed) {
      return fd;
    }
  }
  return -1;
}

PosixIo::FdEntry* PosixIo::Lookup(int fd) {
  if (fd < 0 || fd >= kMaxFds || fds_[fd].kind == FdKind::kClosed) {
    return nullptr;
  }
  return &fds_[fd];
}

void PosixIo::CloseAll() {
  for (int fd = 0; fd < kMaxFds; ++fd) {
    if (fds_[fd].kind != FdKind::kClosed) {
      // Dropping the socket reference triggers SoDetach -> FIN (§6.2.10).
      fds_[fd] = FdEntry{};
    }
  }
}

int PosixIo::OpenCount() const {
  int n = 0;
  for (const FdEntry& e : fds_) {
    if (e.kind != FdKind::kClosed) {
      ++n;
    }
  }
  return n;
}

Error PosixIo::WalkParent(const char* path, ComPtr<Dir>* out_parent,
                          const char** out_leaf) {
  if (!root_) {
    return Error::kNoEnt;
  }
  if (path == nullptr) {
    return Error::kInval;
  }
  while (*path == '/') {
    ++path;
  }
  ComPtr<Dir> dir = root_;
  const char* component = path;
  for (;;) {
    const char* slash = Strchr(component, '/');
    if (slash == nullptr) {
      *out_parent = std::move(dir);
      *out_leaf = component;
      return Error::kOk;
    }
    // Interior component: must resolve to a directory.
    char name[64];
    size_t len = static_cast<size_t>(slash - component);
    if (len == 0) {  // "a//b": skip empty components
      component = slash + 1;
      continue;
    }
    if (len >= sizeof(name)) {
      return Error::kNameTooLong;
    }
    Memcpy(name, component, len);
    name[len] = '\0';
    ComPtr<File> next;
    Error err = dir->Lookup(name, next.Receive());
    if (!Ok(err)) {
      return err;
    }
    ComPtr<Dir> next_dir = ComPtr<Dir>::FromQuery(next.get());
    if (!next_dir) {
      return Error::kNotDir;
    }
    dir = std::move(next_dir);
    component = slash + 1;
  }
}

int PosixIo::Open(const char* path, int flags, uint32_t mode) {
  ComPtr<Dir> parent;
  const char* leaf = nullptr;
  Error err = WalkParent(path, &parent, &leaf);
  if (!Ok(err)) {
    return Neg(err);
  }
  ComPtr<File> file;
  if (leaf[0] == '\0') {
    // Opening the root directory itself.
    err = parent->Lookup(".", file.Receive());
  } else {
    err = parent->Lookup(leaf, file.Receive());
    if (err == Error::kNoEnt && (flags & kOCreat) != 0) {
      err = parent->Create(leaf, mode, file.Receive());
    }
  }
  if (!Ok(err)) {
    return Neg(err);
  }
  if ((flags & kOTrunc) != 0 && (flags & kOAccMode) != kORdOnly) {
    err = file->SetSize(0);
    if (!Ok(err)) {
      return Neg(err);
    }
  }
  int fd = AllocFd();
  if (fd < 0) {
    return Neg(Error::kMFile);
  }
  FdEntry& e = fds_[fd];
  e.kind = FdKind::kFile;
  e.file = std::move(file);
  e.offset = 0;
  e.append = (flags & kOAppend) != 0;
  return fd;
}

int PosixIo::Close(int fd) {
  FdEntry* e = Lookup(fd);
  if (e == nullptr) {
    return Neg(Error::kBadF);
  }
  *e = FdEntry{};
  return 0;
}

long PosixIo::Read(int fd, void* buf, size_t count) {
  FdEntry* e = Lookup(fd);
  if (e == nullptr) {
    return Neg(Error::kBadF);
  }
  size_t actual = 0;
  Error err;
  if (e->kind == FdKind::kSocket) {
    err = e->socket->Recv(buf, count, &actual);
  } else {
    err = e->file->Read(buf, e->offset, count, &actual);
    e->offset += actual;
  }
  return Ok(err) ? static_cast<long>(actual) : Neg(err);
}

long PosixIo::Write(int fd, const void* buf, size_t count) {
  FdEntry* e = Lookup(fd);
  if (e == nullptr) {
    return Neg(Error::kBadF);
  }
  size_t actual = 0;
  Error err;
  if (e->kind == FdKind::kSocket) {
    err = e->socket->Send(buf, count, &actual);
  } else {
    if (e->append) {
      FileStat st;
      err = e->file->GetStat(&st);
      if (!Ok(err)) {
        return Neg(err);
      }
      e->offset = st.size;
    }
    err = e->file->Write(buf, e->offset, count, &actual);
    e->offset += actual;
  }
  return Ok(err) ? static_cast<long>(actual) : Neg(err);
}

long PosixIo::Lseek(int fd, long offset, int whence) {
  FdEntry* e = Lookup(fd);
  if (e == nullptr || e->kind != FdKind::kFile) {
    return Neg(Error::kBadF);
  }
  long base = 0;
  switch (whence) {
    case kSeekSet:
      base = 0;
      break;
    case kSeekCur:
      base = static_cast<long>(e->offset);
      break;
    case kSeekEnd: {
      FileStat st;
      Error err = e->file->GetStat(&st);
      if (!Ok(err)) {
        return Neg(err);
      }
      base = static_cast<long>(st.size);
      break;
    }
    default:
      return Neg(Error::kInval);
  }
  long target = base + offset;
  if (target < 0) {
    return Neg(Error::kInval);
  }
  e->offset = static_cast<uint64_t>(target);
  return target;
}

int PosixIo::Fstat(int fd, FileStat* out) {
  FdEntry* e = Lookup(fd);
  if (e == nullptr || e->kind != FdKind::kFile) {
    return Neg(Error::kBadF);
  }
  Error err = e->file->GetStat(out);
  return Ok(err) ? 0 : Neg(err);
}

int PosixIo::Stat(const char* path, FileStat* out) {
  int fd = Open(path, kORdOnly);
  if (fd < 0) {
    return fd;
  }
  int rc = Fstat(fd, out);
  Close(fd);
  return rc;
}

int PosixIo::Mkdir(const char* path, uint32_t mode) {
  ComPtr<Dir> parent;
  const char* leaf = nullptr;
  Error err = WalkParent(path, &parent, &leaf);
  if (!Ok(err)) {
    return Neg(err);
  }
  if (leaf[0] == '\0') {
    return Neg(Error::kExist);
  }
  err = parent->Mkdir(leaf, mode);
  return Ok(err) ? 0 : Neg(err);
}

int PosixIo::Unlink(const char* path) {
  ComPtr<Dir> parent;
  const char* leaf = nullptr;
  Error err = WalkParent(path, &parent, &leaf);
  if (!Ok(err)) {
    return Neg(err);
  }
  err = parent->Unlink(leaf);
  return Ok(err) ? 0 : Neg(err);
}

int PosixIo::Rmdir(const char* path) {
  ComPtr<Dir> parent;
  const char* leaf = nullptr;
  Error err = WalkParent(path, &parent, &leaf);
  if (!Ok(err)) {
    return Neg(err);
  }
  err = parent->Rmdir(leaf);
  return Ok(err) ? 0 : Neg(err);
}

int PosixIo::Socket(SockDomain domain, SockType type) {
  if (!socket_factory_) {
    return Neg(Error::kProtoNoSupport);
  }
  ComPtr<oskit::Socket> socket;
  Error err = socket_factory_->Create(domain, type, socket.Receive());
  if (!Ok(err)) {
    return Neg(err);
  }
  int fd = AllocFd();
  if (fd < 0) {
    return Neg(Error::kMFile);
  }
  fds_[fd].kind = FdKind::kSocket;
  fds_[fd].socket = std::move(socket);
  return fd;
}

int PosixIo::Bind(int fd, const SockAddr& addr) {
  FdEntry* e = Lookup(fd);
  if (e == nullptr || e->kind != FdKind::kSocket) {
    return Neg(Error::kBadF);
  }
  Error err = e->socket->Bind(addr);
  return Ok(err) ? 0 : Neg(err);
}

int PosixIo::Connect(int fd, const SockAddr& addr) {
  FdEntry* e = Lookup(fd);
  if (e == nullptr || e->kind != FdKind::kSocket) {
    return Neg(Error::kBadF);
  }
  Error err = e->socket->Connect(addr);
  return Ok(err) ? 0 : Neg(err);
}

int PosixIo::Listen(int fd, int backlog) {
  FdEntry* e = Lookup(fd);
  if (e == nullptr || e->kind != FdKind::kSocket) {
    return Neg(Error::kBadF);
  }
  Error err = e->socket->Listen(backlog);
  return Ok(err) ? 0 : Neg(err);
}

int PosixIo::Accept(int fd, SockAddr* out_peer) {
  FdEntry* e = Lookup(fd);
  if (e == nullptr || e->kind != FdKind::kSocket) {
    return Neg(Error::kBadF);
  }
  ComPtr<oskit::Socket> conn;
  Error err = e->socket->Accept(out_peer, conn.Receive());
  if (!Ok(err)) {
    return Neg(err);
  }
  int new_fd = AllocFd();
  if (new_fd < 0) {
    return Neg(Error::kMFile);
  }
  fds_[new_fd].kind = FdKind::kSocket;
  fds_[new_fd].socket = std::move(conn);
  return new_fd;
}

long PosixIo::Send(int fd, const void* buf, size_t count) { return Write(fd, buf, count); }
long PosixIo::Recv(int fd, void* buf, size_t count) { return Read(fd, buf, count); }

int PosixIo::Shutdown(int fd, SockShutdown how) {
  FdEntry* e = Lookup(fd);
  if (e == nullptr || e->kind != FdKind::kSocket) {
    return Neg(Error::kBadF);
  }
  Error err = e->socket->Shutdown(how);
  return Ok(err) ? 0 : Neg(err);
}

}  // namespace oskit::libc
