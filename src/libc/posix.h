// Minimal POSIX environment (paper §5, §6.2.1).
//
// "All of the language implementations greatly benefited from the fairly
// complete POSIX environment provided by the OSKit's minimal C library" —
// a file-descriptor layer mapping POSIX calls onto COM objects:
// open/read/write on FileSystem/Dir/File, socket() routed through a
// client-registered SocketFactory (the paper's posix_set_socketcreator),
// plus the deliberately-null signal/select stubs ttcp needed (§5).

#ifndef OSKIT_SRC_LIBC_POSIX_H_
#define OSKIT_SRC_LIBC_POSIX_H_

#include <cstdint>
#include <vector>

#include "src/com/filesystem.h"
#include "src/com/socket.h"

namespace oskit::libc {

// open() flags (octal values match the classic Unix ABI).
inline constexpr int kORdOnly = 0;
inline constexpr int kOWrOnly = 1;
inline constexpr int kORdWr = 2;
inline constexpr int kOAccMode = 3;
inline constexpr int kOCreat = 0100;
inline constexpr int kOTrunc = 01000;
inline constexpr int kOAppend = 02000;

inline constexpr int kSeekSet = 0;
inline constexpr int kSeekCur = 1;
inline constexpr int kSeekEnd = 2;

class PosixIo {
 public:
  static constexpr int kMaxFds = 64;

  PosixIo() = default;

  // Binds the root directory "/" resolves against.  Typically the bmod
  // filesystem at first (§6.2.2), later a disk filesystem.
  void SetRoot(ComPtr<Dir> root) { root_ = std::move(root); }

  // Registers the socket factory socket() uses — posix_set_socketcreator.
  void SetSocketCreator(ComPtr<SocketFactory> factory) {
    socket_factory_ = std::move(factory);
  }

  // ---- File calls.  Return fd >= 0 or the negated Error code. ----
  int Open(const char* path, int flags, uint32_t mode = 0644);
  int Close(int fd);
  // Returns bytes transferred or negated Error.
  long Read(int fd, void* buf, size_t count);
  long Write(int fd, const void* buf, size_t count);
  long Lseek(int fd, long offset, int whence);
  int Fstat(int fd, FileStat* out);
  int Stat(const char* path, FileStat* out);
  int Mkdir(const char* path, uint32_t mode = 0755);
  int Unlink(const char* path);
  int Rmdir(const char* path);

  // ---- Socket calls ----
  int Socket(SockDomain domain, SockType type);
  int Bind(int fd, const SockAddr& addr);
  int Connect(int fd, const SockAddr& addr);
  int Listen(int fd, int backlog);
  int Accept(int fd, SockAddr* out_peer);
  long Send(int fd, const void* buf, size_t count);
  long Recv(int fd, void* buf, size_t count);
  int Shutdown(int fd, SockShutdown how);

  // ---- Null functions (paper §5: signal and select "can be implemented
  // as null functions without affecting the results") ----
  int SignalStub(int signum) { return 0; }
  int SelectStub(int nfds) { return 0; }

  // Number of live descriptors (leak checks in tests).
  int OpenCount() const;

  // Closes every descriptor.  Stream sockets get an orderly FIN handshake
  // (the stack finishes the teardown in the background) — the fix for the
  // paper's §6.2.10 deficiency that "exit" just rebooted and "leaves its
  // peers hanging".  The destructor calls this.
  void CloseAll();

  ~PosixIo() { CloseAll(); }

 private:
  enum class FdKind { kClosed, kFile, kSocket };

  struct FdEntry {
    FdKind kind = FdKind::kClosed;
    ComPtr<File> file;
    ComPtr<oskit::Socket> socket;  // qualified: Socket() the method shadows
    uint64_t offset = 0;
    bool append = false;
  };

  int AllocFd();
  FdEntry* Lookup(int fd);

  // Walks all-but-last path components; returns the parent Dir and points
  // *out_leaf at the final component (empty string means the root itself).
  Error WalkParent(const char* path, ComPtr<Dir>* out_parent, const char** out_leaf);

  ComPtr<Dir> root_;
  ComPtr<SocketFactory> socket_factory_;
  FdEntry fds_[kMaxFds];
};

}  // namespace oskit::libc

#endif  // OSKIT_SRC_LIBC_POSIX_H_
