#include "src/libc/quickalloc.h"

#include "src/base/panic.h"

namespace oskit::libc {

namespace {
constexpr size_t kClassSizes[QuickAlloc::kClassCount] = {16,  32,  64,   128,
                                                         256, 512, 1024, 2048};
}  // namespace

QuickAlloc::~QuickAlloc() {
  // Return every slab to the backing allocator.  (Outstanding small blocks
  // become invalid, like destroying any arena.)
  while (slabs_ != nullptr) {
    Slab* next = slabs_->next;
    backing_.free(backing_.ctx, slabs_, kSlabSize);
    slabs_ = next;
  }
}

int QuickAlloc::ClassOf(size_t size) {
  for (size_t i = 0; i < kClassCount; ++i) {
    if (size <= kClassSizes[i]) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

size_t QuickAlloc::ClassSize(int cls) { return kClassSizes[cls]; }

bool QuickAlloc::Refill(int cls) {
  void* raw = backing_.alloc(backing_.ctx, kSlabSize);
  if (raw == nullptr) {
    return false;
  }
  ++slab_refills_;
  ++slabs_held_;
  auto* slab = static_cast<Slab*>(raw);
  slab->next = slabs_;
  slabs_ = slab;

  // Carve the remainder of the slab into class-size blocks.
  size_t block = ClassSize(cls);
  auto* cursor = reinterpret_cast<uint8_t*>(raw) + sizeof(Slab);
  // Keep blocks 16-aligned.
  cursor = reinterpret_cast<uint8_t*>(
      (reinterpret_cast<uintptr_t>(cursor) + 15) & ~uintptr_t{15});
  auto* end = reinterpret_cast<uint8_t*>(raw) + kSlabSize;
  while (cursor + block <= end) {
    auto* node = reinterpret_cast<FreeNode*>(cursor);
    node->next = free_[cls];
    free_[cls] = node;
    cursor += block;
  }
  return true;
}

void* QuickAlloc::Alloc(size_t size) {
  int cls = ClassOf(size);
  if (cls < 0) {
    ++large_passthrough_;
    return backing_.alloc(backing_.ctx, size);
  }
  if (free_[cls] == nullptr && !Refill(cls)) {
    return nullptr;
  }
  FreeNode* node = free_[cls];
  free_[cls] = node->next;
  ++fast_hits_;
  return node;
}

void QuickAlloc::Free(void* ptr, size_t size) {
  if (ptr == nullptr) {
    return;
  }
  int cls = ClassOf(size);
  if (cls < 0) {
    backing_.free(backing_.ctx, ptr, size);
    return;
  }
  auto* node = static_cast<FreeNode*>(ptr);
  node->next = free_[cls];
  free_[cls] = node;
}

MemEnv QuickAlloc::AsMemEnv() {
  MemEnv env;
  env.alloc = +[](void* ctx, size_t size) -> void* {
    return static_cast<QuickAlloc*>(ctx)->Alloc(size);
  };
  env.free = +[](void* ctx, void* ptr, size_t size) {
    static_cast<QuickAlloc*>(ctx)->Free(ptr, size);
  };
  env.ctx = this;
  return env;
}

}  // namespace oskit::libc
