// QuickAlloc: the high-level allocator the paper names as future work.
//
// §6.2.10: "a significant amount of time is spent in memory allocation and
// deallocation ... For fast allocation of small data structures with no type
// or alignment restrictions, a more conventional high-level allocator would
// be more appropriate, possibly layered on top of the OSKit's existing
// low-level allocator.  The OSKit currently does not provide a high-level
// allocator of this kind, but we expect to integrate one in the future."
//
// This is that allocator: per-size-class free lists refilled in slabs from
// any client MemEnv (by default the LMM-backed one), constant-time in the
// common case, falling through to the low-level allocator for large blocks.
// It exposes a MemEnv itself, so it can slot under the malloc arena or the
// fdev osenv without either knowing (§4.2.1).

#ifndef OSKIT_SRC_LIBC_QUICKALLOC_H_
#define OSKIT_SRC_LIBC_QUICKALLOC_H_

#include <cstddef>
#include <cstdint>

#include "src/libc/malloc.h"

namespace oskit::libc {

class QuickAlloc {
 public:
  static constexpr size_t kClassCount = 8;
  static constexpr size_t kMaxSmall = 2048;  // larger goes to the backing env
  static constexpr size_t kSlabSize = 32 * 1024;

  explicit QuickAlloc(const MemEnv& backing) : backing_(backing) {}
  ~QuickAlloc();

  QuickAlloc(const QuickAlloc&) = delete;
  QuickAlloc& operator=(const QuickAlloc&) = delete;

  void* Alloc(size_t size);
  void Free(void* ptr, size_t size);

  // A MemEnv view of this allocator, for layering (e.g., under
  // MallocArena or an FdevEnv).
  MemEnv AsMemEnv();

  // Statistics (exposed implementation, §4.6).
  uint64_t fast_hits() const { return fast_hits_; }
  uint64_t slab_refills() const { return slab_refills_; }
  uint64_t large_passthrough() const { return large_passthrough_; }
  uint64_t slabs_held() const { return slabs_held_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  struct Slab {
    Slab* next;
  };

  static int ClassOf(size_t size);
  static size_t ClassSize(int cls);
  bool Refill(int cls);

  MemEnv backing_;
  FreeNode* free_[kClassCount] = {};
  Slab* slabs_ = nullptr;
  uint64_t fast_hits_ = 0;
  uint64_t slab_refills_ = 0;
  uint64_t large_passthrough_ = 0;
  uint64_t slabs_held_ = 0;
};

}  // namespace oskit::libc

#endif  // OSKIT_SRC_LIBC_QUICKALLOC_H_
