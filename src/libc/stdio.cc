#include "src/libc/stdio.h"

namespace oskit::libc {

int ConsoleOut::Putchar(int c) {
  if (putchar_ != nullptr) {
    return putchar_(putchar_ctx_, c);
  }
  captured_.push_back(static_cast<char>(c));
  return c;
}

int ConsoleOut::Puts(const char* s) {
  if (puts_ != nullptr) {
    return puts_(puts_ctx_, s);
  }
  // Default puts is implemented ONLY in terms of putchar (§4.3.1).
  while (*s != '\0') {
    Putchar(*s++);
  }
  Putchar('\n');
  return 0;
}

bool ConsoleOut::PrintfSink(void* ctx, char c) {
  static_cast<ConsoleOut*>(ctx)->Putchar(c);
  return true;
}

int ConsoleOut::Vprintf(const char* format, va_list args) {
  // printf emits through putchar; no buffering, no internal state (§3.4).
  return FormatV(&ConsoleOut::PrintfSink, this, format, args);
}

int ConsoleOut::Printf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  int n = Vprintf(format, args);
  va_end(args);
  return n;
}

}  // namespace oskit::libc
