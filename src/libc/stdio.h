// Minimal C library console output: the printf → puts → putchar chain.
//
// Paper §4.3.1, verbatim design: "the OSKit's default printf function is
// implemented in terms of two other functions, puts and putchar; the default
// puts, in turn, is implemented only in terms of putchar.  While this
// implementation would be a bug in a standard C library ... it allows the
// client OS to obtain basic formatted console output simply by providing a
// putchar function and nothing else."
//
// Every function here is individually overridable at run time through
// function-pointer indirection (§4.2.1).  The default putchar appends to an
// internal capture buffer so the library works before any console exists.

#ifndef OSKIT_SRC_LIBC_STDIO_H_
#define OSKIT_SRC_LIBC_STDIO_H_

#include <cstdarg>
#include <string>

#include "src/libc/format.h"

namespace oskit::libc {

class ConsoleOut {
 public:
  using PutcharFn = int (*)(void* ctx, int c);
  using PutsFn = int (*)(void* ctx, const char* s);

  ConsoleOut() = default;

  // ---- Override points (§4.2.1: overridable functions) ----
  // Replacing putchar redirects puts and printf too, unless those have
  // their own overrides.
  void SetPutchar(PutcharFn fn, void* ctx) {
    putchar_ = fn;
    putchar_ctx_ = ctx;
  }
  void SetPuts(PutsFn fn, void* ctx) {
    puts_ = fn;
    puts_ctx_ = ctx;
  }

  // ---- The C-style calls ----
  int Putchar(int c);
  int Puts(const char* s);  // C semantics: appends '\n'
  int Printf(const char* format, ...) __attribute__((format(printf, 2, 3)));
  int Vprintf(const char* format, va_list args);

  // Capture buffer used by the default putchar (tests read this).
  std::string TakeCaptured() {
    std::string s;
    s.swap(captured_);
    return s;
  }

 private:
  static bool PrintfSink(void* ctx, char c);

  PutcharFn putchar_ = nullptr;
  void* putchar_ctx_ = nullptr;
  PutsFn puts_ = nullptr;
  void* puts_ctx_ = nullptr;
  std::string captured_;
};

}  // namespace oskit::libc

#endif  // OSKIT_SRC_LIBC_STDIO_H_
