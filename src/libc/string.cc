#include "src/libc/string.h"

namespace oskit::libc {

size_t Strlen(const char* s) {
  const char* p = s;
  while (*p != '\0') {
    ++p;
  }
  return static_cast<size_t>(p - s);
}

size_t Strnlen(const char* s, size_t max) {
  size_t n = 0;
  while (n < max && s[n] != '\0') {
    ++n;
  }
  return n;
}

char* Strcpy(char* dst, const char* src) {
  char* d = dst;
  while ((*d++ = *src++) != '\0') {
  }
  return dst;
}

char* Strncpy(char* dst, const char* src, size_t n) {
  size_t i = 0;
  for (; i < n && src[i] != '\0'; ++i) {
    dst[i] = src[i];
  }
  for (; i < n; ++i) {
    dst[i] = '\0';
  }
  return dst;
}

size_t Strlcpy(char* dst, const char* src, size_t size) {
  size_t len = Strlen(src);
  if (size != 0) {
    size_t n = len < size - 1 ? len : size - 1;
    Memcpy(dst, src, n);
    dst[n] = '\0';
  }
  return len;
}

char* Strcat(char* dst, const char* src) {
  Strcpy(dst + Strlen(dst), src);
  return dst;
}

int Strcmp(const char* a, const char* b) {
  while (*a != '\0' && *a == *b) {
    ++a;
    ++b;
  }
  return static_cast<unsigned char>(*a) - static_cast<unsigned char>(*b);
}

int Strncmp(const char* a, const char* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i] || a[i] == '\0') {
      return static_cast<unsigned char>(a[i]) - static_cast<unsigned char>(b[i]);
    }
  }
  return 0;
}

int Strcasecmp(const char* a, const char* b) {
  while (*a != '\0' && ToLower(*a) == ToLower(*b)) {
    ++a;
    ++b;
  }
  return ToLower(static_cast<unsigned char>(*a)) -
         ToLower(static_cast<unsigned char>(*b));
}

const char* Strchr(const char* s, int c) {
  for (;; ++s) {
    if (*s == static_cast<char>(c)) {
      return s;
    }
    if (*s == '\0') {
      return nullptr;
    }
  }
}

const char* Strrchr(const char* s, int c) {
  const char* found = nullptr;
  for (;; ++s) {
    if (*s == static_cast<char>(c)) {
      found = s;
    }
    if (*s == '\0') {
      return found;
    }
  }
}

const char* Strstr(const char* haystack, const char* needle) {
  if (needle[0] == '\0') {
    return haystack;
  }
  size_t needle_len = Strlen(needle);
  for (; *haystack != '\0'; ++haystack) {
    if (Strncmp(haystack, needle, needle_len) == 0) {
      return haystack;
    }
  }
  return nullptr;
}

void* Memcpy(void* dst, const void* src, size_t n) {
  auto* d = static_cast<unsigned char*>(dst);
  const auto* s = static_cast<const unsigned char*>(src);
  for (size_t i = 0; i < n; ++i) {
    d[i] = s[i];
  }
  return dst;
}

void* Memmove(void* dst, const void* src, size_t n) {
  auto* d = static_cast<unsigned char*>(dst);
  const auto* s = static_cast<const unsigned char*>(src);
  if (d < s) {
    for (size_t i = 0; i < n; ++i) {
      d[i] = s[i];
    }
  } else if (d > s) {
    for (size_t i = n; i > 0; --i) {
      d[i - 1] = s[i - 1];
    }
  }
  return dst;
}

void* Memset(void* dst, int value, size_t n) {
  auto* d = static_cast<unsigned char*>(dst);
  for (size_t i = 0; i < n; ++i) {
    d[i] = static_cast<unsigned char>(value);
  }
  return dst;
}

int Memcmp(const void* a, const void* b, size_t n) {
  const auto* pa = static_cast<const unsigned char*>(a);
  const auto* pb = static_cast<const unsigned char*>(b);
  for (size_t i = 0; i < n; ++i) {
    if (pa[i] != pb[i]) {
      return pa[i] - pb[i];
    }
  }
  return 0;
}

const void* Memchr(const void* s, int c, size_t n) {
  const auto* p = static_cast<const unsigned char*>(s);
  for (size_t i = 0; i < n; ++i) {
    if (p[i] == static_cast<unsigned char>(c)) {
      return p + i;
    }
  }
  return nullptr;
}

int ToLower(int c) { return (c >= 'A' && c <= 'Z') ? c - 'A' + 'a' : c; }
int ToUpper(int c) { return (c >= 'a' && c <= 'z') ? c - 'a' + 'A' : c; }
bool IsDigit(int c) { return c >= '0' && c <= '9'; }
bool IsSpace(int c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
}
bool IsAlpha(int c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}
bool IsPrint(int c) { return c >= 0x20 && c < 0x7f; }

unsigned long Strtoul(const char* s, const char** end, int base) {
  while (IsSpace(*s)) {
    ++s;
  }
  bool negate = false;
  if (*s == '+' || *s == '-') {
    negate = *s == '-';
    ++s;
  }
  if ((base == 0 || base == 16) && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    s += 2;
    base = 16;
  } else if (base == 0 && s[0] == '0') {
    base = 8;
  } else if (base == 0) {
    base = 10;
  }
  unsigned long value = 0;
  const char* start = s;
  for (;; ++s) {
    int digit;
    if (IsDigit(*s)) {
      digit = *s - '0';
    } else if (IsAlpha(*s)) {
      digit = ToLower(*s) - 'a' + 10;
    } else {
      break;
    }
    if (digit >= base) {
      break;
    }
    value = value * static_cast<unsigned long>(base) + static_cast<unsigned long>(digit);
  }
  if (end != nullptr) {
    *end = s == start ? start : s;
  }
  return negate ? ~value + 1 : value;
}

long Strtol(const char* s, const char** end, int base) {
  return static_cast<long>(Strtoul(s, end, base));
}

int Atoi(const char* s) { return static_cast<int>(Strtol(s, nullptr, 10)); }

}  // namespace oskit::libc
