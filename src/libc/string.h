// Minimal C library: string and memory routines (paper §3.4).
//
// The OSKit is self-sufficient: it does not use or depend on any existing
// libraries installed on the system (§4.1).  These are our own
// implementations, in the oskit::libc namespace; kernel-side code uses them
// instead of the host's <cstring>.

#ifndef OSKIT_SRC_LIBC_STRING_H_
#define OSKIT_SRC_LIBC_STRING_H_

#include <cstddef>
#include <cstdint>

namespace oskit::libc {

size_t Strlen(const char* s);
size_t Strnlen(const char* s, size_t max);
char* Strcpy(char* dst, const char* src);
char* Strncpy(char* dst, const char* src, size_t n);
size_t Strlcpy(char* dst, const char* src, size_t size);  // BSD-style, safer
char* Strcat(char* dst, const char* src);
int Strcmp(const char* a, const char* b);
int Strncmp(const char* a, const char* b, size_t n);
int Strcasecmp(const char* a, const char* b);
const char* Strchr(const char* s, int c);
const char* Strrchr(const char* s, int c);
const char* Strstr(const char* haystack, const char* needle);

void* Memcpy(void* dst, const void* src, size_t n);
void* Memmove(void* dst, const void* src, size_t n);
void* Memset(void* dst, int value, size_t n);
int Memcmp(const void* a, const void* b, size_t n);
const void* Memchr(const void* s, int c, size_t n);

// Numeric conversion.  Matches C strtol semantics: optional whitespace,
// sign, base prefix ("0x"/"0") when base == 0.
long Strtol(const char* s, const char** end, int base);
unsigned long Strtoul(const char* s, const char** end, int base);
int Atoi(const char* s);

int ToLower(int c);
int ToUpper(int c);
bool IsDigit(int c);
bool IsSpace(int c);
bool IsAlpha(int c);
bool IsPrint(int c);

}  // namespace oskit::libc

#endif  // OSKIT_SRC_LIBC_STRING_H_
