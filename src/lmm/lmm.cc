#include "src/lmm/lmm.h"

#include <cstdio>

#include "src/base/panic.h"

namespace oskit {
namespace {

// Internal allocation quantum.  Every free block's address and size is a
// multiple of this, which guarantees any split leaves representable
// fragments (a fragment is always >= sizeof(FreeBlock)).  Deviation from the
// original LMM (which tolerated arbitrary granularity at the cost of leaked
// slivers): alignment-offset requests must be kQuantum-compatible, which
// every real client (page, DMA-boundary, cache-line alignment) satisfies.
constexpr uintptr_t kQuantum = sizeof(FreeBlock);
static_assert(kQuantum >= 16, "FreeBlock must provide the 16-byte quantum");

uintptr_t RoundUp(uintptr_t v) { return (v + kQuantum - 1) & ~(kQuantum - 1); }
uintptr_t RoundDown(uintptr_t v) { return v & ~(kQuantum - 1); }

uintptr_t AddrOf(const void* p) { return reinterpret_cast<uintptr_t>(p); }
FreeBlock* BlockAt(uintptr_t addr) { return reinterpret_cast<FreeBlock*>(addr); }

}  // namespace

void Lmm::BindTrace(trace::TraceEnv* env) {
  env = trace::ResolveTraceEnv(env);
  trace_binding_.Unbind();
  trace_binding_.Bind(&env->registry,
                      {{"lmm.alloc_calls", &counters_.alloc_calls},
                       {"lmm.free_calls", &counters_.free_calls}});
  recorder_ = &env->recorder;
}

void Lmm::AddRegion(LmmRegion* region, void* base, size_t size, uint32_t flags,
                    int32_t priority) {
  OSKIT_ASSERT(region != nullptr);
  OSKIT_ASSERT(size > 0);
  region->min = AddrOf(base);
  region->max = region->min + size;
  region->flags = flags;
  region->priority = priority;
  region->free_list = nullptr;
  region->free_bytes = 0;

  // No region may overlap another: the free lists would corrupt.
  for (LmmRegion* r = regions_; r != nullptr; r = r->next) {
    OSKIT_ASSERT_MSG(region->max <= r->min || region->min >= r->max,
                     "overlapping LMM regions");
  }

  // Insert in descending priority order (stable for equal priorities).
  LmmRegion** link = &regions_;
  while (*link != nullptr && (*link)->priority >= priority) {
    link = &(*link)->next;
  }
  region->next = *link;
  *link = region;
}

void Lmm::AddFree(void* base, size_t size) {
  uintptr_t lo = AddrOf(base);
  uintptr_t hi = lo + size;
  for (LmmRegion* r = regions_; r != nullptr; r = r->next) {
    uintptr_t s = lo > r->min ? lo : r->min;
    uintptr_t e = hi < r->max ? hi : r->max;
    if (s < e) {
      AddFreeToRegion(r, s, e);
    }
  }
}

void Lmm::AddFreeToRegion(LmmRegion* region, uintptr_t min, uintptr_t max) {
  min = RoundUp(min);
  max = RoundDown(max);
  if (min >= max || max - min < kQuantum) {
    return;
  }
  size_t size = max - min;

  // Find the insertion point in the address-ordered list.
  FreeBlock** link = &region->free_list;
  while (*link != nullptr && AddrOf(*link) < min) {
    FreeBlock* b = *link;
    OSKIT_ASSERT_MSG(AddrOf(b) + b->size <= min, "freeing overlapping range");
    link = &b->next;
  }
  if (*link != nullptr) {
    OSKIT_ASSERT_MSG(max <= AddrOf(*link), "freeing overlapping range");
  }

  // Coalesce with the following block.
  FreeBlock* next = *link;
  if (next != nullptr && AddrOf(next) == max) {
    size += next->size;
    next = next->next;
  }
  // Coalesce with the preceding block (link points into it if adjacent).
  if (link != &region->free_list) {
    // Recover the predecessor: link is &pred->next.
    FreeBlock* pred = reinterpret_cast<FreeBlock*>(
        reinterpret_cast<char*>(link) - offsetof(FreeBlock, next));
    if (AddrOf(pred) + pred->size == min) {
      pred->size += size;
      pred->next = next;
      region->free_bytes += max - min;
      return;
    }
  }
  FreeBlock* block = BlockAt(min);
  block->size = size;
  block->next = next;
  *link = block;
  region->free_bytes += max - min;
}

void Lmm::RemoveFree(void* base, size_t size) {
  uintptr_t lo = RoundDown(AddrOf(base));
  uintptr_t hi = RoundUp(AddrOf(base) + size);
  for (LmmRegion* r = regions_; r != nullptr; r = r->next) {
    FreeBlock** link = &r->free_list;
    while (*link != nullptr) {
      FreeBlock* b = *link;
      uintptr_t b_lo = AddrOf(b);
      uintptr_t b_hi = b_lo + b->size;
      if (b_hi <= lo || b_lo >= hi) {
        link = &b->next;
        continue;
      }
      // Overlap: remove the block, then re-add the surviving pieces.
      *link = b->next;
      r->free_bytes -= b->size;
      if (b_lo < lo) {
        AddFreeToRegion(r, b_lo, lo);
        // The left piece sits before `lo`; the link may now point at it, so
        // restart the scan for simplicity (lists are short).
        link = &r->free_list;
      }
      if (b_hi > hi) {
        AddFreeToRegion(r, hi, b_hi);
        link = &r->free_list;
      }
    }
  }
}

void* Lmm::Alloc(size_t size, uint32_t flags) {
  return AllocGen(size, flags, 0, 0, 0, 0);
}

void* Lmm::AllocAligned(size_t size, uint32_t flags, unsigned align_bits,
                        uintptr_t align_ofs) {
  return AllocGen(size, flags, align_bits, align_ofs, 0, 0);
}

void* Lmm::AllocPage(uint32_t flags) {
  return AllocGen(kLmmPageSize, flags, 12, 0, 0, 0);
}

void* Lmm::AllocGen(size_t size, uint32_t flags, unsigned align_bits,
                    uintptr_t align_ofs, uintptr_t bounds_min, size_t bounds_size) {
  OSKIT_ASSERT(size > 0);
  OSKIT_ASSERT(align_bits < sizeof(uintptr_t) * 8);
  uintptr_t mask = (uintptr_t{1} << align_bits) - 1;
  uintptr_t want = align_ofs & mask;
  OSKIT_ASSERT_MSG((want & (kQuantum - 1)) == 0,
                   "alignment offset must be a multiple of the LMM quantum");
  size = RoundUp(size);
  uintptr_t bounds_max = bounds_size == 0 ? ~uintptr_t{0} : bounds_min + bounds_size;

  if (fault_->ShouldFail("lmm.alloc")) {
    return nullptr;  // simulated exhaustion: same contract as the real miss
  }

  for (LmmRegion* r = regions_; r != nullptr; r = r->next) {
    if ((r->flags & flags) != flags) {
      continue;
    }
    if (bounds_size != 0 && (r->max <= bounds_min || r->min >= bounds_max)) {
      continue;
    }
    FreeBlock** link = &r->free_list;
    for (FreeBlock* b = *link; b != nullptr; link = &b->next, b = *link) {
      uintptr_t b_lo = AddrOf(b);
      uintptr_t b_hi = b_lo + b->size;
      uintptr_t addr = b_lo;
      if (addr < bounds_min) {
        addr = RoundUp(bounds_min);
      }
      // Advance to the alignment pattern (delta is a kQuantum multiple
      // because both `want` and `addr` are).
      addr += (want - (addr & mask)) & mask;
      if (addr + size > b_hi || addr + size > bounds_max) {
        continue;
      }
      uintptr_t lead = addr - b_lo;
      uintptr_t trail = b_hi - (addr + size);
      // Unlink the block, then return the remainders.
      *link = b->next;
      r->free_bytes -= b->size;
      if (lead > 0) {
        AddFreeToRegion(r, b_lo, addr);
      }
      if (trail > 0) {
        AddFreeToRegion(r, addr + size, b_hi);
      }
      ++counters_.alloc_calls;
      if (recorder_ != nullptr) {
        recorder_->Record(trace::EventType::kAlloc, "lmm", addr, size);
      }
      return reinterpret_cast<void*>(addr);
    }
  }
  return nullptr;
}

void Lmm::Free(void* block, size_t size) {
  OSKIT_ASSERT(block != nullptr);
  OSKIT_ASSERT(size > 0);
  uintptr_t lo = AddrOf(block);
  uintptr_t hi = lo + RoundUp(size);
  for (LmmRegion* r = regions_; r != nullptr; r = r->next) {
    if (lo >= r->min && hi <= r->max) {
      AddFreeToRegion(r, lo, hi);
      ++counters_.free_calls;
      if (recorder_ != nullptr) {
        recorder_->Record(trace::EventType::kFree, "lmm", lo, size);
      }
      return;
    }
  }
  Panic("Lmm::Free: block %p not within any region", block);
}

size_t Lmm::Avail(uint32_t flags) const {
  size_t total = 0;
  for (const LmmRegion* r = regions_; r != nullptr; r = r->next) {
    if ((r->flags & flags) == flags) {
      total += r->free_bytes;
    }
  }
  return total;
}

bool Lmm::FindFree(uintptr_t* inout_addr, size_t* out_size,
                   uint32_t* out_flags) const {
  uintptr_t floor = *inout_addr;
  const FreeBlock* best = nullptr;
  uint32_t best_flags = 0;
  for (const LmmRegion* r = regions_; r != nullptr; r = r->next) {
    for (const FreeBlock* b = r->free_list; b != nullptr; b = b->next) {
      if (AddrOf(b) + b->size <= floor) {
        continue;
      }
      if (best == nullptr || AddrOf(b) < AddrOf(best)) {
        best = b;
        best_flags = r->flags;
      }
      break;  // list is address-ordered; later blocks in this region are worse
    }
  }
  if (best == nullptr) {
    return false;
  }
  *inout_addr = AddrOf(best);
  *out_size = best->size;
  *out_flags = best_flags;
  return true;
}

void Lmm::AuditOrDie() const {
  for (const LmmRegion* r = regions_; r != nullptr; r = r->next) {
    size_t total = 0;
    uintptr_t last_end = 0;
    bool first = true;
    for (const FreeBlock* b = r->free_list; b != nullptr; b = b->next) {
      uintptr_t lo = AddrOf(b);
      OSKIT_ASSERT_MSG((lo & (kQuantum - 1)) == 0, "misaligned free block");
      OSKIT_ASSERT_MSG(b->size >= kQuantum && (b->size & (kQuantum - 1)) == 0,
                       "bad free block size");
      OSKIT_ASSERT_MSG(lo >= r->min && lo + b->size <= r->max,
                       "free block outside region");
      if (!first) {
        OSKIT_ASSERT_MSG(lo > last_end, "free list unsorted or uncoalesced");
      }
      first = false;
      last_end = lo + b->size;
      total += b->size;
    }
    OSKIT_ASSERT_MSG(total == r->free_bytes, "free byte counter drift");
  }
}

}  // namespace oskit
