// List Memory Manager (paper §3.3).
//
// The LMM manages allocation of physical (or virtual) memory across multiple
// "regions" of different types.  Each region carries a flag word describing
// its properties (e.g., DMA-reachable below 16 MB, below 1 MB for BIOS-era
// structures) and a priority; allocations name the flags they REQUIRE and
// are satisfied from the highest-priority qualifying region, so scarce
// memory types (DMA pages) are preserved unless explicitly requested.
//
// Faithful to the original in the properties client code depends on:
//  * free-list bookkeeping lives INSIDE the free memory itself — the manager
//    allocates nothing;
//  * regions are caller-provided storage (LmmRegion), so the LMM can run
//    before any allocator exists;
//  * AllocGen supports arbitrary power-of-two alignment with an offset, and
//    address-range bounds, the constraints device drivers need (§3.3);
//  * the free list is walkable and specific ranges can be reserved/returned
//    (RemoveFree/AddFree) — the "open implementation" surface (§4.6).

#ifndef OSKIT_SRC_LMM_LMM_H_
#define OSKIT_SRC_LMM_LMM_H_

#include <cstddef>
#include <cstdint>

#include "src/fault/fault.h"
#include "src/trace/trace.h"

namespace oskit {

// Flag bits are client-defined; these are the conventional x86 PC ones.
inline constexpr uint32_t kLmmFlag1Mb = 0x01;   // below 1 MB (BIOS/real-mode)
inline constexpr uint32_t kLmmFlag16Mb = 0x02;  // below 16 MB (ISA DMA)

inline constexpr size_t kLmmPageSize = 4096;

// Caller-provided region descriptor.  Must outlive the Lmm.
struct LmmRegion {
  LmmRegion* next = nullptr;  // regions, sorted by descending priority
  struct FreeBlock* free_list = nullptr;
  uintptr_t min = 0;  // [min, max) address range this region covers
  uintptr_t max = 0;
  uint32_t flags = 0;
  int32_t priority = 0;
  size_t free_bytes = 0;
};

// Free-list node, stored in the free memory itself (address order).
struct FreeBlock {
  FreeBlock* next;
  size_t size;
};

class Lmm {
 public:
  // Minimum granule: every free block must be able to hold a FreeBlock.
  static constexpr size_t kMinSize = sizeof(FreeBlock);

  Lmm() = default;
  Lmm(const Lmm&) = delete;
  Lmm& operator=(const Lmm&) = delete;

  // Registers a region covering [base, base+size).  The memory itself is NOT
  // made available until AddFree() — regions describe address ranges, not
  // free memory.
  void AddRegion(LmmRegion* region, void* base, size_t size, uint32_t flags,
                 int32_t priority);

  // Donates [base, base+size) to the free pool.  The range may span several
  // regions (the x86 kernel support library hands the LMM all of physical
  // memory in one call); each overlap goes to its region.  Portions covered
  // by no region are ignored.
  void AddFree(void* base, size_t size);

  // Reserves a specific address range, removing any free parts of it from
  // the pool (used to protect boot modules, the kernel image, etc.).
  void RemoveFree(void* base, size_t size);

  // Allocates `size` bytes from the highest-priority region whose flags
  // contain all bits in `flags`.  Returns nullptr on failure.
  void* Alloc(size_t size, uint32_t flags);

  // Allocates with alignment: the low `align_bits` bits of the returned
  // address will equal the low bits of `align_ofs`.
  void* AllocAligned(size_t size, uint32_t flags, unsigned align_bits,
                     uintptr_t align_ofs);

  // Fully general allocation: alignment plus an address-range constraint
  // [bounds_min, bounds_min+bounds_size).  Pass bounds_size == 0 for
  // unconstrained.
  void* AllocGen(size_t size, uint32_t flags, unsigned align_bits,
                 uintptr_t align_ofs, uintptr_t bounds_min, size_t bounds_size);

  // One naturally-aligned page.
  void* AllocPage(uint32_t flags);

  // Returns a block to the pool.  The caller remembers the size (the LMM
  // stores no per-allocation header — that is what keeps it usable for
  // page-granular physical memory).
  void Free(void* block, size_t size);

  // Total free bytes in regions whose flags contain all bits in `flags`.
  size_t Avail(uint32_t flags) const;

  // Free-list walk (open implementation).  Finds the first free block at or
  // above *inout_addr; returns false when none.  On success sets *inout_addr
  // to the block address and fills size/flags.
  bool FindFree(uintptr_t* inout_addr, size_t* out_size, uint32_t* out_flags) const;

  // Internal-consistency audit used by the property tests: blocks sorted,
  // non-overlapping, coalesced, within their region, sizes >= kMinSize, and
  // per-region free-byte counters exact.  Panics on violation.
  void AuditOrDie() const;

  // Call-count counters; BindTrace registers them with a trace environment
  // as lmm.alloc_calls / lmm.free_calls and wires alloc/free flight-recorder
  // events (the kernel support library does this for its LMM).
  struct Counters {
    trace::Counter alloc_calls;
    trace::Counter free_calls;
  };
  const Counters& counters() const { return counters_; }
  size_t allocs() const { return counters_.alloc_calls; }
  size_t frees() const { return counters_.free_calls; }

  void BindTrace(trace::TraceEnv* env);

  // Fault injection: when the bound environment arms "lmm.alloc", AllocGen
  // fails (returns nullptr) on fired calls, exactly as exhaustion would.
  void BindFault(fault::FaultEnv* env) { fault_ = fault::ResolveFaultEnv(env); }

 private:
  void AddFreeToRegion(LmmRegion* region, uintptr_t min, uintptr_t max);

  LmmRegion* regions_ = nullptr;
  Counters counters_;
  trace::CounterBlock trace_binding_;
  trace::FlightRecorder* recorder_ = nullptr;
  fault::FaultEnv* fault_ = fault::DefaultFaultEnv();
};

}  // namespace oskit

#endif  // OSKIT_SRC_LMM_LMM_H_
