#include "src/machine/clock.h"

#include "src/base/panic.h"

namespace oskit {

SimClock::EventId SimClock::ScheduleAt(SimTime when, std::function<void()> fn) {
  if (when < now_) {
    when = now_;
  }
  EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(fn)});
  live_.insert(id);
  return id;
}

bool SimClock::Cancel(EventId id) {
  // Only a still-pending event can be cancelled; an id that already ran (or
  // was cancelled) reports failure so watchdog users can tell the two apart.
  if (live_.erase(id) == 0) {
    return false;
  }
  // Lazy deletion: the queue entry is skipped when it surfaces.
  cancelled_.insert(id);
  return true;
}

SimTime SimClock::NextEventTime() {
  while (!queue_.empty()) {
    const Event& ev = queue_.top();
    if (cancelled_.count(ev.id) > 0) {
      cancelled_.erase(ev.id);
      queue_.pop();
      continue;
    }
    return ev.when;
  }
  return ~static_cast<SimTime>(0);
}

bool SimClock::RunOne() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (cancelled_.erase(ev.id) > 0) {
      continue;
    }
    live_.erase(ev.id);
    OSKIT_ASSERT(ev.when >= now_);
    now_ = ev.when;
    ++events_run_;
    ev.fn();
    return true;
  }
  return false;
}

void SimClock::RunUntil(SimTime deadline) {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    if (ev.when > deadline) {
      break;
    }
    queue_.pop();
    if (cancelled_.erase(ev.id) > 0) {
      continue;
    }
    live_.erase(ev.id);
    now_ = ev.when;
    ++events_run_;
    ev.fn();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace oskit
