// Discrete-event simulated clock.
//
// All hardware timing in the simulated platform — wire propagation, disk
// seeks, timer chips — is expressed as events on one shared clock, so a
// multi-machine world (two PCs on an Ethernet segment) advances through a
// single totally-ordered event sequence and every run is reproducible.

#ifndef OSKIT_SRC_MACHINE_CLOCK_H_
#define OSKIT_SRC_MACHINE_CLOCK_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace oskit {

using SimTime = uint64_t;  // nanoseconds since simulation start

inline constexpr SimTime kNsPerUs = 1000;
inline constexpr SimTime kNsPerMs = 1000 * 1000;
inline constexpr SimTime kNsPerSec = 1000 * 1000 * 1000;

class SimClock {
 public:
  using EventId = uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run at absolute time `when` (clamped to >= Now()).
  EventId ScheduleAt(SimTime when, std::function<void()> fn);

  // Schedules `fn` to run `delay` ns from now.
  EventId ScheduleAfter(SimTime delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Cancels a pending event.  Returns false if it already ran or was
  // cancelled (safe to call redundantly).  Watchdog patterns rely on that
  // distinction: "cancel failed" is how a waker learns the timeout already
  // fired, so cancelling a completed event must NOT report success.
  bool Cancel(EventId id);

  bool HasPending() const { return !live_.empty(); }

  // Time of the earliest pending event; ~0 when none are pending.
  SimTime NextEventTime();

  // Runs the earliest pending event, advancing Now() to its time.
  // Returns false when no events remain.
  bool RunOne();

  // Runs events until `deadline` (events at exactly `deadline` included);
  // Now() ends at `deadline` even if the queue drains earlier.
  void RunUntil(SimTime deadline);

  size_t events_run() const { return events_run_; }

 private:
  struct Event {
    SimTime when;
    EventId id;  // tie-break: schedule order
    std::function<void()> fn;
  };

  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.id > b.id;
    }
  };

  SimTime now_ = 0;
  EventId next_id_ = 1;
  size_t events_run_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> live_;       // scheduled, not yet run/cancelled
  std::unordered_set<EventId> cancelled_;  // lazy-deletion tombstones
};

}  // namespace oskit

#endif  // OSKIT_SRC_MACHINE_CLOCK_H_
