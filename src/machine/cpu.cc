#include "src/machine/cpu.h"

#include "src/trace/trace.h"

namespace oskit {

Cpu::Cpu() = default;

Cpu::Handler Cpu::SetVector(uint32_t vector, Handler handler) {
  OSKIT_ASSERT(vector < kVectorCount);
  Handler old = std::move(vectors_[vector]);
  vectors_[vector] = std::move(handler);
  return old;
}

void Cpu::SetFallback(uint32_t vector, Handler handler) {
  OSKIT_ASSERT(vector < kVectorCount);
  fallbacks_[vector] = std::move(handler);
}

void Cpu::EnableInterrupts() {
  interrupts_enabled_ = true;
  DrainPending();
}

void Cpu::RaiseTrap(uint32_t vector, uint32_t error_code) {
  Dispatch(vector, error_code, /*is_interrupt=*/false);
}

void Cpu::RaiseInterrupt(uint32_t vector) {
  if (!interrupts_enabled_ || in_interrupt_depth_ > 0) {
    pending_interrupts_.push_back(vector);
    return;
  }
  Dispatch(vector, 0, /*is_interrupt=*/true);
  DrainPending();
}

void Cpu::Dispatch(uint32_t vector, uint32_t error_code, bool is_interrupt) {
  OSKIT_ASSERT(vector < kVectorCount);
  TrapFrame frame;
  frame.trapno = vector;
  frame.error_code = error_code;
  frame.flags = interrupts_enabled_ ? (1u << 9) : 0;
  if (is_interrupt) {
    ++counters_.irq_dispatched;
    ++in_interrupt_depth_;
    if (recorder_ != nullptr) {
      recorder_->Record(trace::EventType::kIrqEnter, "cpu", vector);
    }
  } else {
    ++counters_.traps_dispatched;
    if (recorder_ != nullptr) {
      recorder_->Record(trace::EventType::kTrap, "cpu", vector, error_code);
    }
  }
  bool handled = false;
  if (vectors_[vector]) {
    handled = vectors_[vector](frame);
  }
  if (!handled && fallbacks_[vector]) {
    handled = fallbacks_[vector](frame);
  }
  if (is_interrupt) {
    --in_interrupt_depth_;
    if (recorder_ != nullptr) {
      recorder_->Record(trace::EventType::kIrqExit, "cpu", vector);
    }
  }
  if (!handled) {
    Panic("unhandled %s: vector %u error=%#x",
          is_interrupt ? "interrupt" : "trap", vector, error_code);
  }
}

void Cpu::DrainPending() {
  while (interrupts_enabled_ && in_interrupt_depth_ == 0 &&
         !pending_interrupts_.empty()) {
    uint32_t vector = pending_interrupts_.front();
    pending_interrupts_.pop_front();
    Dispatch(vector, 0, /*is_interrupt=*/true);
  }
}

}  // namespace oskit
