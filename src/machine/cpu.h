// Simulated CPU: trap/interrupt dispatch with a uniform frame layout.
//
// Traps (synchronous: divide error, breakpoint, page fault) and hardware
// interrupts (asynchronous, via the PIC) both dispatch through a 256-entry
// vector table and both hand the handler the SAME TrapFrame layout.  The
// paper calls out (§6.2.10) that the OSKit originally documented the frame
// only for synchronous traps and had to be fixed so language runtimes (ML/OS,
// Java/PC) could inspect interrupted state for preemption; we build the fixed
// behaviour in from the start.

#ifndef OSKIT_SRC_MACHINE_CPU_H_
#define OSKIT_SRC_MACHINE_CPU_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "src/base/panic.h"
#include "src/trace/counters.h"

namespace oskit::trace {
class FlightRecorder;
}  // namespace oskit::trace

namespace oskit {

// Uniform machine-state snapshot passed to every trap/interrupt handler.
// Handlers may modify it; the "hardware" applies changes on return (this is
// how ML/OS-style runtimes redirect the interrupted computation, §6.2.4).
struct TrapFrame {
  uint32_t trapno = 0;      // vector number
  uint32_t error_code = 0;  // hardware error code (synchronous traps only)
  uint64_t pc = 0;          // interrupted "instruction pointer"
  uint64_t sp = 0;          // interrupted stack pointer
  uint64_t flags = 0;       // interrupted flags (bit 9 = interrupts enabled)
  uint64_t gprs[8] = {};    // general registers of the interrupted context
};

// Well-known x86 trap vectors the kernel support library installs defaults
// for.
enum TrapVector : uint32_t {
  kTrapDivide = 0,
  kTrapDebug = 1,
  kTrapBreakpoint = 3,
  kTrapInvalidOpcode = 6,
  kTrapGeneralProtection = 13,
  kTrapPageFault = 14,
  kIrqBaseVector = 32,  // PIC IRQ 0..15 map to vectors 32..47
  kVectorCount = 256,
};

class Cpu {
 public:
  // A handler returns true when it handled the event; returning false chains
  // to the fallback handler for that vector (paper §6.2.4: custom handlers
  // "can still fall back to the default handler for traps that are of no
  // interest").
  using Handler = std::function<bool(TrapFrame&)>;

  Cpu();

  // Installs the primary handler for a vector, returning the old one.
  Handler SetVector(uint32_t vector, Handler handler);

  // Installs the fallback used when the primary declines (returns false) or
  // is absent.
  void SetFallback(uint32_t vector, Handler handler);

  bool interrupts_enabled() const { return interrupts_enabled_; }
  void DisableInterrupts() { interrupts_enabled_ = false; }

  // Re-enabling drains any interrupts that arrived while disabled.
  void EnableInterrupts();

  // Synchronous trap: dispatches immediately regardless of the interrupt
  // flag (as real exceptions do).
  void RaiseTrap(uint32_t vector, uint32_t error_code = 0);

  // Hardware interrupt request from the PIC.  Delivered immediately when
  // interrupts are enabled and no interrupt is in progress; otherwise
  // latched and delivered on EnableInterrupts()/handler return.
  void RaiseInterrupt(uint32_t vector);

  bool in_interrupt() const { return in_interrupt_depth_ > 0; }

  // Diagnostic counters (exposed implementation, §4.6).  The kernel support
  // library registers them with its trace environment as
  // machine.trap.dispatched / machine.irq.dispatched.
  struct Counters {
    trace::Counter traps_dispatched;
    trace::Counter irq_dispatched;
  };
  Counters& counters() { return counters_; }
  const Counters& counters() const { return counters_; }
  uint64_t traps_dispatched() const { return counters_.traps_dispatched; }
  uint64_t interrupts_dispatched() const { return counters_.irq_dispatched; }

  // When set, dispatches record irq-enter/irq-exit/trap flight-recorder
  // events (the kernel support library wires this up).
  void SetTraceRecorder(trace::FlightRecorder* recorder) { recorder_ = recorder; }

 private:
  void Dispatch(uint32_t vector, uint32_t error_code, bool is_interrupt);
  void DrainPending();

  Handler vectors_[kVectorCount];
  Handler fallbacks_[kVectorCount];
  bool interrupts_enabled_ = false;  // machines start with interrupts off
  int in_interrupt_depth_ = 0;
  std::deque<uint32_t> pending_interrupts_;
  Counters counters_;
  trace::FlightRecorder* recorder_ = nullptr;
};

}  // namespace oskit

#endif  // OSKIT_SRC_MACHINE_CPU_H_
