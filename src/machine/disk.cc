#include "src/machine/disk.h"

#include <cstring>

#include "src/base/panic.h"

namespace oskit {

void DiskHw::SubmitRead(uint64_t lba, uint32_t sectors, uint8_t* buf) {
  OSKIT_ASSERT_MSG(!busy_, "request submitted while disk busy");
  busy_ = true;
  if (lba + sectors > sector_count_) {
    clock_->ScheduleAfter(timing_.seek_ns, [this] { Complete(Error::kOutOfRange); });
    return;
  }
  // Latch the transfer; data moves at completion time (models DMA finishing).
  uint64_t offset = lba * kSectorSize;
  size_t bytes = static_cast<size_t>(sectors) * kSectorSize;
  clock_->ScheduleAfter(TransferDelay(sectors), [this, offset, bytes, buf] {
    std::memcpy(buf, store_.data() + offset, bytes);
    ++reads_completed_;
    Complete(Error::kOk);
  });
}

void DiskHw::SubmitWrite(uint64_t lba, uint32_t sectors, const uint8_t* buf) {
  OSKIT_ASSERT_MSG(!busy_, "request submitted while disk busy");
  busy_ = true;
  if (lba + sectors > sector_count_) {
    clock_->ScheduleAfter(timing_.seek_ns, [this] { Complete(Error::kOutOfRange); });
    return;
  }
  uint64_t offset = lba * kSectorSize;
  size_t bytes = static_cast<size_t>(sectors) * kSectorSize;
  clock_->ScheduleAfter(TransferDelay(sectors), [this, offset, bytes, buf] {
    std::memcpy(store_.data() + offset, buf, bytes);
    ++writes_completed_;
    Complete(Error::kOk);
  });
}

void DiskHw::Complete(Error status) {
  busy_ = false;
  done_ = true;
  status_ = status;
  pic_->RaiseIrq(irq_);
}

}  // namespace oskit
