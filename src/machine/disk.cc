#include "src/machine/disk.h"

#include <algorithm>
#include <cstring>

#include "src/base/panic.h"
#include "src/base/random.h"

namespace oskit {

SimTime DiskHw::EffectiveDelay(SimTime delay) {
  if (fault_->ShouldFail("disk.slow")) {
    uint64_t mult = fault_->SiteArg("disk.slow");
    delay *= mult != 0 ? mult : 10;
  }
  return delay;
}

void DiskHw::SubmitRead(uint64_t lba, uint32_t sectors, uint8_t* buf) {
  OSKIT_ASSERT_MSG(!busy_, "request submitted while disk busy");
  busy_ = true;
  if (powered_off_) {
    pending_ = clock_->ScheduleAfter(timing_.seek_ns,
                                     [this] { Complete(Error::kIo); });
    return;
  }
  if (fault_->ShouldFail("disk.stuck")) {
    return;  // controller hang: no completion until Reset()
  }
  if (lba + sectors > sector_count_) {
    pending_ = clock_->ScheduleAfter(timing_.seek_ns,
                                     [this] { Complete(Error::kOutOfRange); });
    return;
  }
  if (fault_->ShouldFail("disk.read.error")) {
    pending_ = clock_->ScheduleAfter(EffectiveDelay(TransferDelay(sectors)),
                                     [this] { Complete(Error::kIo); });
    return;
  }
  // Latch the transfer; data moves at completion time (models DMA finishing).
  uint64_t offset = lba * kSectorSize;
  size_t bytes = static_cast<size_t>(sectors) * kSectorSize;
  pending_ = clock_->ScheduleAfter(
      EffectiveDelay(TransferDelay(sectors)), [this, offset, bytes, buf] {
        if (dma_phys_ != nullptr && dma_phys_->Contains(buf, bytes)) {
          // The monitor's IOMMU view: the transfer must land in
          // component-writable pages or the device faults the request.
          Error err = dma_phys_->Dma(dma_phys_->AddrOf(buf),
                                     store_.data() + offset, bytes);
          if (err != Error::kOk) {
            ++dma_rejected_;
            Complete(Error::kIo);
            return;
          }
        } else {
          std::memcpy(buf, store_.data() + offset, bytes);
        }
        ++reads_completed_;
        Complete(Error::kOk);
      });
}

void DiskHw::SubmitWrite(uint64_t lba, uint32_t sectors, const uint8_t* buf) {
  OSKIT_ASSERT_MSG(!busy_, "request submitted while disk busy");
  busy_ = true;
  if (powered_off_) {
    pending_ = clock_->ScheduleAfter(timing_.seek_ns,
                                     [this] { Complete(Error::kIo); });
    return;
  }
  if (fault_->ShouldFail("disk.stuck")) {
    return;  // controller hang: no completion until Reset()
  }
  if (lba + sectors > sector_count_) {
    pending_ = clock_->ScheduleAfter(timing_.seek_ns,
                                     [this] { Complete(Error::kOutOfRange); });
    return;
  }
  if (fault_->ShouldFail("disk.write.error")) {
    pending_ = clock_->ScheduleAfter(EffectiveDelay(TransferDelay(sectors)),
                                     [this] { Complete(Error::kIo); });
    return;
  }
  uint64_t offset = lba * kSectorSize;
  size_t bytes = static_cast<size_t>(sectors) * kSectorSize;
  pending_ = clock_->ScheduleAfter(
      EffectiveDelay(TransferDelay(sectors)),
      [this, lba, sectors, offset, bytes, buf] {
        std::memcpy(store_.data() + offset, buf, bytes);
        if (wcache_enabled_) {
          CachedWrite w;
          w.lba = lba;
          w.sectors = sectors;
          w.data.assign(buf, buf + bytes);
          wcache_.push_back(std::move(w));
          ++wcache_writes_;
        }
        ++writes_completed_;
        write_log_.push_back({lba, sectors});
        if (cut_armed_ && writes_completed_ >= cut_at_writes_) {
          // Power dies as this write's completion was about to be posted:
          // the write is part of the at-risk set and the request errors out.
          cut_armed_ = false;
          PowerCut(cut_policy_, cut_seed_);
          Complete(Error::kIo);
          return;
        }
        Complete(Error::kOk);
      });
}

void DiskHw::SubmitFlush() {
  OSKIT_ASSERT_MSG(!busy_, "request submitted while disk busy");
  busy_ = true;
  if (powered_off_) {
    pending_ = clock_->ScheduleAfter(timing_.seek_ns,
                                     [this] { Complete(Error::kIo); });
    return;
  }
  if (fault_->ShouldFail("disk.stuck")) {
    return;  // controller hang: no completion until Reset()
  }
  size_t cached_bytes = 0;
  for (const CachedWrite& w : wcache_) {
    cached_bytes += w.data.size();
  }
  SimTime delay = timing_.seek_ns + timing_.per_byte_ns * cached_bytes;
  if (fault_->ShouldFail("disk.flush.error")) {
    // The command fails and the cache stays volatile; the driver must retry.
    pending_ = clock_->ScheduleAfter(EffectiveDelay(delay),
                                     [this] { Complete(Error::kIo); });
    return;
  }
  pending_ = clock_->ScheduleAfter(EffectiveDelay(delay), [this] {
    if (wcache_enabled_) {
      for (const CachedWrite& w : wcache_) {
        ApplyToDurable(w, w.sectors);
      }
      wcache_.clear();
    }
    ++flushes_completed_;
    ++wcache_flushes_;
    Complete(Error::kOk);
  });
}

void DiskHw::Reset() {
  if (pending_ != SimClock::kInvalidEvent) {
    clock_->Cancel(pending_);  // a late completion must not fire mid-retry
    pending_ = SimClock::kInvalidEvent;
  }
  busy_ = false;
  done_ = false;
  status_ = Error::kOk;
  ++resets_;
}

void DiskHw::EnableWriteCache(bool on) {
  if (on == wcache_enabled_) {
    return;
  }
  if (on) {
    durable_ = store_;  // everything written so far is durable
  } else {
    for (const CachedWrite& w : wcache_) {
      ApplyToDurable(w, w.sectors);
    }
    wcache_.clear();
    durable_.clear();
    durable_.shrink_to_fit();
  }
  wcache_enabled_ = on;
}

void DiskHw::ApplyToDurable(const CachedWrite& w, uint32_t sectors) {
  std::memcpy(durable_.data() + w.lba * kSectorSize, w.data.data(),
              static_cast<size_t>(sectors) * kSectorSize);
}

void DiskHw::PowerCut(CutPolicy policy, uint64_t seed) {
  // Any in-flight request dies with the power: cancel its completion.
  if (pending_ != SimClock::kInvalidEvent) {
    clock_->Cancel(pending_);
    pending_ = SimClock::kInvalidEvent;
  }
  if (wcache_enabled_) {
    Rng rng(seed);
    switch (policy) {
      case CutPolicy::kDropAll:
        wcache_dropped_ += wcache_.size();
        break;
      case CutPolicy::kDropSubset:
        for (const CachedWrite& w : wcache_) {
          if (rng.Percent(50)) {
            ApplyToDurable(w, w.sectors);
          } else {
            ++wcache_dropped_;
          }
        }
        break;
      case CutPolicy::kReorder: {
        std::vector<size_t> order(wcache_.size());
        for (size_t i = 0; i < order.size(); ++i) {
          order[i] = i;
        }
        for (size_t i = order.size(); i > 1; --i) {  // Fisher-Yates
          std::swap(order[i - 1], order[rng.Below(i)]);
        }
        for (size_t idx : order) {
          if (rng.Percent(75)) {
            ApplyToDurable(wcache_[idx], wcache_[idx].sectors);
          } else {
            ++wcache_dropped_;
          }
        }
        break;
      }
      case CutPolicy::kTear:
        // Everything but the last write survives; the last lands only a
        // sector prefix — the transfer the power failure interrupted.
        for (size_t i = 0; i + 1 < wcache_.size(); ++i) {
          ApplyToDurable(wcache_[i], wcache_[i].sectors);
        }
        if (!wcache_.empty()) {
          const CachedWrite& last = wcache_.back();
          auto kept = static_cast<uint32_t>(rng.Below(last.sectors));
          ApplyToDurable(last, kept);
          ++wcache_torn_;
        }
        break;
    }
    wcache_.clear();
    store_ = durable_;  // the visible image IS the post-crash image now
  }
  powered_off_ = true;
  busy_ = false;
  done_ = false;
  status_ = Error::kIo;
}

void DiskHw::ArmPowerCut(uint64_t after_writes, CutPolicy policy, uint64_t seed) {
  OSKIT_ASSERT_MSG(after_writes > 0, "ArmPowerCut needs a positive write count");
  cut_armed_ = true;
  cut_at_writes_ = writes_completed_ + after_writes;
  cut_policy_ = policy;
  cut_seed_ = seed;
}

void DiskHw::Complete(Error status) {
  pending_ = SimClock::kInvalidEvent;
  busy_ = false;
  done_ = true;
  status_ = status;
  pic_->RaiseIrq(irq_);
}

}  // namespace oskit
