#include "src/machine/disk.h"

#include <cstring>

#include "src/base/panic.h"

namespace oskit {

SimTime DiskHw::EffectiveDelay(SimTime delay) {
  if (fault_->ShouldFail("disk.slow")) {
    uint64_t mult = fault_->SiteArg("disk.slow");
    delay *= mult != 0 ? mult : 10;
  }
  return delay;
}

void DiskHw::SubmitRead(uint64_t lba, uint32_t sectors, uint8_t* buf) {
  OSKIT_ASSERT_MSG(!busy_, "request submitted while disk busy");
  busy_ = true;
  if (fault_->ShouldFail("disk.stuck")) {
    return;  // controller hang: no completion until Reset()
  }
  if (lba + sectors > sector_count_) {
    pending_ = clock_->ScheduleAfter(timing_.seek_ns,
                                     [this] { Complete(Error::kOutOfRange); });
    return;
  }
  if (fault_->ShouldFail("disk.read.error")) {
    pending_ = clock_->ScheduleAfter(EffectiveDelay(TransferDelay(sectors)),
                                     [this] { Complete(Error::kIo); });
    return;
  }
  // Latch the transfer; data moves at completion time (models DMA finishing).
  uint64_t offset = lba * kSectorSize;
  size_t bytes = static_cast<size_t>(sectors) * kSectorSize;
  pending_ = clock_->ScheduleAfter(
      EffectiveDelay(TransferDelay(sectors)), [this, offset, bytes, buf] {
        std::memcpy(buf, store_.data() + offset, bytes);
        ++reads_completed_;
        Complete(Error::kOk);
      });
}

void DiskHw::SubmitWrite(uint64_t lba, uint32_t sectors, const uint8_t* buf) {
  OSKIT_ASSERT_MSG(!busy_, "request submitted while disk busy");
  busy_ = true;
  if (fault_->ShouldFail("disk.stuck")) {
    return;  // controller hang: no completion until Reset()
  }
  if (lba + sectors > sector_count_) {
    pending_ = clock_->ScheduleAfter(timing_.seek_ns,
                                     [this] { Complete(Error::kOutOfRange); });
    return;
  }
  if (fault_->ShouldFail("disk.write.error")) {
    pending_ = clock_->ScheduleAfter(EffectiveDelay(TransferDelay(sectors)),
                                     [this] { Complete(Error::kIo); });
    return;
  }
  uint64_t offset = lba * kSectorSize;
  size_t bytes = static_cast<size_t>(sectors) * kSectorSize;
  pending_ = clock_->ScheduleAfter(
      EffectiveDelay(TransferDelay(sectors)), [this, offset, bytes, buf] {
        std::memcpy(store_.data() + offset, buf, bytes);
        ++writes_completed_;
        Complete(Error::kOk);
      });
}

void DiskHw::Reset() {
  if (pending_ != SimClock::kInvalidEvent) {
    clock_->Cancel(pending_);  // a late completion must not fire mid-retry
    pending_ = SimClock::kInvalidEvent;
  }
  busy_ = false;
  done_ = false;
  status_ = Error::kOk;
  ++resets_;
}

void DiskHw::Complete(Error status) {
  pending_ = SimClock::kInvalidEvent;
  busy_ = false;
  done_ = true;
  status_ = status;
  pic_->RaiseIrq(irq_);
}

}  // namespace oskit
