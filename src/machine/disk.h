// Simulated IDE disk hardware.
//
// One outstanding request at a time (like a 1997 IDE controller in PIO/DMA
// mode): the driver programs a read, write or cache-flush, the disk completes
// it after a simulated seek+transfer delay and raises IRQ 14.  The backing
// store is a host memory buffer; tests and the boot-image builder can access
// it directly to install filesystem images.
//
// Volatile write cache (the durability model): with EnableWriteCache(true)
// the disk behaves like real drives of the era — a completed write is
// immediately VISIBLE (reads see it, raw() sees it) but only becomes DURABLE
// once a Flush command completes.  PowerCut() reconstructs the post-crash
// image: the un-flushed write set is discarded under a seeded policy (drop
// all, drop a random subset, reorder, or tear one sector run mid-write), the
// visible store collapses to the surviving image, and the controller goes
// dead (every further request completes with kIo).  With the cache disabled
// (the default, and the pre-flush-capable 1997 baseline) every completed
// write is durable at once and Flush is a timed no-op.
//
// Fault injection (src/fault): with an environment bound, the disk honours
//   disk.read.error / disk.write.error — complete the request with kIo,
//   disk.flush.error — complete a Flush with kIo without draining the cache,
//   disk.stuck  — accept the request and never complete it (driver
//                 watchdogs must Reset() the controller),
//   disk.slow   — stretch the transfer delay by the site arg (a multiplier),
// modelling the media-error, hung-controller, and degraded-mode behaviours
// real IDE drivers defend against.

#ifndef OSKIT_SRC_MACHINE_DISK_H_
#define OSKIT_SRC_MACHINE_DISK_H_

#include <cstdint>
#include <vector>

#include "src/base/error.h"
#include "src/fault/fault.h"
#include "src/machine/clock.h"
#include "src/machine/physmem.h"
#include "src/machine/pic.h"
#include "src/trace/trace.h"

namespace oskit {

class DiskHw {
 public:
  static constexpr int kDefaultIrq = 14;
  static constexpr uint32_t kSectorSize = 512;

  struct Timing {
    SimTime seek_ns = 100 * kNsPerUs;     // fixed per-request overhead
    SimTime per_byte_ns = 20;             // ~50 MB/s transfer
  };

  // How PowerCut() disposes of the un-flushed write set.
  enum class CutPolicy {
    kDropAll,     // nothing since the last flush survives
    kDropSubset,  // each cached write survives with probability 1/2
    kReorder,     // a random subset survives, applied in a shuffled order
    kTear,        // earlier writes survive; the last write lands only a
                  // sector-prefix (a transfer interrupted mid-run)
  };

  // One completed write request, in completion order.
  struct WriteRecord {
    uint64_t lba = 0;
    uint32_t sectors = 0;
  };

  DiskHw(SimClock* clock, Pic* pic, uint64_t sector_count, int irq = kDefaultIrq)
      : clock_(clock), pic_(pic), irq_(irq),
        store_(sector_count * kSectorSize, 0), sector_count_(sector_count) {}

  uint64_t sector_count() const { return sector_count_; }
  int irq() const { return irq_; }
  void SetTiming(const Timing& timing) { timing_ = timing; }
  void SetFaultEnv(fault::FaultEnv* env) { fault_ = fault::ResolveFaultEnv(env); }

  // IOMMU hookup for the memory monitor (src/machine/memmon.h): when set,
  // read completions whose target buffer lies inside the physical arena
  // land through PhysMem::Dma, so a read programmed at kernel state is a
  // counted mon.violation.dma and the request completes with kIo instead
  // of scribbling.  Buffers outside the arena (host-side test buffers)
  // keep the direct path.
  void AttachDmaMonitor(PhysMem* phys) { dma_phys_ = phys; }
  uint64_t dma_rejected() const { return dma_rejected_; }

  // ---- Driver-facing request interface ----
  // Exactly one request may be outstanding.  Completion raises the IRQ;
  // the driver then reads RequestDone()/RequestStatus().
  void SubmitRead(uint64_t lba, uint32_t sectors, uint8_t* buf);
  void SubmitWrite(uint64_t lba, uint32_t sectors, const uint8_t* buf);
  // Drains the volatile write cache to durable media.  Timed like a write of
  // the cached bytes; a no-op (still timed) when the cache is disabled.
  void SubmitFlush();

  bool Busy() const { return busy_; }
  bool RequestDone() const { return done_; }
  Error RequestStatus() const { return status_; }
  void AckCompletion() { done_ = false; }

  // Controller reset: aborts any outstanding request (its completion will
  // never arrive — no partial transfer reaches the cache or the store) and
  // returns the interface to idle.  Writes already completed into the
  // volatile cache stay cached.  The recovery path a driver watchdog takes
  // after a hung request.
  void Reset();
  uint64_t resets() const { return resets_; }

  // ---- Durability model ----
  // Turning the cache on snapshots the current store as the durable image;
  // turning it off flushes (everything becomes durable).
  void EnableWriteCache(bool on);
  bool write_cache_enabled() const { return wcache_enabled_; }

  // Simulates power loss NOW: un-flushed writes are dropped/torn under the
  // seeded policy, store_ collapses to the surviving (post-crash) image, and
  // the controller goes dead — any outstanding request never completes and
  // every later submit completes with kIo.
  void PowerCut(CutPolicy policy, uint64_t seed);

  // Arms PowerCut to fire synchronously when the `after_writes`-th write
  // request (counted from now) completes; that write is part of the at-risk
  // set and its request completes with kIo (the controller's dying gasp).
  void ArmPowerCut(uint64_t after_writes, CutPolicy policy, uint64_t seed);
  bool powered_off() const { return powered_off_; }

  // Completed write requests in completion order, for write-ordering
  // regression tests (reset by ClearWriteLog).
  const std::vector<WriteRecord>& write_log() const { return write_log_; }
  void ClearWriteLog() { write_log_.clear(); }

  // ---- Host-side direct access (image installation, test assertions) ----
  // After a PowerCut this IS the post-crash image.
  uint8_t* raw() { return store_.data(); }
  size_t raw_size() const { return store_.size(); }

  uint64_t reads_completed() const { return reads_completed_; }
  uint64_t writes_completed() const { return writes_completed_; }
  uint64_t flushes_completed() const { return flushes_completed_; }
  size_t cached_writes() const { return wcache_.size(); }

  // Write-cache counters, bound into the registry by the client kernel as
  // disk.wcache.* (the Pit counter-accessor pattern).
  trace::Counter& wcache_writes_counter() { return wcache_writes_; }
  trace::Counter& wcache_flushes_counter() { return wcache_flushes_; }
  trace::Counter& wcache_dropped_counter() { return wcache_dropped_; }
  trace::Counter& wcache_torn_counter() { return wcache_torn_; }

 private:
  // A completed-but-unflushed write: the data as transferred, so the
  // post-crash image can be reconstructed per request.
  struct CachedWrite {
    uint64_t lba = 0;
    uint32_t sectors = 0;
    std::vector<uint8_t> data;
  };

  void Complete(Error status);
  // Applies the disk.slow fault to a nominal delay.
  SimTime EffectiveDelay(SimTime delay);
  SimTime TransferDelay(uint32_t sectors) const {
    return timing_.seek_ns + timing_.per_byte_ns * sectors * kSectorSize;
  }
  void ApplyToDurable(const CachedWrite& w, uint32_t sectors);

  SimClock* clock_;
  Pic* pic_;
  int irq_;
  Timing timing_;
  std::vector<uint8_t> store_;
  uint64_t sector_count_;
  bool busy_ = false;
  bool done_ = false;
  Error status_ = Error::kOk;
  uint64_t reads_completed_ = 0;
  uint64_t writes_completed_ = 0;
  uint64_t flushes_completed_ = 0;
  uint64_t resets_ = 0;
  SimClock::EventId pending_ = SimClock::kInvalidEvent;
  fault::FaultEnv* fault_ = fault::DefaultFaultEnv();
  PhysMem* dma_phys_ = nullptr;  // monitor-checked DMA when set
  uint64_t dma_rejected_ = 0;

  // Durability model state.
  bool wcache_enabled_ = false;
  bool powered_off_ = false;
  std::vector<uint8_t> durable_;     // last-flushed image (cache enabled only)
  std::vector<CachedWrite> wcache_;  // completed, not yet durable, in order
  std::vector<WriteRecord> write_log_;
  bool cut_armed_ = false;
  uint64_t cut_at_writes_ = 0;  // absolute writes_completed_ threshold
  CutPolicy cut_policy_ = CutPolicy::kDropAll;
  uint64_t cut_seed_ = 0;
  trace::Counter wcache_writes_;
  trace::Counter wcache_flushes_;
  trace::Counter wcache_dropped_;
  trace::Counter wcache_torn_;
};

}  // namespace oskit

#endif  // OSKIT_SRC_MACHINE_DISK_H_
