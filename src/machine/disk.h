// Simulated IDE disk hardware.
//
// One outstanding request at a time (like a 1997 IDE controller in PIO/DMA
// mode): the driver programs a read or write, the disk completes it after a
// simulated seek+transfer delay and raises IRQ 14.  The backing store is a
// host memory buffer; tests and the boot-image builder can access it
// directly to install filesystem images.
//
// Fault injection (src/fault): with an environment bound, the disk honours
//   disk.read.error / disk.write.error — complete the request with kIo,
//   disk.stuck  — accept the request and never complete it (driver
//                 watchdogs must Reset() the controller),
//   disk.slow   — stretch the transfer delay by the site arg (a multiplier),
// modelling the media-error, hung-controller, and degraded-mode behaviours
// real IDE drivers defend against.

#ifndef OSKIT_SRC_MACHINE_DISK_H_
#define OSKIT_SRC_MACHINE_DISK_H_

#include <cstdint>
#include <vector>

#include "src/base/error.h"
#include "src/fault/fault.h"
#include "src/machine/clock.h"
#include "src/machine/pic.h"

namespace oskit {

class DiskHw {
 public:
  static constexpr int kDefaultIrq = 14;
  static constexpr uint32_t kSectorSize = 512;

  struct Timing {
    SimTime seek_ns = 100 * kNsPerUs;     // fixed per-request overhead
    SimTime per_byte_ns = 20;             // ~50 MB/s transfer
  };

  DiskHw(SimClock* clock, Pic* pic, uint64_t sector_count, int irq = kDefaultIrq)
      : clock_(clock), pic_(pic), irq_(irq),
        store_(sector_count * kSectorSize, 0), sector_count_(sector_count) {}

  uint64_t sector_count() const { return sector_count_; }
  int irq() const { return irq_; }
  void SetTiming(const Timing& timing) { timing_ = timing; }
  void SetFaultEnv(fault::FaultEnv* env) { fault_ = fault::ResolveFaultEnv(env); }

  // ---- Driver-facing request interface ----
  // Exactly one request may be outstanding.  Completion raises the IRQ;
  // the driver then reads RequestDone()/RequestStatus().
  void SubmitRead(uint64_t lba, uint32_t sectors, uint8_t* buf);
  void SubmitWrite(uint64_t lba, uint32_t sectors, const uint8_t* buf);

  bool Busy() const { return busy_; }
  bool RequestDone() const { return done_; }
  Error RequestStatus() const { return status_; }
  void AckCompletion() { done_ = false; }

  // Controller reset: aborts any outstanding request (its completion will
  // never arrive) and returns the interface to idle.  The recovery path a
  // driver watchdog takes after a hung request.
  void Reset();
  uint64_t resets() const { return resets_; }

  // ---- Host-side direct access (image installation, test assertions) ----
  uint8_t* raw() { return store_.data(); }
  size_t raw_size() const { return store_.size(); }

  uint64_t reads_completed() const { return reads_completed_; }
  uint64_t writes_completed() const { return writes_completed_; }

 private:
  void Complete(Error status);
  // Applies the disk.slow fault to a nominal delay.
  SimTime EffectiveDelay(SimTime delay);
  SimTime TransferDelay(uint32_t sectors) const {
    return timing_.seek_ns + timing_.per_byte_ns * sectors * kSectorSize;
  }

  SimClock* clock_;
  Pic* pic_;
  int irq_;
  Timing timing_;
  std::vector<uint8_t> store_;
  uint64_t sector_count_;
  bool busy_ = false;
  bool done_ = false;
  Error status_ = Error::kOk;
  uint64_t reads_completed_ = 0;
  uint64_t writes_completed_ = 0;
  uint64_t resets_ = 0;
  SimClock::EventId pending_ = SimClock::kInvalidEvent;
  fault::FaultEnv* fault_ = fault::DefaultFaultEnv();
};

}  // namespace oskit

#endif  // OSKIT_SRC_MACHINE_DISK_H_
