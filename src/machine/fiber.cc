#include "src/machine/fiber.h"

#include "src/base/panic.h"

namespace oskit {
namespace {

// makecontext() can only pass ints to the trampoline portably, so the target
// fiber is handed over through this slot instead.
thread_local Fiber* g_trampoline_target = nullptr;
thread_local FiberScheduler* g_trampoline_scheduler = nullptr;

}  // namespace

Fiber::Fiber(std::string name, std::function<void()> entry, size_t stack_size)
    : name_(std::move(name)), entry_(std::move(entry)), stack_(stack_size) {}

Fiber* FiberScheduler::Spawn(std::string name, std::function<void()> entry,
                             size_t stack_size) {
  auto fiber = std::unique_ptr<Fiber>(
      new Fiber(std::move(name), std::move(entry), stack_size));
  Fiber* raw = fiber.get();
  raw->scheduler_ = this;
  getcontext(&raw->context_);
  raw->context_.uc_stack.ss_sp = raw->stack_.data();
  raw->context_.uc_stack.ss_size = raw->stack_.size();
  raw->context_.uc_link = &scheduler_context_;
  // The target is latched in SwitchTo just before the first switch.
  makecontext(&raw->context_, &FiberScheduler::Trampoline, 0);
  fibers_.push_back(std::move(fiber));
  ++live_count_;
  run_queue_.push_back(raw);
  return raw;
}

void FiberScheduler::Trampoline() {
  Fiber* self = g_trampoline_target;
  self->entry_();
  self->state_ = Fiber::State::kDone;
  --self->scheduler_->live_count_;
  // uc_link returns control to the scheduler context.
}

void FiberScheduler::SwitchTo(Fiber* fiber) {
  OSKIT_ASSERT_MSG(current_ == nullptr, "nested SwitchTo from fiber context");
  fiber->state_ = Fiber::State::kRunning;
  current_ = fiber;
  g_trampoline_target = fiber;
  g_trampoline_scheduler = this;
  swapcontext(&scheduler_context_, &fiber->context_);
  current_ = nullptr;
}

void FiberScheduler::RunReady() {
  OSKIT_ASSERT_MSG(current_ == nullptr, "RunReady called from inside a fiber");
  while (!run_queue_.empty()) {
    Fiber* next = run_queue_.front();
    run_queue_.pop_front();
    if (next->state_ != Fiber::State::kRunnable) {
      continue;
    }
    SwitchTo(next);
    if (next->state_ == Fiber::State::kDone) {
      // Reap: fibers are few and short-lived enough for a linear sweep.
      for (auto it = fibers_.begin(); it != fibers_.end(); ++it) {
        if (it->get() == next) {
          fibers_.erase(it);
          break;
        }
      }
    }
  }
}

void FiberScheduler::BlockCurrent() {
  Fiber* self = current_;
  OSKIT_ASSERT_MSG(self != nullptr, "BlockCurrent outside any fiber");
  self->state_ = Fiber::State::kBlocked;
  swapcontext(&self->context_, &scheduler_context_);
  // Resumed: Unblock() marked us runnable and RunReady() switched back.
  OSKIT_ASSERT(self->state_ == Fiber::State::kRunning);
}

void FiberScheduler::Unblock(Fiber* fiber) {
  OSKIT_ASSERT(fiber != nullptr);
  if (fiber->state_ == Fiber::State::kBlocked) {
    fiber->state_ = Fiber::State::kRunnable;
    run_queue_.push_back(fiber);
  }
}

void FiberScheduler::YieldCurrent() {
  Fiber* self = current_;
  OSKIT_ASSERT_MSG(self != nullptr, "YieldCurrent outside any fiber");
  self->state_ = Fiber::State::kRunnable;
  run_queue_.push_back(self);
  swapcontext(&self->context_, &scheduler_context_);
  OSKIT_ASSERT(self->state_ == Fiber::State::kRunning);
}

}  // namespace oskit
