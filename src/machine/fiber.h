// Cooperative fibers: the simulation's "process-level threads of control".
//
// The OSKit's execution model (§4.7.4) has many process-level threads with
// separate stacks, only one running at a time, switching only at well-defined
// blocking points.  Fibers give the simulated world exactly that model:
// kernel mains, ttcp sender/receiver loops and VM green threads each run on a
// fiber; blocking primitives (sleep records, socket waits) park the current
// fiber and hand control to the scheduler, which runs other runnable fibers
// or advances the simulated clock (delivering "hardware" events) when all
// fibers are blocked.

#ifndef OSKIT_SRC_MACHINE_FIBER_H_
#define OSKIT_SRC_MACHINE_FIBER_H_

#include <ucontext.h>

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace oskit {

class FiberScheduler;

class Fiber {
 public:
  enum class State {
    kRunnable,  // queued for execution
    kRunning,   // currently on the CPU
    kBlocked,   // parked on a blocking primitive
    kDone,      // entry function returned
  };

  const std::string& name() const { return name_; }
  State state() const { return state_; }

 private:
  friend class FiberScheduler;

  Fiber(std::string name, std::function<void()> entry, size_t stack_size);

  std::string name_;
  std::function<void()> entry_;
  std::vector<uint8_t> stack_;
  ucontext_t context_;
  State state_ = State::kRunnable;
  FiberScheduler* scheduler_ = nullptr;
};

class FiberScheduler {
 public:
  FiberScheduler() = default;
  FiberScheduler(const FiberScheduler&) = delete;
  FiberScheduler& operator=(const FiberScheduler&) = delete;

  static constexpr size_t kDefaultStackSize = 256 * 1024;

  // Creates a fiber and queues it runnable.  The returned pointer stays valid
  // until the fiber completes and the scheduler reaps it.
  Fiber* Spawn(std::string name, std::function<void()> entry,
               size_t stack_size = kDefaultStackSize);

  // Runs runnable fibers (FIFO) until the run queue is empty.  Must be called
  // from the scheduler context (not from inside a fiber).
  void RunReady();

  // Parks the calling fiber.  Control returns when some other context calls
  // Unblock() on it and the scheduler re-runs it.
  void BlockCurrent();

  // Makes a blocked fiber runnable.  Callable from events/interrupt handlers
  // (i.e., from scheduler context) or from other fibers.
  void Unblock(Fiber* fiber);

  // Cooperative yield: requeues the caller and runs other runnable fibers.
  void YieldCurrent();

  Fiber* current() const { return current_; }
  bool HasRunnable() const { return !run_queue_.empty(); }
  size_t live_count() const { return live_count_; }

 private:
  static void Trampoline();

  void SwitchTo(Fiber* fiber);

  ucontext_t scheduler_context_ = {};
  Fiber* current_ = nullptr;
  std::deque<Fiber*> run_queue_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  size_t live_count_ = 0;
};

}  // namespace oskit

#endif  // OSKIT_SRC_MACHINE_FIBER_H_
