// A simulated PC: the composition of CPU, PIC, PIT, UARTs, physical memory,
// and attachable NIC/disk devices, sharing one world's clock and scheduler.
//
// This plays the role of the Pentium Pro test machines in the paper's §5
// evaluation: benchmarks build a world with two Machines on one
// EthernetWire, boot an OSKit-style kernel on each, and run workloads on
// fibers that block through OSKit sleep records.

#ifndef OSKIT_SRC_MACHINE_MACHINE_H_
#define OSKIT_SRC_MACHINE_MACHINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/machine/cpu.h"
#include "src/machine/disk.h"
#include "src/machine/nic.h"
#include "src/machine/physmem.h"
#include "src/machine/pic.h"
#include "src/machine/pit.h"
#include "src/machine/simulation.h"
#include "src/machine/uart.h"

namespace oskit {

class Machine {
 public:
  struct Config {
    std::string name = "pc0";
    size_t mem_bytes = 32 * 1024 * 1024;
  };

  Machine(Simulation* sim, const Config& config)
      : sim_(sim),
        name_(config.name),
        phys_(config.mem_bytes),
        cpu_(),
        pic_(&cpu_),
        pit_(&sim->clock(), &pic_),
        console_uart_(&sim->clock(), &pic_, /*irq=*/4),
        debug_uart_(&sim->clock(), &pic_, /*irq=*/3) {}

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const std::string& name() const { return name_; }
  Simulation& sim() { return *sim_; }
  SimClock& clock() { return sim_->clock(); }
  PhysMem& phys() { return phys_; }
  Cpu& cpu() { return cpu_; }
  Pic& pic() { return pic_; }
  Pit& pit() { return pit_; }
  Uart& console_uart() { return console_uart_; }
  Uart& debug_uart() { return debug_uart_; }

  NicHw* AddNic(EtherLink* link, const EtherAddr& mac,
                int irq = NicHw::kDefaultIrq) {
    nics_.push_back(
        std::make_unique<NicHw>(link, &pic_, &sim_->clock(), mac, irq));
    return nics_.back().get();
  }

  DiskHw* AddDisk(uint64_t sector_count, int irq = DiskHw::kDefaultIrq) {
    disks_.push_back(std::make_unique<DiskHw>(&sim_->clock(), &pic_, sector_count, irq));
    return disks_.back().get();
  }

  const std::vector<std::unique_ptr<NicHw>>& nics() const { return nics_; }
  const std::vector<std::unique_ptr<DiskHw>>& disks() const { return disks_; }

 private:
  Simulation* sim_;
  std::string name_;
  PhysMem phys_;
  Cpu cpu_;
  Pic pic_;
  Pit pit_;
  Uart console_uart_;
  Uart debug_uart_;
  std::vector<std::unique_ptr<NicHw>> nics_;
  std::vector<std::unique_ptr<DiskHw>> disks_;
};

}  // namespace oskit

#endif  // OSKIT_SRC_MACHINE_MACHINE_H_
