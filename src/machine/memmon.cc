#include "src/machine/memmon.h"

#include <cstring>

#include "src/base/panic.h"

namespace oskit {

namespace {

constexpr size_t kPage = PhysMem::kPageAlign;

size_t PagesCovering(PhysAddr addr, size_t len) {
  PhysAddr first = addr / kPage;
  PhysAddr last = (addr + len - 1) / kPage;
  return static_cast<size_t>(last - first + 1);
}

}  // namespace

const char* PageProtName(PageProt prot) {
  switch (prot) {
    case PageProt::kComponentWritable:
      return "component";
    case PageProt::kKernelWritable:
      return "kernel";
    case PageProt::kMonitorPrivate:
      return "monitor";
  }
  return "?";
}

const char* MemAccessName(MemAccess access) {
  switch (access) {
    case MemAccess::kComponentStore:
      return "store";
    case MemAccess::kComponentLoad:
      return "load";
    case MemAccess::kKernelStore:
      return "kstore";
    case MemAccess::kDmaStore:
      return "dma";
  }
  return "?";
}

MemMonitor::MemMonitor(PhysMem* phys, Cpu* cpu, trace::TraceEnv* trace)
    : phys_(phys), cpu_(cpu), trace_(trace::ResolveTraceEnv(trace)) {
  pages_ = (phys_->size() + kPage - 1) / kPage;
  binding_.Bind(&trace_->registry,
                {{"mon.violation.store", &counters_.store_violations},
                 {"mon.violation.load", &counters_.load_violations},
                 {"mon.violation.dma", &counters_.dma_violations},
                 {"mon.violation.pte", &counters_.pte_violations},
                 {"mon.violation.raised", &counters_.raised},
                 {"mon.call.protect", &counters_.calls_protect},
                 {"mon.call.store", &counters_.calls_store},
                 {"mon.domain.killed", &counters_.domains_killed}});
}

MemMonitor::~MemMonitor() {
  if (phys_->monitor() == this) {
    phys_->AttachMonitor(nullptr);
  }
}

size_t MemMonitor::map_bytes_needed() const { return pages_; }

Error MemMonitor::Enable(void* storage, size_t len) {
  if (enabled_) {
    return Error::kExist;
  }
  if (storage == nullptr || len < map_bytes_needed() ||
      !phys_->Contains(storage, len)) {
    return Error::kInval;
  }
  PhysAddr map_addr = phys_->AddrOf(storage);
  if (map_addr % kPage != 0) {
    return Error::kInval;
  }
  map_ = static_cast<uint8_t*>(storage);
  // Components must be granted their pages explicitly (the secure layer's
  // SecureLmm does); everything else is kernel state.
  std::memset(map_, static_cast<int>(PageProt::kKernelWritable), pages_);
  enabled_ = true;
  // The map protects itself: the pages holding it are monitor-private, so
  // a kernel-level store cannot widen a component's view.
  in_monitor_ = true;
  SetRange(map_addr, len, PageProt::kMonitorPrivate);
  in_monitor_ = false;
  trace_->recorder.Record(trace::EventType::kMark, "mon.enable", pages_, 0);
  return Error::kOk;
}

Error MemMonitor::MonitorCall(PhysAddr addr, size_t len, PageProt prot) {
  if (!enabled_) {
    return Error::kInval;
  }
  OSKIT_ASSERT_MSG(!in_monitor_, "MonitorCall is not reentrant");
  // Page-granular and wrap-checked: addr + len overflowing must be
  // rejected, not silently wrap (the MapRange bug class).
  if (len == 0 || (addr | len) % kPage != 0 || addr >= phys_->size() ||
      len > phys_->size() - addr) {
    return Error::kInval;
  }
  ++counters_.calls_protect;
  in_monitor_ = true;
  SetRange(addr, len, prot);
  in_monitor_ = false;
  return Error::kOk;
}

Error MemMonitor::MonitorStore(PhysAddr addr, const void* src, size_t len) {
  if (len == 0) {
    return Error::kOk;
  }
  if (addr >= phys_->size() || len > phys_->size() - addr) {
    return Error::kFault;
  }
  if (enabled_) {
    ++counters_.calls_store;
  }
  in_monitor_ = true;
  std::memcpy(phys_->PtrAt(addr), src, len);
  in_monitor_ = false;
  return Error::kOk;
}

PageProt MemMonitor::ProtOf(PhysAddr addr) const {
  OSKIT_ASSERT_MSG(addr < phys_->size(), "ProtOf out of range");
  if (!enabled_) {
    return PageProt::kKernelWritable;
  }
  return static_cast<PageProt>(map_[addr / kPage]);
}

size_t MemMonitor::PageCount(PageProt prot) const {
  if (!enabled_) {
    return prot == PageProt::kKernelWritable ? pages_ : 0;
  }
  size_t n = 0;
  for (size_t i = 0; i < pages_; ++i) {
    if (map_[i] == static_cast<uint8_t>(prot)) {
      ++n;
    }
  }
  return n;
}

Error MemMonitor::KernelStore(PhysAddr addr, const void* src, size_t len) {
  Error err = Check(kKernelDomain, addr, len, MemAccess::kKernelStore);
  if (err != Error::kOk) {
    return err;
  }
  if (len != 0) {
    std::memcpy(phys_->PtrAt(addr), src, len);
  }
  return Error::kOk;
}

Error MemMonitor::ComponentStore(uint32_t domain, PhysAddr addr,
                                 const void* src, size_t len) {
  Error err = Check(domain, addr, len, MemAccess::kComponentStore);
  if (err != Error::kOk) {
    return err;
  }
  if (len != 0) {
    std::memcpy(phys_->PtrAt(addr), src, len);
  }
  return Error::kOk;
}

Error MemMonitor::ComponentLoad(uint32_t domain, PhysAddr addr, void* dst,
                                size_t len) {
  Error err = Check(domain, addr, len, MemAccess::kComponentLoad);
  if (err != Error::kOk) {
    return err;
  }
  if (len != 0) {
    std::memcpy(dst, phys_->PtrAt(addr), len);
  }
  return Error::kOk;
}

Error MemMonitor::DmaStore(PhysAddr addr, const void* src, size_t len) {
  Error err = Check(kKernelDomain, addr, len, MemAccess::kDmaStore);
  if (err != Error::kOk) {
    return err;
  }
  if (len != 0) {
    std::memcpy(phys_->PtrAt(addr), src, len);
  }
  return Error::kOk;
}

void MemMonitor::KillDomain(uint32_t domain) {
  if (domain == kKernelDomain || domain_killed(domain)) {
    return;
  }
  killed_.push_back(domain);
  ++counters_.domains_killed;
  trace_->recorder.Record(trace::EventType::kMark, "mon.domain.kill", domain,
                          0);
  if (kill_hook_) {
    kill_hook_(domain);
  }
}

bool MemMonitor::domain_killed(uint32_t domain) const {
  for (uint32_t id : killed_) {
    if (id == domain) {
      return true;
    }
  }
  return false;
}

void MemMonitor::ForEachViolation(
    const std::function<void(const Violation&)>& fn) const {
  uint64_t have = violation_seq_ < kViolationRing ? violation_seq_
                                                  : uint64_t{kViolationRing};
  for (uint64_t i = 0; i < have; ++i) {
    fn(ring_[(violation_seq_ - have + i) % kViolationRing]);
  }
}

const MemMonitor::Violation* MemMonitor::last_violation() const {
  if (violation_seq_ == 0) {
    return nullptr;
  }
  return &ring_[(violation_seq_ - 1) % kViolationRing];
}

PageProt MemMonitor::StrictestOver(PhysAddr addr, size_t len) const {
  uint8_t strictest = 0;
  size_t first = addr / kPage;
  size_t count = PagesCovering(addr, len);
  for (size_t i = 0; i < count; ++i) {
    if (map_[first + i] > strictest) {
      strictest = map_[first + i];
    }
  }
  return static_cast<PageProt>(strictest);
}

Error MemMonitor::Check(uint32_t domain, PhysAddr addr, size_t len,
                        MemAccess access) {
  if (len == 0) {
    return Error::kOk;
  }
  // Wrap-safe bounds: `addr + len` may not be compared against size()
  // directly (the MapRange bug class).
  if (addr >= phys_->size() || len > phys_->size() - addr) {
    return Error::kFault;
  }
  if (!enabled_ || !enforcing_ || in_monitor_) {
    return Error::kOk;
  }
  PageProt prot = StrictestOver(addr, len);
  bool killed = domain != kKernelDomain && domain_killed(domain);
  bool allowed = false;
  switch (access) {
    case MemAccess::kKernelStore:
      allowed = prot != PageProt::kMonitorPrivate;
      break;
    case MemAccess::kComponentStore:
      allowed = !killed && prot == PageProt::kComponentWritable;
      break;
    case MemAccess::kComponentLoad:
      allowed = !killed && prot != PageProt::kMonitorPrivate;
      break;
    case MemAccess::kDmaStore:
      // DMA writes are component-level: a misprogrammed (or hostile)
      // device must not reach kernel state — the IOMMU view.
      allowed = prot == PageProt::kComponentWritable;
      break;
  }
  if (allowed) {
    return Error::kOk;
  }
  RaiseViolation(domain, addr, access, prot);
  return Error::kAccess;
}

void MemMonitor::RaiseViolation(uint32_t domain, PhysAddr addr,
                                MemAccess access, PageProt prot) {
  Violation& v = ring_[violation_seq_ % kViolationRing];
  v.seq = ++violation_seq_;
  v.domain = domain;
  v.addr = addr;
  v.access = access;
  v.prot = prot;

  // Classification: anything aimed at monitor-private state is a PTE/map
  // flip attempt regardless of the vehicle; the rest count by vehicle.
  const char* tag;
  if (prot == PageProt::kMonitorPrivate) {
    ++counters_.pte_violations;
    tag = "mon.violation.pte";
  } else if (access == MemAccess::kDmaStore) {
    ++counters_.dma_violations;
    tag = "mon.violation.dma";
  } else if (access == MemAccess::kComponentLoad) {
    ++counters_.load_violations;
    tag = "mon.violation.load";
  } else {
    ++counters_.store_violations;
    tag = "mon.violation.store";
  }
  ++counters_.raised;
  trace_->recorder.Record(trace::EventType::kMark, tag, addr, domain);

  // Recoverable, attributable fault: a PTE-flip attempt is a page fault on
  // a write-protected page table; the rest are protection faults.  The
  // magic-tagged error code lets the kernel's recovery handler tell these
  // from organic traps and chain the latter onward.
  uint8_t vector = prot == PageProt::kMonitorPrivate ? kTrapPageFault
                                                     : kTrapGeneralProtection;
  uint32_t error_code = kFaultMagic | ((domain & 0xffu) << 8) |
                        static_cast<uint32_t>(access);
  cpu_->RaiseTrap(vector, error_code);
}

void MemMonitor::SetRange(PhysAddr addr, size_t len, PageProt prot) {
  OSKIT_ASSERT_MSG(in_monitor_, "protection flips only inside the gate");
  size_t first = addr / kPage;
  size_t count = PagesCovering(addr, len);
  OSKIT_ASSERT_MSG(first + count <= pages_, "SetRange out of range");
  std::memset(map_ + first, static_cast<int>(prot), count);
}

// ---- PhysMem checked entry points (declared in physmem.h) ----

Error PhysMem::Store(PhysAddr addr, const void* src, size_t len) {
  if (monitor_ != nullptr) {
    return monitor_->KernelStore(addr, src, len);
  }
  if (len == 0) {
    return Error::kOk;
  }
  if (addr >= size_ || len > size_ - addr) {
    return Error::kFault;
  }
  std::memcpy(base_ + addr, src, len);
  return Error::kOk;
}

Error PhysMem::Dma(PhysAddr addr, const void* src, size_t len) {
  if (monitor_ != nullptr) {
    return monitor_->DmaStore(addr, src, len);
  }
  if (len == 0) {
    return Error::kOk;
  }
  if (addr >= size_ || len > size_ - addr) {
    return Error::kFault;
  }
  std::memcpy(base_ + addr, src, len);
  return Error::kOk;
}

}  // namespace oskit
