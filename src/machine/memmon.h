// Nested-kernel-style memory monitor: MMU-enforced kernel-state integrity.
//
// The §3.8 security wrappers are a convention — a buggy or hostile wrapped
// component can still scribble directly on kernel state and the first
// symptom is silent corruption discovered much later.  This component moves
// the boundary below the components, into the memory system, the way a
// nested kernel write-protects the page tables out from under the outer
// kernel: PhysMem grows a per-page protection map with a three-level
// lattice,
//
//   component-writable < kernel-writable < monitor-private
//
// and checked Store/DMA entry points.  Deprivileged components store
// through a MemDomain view (component level); the kernel stores through
// PhysMem::Store (kernel level); devices DMA through PhysMem::Dma (treated
// as component level — an IOMMU would); and the monitor itself is the only
// thing that may touch monitor-private pages.  The protection map and the
// page-directory/page-table pages live in monitor-private pages, so even a
// kernel-level store cannot flip a PTE or rewrite the map: those go through
// the MonitorCall/MonitorStore privileged-transition gate, which is the
// single entry point that raises privilege.
//
// A refused access is a *counted, recoverable* fault, never a panic: the
// monitor records the violation (last-N ring for kmon `mon`), bumps
// mon.violation.{store,load,dma,pte}, and raises kTrapGeneralProtection
// (kTrapPageFault when the target is monitor-private — a PTE-flip attempt)
// with a magic-tagged error code.  The kernel support library installs a
// recovery handler that counts mon.violation.caught and kills the offending
// domain — the store never lands, the victims never notice.
//
// Honesty note (same spirit as the simulated MMU): host code that holds a
// raw pointer into the arena can still write through it — the checked entry
// points stand in for the store instructions a real nested kernel would
// deprivilege with CR0.WP + PTE bits.  Enforcement therefore covers exactly
// the surfaces routed through them: MemDomain views, PhysMem::Store/Dma,
// the PageDirectory mutators, and the fault-injection scribble sites.
// SetEnforcement(false) is the campaign's ablation: the map is maintained
// but every store lands silently — the world PR 9's bench must prove
// corrupts.

#ifndef OSKIT_SRC_MACHINE_MEMMON_H_
#define OSKIT_SRC_MACHINE_MEMMON_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/base/error.h"
#include "src/machine/cpu.h"
#include "src/machine/physmem.h"
#include "src/trace/trace.h"

namespace oskit {

// The protection lattice, least to most privileged.
enum class PageProt : uint8_t {
  kComponentWritable = 0,  // any live domain may store/load
  kKernelWritable = 1,     // kernel-level stores only
  kMonitorPrivate = 2,     // monitor gate only (page tables, the map itself)
};

const char* PageProtName(PageProt prot);

// Who is attempting the access, for classification and the violation ring.
enum class MemAccess : uint8_t {
  kComponentStore = 0,
  kComponentLoad = 1,
  kKernelStore = 2,
  kDmaStore = 3,
};

const char* MemAccessName(MemAccess access);

class MemMonitor {
 public:
  // Domain id the kernel's own stores carry; never killable.
  static constexpr uint32_t kKernelDomain = 0;

  // Monitor faults tag the trap error code with this magic in the upper
  // half so the recovery handler can tell them from organic GP faults; the
  // low byte carries the MemAccess.
  static constexpr uint32_t kFaultMagic = 0x4d4f0000;  // "MO"

  static constexpr size_t kViolationRing = 32;

  struct Violation {
    uint64_t seq = 0;      // 1-based, total order
    uint32_t domain = 0;   // offending domain (principal id; 0 = kernel)
    PhysAddr addr = 0;     // first offending byte
    MemAccess access = MemAccess::kComponentStore;
    PageProt prot = PageProt::kComponentWritable;  // the page that refused
  };

  // Counters register as mon.* in `trace`'s registry (null = the
  // process-global default environment).
  MemMonitor(PhysMem* phys, Cpu* cpu, trace::TraceEnv* trace);
  ~MemMonitor();
  MemMonitor(const MemMonitor&) = delete;
  MemMonitor& operator=(const MemMonitor&) = delete;

  // One protection byte per physical page.
  size_t map_bytes_needed() const;

  // Installs the protection map into `storage` — page-aligned, inside the
  // arena, at least map_bytes_needed() long — and arms enforcement.  Every
  // page starts kernel-writable (components must be granted their pages
  // explicitly); the pages holding the map itself become monitor-private,
  // so the map is protected by the mechanism it implements.  kInval on a
  // misaligned/short/foreign buffer, kExist when already enabled.
  Error Enable(void* storage, size_t len);
  bool enabled() const { return enabled_; }

  // The scribble-campaign ablation: keep all bookkeeping but let every
  // store land.  Violations are neither counted nor raised — silent
  // corruption, the failure mode the monitor exists to kill.
  void SetEnforcement(bool on) { enforcing_ = on; }
  bool enforcing() const { return enforcing_; }

  // ---- The privileged-transition gate ----
  // The ONLY way to change protections.  [addr, addr+len) must be
  // page-aligned, non-empty, in range (no unsigned wrap — kInval, the
  // MapRange bug class).  Counted as mon.call.protect.
  Error MonitorCall(PhysAddr addr, size_t len, PageProt prot);

  // Privileged store: how the kernel's paging code writes PTEs into
  // monitor-private page-table pages.  Counted as mon.call.store.
  Error MonitorStore(PhysAddr addr, const void* src, size_t len);

  PageProt ProtOf(PhysAddr addr) const;
  // Pages currently at `prot` (kmon `mon` summary).
  size_t PageCount(PageProt prot) const;

  // ---- Checked entry points ----
  // kFault on out-of-range/wrapping spans (nothing written, not a
  // violation); kAccess on a protection violation (nothing written, the
  // violation is recorded, counted, and raised through the trap vectors).
  Error KernelStore(PhysAddr addr, const void* src, size_t len);
  Error ComponentStore(uint32_t domain, PhysAddr addr, const void* src,
                       size_t len);
  Error ComponentLoad(uint32_t domain, PhysAddr addr, void* dst, size_t len);
  Error DmaStore(PhysAddr addr, const void* src, size_t len);

  // ---- Domain containment ----
  // A killed domain loses the memory system entirely: every further access
  // through its view is a counted violation.  Killing the kernel domain is
  // ignored; killing twice is idempotent.  The hook (installed by the
  // secure layer) marks the matching Principal so the COM wrapper surface
  // denies too.
  void KillDomain(uint32_t domain);
  bool domain_killed(uint32_t domain) const;
  using KillHook = std::function<void(uint32_t domain)>;
  void SetKillHook(KillHook hook) { kill_hook_ = std::move(hook); }

  // ---- Introspection (kmon `mon`, the campaign) ----
  // Last kViolationRing violations, oldest first.
  void ForEachViolation(const std::function<void(const Violation&)>& fn) const;
  // The most recent violation (what the trap handler attributes), or null.
  const Violation* last_violation() const;

  struct Counters {
    trace::Counter store_violations;  // mon.violation.store
    trace::Counter load_violations;   // mon.violation.load
    trace::Counter dma_violations;    // mon.violation.dma
    trace::Counter pte_violations;    // mon.violation.pte (target was
                                      // monitor-private: PTE/map flips)
    trace::Counter raised;            // mon.violation.raised (sum, traps)
    trace::Counter calls_protect;     // mon.call.protect
    trace::Counter calls_store;       // mon.call.store
    trace::Counter domains_killed;    // mon.domain.killed
  };
  const Counters& counters() const { return counters_; }

 private:
  // Strictest protection over the span; assumes the range was validated.
  PageProt StrictestOver(PhysAddr addr, size_t len) const;
  // kFault for bad spans; kOk when the access may proceed; kAccess after
  // recording + raising a violation.
  Error Check(uint32_t domain, PhysAddr addr, size_t len, MemAccess access);
  void RaiseViolation(uint32_t domain, PhysAddr addr, MemAccess access,
                      PageProt prot);
  void SetRange(PhysAddr addr, size_t len, PageProt prot);

  PhysMem* phys_;
  Cpu* cpu_;
  trace::TraceEnv* trace_;
  uint8_t* map_ = nullptr;  // one PageProt byte per page, inside the arena
  size_t pages_ = 0;
  bool enabled_ = false;
  bool enforcing_ = true;
  bool in_monitor_ = false;  // inside the gate (SetRange asserts this)
  std::vector<uint32_t> killed_;  // small, sorted-insertion not needed
  KillHook kill_hook_;
  Violation ring_[kViolationRing];
  uint64_t violation_seq_ = 0;
  Counters counters_;
  trace::CounterBlock binding_;
};

// A component's deprivileged view of physical memory: every access goes
// through the monitor at component level, attributed to `domain` (the
// owning principal's id).  Without an enabled monitor the view is the open
// 1997 world — stores land directly (this is what the ablation measures).
class MemDomain {
 public:
  MemDomain(MemMonitor* mon, uint32_t domain) : mon_(mon), domain_(domain) {}

  Error Store(PhysAddr addr, const void* src, size_t len) {
    return mon_->ComponentStore(domain_, addr, src, len);
  }
  Error Load(PhysAddr addr, void* dst, size_t len) {
    return mon_->ComponentLoad(domain_, addr, dst, len);
  }

  uint32_t id() const { return domain_; }
  bool killed() const { return mon_->domain_killed(domain_); }
  MemMonitor* monitor() const { return mon_; }

 private:
  MemMonitor* mon_;
  uint32_t domain_;
};

}  // namespace oskit

#endif  // OSKIT_SRC_MACHINE_MEMMON_H_
