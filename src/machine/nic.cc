#include "src/machine/nic.h"

#include <cstring>

#include "src/base/panic.h"

namespace oskit {

NicHw::~NicHw() { CancelHoldoff(); }

void NicHw::SetRxMitigation(const RxMitigation& mit) {
  OSKIT_ASSERT_MSG(mit.frame_threshold >= 1, "threshold below 1");
  OSKIT_ASSERT_MSG(mit.ring_fallback >= 1, "ring fallback below 1");
  mit_ = mit;
  if (mit_.holdoff_ns == 0) {
    CancelHoldoff();
  }
}

size_t NicHw::RxDequeue(uint8_t* buf) {
  OSKIT_ASSERT_MSG(!rx_ring_.empty(), "RX dequeue on empty ring");
  const std::vector<uint8_t>& frame = rx_ring_.front();
  size_t len = frame.size();
  std::memcpy(buf, frame.data(), len);
  rx_ring_.pop_front();
  // A drained frame no longer needs announcing; without this clamp a
  // polled driver would see stale threshold IRQs for frames it already
  // consumed.
  if (unannounced_ > rx_ring_.size()) {
    unannounced_ = rx_ring_.size();
  }
  return len;
}

bool NicHw::TxGate() {
  ++tx_frames_;
  if (fault_->ShouldFail("nic.irq.spurious")) {
    pic_->RaiseIrq(irq_);  // causeless interrupt: drivers must tolerate it
  }
  if (fault_->ShouldFail("nic.tx.drop")) {
    ++tx_dropped_;
    return false;  // the transceiver ate the frame; TCP's timers must notice
  }
  return true;
}

void NicHw::TxStart(const uint8_t* frame, size_t len) {
  OSKIT_ASSERT_MSG(len >= kEtherHeaderSize, "runt frame");
  OSKIT_ASSERT_MSG(len <= kEtherMaxFrame, "oversize frame");
  if (!TxGate()) {
    return;
  }
  link_->Transmit(this, frame, len);
}

void NicHw::TxStartVec(const uint8_t* const* chunks, const size_t* lens,
                       size_t count) {
  // Hardware DMA gather: the descriptor list goes straight to the wire-side
  // engine — the NIC never stages the frame through a bounce buffer, which
  // is the whole point of the scatter-gather transmit path.
  size_t total = 0;
  for (size_t i = 0; i < count; ++i) {
    total += lens[i];
  }
  OSKIT_ASSERT_MSG(total >= kEtherHeaderSize, "runt frame");
  OSKIT_ASSERT_MSG(total <= kEtherMaxFrame, "oversize gather frame");
  ++tx_gathers_;
  if (!TxGate()) {
    return;
  }
  link_->Transmit(this, chunks, lens, count);
}

void NicHw::FrameArrived(const uint8_t* frame, size_t len) {
  if (!AcceptsFrame(frame, len)) {
    return;
  }
  if (rx_ring_.size() >= kRxRingCapacity) {
    ++rx_overruns_;
    return;
  }
  ++rx_frames_;
  rx_ring_.emplace_back(frame, frame + len);
  if (len > kEtherHeaderSize && fault_->ShouldFail("nic.rx.corrupt")) {
    // Flip one payload byte past the header so the frame still reaches the
    // stack and the protocol checksums have to catch it.
    std::vector<uint8_t>& stored = rx_ring_.back();
    size_t at = kEtherHeaderSize + fault_->rng().Below(len - kEtherHeaderSize);
    stored[at] ^= 0xff;
    ++rx_corrupted_;
  }
  ++rx_coalesce_frames_;
  if (!rx_interrupt_enabled_) {
    // The driver is polling with interrupts masked: the frame sits in the
    // ring unannounced.  Nothing fires when the interrupt is re-enabled,
    // either — that is the race the poll loop's re-check closes.
    return;
  }
  ++unannounced_;
  if (unannounced_ >= mit_.frame_threshold) {
    ++rx_coalesce_threshold_;
    RaiseRxIrq();
    return;
  }
  if (rx_ring_.size() >= mit_.ring_fallback) {
    ++rx_coalesce_ring_;
    RaiseRxIrq();
    return;
  }
  if (mit_.holdoff_ns > 0 && holdoff_event_ == SimClock::kInvalidEvent) {
    holdoff_event_ =
        clock_->ScheduleAfter(mit_.holdoff_ns, [this] { HoldoffFired(); });
  }
}

void NicHw::RaiseRxIrq() {
  unannounced_ = 0;
  CancelHoldoff();
  if (fault_->ShouldFail("nic.rx.miss_irq")) {
    // The announcement is consumed but the line never asserts: every frame
    // batched behind it strands until software notices (the RX watchdog).
    ++rx_irqs_missed_;
    return;
  }
  ++rx_coalesce_irqs_;
  pic_->RaiseIrq(irq_);
}

void NicHw::HoldoffFired() {
  holdoff_event_ = SimClock::kInvalidEvent;
  if (rx_interrupt_enabled_ && unannounced_ > 0) {
    ++rx_coalesce_holdoff_;
    RaiseRxIrq();
  }
}

void NicHw::CancelHoldoff() {
  if (holdoff_event_ != SimClock::kInvalidEvent) {
    clock_->Cancel(holdoff_event_);
    holdoff_event_ = SimClock::kInvalidEvent;
  }
}

bool NicHw::AcceptsFrame(const uint8_t* frame, size_t len) const {
  if (len < kEtherHeaderSize) {
    return false;
  }
  if (promiscuous_) {
    return true;
  }
  EtherAddr dest;
  std::memcpy(dest.bytes, frame, kEtherAddrSize);
  return dest == mac_ || dest.IsBroadcast();
}

}  // namespace oskit
